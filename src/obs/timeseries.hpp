// Periodic time-series sampler: every `interval` cycles it snapshots the
// registered StatRegistry counters, records the per-window deltas (plus
// derived ratios, instantaneous gauges and windowed latency quantiles) and
// buffers one row per window. Rows are written as CSV at finalize.
//
// Invariant the tests rely on: for every counter column, the sum of the
// deltas over the measured-phase ('m') windows equals the counter's
// end-of-run value — the warmup boundary (where the registry is zeroed in
// place) rebases the snapshots via phase_boundary(), and finalize() flushes
// the last partial window.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace tcmp::obs {

class TimeSeries {
 public:
  struct Window {
    std::uint64_t index = 0;
    char phase = 'm';  ///< 'w' = functional warmup, 'm' = measured
    Cycle start{0};
    Cycle end{0};
    std::vector<std::uint64_t> counter_deltas;  ///< one per counter column
    std::vector<double> values;  ///< ratios, gauges, histogram quantiles
  };

  TimeSeries(const StatRegistry* stats, Cycle interval);

  // --- column registration (before the first sample) ---
  /// Windowed delta of a registry counter (missing counters read as 0).
  void add_counter(std::string column, std::string counter);
  /// sum(delta(numer)) / sum(delta(denom)) over the window (0 when the
  /// window is idle). Multiple counters per side support derived rates like
  /// miss rate = (read+write+upgrade misses) / accesses.
  void add_ratio(std::string column, std::vector<std::string> numer,
                 std::vector<std::string> denom);
  /// Instantaneous value sampled at each window boundary.
  void add_gauge(std::string column, std::function<double()> fn);
  /// p50/p95/p99 of a histogram the caller fills during the window; the
  /// histogram is cleared after every sample so each window stands alone.
  void add_windowed_histogram(const std::string& column_prefix, Histogram* hist);

  /// Cheap per-cycle check; samples when a window boundary is reached.
  void maybe_sample(Cycle now) {
    if (now >= next_boundary_) sample(now);
  }

  /// The registry is about to be zeroed in place (warmup/measurement
  /// boundary): flush the partial warmup window, rebase every snapshot to
  /// zero and switch to the measured phase.
  void phase_boundary(Cycle now);
  void set_phase(char phase) { phase_ = phase; }

  /// Flush the final partial window.
  void finalize(Cycle now);

  [[nodiscard]] const std::vector<Window>& windows() const { return windows_; }
  /// Column names, in CSV order (counters, ratios, gauges, histograms).
  [[nodiscard]] const std::vector<std::string>& counter_columns() const {
    return counter_columns_;
  }
  [[nodiscard]] Cycle interval() const { return interval_; }
  /// Next window boundary: maybe_sample(now) fires iff now >= next_boundary.
  [[nodiscard]] Cycle next_boundary() const { return next_boundary_; }

  void write_csv(std::ostream& out) const;

 private:
  void sample(Cycle now);

  /// A sampled counter name plus its lazily-resolved registry slot. The
  /// column list may name counters a given configuration never registers, so
  /// resolution goes through StatRegistry::find_counter (which never creates
  /// — creating would perturb the report's counter set) and retries each
  /// sample until the counter exists; once resolved the pointer is stable
  /// (node-based map, zero_all() keeps nodes) and the per-sample string
  /// lookup disappears.
  struct TrackedName {
    std::string name;
    const std::uint64_t* slot = nullptr;
  };
  [[nodiscard]] std::uint64_t read(TrackedName& t) const {
    if (t.slot == nullptr) t.slot = stats_->find_counter(t.name);
    return t.slot != nullptr ? *t.slot : 0;
  }

  struct TrackedCounter {
    TrackedName name;
    std::uint64_t last = 0;
  };
  struct TrackedRatio {
    std::string column;
    std::vector<TrackedName> numer, denom;
    std::uint64_t last_n = 0, last_d = 0;
  };
  struct TrackedGauge {
    std::string column;
    std::function<double()> fn;
  };
  struct TrackedHist {
    std::string prefix;
    Histogram* hist = nullptr;
  };

  const StatRegistry* stats_;
  Cycle interval_;
  Cycle window_start_{0};
  Cycle next_boundary_;
  char phase_ = 'm';

  std::vector<std::string> counter_columns_;
  std::vector<TrackedCounter> counters_;
  std::vector<TrackedRatio> ratios_;
  std::vector<TrackedGauge> gauges_;
  std::vector<TrackedHist> hists_;
  std::vector<Window> windows_;
};

}  // namespace tcmp::obs
