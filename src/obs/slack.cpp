#include "obs/slack.hpp"

#include <cstdio>
#include <ostream>

#include "common/check.hpp"

namespace tcmp::obs {

const char* to_string(CritClass c) {
  switch (c) {
    case CritClass::kBlockingDemand: return "blocking";
    case CritClass::kOverlapTolerant: return "overlap";
    case CritClass::kAckWriteback: return "ackwb";
  }
  return "?";
}

bool can_unstall_dst(protocol::MsgType t, protocol::Unit unit) {
  using protocol::MsgType;
  if (unit == protocol::Unit::kL1I) {
    // The only L1I-bound message is the instruction-fetch data reply.
    return t == MsgType::kData;
  }
  if (unit != protocol::Unit::kL1) return false;  // directory-bound
  switch (t) {
    case MsgType::kData:
    case MsgType::kDataExcl:
    case MsgType::kUpgradeAck:
    case MsgType::kPartialReply:
    case MsgType::kInvAck:  // requester-bound ack completing a GetX/Upgrade
      return true;
    default:
      return false;
  }
}

void SlackTelemetry::init(StatRegistry* stats,
                          const std::vector<std::string>& wire_names) {
  TCMP_CHECK(stats != nullptr && !wire_names.empty());
  TCMP_CHECK(cells_.empty());  // init-once
  n_wires_ = static_cast<unsigned>(wire_names.size());
  cells_.resize(kNumCritClasses * n_wires_);
  for (unsigned c = 0; c < kNumCritClasses; ++c) {
    for (unsigned w = 0; w < n_wires_; ++w) {
      Cell& cl = cells_[c * n_wires_ + w];
      cl.name = std::string(to_string(static_cast<CritClass>(c))) + "." +
                wire_names[w];
      // 64 bins x 4 cycles covers realized slack up to ~256 cycles before
      // the overflow bin (quantiles stay meaningful at mesh latencies).
      cl.slack = stats->histogram_ref("slack." + cl.name, 64, 4);
      cl.nonblocking = stats->counter_ref("slack." + cl.name + ".nonblocking");
    }
  }
  pending_ifetch_.clear();
}

void SlackTelemetry::on_delivered(NodeId tile, const protocol::CoherenceMsg& msg,
                                  bool parked, Cycle now) {
  if (!parked) {
    ++cell(msg.slack_class, msg.wire_class).nonblocking;
    return;
  }
  Pending p;
  p.delivered = now;
  p.cls = msg.slack_class;
  p.wire = msg.wire_class;
  if (msg.dst_unit == protocol::Unit::kL1I) {
    if (pending_ifetch_.size() <= tile) pending_ifetch_.resize(tile + 1);
    pending_ifetch_[tile].push_back(p);
  } else {
    pending_[key(tile, msg.line)].push_back(p);
  }
}

void SlackTelemetry::on_unstall(NodeId tile, LineAddr line, Cycle now) {
  auto it = pending_.find(key(tile, line));
  if (it == pending_.end()) return;
  for (const Pending& p : it->second) {
    cell(p.cls, p.wire).slack.add((now - p.delivered).value());
  }
  pending_.erase(it);
}

void SlackTelemetry::on_unstall_ifetch(NodeId tile, Cycle now) {
  if (pending_ifetch_.size() <= tile) return;
  for (const Pending& p : pending_ifetch_[tile]) {
    cell(p.cls, p.wire).slack.add((now - p.delivered).value());
  }
  pending_ifetch_[tile].clear();
}

void SlackTelemetry::finalize() {
  if (!enabled()) return;
  // tcmplint: order-insensitive (pure counter increments; addition commutes)
  for (const auto& [k, vec] : pending_) {
    (void)k;
    for (const Pending& p : vec) ++cell(p.cls, p.wire).nonblocking;
  }
  pending_.clear();
  for (auto& vec : pending_ifetch_) {
    for (const Pending& p : vec) ++cell(p.cls, p.wire).nonblocking;
    vec.clear();
  }
}

std::uint64_t SlackTelemetry::resolved(CritClass c, unsigned wire) const {
  if (!enabled()) return 0;
  return cell(static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(wire))
      .slack.get()
      .scalar()
      .count();
}

std::uint64_t SlackTelemetry::nonblocking(CritClass c, unsigned wire) const {
  if (!enabled()) return 0;
  return cell(static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(wire))
      .nonblocking.value();
}

void SlackTelemetry::write_table(std::ostream& out) const {
  if (!enabled()) return;
  char buf[160];
  std::snprintf(buf, sizeof buf, "  %-16s %10s %8s %8s %8s %10s %12s\n",
                "slack [cycles]", "mean", "p50", "p95", "p99", "count",
                "nonblocking");
  out << buf;
  for (const Cell& c : cells_) {
    const Histogram& h = c.slack.get();
    std::snprintf(buf, sizeof buf,
                  "  %-16s %10.2f %8.1f %8.1f %8.1f %10llu %12llu\n",
                  c.name.c_str(), h.scalar().mean(), h.quantile(0.50),
                  h.quantile(0.95), h.quantile(0.99),
                  static_cast<unsigned long long>(h.scalar().count()),
                  static_cast<unsigned long long>(c.nonblocking.value()));
    out << buf;
  }
}

}  // namespace tcmp::obs
