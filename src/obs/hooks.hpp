// Abstract sink for protocol-layer lifecycle events. Kept as a pure virtual
// interface over common/protocol types only, so tcmp_protocol components can
// report into an attached observer through a header-only dependency without
// linking the obs library. Components hold a raw pointer that defaults to
// null; every call site is branch-guarded, so a detached observer costs one
// predictable branch on the hot path.
#pragma once

#include "common/types.hpp"
#include "protocol/coherence_msg.hpp"

namespace tcmp::obs {

class ProtocolHooks {
 public:
  virtual ~ProtocolHooks() = default;

  /// L1 miss lifetime: a request left the MSHR allocation path
  /// (issue_miss) ...
  virtual void l1_miss_begin(NodeId tile, LineAddr line, bool is_write) = 0;
  /// ... and the fill installed (or was consumed use-once).
  virtual void l1_miss_end(NodeId tile, LineAddr line) = 0;

  /// The home directory finished the L2 access pipeline for a message and
  /// ran the protocol handler for it.
  virtual void dir_msg_processed(NodeId tile, const protocol::CoherenceMsg& msg) = 0;
};

}  // namespace tcmp::obs
