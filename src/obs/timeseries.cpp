#include "obs/timeseries.hpp"

#include <cstdio>
#include <ostream>

#include "common/check.hpp"

namespace tcmp::obs {

TimeSeries::TimeSeries(const StatRegistry* stats, Cycle interval)
    : stats_(stats), interval_(interval), next_boundary_(interval) {
  TCMP_CHECK(stats_ != nullptr && interval_ >= Cycle{1});
}

void TimeSeries::add_counter(std::string column, std::string counter) {
  TCMP_CHECK_MSG(windows_.empty(), "register columns before sampling starts");
  counter_columns_.push_back(std::move(column));
  counters_.push_back({{std::move(counter), nullptr}, 0});
}

void TimeSeries::add_ratio(std::string column, std::vector<std::string> numer,
                           std::vector<std::string> denom) {
  TCMP_CHECK_MSG(windows_.empty(), "register columns before sampling starts");
  TrackedRatio rt;
  rt.column = std::move(column);
  for (auto& n : numer) rt.numer.push_back({std::move(n), nullptr});
  for (auto& d : denom) rt.denom.push_back({std::move(d), nullptr});
  ratios_.push_back(std::move(rt));
}

void TimeSeries::add_gauge(std::string column, std::function<double()> fn) {
  TCMP_CHECK_MSG(windows_.empty(), "register columns before sampling starts");
  gauges_.push_back({std::move(column), std::move(fn)});
}

void TimeSeries::add_windowed_histogram(const std::string& column_prefix,
                                        Histogram* hist) {
  TCMP_CHECK_MSG(windows_.empty(), "register columns before sampling starts");
  TCMP_CHECK(hist != nullptr);
  hists_.push_back({column_prefix, hist});
}

void TimeSeries::sample(Cycle now) {
  if (now <= window_start_) {
    next_boundary_ = window_start_ + interval_;
    return;
  }
  Window w;
  w.index = windows_.size();
  w.phase = phase_;
  w.start = window_start_;
  w.end = now;

  w.counter_deltas.reserve(counters_.size());
  for (auto& c : counters_) {
    const std::uint64_t cur = read(c.name);
    TCMP_DCHECK(cur >= c.last);
    w.counter_deltas.push_back(cur - c.last);
    c.last = cur;
  }
  for (auto& rt : ratios_) {
    std::uint64_t n = 0, d = 0;
    for (auto& c : rt.numer) n += read(c);
    for (auto& c : rt.denom) d += read(c);
    const std::uint64_t dn = n - rt.last_n, dd = d - rt.last_d;
    w.values.push_back(dd != 0 ? static_cast<double>(dn) / static_cast<double>(dd)
                               : 0.0);
    rt.last_n = n;
    rt.last_d = d;
  }
  for (auto& g : gauges_) w.values.push_back(g.fn());
  for (auto& h : hists_) {
    w.values.push_back(h.hist->quantile(0.50));
    w.values.push_back(h.hist->quantile(0.95));
    w.values.push_back(h.hist->quantile(0.99));
    h.hist->clear_values();
  }

  windows_.push_back(std::move(w));
  window_start_ = now;
  next_boundary_ = now + interval_;
}

void TimeSeries::phase_boundary(Cycle now) {
  sample(now);  // flush the warmup partial window (no-op when empty)
  // The caller zeroes the registry right after this returns; every snapshot
  // restarts from zero so measured-phase deltas sum to the final counters.
  for (auto& c : counters_) c.last = 0;
  for (auto& rt : ratios_) rt.last_n = rt.last_d = 0;
  for (auto& h : hists_) h.hist->clear_values();
  phase_ = 'm';
  window_start_ = now;
  next_boundary_ = now + interval_;
}

void TimeSeries::finalize(Cycle now) { sample(now); }

void TimeSeries::write_csv(std::ostream& out) const {
  out << "window,phase,cycle_start,cycle_end";
  for (const auto& c : counter_columns_) out << ',' << c;
  for (const auto& rt : ratios_) out << ',' << rt.column;
  for (const auto& g : gauges_) out << ',' << g.column;
  for (const auto& h : hists_)
    out << ',' << h.prefix << "_p50," << h.prefix << "_p95," << h.prefix << "_p99";
  out << '\n';
  for (const auto& w : windows_) {
    out << w.index << ',' << w.phase << ',' << w.start.value() << ','
        << w.end.value();
    for (const auto d : w.counter_deltas) out << ',' << d;
    char buf[32];
    for (const auto v : w.values) {
      std::snprintf(buf, sizeof buf, "%.6g", v);
      out << ',' << buf;
    }
    out << '\n';
  }
}

}  // namespace tcmp::obs
