// Chrome trace-event JSON writer (the format chrome://tracing and Perfetto
// load). Events are buffered compactly in memory during the run and dumped
// in one pass; the buffer is capped so a pathological run cannot exhaust
// memory (overflow is counted and reported in the trace metadata).
//
// Conventions used by the observer:
//   * pid 1 is the simulated chip; tid N is tile N (one track per tile);
//   * message lifetimes are async spans ("ph":"b"/"e") matched by
//     (cat, id, pid) — one span per mesh-traversing message;
//   * per-hop router traversals and protocol-handler completions are
//     instant events ("ph":"i") on the router/handler tile's track;
//   * timestamps are simulator cycles written as integer "ts" values
//     (1 cycle renders as 1 us in the viewer).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace tcmp::obs {

struct TraceEvent {
  const char* name = "";   ///< static string (no escaping performed)
  const char* cat = "";    ///< static string; async b/e pairs match on it
  char ph = 'i';           ///< 'b'/'e' async span, 'i' instant, 'C' counter
  std::uint32_t pid = 1;
  std::uint32_t tid = 0;
  Cycle ts{0};
  std::uint64_t id = 0;    ///< async span id (b/e only)
  const char* cname = nullptr;  ///< optional chrome color name
  std::string args;        ///< preformatted JSON object body, may be empty
};

class TraceWriter {
 public:
  explicit TraceWriter(std::uint64_t max_events = 4'000'000)
      : max_events_(max_events) {}

  /// Label a track ("thread_name" metadata event).
  void set_track_name(std::uint32_t pid, std::uint32_t tid, std::string name);
  void set_process_name(std::uint32_t pid, std::string name);

  /// Append an event; returns false (and counts a drop) once the cap is
  /// hit. `force` bypasses the cap — used for the close events of spans
  /// that were opened before the cap, keeping begin/end balanced.
  bool add(TraceEvent e, bool force = false);

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }

  /// Emit the complete JSON document (one event per line, metadata first).
  void write(std::ostream& out) const;

 private:
  struct TrackName {
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    bool is_process = false;
    std::string name;
  };

  std::uint64_t max_events_;
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
  std::vector<TrackName> names_;
};

}  // namespace tcmp::obs
