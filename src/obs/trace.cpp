#include "obs/trace.hpp"

#include <ostream>

namespace tcmp::obs {

void TraceWriter::set_track_name(std::uint32_t pid, std::uint32_t tid,
                                 std::string name) {
  names_.push_back({pid, tid, /*is_process=*/false, std::move(name)});
}

void TraceWriter::set_process_name(std::uint32_t pid, std::string name) {
  names_.push_back({pid, 0, /*is_process=*/true, std::move(name)});
}

bool TraceWriter::add(TraceEvent e, bool force) {
  if (!force && events_.size() >= max_events_) {
    ++dropped_;
    return false;
  }
  events_.push_back(std::move(e));
  return true;
}

void TraceWriter::write(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  for (const auto& n : names_) {
    sep();
    out << "{\"name\":\"" << (n.is_process ? "process_name" : "thread_name")
        << "\",\"ph\":\"M\",\"pid\":" << n.pid;
    if (!n.is_process) out << ",\"tid\":" << n.tid;
    out << ",\"args\":{\"name\":\"" << n.name << "\"}}";
  }
  for (const auto& e : events_) {
    sep();
    out << "{\"name\":\"" << e.name << "\",\"cat\":\"" << e.cat
        << "\",\"ph\":\"" << e.ph << "\",\"pid\":" << e.pid
        << ",\"tid\":" << e.tid << ",\"ts\":" << e.ts.value();
    if (e.ph == 'b' || e.ph == 'e') out << ",\"id\":" << e.id;
    if (e.ph == 'i') out << ",\"s\":\"t\"";
    if (e.cname != nullptr) out << ",\"cname\":\"" << e.cname << "\"";
    if (!e.args.empty()) out << ",\"args\":{" << e.args << "}";
    out << "}";
  }
  sep();
  out << "{\"name\":\"trace_done\",\"cat\":\"meta\",\"ph\":\"i\",\"pid\":1,"
         "\"tid\":0,\"ts\":"
      << (events_.empty() ? 0 : events_.back().ts.value())
      << ",\"s\":\"g\",\"args\":{\"events\":" << events_.size()
      << ",\"dropped\":" << dropped_ << "}}";
  out << "\n]}\n";
}

}  // namespace tcmp::obs
