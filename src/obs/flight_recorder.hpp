// Flight recorder: an always-on bounded ring of recent message-lifecycle
// events per tile (common/queues.hpp RingBuffer, so steady state allocates
// nothing and the oldest history is overwritten). When the runtime coherence
// lint or a TCMP_CHECK/TCMP_DCHECK aborts the run, the recorder is dumped to
// a post-mortem text file, turning a one-line abort into a replayable tail of
// the protocol traffic that led up to it.
//
// Recording is cheap enough to leave on unconditionally (a branch-free struct
// copy into a preallocated ring per routed message); the cost shows up only
// on configurations that route messages at all, and the rings are small
// (kDefaultDepth events per tile).
//
// Emit sites pass interned enum kinds, never strings (tcmplint rule
// obs-emit-interned): the dump side alone pays for formatting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/queues.hpp"
#include "common/types.hpp"
#include "protocol/coherence_msg.hpp"

namespace tcmp::obs {

/// Where in its lifecycle a message was observed.
enum class FlightEventKind : std::uint8_t {
  kSendRemote,  ///< handed to the NIC for mesh traversal (recorded at src)
  kSendLocal,   ///< pushed into the tile-internal loopback (recorded at src)
  kDeliver,     ///< consumed by the destination protocol handler
};

[[nodiscard]] const char* to_string(FlightEventKind k);

class FlightRecorder {
 public:
  /// Events retained per tile before the oldest is overwritten.
  static constexpr std::size_t kDefaultDepth = 256;

  explicit FlightRecorder(unsigned n_tiles, std::size_t depth = kDefaultDepth);

  /// Record one lifecycle event for `msg` at `tile`. Always-on hot path:
  /// struct copy into a fixed ring, overwriting the oldest entry when full.
  void record(FlightEventKind kind, NodeId tile,
              const protocol::CoherenceMsg& msg, Cycle now) {
    Ring& ring = rings_[tile];
    if (ring.full()) ring.pop_front();
    ring.push_back(Event{now, msg.line, msg.seq, msg.src, msg.dst, kind,
                         msg.type, msg.dst_unit, msg.wire_class});
  }

  /// Write the retained history: a per-tile section (oldest to newest) plus
  /// a chronologically merged tail across all tiles.
  void dump(std::ostream& out) const;
  /// dump() to `path`; returns false when the file could not be written.
  bool dump_to_file(const std::string& path) const;

  [[nodiscard]] unsigned n_tiles() const {
    return static_cast<unsigned>(rings_.size());
  }
  [[nodiscard]] std::size_t events_retained(unsigned tile) const {
    return rings_[tile].size();
  }

 private:
  struct Event {
    Cycle cycle{};
    LineAddr line{};
    std::uint32_t seq = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    FlightEventKind kind = FlightEventKind::kSendRemote;
    protocol::MsgType type = protocol::MsgType::kGetS;
    protocol::Unit dst_unit = protocol::Unit::kDir;
    std::uint8_t wire_class = 0;
  };
  using Ring = RingBuffer<Event>;

  static void format_event(std::ostream& out, unsigned tile, const Event& e);

  std::vector<Ring> rings_;  ///< [tile]
};

}  // namespace tcmp::obs
