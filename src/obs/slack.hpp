// End-to-end slack/criticality telemetry (ROADMAP item 3 groundwork).
//
// Every protocol message is tagged at injection with the *requesting core's
// state* (CritClass): a message serving a core that is blocked at the head of
// its in-order pipeline is kBlockingDemand; a critical-path message whose
// beneficiary core is not currently stalled (e.g. the full Data line after a
// PartialReply already resumed it, or an InvAck racing a DataExcl that has
// not arrived yet) is kOverlapTolerant; replacement traffic and its acks are
// kAckWriteback.
//
// Realized slack is then measured at the consumer: the cycles between a
// reply's delivery at the destination tile and the moment its core actually
// unstalls. A reply that arrives while other constituents of the same miss
// are still outstanding (DataExcl waiting on InvAcks, the early InvAcks
// themselves) realizes positive slack — it could have been delivered that
// many cycles later with zero performance cost, which is exactly the signal
// a criticality-aware wire scheduler needs. Messages that cannot end a stall
// at their destination (requests/acks into a directory, invalidations,
// writebacks) are counted as nonblocking: their slack is unbounded.
//
// Distributions land in the StatRegistry as "slack.<class>.<wire>"
// histograms plus "slack.<class>.<wire>.nonblocking" counters — per
// criticality class x wire class (VL / B / the channel names of the attached
// network) — and are therefore zeroed at the warmup boundary and exported by
// the canonical metrics plane like every other stat. The "slack." prefix
// keeps them out of the golden text reports, which only print "noc."
// histograms.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "protocol/coherence_msg.hpp"

namespace tcmp::obs {

/// Requesting-core state at injection time (stamped into
/// CoherenceMsg::slack_class).
enum class CritClass : std::uint8_t {
  kBlockingDemand = 0,   ///< beneficiary core is stalled on this line now
  kOverlapTolerant = 1,  ///< critical-path message, but the core is not stalled
  kAckWriteback = 2,     ///< replacement traffic / acks off the critical path
};
inline constexpr unsigned kNumCritClasses = 3;

[[nodiscard]] const char* to_string(CritClass c);

/// Classify a message given its type and whether the beneficiary core is
/// stalled right now. Pure function of the Fig. 4 criticality table plus the
/// core state; the caller (CmpSystem) knows the beneficiary.
[[nodiscard]] inline CritClass classify(protocol::MsgType t,
                                        bool beneficiary_stalled) {
  if (!protocol::is_critical(t)) return CritClass::kAckWriteback;
  return beneficiary_stalled ? CritClass::kBlockingDemand
                             : CritClass::kOverlapTolerant;
}

/// True when a message of this (type, destination unit) can end a stall at
/// its destination core: data/permission replies and requester-bound
/// inv-acks into an L1, and instruction-fetch replies into an L1I. Only
/// these park for realized-slack measurement; everything else resolves as
/// nonblocking at delivery.
[[nodiscard]] bool can_unstall_dst(protocol::MsgType t, protocol::Unit unit);

class SlackTelemetry {
 public:
  /// Register the per (class x wire) distribution stats. `wire_names` are
  /// the attached network's channel names in channel-index order ("VL",
  /// "B", ...). Until init() the telemetry is disabled and every hook is a
  /// no-op the caller must guard (CmpSystem keeps a null pointer until
  /// attach).
  void init(StatRegistry* stats, const std::vector<std::string>& wire_names);

  [[nodiscard]] bool enabled() const { return !cells_.empty(); }
  [[nodiscard]] unsigned num_wire_classes() const { return n_wires_; }

  /// A message was delivered at `tile`. `parked` = the caller determined the
  /// destination core is stalled on the message's line (or on an ifetch, for
  /// L1I deliveries) AND can_unstall_dst holds — the realized slack resolves
  /// at the matching on_unstall. Otherwise the message counts as nonblocking.
  void on_delivered(NodeId tile, const protocol::CoherenceMsg& msg, bool parked,
                    Cycle now);

  /// The data-side fill for `line` unstalled `tile`'s core at `now`.
  void on_unstall(NodeId tile, LineAddr line, Cycle now);
  /// The ifetch fill unstalled `tile`'s core at `now`.
  void on_unstall_ifetch(NodeId tile, Cycle now);

  /// Flush still-parked deliveries (the run ended before their core
  /// unstalled) into the nonblocking counters so every delivery is
  /// accounted exactly once.
  void finalize();

  /// Human-readable class x wire distribution table (tcmpsim --slack-report).
  void write_table(std::ostream& out) const;

  /// Samples recorded into the (class, wire) slack histogram so far.
  [[nodiscard]] std::uint64_t resolved(CritClass c, unsigned wire) const;
  /// Deliveries resolved as nonblocking for (class, wire) so far.
  [[nodiscard]] std::uint64_t nonblocking(CritClass c, unsigned wire) const;

 private:
  struct Cell {
    HistogramRef slack;        ///< realized slack in cycles
    CounterRef nonblocking;    ///< deliveries with unbounded slack
    std::string name;          ///< "<class>.<wire>" (report labels)
  };
  struct Pending {
    Cycle delivered{};
    std::uint8_t cls = 0;
    std::uint8_t wire = 0;
  };

  [[nodiscard]] Cell& cell(std::uint8_t cls, std::uint8_t wire) {
    return cells_[cls * n_wires_ + std::min<unsigned>(wire, n_wires_ - 1)];
  }
  [[nodiscard]] const Cell& cell(std::uint8_t cls, std::uint8_t wire) const {
    return cells_[cls * n_wires_ + std::min<unsigned>(wire, n_wires_ - 1)];
  }
  [[nodiscard]] static std::uint64_t key(NodeId tile, LineAddr line) {
    // Same folding trick as the observer's miss spans: (tile, line) is
    // unique among parked stalls (one blocking miss per in-order core).
    return (static_cast<std::uint64_t>(tile) + 1) << 48 ^ line.value();
  }

  unsigned n_wires_ = 0;
  std::vector<Cell> cells_;  ///< [class * n_wires_ + wire]
  /// Parked data-side deliveries keyed by (tile, line). A miss can have
  /// several constituents in flight (DataExcl + InvAcks), so each key holds
  /// a small vector.
  std::unordered_map<std::uint64_t, std::vector<Pending>> pending_;
  /// Parked ifetch deliveries per tile (one ifetch outstanding per core).
  std::vector<std::vector<Pending>> pending_ifetch_;
};

}  // namespace tcmp::obs
