#include "obs/observer.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

#include "common/abort.hpp"
#include "common/check.hpp"

namespace tcmp::obs {

namespace {

// One category (and chrome color) per protocol message class (= virtual
// network): requests, forwarded commands, responses. Async begin/end pairs
// match on the category, so these must be stable static strings.
constexpr const char* kNetCat[protocol::kNumVnets] = {"net.req", "net.fwd",
                                                      "net.resp"};
constexpr const char* kNetColor[protocol::kNumVnets] = {
    "thread_state_running", "thread_state_iowait", "thread_state_runnable"};

std::uint64_t miss_span_id(NodeId tile, LineAddr line) {
  // (tile, line) is unique among open misses (one MSHR per line per tile);
  // fold the tile into the high bits well above any realistic line address.
  return (static_cast<std::uint64_t>(tile) + 1) << 48 ^ line.value();
}

std::string msg_args(const protocol::CoherenceMsg& msg) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "\"type\":\"%s\",\"src\":%u,\"dst\":%u,\"line\":\"0x%" PRIx64
                "\",\"critical\":%d",
                protocol::to_string(msg.type), static_cast<unsigned>(msg.src),
                static_cast<unsigned>(msg.dst), msg.line.value(),
                protocol::is_critical(msg.type) ? 1 : 0);
  return buf;
}

}  // namespace

Observer::Observer(const ObsConfig& cfg, const StatRegistry* stats)
    : cfg_(cfg), stats_(stats), ts_(stats, cfg.sample_interval),
      trace_(cfg.max_trace_events) {
  TCMP_CHECK(stats != nullptr);
  trace_.set_process_name(1, "tcmp chip");

  // Default telemetry columns. Counters that a given configuration never
  // touches (e.g. noc.VL.* on the homogeneous baseline) read as zero.
  ts_.add_counter("vl_flits", "noc.VL.flits_injected");
  ts_.add_counter("b_flits", "noc.B.flits_injected");
  ts_.add_counter("vl_packets", "noc.VL.packets");
  ts_.add_counter("b_packets", "noc.B.packets");
  ts_.add_counter("compressed", "compression.compressed");
  ts_.add_counter("uncompressed", "compression.uncompressed");
  ts_.add_counter("remote_msgs", "msg_remote.count");
  ts_.add_counter("local_msgs", "msg_local.count");
  ts_.add_counter("l1_accesses", "l1.accesses");
  ts_.add_counter("l1_read_misses", "l1.read_misses");
  ts_.add_counter("l1_write_misses", "l1.write_misses");
  ts_.add_counter("mem_reads", "mem.reads");
  ts_.add_ratio("coverage", {"compression.compressed"},
                {"compression.compressed", "compression.uncompressed"});
  ts_.add_ratio("l1_miss_rate",
                {"l1.read_misses", "l1.write_misses", "l1.upgrade_misses"},
                {"l1.accesses"});
  ts_.add_windowed_histogram("net_lat", &window_latency_);

  // Flush-on-abort: if a TCMP_CHECK (or the coherence lint's hard path)
  // kills the run mid-flight, write out whatever trace/time-series history
  // was collected instead of leaving the files missing or truncated. The
  // hook is best-effort by contract and removed in the destructor.
  if (!cfg_.trace_path.empty() || !cfg_.timeseries_path.empty()) {
    abort_token_ = AbortHooks::add([this] { finalize_to_files(now()); });
  }
}

Observer::~Observer() {
  if (abort_token_ != 0) AbortHooks::remove(abort_token_);
}

void Observer::label_tiles(unsigned n_tiles) {
  for (unsigned t = 0; t < n_tiles; ++t) {
    trace_.set_track_name(1, t, "tile " + std::to_string(t));
  }
}

void Observer::add_gauge(std::string column, std::function<double()> fn) {
  ts_.add_gauge(std::move(column), std::move(fn));
}

std::uint32_t Observer::msg_injected(const protocol::CoherenceMsg& msg,
                                     const std::string& channel,
                                     unsigned wire_bytes, Cycle now) {
  if (!tracing() || at_capacity()) return 0;
  const unsigned vnet = protocol::vnet_of(msg.type);
  const std::uint32_t id = next_trace_id_++;
  TraceEvent e;
  e.name = protocol::to_string(msg.type);
  e.cat = kNetCat[vnet];
  e.ph = 'b';
  e.tid = msg.src;
  e.ts = now;
  e.id = id;
  e.cname = kNetColor[vnet];
  e.args = msg_args(msg) + ",\"wire\":\"" + channel +
           "\",\"bytes\":" + std::to_string(wire_bytes);
  if (!trace_.add(std::move(e))) return 0;
  open_msgs_.emplace(id, kNetCat[vnet]);
  return id;
}

void Observer::msg_hop(const protocol::CoherenceMsg& msg, NodeId router,
                       Cycle now) {
  if (msg.trace_id == 0) return;
  TraceEvent e;
  e.name = "hop";
  e.cat = kNetCat[protocol::vnet_of(msg.type)];
  e.ph = 'i';
  e.tid = router;
  e.ts = now;
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"msg\":%u,\"type\":\"%s\"", msg.trace_id,
                protocol::to_string(msg.type));
  e.args = buf;
  trace_.add(std::move(e));
}

void Observer::msg_ejected(const protocol::CoherenceMsg& msg, Cycle now,
                           Cycle total, Cycle queue, Cycle wire) {
  window_latency_.add(total.value());
  if (msg.trace_id == 0) return;
  TraceEvent e;
  e.name = "eject";
  e.cat = kNetCat[protocol::vnet_of(msg.type)];
  e.ph = 'i';
  e.tid = msg.dst;
  e.ts = now;
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "\"msg\":%u,\"lat\":%llu,\"queue\":%llu,\"router\":%llu,"
                "\"wire\":%llu",
                msg.trace_id, static_cast<unsigned long long>(total.value()),
                static_cast<unsigned long long>(queue.value()),
                static_cast<unsigned long long>((total - queue - wire).value()),
                static_cast<unsigned long long>(wire.value()));
  e.args = buf;
  trace_.add(std::move(e));
}

void Observer::msg_completed(const protocol::CoherenceMsg& msg, NodeId tile,
                             Cycle now) {
  if (msg.trace_id == 0) return;
  auto it = open_msgs_.find(msg.trace_id);
  if (it == open_msgs_.end()) return;
  TraceEvent e;
  e.name = protocol::to_string(msg.type);
  e.cat = it->second;
  e.ph = 'e';
  e.tid = msg.src;
  e.ts = now;
  e.id = msg.trace_id;
  e.args = "\"handled_at\":" + std::to_string(tile);
  trace_.add(std::move(e), /*force=*/true);
  open_msgs_.erase(it);
}

void Observer::nic_send(const protocol::CoherenceMsg& msg, bool compressed,
                        unsigned channel, unsigned wire_bytes) {
  if (!tracing()) return;
  TraceEvent e;
  e.name = "nic.send";
  e.cat = "nic";
  e.ph = 'i';
  e.tid = msg.src;
  e.ts = now();
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "\"type\":\"%s\",\"compressed\":%d,\"ch\":%u,\"bytes\":%u",
                protocol::to_string(msg.type), compressed ? 1 : 0, channel,
                wire_bytes);
  e.args = buf;
  trace_.add(std::move(e));
}

void Observer::lint_violation(Cycle cycle, LineAddr line,
                              const std::string& invariant,
                              const std::string& detail) {
  if (!tracing()) return;
  TraceEvent e;
  e.name = "lint.violation";
  e.cat = "verify";
  e.ph = 'i';
  e.ts = cycle;
  e.cname = "terrible";
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"invariant\":\"%s\",\"line\":\"0x%" PRIx64 "\"",
                invariant.c_str(), line.value());
  e.args = std::string(buf) + ",\"detail\":\"" + detail + "\"";
  trace_.add(std::move(e), /*force=*/true);
}

void Observer::nic_reorder_hold(const protocol::CoherenceMsg& msg) {
  if (!tracing()) return;
  TraceEvent e;
  e.name = "nic.hold";
  e.cat = "nic";
  e.ph = 'i';
  e.tid = msg.dst;
  e.ts = now();
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"src\":%u,\"seq\":%u",
                static_cast<unsigned>(msg.src), msg.seq);
  e.args = buf;
  trace_.add(std::move(e));
}

void Observer::l1_miss_begin(NodeId tile, LineAddr line, bool is_write) {
  if (!tracing() || at_capacity()) return;
  const std::uint64_t id = miss_span_id(tile, line);
  TraceEvent e;
  e.name = is_write ? "miss.write" : "miss.read";
  e.cat = "l1miss";
  e.ph = 'b';
  e.tid = tile;
  e.ts = now();
  e.id = id;
  e.cname = "rail_load";
  char buf[48];
  std::snprintf(buf, sizeof buf, "\"line\":\"0x%" PRIx64 "\"", line.value());
  e.args = buf;
  if (trace_.add(std::move(e))) open_misses_.emplace(id, "l1miss");
}

void Observer::l1_miss_end(NodeId tile, LineAddr line) {
  if (!tracing()) return;
  const std::uint64_t id = miss_span_id(tile, line);
  auto it = open_misses_.find(id);
  if (it == open_misses_.end()) return;
  TraceEvent e;
  e.name = "miss";
  e.cat = it->second;
  e.ph = 'e';
  e.tid = tile;
  e.ts = now();
  e.id = id;
  trace_.add(std::move(e), /*force=*/true);
  open_misses_.erase(it);
}

void Observer::dir_msg_processed(NodeId tile, const protocol::CoherenceMsg& msg) {
  if (!tracing()) return;
  TraceEvent e;
  e.name = "dir.handle";
  e.cat = "dir";
  e.ph = 'i';
  e.tid = tile;
  e.ts = now();
  char buf[48];
  std::snprintf(buf, sizeof buf, "\"type\":\"%s\",\"src\":%u",
                protocol::to_string(msg.type), static_cast<unsigned>(msg.src));
  e.args = buf;
  trace_.add(std::move(e));
}

void Observer::finalize(Cycle now) {
  if (finalized_) return;
  finalized_ = true;
  slack_.finalize();
  ts_.finalize(now);
  // Close spans still open at end of simulation so every begin has an end.
  auto close_all = [&](std::unordered_map<std::uint64_t, const char*>& open) {
    // Emit in id order so the trace does not depend on hash-bucket layout.
    // tcmplint: order-insensitive (snapshot is sorted by id before emission)
    std::vector<std::pair<std::uint64_t, const char*>> spans(open.begin(),
                                                             open.end());
    std::sort(spans.begin(), spans.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [id, cat] : spans) {
      TraceEvent e;
      e.name = "unterminated";
      e.cat = cat;
      e.ph = 'e';
      e.ts = now;
      e.id = id;
      e.args = "\"unterminated\":1";
      trace_.add(std::move(e), /*force=*/true);
    }
    open.clear();
  };
  close_all(open_msgs_);
  close_all(open_misses_);
}

bool Observer::finalize_to_files(Cycle now) {
  finalize(now);
  if (tracing() && !cfg_.trace_path.empty()) {
    std::ofstream out(cfg_.trace_path);
    if (!out) return false;
    trace_.write(out);
    if (!out.good()) return false;
  }
  if (!cfg_.timeseries_path.empty()) {
    std::ofstream out(cfg_.timeseries_path);
    if (!out) return false;
    ts_.write_csv(out);
    if (!out.good()) return false;
  }
  return true;
}

}  // namespace tcmp::obs
