// Observability front-end: one object that the driver attaches to a
// CmpSystem (or a bare Network) to get message-lifecycle tracing and
// time-series telemetry out of a run.
//
// Levels:
//   kOff        — nothing; components see a null pointer, hooks cost one
//                 branch (the ≤2% micro_noc overhead budget).
//   kTimeseries — periodic StatRegistry sampling + windowed latency
//                 quantiles; no per-message events.
//   kTrace      — everything above plus Chrome trace-event spans: inject →
//                 per-hop router traversal → eject → protocol-handler
//                 completion per message, plus L1 miss lifetimes.
//
// The observer implements ProtocolHooks (the header-only interface the
// protocol layer reports into) and exposes concrete methods for the noc/het
// layers, which sit above obs in the library stack.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_map>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "obs/hooks.hpp"
#include "obs/slack.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/scheduled.hpp"

namespace tcmp::obs {

enum class Level { kOff = 0, kTimeseries = 1, kTrace = 2 };

struct ObsConfig {
  Level level = Level::kTimeseries;
  Cycle sample_interval{10'000};
  std::uint64_t max_trace_events = 4'000'000;
  std::string trace_path;       ///< written by finalize_to_files; empty = skip
  std::string timeseries_path;  ///< written by finalize_to_files; empty = skip
};

class Observer final : public ProtocolHooks, public sim::Scheduled {
 public:
  Observer(const ObsConfig& cfg, const StatRegistry* stats);
  /// Unregisters the flush-on-abort hook installed for the configured
  /// output paths (common/abort.hpp).
  ~Observer();
  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  [[nodiscard]] bool tracing() const { return cfg_.level >= Level::kTrace; }
  [[nodiscard]] Cycle now() const { return clock_ != nullptr ? *clock_ : now_; }

  /// Share the driver's cycle counter so hooks stay correctly timestamped
  /// without a per-cycle tick() call (an event-scheduled driver only calls
  /// sample_tick() at window boundaries). Null reverts to the internal clock.
  void set_clock(const Cycle* clock) { clock_ = clock; }

  /// Per-cycle driver hook (bare-Network drivers): advances the internal
  /// clock and samples the time series at window boundaries.
  void tick(Cycle now) {
    now_ = now;
    ts_.maybe_sample(now);
  }

  /// Event-scheduled driver hook: called only when a sample may be due (the
  /// driver tracks the boundary via next_event() / TimeSeries::next_boundary).
  void sample_tick(Cycle now) {
    now_ = now;
    ts_.maybe_sample(now);
  }

  /// Scheduled contract: wake at time-series window boundaries (tick()
  /// samples at every level, so the boundary is a wake source even at kOff);
  /// the observer never holds up drain.
  [[nodiscard]] Cycle next_event() const override { return ts_.next_boundary(); }
  [[nodiscard]] bool quiescent() const override { return true; }

  /// Name the per-tile trace tracks (called once when attached to a system).
  void label_tiles(unsigned n_tiles);

  // --- network-facing hooks (the network passes its own clock) ---
  /// A message entered an injection lane. Returns the trace id to stamp into
  /// the message (0 when not tracing); opens the message's async span.
  std::uint32_t msg_injected(const protocol::CoherenceMsg& msg,
                             const std::string& channel, unsigned wire_bytes,
                             Cycle now);
  /// The message's tail flit traversed a router's switch.
  void msg_hop(const protocol::CoherenceMsg& msg, NodeId router, Cycle now);
  /// Packet fully received at the destination NI, with the latency
  /// decomposition (total = queue + router + wire).
  void msg_ejected(const protocol::CoherenceMsg& msg, Cycle now, Cycle total,
                   Cycle queue, Cycle wire);
  /// The destination protocol handler consumed the message: span closes.
  void msg_completed(const protocol::CoherenceMsg& msg, NodeId tile, Cycle now);

  // --- NIC hooks (use the observer clock) ---
  void nic_send(const protocol::CoherenceMsg& msg, bool compressed,
                unsigned channel, unsigned wire_bytes);
  void nic_reorder_hold(const protocol::CoherenceMsg& msg);

  // --- verify hooks ---
  /// A runtime coherence-lint scan found an invariant violation. Emitted as
  /// a forced instant event so it survives the trace-capacity cap and lands
  /// next to the message-lifecycle spans that led up to it.
  void lint_violation(Cycle cycle, LineAddr line, const std::string& invariant,
                      const std::string& detail);

  // --- ProtocolHooks (protocol layer; use the observer clock) ---
  void l1_miss_begin(NodeId tile, LineAddr line, bool is_write) override;
  void l1_miss_end(NodeId tile, LineAddr line) override;
  void dir_msg_processed(NodeId tile, const protocol::CoherenceMsg& msg) override;

  // --- slack telemetry ---
  /// The slack/criticality telemetry plane. CmpSystem::attach_observer
  /// init()s it (levels >= kTimeseries) with the attached network's wire
  /// classes and feeds it from the injection/delivery/unstall paths.
  [[nodiscard]] SlackTelemetry& slack() { return slack_; }
  [[nodiscard]] const SlackTelemetry& slack() const { return slack_; }

  // --- time-series wiring ---
  [[nodiscard]] TimeSeries& timeseries() { return ts_; }
  void add_gauge(std::string column, std::function<double()> fn);
  /// The attached system still has a functional-warmup phase ahead.
  void set_warmup_pending() { ts_.set_phase('w'); }
  /// Call immediately BEFORE StatRegistry::zero_all at the warmup boundary.
  void on_registry_zeroed(Cycle now) { ts_.phase_boundary(now); }

  /// Close still-open spans and flush the final time-series window.
  /// Idempotent; called automatically by finalize_to_files / write_trace.
  void finalize(Cycle now);
  void write_trace(std::ostream& out) const { trace_.write(out); }
  void write_timeseries(std::ostream& out) const { ts_.write_csv(out); }
  /// finalize() + write the configured output files (empty paths skipped).
  /// Returns false when a file could not be written.
  bool finalize_to_files(Cycle now);

  [[nodiscard]] const TraceWriter& trace() const { return trace_; }

 private:
  [[nodiscard]] bool at_capacity() const {
    return trace_.size() >= cfg_.max_trace_events;
  }

  ObsConfig cfg_;
  const StatRegistry* stats_;
  SlackTelemetry slack_;
  /// Flush-on-abort registration (0 = none): a TCMP_CHECK abort mid-run
  /// flushes partial trace/time-series output instead of truncating it.
  std::uint64_t abort_token_ = 0;
  Cycle now_{0};
  const Cycle* clock_ = nullptr;  ///< driver clock (see set_clock)
  TimeSeries ts_;
  TraceWriter trace_;
  std::uint32_t next_trace_id_ = 1;
  /// Open async spans: id -> category (needed to emit a matching close).
  std::unordered_map<std::uint64_t, const char*> open_msgs_;
  std::unordered_map<std::uint64_t, const char*> open_misses_;
  /// Windowed network latency (all classes) feeding the time-series
  /// quantile columns; cleared at every window boundary.
  Histogram window_latency_{96, 2};  // tcmplint: allow-local-stat (windowed, not a report stat)
  bool finalized_ = false;
};

}  // namespace tcmp::obs
