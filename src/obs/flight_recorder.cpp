#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace tcmp::obs {

namespace {

const char* unit_name(protocol::Unit u) {
  switch (u) {
    case protocol::Unit::kL1: return "l1";
    case protocol::Unit::kDir: return "dir";
    case protocol::Unit::kL1I: return "l1i";
  }
  return "?";
}

}  // namespace

const char* to_string(FlightEventKind k) {
  switch (k) {
    case FlightEventKind::kSendRemote: return "send";
    case FlightEventKind::kSendLocal: return "send.local";
    case FlightEventKind::kDeliver: return "deliver";
  }
  return "?";
}

FlightRecorder::FlightRecorder(unsigned n_tiles, std::size_t depth) {
  rings_.reserve(n_tiles);
  for (unsigned t = 0; t < n_tiles; ++t) rings_.emplace_back(depth);
}

void FlightRecorder::format_event(std::ostream& out, unsigned tile,
                                  const Event& e) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "cycle=%-10" PRIu64 " tile=%-3u %-10s type=%-11s src=%-3u "
                "dst=%-3u unit=%-3s line=0x%" PRIx64 " seq=%u wire=%u\n",
                e.cycle.value(), tile, to_string(e.kind),
                protocol::to_string(e.type), static_cast<unsigned>(e.src),
                static_cast<unsigned>(e.dst), unit_name(e.dst_unit),
                e.line.value(), e.seq, e.wire_class);
  out << buf;
}

void FlightRecorder::dump(std::ostream& out) const {
  out << "=== tcmp flight recorder post-mortem ===\n";
  out << "tiles=" << rings_.size() << " depth="
      << (rings_.empty() ? 0 : rings_[0].capacity()) << "\n";

  // Rings only expose FIFO access; drain copies (the dump path is cold and
  // the rings are small).
  std::vector<std::vector<Event>> per_tile(rings_.size());
  for (unsigned t = 0; t < rings_.size(); ++t) {
    Ring copy = rings_[t];
    while (!copy.empty()) {
      per_tile[t].push_back(copy.front());
      copy.pop_front();
    }
  }

  for (unsigned t = 0; t < per_tile.size(); ++t) {
    if (per_tile[t].empty()) continue;
    out << "--- tile " << t << " (" << per_tile[t].size()
        << " events, oldest first) ---\n";
    for (const Event& e : per_tile[t]) format_event(out, t, e);
  }

  // Chronologically merged tail: what the whole machine did last.
  struct Tagged {
    unsigned tile;
    const Event* ev;
  };
  std::vector<Tagged> all;
  for (unsigned t = 0; t < per_tile.size(); ++t) {
    for (const Event& e : per_tile[t]) all.push_back({t, &e});
  }
  std::stable_sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    return a.ev->cycle < b.ev->cycle;
  });
  constexpr std::size_t kTail = 128;
  const std::size_t start = all.size() > kTail ? all.size() - kTail : 0;
  out << "--- merged tail (last " << (all.size() - start)
      << " events across all tiles) ---\n";
  for (std::size_t i = start; i < all.size(); ++i) {
    format_event(out, all[i].tile, *all[i].ev);
  }
}

bool FlightRecorder::dump_to_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  dump(out);
  return out.good();
}

}  // namespace tcmp::obs
