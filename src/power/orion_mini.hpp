// Orion-style router energy model [22]. The NoC charges one buffer write on
// flit arrival, one buffer read + crossbar traversal + arbitration on flit
// departure, and per-cycle leakage proportional to router storage/datapath
// width. Constants are representative 65 nm values at 4 GHz of the level of
// abstraction Orion provides to architecture simulators.
#pragma once

#include "common/units.hpp"

namespace tcmp::power {

struct RouterEnergyModel {
  // Per-flit event energies, linear in flit width.
  units::Joules buffer_write_per_bit = units::joules(0.020e-12);  ///< 20 fJ/bit
  units::Joules buffer_read_per_bit = units::joules(0.016e-12);
  units::Joules crossbar_per_bit = units::joules(0.030e-12);
  units::Joules arbitration_per_flit = units::joules(0.20e-12);  ///< per traversal

  // Leakage: per bit of buffer storage plus a fixed per-port datapath term.
  units::Watts leakage_per_buffer_bit = units::watts(18e-9);
  units::Watts leakage_per_port = units::watts(0.4e-3);

  [[nodiscard]] units::Joules buffer_write_energy(unsigned flit_bits) const {
    return buffer_write_per_bit * flit_bits;
  }
  [[nodiscard]] units::Joules buffer_read_energy(unsigned flit_bits) const {
    return buffer_read_per_bit * flit_bits;
  }
  [[nodiscard]] units::Joules crossbar_energy(unsigned flit_bits) const {
    return crossbar_per_bit * flit_bits;
  }
  [[nodiscard]] units::Joules traversal_energy(unsigned flit_bits) const {
    return buffer_read_energy(flit_bits) + crossbar_energy(flit_bits) +
           arbitration_per_flit;
  }

  /// Static power of one router: `ports` in/out port pairs, `vcs` virtual
  /// channels per port of `buffer_flits` flits of `flit_bits` each.
  [[nodiscard]] units::Watts router_leakage(unsigned ports, unsigned vcs,
                                            unsigned buffer_flits,
                                            unsigned flit_bits) const {
    const double storage_bits =
        static_cast<double>(ports) * vcs * buffer_flits * flit_bits;
    return leakage_per_buffer_bit * storage_bits + leakage_per_port * ports;
  }
};

}  // namespace tcmp::power
