// Orion-style router energy model [22]. The NoC charges one buffer write on
// flit arrival, one buffer read + crossbar traversal + arbitration on flit
// departure, and per-cycle leakage proportional to router storage/datapath
// width. Constants are representative 65 nm values at 4 GHz of the level of
// abstraction Orion provides to architecture simulators.
#pragma once

namespace tcmp::power {

struct RouterEnergyModel {
  // Per-flit event energies, linear in flit width.
  double buffer_write_j_per_bit = 0.020e-12;  ///< 20 fJ/bit
  double buffer_read_j_per_bit = 0.016e-12;
  double crossbar_j_per_bit = 0.030e-12;
  double arbitration_j_per_flit = 0.20e-12;  ///< fixed per traversal

  // Leakage: per bit of buffer storage plus a fixed per-port datapath term.
  double leakage_w_per_buffer_bit = 18e-9;
  double leakage_w_per_port = 0.4e-3;

  [[nodiscard]] double buffer_write_j(unsigned flit_bits) const {
    return buffer_write_j_per_bit * flit_bits;
  }
  [[nodiscard]] double buffer_read_j(unsigned flit_bits) const {
    return buffer_read_j_per_bit * flit_bits;
  }
  [[nodiscard]] double crossbar_j(unsigned flit_bits) const {
    return crossbar_j_per_bit * flit_bits;
  }
  [[nodiscard]] double traversal_j(unsigned flit_bits) const {
    return buffer_read_j(flit_bits) + crossbar_j(flit_bits) + arbitration_j_per_flit;
  }

  /// Static power of one router: `ports` in/out port pairs, `vcs` virtual
  /// channels per port of `buffer_flits` flits of `flit_bits` each.
  [[nodiscard]] double router_leakage_w(unsigned ports, unsigned vcs,
                                        unsigned buffer_flits,
                                        unsigned flit_bits) const {
    const double storage_bits =
        static_cast<double>(ports) * vcs * buffer_flits * flit_bits;
    return leakage_w_per_buffer_bit * storage_bits + leakage_w_per_port * ports;
  }
};

}  // namespace tcmp::power
