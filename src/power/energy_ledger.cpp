#include "power/energy_ledger.hpp"

namespace tcmp::power {

const char* to_string(EnergyAccount a) {
  switch (a) {
    case EnergyAccount::kLinkDynamic: return "link.dynamic";
    case EnergyAccount::kLinkStatic: return "link.static";
    case EnergyAccount::kRouterBuffer: return "router.buffer";
    case EnergyAccount::kRouterCrossbar: return "router.crossbar";
    case EnergyAccount::kRouterArbiter: return "router.arbiter";
    case EnergyAccount::kRouterStatic: return "router.static";
    case EnergyAccount::kCompressionDynamic: return "compression.dynamic";
    case EnergyAccount::kCompressionStatic: return "compression.static";
    case EnergyAccount::kCoreDynamic: return "core.dynamic";
    case EnergyAccount::kCoreStatic: return "core.static";
    case EnergyAccount::kL1Dynamic: return "l1.dynamic";
    case EnergyAccount::kL2Dynamic: return "l2.dynamic";
    case EnergyAccount::kCacheStatic: return "cache.static";
    case EnergyAccount::kMemoryDynamic: return "memory.dynamic";
    case EnergyAccount::kCount: break;
  }
  return "?";
}

units::Joules EnergyLedger::interconnect_total() const {
  units::Joules sum;
  for (auto a : {EnergyAccount::kLinkDynamic, EnergyAccount::kLinkStatic,
                 EnergyAccount::kRouterBuffer, EnergyAccount::kRouterCrossbar,
                 EnergyAccount::kRouterArbiter, EnergyAccount::kRouterStatic,
                 EnergyAccount::kCompressionDynamic,
                 EnergyAccount::kCompressionStatic}) {
    sum += get(a);
  }
  return sum;
}

units::Joules EnergyLedger::total() const {
  units::Joules sum;
  for (units::Joules v : accounts_) sum += v;
  return sum;
}

EnergyLedger& EnergyLedger::operator+=(const EnergyLedger& other) {
  for (std::size_t i = 0; i < accounts_.size(); ++i) accounts_[i] += other.accounts_[i];
  return *this;
}

}  // namespace tcmp::power
