// Analytical area/energy/leakage model for the small storage structures the
// compression schemes add (paper Table 1, measured there with CACTI 4.1 at
// 65 nm).
//
// Two array kinds are modelled:
//  * kCam — the DBRC compression cache / receiver register files. Lookup is
//    content-addressed on the high-order address bits, so cells are CAM-like
//    (large cells, matchline drivers) with periphery scaling ~sqrt(bits).
//  * kRegister — the Stride base registers (flip-flop rows, trivial
//    periphery).
//
// The coefficients are calibrated against the four Table 1 rows; endpoints
// match by construction and mid-sized arrays land within ~±30% (printed by
// bench/table1_compression_hw and recorded in EXPERIMENTS.md).
#pragma once

namespace tcmp::power {

enum class ArrayKind { kCam, kRegister };

struct ArrayParams {
  ArrayKind kind = ArrayKind::kCam;
  unsigned entries = 4;
  unsigned bits_per_entry = 64;

  [[nodiscard]] unsigned bits() const { return entries * bits_per_entry; }
};

struct ArrayCosts {
  double area_mm2 = 0.0;
  double access_energy_j = 0.0;  ///< one lookup or one update
  double leakage_w = 0.0;

  ArrayCosts& operator+=(const ArrayCosts& o) {
    area_mm2 += o.area_mm2;
    access_energy_j += o.access_energy_j;
    leakage_w += o.leakage_w;
    return *this;
  }
};

/// Cost of a single array instance at 65 nm.
[[nodiscard]] ArrayCosts array_costs(const ArrayParams& p);

/// Reference area of one tile/core (25 mm^2, Table 4) used for the
/// percentage columns of Table 1.
inline constexpr double kCoreAreaMm2 = 25.0;

/// Reference per-core max dynamic power and static power used for the
/// percentage columns of Table 1 (derived from the paper's 0.48% == 0.1065 W
/// and 0.29% == 10.78 mW anchors).
inline constexpr double kCoreMaxDynPowerW = 22.2;
inline constexpr double kCoreStaticPowerW = 3.72;

}  // namespace tcmp::power
