// Analytical area/energy/leakage model for the small storage structures the
// compression schemes add (paper Table 1, measured there with CACTI 4.1 at
// 65 nm).
//
// Two array kinds are modelled:
//  * kCam — the DBRC compression cache / receiver register files. Lookup is
//    content-addressed on the high-order address bits, so cells are CAM-like
//    (large cells, matchline drivers) with periphery scaling ~sqrt(bits).
//  * kRegister — the Stride base registers (flip-flop rows, trivial
//    periphery).
//
// The coefficients are calibrated against the four Table 1 rows; endpoints
// match by construction and mid-sized arrays land within ~±30% (printed by
// bench/table1_compression_hw and recorded in EXPERIMENTS.md).
#pragma once

#include "common/units.hpp"

namespace tcmp::power {

enum class ArrayKind { kCam, kRegister };

struct ArrayParams {
  ArrayKind kind = ArrayKind::kCam;
  unsigned entries = 4;
  unsigned bits_per_entry = 64;

  [[nodiscard]] unsigned bits() const { return entries * bits_per_entry; }
};

struct ArrayCosts {
  units::SquareMeters area;
  units::Joules access_energy;  ///< one lookup or one update
  units::Watts leakage;

  ArrayCosts& operator+=(const ArrayCosts& o) {
    area += o.area;
    access_energy += o.access_energy;
    leakage += o.leakage;
    return *this;
  }
};

/// Cost of a single array instance at 65 nm.
[[nodiscard]] ArrayCosts array_costs(const ArrayParams& p);

/// Reference area of one tile/core (25 mm^2, Table 4) used for the
/// percentage columns of Table 1.
inline constexpr units::SquareMeters kCoreArea = units::mm2(25.0);

/// Reference per-core max dynamic power and static power used for the
/// percentage columns of Table 1 (derived from the paper's 0.48% == 0.1065 W
/// and 0.29% == 10.78 mW anchors).
inline constexpr units::Watts kCoreMaxDynPower = units::watts(22.2);
inline constexpr units::Watts kCoreStaticPower = units::watts(3.72);

}  // namespace tcmp::power
