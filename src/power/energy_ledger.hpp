// Energy accounting. Every component charges joules to a named account; the
// report layer aggregates link/router/compression accounts into the
// "interconnect" energy the paper's Figure 6 (bottom) uses, and all accounts
// into the full-CMP energy of Figure 7.
#pragma once

#include <array>
#include <cstddef>

namespace tcmp::power {

enum class EnergyAccount : std::size_t {
  kLinkDynamic = 0,
  kLinkStatic,
  kRouterBuffer,
  kRouterCrossbar,
  kRouterArbiter,
  kRouterStatic,
  kCompressionDynamic,
  kCompressionStatic,
  kCoreDynamic,
  kCoreStatic,
  kL1Dynamic,
  kL2Dynamic,
  kCacheStatic,
  kMemoryDynamic,
  kCount,
};

[[nodiscard]] const char* to_string(EnergyAccount a);

class EnergyLedger {
 public:
  void add(EnergyAccount account, double joules) {
    accounts_[static_cast<std::size_t>(account)] += joules;
  }

  [[nodiscard]] double get(EnergyAccount account) const {
    return accounts_[static_cast<std::size_t>(account)];
  }

  /// Links + routers + compression hardware: the "interconnect" energy whose
  /// ED2P Figure 6 (bottom) reports.
  [[nodiscard]] double interconnect_total() const;

  /// Everything, for the full-CMP ED2P of Figure 7.
  [[nodiscard]] double total() const;

  void reset() { accounts_.fill(0.0); }

  EnergyLedger& operator+=(const EnergyLedger& other);

 private:
  std::array<double, static_cast<std::size_t>(EnergyAccount::kCount)> accounts_{};
};

}  // namespace tcmp::power
