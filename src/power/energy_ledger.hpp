// Energy accounting. Every component charges joules to a named account; the
// report layer aggregates link/router/compression accounts into the
// "interconnect" energy the paper's Figure 6 (bottom) uses, and all accounts
// into the full-CMP energy of Figure 7. Accounts are dimension-checked:
// only units::Joules can be charged.
#pragma once

#include <array>
#include <cstddef>

#include "common/units.hpp"

namespace tcmp::power {

enum class EnergyAccount : std::size_t {
  kLinkDynamic = 0,
  kLinkStatic,
  kRouterBuffer,
  kRouterCrossbar,
  kRouterArbiter,
  kRouterStatic,
  kCompressionDynamic,
  kCompressionStatic,
  kCoreDynamic,
  kCoreStatic,
  kL1Dynamic,
  kL2Dynamic,
  kCacheStatic,
  kMemoryDynamic,
  kCount,
};

[[nodiscard]] const char* to_string(EnergyAccount a);

class EnergyLedger {
 public:
  void add(EnergyAccount account, units::Joules amount) {
    accounts_[static_cast<std::size_t>(account)] += amount;
  }

  [[nodiscard]] units::Joules get(EnergyAccount account) const {
    return accounts_[static_cast<std::size_t>(account)];
  }

  /// Links + routers + compression hardware: the "interconnect" energy whose
  /// ED2P Figure 6 (bottom) reports.
  [[nodiscard]] units::Joules interconnect_total() const;

  /// Everything, for the full-CMP ED2P of Figure 7.
  [[nodiscard]] units::Joules total() const;

  void reset() { accounts_.fill(units::Joules{}); }

  EnergyLedger& operator+=(const EnergyLedger& other);

 private:
  std::array<units::Joules, static_cast<std::size_t>(EnergyAccount::kCount)> accounts_{};
};

}  // namespace tcmp::power
