// Energy-delay metrics (the paper reports ED^2P normalized to the baseline).
#pragma once

#include "common/check.hpp"
#include "common/units.hpp"

namespace tcmp::power {

/// Energy-delay-squared product: E * T^2. Units cancel in normalized
/// comparisons; pass energy in joules and delay in seconds (or cycles,
/// consistently).
[[nodiscard]] inline double ed2p(double energy, double delay) {
  return energy * delay * delay;
}

/// Dimension-checked overload: joules in, seconds in — anything else is a
/// compile error.
[[nodiscard]] inline double ed2p(units::Joules energy, units::Seconds delay) {
  return energy.value() * delay.value() * delay.value();
}

/// Energy-delay product.
[[nodiscard]] inline double edp(double energy, double delay) { return energy * delay; }

[[nodiscard]] inline double edp(units::Joules energy, units::Seconds delay) {
  return energy.value() * delay.value();
}

/// value/baseline with a guard against a degenerate baseline.
[[nodiscard]] inline double normalized(double value, double baseline) {
  TCMP_CHECK_MSG(baseline > 0.0, "normalization baseline must be positive");
  return value / baseline;
}

}  // namespace tcmp::power
