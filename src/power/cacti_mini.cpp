#include "power/cacti_mini.hpp"

#include <cmath>

#include "common/check.hpp"

namespace tcmp::power {
namespace {

// CAM-array coefficients, fitted to the 4-entry and 64-entry DBRC rows of
// Table 1 (34 structures of 32 B / 512 B per core). Cell term covers the
// CAM cell + matchline driver; the sqrt term covers decoder/sense periphery.
constexpr double kCamAreaUm2PerBit = 5.12;
constexpr double kCamAreaUm2PerSqrtBit = 51.0;
constexpr double kCamEnergyPjPerBit = 6.74e-4;
constexpr double kCamEnergyPjPerSqrtBit = 3.81e-2;
constexpr double kCamLeakMwPerBit = 8.65e-4;
constexpr double kCamLeakMwPerSqrtBit = 5.98e-3;

// Flip-flop register rows, fitted to the 2-byte Stride row.
constexpr double kRegAreaUm2PerBit = 11.8;
constexpr double kRegEnergyPjPerBit = 6.4e-3;
constexpr double kRegLeakMwPerBit = 2.36e-3;

}  // namespace

ArrayCosts array_costs(const ArrayParams& p) {
  TCMP_CHECK(p.entries >= 1 && p.bits_per_entry >= 1);
  const double bits = static_cast<double>(p.bits());
  const double root = std::sqrt(bits);
  ArrayCosts c;
  if (p.kind == ArrayKind::kCam) {
    c.area = units::mm2((kCamAreaUm2PerBit * bits + kCamAreaUm2PerSqrtBit * root) * 1e-6);
    c.access_energy =
        units::joules((kCamEnergyPjPerBit * bits + kCamEnergyPjPerSqrtBit * root) * 1e-12);
    c.leakage = units::watts((kCamLeakMwPerBit * bits + kCamLeakMwPerSqrtBit * root) * 1e-3);
  } else {
    c.area = units::mm2(kRegAreaUm2PerBit * bits * 1e-6);
    c.access_energy = units::joules(kRegEnergyPjPerBit * bits * 1e-12);
    c.leakage = units::watts(kRegLeakMwPerBit * bits * 1e-3);
  }
  return c;
}

}  // namespace tcmp::power
