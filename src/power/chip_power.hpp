// Per-event chip power model for the non-interconnect parts of the CMP
// (cores, L1/L2 caches, memory accesses). Sim-PowerCMP used Wattch + CACTI +
// HotLeakage for this; we use per-event energies of the same granularity,
// calibrated so the interconnect carries ~25-35% of total chip power on the
// evaluated workloads (consistent with the Raw/Magen observations the paper
// cites: 36% / 50% of chip power in the interconnect).
#pragma once

namespace tcmp::power {

struct ChipPowerModel {
  // Dynamic event energies (65 nm HP, 4 GHz, in-order 2-way core). The
  // absolute scale is deliberately matched to the same worst-case 65 nm HP
  // leakage assumptions as the paper's Table 2 wire numbers, so that the
  // interconnect's share of full-chip energy lands in the ~35-40% range the
  // paper's Fig. 6/7 relationship implies (and Wang'02/Magen'04 report).
  double core_energy_per_instr_j = 1.2e-9;  ///< pipeline + RF + bypass
  double l1_access_j = 0.1e-9;              ///< 32 KB 4-way read/write
  double l2_access_j = 0.5e-9;              ///< 256 KB bank access
  double mem_access_j = 10e-9;              ///< off-chip DRAM access (per line)

  // Leakage per tile (core + L1 + L2 slice), drawn every cycle.
  double core_leakage_w = 8.0;
  double cache_leakage_w = 4.0;

  [[nodiscard]] double tile_leakage_w() const { return core_leakage_w + cache_leakage_w; }
};

}  // namespace tcmp::power
