// Per-event chip power model for the non-interconnect parts of the CMP
// (cores, L1/L2 caches, memory accesses). Sim-PowerCMP used Wattch + CACTI +
// HotLeakage for this; we use per-event energies of the same granularity,
// calibrated so the interconnect carries ~25-35% of total chip power on the
// evaluated workloads (consistent with the Raw/Magen observations the paper
// cites: 36% / 50% of chip power in the interconnect).
#pragma once

#include "common/units.hpp"

namespace tcmp::power {

struct ChipPowerModel {
  // Dynamic event energies (65 nm HP, 4 GHz, in-order 2-way core). The
  // absolute scale is deliberately matched to the same worst-case 65 nm HP
  // leakage assumptions as the paper's Table 2 wire numbers, so that the
  // interconnect's share of full-chip energy lands in the ~35-40% range the
  // paper's Fig. 6/7 relationship implies (and Wang'02/Magen'04 report).
  units::Joules core_energy_per_instr = units::joules(1.2e-9);  ///< pipeline + RF
  units::Joules l1_access = units::joules(0.1e-9);   ///< 32 KB 4-way read/write
  units::Joules l2_access = units::joules(0.5e-9);   ///< 256 KB bank access
  units::Joules mem_access = units::joules(10e-9);   ///< off-chip DRAM (per line)

  // Leakage per tile (core + L1 + L2 slice), drawn every cycle.
  units::Watts core_leakage = units::watts(8.0);
  units::Watts cache_leakage = units::watts(4.0);

  [[nodiscard]] units::Watts tile_leakage() const {
    return core_leakage + cache_leakage;
  }
};

}  // namespace tcmp::power
