#include "wire/wire_spec.hpp"

#include <cmath>

#include "common/check.hpp"

namespace tcmp::wire {

namespace u = units;

const char* to_string(WireClass w) {
  switch (w) {
    case WireClass::kB8X: return "B-Wire (8X)";
    case WireClass::kB4X: return "B-Wire (4X)";
    case WireClass::kL8X: return "L-Wire (8X)";
    case WireClass::kPW4X: return "PW-Wire (4X)";
    case WireClass::kVL: return "VL-Wire (8X)";
  }
  return "?";
}

unsigned WireSpec::link_cycles(double link_length_mm, u::Hertz freq) const {
  const double delay_s = ps_per_mm * 1e-12 * link_length_mm;
  const double cycles = delay_s * freq.value();
  return static_cast<unsigned>(std::max(1.0, std::ceil(cycles - 1e-9)));
}

WireSpec paper_spec(WireClass w, unsigned vl_bytes) {
  WireSpec s;
  s.name = to_string(w);
  const auto row = [&s](double rel_lat, double rel_area, double dyn_w_per_m,
                        double static_w_per_m) {
    s.rel_latency = rel_lat;
    s.rel_area = rel_area;
    s.dyn_power = u::WattsPerMeter{dyn_w_per_m};
    s.static_power = u::WattsPerMeter{static_w_per_m};
  };
  switch (w) {
    case WireClass::kB8X:
      row(1.0, 1.0, 2.65, 1.0246);
      break;
    case WireClass::kB4X:
      row(1.6, 0.5, 2.90, 1.1578);
      break;
    case WireClass::kL8X:
      row(0.5, 4.0, 1.46, 0.5670);
      break;
    case WireClass::kPW4X:
      row(3.2, 0.5, 0.87, 0.3074);
      break;
    case WireClass::kVL:
      // Table 3 rows, keyed by the VL bundle width.
      switch (vl_bytes) {
        case 3: s.name = "VL-Wire 3B (8X)"; row(0.27, 14.0, 0.87, 0.3065); break;
        case 4: s.name = "VL-Wire 4B (8X)"; row(0.31, 10.0, 1.00, 0.3910); break;
        case 5: s.name = "VL-Wire 5B (8X)"; row(0.35, 8.0, 1.13, 0.4395); break;
        default:
          TCMP_CHECK_MSG(false, "VL-Wire width must be 3, 4 or 5 bytes");
      }
      break;
  }
  s.ps_per_mm = kBWirePsPerMm * s.rel_latency;
  return s;
}

WireGeometry geometry_of(WireClass w, unsigned vl_bytes) {
  switch (w) {
    case WireClass::kB8X: return {MetalPlane::k8X, 1.0, 1.0};
    case WireClass::kB4X: return {MetalPlane::k4X, 1.0, 1.0};
    case WireClass::kL8X: return {MetalPlane::k8X, 2.0, 6.0};
    case WireClass::kPW4X: return {MetalPlane::k4X, 1.0, 1.0};
    case WireClass::kVL: {
      // VL-Wires split their area slack evenly between width (lower R) and
      // spacing (lower coupling C); the delay-optimal point over a 14x/10x/8x
      // pitch reproduces Table 3's latency to within ~15%.
      const double pitch_tracks = paper_spec(WireClass::kVL, vl_bytes).rel_area;
      return {MetalPlane::k8X, pitch_tracks, pitch_tracks};
    }
  }
  TCMP_CHECK(false);
  return {};
}

WireSpec model_spec(WireClass w, unsigned vl_bytes) {
  const TechParams& tech = TechParams::itrs65();
  const WireGeometry geo = geometry_of(w, vl_bytes);

  RepeaterDesign design;
  if (w == WireClass::kPW4X) {
    // PW-Wires: power-optimal repeaters at a 2x delay penalty over the
    // delay-optimal 4X design (3.2x / 1.6x in Table 2).
    design = power_optimal_design(tech, geo, 2.0);
  } else {
    design = delay_optimal_design(tech, geo);
  }

  const WireGeometry base_geo = geometry_of(WireClass::kB8X);
  const RepeaterDesign base_design = delay_optimal_design(tech, base_geo);
  const u::SecondsPerMeter base_delay = delay_per_m(tech, base_geo, base_design);

  WireSpec s;
  s.name = to_string(w);
  if (w == WireClass::kVL) s.name = paper_spec(w, vl_bytes).name;
  s.rel_latency = delay_per_m(tech, geo, design) / base_delay;
  // Track pitch in absolute terms: a 1x 4X-plane wire occupies half the
  // pitch of a 1x 8X-plane wire (Table 2's 0.5x relative area).
  const auto pitch = [&tech](const WireGeometry& g) {
    const PlaneParams& p = tech.plane(g.plane);
    return p.min_width * g.width_mult + p.min_spacing * g.spacing_mult;
  };
  s.rel_area = pitch(geo) / pitch(base_geo);
  s.dyn_power = switching_power_per_m(tech, geo, design);
  s.static_power = leakage_power_per_m(tech, design);
  s.ps_per_mm = kBWirePsPerMm * s.rel_latency;
  return s;
}

}  // namespace tcmp::wire
