// 65 nm process/interconnect parameters used by the analytical wire model.
//
// The paper (Sec. 3.2) models a wire as a first-order RC circuit driven by a
// repeater (Eq. 1) and computes repeater power from Eq. 2-4. The constants
// below describe the two global metal planes the paper considers (4X and 8X,
// after [14]) plus the repeater device parameters. They are calibrated so the
// model lands near the published Table 2/3 characteristics; the calibration is
// validated by bench/table2_wire_characteristics and
// bench/table3_vlwire_characteristics.
//
// All quantities are dimension-checked units::Quantity values (SI).
#pragma once

#include "common/units.hpp"

namespace tcmp::wire {

/// Metal plane for global routing. 8X wires are wide/thick (fast); 4X wires
/// are half-pitch (dense, slower).
enum class MetalPlane { k4X, k8X };

struct PlaneParams {
  units::Meters min_width;    ///< minimum (1x) wire width for this plane
  units::Meters min_spacing;  ///< minimum (1x) spacing for this plane
  units::Meters thickness;    ///< metal thickness
  /// Capacitance-per-meter decomposition at 1x width / 1x spacing.
  /// c_ground scales with width; c_coupling scales with 1/spacing;
  /// c_fringe is constant. Global fat wires are coupling-dominated.
  units::FaradsPerMeter c_ground;
  units::FaradsPerMeter c_coupling;
  units::FaradsPerMeter c_fringe;
};

struct TechParams {
  units::OhmMeters resistivity;  ///< copper, incl. barrier/scattering derating

  // Repeater (minimum-sized inverter) characteristics.
  units::Ohms r_gate_min;    ///< effective driver resistance of a 1x inverter
  units::Farads c_gate_min;  ///< input capacitance of a 1x inverter
  units::Farads c_diff_min;  ///< diffusion (output) capacitance of a 1x inverter
  units::AmperesPerMeter i_off_n;  ///< NMOS leakage current per transistor width
  units::AmperesPerMeter i_off_p;  ///< PMOS leakage current per transistor width
  units::Meters w_nmos_min;        ///< NMOS width in a 1x inverter
  units::Meters w_pmos_min;        ///< PMOS width in a 1x inverter

  units::Volts vdd;
  units::Hertz freq;

  /// Multiplies the raw Elmore delay: lumps the 0.69 ln(2) step-response
  /// factor, input-slope degradation, via/jog resistance and process
  /// guard-banding. Calibrated so a delay-optimal 8X B-wire comes out near
  /// 130 ps/mm at 65 nm.
  double delay_derating = 1.0;

  /// Multiplies Eq. (3) switching power to account for repeater
  /// short-circuit current and clock distribution overheads. Calibrated so a
  /// B-Wire dissipates ~2.65 W/m at alpha = 1 (Table 2).
  double short_circuit_factor = 1.0;

  /// Signal propagation floor for very wide wires (LC / transmission-line
  /// regime): below this nothing helps. Includes driver overhead. Very wide
  /// VL-wires operate near this floor.
  units::SecondsPerMeter lc_floor;

  PlaneParams plane_4x;
  PlaneParams plane_8x;

  [[nodiscard]] const PlaneParams& plane(MetalPlane p) const {
    return p == MetalPlane::k8X ? plane_8x : plane_4x;
  }

  /// The 65 nm technology point used throughout the paper.
  static const TechParams& itrs65();
};

}  // namespace tcmp::wire
