// Wire catalogs: the canonical per-wire characteristics of each wire class.
//
// Two sources are provided:
//  * paper_spec() — the published Table 2 / Table 3 constants. The simulator
//    uses these so that energy/latency accounting reproduces the paper.
//  * model_spec() — the same quantities derived from the first-order RC +
//    repeater model (rc_model.hpp). bench/table2_* and bench/table3_* print
//    both side by side; EXPERIMENTS.md records the deviations.
//
// Absolute anchor: a delay-optimal 8X B-Wire is taken as 130 ps/mm, which at
// 4 GHz makes a 5 mm inter-router link 2.6 cycles (quantized to 3), and puts
// VL-Wires (0.27x-0.35x) at 1 cycle per link.
#pragma once

#include <string>

#include "common/units.hpp"
#include "wire/rc_model.hpp"

namespace tcmp::wire {

/// Wire classes from the paper. B = baseline, L = low-latency (4x area),
/// PW = power-optimized, VL = very-low-latency (Table 3; parameterized by the
/// byte-width of the VL bundle: 3, 4 or 5 bytes).
enum class WireClass { kB8X, kB4X, kL8X, kPW4X, kVL };

[[nodiscard]] const char* to_string(WireClass w);

struct WireSpec {
  std::string name;
  double rel_latency = 1.0;  ///< delay per meter relative to B-8X
  double rel_area = 1.0;     ///< track pitch per wire relative to B-8X
  units::WattsPerMeter dyn_power;     ///< per wire, at switching factor alpha = 1
  units::WattsPerMeter static_power;  ///< per wire
  /// Absolute latency in the paper's ps/mm units. Kept as a raw double on
  /// purpose: it anchors the ceil-quantized link_cycles() computation, whose
  /// bit-exact value is part of the published calibration.
  double ps_per_mm = 0.0;  // tcmplint: allow-raw-unit

  /// Absolute latency as a dimension-checked quantity.
  [[nodiscard]] units::SecondsPerMeter latency_per_m() const {
    return units::SecondsPerMeter{ps_per_mm * 1e-9};
  }

  /// Link traversal latency in whole clock cycles for a link of
  /// `link_length_mm` (paper units, config boundary) at `freq` (at least 1).
  [[nodiscard]] unsigned link_cycles(double link_length_mm,  // tcmplint: allow-raw-unit
                                     units::Hertz freq) const;
};

inline constexpr double kBWirePsPerMm = 130.0;

/// Published Table 2 / Table 3 values. For kVL, vl_bytes selects the 3/4/5
/// byte row of Table 3; it is ignored for other classes.
[[nodiscard]] WireSpec paper_spec(WireClass w, unsigned vl_bytes = 4);

/// Same quantities from the analytical model (geometry + repeater design).
[[nodiscard]] WireSpec model_spec(WireClass w, unsigned vl_bytes = 4);

/// The geometry the model assumes for each class (exposed for tests/benches).
[[nodiscard]] WireGeometry geometry_of(WireClass w, unsigned vl_bytes = 4);

}  // namespace tcmp::wire
