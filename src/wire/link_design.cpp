#include "wire/link_design.hpp"

#include "common/check.hpp"

namespace tcmp::wire {

LinkPartition baseline_link() { return LinkPartition{}; }

LinkPartition paper_het_link(unsigned vl_bytes) {
  TCMP_CHECK_MSG(vl_bytes >= 3 && vl_bytes <= 5, "paper VL widths are 3-5 bytes");
  const WireSpec vl = paper_spec(WireClass::kVL, vl_bytes);
  LinkPartition p;
  p.style = LinkStyle::kVlHet;
  p.vl_bytes = Bytes{vl_bytes};
  p.vl_wires = vl_bytes * 8;
  p.vl_tracks = p.vl_wires * vl.rel_area;
  p.b_bytes = Bytes{34};  // fixed by the paper for all three widths
  p.b_wires = p.b_bytes * 8;
  p.total_tracks = p.vl_tracks + p.b_wires;
  return p;
}

LinkPartition computed_het_link(unsigned vl_bytes, double track_budget) {
  TCMP_CHECK(vl_bytes >= 3 && vl_bytes <= 5);
  const WireSpec vl = paper_spec(WireClass::kVL, vl_bytes);
  LinkPartition p;
  p.style = LinkStyle::kVlHet;
  p.vl_bytes = Bytes{vl_bytes};
  p.vl_wires = vl_bytes * 8;
  p.vl_tracks = p.vl_wires * vl.rel_area;
  const double remaining = track_budget - p.vl_tracks;
  TCMP_CHECK_MSG(remaining >= 8.0, "VL bundle leaves no room for B-Wires");
  p.b_bytes = Bytes{static_cast<unsigned>(remaining / 8.0)};
  p.b_wires = p.b_bytes * 8;
  p.total_tracks = p.vl_tracks + p.b_wires;
  return p;
}

LinkPartition cheng3way_link() {
  const WireSpec l = paper_spec(WireClass::kL8X);
  const WireSpec pw = paper_spec(WireClass::kPW4X);
  LinkPartition p;
  p.style = LinkStyle::kCheng3Way;
  p.l_bytes = Bytes{11};  // one uncompressed short message per flit
  p.l_wires = p.l_bytes * 8;
  p.l_tracks = p.l_wires * l.rel_area;  // 352
  p.pw_bytes = Bytes{28};
  p.pw_wires = p.pw_bytes * 8;
  p.pw_tracks = p.pw_wires * pw.rel_area;  // 112
  p.b_bytes = Bytes{17};
  p.b_wires = p.b_bytes * 8;  // 136
  p.total_tracks = p.l_tracks + p.pw_tracks + p.b_wires;
  TCMP_CHECK(p.total_tracks <= 600.0 + 1e-9);
  return p;
}

}  // namespace tcmp::wire
