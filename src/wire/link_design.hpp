// Area-matched heterogeneous link partitioning (paper Sec. 4.3).
//
// The baseline unidirectional link is 75 bytes of B-Wires = 600 wire tracks.
// The heterogeneous link re-partitions the same metal area into a VL bundle
// (3, 4 or 5 bytes at 14x/10x/8x tracks per wire) plus 34 bytes of B-Wires
// (272 wires): 24*14 + 272 = 608, 32*10 + 272 = 592, 40*8 + 272 = 592 — all
// within ~1.3% of the 600-track budget, as in the paper.
#pragma once

#include "common/types.hpp"
#include "wire/wire_spec.hpp"

namespace tcmp::wire {

/// How the 600-track link budget is spent.
enum class LinkStyle {
  kBaseline,   ///< one 75-byte B-Wire channel (the paper's baseline)
  kVlHet,      ///< the paper's proposal: VL bundle + 34 B of B-Wires
  kCheng3Way,  ///< Cheng et al. [6]: L-Wires + B-Wires + PW-Wires subnets
};

struct LinkPartition {
  LinkStyle style = LinkStyle::kBaseline;

  // VL bundle (kVlHet only).
  Bytes vl_bytes{0};
  unsigned vl_wires = 0;
  double vl_tracks = 0.0;  ///< B-wire-equivalent tracks used by the bundle

  // L / PW subnets (kCheng3Way only).
  Bytes l_bytes{0};
  unsigned l_wires = 0;
  double l_tracks = 0.0;
  Bytes pw_bytes{0};
  unsigned pw_wires = 0;
  double pw_tracks = 0.0;

  Bytes b_bytes{75};
  unsigned b_wires = 600;
  double total_tracks = 600.0;

  /// The paper's proposal (VL channel present).
  [[nodiscard]] bool heterogeneous() const { return style == LinkStyle::kVlHet; }
  /// Fractional deviation from the 600-track baseline budget (signed).
  [[nodiscard]] double area_overshoot() const { return total_tracks / 600.0 - 1.0; }
};

/// The baseline homogeneous 75-byte B-Wire link.
[[nodiscard]] LinkPartition baseline_link();

/// The paper's heterogeneous partition for a given VL width (3, 4 or 5 bytes):
/// VL bundle + 34 bytes of B-Wires.
[[nodiscard]] LinkPartition paper_het_link(unsigned vl_bytes);

/// General area-matched partition: given a VL width, spend as much of the
/// 600-track budget on B-Wires as fits alongside the VL bundle (whole bytes).
/// Used by the VL-width ablation bench.
[[nodiscard]] LinkPartition computed_het_link(unsigned vl_bytes,
                                              double track_budget = 600.0);

/// Cheng et al. [6]'s three-subnet link inside the same 600-track budget:
/// an 11-byte L-Wire subnet carries short critical messages uncompressed in
/// one fast flit (88 wires x 4 tracks = 352), a 17-byte B-Wire subnet
/// carries data (136 tracks), and a 28-byte PW-Wire subnet on the 4X plane
/// carries non-critical traffic at low power (224 wires x 0.5 = 112 tracks).
/// Total 600. This is the comparison point the paper reports "insignificant
/// performance improvements" for on direct topologies.
[[nodiscard]] LinkPartition cheng3way_link();

}  // namespace tcmp::wire
