// First-order RC wire model with repeater insertion — the paper's Eq. (1)-(4).
//
// A WireGeometry (plane + width/spacing multipliers) determines R_wire and
// C_wire per meter. A RepeaterDesign (size s, spacing l) determines delay per
// meter (Eq. 1, applied per segment), switching power (Eq. 3) and leakage
// (Eq. 4). Two design points are provided: delay-optimal (classic Bakoglu
// sizing, used by B/L/VL wires) and power-optimal under a delay constraint
// (Banerjee methodology [2], used by PW wires).
//
// Every signature is dimension-checked: mixing up e.g. a per-meter delay
// with a per-segment delay no longer type-checks.
#pragma once

#include "common/units.hpp"
#include "wire/technology.hpp"

namespace tcmp::wire {

struct WireGeometry {
  MetalPlane plane = MetalPlane::k8X;
  double width_mult = 1.0;    ///< wire width as a multiple of the plane minimum
  double spacing_mult = 1.0;  ///< spacing as a multiple of the plane minimum

  /// Track pitch relative to a 1x wire on the same plane — the "relative
  /// area" column of Tables 2/3.
  [[nodiscard]] double area_mult() const { return (width_mult + spacing_mult) / 2.0; }
};

struct RepeaterDesign {
  double size = 1.0;  ///< repeater size as a multiple of a min inverter
  units::Meters spacing = units::Meters{1e-3};  ///< distance between repeaters
};

/// Wire resistance per meter for a geometry (rho / (w * t)).
[[nodiscard]] units::OhmsPerMeter r_wire_per_m(const TechParams& tech,
                                               const WireGeometry& g);

/// Wire capacitance per meter: ground (prop. to width) + coupling
/// (inv. prop. to spacing) + fringe.
[[nodiscard]] units::FaradsPerMeter c_wire_per_m(const TechParams& tech,
                                                 const WireGeometry& g);

/// Delay of one repeated segment of length l driven by a repeater of size s —
/// paper Eq. (1) scaled by the technology derating factor.
[[nodiscard]] units::Seconds segment_delay(const TechParams& tech,
                                           const WireGeometry& g,
                                           const RepeaterDesign& d);

/// End-to-end delay per meter for a repeated wire, with the LC propagation
/// floor applied (very wide wires are transmission-line limited, not RC
/// limited).
[[nodiscard]] units::SecondsPerMeter delay_per_m(const TechParams& tech,
                                                 const WireGeometry& g,
                                                 const RepeaterDesign& d);

/// Classic delay-optimal repeater sizing/spacing for the geometry.
[[nodiscard]] RepeaterDesign delay_optimal_design(const TechParams& tech,
                                                  const WireGeometry& g);

/// Power-optimal design (Banerjee [2]): minimizes total wire power subject to
/// delay <= delay_penalty * delay-optimal delay. delay_penalty >= 1.
[[nodiscard]] RepeaterDesign power_optimal_design(const TechParams& tech,
                                                  const WireGeometry& g,
                                                  double delay_penalty);

/// Eq. (3): switching power per meter of one wire at activity factor alpha=1.
/// Callers scale by the actual per-message activity.
[[nodiscard]] units::WattsPerMeter switching_power_per_m(const TechParams& tech,
                                                         const WireGeometry& g,
                                                         const RepeaterDesign& d);

/// Eq. (2)+(4): leakage power per meter of one wire (all repeaters).
[[nodiscard]] units::WattsPerMeter leakage_power_per_m(const TechParams& tech,
                                                       const RepeaterDesign& d);

}  // namespace tcmp::wire
