#include "wire/technology.hpp"

namespace tcmp::wire {

const TechParams& TechParams::itrs65() {
  static const TechParams tech = [] {
    TechParams t{};
    t.resistivity_ohm_m = 2.2e-8;  // Cu with barrier at 65 nm

    t.r_gate_min_ohm = 15e3;
    t.c_gate_min_f = 0.15e-15;
    t.c_diff_min_f = 0.10e-15;
    // Worst-case (100 C) leakage for 65 nm HP devices; calibrated so a
    // delay-optimal B-Wire leaks ~1 W/m as in Table 2.
    t.i_off_n_a_per_m = 12.8;  // 12.8 uA/um
    t.i_off_p_a_per_m = 6.4;
    t.w_nmos_min_m = 0.10e-6;
    t.w_pmos_min_m = 0.20e-6;

    t.vdd_v = 1.1;
    t.freq_hz = 4e9;  // Table 4: 4 GHz cores

    t.delay_derating = 11.0;
    t.short_circuit_factor = 1.55;
    t.lc_floor_s_per_m = 28e-9;  // 28 ps/mm

    // 8X plane: ~0.8 um width/spacing, 1.2 um thick. Coupling-dominated.
    t.plane_8x = PlaneParams{
        .min_width_m = 0.8e-6,
        .min_spacing_m = 0.8e-6,
        .thickness_m = 1.2e-6,
        .c_ground_f_per_m = 0.015e-9,    // 15 aF/um
        .c_coupling_f_per_m = 0.140e-9,  // 140 aF/um
        .c_fringe_f_per_m = 0.030e-9,    // 30 aF/um
    };
    // 4X plane: half pitch, thinner metal -> ~2.8x resistance, similar C.
    t.plane_4x = PlaneParams{
        .min_width_m = 0.4e-6,
        .min_spacing_m = 0.4e-6,
        .thickness_m = 0.85e-6,
        .c_ground_f_per_m = 0.020e-9,
        .c_coupling_f_per_m = 0.160e-9,
        .c_fringe_f_per_m = 0.030e-9,
    };
    return t;
  }();
  return tech;
}

}  // namespace tcmp::wire
