#include "wire/technology.hpp"

namespace tcmp::wire {

namespace u = units;

const TechParams& TechParams::itrs65() {
  // const once-init: C++ magic-static initialization is thread-safe, and the
  // table is immutable afterwards, so concurrent sweep workers may share it
  // (the mutable-static lint allows exactly this form).
  static const TechParams tech = [] {
    TechParams t{};
    t.resistivity = u::OhmMeters{2.2e-8};  // Cu with barrier at 65 nm

    t.r_gate_min = u::ohms(15e3);
    t.c_gate_min = u::farads(0.15e-15);
    t.c_diff_min = u::farads(0.10e-15);
    // Worst-case (100 C) leakage for 65 nm HP devices; calibrated so a
    // delay-optimal B-Wire leaks ~1 W/m as in Table 2.
    t.i_off_n = u::AmperesPerMeter{12.8};  // 12.8 uA/um
    t.i_off_p = u::AmperesPerMeter{6.4};
    t.w_nmos_min = u::meters(0.10e-6);
    t.w_pmos_min = u::meters(0.20e-6);

    t.vdd = u::volts(1.1);
    t.freq = u::hertz(4e9);  // Table 4: 4 GHz cores

    t.delay_derating = 11.0;
    t.short_circuit_factor = 1.55;
    t.lc_floor = u::SecondsPerMeter{28e-9};  // 28 ps/mm

    // 8X plane: ~0.8 um width/spacing, 1.2 um thick. Coupling-dominated.
    t.plane_8x = PlaneParams{
        .min_width = u::meters(0.8e-6),
        .min_spacing = u::meters(0.8e-6),
        .thickness = u::meters(1.2e-6),
        .c_ground = u::FaradsPerMeter{0.015e-9},    // 15 aF/um
        .c_coupling = u::FaradsPerMeter{0.140e-9},  // 140 aF/um
        .c_fringe = u::FaradsPerMeter{0.030e-9},    // 30 aF/um
    };
    // 4X plane: half pitch, thinner metal -> ~2.8x resistance, similar C.
    t.plane_4x = PlaneParams{
        .min_width = u::meters(0.4e-6),
        .min_spacing = u::meters(0.4e-6),
        .thickness = u::meters(0.85e-6),
        .c_ground = u::FaradsPerMeter{0.020e-9},
        .c_coupling = u::FaradsPerMeter{0.160e-9},
        .c_fringe = u::FaradsPerMeter{0.030e-9},
    };
    return t;
  }();
  return tech;
}

}  // namespace tcmp::wire
