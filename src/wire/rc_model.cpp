#include "wire/rc_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace tcmp::wire {

namespace u = units;

u::OhmsPerMeter r_wire_per_m(const TechParams& tech, const WireGeometry& g) {
  const PlaneParams& p = tech.plane(g.plane);
  const u::Meters width = p.min_width * g.width_mult;
  return tech.resistivity / (width * p.thickness);
}

u::FaradsPerMeter c_wire_per_m(const TechParams& tech, const WireGeometry& g) {
  const PlaneParams& p = tech.plane(g.plane);
  return p.c_ground * g.width_mult +
         p.c_coupling / g.spacing_mult +
         p.c_fringe;
}

u::Seconds segment_delay(const TechParams& tech, const WireGeometry& g,
                         const RepeaterDesign& d) {
  TCMP_DCHECK(d.size > 0.0 && d.spacing.value() > 0.0);
  const u::Ohms r_gate = tech.r_gate_min / d.size;
  const u::Farads c_gate = tech.c_gate_min * d.size;
  const u::Farads c_diff = tech.c_diff_min * d.size;
  const u::Farads c_wire = c_wire_per_m(tech, g) * d.spacing;
  const u::Ohms r_wire = r_wire_per_m(tech, g) * d.spacing;
  // Paper Eq. (1).
  const u::Seconds elmore = r_gate * (c_diff + c_wire + c_gate) +
                            r_wire * (0.5 * c_wire + c_gate);
  return tech.delay_derating * elmore;
}

u::SecondsPerMeter delay_per_m(const TechParams& tech, const WireGeometry& g,
                               const RepeaterDesign& d) {
  const u::SecondsPerMeter rc = segment_delay(tech, g, d) / d.spacing;
  return std::max(rc, tech.lc_floor);
}

RepeaterDesign delay_optimal_design(const TechParams& tech, const WireGeometry& g) {
  const u::OhmsPerMeter r_w = r_wire_per_m(tech, g);
  const u::FaradsPerMeter c_w = c_wire_per_m(tech, g);
  // Closed-form Bakoglu optimum as the starting point...
  RepeaterDesign d;
  d.spacing = u::sqrt(2.0 * tech.r_gate_min *
                      (tech.c_diff_min + tech.c_gate_min) / (r_w * c_w));
  d.size = std::sqrt(tech.r_gate_min * c_w / (r_w * tech.c_gate_min));
  // ...then a local numeric refinement (the closed form ignores the
  // c_diff term in the drive load).
  u::SecondsPerMeter best = segment_delay(tech, g, d) / d.spacing;
  for (int iter = 0; iter < 3; ++iter) {
    for (double fs : {0.8, 0.9, 1.0, 1.1, 1.25}) {
      for (double fl : {0.8, 0.9, 1.0, 1.1, 1.25}) {
        RepeaterDesign cand{d.size * fs, d.spacing * fl};
        const u::SecondsPerMeter delay = segment_delay(tech, g, cand) / cand.spacing;
        if (delay < best) {
          best = delay;
          d = cand;
        }
      }
    }
  }
  return d;
}

RepeaterDesign power_optimal_design(const TechParams& tech, const WireGeometry& g,
                                    double delay_penalty) {
  TCMP_CHECK(delay_penalty >= 1.0);
  const RepeaterDesign opt = delay_optimal_design(tech, g);
  const u::SecondsPerMeter budget =
      delay_penalty * segment_delay(tech, g, opt) / opt.spacing;

  // Grid search over smaller repeaters / wider spacing (both monotonically
  // cut power and add delay), keeping the cheapest design inside the budget.
  RepeaterDesign best = opt;
  u::WattsPerMeter best_power = switching_power_per_m(tech, g, opt) +
                                leakage_power_per_m(tech, opt);
  for (int si = 0; si <= 40; ++si) {
    const double size = opt.size * std::pow(10.0, -si / 20.0);  // down to /100
    for (int li = 0; li <= 40; ++li) {
      const RepeaterDesign cand{size, opt.spacing * std::pow(10.0, li / 40.0)};
      if (segment_delay(tech, g, cand) / cand.spacing > budget) break;
      const u::WattsPerMeter power = switching_power_per_m(tech, g, cand) +
                                     leakage_power_per_m(tech, cand);
      if (power < best_power) {
        best_power = power;
        best = cand;
      }
    }
  }
  return best;
}

u::WattsPerMeter switching_power_per_m(const TechParams& tech, const WireGeometry& g,
                                       const RepeaterDesign& d) {
  // Eq. (3) per segment, times segments per meter (1/l).
  const u::Farads c_rep = d.size * (tech.c_gate_min + tech.c_diff_min);
  const u::Farads c_seg = c_rep + d.spacing * c_wire_per_m(tech, g);
  const u::Watts p_seg = c_seg * tech.freq * tech.vdd * tech.vdd;
  return tech.short_circuit_factor * p_seg / d.spacing;
}

u::WattsPerMeter leakage_power_per_m(const TechParams& tech, const RepeaterDesign& d) {
  // Eq. (4) per repeater, times repeaters per meter.
  const u::Amperes i_leak = 0.5 * (tech.i_off_n * tech.w_nmos_min +
                                   tech.i_off_p * tech.w_pmos_min) *
                            d.size;
  return tech.vdd * i_leak / d.spacing;
}

}  // namespace tcmp::wire
