#include "wire/rc_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace tcmp::wire {

double r_wire_per_m(const TechParams& tech, const WireGeometry& g) {
  const PlaneParams& p = tech.plane(g.plane);
  const double width = p.min_width_m * g.width_mult;
  return tech.resistivity_ohm_m / (width * p.thickness_m);
}

double c_wire_per_m(const TechParams& tech, const WireGeometry& g) {
  const PlaneParams& p = tech.plane(g.plane);
  return p.c_ground_f_per_m * g.width_mult +
         p.c_coupling_f_per_m / g.spacing_mult +
         p.c_fringe_f_per_m;
}

double segment_delay_s(const TechParams& tech, const WireGeometry& g,
                       const RepeaterDesign& d) {
  TCMP_DCHECK(d.size > 0.0 && d.spacing_m > 0.0);
  const double r_gate = tech.r_gate_min_ohm / d.size;
  const double c_gate = tech.c_gate_min_f * d.size;
  const double c_diff = tech.c_diff_min_f * d.size;
  const double c_wire = c_wire_per_m(tech, g) * d.spacing_m;
  const double r_wire = r_wire_per_m(tech, g) * d.spacing_m;
  // Paper Eq. (1).
  const double elmore = r_gate * (c_diff + c_wire + c_gate) +
                        r_wire * (0.5 * c_wire + c_gate);
  return tech.delay_derating * elmore;
}

double delay_per_m(const TechParams& tech, const WireGeometry& g,
                   const RepeaterDesign& d) {
  const double rc = segment_delay_s(tech, g, d) / d.spacing_m;
  return std::max(rc, tech.lc_floor_s_per_m);
}

RepeaterDesign delay_optimal_design(const TechParams& tech, const WireGeometry& g) {
  const double r_w = r_wire_per_m(tech, g);
  const double c_w = c_wire_per_m(tech, g);
  // Closed-form Bakoglu optimum as the starting point...
  RepeaterDesign d;
  d.spacing_m = std::sqrt(2.0 * tech.r_gate_min_ohm *
                          (tech.c_diff_min_f + tech.c_gate_min_f) / (r_w * c_w));
  d.size = std::sqrt(tech.r_gate_min_ohm * c_w / (r_w * tech.c_gate_min_f));
  // ...then a local numeric refinement (the closed form ignores the
  // c_diff term in the drive load).
  double best = segment_delay_s(tech, g, d) / d.spacing_m;
  for (int iter = 0; iter < 3; ++iter) {
    for (double fs : {0.8, 0.9, 1.0, 1.1, 1.25}) {
      for (double fl : {0.8, 0.9, 1.0, 1.1, 1.25}) {
        RepeaterDesign cand{d.size * fs, d.spacing_m * fl};
        const double delay = segment_delay_s(tech, g, cand) / cand.spacing_m;
        if (delay < best) {
          best = delay;
          d = cand;
        }
      }
    }
  }
  return d;
}

RepeaterDesign power_optimal_design(const TechParams& tech, const WireGeometry& g,
                                    double delay_penalty) {
  TCMP_CHECK(delay_penalty >= 1.0);
  const RepeaterDesign opt = delay_optimal_design(tech, g);
  const double budget =
      delay_penalty * segment_delay_s(tech, g, opt) / opt.spacing_m;

  // Grid search over smaller repeaters / wider spacing (both monotonically
  // cut power and add delay), keeping the cheapest design inside the budget.
  RepeaterDesign best = opt;
  double best_power = switching_power_per_m(tech, g, opt) +
                      leakage_power_per_m(tech, opt);
  for (int si = 0; si <= 40; ++si) {
    const double size = opt.size * std::pow(10.0, -si / 20.0);  // down to /100
    for (int li = 0; li <= 40; ++li) {
      const RepeaterDesign cand{size, opt.spacing_m * std::pow(10.0, li / 40.0)};
      if (segment_delay_s(tech, g, cand) / cand.spacing_m > budget) break;
      const double power = switching_power_per_m(tech, g, cand) +
                           leakage_power_per_m(tech, cand);
      if (power < best_power) {
        best_power = power;
        best = cand;
      }
    }
  }
  return best;
}

double switching_power_per_m(const TechParams& tech, const WireGeometry& g,
                             const RepeaterDesign& d) {
  // Eq. (3) per segment, times segments per meter (1/l).
  const double c_rep = d.size * (tech.c_gate_min_f + tech.c_diff_min_f);
  const double c_seg = c_rep + d.spacing_m * c_wire_per_m(tech, g);
  const double p_seg = c_seg * tech.freq_hz * tech.vdd_v * tech.vdd_v;
  return tech.short_circuit_factor * p_seg / d.spacing_m;
}

double leakage_power_per_m(const TechParams& tech, const RepeaterDesign& d) {
  // Eq. (4) per repeater, times repeaters per meter.
  const double i_leak = 0.5 * (tech.i_off_n_a_per_m * tech.w_nmos_min_m +
                               tech.i_off_p_a_per_m * tech.w_pmos_min_m) *
                        d.size;
  return tech.vdd_v * i_leak / d.spacing_m;
}

}  // namespace tcmp::wire
