#include "verify/checker.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace tcmp::verify {

namespace {

/// Exploration bookkeeping for one canonical state.
struct NodeMeta {
  std::uint32_t parent = 0;
  Action via;        ///< action that produced this state from `parent`
  unsigned depth = 0;
};

constexpr std::uint32_t kRoot = 0xffffffffu;

std::vector<TraceStep> build_trace(const ProtocolModel& model,
                                   const std::vector<NodeMeta>& meta,
                                   std::uint32_t leaf) {
  // Walk parent pointers to the root, then replay forward so each step can
  // carry the post-action state summary. Replay must canonicalize after every
  // apply: recorded actions are relative to canonical parent states.
  std::vector<Action> actions;
  for (std::uint32_t id = leaf; meta[id].parent != kRoot; id = meta[id].parent) {
    actions.push_back(meta[id].via);
  }
  std::reverse(actions.begin(), actions.end());

  std::vector<TraceStep> trace;
  ModelState s = model.initial();
  model.canonicalize(s);
  for (const Action& a : actions) {
    TraceStep step;
    step.action = a;
    step.action_text = model.describe(a);
    (void)model.apply(s, a);  // violation (if any) fires on the last step
    model.canonicalize(s);
    step.state_text = model.summarize(s);
    trace.push_back(std::move(step));
  }
  return trace;
}

}  // namespace

CheckResult run_model_check(const ProtocolModel::Config& cfg,
                            const CheckerOptions& opts) {
  const ProtocolModel model(cfg);
  CheckResult result;

  ModelState root = model.initial();
  model.canonicalize(root);

  std::unordered_map<std::string, std::uint32_t> visited;
  std::vector<NodeMeta> meta;
  std::deque<std::pair<std::uint32_t, ModelState>> frontier;

  visited.emplace(model.serialize(root), 0);
  meta.push_back(NodeMeta{kRoot, {}, 0});
  frontier.emplace_back(0, std::move(root));
  result.states = 1;

  auto fail = [&](std::uint32_t id, const Violation& v) {
    result.ok = false;
    result.violation = v;
    result.violation_depth = meta[id].depth;
    result.trace = build_trace(model, meta, id);
  };

  // The root itself must satisfy the invariants.
  if (auto v = model.check_invariants(frontier.front().second)) {
    fail(0, *v);
    return result;
  }

  std::vector<Action> actions;
  while (!frontier.empty()) {
    auto [id, state] = std::move(frontier.front());
    frontier.pop_front();
    const unsigned depth = meta[id].depth;

    model.enabled_actions(state, actions);
    if (actions.empty()) {
      if (auto v = model.check_deadlock(state)) {
        fail(id, *v);
        return result;
      }
      continue;
    }

    for (const Action& a : actions) {
      ++result.transitions;
      ModelState next = state;
      if (auto v = model.apply(next, a)) {
        // A protocol assertion fired while applying the action: the trace is
        // the path to `state` plus this action.
        meta.push_back(NodeMeta{id, a, depth + 1});
        const auto child = static_cast<std::uint32_t>(meta.size() - 1);
        result.violation_depth = depth + 1;
        result.ok = false;
        result.violation = v;
        result.trace = build_trace(model, meta, child);
        return result;
      }
      model.canonicalize(next);
      std::string key = model.serialize(next);
      auto [it, inserted] = visited.emplace(std::move(key),
                                            static_cast<std::uint32_t>(meta.size()));
      if (!inserted) continue;

      meta.push_back(NodeMeta{id, a, depth + 1});
      const std::uint32_t child = it->second;
      ++result.states;

      if (auto v = model.check_invariants(next)) {
        fail(child, *v);
        return result;
      }
      if (auto v = model.check_deadlock(next)) {
        fail(child, *v);
        return result;
      }
      if (result.states >= opts.max_states) {
        result.truncated = true;
        result.ok = false;
        result.violation =
            Violation{"TRUNCATED", "state cap reached before exhausting the "
                                   "reachable space"};
        return result;
      }
      if (opts.progress_every != 0 && result.states % opts.progress_every == 0) {
        std::fprintf(stderr, "  ... %llu states, %llu transitions, depth %u\n",
                     static_cast<unsigned long long>(result.states),
                     static_cast<unsigned long long>(result.transitions),
                     depth + 1);
      }
      frontier.emplace_back(child, std::move(next));
    }
  }

  result.ok = true;
  return result;
}

std::string format_trace(const ProtocolModel& model, const CheckResult& result) {
  std::ostringstream os;
  ModelState s = model.initial();
  model.canonicalize(s);
  os << "     initial: " << model.summarize(s) << "\n";
  unsigned step = 1;
  for (const auto& t : result.trace) {
    os << "  " << (step < 10 ? " " : "") << step << ". " << t.action_text << "\n";
    os << "     " << (step < 10 ? " " : "") << "   -> " << t.state_text << "\n";
    ++step;
  }
  if (result.violation) {
    os << "  VIOLATION [" << result.violation->invariant << "] "
       << result.violation->detail << "\n";
  }
  return os.str();
}

}  // namespace tcmp::verify
