#include "verify/lint.hpp"

#include <algorithm>
#include <sstream>

#include "cmp/system.hpp"
#include "common/check.hpp"
#include "compression/dbrc.hpp"
#include "obs/observer.hpp"

namespace tcmp::verify {

using protocol::DirState;
using protocol::L1State;

CoherenceLinter::CoherenceLinter(cmp::CmpSystem* system, obs::Observer* observer)
    : sys_(system), obs_(observer) {
  TCMP_CHECK(sys_ != nullptr);
  scans_counter_ = sys_->stats().counter_ref("verify.scans");
  violations_counter_ = sys_->stats().counter_ref("verify.violations");
}

void CoherenceLinter::report(const LintViolation& v) {
  ++violations_;
  ++violations_counter_;
  if (obs_ != nullptr) {
    obs_->lint_violation(v.cycle, v.line, v.invariant, v.detail);
  }
}

std::vector<LintViolation> CoherenceLinter::scan(Cycle now) {
  return scan_impl(now, 0, 0, /*with_dbrc=*/true);
}

std::vector<LintViolation> CoherenceLinter::scan_slice(Cycle now) {
  const std::uint64_t stripe = next_stripe_;
  next_stripe_ = (next_stripe_ + 1) % kStripes;
  // The DBRC mirror pass has no address dimension to stripe; once per
  // rotation keeps it as periodic as a full sweep.
  return scan_impl(now, kStripes - 1, stripe, /*with_dbrc=*/stripe == 0);
}

std::vector<LintViolation> CoherenceLinter::scan_impl(Cycle now,
                                                      std::uint64_t stripe_mask,
                                                      std::uint64_t stripe,
                                                      bool with_dbrc) {
  ++scans_;
  ++scans_counter_;
  std::vector<LintViolation> out;
  coherence_scan(now, stripe_mask, stripe, out);
  if (with_dbrc) dbrc_scan(now, out);
  for (const auto& v : out) report(v);
  return out;
}

void CoherenceLinter::coherence_scan(Cycle now, std::uint64_t stripe_mask,
                                     std::uint64_t stripe,
                                     std::vector<LintViolation>& out) {
  const unsigned n = sys_->config().n_tiles;

  // One pass over every L1 array collects the stripe's resident stable lines
  // into a flat reused buffer; sorting groups the copies of each line so the
  // sweep below sees all holders together. This runs every --verify-interval
  // cycles, so it must not allocate or chase per-line indirections.
  lines_buf_.clear();
  for (unsigned t = 0; t < n; ++t) {
    sys_->l1(t).collect_stable_lines(stripe_mask, stripe, lines_buf_);
  }
  std::sort(lines_buf_.begin(), lines_buf_.end(),
            [](const protocol::L1Cache::StableLine& a,
               const protocol::L1Cache::StableLine& b) {
              return a.line < b.line;
            });

  for (std::size_t i = 0; i < lines_buf_.size();) {
    const LineAddr line = lines_buf_[i].line;
    unsigned owner_count = 0;   // stable M/E copies
    unsigned sharer_count = 0;  // stable S copies
    NodeId owner_tile = kInvalidNode;
    bool owner_modified = false;
    for (; i < lines_buf_.size() && lines_buf_[i].line == line; ++i) {
      const auto& rec = lines_buf_[i];
      if (rec.state == L1State::kM || rec.state == L1State::kE) {
        ++owner_count;
        owner_tile = rec.tile;
        owner_modified = rec.state == L1State::kM;
      } else {
        ++sharer_count;
      }
    }

    // R1: single writer, and no writer/reader coexistence. Stable S copies
    // can be stale only while their Inv is in flight, and the new owner
    // cannot have installed before that Inv was acked — so a stable M/E
    // copy next to a stable S copy is a real protocol bug, not a race.
    if (owner_count > 1) {
      std::ostringstream os;
      os << owner_count << " tiles hold an M/E copy simultaneously";
      out.push_back(LintViolation{now, "R1-SWMR", line, os.str()});
      continue;  // the directory cannot agree with two owners anyway
    }
    if (owner_count == 1 && sharer_count > 0) {
      std::ostringstream os;
      os << "tile " << owner_tile << " holds "
         << (owner_modified ? "M" : "E") << " while " << sharer_count
         << " stable S cop" << (sharer_count == 1 ? "y" : "ies") << " exist";
      out.push_back(LintViolation{now, "R1-SWMR", line, os.str()});
    }

    const auto home = static_cast<unsigned>(line.value() % n);
    const auto e = sys_->directory(home).entry_of(line);

    // R2: the home knows the current owner. The one legal transient: the
    // requester of an in-flight FwdGetX installs M as soon as the data
    // arrives, possibly before the home processed the AckRevision.
    if (owner_count == 1) {
      const bool known =
          e.has_value() &&
          ((e->owner == owner_tile &&
            (e->state == DirState::kExclusive ||
             e->state == DirState::kBusyShared ||
             e->state == DirState::kBusyExcl ||
             e->state == DirState::kBusyRecall)) ||
           (e->state == DirState::kBusyExcl &&
            e->fwd_requester == owner_tile));
      if (!known) {
        std::ostringstream os;
        os << "tile " << owner_tile << " holds "
           << (owner_modified ? "M" : "E")
           << " but the home directory does not name it";
        out.push_back(LintViolation{now, "R2-DIR-OWNER", line, os.str()});
      }
    }

    // R3: directory well-formedness for the entries backing held lines (the
    // busy-entry bookkeeping is already covered by TCMP_CHECKs inline).
    if (e.has_value()) {
      if (e->state == DirState::kShared && e->sharers.none()) {
        out.push_back(LintViolation{now, "R3-DIR-WELLFORMED", line,
                                    "Shared entry with an empty sharer set"});
      }
      if ((e->state == DirState::kExclusive ||
           e->state == DirState::kBusyShared ||
           e->state == DirState::kBusyExcl) &&
          e->owner == kInvalidNode) {
        out.push_back(LintViolation{now, "R3-DIR-WELLFORMED", line,
                                    "owner-tracking entry without an owner"});
      }
    }
  }
}

void CoherenceLinter::dbrc_scan(Cycle now, std::vector<LintViolation>& out) {
  const auto& scheme = sys_->config().scheme;
  if (scheme.kind != compression::SchemeKind::kDbrc || scheme.idealized_mirrors) {
    return;  // only the conservative design has receiver state to diverge
  }
  const unsigned n = sys_->config().n_tiles;
  for (unsigned src = 0; src < n; ++src) {
    for (unsigned c = 0; c < compression::kNumMsgClasses; ++c) {
      const auto cls = static_cast<compression::MsgClass>(c);
      const auto* sender = dynamic_cast<const compression::DbrcSender*>(
          &sys_->nic(src).sender(cls));
      if (sender == nullptr) continue;
      for (unsigned dst = 0; dst < n; ++dst) {
        if (dst == src) continue;
        // Only compare a pair whose stream is idle: every stamped message
        // decoded, nothing parked in the reorder window. Otherwise an
        // install may legitimately still be in flight.
        if (sys_->nic(src).send_seq(cls, static_cast<NodeId>(dst)) !=
            sys_->nic(dst).recv_seq(cls, static_cast<NodeId>(src))) {
          continue;
        }
        if (!sys_->nic(dst).reorder_empty(cls, static_cast<NodeId>(src))) {
          continue;
        }
        const auto* receiver = dynamic_cast<const compression::DbrcReceiver*>(
            &sys_->nic(dst).receiver(cls));
        if (receiver == nullptr) continue;
        for (unsigned i = 0; i < sender->num_entries(); ++i) {
          const auto e = sender->entry_snapshot(i);
          if (!e.valid || !e.dest_valid.test(dst)) continue;
          const std::uint64_t mirrored =
              receiver->mirror_tag(static_cast<NodeId>(src), i);
          if (mirrored != e.hi_tag) {
            std::ostringstream os;
            os << "class " << c << " entry " << i << ": tile " << src
               << " believes tile " << dst << " mirrors tag 0x" << std::hex
               << e.hi_tag << " but the mirror holds 0x" << mirrored;
            out.push_back(LintViolation{now, "R4-DBRC-MIRROR", LineAddr{}, os.str()});
          }
        }
      }
    }
  }
}

}  // namespace tcmp::verify
