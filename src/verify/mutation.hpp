// Mutation registry for the protocol-verification harness: each entry is a
// deliberately introduced protocol bug, switchable at runtime, that one of
// the checkers (model checker, DBRC conformance check, wire-size check) must
// catch. A mutation the suite does NOT catch means the safety net has a hole
// — `tcmpcheck --mutate all` fails CI in that case.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tcmp::verify {

enum class MutationId : std::uint8_t {
  kNone = 0,
  // --- model-checker mutations (protocol state machines) ---
  kL1SkipStaleInvAck,   ///< L1 drops the InvAck when an Inv finds no copy
  kL1NoDropAfterFill,   ///< Inv during IS_D does not mark the fill use-once
  kL1DropRevision,      ///< FwdGetS serviced without sending the Revision
  kDirSkipLastInv,      ///< GetX grant forgets the Inv to the highest sharer
  kDirWrongAckCount,    ///< grant reports one inv-ack fewer than Invs sent
  kDirNoBusyOnFwd,      ///< GetS forward leaves the entry Exclusive (no Busy)
  kDirPutAckNotHeld,    ///< PutAck released while a forward is still crossing
  kDirRecallLostAck,    ///< recall of a Shared line under-counts its invs
  // --- DBRC mirror-consistency mutations ---
  kDbrcReceiverNoInstall,  ///< receiver ignores mirror installs/updates
  kDbrcFalseHit,           ///< sender claims a hit for an uninstalled mirror
  // --- wire-size table mutation ---
  kWireSizeWrongEntry,  ///< UpgradeAck modelled as 3 B instead of 11 B
};

/// Which checker is responsible for catching a mutation.
enum class MutationTarget : std::uint8_t { kModel, kDbrc, kWire };

struct MutationInfo {
  MutationId id{};
  const char* name = nullptr;  ///< stable CLI name (tcmpcheck --mutate <name>)
  MutationTarget target{};
  const char* description = nullptr;  ///< the bug the mutation plants
};

/// All mutations, in id order (kNone excluded).
[[nodiscard]] const std::vector<MutationInfo>& all_mutations();

/// Lookup by CLI name or numeric id string; nullopt when unknown.
[[nodiscard]] std::optional<MutationInfo> find_mutation(const std::string& key);

[[nodiscard]] const char* to_string(MutationId id);

}  // namespace tcmp::verify
