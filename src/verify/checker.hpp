// Exhaustive explicit-state exploration of ProtocolModel: BFS over the
// reachable state space with tile-permutation symmetry reduction, checking
// every safety invariant at every state and reporting the shortest
// counterexample trace on a violation (shortest by BFS construction).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "verify/model.hpp"

namespace tcmp::verify {

struct TraceStep {
  Action action;
  std::string action_text;  ///< human-readable action
  std::string state_text;   ///< state summary after the action
};

struct CheckResult {
  bool ok = false;
  std::uint64_t states = 0;       ///< distinct canonical states visited
  std::uint64_t transitions = 0;  ///< transitions explored
  bool truncated = false;         ///< hit the state cap before exhausting
  std::optional<Violation> violation;
  unsigned violation_depth = 0;   ///< BFS depth of the violating state
  std::vector<TraceStep> trace;   ///< initial state -> violating state
};

struct CheckerOptions {
  /// Abort the exploration (truncated=true) past this many distinct states.
  std::uint64_t max_states = 20'000'000;
  /// Report progress to stderr every this many states (0 = quiet).
  std::uint64_t progress_every = 0;
};

/// Run the exhaustive check. Exhausts the reachable space (under the model's
/// stimulus bounds) unless a violation is found or `max_states` is hit.
[[nodiscard]] CheckResult run_model_check(const ProtocolModel::Config& cfg,
                                          const CheckerOptions& opts = {});

/// Render a counterexample trace (numbered actions + state summaries).
[[nodiscard]] std::string format_trace(const ProtocolModel& model,
                                       const CheckResult& result);

}  // namespace tcmp::verify
