#include "verify/dbrc_check.hpp"

#include <sstream>

#include "common/types.hpp"
#include "compression/dbrc.hpp"

namespace tcmp::verify {

namespace {

using compression::DbrcReceiver;
using compression::DbrcSender;
using compression::Encoding;

struct World {
  DbrcSender sender;
  std::vector<DbrcReceiver> receivers;  ///< one per destination
};

struct Step {
  unsigned dst = 0;
  LineAddr line;
};

class Dfs {
 public:
  Dfs(const DbrcCheckConfig& cfg, DbrcCheckResult& result)
      : cfg_(cfg), result_(result) {
    for (unsigned hi = 1; hi <= cfg_.n_hi; ++hi) {
      for (unsigned lo = 0; lo < cfg_.n_lo; ++lo) {
        alphabet_.push_back(
            LineAddr{(std::uint64_t{hi} << (8 * cfg_.low_bytes)) | lo});
      }
    }
  }

  void run(const World& w, unsigned depth) {
    if (!result_.ok) return;
    if (depth == cfg_.depth) {
      ++result_.sequences;
      return;
    }
    for (unsigned dst = 0; dst < cfg_.n_dsts; ++dst) {
      for (const LineAddr line : alphabet_) {
        if (!result_.ok) return;
        World next = w;  // real compressor objects are value types
        trace_.push_back(Step{dst, line});
        step(next, dst, line);
        if (result_.ok) run(next, depth + 1);
        trace_.pop_back();
      }
    }
  }

 private:
  void step(World& w, unsigned dst, LineAddr line) {
    Encoding enc =
        w.sender.compress(static_cast<NodeId>(dst), line);
    if (cfg_.mutation == MutationId::kDbrcFalseHit && enc.install) {
      // Planted bug: the sender trusts the tag hit and claims compression
      // without consulting the per-destination valid bit.
      enc.install = false;
      enc.compressed = true;
      enc.low_bits = line.value() & ((std::uint64_t{1} << (8 * cfg_.low_bytes)) - 1);
    }
    if (cfg_.mutation == MutationId::kDbrcReceiverNoInstall) {
      enc.install = false;  // planted bug: mirror updates are dropped
    }
    ++result_.decodes;
    const LineAddr decoded =
        w.receivers[dst].decode(/*src=*/NodeId{0}, enc, line);
    if (decoded != line) {
      result_.ok = false;
      std::ostringstream os;
      os << "mirror divergence: dst " << dst << " decoded 0x" << std::hex
         << decoded.value() << " for line 0x" << line.value() << std::dec << " ("
         << (enc.compressed ? "compressed" : "uncompressed")
         << " index " << unsigned{enc.index} << ") after "
         << trace_.size() << " sends";
      result_.findings.push_back(os.str());
      for (const Step& s : trace_) {
        std::ostringstream step_os;
        step_os << "dst=" << s.dst << " line=0x" << std::hex << s.line.value();
        result_.counterexample.push_back(step_os.str());
      }
    }
  }

  const DbrcCheckConfig& cfg_;
  DbrcCheckResult& result_;
  std::vector<LineAddr> alphabet_;
  std::vector<Step> trace_;
};

}  // namespace

DbrcCheckResult run_dbrc_check(const DbrcCheckConfig& cfg) {
  DbrcCheckResult result;
  const unsigned n_nodes = cfg.n_dsts < 2 ? 2 : cfg.n_dsts;
  World root{
      DbrcSender(cfg.entries, cfg.low_bytes, n_nodes,
                 /*idealized_mirrors=*/false),
      {},
  };
  for (unsigned d = 0; d < cfg.n_dsts; ++d) {
    root.receivers.emplace_back(cfg.entries, cfg.low_bytes, n_nodes);
  }
  Dfs dfs(cfg, result);
  dfs.run(root, 0);
  return result;
}

}  // namespace tcmp::verify
