// Value-semantic model of the directory MESI protocol for exhaustive model
// checking. The model mirrors the transition logic of protocol::L1Cache and
// protocol::Directory (same message vocabulary, same transient states, same
// race resolutions: parked forwards, eviction-buffer interventions, held
// PutAcks, recall/fill interleavings) but collapses all latencies: the
// network is a multiset of in-flight messages delivered in arbitrary order,
// which over-approximates every ordering the mesh + per-class reorder logic
// can produce, so any safety property proven here holds for the simulator's
// orderings too.
//
// Deliberate simplifications (documented in docs/verification.md):
//   * no data versions (SWMR + the ack/completion accounting invariants are
//     the data-safety proxies);
//   * L1/L2 capacity conflicts are modelled as spontaneous actions
//     (Evict / Recall) instead of set-indexed arrays, which covers the same
//     protocol paths for any workload;
//   * GetInstr and PartialReply are outside the directory protocol and are
//     excluded.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "protocol/coherence_msg.hpp"
#include "verify/mutation.hpp"

namespace tcmp::verify {

inline constexpr std::uint8_t kNoTile = 0xff;

/// Stable L1 states (the model adds I explicitly; the simulator encodes I as
/// absence from the array).
enum class L1St : std::uint8_t { kI = 0, kS, kE, kM };

/// Writeback in flight, mirroring L1Cache::EvictState (+ none).
enum class EvictSt : std::uint8_t { kNone = 0, kMIA, kEIA, kIIA };

/// Miss deferred behind an in-flight writeback of the same line.
enum class DeferSt : std::uint8_t { kNone = 0, kRead, kWrite };

/// Directory entry state, mirroring protocol::DirState.
enum class DirSt : std::uint8_t {
  kInvalid = 0,
  kShared,
  kExclusive,
  kBusyShared,
  kBusyExcl,
  kBusyRecall,
};

/// In-flight message. The network is an unordered multiset of these.
struct ModelMsg {
  protocol::MsgType type = protocol::MsgType::kGetS;
  std::uint8_t src = kNoTile;
  std::uint8_t dst = kNoTile;
  protocol::Unit dst_unit = protocol::Unit::kDir;
  protocol::Unit ack_unit = protocol::Unit::kL1;  ///< on Inv: InvAck target
  std::uint8_t line = 0;
  std::uint8_t requester = kNoTile;
  std::uint8_t ack_count = 0;

  friend bool operator==(const ModelMsg&, const ModelMsg&) = default;
  friend auto operator<=>(const ModelMsg&, const ModelMsg&) = default;
};

/// MSHR, mirroring L1Cache::Mshr (minus versions / partial replies).
struct MshrM {
  bool valid = false;
  bool is_write = false;
  bool upgrade = false;
  bool data_received = false;
  bool grant_exclusive = false;
  bool drop_after_fill = false;
  std::int8_t acks_expected = -1;
  std::uint8_t acks_received = 0;
  bool has_parked = false;
  protocol::MsgType parked_type = protocol::MsgType::kFwdGetS;
  std::uint8_t parked_requester = kNoTile;

  friend bool operator==(const MshrM&, const MshrM&) = default;
};

struct L1LineM {
  L1St st = L1St::kI;
  MshrM mshr;
  EvictSt evict = EvictSt::kNone;
  DeferSt deferred = DeferSt::kNone;

  friend bool operator==(const L1LineM&, const L1LineM&) = default;
};

/// Request parked at the home (busy-line queue or outstanding-fill queue).
struct PendingReq {
  protocol::MsgType type = protocol::MsgType::kGetS;
  std::uint8_t requester = kNoTile;
  std::uint8_t src = kNoTile;  ///< sender (PutE/PutM identify the owner by src)

  friend bool operator==(const PendingReq&, const PendingReq&) = default;
};

struct DirLineM {
  bool present = true;  ///< false after a completed recall (line only in memory)
  DirSt st = DirSt::kInvalid;
  std::uint16_t sharers = 0;
  std::uint8_t owner = kNoTile;
  std::uint8_t fwd_req = kNoTile;
  bool held_put_ack = false;
  /// BusyExcl: the forward requester's writeback already arrived, so the
  /// AckRevision resolves the entry to Invalid (mirrors DirEntry::fwd_put).
  bool fwd_put = false;
  std::uint8_t recall_acks = 0;
  std::vector<PendingReq> pending;  ///< FIFO while the line is busy
  bool fill_outstanding = false;
  std::vector<PendingReq> fill_pending;  ///< FIFO while the fill is in flight

  friend bool operator==(const DirLineM&, const DirLineM&) = default;
};

struct ModelState {
  std::vector<L1LineM> l1;   ///< [tile * n_lines + line]
  std::vector<DirLineM> dir; ///< [line]
  std::vector<ModelMsg> net; ///< kept sorted (canonical multiset order)

  friend bool operator==(const ModelState&, const ModelState&) = default;
};

enum class ActionKind : std::uint8_t {
  kRead,     ///< core read miss at (tile, line)
  kWrite,    ///< core write (miss, upgrade, or silent E->M) at (tile, line)
  kEvict,    ///< L1 capacity eviction of a stable line at (tile, line)
  kRecall,   ///< L2 capacity eviction of (line) at its home
  kMemFill,  ///< off-chip fill for (line) arrives at its home
  kDeliver,  ///< deliver one in-flight message
};

struct Action {
  ActionKind kind = ActionKind::kRead;
  std::uint8_t tile = 0;
  std::uint8_t line = 0;
  ModelMsg msg;  ///< kDeliver only
};

struct Violation {
  std::string invariant;  ///< short invariant / assertion identifier
  std::string detail;
};

class ProtocolModel {
 public:
  struct Config {
    unsigned n_tiles = 2;
    unsigned n_lines = 1;
    /// Stimulus actions (reads/writes/evictions/recalls) are disabled once
    /// this many messages are in flight; protocol-internal sends may exceed
    /// it transiently. Bounds the exploration, not the protocol.
    unsigned max_msgs = 8;
    /// Global cap on concurrent open transactions (MSHRs + eviction-buffer
    /// entries); stimulus actions are disabled at the cap.
    unsigned max_outstanding = 4;
    bool enable_evictions = true;
    bool enable_recalls = true;
    MutationId mutation = MutationId::kNone;
  };

  explicit ProtocolModel(const Config& cfg);

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] ModelState initial() const;
  [[nodiscard]] std::uint8_t home_of(std::uint8_t line) const {
    return static_cast<std::uint8_t>(line % cfg_.n_tiles);
  }

  /// All enabled actions in `s` (stimuli respect the exploration bounds;
  /// deliveries and fills are always enabled when their trigger exists).
  void enabled_actions(const ModelState& s, std::vector<Action>& out) const;

  /// Apply `a` to `s` in place. Returns a violation when a protocol
  /// assertion (the model twin of a TCMP_CHECK in the simulator) fires.
  [[nodiscard]] std::optional<Violation> apply(ModelState& s, const Action& a) const;

  /// Global safety invariants, checked on every reachable state.
  [[nodiscard]] std::optional<Violation> check_invariants(const ModelState& s) const;

  /// Nothing in flight, no open transactions anywhere.
  [[nodiscard]] bool quiescent(const ModelState& s) const;

  /// Deadlock: open transactions exist but no message / fill can ever
  /// resolve them (a completion was lost).
  [[nodiscard]] std::optional<Violation> check_deadlock(const ModelState& s) const;

  [[nodiscard]] std::string describe(const Action& a) const;
  [[nodiscard]] std::string summarize(const ModelState& s) const;

  // --- canonicalization (tile-permutation symmetry reduction) ---

  /// Serialized state under the identity permutation.
  [[nodiscard]] std::string serialize(const ModelState& s) const;
  /// Lexicographically smallest serialization over all tile permutations
  /// that fix every line's home tile. Two states that differ only by a
  /// renaming of non-home tiles share a canonical key.
  [[nodiscard]] std::string canonical_key(const ModelState& s) const;
  /// Rewrite `s` into its canonical representative (the permutation whose
  /// serialization is the canonical key).
  void canonicalize(ModelState& s) const;

 private:
  [[nodiscard]] L1LineM& l1_at(ModelState& s, unsigned tile, unsigned line) const {
    return s.l1[tile * cfg_.n_lines + line];
  }
  [[nodiscard]] const L1LineM& l1_at(const ModelState& s, unsigned tile,
                                     unsigned line) const {
    return s.l1[tile * cfg_.n_lines + line];
  }
  [[nodiscard]] bool mutated(MutationId id) const { return cfg_.mutation == id; }
  [[nodiscard]] unsigned outstanding(const ModelState& s) const;

  void push_msg(ModelState& s, ModelMsg m) const;
  void issue_miss(ModelState& s, std::uint8_t tile, std::uint8_t line,
                  bool is_write, bool upgrade) const;

  // Directory-side handlers (mirror directory.cpp).
  [[nodiscard]] std::optional<Violation> dir_handle_request(ModelState& s,
                                                            const ModelMsg& m) const;
  [[nodiscard]] std::optional<Violation> dir_request_hit(ModelState& s,
                                                          const ModelMsg& m) const;
  [[nodiscard]] std::optional<Violation> dir_handle_put(ModelState& s,
                                                         const ModelMsg& m) const;
  [[nodiscard]] std::optional<Violation> dir_handle_revision(ModelState& s,
                                                              const ModelMsg& m) const;
  [[nodiscard]] std::optional<Violation> dir_handle_inv_ack(ModelState& s,
                                                             const ModelMsg& m) const;
  [[nodiscard]] std::optional<Violation> dir_finish_recall(ModelState& s,
                                                            std::uint8_t line) const;
  [[nodiscard]] std::optional<Violation> dir_drain_pending(
      ModelState& s, std::uint8_t line, std::vector<PendingReq> msgs) const;
  void dir_send_invs(ModelState& s, std::uint8_t line, std::uint32_t sharers,
                     std::uint8_t collector, protocol::Unit ack_unit) const;

  // L1-side handlers (mirror l1_cache.cpp).
  [[nodiscard]] std::optional<Violation> l1_on_inv(ModelState& s,
                                                    const ModelMsg& m) const;
  [[nodiscard]] std::optional<Violation> l1_on_fwd(ModelState& s,
                                                    const ModelMsg& m) const;
  [[nodiscard]] std::optional<Violation> l1_on_reply(ModelState& s,
                                                      const ModelMsg& m) const;
  [[nodiscard]] std::optional<Violation> l1_on_put_ack(ModelState& s,
                                                        const ModelMsg& m) const;
  [[nodiscard]] std::optional<Violation> l1_service_fwd_stable(
      ModelState& s, std::uint8_t tile, std::uint8_t line,
      protocol::MsgType fwd_type, std::uint8_t requester) const;
  void l1_service_fwd_evict(ModelState& s, std::uint8_t tile, std::uint8_t line,
                            protocol::MsgType fwd_type,
                            std::uint8_t requester) const;
  [[nodiscard]] std::optional<Violation> l1_maybe_complete(ModelState& s,
                                                            std::uint8_t tile,
                                                            std::uint8_t line) const;

  void permutations(std::vector<std::vector<std::uint8_t>>& out) const;
  [[nodiscard]] std::string serialize_permuted(
      const ModelState& s, const std::vector<std::uint8_t>& perm) const;

  Config cfg_;
};

}  // namespace tcmp::verify
