#include "verify/wire_check.hpp"

#include <array>
#include <sstream>

#include "compression/scheme.hpp"
#include "het/wire_policy.hpp"
#include "noc/channel.hpp"
#include "protocol/coherence_msg.hpp"
#include "wire/link_design.hpp"

namespace tcmp::verify {

namespace {

using compression::MsgClass;
using compression::SchemeConfig;
using protocol::MsgType;
using wire::LinkStyle;

/// One row of the independent specification, transcribed from the paper
/// (NOT derived from the protocol:: helpers it checks).
struct SpecRow {
  MsgType type{};
  unsigned bytes = 0;  ///< uncompressed wire size
  bool data = false;   ///< carries a 64 B line
  bool address = false;   ///< carries the 8 B block address (compressible)
  bool critical = false;  ///< on the L1-miss critical path (Fig. 4)
  unsigned vnet = 0;  ///< 0 requests/replacements, 1 commands, 2 responses
  MsgClass cls{};     ///< compression structure (address carriers only)
};

constexpr std::array<SpecRow, protocol::kNumMsgTypes> kSpec = {{
    {MsgType::kGetS, 11, false, true, true, 0, MsgClass::kRequest},
    {MsgType::kGetX, 11, false, true, true, 0, MsgClass::kRequest},
    {MsgType::kUpgrade, 11, false, true, true, 0, MsgClass::kRequest},
    {MsgType::kGetInstr, 11, false, true, true, 0, MsgClass::kRequest},
    {MsgType::kPutE, 3, false, false, false, 0, MsgClass::kRequest},
    {MsgType::kPutM, 67, true, false, false, 0, MsgClass::kRequest},
    {MsgType::kData, 67, true, false, true, 2, MsgClass::kRequest},
    {MsgType::kDataExcl, 67, true, false, true, 2, MsgClass::kRequest},
    {MsgType::kUpgradeAck, 11, false, true, true, 2, MsgClass::kCommand},
    {MsgType::kInv, 11, false, true, true, 1, MsgClass::kCommand},
    {MsgType::kFwdGetS, 11, false, true, true, 1, MsgClass::kCommand},
    {MsgType::kFwdGetX, 11, false, true, true, 1, MsgClass::kCommand},
    {MsgType::kRecall, 11, false, true, true, 1, MsgClass::kCommand},
    {MsgType::kPartialReply, 11, false, false, true, 2, MsgClass::kRequest},
    {MsgType::kInvAck, 3, false, false, true, 2, MsgClass::kRequest},
    {MsgType::kRevision, 67, true, false, false, 2, MsgClass::kRequest},
    {MsgType::kAckRevision, 3, false, false, false, 2, MsgClass::kRequest},
    {MsgType::kPutAck, 3, false, false, false, 2, MsgClass::kRequest},
}};

}  // namespace

WireCheckResult run_wire_check(MutationId mutation) {
  WireCheckResult r;
  auto fail = [&](const std::string& what) {
    r.ok = false;
    r.findings.push_back(what);
  };
  // The system-under-test size function; the mutation plants the classic
  // table bug (one stale entry) to prove this check catches it.
  auto sut_bytes = [&](MsgType t) {
    if (mutation == MutationId::kWireSizeWrongEntry && t == MsgType::kUpgradeAck) {
      return Bytes{3};
    }
    return protocol::uncompressed_bytes(t);
  };

  for (const SpecRow& row : kSpec) {
    const char* name = protocol::to_string(row.type);
    ++r.checks;
    if (sut_bytes(row.type) != row.bytes) {
      std::ostringstream os;
      os << name << ": uncompressed_bytes()=" << sut_bytes(row.type)
         << " but the paper's size table says " << row.bytes;
      fail(os.str());
    }
    ++r.checks;
    if (protocol::carries_data(row.type) != row.data) {
      fail(std::string(name) + ": carries_data() disagrees with the spec");
    }
    ++r.checks;
    if (protocol::carries_address(row.type) != row.address) {
      fail(std::string(name) + ": carries_address() disagrees with the spec");
    }
    ++r.checks;
    if (protocol::is_critical(row.type) != row.critical) {
      fail(std::string(name) + ": is_critical() disagrees with Fig. 4");
    }
    ++r.checks;
    if (protocol::vnet_of(row.type) != row.vnet) {
      fail(std::string(name) + ": vnet_of() disagrees with the spec");
    }
    if (row.address) {
      ++r.checks;
      if (protocol::compression_class(row.type) != row.cls) {
        fail(std::string(name) + ": compression_class() disagrees with the spec");
      }
    }
    ++r.checks;
    if (protocol::is_short(row.type) != !row.data) {
      fail(std::string(name) + ": is_short() must be the complement of data");
    }
  }

  // The mapping policy must be consistent with the (mutation-shimmed) size
  // table and the channel roles for every style x compression outcome.
  const std::array<SchemeConfig, 3> schemes = {
      SchemeConfig::dbrc(16, 2), SchemeConfig::dbrc(16, 1),
      SchemeConfig::perfect(3)};
  const std::array<LinkStyle, 3> styles = {
      LinkStyle::kBaseline, LinkStyle::kVlHet, LinkStyle::kCheng3Way};

  for (const SpecRow& row : kSpec) {
    const char* name = protocol::to_string(row.type);
    for (const SchemeConfig& scheme : schemes) {
      for (LinkStyle style : styles) {
        const bool can_compress =
            het::wants_compression(row.type, scheme, style);
        for (bool compressed : {false, true}) {
          if (compressed && !can_compress) continue;
          const het::MappingDecision d =
              het::map_message(row.type, compressed, scheme, style);
          ++r.checks;
          auto mapfail = [&](const std::string& what) {
            std::ostringstream os;
            os << name << " (" << scheme.name() << ", style "
               << static_cast<int>(style) << (compressed ? ", compressed" : "")
               << "): " << what;
            fail(os.str());
          };
          switch (style) {
            case LinkStyle::kBaseline:
              if (d.channel != noc::kBChannel || d.compressed ||
                  d.wire_bytes != sut_bytes(row.type)) {
                mapfail("baseline must use the B channel at full size");
              }
              break;
            case LinkStyle::kCheng3Way:
              if (!row.critical) {
                if (d.channel != noc::kPwChannel ||
                    d.wire_bytes != sut_bytes(row.type)) {
                  mapfail("non-critical traffic must ride PW-Wires at full size");
                }
              } else if (row.data) {
                if (d.channel != noc::kBChannel ||
                    d.wire_bytes != sut_bytes(row.type)) {
                  mapfail("critical data must ride B-Wires at full size");
                }
              } else if (d.channel != noc::kLChannel ||
                         d.wire_bytes != sut_bytes(row.type)) {
                mapfail("short critical traffic must ride L-Wires at full size");
              }
              if (d.compressed) mapfail("[6]'s mapping never compresses");
              break;
            case LinkStyle::kVlHet:
              if (row.data || !row.critical) {
                if (d.channel != noc::kBChannel || d.compressed ||
                    d.wire_bytes != sut_bytes(row.type)) {
                  mapfail("data / non-critical traffic must ride B-Wires at "
                          "full size");
                }
              } else if (compressed) {
                if (d.channel != noc::kVlChannel || !d.compressed ||
                    d.wire_bytes != scheme.vl_width_bytes()) {
                  mapfail("compressed critical traffic must fill one VL bundle");
                }
              } else if (!row.address) {
                if (d.channel != noc::kVlChannel ||
                    d.wire_bytes != sut_bytes(row.type)) {
                  mapfail("address-free critical traffic must ride VL-Wires");
                }
              } else if (d.channel != noc::kBChannel ||
                         d.wire_bytes != sut_bytes(row.type)) {
                mapfail("uncompressed critical requests must fall back to "
                        "B-Wires at full size");
              }
              break;
          }
        }
      }
    }
  }
  return r;
}

}  // namespace tcmp::verify
