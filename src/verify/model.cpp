#include "verify/model.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <numeric>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace tcmp::verify {

using protocol::MsgType;
using protocol::Unit;

namespace {

[[nodiscard]] const char* st_name(L1St s) {
  switch (s) {
    case L1St::kI: return "I";
    case L1St::kS: return "S";
    case L1St::kE: return "E";
    case L1St::kM: return "M";
  }
  return "?";
}

[[nodiscard]] const char* dir_name(DirSt s) {
  switch (s) {
    case DirSt::kInvalid: return "I";
    case DirSt::kShared: return "S";
    case DirSt::kExclusive: return "E";
    case DirSt::kBusyShared: return "BS";
    case DirSt::kBusyExcl: return "BX";
    case DirSt::kBusyRecall: return "BR";
  }
  return "?";
}

[[nodiscard]] bool dir_busy(DirSt s) {
  return s == DirSt::kBusyShared || s == DirSt::kBusyExcl ||
         s == DirSt::kBusyRecall;
}

[[nodiscard]] Violation violation(std::string invariant, std::string detail) {
  return Violation{std::move(invariant), std::move(detail)};
}

}  // namespace

ProtocolModel::ProtocolModel(const Config& cfg) : cfg_(cfg) {
  TCMP_CHECK(cfg_.n_tiles >= 2 && cfg_.n_tiles <= 8);
  TCMP_CHECK(cfg_.n_lines >= 1 && cfg_.n_lines <= 4);
}

ModelState ProtocolModel::initial() const {
  ModelState s;
  s.l1.resize(static_cast<std::size_t>(cfg_.n_tiles) * cfg_.n_lines);
  s.dir.resize(cfg_.n_lines);
  return s;
}

unsigned ProtocolModel::outstanding(const ModelState& s) const {
  unsigned n = 0;
  for (const auto& l : s.l1) {
    if (l.mshr.valid) ++n;
    if (l.evict != EvictSt::kNone) ++n;
  }
  return n;
}

void ProtocolModel::push_msg(ModelState& s, ModelMsg m) const {
  // Keep the multiset sorted so equal states serialize identically.
  s.net.insert(std::upper_bound(s.net.begin(), s.net.end(), m), m);
}

void ProtocolModel::issue_miss(ModelState& s, std::uint8_t tile,
                               std::uint8_t line, bool is_write,
                               bool upgrade) const {
  L1LineM& l = l1_at(s, tile, line);
  l.mshr = MshrM{};
  l.mshr.valid = true;
  l.mshr.is_write = is_write;
  l.mshr.upgrade = upgrade;
  ModelMsg req;
  req.type = upgrade ? MsgType::kUpgrade
                     : (is_write ? MsgType::kGetX : MsgType::kGetS);
  req.src = tile;
  req.dst = home_of(line);
  req.dst_unit = Unit::kDir;
  req.line = line;
  req.requester = tile;
  push_msg(s, req);
}

void ProtocolModel::enabled_actions(const ModelState& s,
                                    std::vector<Action>& out) const {
  out.clear();
  // Deliveries: any in-flight message, in any order (unordered network).
  // Identical messages produce identical successors; emit one action per
  // distinct message.
  for (std::size_t i = 0; i < s.net.size(); ++i) {
    if (i > 0 && s.net[i] == s.net[i - 1]) continue;
    Action a;
    a.kind = ActionKind::kDeliver;
    a.msg = s.net[i];
    out.push_back(a);
  }
  for (std::uint8_t line = 0; line < cfg_.n_lines; ++line) {
    if (s.dir[line].fill_outstanding) {
      out.push_back(Action{ActionKind::kMemFill, 0, line, {}});
    }
  }

  const bool budget = s.net.size() < cfg_.max_msgs &&
                      outstanding(s) < cfg_.max_outstanding;
  if (!budget) return;

  for (std::uint8_t t = 0; t < cfg_.n_tiles; ++t) {
    for (std::uint8_t line = 0; line < cfg_.n_lines; ++line) {
      const L1LineM& l = l1_at(s, t, line);
      if (!l.mshr.valid && l.deferred == DeferSt::kNone) {
        // Read: only state-changing when the line is not readable locally.
        if (l.st == L1St::kI) {
          out.push_back(Action{ActionKind::kRead, t, line, {}});
        }
        // Write: miss (I), upgrade (S) or silent E->M transition.
        if (l.st != L1St::kM) {
          out.push_back(Action{ActionKind::kWrite, t, line, {}});
        }
        if (cfg_.enable_evictions && l.st != L1St::kI &&
            l.evict == EvictSt::kNone) {
          out.push_back(Action{ActionKind::kEvict, t, line, {}});
        }
      }
    }
  }
  if (cfg_.enable_recalls) {
    for (std::uint8_t line = 0; line < cfg_.n_lines; ++line) {
      const DirLineM& d = s.dir[line];
      if (d.present && (d.st == DirSt::kShared || d.st == DirSt::kExclusive)) {
        out.push_back(Action{ActionKind::kRecall, 0, line, {}});
      }
    }
  }
}

std::optional<Violation> ProtocolModel::apply(ModelState& s,
                                              const Action& a) const {
  switch (a.kind) {
    case ActionKind::kRead: {
      L1LineM& l = l1_at(s, a.tile, a.line);
      if (l.st != L1St::kI || l.mshr.valid || l.deferred != DeferSt::kNone) {
        return violation("model", "read action on an ineligible line");
      }
      if (l.evict != EvictSt::kNone) {
        l.deferred = DeferSt::kRead;  // wait for the PutAck, then reissue
      } else {
        issue_miss(s, a.tile, a.line, /*is_write=*/false, /*upgrade=*/false);
      }
      return std::nullopt;
    }
    case ActionKind::kWrite: {
      L1LineM& l = l1_at(s, a.tile, a.line);
      if (l.mshr.valid || l.deferred != DeferSt::kNone) {
        return violation("model", "write action on an ineligible line");
      }
      switch (l.st) {
        case L1St::kM:
          return violation("model", "write hit modelled as an action");
        case L1St::kE:
          l.st = L1St::kM;  // silent E->M
          return std::nullopt;
        case L1St::kS:
          issue_miss(s, a.tile, a.line, /*is_write=*/true, /*upgrade=*/true);
          return std::nullopt;
        case L1St::kI:
          if (l.evict != EvictSt::kNone) {
            l.deferred = DeferSt::kWrite;
          } else {
            issue_miss(s, a.tile, a.line, /*is_write=*/true, /*upgrade=*/false);
          }
          return std::nullopt;
      }
      return std::nullopt;
    }
    case ActionKind::kEvict: {
      L1LineM& l = l1_at(s, a.tile, a.line);
      if (l.st == L1St::kI || l.mshr.valid || l.evict != EvictSt::kNone) {
        return violation("model", "evict action on an ineligible line");
      }
      if (l.st == L1St::kS) {
        l.st = L1St::kI;  // silent: no replacement hint for shared lines
        return std::nullopt;
      }
      ModelMsg put;
      put.type = l.st == L1St::kM ? MsgType::kPutM : MsgType::kPutE;
      put.src = a.tile;
      put.dst = home_of(a.line);
      put.dst_unit = Unit::kDir;
      put.line = a.line;
      push_msg(s, put);
      l.evict = l.st == L1St::kM ? EvictSt::kMIA : EvictSt::kEIA;
      l.st = L1St::kI;
      return std::nullopt;
    }
    case ActionKind::kRecall: {
      DirLineM& d = s.dir[a.line];
      if (!d.present || (d.st != DirSt::kShared && d.st != DirSt::kExclusive)) {
        return violation("model", "recall action on an ineligible line");
      }
      if (d.st == DirSt::kShared) {
        const auto acks =
            static_cast<std::uint8_t>(std::popcount(std::uint32_t{d.sharers}));
        if (acks == 0) {
          return violation("INV-SHARED-NONEMPTY",
                           "recall of a Shared line with an empty sharer set");
        }
        d.recall_acks = acks;
        if (mutated(MutationId::kDirRecallLostAck) && d.recall_acks > 1) {
          --d.recall_acks;
        }
        dir_send_invs(s, a.line, d.sharers, home_of(a.line), Unit::kDir);
        d.sharers = 0;
      } else {
        ModelMsg recall;
        recall.type = MsgType::kRecall;
        recall.src = home_of(a.line);
        recall.dst = d.owner;
        recall.dst_unit = Unit::kL1;
        recall.line = a.line;
        recall.requester = home_of(a.line);
        push_msg(s, recall);
      }
      d.st = DirSt::kBusyRecall;
      return std::nullopt;
    }
    case ActionKind::kMemFill: {
      DirLineM& d = s.dir[a.line];
      if (!d.fill_outstanding) {
        return violation("model", "fill action without an outstanding fill");
      }
      d.fill_outstanding = false;
      d.present = true;
      d.st = DirSt::kInvalid;
      d.sharers = 0;
      d.owner = kNoTile;
      d.fwd_req = kNoTile;
      return dir_drain_pending(s, a.line, std::exchange(d.fill_pending, {}));
    }
    case ActionKind::kDeliver: {
      auto it = std::find(s.net.begin(), s.net.end(), a.msg);
      if (it == s.net.end()) {
        return violation("model", "delivering a message not in flight");
      }
      const ModelMsg m = *it;
      s.net.erase(it);
      if (m.dst_unit == Unit::kDir) {
        switch (m.type) {
          case MsgType::kGetS:
          case MsgType::kGetX:
          case MsgType::kUpgrade:
            return dir_handle_request(s, m);
          case MsgType::kPutE:
          case MsgType::kPutM:
            return dir_handle_put(s, m);
          case MsgType::kRevision:
          case MsgType::kAckRevision:
            return dir_handle_revision(s, m);
          case MsgType::kInvAck:
            return dir_handle_inv_ack(s, m);
          default:
            return violation("PROTO-ASSERT",
                             "message type not handled by directory");
        }
      }
      switch (m.type) {
        case MsgType::kInv:
          return l1_on_inv(s, m);
        case MsgType::kFwdGetS:
        case MsgType::kFwdGetX:
        case MsgType::kRecall:
          return l1_on_fwd(s, m);
        case MsgType::kData:
        case MsgType::kDataExcl:
        case MsgType::kUpgradeAck:
        case MsgType::kInvAck:
          return l1_on_reply(s, m);
        case MsgType::kPutAck:
          return l1_on_put_ack(s, m);
        default:
          return violation("PROTO-ASSERT", "message type not handled by L1");
      }
    }
  }
  return violation("model", "unknown action");
}

// --- directory handlers ----------------------------------------------------

void ProtocolModel::dir_send_invs(ModelState& s, std::uint8_t line,
                                  std::uint32_t sharers, std::uint8_t collector,
                                  Unit ack_unit) const {
  for (unsigned n = 0; n < cfg_.n_tiles; ++n) {
    if (((sharers >> n) & 1u) == 0) continue;
    ModelMsg inv;
    inv.type = MsgType::kInv;
    inv.src = home_of(line);
    inv.dst = static_cast<std::uint8_t>(n);
    inv.dst_unit = Unit::kL1;
    inv.line = line;
    inv.requester = collector;
    inv.ack_unit = ack_unit;
    push_msg(s, inv);
  }
}

std::optional<Violation> ProtocolModel::dir_handle_request(
    ModelState& s, const ModelMsg& m) const {
  DirLineM& d = s.dir[m.line];
  const PendingReq pending{m.type, m.requester, m.src};
  if (d.fill_outstanding) {
    d.fill_pending.push_back(pending);
    return std::nullopt;
  }
  if (!d.present) {
    d.fill_outstanding = true;  // start_fill
    d.fill_pending.push_back(pending);
    return std::nullopt;
  }
  if (dir_busy(d.st)) {
    d.pending.push_back(pending);
    return std::nullopt;
  }
  return dir_request_hit(s, m);
}

std::optional<Violation> ProtocolModel::dir_request_hit(ModelState& s,
                                                        const ModelMsg& m) const {
  DirLineM& d = s.dir[m.line];
  const std::uint8_t req = m.requester;
  const auto req_bit = static_cast<std::uint16_t>(1u << req);

  auto reply = [&](MsgType type, std::uint8_t acks) {
    ModelMsg rsp;
    rsp.type = type;
    rsp.src = home_of(m.line);
    rsp.dst = req;
    rsp.dst_unit = Unit::kL1;
    rsp.line = m.line;
    rsp.requester = req;
    rsp.ack_count = acks;
    push_msg(s, rsp);
  };
  auto forward = [&](MsgType type) {
    ModelMsg fwd;
    fwd.type = type;
    fwd.src = home_of(m.line);
    fwd.dst = d.owner;
    fwd.dst_unit = Unit::kL1;
    fwd.line = m.line;
    fwd.requester = req;
    push_msg(s, fwd);
  };

  if (m.type == MsgType::kGetS) {
    switch (d.st) {
      case DirSt::kInvalid:
        reply(MsgType::kDataExcl, 0);  // MESI: nobody else holds it
        d.st = DirSt::kExclusive;
        d.owner = req;
        return std::nullopt;
      case DirSt::kShared:
        reply(MsgType::kData, 0);
        d.sharers |= req_bit;
        return std::nullopt;
      case DirSt::kExclusive:
        if (d.owner == req) {
          return violation("PROTO-ASSERT", "owner re-requesting its own line");
        }
        forward(MsgType::kFwdGetS);
        if (!mutated(MutationId::kDirNoBusyOnFwd)) {
          d.st = DirSt::kBusyShared;
        }
        d.fwd_req = req;
        return std::nullopt;
      default:
        return violation("PROTO-ASSERT", "GetS hit a busy entry");
    }
  }

  // GetX / Upgrade.
  switch (d.st) {
    case DirSt::kInvalid:
      reply(MsgType::kDataExcl, 0);
      d.st = DirSt::kExclusive;
      d.owner = req;
      return std::nullopt;
    case DirSt::kShared: {
      std::uint32_t others = d.sharers & ~req_bit;
      auto acks = static_cast<std::uint8_t>(std::popcount(others));
      if (mutated(MutationId::kDirSkipLastInv) && others != 0) {
        // Forget the highest-numbered sharer entirely: no Inv, no ack slot.
        others &= ~std::bit_floor(others);
        --acks;
      }
      std::uint8_t reported = acks;
      if (mutated(MutationId::kDirWrongAckCount) && acks > 0) --reported;
      if (m.type == MsgType::kUpgrade && (d.sharers & req_bit) != 0) {
        reply(MsgType::kUpgradeAck, reported);
      } else {
        reply(MsgType::kDataExcl, reported);
      }
      dir_send_invs(s, m.line, others, req, Unit::kL1);
      d.st = DirSt::kExclusive;
      d.owner = req;
      d.sharers = 0;
      return std::nullopt;
    }
    case DirSt::kExclusive:
      if (d.owner == req) {
        return violation("PROTO-ASSERT", "owner re-requesting exclusivity");
      }
      forward(MsgType::kFwdGetX);
      d.st = DirSt::kBusyExcl;
      d.fwd_req = req;
      return std::nullopt;
    default:
      return violation("PROTO-ASSERT", "GetX/Upgrade hit a busy entry");
  }
}

std::optional<Violation> ProtocolModel::dir_handle_put(ModelState& s,
                                                       const ModelMsg& m) const {
  DirLineM& d = s.dir[m.line];
  auto send_ack = [&] {
    ModelMsg ack;
    ack.type = MsgType::kPutAck;
    ack.src = home_of(m.line);
    ack.dst = m.src;
    ack.dst_unit = Unit::kL1;
    ack.line = m.line;
    push_msg(s, ack);
  };

  if (!d.present) {
    send_ack();  // stale: the line was recalled away while the Put flew
    return std::nullopt;
  }
  if (d.st == DirSt::kExclusive && d.owner == m.src) {
    d.st = DirSt::kInvalid;
    d.owner = kNoTile;
    send_ack();
    return std::nullopt;
  }
  if (dir_busy(d.st) && d.owner == m.src) {
    // Put crossed an in-flight forward/recall: hold the ack until the
    // owner's (Ack)Revision resolves the busy state.
    if (d.held_put_ack) {
      return violation("PROTO-ASSERT", "second held PutAck on one line");
    }
    if (mutated(MutationId::kDirPutAckNotHeld)) {
      send_ack();
    } else {
      d.held_put_ack = true;
    }
    return std::nullopt;
  }
  if (d.st == DirSt::kBusyExcl && d.fwd_req == m.src) {
    // The new owner's writeback beat the old owner's AckRevision home
    // (mirrors Directory::handle_put): ack now, resolve to Invalid later.
    if (d.fwd_put) {
      return violation("PROTO-ASSERT", "second forward-put on one line");
    }
    if (m.type != MsgType::kPutM) {
      return violation("PROTO-ASSERT", "FwdGetX target evicted clean");
    }
    d.fwd_put = true;
    send_ack();
    return std::nullopt;
  }
  send_ack();  // stale put
  return std::nullopt;
}

std::optional<Violation> ProtocolModel::dir_handle_revision(
    ModelState& s, const ModelMsg& m) const {
  DirLineM& d = s.dir[m.line];
  if (!d.present) {
    if (m.type != MsgType::kRevision) {
      return violation("PROTO-ASSERT", "AckRevision echo for an absent line");
    }
    return std::nullopt;  // echo of a recall resolved by a crossing Put
  }
  const bool release_ack = d.held_put_ack;
  const std::uint8_t old_owner = d.owner;
  auto release = [&] {
    if (!release_ack) return;
    ModelMsg ack;
    ack.type = MsgType::kPutAck;
    ack.src = home_of(m.line);
    ack.dst = old_owner;
    ack.dst_unit = Unit::kL1;
    ack.line = m.line;
    push_msg(s, ack);
  };

  switch (d.st) {
    case DirSt::kBusyShared: {
      if (m.type != MsgType::kRevision) {
        return violation("PROTO-ASSERT", "AckRevision in BusyShared");
      }
      d.st = DirSt::kShared;
      d.sharers = static_cast<std::uint16_t>((1u << d.owner) | (1u << d.fwd_req));
      d.owner = kNoTile;
      d.held_put_ack = false;
      release();
      return dir_drain_pending(s, m.line, std::exchange(d.pending, {}));
    }
    case DirSt::kBusyExcl:
      if (m.type != MsgType::kAckRevision) {
        return violation("PROTO-ASSERT", "Revision in BusyExcl");
      }
      if (d.fwd_put) {
        // The forward requester already wrote the line back; nobody holds it.
        d.fwd_put = false;
        d.st = DirSt::kInvalid;
        d.owner = kNoTile;
        d.fwd_req = kNoTile;
      } else {
        d.st = DirSt::kExclusive;
        d.owner = d.fwd_req;
      }
      d.held_put_ack = false;
      release();
      return dir_drain_pending(s, m.line, std::exchange(d.pending, {}));
    case DirSt::kBusyRecall:
      if (m.type != MsgType::kRevision) {
        return violation("PROTO-ASSERT", "AckRevision in BusyRecall");
      }
      if (m.src != d.owner) {
        return violation("PROTO-ASSERT", "recall response from a non-owner");
      }
      d.held_put_ack = false;
      release();
      return dir_finish_recall(s, m.line);
    default:
      return violation("PROTO-ASSERT", "revision in a non-busy directory state");
  }
}

std::optional<Violation> ProtocolModel::dir_handle_inv_ack(
    ModelState& s, const ModelMsg& m) const {
  DirLineM& d = s.dir[m.line];
  if (!d.present || d.st != DirSt::kBusyRecall) {
    return violation("PROTO-ASSERT", "stray InvAck at directory");
  }
  if (d.recall_acks == 0) {
    return violation("PROTO-ASSERT", "InvAck with no recall acks pending");
  }
  if (--d.recall_acks == 0) return dir_finish_recall(s, m.line);
  return std::nullopt;
}

std::optional<Violation> ProtocolModel::dir_finish_recall(
    ModelState& s, std::uint8_t line) const {
  DirLineM& d = s.dir[line];
  if (d.st != DirSt::kBusyRecall) {
    return violation("PROTO-ASSERT", "finish_recall outside BusyRecall");
  }
  d.present = false;
  d.st = DirSt::kInvalid;
  d.sharers = 0;
  d.owner = kNoTile;
  d.fwd_req = kNoTile;
  d.recall_acks = 0;
  return dir_drain_pending(s, line, std::exchange(d.pending, {}));
}

std::optional<Violation> ProtocolModel::dir_drain_pending(
    ModelState& s, std::uint8_t line, std::vector<PendingReq> msgs) const {
  for (const auto& p : msgs) {
    ModelMsg m;
    m.type = p.type;
    m.src = p.src;
    m.dst = home_of(line);
    m.dst_unit = Unit::kDir;
    m.line = line;
    m.requester = p.requester;
    if (auto v = dir_handle_request(s, m)) return v;
  }
  return std::nullopt;
}

// --- L1 handlers -----------------------------------------------------------

std::optional<Violation> ProtocolModel::l1_on_inv(ModelState& s,
                                                  const ModelMsg& m) const {
  L1LineM& l = l1_at(s, m.dst, m.line);
  ModelMsg ack;
  ack.type = MsgType::kInvAck;
  ack.src = m.dst;
  ack.dst = m.requester;
  ack.dst_unit = m.ack_unit;
  ack.line = m.line;
  ack.requester = m.requester;

  if (l.st != L1St::kI) {
    if (l.mshr.valid) {
      // Upgrade in flight and the line just got invalidated.
      if (!l.mshr.upgrade || l.st != L1St::kS) {
        return violation("PROTO-ASSERT",
                         "Inv hit a non-upgrade transaction on a held line");
      }
      l.mshr.upgrade = false;
      l.st = L1St::kI;
    } else {
      if (l.st != L1St::kS) {
        return violation("PROTO-ASSERT", "Inv must only reach shared copies");
      }
      l.st = L1St::kI;
    }
  } else if (l.mshr.valid) {
    if (!l.mshr.is_write && !mutated(MutationId::kL1NoDropAfterFill)) {
      l.mshr.drop_after_fill = true;  // IS_D: Inv overtook the Data reply
    }
  } else {
    // Stale Inv for a silently evicted shared copy: still ack.
    if (mutated(MutationId::kL1SkipStaleInvAck)) return std::nullopt;
  }
  push_msg(s, ack);
  return std::nullopt;
}

std::optional<Violation> ProtocolModel::l1_service_fwd_stable(
    ModelState& s, std::uint8_t tile, std::uint8_t line, MsgType fwd_type,
    std::uint8_t requester) const {
  L1LineM& l = l1_at(s, tile, line);
  if (l.st != L1St::kM && l.st != L1St::kE) {
    return violation("PROTO-ASSERT", "forward serviced from a non-owner state");
  }
  const std::uint8_t home = home_of(line);
  switch (fwd_type) {
    case MsgType::kFwdGetS: {
      ModelMsg data;
      data.type = MsgType::kData;
      data.src = tile;
      data.dst = requester;
      data.dst_unit = Unit::kL1;
      data.line = line;
      data.requester = requester;
      push_msg(s, data);
      if (!mutated(MutationId::kL1DropRevision)) {
        ModelMsg rev;
        rev.type = MsgType::kRevision;
        rev.src = tile;
        rev.dst = home;
        rev.dst_unit = Unit::kDir;
        rev.line = line;
        push_msg(s, rev);
      }
      l.st = L1St::kS;
      return std::nullopt;
    }
    case MsgType::kFwdGetX: {
      ModelMsg data;
      data.type = MsgType::kDataExcl;
      data.src = tile;
      data.dst = requester;
      data.dst_unit = Unit::kL1;
      data.line = line;
      data.requester = requester;
      data.ack_count = 0;
      push_msg(s, data);
      ModelMsg rev;
      rev.type = MsgType::kAckRevision;
      rev.src = tile;
      rev.dst = home;
      rev.dst_unit = Unit::kDir;
      rev.line = line;
      push_msg(s, rev);
      l.st = L1St::kI;
      return std::nullopt;
    }
    case MsgType::kRecall: {
      ModelMsg rev;
      rev.type = MsgType::kRevision;
      rev.src = tile;
      rev.dst = home;
      rev.dst_unit = Unit::kDir;
      rev.line = line;
      push_msg(s, rev);
      l.st = L1St::kI;
      return std::nullopt;
    }
    default:
      return violation("PROTO-ASSERT", "unknown forward type");
  }
}

void ProtocolModel::l1_service_fwd_evict(ModelState& s, std::uint8_t tile,
                                         std::uint8_t line, MsgType fwd_type,
                                         std::uint8_t requester) const {
  L1LineM& l = l1_at(s, tile, line);
  const std::uint8_t home = home_of(line);
  if (fwd_type == MsgType::kFwdGetS) {
    ModelMsg data;
    data.type = MsgType::kData;
    data.src = tile;
    data.dst = requester;
    data.dst_unit = Unit::kL1;
    data.line = line;
    data.requester = requester;
    push_msg(s, data);
    if (!mutated(MutationId::kL1DropRevision)) {
      ModelMsg rev;
      rev.type = MsgType::kRevision;
      rev.src = tile;
      rev.dst = home;
      rev.dst_unit = Unit::kDir;
      rev.line = line;
      push_msg(s, rev);
    }
  } else if (fwd_type == MsgType::kFwdGetX) {
    ModelMsg data;
    data.type = MsgType::kDataExcl;
    data.src = tile;
    data.dst = requester;
    data.dst_unit = Unit::kL1;
    data.line = line;
    data.requester = requester;
    push_msg(s, data);
    ModelMsg rev;
    rev.type = MsgType::kAckRevision;
    rev.src = tile;
    rev.dst = home;
    rev.dst_unit = Unit::kDir;
    rev.line = line;
    push_msg(s, rev);
  } else {  // Recall
    ModelMsg rev;
    rev.type = MsgType::kRevision;
    rev.src = tile;
    rev.dst = home;
    rev.dst_unit = Unit::kDir;
    rev.line = line;
    push_msg(s, rev);
  }
  l.evict = EvictSt::kIIA;
}

std::optional<Violation> ProtocolModel::l1_on_fwd(ModelState& s,
                                                  const ModelMsg& m) const {
  L1LineM& l = l1_at(s, m.dst, m.line);
  if (l.st != L1St::kI) {
    if (l.mshr.valid) {
      // Upgrade outstanding on a shared line: park until install.
      l.mshr.has_parked = true;
      l.mshr.parked_type = m.type;
      l.mshr.parked_requester = m.requester;
      return std::nullopt;
    }
    return l1_service_fwd_stable(s, m.dst, m.line, m.type, m.requester);
  }
  if (l.evict != EvictSt::kNone) {
    if (l.evict == EvictSt::kIIA) {
      return violation("PROTO-ASSERT",
                       "forward after ownership already yielded (II_A)");
    }
    l1_service_fwd_evict(s, m.dst, m.line, m.type, m.requester);
    return std::nullopt;
  }
  if (l.mshr.valid) {
    if (l.mshr.has_parked) {
      return violation("PROTO-ASSERT",
                       "home forwarded twice to a pending owner");
    }
    l.mshr.has_parked = true;
    l.mshr.parked_type = m.type;
    l.mshr.parked_requester = m.requester;
    return std::nullopt;
  }
  return violation("PROTO-ASSERT", "forward to a non-owner");
}

std::optional<Violation> ProtocolModel::l1_on_reply(ModelState& s,
                                                    const ModelMsg& m) const {
  L1LineM& l = l1_at(s, m.dst, m.line);
  if (!l.mshr.valid) {
    return violation("PROTO-ASSERT", "reply without an outstanding miss");
  }
  MshrM& mshr = l.mshr;
  switch (m.type) {
    case MsgType::kData:
      if (mshr.is_write) {
        return violation("PROTO-ASSERT", "shared Data reply to a write miss");
      }
      mshr.data_received = true;
      mshr.grant_exclusive = false;
      if (mshr.acks_expected < 0) mshr.acks_expected = 0;
      break;
    case MsgType::kDataExcl:
      mshr.data_received = true;
      mshr.grant_exclusive = true;
      mshr.acks_expected = static_cast<std::int8_t>(m.ack_count);
      break;
    case MsgType::kUpgradeAck:
      if (!mshr.is_write) {
        return violation("PROTO-ASSERT", "UpgradeAck to a read miss");
      }
      mshr.data_received = true;
      mshr.grant_exclusive = true;
      mshr.acks_expected = static_cast<std::int8_t>(m.ack_count);
      break;
    case MsgType::kInvAck:
      ++mshr.acks_received;
      break;
    default:
      return violation("PROTO-ASSERT", "unexpected reply type");
  }
  return l1_maybe_complete(s, m.dst, m.line);
}

std::optional<Violation> ProtocolModel::l1_maybe_complete(ModelState& s,
                                                          std::uint8_t tile,
                                                          std::uint8_t line) const {
  L1LineM& l = l1_at(s, tile, line);
  MshrM& m = l.mshr;
  if (!m.data_received) return std::nullopt;
  if (m.acks_expected < 0 || m.acks_received < m.acks_expected) return std::nullopt;
  if (m.acks_received > m.acks_expected) {
    return violation("PROTO-ASSERT", "excess invalidation acks");
  }

  const MshrM done = m;  // install may recurse through a parked forward
  l.mshr = MshrM{};
  // Use-once drops apply only to shared grants (mirrors install_fill): an
  // exclusive grant can never be stale, so a pending drop flag came from an
  // older epoch and must not discard the grant.
  if (!done.drop_after_fill || done.grant_exclusive) {
    l.st = done.is_write ? L1St::kM
                         : (done.grant_exclusive ? L1St::kE : L1St::kS);
  } else {
    l.st = L1St::kI;  // IS_D_I: used once and dropped
  }
  if (done.has_parked) {
    if (l.st == L1St::kI) {
      return violation("PROTO-ASSERT",
                       "parked forward requires an installed line");
    }
    return l1_service_fwd_stable(s, tile, line, done.parked_type,
                                 done.parked_requester);
  }
  return std::nullopt;
}

std::optional<Violation> ProtocolModel::l1_on_put_ack(ModelState& s,
                                                      const ModelMsg& m) const {
  L1LineM& l = l1_at(s, m.dst, m.line);
  if (l.evict == EvictSt::kNone) {
    return violation("PROTO-ASSERT", "PutAck without an in-flight writeback");
  }
  l.evict = EvictSt::kNone;
  if (l.deferred != DeferSt::kNone) {
    const bool is_write = l.deferred == DeferSt::kWrite;
    l.deferred = DeferSt::kNone;
    issue_miss(s, m.dst, m.line, is_write, /*upgrade=*/false);
  }
  return std::nullopt;
}

// --- invariants ------------------------------------------------------------

bool ProtocolModel::quiescent(const ModelState& s) const {
  if (!s.net.empty()) return false;
  for (const auto& l : s.l1) {
    if (l.mshr.valid || l.evict != EvictSt::kNone || l.deferred != DeferSt::kNone)
      return false;
  }
  for (const auto& d : s.dir) {
    if (dir_busy(d.st) || !d.pending.empty() || d.fill_outstanding ||
        !d.fill_pending.empty() || d.held_put_ack)
      return false;
  }
  return true;
}

std::optional<Violation> ProtocolModel::check_deadlock(const ModelState& s) const {
  if (quiescent(s)) return std::nullopt;
  if (!s.net.empty()) return std::nullopt;  // a delivery can still make progress
  for (const auto& d : s.dir) {
    if (d.fill_outstanding) return std::nullopt;  // a fill can still arrive
  }
  return violation("DEADLOCK",
                   "open transactions with no message or fill left to deliver");
}

std::optional<Violation> ProtocolModel::check_invariants(const ModelState& s) const {
  for (std::uint8_t line = 0; line < cfg_.n_lines; ++line) {
    const DirLineM& d = s.dir[line];

    // Per-line message tallies used by several invariants.
    unsigned invs_to_dir = 0, invacks_to_dir = 0;
    unsigned fwd_gets = 0, fwd_getx = 0, recalls = 0, revisions = 0,
             ack_revisions = 0;
    for (const auto& m : s.net) {
      if (m.line != line) continue;
      switch (m.type) {
        case MsgType::kInv:
          if (m.ack_unit == Unit::kDir) ++invs_to_dir;
          break;
        case MsgType::kInvAck:
          if (m.dst_unit == Unit::kDir) ++invacks_to_dir;
          break;
        case MsgType::kFwdGetS: ++fwd_gets; break;
        case MsgType::kFwdGetX: ++fwd_getx; break;
        case MsgType::kRecall: ++recalls; break;
        case MsgType::kRevision: ++revisions; break;
        case MsgType::kAckRevision: ++ack_revisions; break;
        default: break;
      }
    }
    auto parked_somewhere = [&](MsgType t) {
      for (unsigned tile = 0; tile < cfg_.n_tiles; ++tile) {
        const MshrM& m = l1_at(s, tile, line).mshr;
        if (m.valid && m.has_parked && m.parked_type == t) return true;
      }
      return false;
    };

    // INV-SWMR: at most one stable M/E copy, never alongside stable S.
    unsigned owners = 0, sharers_held = 0;
    std::uint8_t owner_tile = kNoTile;
    for (std::uint8_t t = 0; t < cfg_.n_tiles; ++t) {
      const L1St st = l1_at(s, t, line).st;
      if (st == L1St::kM || st == L1St::kE) {
        ++owners;
        owner_tile = t;
      } else if (st == L1St::kS) {
        ++sharers_held;
      }
    }
    if (owners > 1) {
      return violation("INV-SWMR", "two stable M/E copies of line " +
                                       std::to_string(line));
    }
    if (owners == 1 && sharers_held > 0) {
      return violation("INV-SWMR", "stable M/E copy alongside stable S on line " +
                                       std::to_string(line));
    }

    // INV-DIR-OWNER: a stable M/E holder is known to the directory.
    if (owners == 1) {
      const bool known =
          d.present &&
          ((d.st == DirSt::kExclusive && d.owner == owner_tile) ||
           (d.st == DirSt::kBusyShared && d.owner == owner_tile) ||
           (d.st == DirSt::kBusyRecall && d.owner == owner_tile) ||
           (d.st == DirSt::kBusyExcl &&
            (d.owner == owner_tile || d.fwd_req == owner_tile)));
      if (!known) {
        return violation("INV-DIR-OWNER",
                         "tile " + std::to_string(owner_tile) +
                             " holds M/E of line " + std::to_string(line) +
                             " unknown to the directory");
      }
    }

    // INV-SHARER-LISTED: every stable S holder is listed, is an in-flight
    // invalidation target, is a party of the BusyShared handoff, or holds a
    // granted-but-uninstalled upgrade (the line stays S until the UpgradeAck
    // and every InvAck arrive, while the directory already names it owner).
    for (std::uint8_t t = 0; t < cfg_.n_tiles; ++t) {
      const L1LineM& holder = l1_at(s, t, line);
      if (holder.st != L1St::kS) continue;
      bool inv_in_flight = false;
      for (const auto& m : s.net) {
        if (m.type == MsgType::kInv && m.line == line && m.dst == t) {
          inv_in_flight = true;
          break;
        }
      }
      const bool upgrading = holder.mshr.valid && holder.mshr.is_write;
      const bool listed =
          d.present && (((d.sharers >> t) & 1u) != 0 ||
                        (d.st == DirSt::kBusyShared &&
                         (d.owner == t || d.fwd_req == t)));
      if (!listed && !inv_in_flight && !upgrading) {
        return violation("INV-SHARER-LISTED",
                         "tile " + std::to_string(t) + " holds S of line " +
                             std::to_string(line) +
                             " unknown to the directory");
      }
    }

    // INV-SHARED-NONEMPTY: a Shared entry always lists at least one sharer.
    if (d.present && d.st == DirSt::kShared && d.sharers == 0) {
      return violation("INV-SHARED-NONEMPTY",
                       "Shared entry with empty sharer set on line " +
                           std::to_string(line));
    }

    // INV-BUSY-COMPLETION: every busy entry has a completion in flight.
    if (d.present) {
      switch (d.st) {
        case DirSt::kBusyShared:
          if (fwd_gets == 0 && revisions == 0 &&
              !parked_somewhere(MsgType::kFwdGetS)) {
            return violation("INV-BUSY-COMPLETION",
                             "BusyShared with no FwdGetS/Revision pending on "
                             "line " + std::to_string(line));
          }
          break;
        case DirSt::kBusyExcl:
          if (fwd_getx == 0 && ack_revisions == 0 &&
              !parked_somewhere(MsgType::kFwdGetX)) {
            return violation("INV-BUSY-COMPLETION",
                             "BusyExcl with no FwdGetX/AckRevision pending on "
                             "line " + std::to_string(line));
          }
          break;
        case DirSt::kBusyRecall:
          if (d.recall_acks > 0) {
            if (invs_to_dir + invacks_to_dir != d.recall_acks) {
              return violation(
                  "INV-BUSY-COMPLETION",
                  "BusyRecall expects " + std::to_string(d.recall_acks) +
                      " acks but " +
                      std::to_string(invs_to_dir + invacks_to_dir) +
                      " invalidations are in flight on line " +
                      std::to_string(line));
            }
          } else if (recalls == 0 && revisions == 0 &&
                     !parked_somewhere(MsgType::kRecall)) {
            return violation("INV-BUSY-COMPLETION",
                             "BusyRecall with no Recall/Revision pending on "
                             "line " + std::to_string(line));
          }
          break;
        default:
          break;
      }
    }

    // INV-MSHR-ACKS: invalidation-ack accounting per collecting requester.
    for (std::uint8_t t = 0; t < cfg_.n_tiles; ++t) {
      const MshrM& m = l1_at(s, t, line).mshr;
      if (!m.valid) continue;
      unsigned acks_in_flight = 0, invs_for_t = 0;
      int reply_acks = -1;
      for (const auto& msg : s.net) {
        if (msg.line != line) continue;
        if (msg.type == MsgType::kInvAck && msg.dst_unit == Unit::kL1 &&
            msg.dst == t) {
          ++acks_in_flight;
        } else if (msg.type == MsgType::kInv && msg.ack_unit == Unit::kL1 &&
                   msg.requester == t) {
          ++invs_for_t;
        } else if ((msg.type == MsgType::kDataExcl ||
                    msg.type == MsgType::kUpgradeAck) &&
                   msg.dst == t) {
          reply_acks = msg.ack_count;
        }
      }
      const unsigned have = m.acks_received + acks_in_flight + invs_for_t;
      const int expected = m.acks_expected >= 0 ? m.acks_expected
                           : reply_acks >= 0    ? reply_acks
                                                : 0;
      if (have != static_cast<unsigned>(expected)) {
        return violation("INV-MSHR-ACKS",
                         "tile " + std::to_string(t) + " line " +
                             std::to_string(line) + ": " +
                             std::to_string(have) +
                             " invalidation acks accounted, " +
                             std::to_string(expected) + " expected");
      }
    }

    // INV-EVICT-PUT: an eviction-buffer entry always has its Put, the held
    // ack at the home, or the PutAck in flight.
    for (std::uint8_t t = 0; t < cfg_.n_tiles; ++t) {
      if (l1_at(s, t, line).evict == EvictSt::kNone) continue;
      bool put_or_ack = d.present && d.held_put_ack && d.owner == t;
      for (const auto& msg : s.net) {
        if (msg.line != line) continue;
        if ((msg.type == MsgType::kPutE || msg.type == MsgType::kPutM) &&
            msg.src == t) {
          put_or_ack = true;
        }
        if (msg.type == MsgType::kPutAck && msg.dst == t) put_or_ack = true;
      }
      if (!put_or_ack) {
        return violation("INV-EVICT-PUT",
                         "tile " + std::to_string(t) +
                             " has a writeback of line " +
                             std::to_string(line) +
                             " with no Put/PutAck in flight");
      }
    }
  }
  return std::nullopt;
}

// --- canonicalization ------------------------------------------------------

namespace {
void put8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }
void put16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}
}  // namespace

std::string ProtocolModel::serialize_permuted(
    const ModelState& s, const std::vector<std::uint8_t>& perm) const {
  // perm maps old tile id -> new tile id.
  auto p = [&](std::uint8_t t) { return t == kNoTile ? kNoTile : perm[t]; };
  auto p_sharers = [&](std::uint16_t bits) {
    std::uint16_t out = 0;
    for (unsigned t = 0; t < cfg_.n_tiles; ++t) {
      if ((bits >> t) & 1u) out |= static_cast<std::uint16_t>(1u << perm[t]);
    }
    return out;
  };
  std::string out;
  out.reserve(16 * s.l1.size() + 32 * s.dir.size() + 8 * s.net.size() + 8);

  // L1 rows in NEW tile order.
  std::vector<std::uint8_t> inv(cfg_.n_tiles);
  for (unsigned t = 0; t < cfg_.n_tiles; ++t) inv[perm[t]] = static_cast<std::uint8_t>(t);
  for (unsigned nt = 0; nt < cfg_.n_tiles; ++nt) {
    const unsigned old_t = inv[nt];
    for (unsigned line = 0; line < cfg_.n_lines; ++line) {
      const L1LineM& l = l1_at(s, old_t, line);
      put8(out, static_cast<std::uint8_t>(l.st));
      put8(out, static_cast<std::uint8_t>(l.evict));
      put8(out, static_cast<std::uint8_t>(l.deferred));
      const MshrM& m = l.mshr;
      put8(out, static_cast<std::uint8_t>(
                    (m.valid ? 1 : 0) | (m.is_write ? 2 : 0) |
                    (m.upgrade ? 4 : 0) | (m.data_received ? 8 : 0) |
                    (m.grant_exclusive ? 16 : 0) |
                    (m.drop_after_fill ? 32 : 0) | (m.has_parked ? 64 : 0)));
      put8(out, static_cast<std::uint8_t>(m.acks_expected + 1));
      put8(out, m.acks_received);
      put8(out, static_cast<std::uint8_t>(m.parked_type));
      put8(out, m.valid && m.has_parked ? p(m.parked_requester) : kNoTile);
    }
  }
  for (const auto& d : s.dir) {
    put8(out, static_cast<std::uint8_t>((d.present ? 1 : 0) |
                                        (d.held_put_ack ? 2 : 0) |
                                        (d.fill_outstanding ? 4 : 0) |
                                        (d.fwd_put ? 8 : 0)));
    put8(out, static_cast<std::uint8_t>(d.st));
    put16(out, p_sharers(d.sharers));
    put8(out, p(d.owner));
    put8(out, p(d.fwd_req));
    put8(out, d.recall_acks);
    put8(out, static_cast<std::uint8_t>(d.pending.size()));
    for (const auto& q : d.pending) {
      put8(out, static_cast<std::uint8_t>(q.type));
      put8(out, p(q.requester));
      put8(out, p(q.src));
    }
    put8(out, static_cast<std::uint8_t>(d.fill_pending.size()));
    for (const auto& q : d.fill_pending) {
      put8(out, static_cast<std::uint8_t>(q.type));
      put8(out, p(q.requester));
      put8(out, p(q.src));
    }
  }
  // Messages: permute endpoints, then sort for multiset canonical order.
  std::vector<std::array<std::uint8_t, 8>> msgs;
  msgs.reserve(s.net.size());
  for (const auto& m : s.net) {
    msgs.push_back({static_cast<std::uint8_t>(m.type), p(m.src), p(m.dst),
                    static_cast<std::uint8_t>(m.dst_unit),
                    static_cast<std::uint8_t>(m.ack_unit), m.line,
                    p(m.requester), m.ack_count});
  }
  std::sort(msgs.begin(), msgs.end());
  put8(out, static_cast<std::uint8_t>(msgs.size()));
  for (const auto& m : msgs) out.append(m.begin(), m.end());
  return out;
}

void ProtocolModel::permutations(std::vector<std::vector<std::uint8_t>>& out) const {
  // Permute only tiles that are not the home of any line: homes are pinned
  // by the address-interleaving function, free tiles are interchangeable.
  std::vector<bool> is_home(cfg_.n_tiles, false);
  for (unsigned line = 0; line < cfg_.n_lines; ++line) is_home[home_of(static_cast<std::uint8_t>(line))] = true;
  std::vector<std::uint8_t> free_tiles;
  for (unsigned t = 0; t < cfg_.n_tiles; ++t) {
    if (!is_home[t]) free_tiles.push_back(static_cast<std::uint8_t>(t));
  }
  std::vector<std::uint8_t> target = free_tiles;
  out.clear();
  do {
    std::vector<std::uint8_t> perm(cfg_.n_tiles);
    std::iota(perm.begin(), perm.end(), 0);
    for (std::size_t i = 0; i < free_tiles.size(); ++i) {
      perm[free_tiles[i]] = target[i];
    }
    out.push_back(std::move(perm));
  } while (std::next_permutation(target.begin(), target.end()));
}

std::string ProtocolModel::serialize(const ModelState& s) const {
  std::vector<std::uint8_t> identity(cfg_.n_tiles);
  std::iota(identity.begin(), identity.end(), 0);
  return serialize_permuted(s, identity);
}

std::string ProtocolModel::canonical_key(const ModelState& s) const {
  std::vector<std::vector<std::uint8_t>> perms;
  permutations(perms);
  std::string best = serialize_permuted(s, perms[0]);
  for (std::size_t i = 1; i < perms.size(); ++i) {
    std::string cand = serialize_permuted(s, perms[i]);
    if (cand < best) best = std::move(cand);
  }
  return best;
}

void ProtocolModel::canonicalize(ModelState& s) const {
  std::vector<std::vector<std::uint8_t>> perms;
  permutations(perms);
  if (perms.size() == 1) return;
  std::size_t best_idx = 0;
  std::string best = serialize_permuted(s, perms[0]);
  for (std::size_t i = 1; i < perms.size(); ++i) {
    std::string cand = serialize_permuted(s, perms[i]);
    if (cand < best) {
      best = std::move(cand);
      best_idx = i;
    }
  }
  const auto& perm = perms[best_idx];
  auto p = [&](std::uint8_t t) { return t == kNoTile ? kNoTile : perm[t]; };

  ModelState ns = s;
  for (unsigned t = 0; t < cfg_.n_tiles; ++t) {
    for (unsigned line = 0; line < cfg_.n_lines; ++line) {
      L1LineM l = l1_at(s, t, line);
      if (l.mshr.has_parked) l.mshr.parked_requester = p(l.mshr.parked_requester);
      l1_at(ns, perm[t], line) = l;
    }
  }
  for (auto& d : ns.dir) {
    std::uint16_t bits = 0;
    for (unsigned t = 0; t < cfg_.n_tiles; ++t) {
      if ((d.sharers >> t) & 1u) bits |= static_cast<std::uint16_t>(1u << perm[t]);
    }
    d.sharers = bits;
    d.owner = p(d.owner);
    d.fwd_req = p(d.fwd_req);
    for (auto& q : d.pending) {
      q.requester = p(q.requester);
      q.src = p(q.src);
    }
    for (auto& q : d.fill_pending) {
      q.requester = p(q.requester);
      q.src = p(q.src);
    }
  }
  for (auto& m : ns.net) {
    m.src = p(m.src);
    m.dst = p(m.dst);
    m.requester = p(m.requester);
  }
  std::sort(ns.net.begin(), ns.net.end());
  s = std::move(ns);
}

// --- pretty printing -------------------------------------------------------

std::string ProtocolModel::describe(const Action& a) const {
  std::ostringstream os;
  switch (a.kind) {
    case ActionKind::kRead:
      os << "core T" << unsigned{a.tile} << " reads line " << unsigned{a.line};
      break;
    case ActionKind::kWrite:
      os << "core T" << unsigned{a.tile} << " writes line " << unsigned{a.line};
      break;
    case ActionKind::kEvict:
      os << "L1 T" << unsigned{a.tile} << " evicts line " << unsigned{a.line};
      break;
    case ActionKind::kRecall:
      os << "L2 home T" << unsigned{home_of(a.line)} << " recalls line "
         << unsigned{a.line};
      break;
    case ActionKind::kMemFill:
      os << "memory fill for line " << unsigned{a.line} << " arrives";
      break;
    case ActionKind::kDeliver: {
      const ModelMsg& m = a.msg;
      os << "deliver " << protocol::to_string(m.type) << " T" << unsigned{m.src}
         << "->T" << unsigned{m.dst}
         << (m.dst_unit == Unit::kDir ? "(dir)" : "(L1)") << " line "
         << unsigned{m.line};
      if (m.type == MsgType::kDataExcl || m.type == MsgType::kUpgradeAck) {
        os << " acks=" << unsigned{m.ack_count};
      }
      break;
    }
  }
  return os.str();
}

std::string ProtocolModel::summarize(const ModelState& s) const {
  std::ostringstream os;
  for (unsigned line = 0; line < cfg_.n_lines; ++line) {
    os << "line " << line << ": L1[";
    for (unsigned t = 0; t < cfg_.n_tiles; ++t) {
      const L1LineM& l = l1_at(s, t, line);
      if (t != 0) os << ' ';
      os << st_name(l.st);
      if (l.mshr.valid) os << '*';
      if (l.evict != EvictSt::kNone) os << '~';
    }
    const DirLineM& d = s.dir[line];
    os << "] dir=" << (d.present ? dir_name(d.st) : "-");
    if (d.present && d.sharers != 0) {
      os << " sharers=0x" << std::hex << d.sharers << std::dec;
    }
    if (d.present && d.owner != kNoTile) os << " owner=T" << unsigned{d.owner};
    if (!d.pending.empty()) os << " pending=" << d.pending.size();
    if (d.fill_outstanding) os << " fill";
    os << "  ";
  }
  os << "| " << s.net.size() << " msg in flight";
  return os.str();
}

}  // namespace tcmp::verify
