// Runtime coherence lint: periodic global scans over a live CmpSystem,
// checking the invariants that remain valid with messages in flight (the
// model checker proves the full set on small configs; the lint carries the
// stable-state subset to full-size simulations):
//
//   R1 SWMR            at most one stable M/E copy per line, and never a
//                      stable M/E copy alongside a stable S copy;
//   R2 DIR-OWNER       every stable M/E holder is known to its home
//                      directory (owner of an Exclusive/Busy entry, or the
//                      forward requester of a BusyExcl entry — the requester
//                      may install M before its AckRevision is processed);
//   R3 DIR-WELLFORMED  Shared entries list at least one sharer; Exclusive
//                      and Busy entries name an owner;
//   R4 DBRC-MIRROR     for every (sender tile, destination, class) pair
//                      that is idle (all sequenced messages decoded, reorder
//                      window empty), each sender entry with the
//                      destination-valid bit set matches the destination's
//                      mirror register (conservative DBRC design only).
//
// Violations are reported through the observability layer (forced instant
// trace events + verify.* counters) so they carry cycle and lifecycle
// context, and abort the run when wired via CmpSystem::set_periodic_check.
//
// Two entry points: scan() checks every line (tests, one-shot audits);
// scan_slice() checks one of kStripes address stripes per call, rotating, so
// the periodic in-simulation lint amortises a full sweep over kStripes ticks
// and stays within a few percent of baseline runtime. Every invariant is
// per-line, so partitioning by address loses no cross-line checks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "protocol/l1_cache.hpp"

namespace tcmp::cmp {
class CmpSystem;
}
namespace tcmp::obs {
class Observer;
}

namespace tcmp::verify {

struct LintViolation {
  Cycle cycle{0};
  std::string invariant;  ///< R1-SWMR / R2-DIR-OWNER / ...
  LineAddr line{};
  std::string detail;
};

class CoherenceLinter {
 public:
  /// `system` must outlive the linter; `observer` may be null (violations
  /// are still returned and counted in the system's StatRegistry).
  explicit CoherenceLinter(cmp::CmpSystem* system,
                           obs::Observer* observer = nullptr);

  /// Run one global scan over every line; returns the violations found
  /// (empty = clean).
  std::vector<LintViolation> scan(Cycle now);

  /// Run one incremental scan: checks the next of kStripes address stripes
  /// (full coverage every kStripes calls, so `tcmpsim --verify-interval N`
  /// covers every line within kStripes * N cycles while keeping the
  /// steady-state overhead a fraction of a full scan's). The DBRC mirror
  /// pass is not striped by address; it runs once per rotation.
  std::vector<LintViolation> scan_slice(Cycle now);

  /// Address stripes per scan_slice rotation.
  static constexpr unsigned kStripes = 8;

  [[nodiscard]] std::uint64_t scans() const { return scans_; }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }

 private:
  // Stripe masks/selectors are raw address bit patterns, not line addresses.
  std::vector<LintViolation> scan_impl(Cycle now, std::uint64_t stripe_mask,
                                       std::uint64_t stripe, bool with_dbrc);
  void coherence_scan(Cycle now, std::uint64_t stripe_mask, std::uint64_t stripe,
                      std::vector<LintViolation>& out);
  void dbrc_scan(Cycle now, std::vector<LintViolation>& out);
  void report(const LintViolation& v);

  cmp::CmpSystem* sys_;
  obs::Observer* obs_;
  // Interned stat handles (periodic scans are sized to stay <1% of runtime,
  // so their bookkeeping must not pay per-event string lookups either).
  CounterRef scans_counter_;
  CounterRef violations_counter_;
  std::uint64_t scans_ = 0;
  std::uint64_t violations_ = 0;
  unsigned next_stripe_ = 0;
  /// Reused across scans so the steady-state path never allocates.
  std::vector<protocol::L1Cache::StableLine> lines_buf_;
};

}  // namespace tcmp::verify
