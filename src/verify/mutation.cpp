#include "verify/mutation.hpp"

#include <cstdlib>

namespace tcmp::verify {

const std::vector<MutationInfo>& all_mutations() {
  static const std::vector<MutationInfo> table = {
      {MutationId::kL1SkipStaleInvAck, "l1-skip-stale-inv-ack",
       MutationTarget::kModel,
       "L1 drops the InvAck when an Inv arrives for a line it no longer holds"},
      {MutationId::kL1NoDropAfterFill, "l1-no-drop-after-fill",
       MutationTarget::kModel,
       "Inv overtaking a Data reply (IS_D) does not mark the fill use-once"},
      {MutationId::kL1DropRevision, "l1-drop-revision", MutationTarget::kModel,
       "owner services a FwdGetS but never sends the Revision to the home"},
      {MutationId::kDirSkipLastInv, "dir-skip-last-inv", MutationTarget::kModel,
       "GetX grant from Shared skips the Inv to the highest-numbered sharer"},
      {MutationId::kDirWrongAckCount, "dir-wrong-ack-count",
       MutationTarget::kModel,
       "exclusive grant reports one inv-ack fewer than the Invs actually sent"},
      {MutationId::kDirNoBusyOnFwd, "dir-no-busy-on-fwd", MutationTarget::kModel,
       "GetS intervention leaves the entry Exclusive instead of BusyShared"},
      {MutationId::kDirPutAckNotHeld, "dir-putack-not-held",
       MutationTarget::kModel,
       "a Put crossing an in-flight forward is acked immediately, not held"},
      {MutationId::kDirRecallLostAck, "dir-recall-lost-ack",
       MutationTarget::kModel,
       "recall of a Shared line expects one InvAck fewer than sharers exist"},
      {MutationId::kDbrcReceiverNoInstall, "dbrc-receiver-no-install",
       MutationTarget::kDbrc,
       "DBRC receiver mirror ignores install/update messages"},
      {MutationId::kDbrcFalseHit, "dbrc-false-hit", MutationTarget::kDbrc,
       "DBRC sender emits a compressed index to a destination whose mirror "
       "was never installed"},
      {MutationId::kWireSizeWrongEntry, "wire-size-wrong-entry",
       MutationTarget::kWire,
       "UpgradeAck modelled at 3 bytes on the wire instead of 11"},
  };
  return table;
}

std::optional<MutationInfo> find_mutation(const std::string& key) {
  for (const auto& m : all_mutations()) {
    if (key == m.name) return m;
  }
  // Numeric form: the MutationId value as printed by --list-mutations.
  char* end = nullptr;
  const long v = std::strtol(key.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && !key.empty()) {
    for (const auto& m : all_mutations()) {
      if (static_cast<long>(m.id) == v) return m;
    }
  }
  return std::nullopt;
}

const char* to_string(MutationId id) {
  if (id == MutationId::kNone) return "none";
  for (const auto& m : all_mutations()) {
    if (m.id == id) return m.name;
  }
  return "?";
}

}  // namespace tcmp::verify
