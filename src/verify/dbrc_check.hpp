// Bounded exhaustive check of DBRC sender/receiver mirror consistency: every
// send sequence up to a fixed depth, over a small destination and address
// alphabet, is driven through the REAL compression::DbrcSender and one real
// DbrcReceiver per destination (the conservative per-destination-valid-bit
// design — the idealized-mirror model has no receiver state to diverge).
// After each in-order decode the reconstructed address must equal the
// original; a mismatch is reported with the full offending send sequence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/mutation.hpp"

namespace tcmp::verify {

struct DbrcCheckConfig {
  unsigned entries = 2;      ///< compression-cache entries (small => evictions)
  unsigned low_bytes = 1;    ///< uncompressed low-order bytes
  unsigned n_dsts = 2;       ///< destinations exercised
  unsigned n_hi = 3;         ///< distinct high-order tags in the alphabet
  unsigned n_lo = 2;         ///< distinct low-order values in the alphabet
  unsigned depth = 6;        ///< sequence length bound
  MutationId mutation = MutationId::kNone;
};

struct DbrcCheckResult {
  bool ok = true;
  std::uint64_t sequences = 0;  ///< complete depth-`depth` sequences covered
  std::uint64_t decodes = 0;    ///< compress+decode pairs exercised
  std::vector<std::string> findings;
  /// First offending send sequence, one "dst=<d> line=<addr>" per step.
  std::vector<std::string> counterexample;
};

[[nodiscard]] DbrcCheckResult run_dbrc_check(const DbrcCheckConfig& cfg = {});

}  // namespace tcmp::verify
