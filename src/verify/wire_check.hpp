// Wire-size / message-classification conformance check: an independent
// specification table (transcribed from the paper, Sec. 4.3 / 5.1 and Fig. 4)
// is cross-checked against the live protocol::* classification functions and
// every het::map_message decision, so a regression in either side is caught
// even though both ultimately implement "the same" table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/mutation.hpp"

namespace tcmp::verify {

struct WireCheckResult {
  bool ok = true;
  std::uint64_t checks = 0;             ///< individual comparisons performed
  std::vector<std::string> findings;    ///< empty when ok
};

/// Cross-check message classification, uncompressed sizes, vnet assignment,
/// compression classes, and the wire-mapping policy for every message type x
/// link style x compression outcome x representative scheme.
[[nodiscard]] WireCheckResult run_wire_check(MutationId mutation = MutationId::kNone);

}  // namespace tcmp::verify
