// The paper's message-to-wire mapping (Sec. 4.3):
//
//   * VL-Wires carry short critical messages that fit in one VL flit:
//     data-free coherence replies (3 B) and *compressed* requests /
//     coherence commands (3 B control + 1-2 B compressed address).
//   * B-Wires carry everything else: data messages (67 B), non-critical
//     messages (replacements, revisions, acks on the replacement path) and
//     short critical messages whose address failed to compress (11 B).
//
// In the baseline (homogeneous) configuration every message maps to the
// single 75-byte B channel at its uncompressed size.
#pragma once

#include "common/types.hpp"
#include "compression/scheme.hpp"
#include "protocol/coherence_msg.hpp"
#include "wire/link_design.hpp"

namespace tcmp::het {

struct MappingDecision {
  unsigned channel = 0;   ///< index into the link's channel set
  Bytes wire_bytes{0};    ///< modelled size on that channel
  bool compressed = false;
};

/// Pure mapping rule given the compression outcome and the link style:
///  * kBaseline  — everything on the single B channel, uncompressed sizes;
///  * kVlHet     — the paper's policy (compressed/short critical -> VL);
///  * kCheng3Way — [6]'s policy: short critical -> L (uncompressed, one
///    flit), non-critical -> PW, data -> B.
[[nodiscard]] MappingDecision map_message(protocol::MsgType type,
                                          bool address_compressed,
                                          const compression::SchemeConfig& scheme,
                                          wire::LinkStyle style);

/// True when this message type goes through the address compressor at all
/// (address-carrying, critical, and the style exploits compression).
[[nodiscard]] bool wants_compression(protocol::MsgType type,
                                     const compression::SchemeConfig& scheme,
                                     wire::LinkStyle style);

}  // namespace tcmp::het
