#include "het/wire_policy.hpp"

#include "noc/channel.hpp"

namespace tcmp::het {

using protocol::MsgType;

bool wants_compression(MsgType type, const compression::SchemeConfig& scheme,
                       wire::LinkStyle style) {
  // Compression only pays off when a VL channel exists to exploit the slack,
  // and only critical messages are mapped there (non-critical
  // address-carriers would gain nothing). [6]'s L-Wires are wide enough for
  // uncompressed messages, so that style never compresses.
  return style == wire::LinkStyle::kVlHet && scheme.enabled() &&
         protocol::carries_address(type) && protocol::is_critical(type);
}

MappingDecision map_message(MsgType type, bool address_compressed,
                            const compression::SchemeConfig& scheme,
                            wire::LinkStyle style) {
  MappingDecision d;
  d.channel = noc::kBChannel;
  d.wire_bytes = protocol::uncompressed_bytes(type);
  if (style == wire::LinkStyle::kBaseline) return d;

  if (style == wire::LinkStyle::kCheng3Way) {
    // [6]: latency/bandwidth-aware static mapping, no compression.
    // Non-critical traffic (including 67-byte writebacks/revisions) is
    // latency-insensitive and rides the power-optimized subnet.
    if (!protocol::is_critical(type)) {
      d.channel = noc::kPwChannel;
      return d;
    }
    if (protocol::carries_data(type)) return d;  // critical long -> B subnet
    d.channel = noc::kLChannel;  // short critical, one 11-byte flit
    return d;
  }

  if (protocol::carries_data(type)) return d;   // long -> B-Wires
  if (!protocol::is_critical(type)) return d;   // non-critical -> B-Wires

  if (!protocol::carries_address(type)) {
    // Already-short critical coherence replies (3 B) ride the VL bundle
    // (partial replies occupy multiple VL flits but stay critical).
    d.channel = noc::kVlChannel;
    return d;
  }
  if (address_compressed) {
    d.channel = noc::kVlChannel;
    d.compressed = true;
    d.wire_bytes = Bytes{protocol::kControlBytes + scheme.compressed_addr_bytes()};
    return d;
  }
  // Critical but uncompressed: the full 11-byte message takes the B-Wires.
  return d;
}

}  // namespace tcmp::het
