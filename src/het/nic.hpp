// Per-tile network interface controller: the glue between the coherence
// controllers and the (possibly heterogeneous) network.
//
// Send side: runs the address compressor for eligible messages, applies the
// wire-mapping policy, stamps a per-(destination, message-class) sequence
// number and injects into the chosen channel plane.
//
// Receive side: because the VL and B planes can reorder messages between the
// same pair of tiles, compressor state updates must be applied in send
// order. The NIC keeps, per (source, class), the next expected sequence
// number and a small reorder window; decompression (and its state update)
// happens strictly in sequence, after which messages are released to the
// protocol immediately (the protocol itself tolerates reordering).
//
// The simulator carries the true address in every message; the NIC asserts
// that the decompressed address matches it, so any sender/receiver state
// divergence aborts the run instead of silently skewing results.
//
// Thread compatibility: the NIC is the sanctioned message seam between a
// tile and the rest of the machine (tile-escape lint,
// docs/static-analysis.md): under Graphite-style partitioning (ROADMAP
// item 1) send()/receive() become the cross-partition hand-off points, so
// everything behind them stays single-owner.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "common/queues.hpp"
#include "common/stats.hpp"
#include "compression/compressor.hpp"
#include "het/wire_policy.hpp"
#include "noc/network.hpp"
#include "sim/scheduled.hpp"

namespace tcmp::obs {
class Observer;
}

namespace tcmp::het {

class TileNic final : public sim::Scheduled {
 public:
  using DeliverFn = std::function<void(const protocol::CoherenceMsg&)>;

  TileNic(NodeId id, const compression::SchemeConfig& scheme,
          wire::LinkStyle style, unsigned n_nodes, noc::Network* net,
          StatRegistry* stats);

  /// Compress/map/inject an outgoing message (dst != id).
  void send(protocol::CoherenceMsg msg, Cycle now);

  /// Handle a message ejected at this tile; forwards to `deliver` in
  /// decompression-safe order.
  void receive(protocol::CoherenceMsg msg, Cycle now, const DeliverFn& deliver);

  /// Attach a lifecycle observer (send/reorder trace events); null detaches.
  void set_observer(obs::Observer* obs) { obs_ = obs; }

  /// Table accesses performed by this tile's compression hardware (for the
  /// energy report).
  [[nodiscard]] std::uint64_t compression_accesses() const;

  [[nodiscard]] const compression::SchemeConfig& scheme() const { return scheme_; }

  // --- invariant-scan hooks (verify lint) ---
  [[nodiscard]] const compression::SenderCompressor& sender(
      compression::MsgClass c) const {
    return *classes_[static_cast<unsigned>(c)].sender;
  }
  [[nodiscard]] const compression::ReceiverDecompressor& receiver(
      compression::MsgClass c) const {
    return *classes_[static_cast<unsigned>(c)].receiver;
  }
  [[nodiscard]] std::uint32_t send_seq(compression::MsgClass c, NodeId dst) const {
    return classes_[static_cast<unsigned>(c)].next_send_seq[dst];
  }
  [[nodiscard]] std::uint32_t recv_seq(compression::MsgClass c, NodeId src) const {
    return classes_[static_cast<unsigned>(c)].next_recv_seq[src];
  }
  [[nodiscard]] bool reorder_empty(compression::MsgClass c, NodeId src) const {
    return classes_[static_cast<unsigned>(c)].reorder[src].empty();
  }

  /// Scheduled contract: the NIC acts only when the network hands it a
  /// message, so it is never a wake source; it holds in-flight work exactly
  /// while some reorder window has an out-of-order arrival parked.
  [[nodiscard]] Cycle next_event() const override { return kNeverCycle; }
  [[nodiscard]] bool quiescent() const override {
    for (const ClassState& cs : classes_) {
      for (const auto& window : cs.reorder) {
        if (!window.empty()) return false;
      }
    }
    return true;
  }

  /// Checkpoint serialization (common/snapshot.hpp): per-class compressor
  /// state (via the virtual save/load seam), sequence counters and reorder
  /// windows, so a restored NIC decodes exactly where it left off.
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.section("nic");
    for (ClassState& cs : classes_) {
      if constexpr (Ar::kIsWriter) {
        cs.sender->save(ar);
        cs.receiver->save(ar);
      } else {
        cs.sender->load(ar);
        cs.receiver->load(ar);
      }
      ar.field(cs.next_send_seq);
      ar.field(cs.next_recv_seq);
      ar.field(cs.reorder);
    }
  }

 private:
  struct ClassState {
    std::unique_ptr<compression::SenderCompressor> sender;
    std::unique_ptr<compression::ReceiverDecompressor> receiver;
    std::vector<std::uint32_t> next_send_seq;  ///< per destination
    std::vector<std::uint32_t> next_recv_seq;  ///< per source
    /// Per source: out-of-order arrivals waiting for their turn, parked in a
    /// flat seq-indexed window (the VL/B skew spans a handful of messages,
    /// so the window stays at its minimum size in practice).
    std::vector<SeqWindow<protocol::CoherenceMsg>> reorder;
  };

  void decode_and_release(ClassState& cs, NodeId src,
                          const protocol::CoherenceMsg& msg,
                          const DeliverFn& deliver);

  // tcmplint: snapshot-exempt (construction parameter, never mutates)
  NodeId id_;
  // tcmplint: snapshot-exempt (construction parameter, never mutates)
  compression::SchemeConfig scheme_;
  // tcmplint: snapshot-exempt (construction parameter, never mutates)
  wire::LinkStyle style_;
  noc::Network* net_;
  StatRegistry* stats_;
  obs::Observer* obs_ = nullptr;
  // Interned stat handles (hot path: every send/receive).
  CounterRef compressed_;
  CounterRef uncompressed_;
  CounterRef b_messages_;
  CounterRef vl_messages_;
  CounterRef reordered_;
  std::array<ClassState, compression::kNumMsgClasses> classes_;
};

}  // namespace tcmp::het
