#include "het/nic.hpp"

#include "common/check.hpp"
#include "obs/observer.hpp"

namespace tcmp::het {

using compression::MsgClass;
using protocol::CoherenceMsg;

TileNic::TileNic(NodeId id, const compression::SchemeConfig& scheme,
                 wire::LinkStyle style, unsigned n_nodes, noc::Network* net,
                 StatRegistry* stats)
    : id_(id), scheme_(scheme), style_(style), net_(net), stats_(stats) {
  TCMP_CHECK(net_ != nullptr && stats_ != nullptr);
  TCMP_CHECK((style == wire::LinkStyle::kBaseline) == (net_->num_channels() == 1));
  compressed_ = stats_->counter_ref("compression.compressed");
  uncompressed_ = stats_->counter_ref("compression.uncompressed");
  b_messages_ = stats_->counter_ref("het.b_messages");
  vl_messages_ = stats_->counter_ref("het.vl_messages");
  reordered_ = stats_->counter_ref("het.reordered_messages");
  for (auto& cs : classes_) {
    auto pair = compression::make_compressor(scheme_, n_nodes);
    cs.sender = std::move(pair.sender);
    cs.receiver = std::move(pair.receiver);
    cs.next_send_seq.assign(n_nodes, 0);
    cs.next_recv_seq.assign(n_nodes, 0);
    cs.reorder.resize(n_nodes);
  }
}

void TileNic::send(CoherenceMsg msg, Cycle now) {
  TCMP_DCHECK(msg.src == id_ && msg.dst != id_);
  bool compressed = false;
  if (wants_compression(msg.type, scheme_, style_)) {
    ClassState& cs = classes_[static_cast<unsigned>(protocol::compression_class(msg.type))];
    msg.enc = cs.sender->compress(msg.dst, msg.line);
    msg.seq = cs.next_send_seq[msg.dst]++;
    compressed = msg.enc.compressed;
    ++(compressed ? compressed_ : uncompressed_);
  }
  const MappingDecision d = map_message(msg.type, compressed, scheme_, style_);
  // Telemetry mirror of the mapping decision: lets the delivery side (slack
  // telemetry, flight recorder) attribute the message to its wire class
  // without re-deriving the mapping.
  msg.wire_class = static_cast<std::uint8_t>(d.channel);
  ++(d.channel == noc::kBChannel ? b_messages_ : vl_messages_);
  if (obs_ != nullptr) [[unlikely]] {
    obs_->nic_send(msg, compressed, d.channel, d.wire_bytes);
  }
  net_->inject(msg, d.channel, d.wire_bytes, now);
}

void TileNic::receive(CoherenceMsg msg, Cycle now, const DeliverFn& deliver) {
  (void)now;
  if (!wants_compression(msg.type, scheme_, style_)) {
    deliver(msg);
    return;
  }
  ClassState& cs = classes_[static_cast<unsigned>(protocol::compression_class(msg.type))];
  const NodeId src = msg.src;
  if (msg.seq != cs.next_recv_seq[src]) {
    // Out of order between the VL and B planes: hold until its turn so
    // compressor state updates apply in send order.
    TCMP_CHECK_MSG(msg.seq > cs.next_recv_seq[src], "duplicate sequence number");
    cs.reorder[src].insert(cs.next_recv_seq[src], msg.seq, msg);
    ++reordered_;
    if (obs_ != nullptr) [[unlikely]] {
      obs_->nic_reorder_hold(msg);
    }
    return;
  }
  decode_and_release(cs, src, msg, deliver);
  // Drain any consecutive buffered successors.
  auto& window = cs.reorder[src];
  while (auto next = window.take(cs.next_recv_seq[src])) {
    decode_and_release(cs, src, *next, deliver);
  }
}

void TileNic::decode_and_release(ClassState& cs, NodeId src, const CoherenceMsg& msg,
                                 const DeliverFn& deliver) {
  const LineAddr decoded = cs.receiver->decode(src, msg.enc, msg.line);
  TCMP_CHECK_MSG(decoded == msg.line,
                 "compressor state diverged between sender and receiver");
  cs.next_recv_seq[src] = msg.seq + 1;
  deliver(msg);
}

std::uint64_t TileNic::compression_accesses() const {
  std::uint64_t total = 0;
  for (const auto& cs : classes_) {
    total += cs.sender->accesses().total() + cs.receiver->accesses().total();
  }
  return total;
}

}  // namespace tcmp::het
