// Event-scheduled simulation kernel: a wake calendar over Scheduled
// components that lets a cycle-driven driver skip globally dead cycles.
//
// The kernel does not call tick() itself — the driver (CmpSystem::run) keeps
// executing its ordinary full step at every *live* cycle, which is what makes
// the refactor bit-identical to the seed loop: a live cycle runs exactly the
// code the per-cycle loop ran, in the same order, and a skipped cycle is one
// the per-cycle loop would have spent ticking components that provably do
// nothing. The kernel's only job is answering "what is the next live cycle?"
// from two sources:
//
//   * pull — registered components, scanned in registration order (put the
//     components most likely to be hot first; the scan early-exits as soon
//     as anything wants the very next cycle);
//   * push — explicit one-shot wake(Cycle) requests kept in a min-heap
//     calendar (used for timed hand-offs that no component surfaces, e.g.
//     the tile-internal loopback latency), with adjacent duplicates
//     coalesced at insert and stale entries drained lazily.
//
// Thread compatibility: single-owner. add_component() is the one sanctioned
// path that hands component pointers out of their owning tile (the
// tile-escape lint allowlists it, docs/static-analysis.md); the kernel only
// ever *reads* next_event()/quiescent() through them. A partitioned mesh
// (ROADMAP item 1) runs one kernel per partition over that partition's
// components.
#pragma once

#include <cstddef>
#include <queue>
#include <vector>

#include "common/types.hpp"
#include "sim/scheduled.hpp"

namespace tcmp::sim {

class SimKernel {
 public:
  /// Register a component. Registration order is the scan order of
  /// next_wake(); hot components (cores) should come first. `name` labels
  /// the component in the self-profiler's pull-scan attribution (a static
  /// string; same-named components aggregate into one row).
  void add_component(Scheduled* c, const char* name = "component") {
    components_.push_back(c);
    scan_stats_.push_back(ScanStat{name, 0, 0});
  }

  /// One-shot wake request: guarantees cycle `at` is treated as live.
  /// Requests at or before the clock handed to the last next_wake() call are
  /// already satisfied and dropped lazily; duplicates coalesce.
  void wake(Cycle at) {
    if (!calendar_.empty() && calendar_.top() == at) return;  // coalesce
    calendar_.push(at);
  }

  /// Earliest live cycle strictly after `now`: the minimum over every
  /// component's next_event() (values <= now clamp to now + 1) and the wake
  /// calendar. kNeverCycle means the machine is globally dead — no component
  /// will ever act again without external input.
  [[nodiscard]] Cycle next_wake(Cycle now) {
    while (!calendar_.empty() && calendar_.top() <= now) calendar_.pop();
    const Cycle next_cycle = now + 1;
    Cycle nxt = calendar_.empty() ? kNeverCycle : calendar_.top();
    if (nxt <= next_cycle) return next_cycle;
    for (const Scheduled* c : components_) {
      const Cycle e = c->next_event();
      if (e <= next_cycle) return next_cycle;  // hot: no point scanning on
      if (e < nxt) nxt = e;
    }
    return nxt;
  }

  /// Per-component pull-scan attribution (filled by next_wake_counted):
  /// how often each registered component was polled, and how often its
  /// next_event() ended the scan by demanding the very next cycle.
  struct ScanStat {
    const char* name = nullptr;
    std::uint64_t polls = 0;
    std::uint64_t hot_exits = 0;
  };

  /// next_wake() with per-component scan accounting — bit-identical result,
  /// used by the self-profiled run loop (sim/profiler.hpp) so "who keeps
  /// cycles live" is attributable per registered Scheduled component.
  [[nodiscard]] Cycle next_wake_counted(Cycle now) {
    while (!calendar_.empty() && calendar_.top() <= now) calendar_.pop();
    const Cycle next_cycle = now + 1;
    Cycle nxt = calendar_.empty() ? kNeverCycle : calendar_.top();
    if (nxt <= next_cycle) return next_cycle;
    for (std::size_t i = 0; i < components_.size(); ++i) {
      const Cycle e = components_[i]->next_event();
      ++scan_stats_[i].polls;
      if (e <= next_cycle) {
        ++scan_stats_[i].hot_exits;
        return next_cycle;
      }
      if (e < nxt) nxt = e;
    }
    return nxt;
  }

  [[nodiscard]] const std::vector<ScanStat>& scan_stats() const {
    return scan_stats_;
  }

  /// True when every registered component reports quiescent and no wake
  /// request is outstanding (the machine has fully drained).
  [[nodiscard]] bool quiescent() const {
    for (const Scheduled* c : components_) {
      if (!c->quiescent()) return false;
    }
    return calendar_.empty();
  }

  [[nodiscard]] std::size_t num_components() const { return components_.size(); }
  /// Pending one-shot wake requests (coalescing/drain tests).
  [[nodiscard]] std::size_t calendar_size() const { return calendar_.size(); }

  /// Checkpoint serialization (common/snapshot.hpp): only the wake calendar
  /// is state — components re-register at construction, and the scan stats
  /// are host-side attribution, not simulation state. The heap is drained
  /// from a copy in pop order (a total order on Cycle values).
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    if constexpr (Ar::kIsWriter) {
      ar.raw_u64(calendar_.size());
      auto copy = calendar_;
      while (!copy.empty()) {
        ar.field(copy.top());
        copy.pop();
      }
    } else {
      calendar_ = {};
      for (std::uint64_t n = ar.raw_u64(); n > 0; --n) {
        Cycle c{};
        ar.field(c);
        calendar_.push(c);
      }
    }
  }

 private:
  // tcmplint: snapshot-exempt (component pointers re-registered at ctor)
  std::vector<Scheduled*> components_;
  // tcmplint: snapshot-exempt (host-side self-profiling, not machine state)
  std::vector<ScanStat> scan_stats_;  ///< parallel to components_
  std::priority_queue<Cycle, std::vector<Cycle>, std::greater<>> calendar_;
};

/// Adapter exposing a plain next-event function as a Scheduled component —
/// for recurring driver events (telemetry window boundaries, periodic
/// verification sweeps) that live outside any one component.
template <typename NextFn>
class ScheduledEvent final : public Scheduled {
 public:
  explicit ScheduledEvent(NextFn next) : next_(std::move(next)) {}
  [[nodiscard]] Cycle next_event() const override { return next_(); }
  [[nodiscard]] bool quiescent() const override { return true; }

 private:
  NextFn next_;
};

}  // namespace tcmp::sim
