// The component contract of the event-scheduled simulation kernel.
//
// Every ticked component tells the kernel when it next has work via
// next_event(); the kernel (sim/kernel.hpp) takes the minimum over all
// components plus any explicit wake(Cycle) requests and lets the driver jump
// the clock across globally dead cycles. The contract is deliberately
// *conservative*: a component may report an earlier cycle than it strictly
// needs (the tick at that cycle is then a no-op, exactly as in a plain
// per-cycle loop), but it must NEVER report a later one — that would skip a
// state change and break the kernel's bit-identity guarantee against the
// cycle-driven loop (docs/kernel.md).
#pragma once

#include "common/types.hpp"

namespace tcmp::sim {

/// next_event() return value meaning "I may act every cycle" (a runnable
/// core, a router with buffered flits). Any value at or before the kernel's
/// current cycle is clamped to now + 1.
inline constexpr Cycle kEveryCycle{0};

class Scheduled {
 public:
  virtual ~Scheduled() = default;

  /// Earliest cycle at which this component has (or may have) work to do,
  /// given its current state:
  ///   * kEveryCycle (or anything <= the kernel's clock) — act every cycle;
  ///   * a future cycle — quiescent until then (a delay-queue head deadline,
  ///     a telemetry window boundary);
  ///   * kNeverCycle — fully event-driven: nothing happens until an external
  ///     deliver()/wake() arrives, which can only occur on a cycle some
  ///     *other* component already marked live.
  [[nodiscard]] virtual Cycle next_event() const = 0;

  /// True when the component holds no in-flight work (drain detection; the
  /// system is finished when every component is quiescent and every core is
  /// done). Unlike next_event() == kNeverCycle this must be exact: a blocked
  /// core reports next_event() kNeverCycle yet is only quiescent once done.
  [[nodiscard]] virtual bool quiescent() const = 0;
};

}  // namespace tcmp::sim
