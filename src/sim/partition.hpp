// Partitioned-driver building blocks (docs/partitioning.md): the static
// tile-to-partition map and the cycle-lockstep spin barrier.
//
// A PartitionPlan slices the mesh into K contiguous row blocks, so each
// partition owns a rectangular sub-mesh and every cross-partition NoC link
// is a vertical mesh link (north/south between adjacent row blocks). That
// gives the synchronization horizon its floor: the minimum cross-partition
// link latency is the minimum vertical-link latency, >= 1 cycle, so a flit
// or credit produced in cycle t can only be consumed in cycle t+1 or later —
// one barrier per simulated cycle is enough for determinism (the argument is
// spelled out in docs/partitioning.md).
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace tcmp::sim {

/// Static contiguous row-block partition of a W x H mesh into K blocks.
/// Tiles are row-major (node = y * W + x), so each partition owns the
/// contiguous node range [first(p), first(p+1)). K is clamped to H: a row is
/// the finest grain that keeps every cross-partition link vertical.
class PartitionPlan {
 public:
  PartitionPlan() : PartitionPlan(1, 1, 1) {}

  PartitionPlan(unsigned mesh_width, unsigned mesh_height, unsigned k)
      : width_(mesh_width) {
    TCMP_CHECK(mesh_width >= 1 && mesh_height >= 1 && k >= 1);
    if (k > mesh_height) k = mesh_height;
    // Spread rows as evenly as possible: the first (H % K) partitions get
    // one extra row.
    first_row_.reserve(k + 1);
    unsigned row = 0;
    for (unsigned p = 0; p < k; ++p) {
      first_row_.push_back(row);
      row += mesh_height / k + (p < mesh_height % k ? 1 : 0);
    }
    first_row_.push_back(mesh_height);
    TCMP_CHECK(row == mesh_height);
  }

  [[nodiscard]] unsigned num_partitions() const {
    return static_cast<unsigned>(first_row_.size()) - 1;
  }
  /// First node id owned by partition p (p == K gives one-past-the-end).
  [[nodiscard]] unsigned first(unsigned p) const { return first_row_[p] * width_; }
  [[nodiscard]] unsigned count(unsigned p) const { return first(p + 1) - first(p); }
  /// Owning partition of a node id: a linear scan over K+1 boundaries —
  /// callers on hot paths cache per-node results (Network keeps a per-node
  /// table).
  [[nodiscard]] unsigned part_of(unsigned node) const {
    unsigned p = 0;
    while (first(p + 1) <= node) ++p;
    return p;
  }

 private:
  unsigned width_;
  std::vector<unsigned> first_row_;  ///< K+1 row boundaries, last == H
};

/// Sense-reversing spin barrier for the cycle-lockstep driver: K participants
/// (K - 1 workers plus the coordinator), two waits per live simulated cycle.
/// Spinning (not std::condition_variable) is deliberate — partitions leave
/// the barrier within tens of nanoseconds of each other on a saturated mesh,
/// and a futex round trip per cycle would dominate the cycle itself. After a
/// bounded spin the waiter yields: on an oversubscribed host (more
/// participants than free cores) unbounded spinning turns each barrier into
/// a full scheduler quantum, livelocking the lockstep.
class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned participants) : total_(participants) {}

  void arrive_and_wait() {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == total_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);  // releases the rest
    } else {
      unsigned spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        if (++spins >= kSpinsBeforeYield) {
          spins = 0;
          std::this_thread::yield();
        }
      }
    }
  }

 private:
  static constexpr unsigned kSpinsBeforeYield = 1u << 12;

  const unsigned total_;
  std::atomic<unsigned> arrived_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace tcmp::sim
