// Kernel self-profiling: opt-in scoped host-time attribution for the
// event-scheduled run loop ("where did the wall-clock go?").
//
// The profiler is lap-based rather than scope-based: the driver calls lap(id)
// at the end of each section of its loop body, and the interval since the
// previous lap is attributed to that section. Consecutive laps share one
// clock read per boundary (half the cost of begin/end pairs) and cover the
// loop body contiguously — every nanosecond between start_run() and
// stop_run() lands in exactly one scope, so attribution is ~100% minus clock
// jitter (the acceptance bar is >= 95%).
//
// When no profiler is attached the driver compiles the unprofiled loop with
// zero instrumentation (CmpSystem templates its run loop on a compile-time
// flag), so the disabled overhead is exactly zero instructions — the
// perf-smoke micro_kernel bounds hold by construction.
//
// Scopes are registered once (register_scope) and addressed by dense index
// thereafter; no strings on the hot path. Host time is wall time
// (steady_clock), deliberately outside the simulated-time type system.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tcmp::sim {

class SelfProfiler {
 public:
  using Clock = std::chrono::steady_clock;

  /// Register a named attribution scope; returns its dense id. Call before
  /// start_run(); names need not be unique (rows are reported per id).
  unsigned register_scope(std::string name);

  /// Begin the profiled region: starts the total timer and the lap cursor.
  void start_run() {
    run_begin_ = Clock::now();
    last_mark_ = run_begin_;
  }

  /// End the profiled region. Idempotent per start_run.
  void stop_run() { run_end_ = Clock::now(); }

  /// Attribute the interval since the previous lap (or start_run) to
  /// `scope`, and restart the cursor. Hot path: one clock read, two adds.
  void lap(unsigned scope) {
    const Clock::time_point t = Clock::now();
    Scope& s = scopes_[scope];
    s.spent += t - last_mark_;
    ++s.laps;
    last_mark_ = t;
  }

  /// Total wall time between start_run and stop_run, in nanoseconds.
  [[nodiscard]] std::uint64_t total_nanos() const;
  /// Sum of every scope's attributed time, in nanoseconds.
  [[nodiscard]] std::uint64_t attributed_nanos() const;
  /// attributed / total (0 when never run).
  [[nodiscard]] double attribution_fraction() const;

  struct Row {
    std::string name;
    std::uint64_t nanos = 0;
    std::uint64_t laps = 0;
    double share = 0.0;  ///< fraction of total wall time
  };
  /// Per-scope rows, sorted by attributed time (descending), plus the
  /// implicit "unattributed" remainder row when it is nonzero.
  [[nodiscard]] std::vector<Row> rows() const;

  /// Human-readable "where the wall-clock went" table.
  void write_table(std::ostream& out) const;

 private:
  struct Scope {
    std::string name;
    Clock::duration spent{};
    std::uint64_t laps = 0;
  };

  std::vector<Scope> scopes_;
  Clock::time_point run_begin_{};
  Clock::time_point run_end_{};
  Clock::time_point last_mark_{};
};

}  // namespace tcmp::sim
