#include "sim/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace tcmp::sim {

namespace {

std::uint64_t to_nanos(SelfProfiler::Clock::duration d) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

}  // namespace

unsigned SelfProfiler::register_scope(std::string name) {
  scopes_.push_back(Scope{std::move(name), {}, 0});
  return static_cast<unsigned>(scopes_.size() - 1);
}

std::uint64_t SelfProfiler::total_nanos() const {
  if (run_end_ <= run_begin_) return 0;
  return to_nanos(run_end_ - run_begin_);
}

std::uint64_t SelfProfiler::attributed_nanos() const {
  Clock::duration sum{};
  for (const Scope& s : scopes_) sum += s.spent;
  return to_nanos(sum);
}

double SelfProfiler::attribution_fraction() const {
  const std::uint64_t total = total_nanos();
  if (total == 0) return 0.0;
  return static_cast<double>(attributed_nanos()) / static_cast<double>(total);
}

std::vector<SelfProfiler::Row> SelfProfiler::rows() const {
  const std::uint64_t total = total_nanos();
  std::vector<Row> out;
  for (const Scope& s : scopes_) {
    Row r;
    r.name = s.name;
    r.nanos = to_nanos(s.spent);
    r.laps = s.laps;
    r.share = total ? static_cast<double>(r.nanos) / static_cast<double>(total)
                    : 0.0;
    out.push_back(std::move(r));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Row& a, const Row& b) { return a.nanos > b.nanos; });
  const std::uint64_t attributed = attributed_nanos();
  if (total > attributed) {
    Row r;
    r.name = "(unattributed)";
    r.nanos = total - attributed;
    r.laps = 0;
    r.share = static_cast<double>(r.nanos) / static_cast<double>(total);
    out.push_back(std::move(r));
  }
  return out;
}

void SelfProfiler::write_table(std::ostream& out) const {
  const std::uint64_t total = total_nanos();
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "  self-profile: wall=%.3f ms attributed=%.1f%%\n",
                static_cast<double>(total) / 1e6,
                100.0 * attribution_fraction());
  out << buf;
  std::snprintf(buf, sizeof buf, "  %-22s %12s %8s %12s\n", "scope",
                "wall [ms]", "share", "laps");
  out << buf;
  for (const Row& r : rows()) {
    std::snprintf(buf, sizeof buf, "  %-22s %12.3f %7.1f%% %12llu\n",
                  r.name.c_str(), static_cast<double>(r.nanos) / 1e6,
                  100.0 * r.share, static_cast<unsigned long long>(r.laps));
    out << buf;
  }
}

}  // namespace tcmp::sim
