// Whole-system configuration (Table 4) and the named configurations the
// paper evaluates: the homogeneous 75-byte B-Wire baseline, and the
// heterogeneous VL+B link paired with an address compression scheme.
#pragma once

#include <string>

#include "common/units.hpp"
#include "compression/scheme.hpp"
#include "power/chip_power.hpp"
#include "power/orion_mini.hpp"
#include "protocol/directory.hpp"
#include "protocol/l1_cache.hpp"
#include "noc/network.hpp"
#include "wire/link_design.hpp"

namespace tcmp::cmp {

struct CmpConfig {
  unsigned n_tiles = 16;
  unsigned mesh_width = 4;
  unsigned mesh_height = 4;

  /// Worker threads for the partitioned driver (docs/partitioning.md).
  /// 1 = the seed's single-threaded loop, byte-identical output; K > 1
  /// splits the mesh into K row-blocks, each on its own thread.
  unsigned threads = 1;

  protocol::L1Cache::Config l1{128, 4};  ///< 32 KB, 4-way
  /// 256 KB/core, 6+2 cycles, 400-cycle memory.
  protocol::Directory::Config l2{1024, 4, Cycle{8}, Cycle{400}};

  compression::SchemeConfig scheme = compression::SchemeConfig::none();
  wire::LinkPartition link = wire::baseline_link();

  noc::Topology topology = noc::Topology::kMesh2D;
  unsigned vcs_per_vnet = 1;
  unsigned buffer_flits = 4;
  /// Single-cycle routers (lookahead routing + speculative allocation), the
  /// aggressive design point of the paper's era; false = 3-stage pipeline
  /// (see bench/ablation_router_pipeline).
  bool single_cycle_router = true;
  /// Enable the Reply Partitioning extension [9] on top of the current link
  /// configuration (bench/ablation_reply_partitioning).
  bool reply_partitioning = false;

  units::Hertz freq = units::hertz(4e9);
  double link_length_mm = 5.0;  // tcmplint: allow-raw-unit (paper config units)
  Cycle local_latency{1};           ///< tile-internal L1 <-> L2 hop
  Cycle warmup_memory_latency{40};  ///< memory latency during cache warmup
  double switching_activity = 0.5;   ///< alpha for link dynamic energy

  power::RouterEnergyModel router_energy{};
  power::ChipPowerModel chip_power{};

  [[nodiscard]] bool heterogeneous() const { return link.heterogeneous(); }
  [[nodiscard]] std::string name() const;

  /// Paper baseline: single 75-byte B-Wire link, no compression.
  static CmpConfig baseline();
  /// Paper proposal: VL bundle sized by the scheme (Sec. 4.3) + 34 B B-Wires.
  static CmpConfig heterogeneous(const compression::SchemeConfig& scheme);
  /// Cheng et al. [6]'s three-subnet interconnect (L + B + PW), the related
  /// work the paper compares against; no address compression.
  static CmpConfig cheng3way();

  /// Canonical mesh shape for a tile count: 16 -> 4x4, 32 -> 8x4 (the
  /// paper-era sizes), 64 -> 8x8, 256 -> 16x16. Power-of-two counts above 16
  /// get the squarest factorization with width >= height.
  CmpConfig& with_tiles(unsigned tiles) {
    n_tiles = tiles;
    mesh_height = 4;
    while (mesh_height * mesh_height * 4 <= tiles) mesh_height *= 2;
    mesh_width = (tiles + mesh_height - 1) / mesh_height;
    if (tiles <= 16) {
      mesh_width = 4;
      mesh_height = 4;
    }
    return *this;
  }
};

}  // namespace tcmp::cmp
