#include "cmp/metrics_export.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "cmp/sampling.hpp"
#include "common/json.hpp"
#include "sim/profiler.hpp"

namespace tcmp::cmp {

namespace {

// Shortest round-trippable-enough representation; JSON has no NaN/Inf, so
// non-finite values (e.g. ED2P of a zero-cycle run) degrade to 0.
std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string quoted(const std::string& s) { return '"' + json::escape(s) + '"'; }

void write_quantiles(std::ostream& out, const Histogram& h) {
  const ScalarStat& s = h.scalar();
  out << "{\"count\":" << s.count() << ",\"mean\":" << num(s.mean())
      << ",\"p50\":" << num(h.quantile(0.50))
      << ",\"p95\":" << num(h.quantile(0.95))
      << ",\"p99\":" << num(h.quantile(0.99)) << "}";
}

void write_run(std::ostream& out, const RunResult& r) {
  out << "\"run\":{"
      << "\"workload\":" << quoted(r.workload)
      << ",\"configuration\":" << quoted(r.configuration)
      << ",\"cycles\":" << r.cycles.value()
      << ",\"seconds\":" << num(r.seconds.value())
      << ",\"instructions\":" << r.instructions
      << ",\"remote_messages\":" << r.remote_messages
      << ",\"local_messages\":" << r.local_messages
      << ",\"coverage\":" << num(r.compression_coverage)
      << ",\"critical_latency\":" << num(r.avg_critical_latency)
      << ",\"link_energy_j\":" << num(r.link_energy().value())
      << ",\"interconnect_energy_j\":" << num(r.interconnect_energy().value())
      << ",\"total_energy_j\":" << num(r.total_energy().value())
      << ",\"link_ed2p\":" << num(r.link_ed2p())
      << ",\"interconnect_ed2p\":" << num(r.interconnect_ed2p())
      << ",\"full_ed2p\":" << num(r.full_cmp_ed2p()) << "}";
}

void write_self_profile(std::ostream& out, const sim::SelfProfiler& prof,
                        const CmpSystem& system) {
  out << "\"self_profile\":{\"total_nanos\":" << prof.total_nanos()
      << ",\"attribution\":" << num(prof.attribution_fraction())
      << ",\"scopes\":[";
  bool first = true;
  for (const auto& row : prof.rows()) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":" << quoted(row.name) << ",\"nanos\":" << row.nanos
        << ",\"laps\":" << row.laps << ",\"share\":" << num(row.share) << "}";
  }
  out << "],\"kernel_scan\":[";
  // Aggregate the kernel's per-registration scan stats by component class.
  std::vector<std::pair<std::string, std::pair<std::uint64_t, std::uint64_t>>>
      agg;
  for (const auto& s : system.kernel().scan_stats()) {
    bool merged = false;
    for (auto& a : agg) {
      if (a.first == s.name) {
        a.second.first += s.polls;
        a.second.second += s.hot_exits;
        merged = true;
        break;
      }
    }
    if (!merged) agg.emplace_back(s.name, std::make_pair(s.polls, s.hot_exits));
  }
  first = true;
  for (const auto& a : agg) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":" << quoted(a.first) << ",\"polls\":" << a.second.first
        << ",\"hot_exits\":" << a.second.second << "}";
  }
  out << "]}";
}

}  // namespace

void write_metrics_json(std::ostream& out, const RunResult& result,
                        const CmpSystem& system, const sim::SelfProfiler* prof,
                        const SamplingResult* sampling,
                        const StatRegistry* stats) {
  const StatRegistry& reg = stats != nullptr ? *stats : system.merged_stats();
  out << "{\"schema\":\"tcmp-metrics\",\"version\":" << kMetricsSchemaVersion
      << ",";
  write_run(out, result);

  out << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : reg.counters()) {
    if (!first) out << ",";
    first = false;
    out << quoted(name) << ":" << v;
  }
  out << "},\"scalars\":{";
  first = true;
  for (const auto& [name, s] : reg.scalars()) {
    if (!first) out << ",";
    first = false;
    out << quoted(name) << ":{\"count\":" << s.count()
        << ",\"mean\":" << num(s.mean()) << ",\"min\":" << num(s.min())
        << ",\"max\":" << num(s.max()) << "}";
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : reg.histograms()) {
    if (!first) out << ",";
    first = false;
    out << quoted(name) << ":";
    write_quantiles(out, h);
  }

  // The slack telemetry plane, re-grouped from its registry stats: each
  // "slack.<class>.<wire>" histogram joined with its ".nonblocking" counter.
  out << "},\"slack\":{";
  first = true;
  for (const auto& [name, h] : reg.histograms()) {
    if (name.rfind("slack.", 0) != 0) continue;
    if (!first) out << ",";
    first = false;
    out << quoted(name.substr(6)) << ":";
    const ScalarStat& s = h.scalar();
    out << "{\"count\":" << s.count() << ",\"mean\":" << num(s.mean())
        << ",\"p50\":" << num(h.quantile(0.50))
        << ",\"p95\":" << num(h.quantile(0.95))
        << ",\"p99\":" << num(h.quantile(0.99))
        << ",\"nonblocking\":" << reg.counter_value(name + ".nonblocking")
        << "}";
  }
  out << "}";

  if (sampling != nullptr) {
    const SamplingResult& s = *sampling;
    out << ",\"sampling\":{\"windows\":" << s.windows
        << ",\"detailed_cycles\":" << s.detailed_cycles.value()
        << ",\"detailed_instructions\":" << s.detailed_instructions
        << ",\"functional_instructions\":" << s.functional_instructions
        << ",\"total_instructions\":" << s.total_instructions
        << ",\"cpi\":" << num(s.cpi)
        << ",\"cpi_window_mean\":" << num(s.cpi_window_mean)
        << ",\"cpi_ci95\":" << num(s.cpi_ci95)
        << ",\"extrapolation\":" << num(s.extrapolation)
        << ",\"estimated_cycles\":" << s.estimated_cycles.value() << "}";
  }

  if (prof != nullptr) {
    out << ",";
    write_self_profile(out, *prof, system);
  }
  out << "}\n";
}

}  // namespace tcmp::cmp
