// Canonical metrics export: ONE versioned JSON document per run that unifies
// everything the simulator can report — the paper-level RunResult metrics,
// every StatRegistry counter/scalar/histogram (slack telemetry included),
// and, when attached, the kernel self-profile. `tcmpsim --metrics-out` writes
// it; tools/tcmpstat reads, summarizes and diffs it (CI trend gating).
//
// Schema contract (docs/observability.md has the worked example):
//   { "schema": "tcmp-metrics", "version": kMetricsSchemaVersion,
//     "run": {...}, "counters": {...}, "scalars": {...},
//     "histograms": {...}, "slack": {...}, "sampling": {...}?,
//     "self_profile": {...}? }
// The version bumps on any breaking change (renamed/removed keys or meaning
// changes); adding keys is non-breaking. Consumers must reject documents
// whose schema/version they do not understand (tcmpstat does).
#pragma once

#include <iosfwd>

#include "cmp/report.hpp"

namespace tcmp::sim {
class SelfProfiler;
}

namespace tcmp::cmp {

struct SamplingResult;

inline constexpr int kMetricsSchemaVersion = 1;

/// Write the canonical metrics JSON for a finished run. `prof` (optional)
/// adds the "self_profile" section; `sampling` (optional) adds the
/// "sampling" section, with `stats` overriding the registry the counter /
/// scalar / histogram sections are harvested from (a sampled run exports
/// its extrapolated registry instead of the live one). Deterministic: key
/// order is fixed and registry sections iterate in map (name) order.
void write_metrics_json(std::ostream& out, const RunResult& result,
                        const CmpSystem& system,
                        const sim::SelfProfiler* prof = nullptr,
                        const SamplingResult* sampling = nullptr,
                        const StatRegistry* stats = nullptr);

}  // namespace tcmp::cmp
