// Post-run result extraction: turns the simulator's raw event counters into
// the paper's metrics — execution time, the interconnect energy breakdown
// and ED^2P (Figs. 6/7), message-type shares (Fig. 5) and compression
// coverage (Fig. 2). All energy is computed post-hoc from counters, keeping
// the hot simulation path free of floating-point accounting.
#pragma once

#include <map>
#include <string>

#include "cmp/system.hpp"
#include "power/energy_ledger.hpp"

namespace tcmp::cmp {

struct RunResult {
  std::string workload;
  std::string configuration;
  Cycle cycles{0};
  units::Seconds seconds{};
  std::uint64_t instructions = 0;

  power::EnergyLedger energy;

  double compression_coverage = 0.0;  ///< compressed / compression attempts
  std::map<std::string, std::uint64_t> msg_counts;  ///< per type, network msgs
  std::uint64_t remote_messages = 0;
  std::uint64_t local_messages = 0;
  double avg_critical_latency = 0.0;  ///< network latency of critical msgs

  /// Latency distribution summary harvested from a registry histogram.
  struct Quantiles {
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    std::uint64_t count = 0;
  };
  /// Network latency quantiles, keyed by histogram name with the "noc."
  /// prefix stripped ("lat.req.total", "critical_latency", "VL.latency"...).
  std::map<std::string, Quantiles> latency;

  [[nodiscard]] units::Joules link_energy() const;
  [[nodiscard]] units::Joules interconnect_energy() const {
    return energy.interconnect_total();
  }
  [[nodiscard]] units::Joules total_energy() const { return energy.total(); }

  /// ED^2P of the interconnect links (Fig. 6 bottom normalizes this).
  [[nodiscard]] double link_ed2p() const;
  /// ED^2P of the whole interconnect (links + routers + compression HW).
  [[nodiscard]] double interconnect_ed2p() const;
  /// ED^2P of the full CMP (Fig. 7).
  [[nodiscard]] double full_cmp_ed2p() const;
};

/// Harvest a finished system.
[[nodiscard]] RunResult make_result(const CmpSystem& system);

/// Harvest core with explicit inputs: `stats` supplies the event counters
/// and distributions, the scalars the measured totals. make_result(system)
/// forwards the full-run values; the sampling driver (cmp/sampling.hpp)
/// passes its extrapolated registry and estimates instead.
[[nodiscard]] RunResult make_result(const CmpSystem& system,
                                    const StatRegistry& stats, Cycle cycles,
                                    std::uint64_t instructions,
                                    std::uint64_t compression_accesses);

}  // namespace tcmp::cmp
