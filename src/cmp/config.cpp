#include "cmp/config.hpp"

#include "common/check.hpp"

namespace tcmp::cmp {

std::string CmpConfig::name() const {
  switch (link.style) {
    case wire::LinkStyle::kBaseline:
      return "baseline (75B B-Wires)";
    case wire::LinkStyle::kCheng3Way:
      return "Cheng'06 3-subnet (11B L + 17B B + 28B PW)";
    case wire::LinkStyle::kVlHet:
      break;
  }
  return scheme.name() + " + " + std::to_string(link.vl_bytes) + "B VL";
}

CmpConfig CmpConfig::baseline() { return CmpConfig{}; }

CmpConfig CmpConfig::heterogeneous(const compression::SchemeConfig& scheme) {
  TCMP_CHECK(scheme.enabled());
  CmpConfig cfg;
  cfg.scheme = scheme;
  cfg.link = wire::paper_het_link(scheme.vl_width_bytes());
  return cfg;
}

CmpConfig CmpConfig::cheng3way() {
  CmpConfig cfg;
  cfg.link = wire::cheng3way_link();
  return cfg;
}

}  // namespace tcmp::cmp
