#include "cmp/system.hpp"

#include <algorithm>
#include <ostream>

#include "common/check.hpp"
#include "noc/channel.hpp"
#include "obs/observer.hpp"

namespace tcmp::cmp {

using protocol::CoherenceMsg;

CmpSystem::CmpSystem(const CmpConfig& cfg, std::shared_ptr<core::Workload> workload)
    : cfg_(cfg), workload_(std::move(workload)) {
  TCMP_CHECK(workload_ != nullptr);
  TCMP_CHECK(cfg_.n_tiles == cfg_.mesh_width * cfg_.mesh_height);

  noc::NocConfig ncfg;
  ncfg.width = cfg_.mesh_width;
  ncfg.height = cfg_.mesh_height;
  ncfg.topology = cfg_.topology;
  ncfg.channels = noc::make_channels(cfg_.link, cfg_.link_length_mm, cfg_.freq);
  ncfg.vcs_per_vnet = cfg_.vcs_per_vnet;
  ncfg.buffer_flits = cfg_.buffer_flits;
  ncfg.single_cycle_router = cfg_.single_cycle_router;
  ncfg.link_length_mm = cfg_.link_length_mm;
  ncfg.freq = cfg_.freq;
  network_ = std::make_unique<noc::Network>(ncfg, &stats_);

  at_barrier_.assign(cfg_.n_tiles, false);
  for (unsigned i = 0; i < protocol::kNumMsgTypes; ++i) {
    const auto type = static_cast<protocol::MsgType>(i);
    msg_counters_[i] =
        stats_.counter_ref("msg." + std::string(protocol::to_string(type)));
  }
  local_count_ = stats_.counter_ref("msg_local.count");
  remote_count_ = stats_.counter_ref("msg_remote.count");
  remote_bytes_ = stats_.counter_ref("msg_remote.uncompressed_bytes");
  barrier_arrivals_ = stats_.counter_ref("sync.barrier_arrivals");
  barriers_completed_ = stats_.counter_ref("sync.barriers_completed");

  for (unsigned t = 0; t < cfg_.n_tiles; ++t) {
    auto tile = std::make_unique<Tile>();
    const auto id = static_cast<NodeId>(t);
    auto sink = [this, id](CoherenceMsg msg) { route_outgoing(id, msg); };
    protocol::L1Cache::Config l1cfg = cfg_.l1;
    protocol::Directory::Config l2cfg = cfg_.l2;
    l1cfg.reply_partitioning = l2cfg.reply_partitioning = cfg_.reply_partitioning;
    tile->l1 = std::make_unique<protocol::L1Cache>(id, l1cfg, cfg_.n_tiles,
                                                   &stats_, sink);
    tile->dir = std::make_unique<protocol::Directory>(id, l2cfg, cfg_.n_tiles,
                                                      &stats_, sink);
    tile->nic = std::make_unique<het::TileNic>(id, cfg_.scheme, cfg_.link.style,
                                               cfg_.n_tiles, network_.get(),
                                               &stats_);
    tile->l1i = std::make_unique<protocol::ICache>(id, protocol::ICache::Config{},
                                                   cfg_.n_tiles, &stats_, sink);
    tile->core = std::make_unique<core::Core>(id, core::Core::Config{},
                                              workload_.get(), tile->l1.get(),
                                              &stats_);
    tile->core->set_icache(tile->l1i.get(), workload_->code_lines());
    tile->core->set_barrier_handler(
        [this](unsigned c, std::uint32_t b) { on_barrier(c, b); });
    tile->l1->set_fill_callback(
        [core = tile->core.get()](LineAddr line) { core->on_fill(line); });
    tile->l1i->set_fill_callback([core = tile->core.get()] { core->on_ifill(); });
    tiles_.push_back(std::move(tile));
  }

  network_->set_deliver([this](NodeId node, const CoherenceMsg& msg) {
    tiles_[node]->nic->receive(
        msg, now_, [this, node](const CoherenceMsg& m) { deliver_local(node, m); });
  });

  // Register every component with the event kernel. Registration order is
  // the next_wake() scan order: cores first (any runnable core makes the
  // next cycle live and early-exits the scan), then the network, then the
  // directories (pipeline deadlines), then the driver-level recurring events
  // (telemetry sampling, periodic checks), then the purely message-driven
  // components (never wake sources; registered for the quiescence contract).
  for (auto& t : tiles_) kernel_.add_component(t->core.get());
  kernel_.add_component(network_.get());
  for (auto& t : tiles_) kernel_.add_component(t->dir.get());
  auto obs_next = [this] { return obs_sample_due_; };
  obs_event_ = std::make_unique<sim::ScheduledEvent<decltype(obs_next)>>(obs_next);
  kernel_.add_component(obs_event_.get());
  auto check_next = [this] { return check_due_; };
  check_event_ =
      std::make_unique<sim::ScheduledEvent<decltype(check_next)>>(check_next);
  kernel_.add_component(check_event_.get());
  for (auto& t : tiles_) {
    kernel_.add_component(t->l1.get());
    kernel_.add_component(t->l1i.get());
    kernel_.add_component(t->nic.get());
  }

  if (workload_->has_warmup()) {
    // Functional warmup: fill caches quickly, then measure the steady
    // parallel phase at the real memory latency.
    for (auto& t : tiles_) t->dir->set_memory_latency(cfg_.warmup_memory_latency);
  } else {
    warmup_done_ = true;
  }
}

void CmpSystem::attach_observer(obs::Observer* obs) {
  if (obs_ != nullptr && obs != obs_) obs_->set_clock(nullptr);
  obs_ = obs;
  network_->set_observer(obs);
  for (auto& t : tiles_) {
    t->nic->set_observer(obs);
    t->l1->set_hooks(obs);
    t->dir->set_hooks(obs);
  }
  if (obs == nullptr) {
    obs_sample_due_ = kNeverCycle;
    return;
  }
  // The observer reads the system clock directly: hooks stay timestamped
  // without a per-cycle tick, and step() only calls into the observer when
  // a time-series sample is actually due.
  obs->set_clock(&now_);
  obs_sample_due_ = obs->timeseries().next_boundary();
  obs->label_tiles(cfg_.n_tiles);
  if (!warmup_done_) obs->set_warmup_pending();
  obs->add_gauge("dir_busy_lines", [this] {
    double total = 0;
    for (const auto& t : tiles_) total += t->dir->busy_lines();
    return total;
  });
  obs->add_gauge("dir_queued_msgs", [this] {
    double total = 0;
    for (const auto& t : tiles_) total += t->dir->queued_msgs();
    return total;
  });
}

void CmpSystem::route_outgoing(NodeId tile, CoherenceMsg msg) {
  ++msg_counters_[static_cast<unsigned>(msg.type)];
  if (msg.dst == tile) {
    // Tile-internal hop (e.g. the local L2 slice is the home): no mesh
    // traversal, no compression, a fixed short latency. The loopback queue
    // is not a kernel component, so mark its deadline live explicitly (the
    // pop phase runs before the sinks, so a deadline at or before now_ is
    // popped next cycle — exactly what the per-cycle loop did).
    tiles_[tile]->loopback.push(now_ + cfg_.local_latency, msg);
    kernel_.wake(std::max(now_ + cfg_.local_latency, now_ + 1));
    ++local_count_;
    return;
  }
  ++remote_count_;
  remote_bytes_ += protocol::uncompressed_bytes(msg.type);
  if (remote_hook_) remote_hook_(msg);
  tiles_[tile]->nic->send(msg, now_);
}

void CmpSystem::deliver_local(NodeId tile, const CoherenceMsg& msg) {
  switch (msg.dst_unit) {
    case protocol::Unit::kDir:
      tiles_[tile]->dir->deliver(msg, now_);
      break;
    case protocol::Unit::kL1I:
      tiles_[tile]->l1i->deliver(msg);
      break;
    case protocol::Unit::kL1:
      tiles_[tile]->l1->deliver(msg);
      break;
  }
  // Close the lifecycle span at protocol-handler completion, not ejection:
  // the gap between the two is delivery/handler time.
  if (obs_ != nullptr && msg.trace_id != 0) [[unlikely]] {
    obs_->msg_completed(msg, tile, now_);
  }
}

void CmpSystem::on_barrier(unsigned core, std::uint32_t id) {
  TCMP_CHECK(!at_barrier_[core]);
  at_barrier_[core] = true;
  pending_barrier_id_ = id;
  ++waiting_;
  ++barrier_arrivals_;

  unsigned done = 0;
  for (const auto& t : tiles_)
    if (t->core->done()) ++done;
  if (waiting_ + done == cfg_.n_tiles) release_barrier();
}

void CmpSystem::release_barrier() {
  const bool warmup_boundary =
      pending_barrier_id_ == core::kWarmupBarrierId && !warmup_done_;
  for (unsigned c = 0; c < cfg_.n_tiles; ++c) {
    if (at_barrier_[c]) {
      at_barrier_[c] = false;
      tiles_[c]->core->barrier_release();
    }
  }
  waiting_ = 0;
  ++barriers_completed_;
  if (warmup_boundary) end_warmup();
}

void CmpSystem::end_warmup() {
  warmup_done_ = true;
  measure_start_ = now_;
  warmup_instructions_ = total_instructions();
  warmup_compression_accesses_ = compression_accesses();
  for (auto& t : tiles_) t->dir->set_memory_latency(cfg_.l2.memory_latency);
  // Flush the warmup telemetry window before the counters it snapshots are
  // zeroed, so measured-phase window deltas sum exactly to the final report.
  if (obs_ != nullptr) {
    obs_->on_registry_zeroed(now_);
    // phase_boundary moved the sampling window; refresh the hoisted check.
    obs_sample_due_ = obs_->timeseries().next_boundary();
  }
  stats_.zero_all();
}

void CmpSystem::set_periodic_check(Cycle interval, PeriodicCheck check) {
  if (interval == Cycle{0} || !check) {
    check_interval_ = Cycle{0};
    check_due_ = kNeverCycle;
    periodic_check_ = nullptr;
    return;
  }
  check_interval_ = interval;
  // First firing at the next multiple of the interval strictly after now_
  // (the per-cycle loop fired whenever now_ % interval == 0).
  check_due_ = Cycle{(now_.value() / interval.value() + 1) * interval.value()};
  periodic_check_ = std::move(check);
}

void CmpSystem::step() {
  ++now_;
  // Hoisted from the seed's per-cycle `obs_ != nullptr` branch: the observer
  // reads the clock through set_clock, so it only needs a call when a
  // time-series sample is due (obs_sample_due_ is kNeverCycle when detached).
  if (now_ >= obs_sample_due_) [[unlikely]] {
    obs_->sample_tick(now_);
    obs_sample_due_ = obs_->timeseries().next_boundary();
  }
  network_->tick(now_);
  for (auto& t : tiles_) {
    while (auto msg = t->loopback.pop_ready(now_)) {
      deliver_local(msg->dst, *msg);
    }
  }
  for (auto& t : tiles_) t->dir->tick(now_);
  for (auto& t : tiles_) t->core->tick(now_);

  // A core finishing can release a barrier everyone else is already in.
  if (waiting_ > 0) {
    unsigned done = 0;
    for (const auto& t : tiles_)
      if (t->core->done()) ++done;
    if (waiting_ + done == cfg_.n_tiles) release_barrier();
  }

  // Hoisted from the seed's `now_ % check_interval_ == 0` test: check_due_
  // tracks the next multiple of the interval (kNeverCycle when uninstalled).
  if (now_ >= check_due_) [[unlikely]] {
    if (!periodic_check_(now_)) aborted_ = true;
    check_due_ += check_interval_;
  }
}

bool CmpSystem::finished() const {
  for (const auto& t : tiles_) {
    if (!t->core->done()) return false;
  }
  for (const auto& t : tiles_) {
    if (!t->l1->quiescent() || !t->l1i->quiescent() || !t->dir->quiescent() ||
        !t->loopback.empty())
      return false;
  }
  return network_->quiescent();
}

void CmpSystem::advance_idle(Cycle target) {
  TCMP_DCHECK(target > now_);
  const Cycle skipped = target - now_;
  // The only side effect a dead cycle has in the per-cycle loop is blocked-
  // core accounting (every other component's tick is a provable no-op, which
  // is what made the cycles skippable in the first place).
  for (auto& t : tiles_) t->core->account_idle(skipped);
  now_ = target;
}

bool CmpSystem::run(Cycle max_cycles) {
  while (now_ < max_cycles && !aborted_) {
    step();
    if (finished()) return !aborted_;
    if (!dead_cycle_skipping_) continue;
    const Cycle nxt = kernel_.next_wake(now_);
    if (nxt <= now_ + 1) continue;
    // Every cycle in (now_, nxt) is globally dead: jump to just before the
    // next live cycle. kNeverCycle (deadlock: nothing will ever act again)
    // clamps to the horizon, replicating the seed's spin to max_cycles —
    // including its blocked-core accounting.
    advance_idle(std::min(Cycle{nxt.value() - 1}, max_cycles));
  }
  return finished() && !aborted_;
}

void CmpSystem::dump_state(std::ostream& out) const {
  out << "=== CmpSystem @ cycle " << now_.value() << " (" << cfg_.name()
      << ") ===\n";
  out << "warmup_done=" << warmup_done_ << " waiting_at_barrier=" << waiting_
      << " network_quiescent=" << network_->quiescent() << "\n";
  for (unsigned tidx = 0; tidx < cfg_.n_tiles; ++tidx) {
    const Tile& t = *tiles_[tidx];
    out << "tile " << tidx << ": core "
        << (t.core->done() ? "done" : t.core->blocked() ? "blocked" : "running")
        << " instr=" << t.core->instructions()
        << " | l1 " << (t.l1->quiescent() ? "idle" : "busy")
        << " l1i " << (t.l1i->quiescent() ? "idle" : "busy")
        << " dir " << (t.dir->quiescent() ? "idle" : "busy")
        << " loopback=" << t.loopback.size() << "\n";
  }
}

std::uint64_t CmpSystem::total_instructions() const {
  std::uint64_t total = 0;
  for (const auto& t : tiles_) total += t->core->instructions();
  return total;
}

std::uint64_t CmpSystem::compression_accesses() const {
  std::uint64_t total = 0;
  for (const auto& t : tiles_) total += t->nic->compression_accesses();
  return total;
}

}  // namespace tcmp::cmp
