#include "cmp/system.hpp"

#include <algorithm>
#include <atomic>
#include <ostream>
#include <thread>

#include "common/abort.hpp"
#include "common/check.hpp"
#include "noc/channel.hpp"
#include "obs/observer.hpp"
#include "obs/slack.hpp"
#include "sim/profiler.hpp"

namespace tcmp::cmp {

using protocol::CoherenceMsg;

CmpSystem::CmpSystem(const CmpConfig& cfg, std::shared_ptr<core::Workload> workload)
    : cfg_(cfg),
      plan_(cfg.mesh_width, cfg.mesh_height, cfg.threads),
      workload_(std::move(workload)),
      flight_(cfg.n_tiles) {
  TCMP_CHECK(workload_ != nullptr);
  TCMP_CHECK(cfg_.n_tiles == cfg_.mesh_width * cfg_.mesh_height);
  TCMP_CHECK(cfg_.threads >= 1);
  n_parts_ = plan_.num_partitions();
  barrier_mode_ = n_parts_ > 1 ? BarrierMode::kRecord : BarrierMode::kSerial;
  part_of_.resize(cfg_.n_tiles);
  for (unsigned t = 0; t < cfg_.n_tiles; ++t) part_of_[t] = plan_.part_of(t);

  // Partition shards. Partition 0 aliases stats_, so the K = 1 machine is
  // exactly the seed's single-kernel, single-registry driver; every shard
  // registers the same stat names, and merged_stats() folds them back.
  std::vector<StatRegistry*> shards;
  for (unsigned p = 0; p < n_parts_; ++p) {
    auto part = std::make_unique<Partition>();
    if (p == 0) {
      part->shard = &stats_;
    } else {
      part->owned_shard = std::make_unique<StatRegistry>();
      part->shard = part->owned_shard.get();
    }
    for (unsigned i = 0; i < protocol::kNumMsgTypes; ++i) {
      const auto type = static_cast<protocol::MsgType>(i);
      part->msg_counters[i] = part->shard->counter_ref(
          "msg." + std::string(protocol::to_string(type)));
    }
    part->local_count = part->shard->counter_ref("msg_local.count");
    part->remote_count = part->shard->counter_ref("msg_remote.count");
    part->remote_bytes =
        part->shard->counter_ref("msg_remote.uncompressed_bytes");
    shards.push_back(part->shard);
    parts_.push_back(std::move(part));
  }
  // The barrier controller always runs serially; its counters live on shard 0.
  barrier_arrivals_ = stats_.counter_ref("sync.barrier_arrivals");
  barriers_completed_ = stats_.counter_ref("sync.barriers_completed");

  noc::NocConfig ncfg;
  ncfg.width = cfg_.mesh_width;
  ncfg.height = cfg_.mesh_height;
  ncfg.topology = cfg_.topology;
  ncfg.channels = noc::make_channels(cfg_.link, cfg_.link_length_mm, cfg_.freq);
  ncfg.vcs_per_vnet = cfg_.vcs_per_vnet;
  ncfg.buffer_flits = cfg_.buffer_flits;
  ncfg.single_cycle_router = cfg_.single_cycle_router;
  ncfg.link_length_mm = cfg_.link_length_mm;
  ncfg.freq = cfg_.freq;
  network_ = std::make_unique<noc::Network>(ncfg, plan_, shards);

  at_barrier_.assign(cfg_.n_tiles, false);

  for (unsigned t = 0; t < cfg_.n_tiles; ++t) {
    auto tile = std::make_unique<Tile>();
    const auto id = static_cast<NodeId>(t);
    StatRegistry* const shard = shards[part_of_[t]];
    auto sink = [this, id](CoherenceMsg msg) { route_outgoing(id, msg); };
    protocol::L1Cache::Config l1cfg = cfg_.l1;
    protocol::Directory::Config l2cfg = cfg_.l2;
    l1cfg.reply_partitioning = l2cfg.reply_partitioning = cfg_.reply_partitioning;
    tile->l1 = std::make_unique<protocol::L1Cache>(id, l1cfg, cfg_.n_tiles,
                                                   shard, sink);
    tile->dir = std::make_unique<protocol::Directory>(id, l2cfg, cfg_.n_tiles,
                                                      shard, sink);
    tile->nic = std::make_unique<het::TileNic>(id, cfg_.scheme, cfg_.link.style,
                                               cfg_.n_tiles, network_.get(),
                                               shard);
    tile->l1i = std::make_unique<protocol::ICache>(id, protocol::ICache::Config{},
                                                   cfg_.n_tiles, shard, sink);
    tile->core = std::make_unique<core::Core>(id, core::Core::Config{},
                                              workload_.get(), tile->l1.get(),
                                              shard);
    tile->core->set_icache(tile->l1i.get(), workload_->code_lines());
    tile->core->set_barrier_handler(
        [this](unsigned c, std::uint32_t b) { on_barrier(c, b); });
    // Fill callbacks wrap the core notification with the slack-telemetry
    // unstall probe: when the core was provably stalled on this line, the
    // fill resolves every delivery parked against the stall (realized slack
    // = unstall cycle - delivery cycle). slack_ is null unless an observer
    // with telemetry enabled is attached, so the probe costs one branch.
    tile->l1->set_fill_callback(
        // tcmplint: tile-seam (same-tile fill callback wired at construction; never crosses a partition)
        [this, core = tile->core.get(), id](LineAddr line) {
          const bool was_stalled = core->stalled_on(line);
          core->on_fill(line);
          obs::SlackTelemetry* const sl = slack_for(id);
          if (was_stalled && sl != nullptr) [[unlikely]] {
            sl->on_unstall(id, line, now_);
          }
        });
    // tcmplint: tile-seam (same-tile fill callback wired at construction; never crosses a partition)
    tile->l1i->set_fill_callback([this, core = tile->core.get(), id] {
      const bool was_stalled = core->stalled_on_ifetch();
      core->on_ifill();
      obs::SlackTelemetry* const sl = slack_for(id);
      if (was_stalled && sl != nullptr) [[unlikely]] {
        sl->on_unstall_ifetch(id, now_);
      }
    });
    tiles_.push_back(std::move(tile));
  }

  network_->set_deliver([this](NodeId node, const CoherenceMsg& msg) {
    tiles_[node]->nic->receive(
        msg, now_, [this, node](const CoherenceMsg& m) { deliver_local(node, m); });
  });

  // Register every component with its partition's event kernel (at K = 1
  // that is the single kernel, in exactly the seed's order). Registration
  // order is the next_wake() scan order: cores first (any runnable core
  // makes the next cycle live and early-exits the scan), then the network,
  // then the directories (pipeline deadlines), then the driver-level
  // recurring events (telemetry sampling, periodic checks; partition 0),
  // then the purely message-driven components (never wake sources;
  // registered for the quiescence contract).
  auto obs_next = [this] { return obs_sample_due_; };
  obs_event_ = std::make_unique<sim::ScheduledEvent<decltype(obs_next)>>(obs_next);
  auto check_next = [this] { return check_due_; };
  check_event_ =
      std::make_unique<sim::ScheduledEvent<decltype(check_next)>>(check_next);
  for (unsigned p = 0; p < n_parts_; ++p) {
    sim::SimKernel& k = parts_[p]->kernel;
    const unsigned lo = plan_.first(p), hi = plan_.first(p + 1);
    for (unsigned t = lo; t < hi; ++t) k.add_component(tiles_[t]->core.get(), "core");
    if (n_parts_ == 1) {
      k.add_component(network_.get(), "network");
    } else {
      auto net_next = [this, p] { return network_->next_event_partition(p); };
      parts_[p]->net_event =
          std::make_unique<sim::ScheduledEvent<decltype(net_next)>>(net_next);
      k.add_component(parts_[p]->net_event.get(), "network");
    }
    for (unsigned t = lo; t < hi; ++t) k.add_component(tiles_[t]->dir.get(), "dir");
    if (p == 0) {
      k.add_component(obs_event_.get(), "obs.sampler");
      k.add_component(check_event_.get(), "periodic.check");
    }
    for (unsigned t = lo; t < hi; ++t) {
      k.add_component(tiles_[t]->l1.get(), "l1");
      k.add_component(tiles_[t]->l1i.get(), "l1i");
      k.add_component(tiles_[t]->nic.get(), "nic");
    }
  }

  if (workload_->has_warmup()) {
    // Functional warmup: fill caches quickly, then measure the steady
    // parallel phase at the real memory latency.
    for (auto& t : tiles_) t->dir->set_memory_latency(cfg_.warmup_memory_latency);
  } else {
    warmup_done_ = true;
  }
}

CmpSystem::~CmpSystem() {
  if (abort_token_ != 0) AbortHooks::remove(abort_token_);
}

void CmpSystem::set_postmortem_path(std::string path) {
  if (abort_token_ != 0) {
    AbortHooks::remove(abort_token_);
    abort_token_ = 0;
  }
  postmortem_path_ = std::move(path);
  if (!postmortem_path_.empty()) {
    abort_token_ = AbortHooks::add([this] { dump_postmortem(); });
  }
}

bool CmpSystem::dump_postmortem() const {
  if (postmortem_path_.empty()) return false;
  return flight_.dump_to_file(postmortem_path_);
}

void CmpSystem::set_profiler(sim::SelfProfiler* prof) {
  TCMP_CHECK_MSG(prof == nullptr || n_parts_ == 1,
                 "the self-profiler instruments the single-kernel loop "
                 "(threads == 1)");
  prof_ = prof;
  if (prof == nullptr) return;
  // Scope registration order is presentation order is lap order in step_impl.
  sc_obs_ = prof->register_scope("obs.sample");
  sc_net_ = prof->register_scope("network");
  sc_loopback_ = prof->register_scope("loopback");
  sc_dirs_ = prof->register_scope("directories");
  sc_cores_ = prof->register_scope("cores");
  sc_barrier_ = prof->register_scope("barrier");
  sc_check_ = prof->register_scope("periodic.check");
  sc_drain_ = prof->register_scope("drain.check");
  sc_scan_ = prof->register_scope("kernel.scan");
  sc_idle_ = prof->register_scope("idle.skip");
}

void CmpSystem::write_self_profile(std::ostream& out) const {
  if (prof_ == nullptr) {
    out << "self-profile: no profiler attached\n";
    return;
  }
  prof_->write_table(out);
  // Kernel pull-scan attribution: how often next_wake polled each component
  // class and how often that class terminated the scan early (the hot exit).
  // Aggregated over registration entries (16 cores -> one "core" row).
  std::vector<std::pair<std::string, std::pair<std::uint64_t, std::uint64_t>>>
      agg;
  for (const auto& s : parts_[0]->kernel.scan_stats()) {
    auto it = std::find_if(agg.begin(), agg.end(),
                           [&](const auto& a) { return a.first == s.name; });
    if (it == agg.end()) {
      agg.emplace_back(s.name, std::make_pair(s.polls, s.hot_exits));
    } else {
      it->second.first += s.polls;
      it->second.second += s.hot_exits;
    }
  }
  std::uint64_t total_polls = 0;
  for (const auto& a : agg) total_polls += a.second.first;
  out << "kernel pull-scan (" << total_polls << " polls):\n";
  for (const auto& a : agg) {
    out << "  " << a.first << ": polls=" << a.second.first
        << " hot_exits=" << a.second.second << "\n";
  }
}

void CmpSystem::attach_observer(obs::Observer* obs) {
  TCMP_CHECK_MSG(obs == nullptr || n_parts_ == 1,
                 "observers are single-threaded (threads == 1); at K > 1 the "
                 "only supported telemetry is enable_slack_telemetry()");
  if (obs_ != nullptr && obs != obs_) obs_->set_clock(nullptr);
  obs_ = obs;
  network_->set_observer(obs);
  for (auto& t : tiles_) {
    t->nic->set_observer(obs);
    t->l1->set_hooks(obs);
    t->dir->set_hooks(obs);
  }
  if (obs == nullptr) {
    obs_sample_due_ = kNeverCycle;
    slack_ = nullptr;
    return;
  }
  // Slack telemetry rides every level that samples stats at all. Wire
  // classes are the network's channel planes plus a "local" pseudo-class for
  // tile-internal loopback traffic, which never touches a wire.
  if (!obs->slack().enabled()) {
    obs->slack().init(&stats_, wire_class_names());
  }
  slack_ = &obs->slack();
  // The observer reads the system clock directly: hooks stay timestamped
  // without a per-cycle tick, and step() only calls into the observer when
  // a time-series sample is actually due.
  obs->set_clock(&now_);
  obs_sample_due_ = obs->timeseries().next_boundary();
  obs->label_tiles(cfg_.n_tiles);
  if (!warmup_done_) obs->set_warmup_pending();
  obs->add_gauge("dir_busy_lines", [this] {
    double total = 0;
    for (unsigned t = 0; t < cfg_.n_tiles; ++t) total += directory(t).busy_lines();
    return total;
  });
  obs->add_gauge("dir_queued_msgs", [this] {
    double total = 0;
    for (unsigned t = 0; t < cfg_.n_tiles; ++t) total += directory(t).queued_msgs();
    return total;
  });
}

void CmpSystem::route_outgoing(NodeId tile, CoherenceMsg msg) {
  Partition& P = *parts_[part_of_[tile]];
  ++P.msg_counters[static_cast<unsigned>(msg.type)];
  if (slack_for(tile) != nullptr) [[unlikely]] {
    // Tag at injection with the requesting core's state; the tag travels
    // with the message (telemetry-only field) and is read back at delivery.
    msg.slack_class = static_cast<std::uint8_t>(
        obs::classify(msg.type, beneficiary_stalled(msg)));
  }
  if (msg.dst == tile) {
    // Tile-internal hop (e.g. the local L2 slice is the home): no mesh
    // traversal, no compression, a fixed short latency. The loopback queue
    // is not a kernel component, so mark its deadline live explicitly (the
    // pop phase runs before the sinks, so a deadline at or before now_ is
    // popped next cycle — exactly what the per-cycle loop did).
    msg.wire_class = static_cast<std::uint8_t>(network_->num_channels());
    flight_.record(obs::FlightEventKind::kSendLocal, tile, msg, now_);
    tiles_[tile]->loopback.push(now_ + cfg_.local_latency, msg);
    P.kernel.wake(std::max(now_ + cfg_.local_latency, now_ + 1));
    ++P.local_count;
    return;
  }
  ++P.remote_count;
  P.remote_bytes += protocol::uncompressed_bytes(msg.type);
  flight_.record(obs::FlightEventKind::kSendRemote, tile, msg, now_);
  if (remote_hook_) remote_hook_(msg);
  tiles_[tile]->nic->send(msg, now_);
}

bool CmpSystem::beneficiary_stalled(const CoherenceMsg& msg) const {
  if (!protocol::is_critical(msg.type)) return false;
  // The beneficiary is the core whose miss this message serves: the
  // requester when the protocol stamped one (forwards, acks, most replies),
  // else the sender for directory-bound requests or the receiver for
  // L1-bound replies.
  const NodeId b = msg.requester != kInvalidNode
                       ? msg.requester
                       : (msg.dst_unit == protocol::Unit::kDir ? msg.src
                                                               : msg.dst);
  if (b >= tiles_.size()) return false;
  const bool want_ifetch = msg.type == protocol::MsgType::kGetInstr ||
                           msg.dst_unit == protocol::Unit::kL1I;
  if (n_parts_ > 1) {
    // Cross-partition form of the probe: the beneficiary may live in another
    // partition, so read the previous cycle's published stall snapshot
    // instead of the live core. Used for every beneficiary at K > 1 so the
    // classification does not depend on the partition count — the one
    // documented divergence from K = 1 (docs/partitioning.md).
    const core::StallSnapshot& snap = stall_published_[b];
    return want_ifetch ? snap.ifetch : (snap.mem && snap.line == msg.line);
  }
  if (want_ifetch) return tiles_[b]->core->stalled_on_ifetch();
  return tiles_[b]->core->stalled_on(msg.line);
}

void CmpSystem::deliver_local(NodeId tile, const CoherenceMsg& msg) {
  flight_.record(obs::FlightEventKind::kDeliver, tile, msg, now_);
  obs::SlackTelemetry* const sl = slack_for(tile);
  if (sl != nullptr) [[unlikely]] {
    // Record BEFORE the handler runs: a reply that completes the miss
    // synchronously fires the fill callback (and the unstall probe) inside
    // the deliver below, resolving this very delivery with zero slack.
    const bool parked =
        obs::can_unstall_dst(msg.type, msg.dst_unit) &&
        (msg.dst_unit == protocol::Unit::kL1I
             ? tiles_[tile]->core->stalled_on_ifetch()
             : tiles_[tile]->core->stalled_on(msg.line));
    sl->on_delivered(tile, msg, parked, now_);
  }
  switch (msg.dst_unit) {
    case protocol::Unit::kDir:
      tiles_[tile]->dir->deliver(msg, now_);
      break;
    case protocol::Unit::kL1I:
      tiles_[tile]->l1i->deliver(msg);
      break;
    case protocol::Unit::kL1:
      tiles_[tile]->l1->deliver(msg);
      break;
  }
  // Close the lifecycle span at protocol-handler completion, not ejection:
  // the gap between the two is delivery/handler time.
  if (obs_ != nullptr && msg.trace_id != 0) [[unlikely]] {
    obs_->msg_completed(msg, tile, now_);
  }
}

void CmpSystem::on_barrier(unsigned core, std::uint32_t id) {
  if (barrier_mode_ == BarrierMode::kRecord) {
    // Parallel phase: queue the arrival; the serial epilogue replays the
    // per-partition lists in global tile order (docs/partitioning.md).
    parts_[part_of_[core]]->events.push_back(BarrierEvent{core, id, false});
    return;
  }
  if (barrier_mode_ == BarrierMode::kReplay) {
    replay_arrival(core, id);
    return;
  }
  TCMP_CHECK(!at_barrier_[core]);
  at_barrier_[core] = true;
  pending_barrier_id_ = id;
  ++waiting_;
  ++barrier_arrivals_;

  unsigned done = 0;
  for (const auto& t : tiles_)
    if (t->core->done()) ++done;
  if (waiting_ + done == cfg_.n_tiles) release_barrier();
}

void CmpSystem::release_barrier() {
  const bool warmup_boundary =
      pending_barrier_id_ == core::kWarmupBarrierId && !warmup_done_;
  for (unsigned c = 0; c < cfg_.n_tiles; ++c) {
    if (at_barrier_[c]) {
      at_barrier_[c] = false;
      tiles_[c]->core->barrier_release();
    }
  }
  waiting_ = 0;
  ++barriers_completed_;
  if (warmup_boundary) end_warmup();
}

void CmpSystem::end_warmup() {
  warmup_done_ = true;
  measure_start_ = now_;
  warmup_instructions_ = total_instructions();
  warmup_compression_accesses_ = compression_accesses();
  for (auto& t : tiles_) t->dir->set_memory_latency(cfg_.l2.memory_latency);
  // Flush the warmup telemetry window before the counters it snapshots are
  // zeroed, so measured-phase window deltas sum exactly to the final report.
  if (obs_ != nullptr) {
    obs_->on_registry_zeroed(now_);
    // phase_boundary moved the sampling window; refresh the hoisted check.
    obs_sample_due_ = obs_->timeseries().next_boundary();
  }
  for (auto& part : parts_) part->shard->zero_all();
}

void CmpSystem::set_periodic_check(Cycle interval, PeriodicCheck check) {
  if (interval == Cycle{0} || !check) {
    check_interval_ = Cycle{0};
    check_due_ = kNeverCycle;
    periodic_check_ = nullptr;
    return;
  }
  check_interval_ = interval;
  // First firing at the next multiple of the interval strictly after now_
  // (the per-cycle loop fired whenever now_ % interval == 0).
  check_due_ = Cycle{(now_.value() / interval.value() + 1) * interval.value()};
  periodic_check_ = std::move(check);
}

void CmpSystem::step() {
  if (n_parts_ > 1) {
    step_partitioned();
    return;
  }
  step_impl<false>();
}

template <bool kProfiled>
void CmpSystem::step_impl() {
  ++now_;
  // Hoisted from the seed's per-cycle `obs_ != nullptr` branch: the observer
  // reads the clock through set_clock, so it only needs a call when a
  // time-series sample is due (obs_sample_due_ is kNeverCycle when detached).
  if (now_ >= obs_sample_due_) [[unlikely]] {
    obs_->sample_tick(now_);
    obs_sample_due_ = obs_->timeseries().next_boundary();
  }
  if constexpr (kProfiled) prof_->lap(sc_obs_);
  network_->tick(now_);
  if constexpr (kProfiled) prof_->lap(sc_net_);
  for (auto& t : tiles_) {
    while (auto msg = t->loopback.pop_ready(now_)) {
      deliver_local(msg->dst, *msg);
    }
  }
  if constexpr (kProfiled) prof_->lap(sc_loopback_);
  for (auto& t : tiles_) t->dir->tick(now_);
  if constexpr (kProfiled) prof_->lap(sc_dirs_);
  for (auto& t : tiles_) t->core->tick(now_);
  if constexpr (kProfiled) prof_->lap(sc_cores_);

  // A core finishing can release a barrier everyone else is already in.
  if (waiting_ > 0) {
    unsigned done = 0;
    for (const auto& t : tiles_)
      if (t->core->done()) ++done;
    if (waiting_ + done == cfg_.n_tiles) release_barrier();
  }
  if constexpr (kProfiled) prof_->lap(sc_barrier_);

  // Hoisted from the seed's `now_ % check_interval_ == 0` test: check_due_
  // tracks the next multiple of the interval (kNeverCycle when uninstalled).
  if (now_ >= check_due_) [[unlikely]] {
    if (!periodic_check_(now_)) aborted_ = true;
    check_due_ += check_interval_;
  }
  if constexpr (kProfiled) prof_->lap(sc_check_);
}

bool CmpSystem::finished() const {
  for (const auto& t : tiles_) {
    if (!t->core->done()) return false;
  }
  for (const auto& t : tiles_) {
    if (!t->l1->quiescent() || !t->l1i->quiescent() || !t->dir->quiescent() ||
        !t->loopback.empty())
      return false;
  }
  return network_->quiescent() && network_->boundaries_empty();
}

void CmpSystem::advance_idle(Cycle target) {
  TCMP_DCHECK(target > now_);
  const Cycle skipped = target - now_;
  // The only side effect a dead cycle has in the per-cycle loop is blocked-
  // core accounting (every other component's tick is a provable no-op, which
  // is what made the cycles skippable in the first place).
  for (auto& t : tiles_) t->core->account_idle(skipped);
  now_ = target;
}

bool CmpSystem::run(Cycle max_cycles) {
  if (n_parts_ > 1) return run_partitioned(max_cycles);
  if (prof_ != nullptr) {
    // Lap-based attribution: the laps tile the whole loop contiguously, so
    // the table accounts for (nearly) all of run()'s wall time.
    prof_->start_run();
    const bool ok = run_loop<true>(max_cycles);
    prof_->stop_run();
    return ok;
  }
  return run_loop<false>(max_cycles);
}

template <bool kProfiled>
bool CmpSystem::run_loop(Cycle max_cycles) {
  while (now_ < max_cycles && !aborted_) {
    step_impl<kProfiled>();
    const bool done = finished();
    if constexpr (kProfiled) prof_->lap(sc_drain_);
    if (done) return !aborted_;
    if (!dead_cycle_skipping_) continue;
    Cycle nxt{0};
    if constexpr (kProfiled) {
      nxt = parts_[0]->kernel.next_wake_counted(now_);
      prof_->lap(sc_scan_);
    } else {
      nxt = parts_[0]->kernel.next_wake(now_);
    }
    if (nxt <= now_ + 1) continue;
    // Every cycle in (now_, nxt) is globally dead: jump to just before the
    // next live cycle. kNeverCycle (deadlock: nothing will ever act again)
    // clamps to the horizon, replicating the seed's spin to max_cycles —
    // including its blocked-core accounting.
    advance_idle(std::min(Cycle{nxt.value() - 1}, max_cycles));
    if constexpr (kProfiled) prof_->lap(sc_idle_);
  }
  return finished() && !aborted_;
}

// --- Partitioned driver (K > 1; docs/partitioning.md) -----------------------

bool CmpSystem::partition_finished(unsigned p) const {
  const unsigned lo = plan_.first(p), hi = plan_.first(p + 1);
  for (unsigned t = lo; t < hi; ++t) {
    if (!tiles_[t]->core->done()) return false;
  }
  for (unsigned t = lo; t < hi; ++t) {
    if (!tiles_[t]->l1->quiescent() || !tiles_[t]->l1i->quiescent() ||
        !tiles_[t]->dir->quiescent() || !tiles_[t]->loopback.empty()) {
      return false;
    }
  }
  return network_->quiescent_partition(p);
}

void CmpSystem::parallel_phase(unsigned p) {
  Partition& P = *parts_[p];
  const unsigned lo = plan_.first(p), hi = plan_.first(p + 1);
  // Apply the boundary events the last serial epilogue published for this
  // partition, then run the exact component sequence step_impl runs, cut to
  // this partition's tiles and routers.
  network_->drain_boundary(p);
  network_->tick_partition(p, now_);
  for (unsigned t = lo; t < hi; ++t) {
    while (auto msg = tiles_[t]->loopback.pop_ready(now_)) {
      deliver_local(msg->dst, *msg);
    }
  }
  for (unsigned t = lo; t < hi; ++t) tiles_[t]->dir->tick(now_);
  for (unsigned t = lo; t < hi; ++t) {
    // Ticking a done core is a no-op, so skipping it is free — and it lets
    // the tick below detect the run->done transition, which the barrier
    // replay needs at this core's position in serial tile order.
    if (tiles_[t]->core->done()) continue;
    tiles_[t]->core->tick(now_);
    if (tiles_[t]->core->done()) {
      P.events.push_back(BarrierEvent{t, 0, true});
    }
  }
  if (P.slack != nullptr) {
    for (unsigned t = lo; t < hi; ++t) {
      tiles_[t]->core->snapshot_stall(stall_next_[t]);
    }
  }
  P.finished = partition_finished(p);
  P.next_wake = P.kernel.next_wake(now_);
}

void CmpSystem::replay_arrival(unsigned core, std::uint32_t id) {
  TCMP_CHECK(!at_barrier_[core]);
  at_barrier_[core] = true;
  pending_barrier_id_ = id;
  ++waiting_;
  ++barrier_arrivals_;
  if (waiting_ + replay_done_count_ == cfg_.n_tiles) {
    // This arrival completes the barrier. Cores after `core` in tile order
    // that were already waiting ticked blocked in the parallel phase, but
    // the serial driver would have released them before their tick: undo the
    // provisional blocked tick and re-tick them at their replay position.
    for (unsigned w = core + 1; w < cfg_.n_tiles; ++w) {
      if (at_barrier_[w]) {
        tiles_[w]->core->undo_blocked_tick();
        replay_retick_[w] = true;
      }
    }
    release_barrier();
    replay_any_action_ = true;
  }
}

bool CmpSystem::replay_barrier_events() {
  // Cores done *before this cycle*: total done now minus the run->done
  // transitions the parallel phases recorded. The serial driver's arrival
  // check counts a core as done only once serial order has passed its
  // transition; the cursor walk below adds them back one by one.
  unsigned done_now = 0;
  for (const auto& t : tiles_)
    if (t->core->done()) ++done_now;
  unsigned done_events = 0;
  bool any_events = false;
  for (const auto& part : parts_) {
    if (!part->events.empty()) any_events = true;
    for (const BarrierEvent& e : part->events)
      if (e.done) ++done_events;
  }
  replay_done_count_ = done_now - done_events;
  replay_any_action_ = false;
  if (any_events) {
    // Concatenating the per-partition lists yields global tile order:
    // partitions own contiguous tile ranges and record in tile order.
    std::vector<BarrierEvent> ev;
    for (auto& part : parts_) {
      ev.insert(ev.end(), part->events.begin(), part->events.end());
      part->events.clear();
    }
    replay_retick_.assign(cfg_.n_tiles, false);
    barrier_mode_ = BarrierMode::kReplay;
    std::size_t cursor = 0;
    for (unsigned t = 0; t < cfg_.n_tiles; ++t) {
      if (replay_retick_[t]) {
        // Released by an earlier arrival this cycle: this is the core's real
        // tick for the cycle (its provisional blocked tick was undone). It
        // can arrive at the next barrier or finish right here; both route
        // back through the replay bookkeeping.
        tiles_[t]->core->tick(now_);
        if (tiles_[t]->core->done()) ++replay_done_count_;
        replay_any_action_ = true;
      }
      while (cursor < ev.size() && ev[cursor].core == t) {
        if (ev[cursor].done) {
          ++replay_done_count_;
        } else {
          replay_arrival(t, ev[cursor].id);
        }
        ++cursor;
      }
    }
    barrier_mode_ = BarrierMode::kRecord;
  }
  // The serial driver's post-tick check: a core finishing can release a
  // barrier every other core is already in.
  if (waiting_ > 0 && waiting_ + replay_done_count_ == cfg_.n_tiles) {
    release_barrier();
    replay_any_action_ = true;
  }
  return replay_any_action_;
}

Cycle CmpSystem::serial_epilogue() {
  const bool action = replay_barrier_events();
  // Publish this cycle's stall snapshots for the next cycle's slack probes.
  if (!stall_next_.empty()) stall_published_.swap(stall_next_);
  if (now_ >= check_due_) [[unlikely]] {
    if (!periodic_check_(now_)) aborted_ = true;
    check_due_ += check_interval_;
  }
  const Cycle boundary_next = network_->exchange_boundaries();
  if (action) {
    // Barrier releases / re-ticks may have produced new work anywhere; the
    // partitions' cached wake calendars are stale. Run the next cycle live.
    epilogue_finished_ = finished();
    return now_ + 1;
  }
  bool fin = boundary_next == kNeverCycle;
  for (unsigned p = 0; fin && p < n_parts_; ++p) fin = parts_[p]->finished;
  epilogue_finished_ = fin;
  Cycle nxt = boundary_next;
  for (const auto& part : parts_) nxt = std::min(nxt, part->next_wake);
  return nxt;
}

void CmpSystem::step_partitioned() {
  ++now_;
  network_->begin_cycle(now_);
  // Sequential execution of the parallel phases is equivalent to the
  // threaded run: the phases only exchange state through the double-buffered
  // boundary channels and stall snapshots, both swapped by the epilogue.
  for (unsigned p = 0; p < n_parts_; ++p) parallel_phase(p);
  serial_epilogue();
}

bool CmpSystem::run_partitioned(Cycle max_cycles) {
  TCMP_CHECK(n_parts_ > 1);
  sim::SpinBarrier barrier(n_parts_);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(n_parts_ - 1);
  for (unsigned p = 1; p < n_parts_; ++p) {
    workers.emplace_back([this, p, &barrier, &stop] {
      for (;;) {
        barrier.arrive_and_wait();  // cycle start: prologue published
        if (stop.load(std::memory_order_acquire)) return;
        parallel_phase(p);
        barrier.arrive_and_wait();  // cycle end: hand over to the epilogue
      }
    });
  }
  bool completed = false;
  while (now_ < max_cycles && !aborted_) {
    ++now_;
    network_->begin_cycle(now_);
    barrier.arrive_and_wait();
    parallel_phase(0);
    barrier.arrive_and_wait();
    const Cycle nxt = serial_epilogue();
    if (epilogue_finished_) {
      completed = true;
      break;
    }
    if (!dead_cycle_skipping_) continue;
    if (nxt <= now_ + 1) continue;
    // Same dead-cycle rule as run_loop, with the boundary-channel deadlines
    // folded in (exchange_boundaries returned them in nxt).
    advance_idle(std::min(Cycle{nxt.value() - 1}, max_cycles));
  }
  stop.store(true, std::memory_order_release);
  barrier.arrive_and_wait();
  for (auto& w : workers) w.join();
  return (completed || finished()) && !aborted_;
}

const StatRegistry& CmpSystem::merged_stats() const {
  if (n_parts_ == 1) return stats_;
  merged_ = StatRegistry{};
  for (const auto& part : parts_) merged_.merge_from(*part->shard);
  return merged_;
}

std::vector<std::string> CmpSystem::wire_class_names() const {
  // The network's channel planes plus a "local" pseudo-class for
  // tile-internal loopback traffic, which never touches a wire.
  std::vector<std::string> wires;
  for (unsigned c = 0; c < network_->num_channels(); ++c) {
    wires.push_back(network_->channel(c).name);
  }
  wires.emplace_back("local");
  return wires;
}

void CmpSystem::enable_slack_telemetry() {
  TCMP_CHECK_MSG(n_parts_ > 1,
                 "at threads == 1 slack telemetry rides the observer "
                 "(attach_observer)");
  if (parts_[0]->slack != nullptr) return;
  const std::vector<std::string> wires = wire_class_names();
  for (auto& part : parts_) {
    part->slack = std::make_unique<obs::SlackTelemetry>();
    part->slack->init(part->shard, wires);
  }
  stall_published_.assign(cfg_.n_tiles, core::StallSnapshot{});
  stall_next_.assign(cfg_.n_tiles, core::StallSnapshot{});
}

void CmpSystem::write_slack_table(std::ostream& out) {
  if (n_parts_ == 1) {
    if (slack_ == nullptr) return;
    slack_->finalize();
    slack_->write_table(out);
    return;
  }
  if (parts_[0]->slack == nullptr) return;
  for (auto& part : parts_) part->slack->finalize();
  // Fold the shards and read the table through a throwaway telemetry bound
  // to the merged registry: init() re-interns the same stat names, so the
  // view sees the reassembled distributions.
  StatRegistry folded;
  for (const auto& part : parts_) folded.merge_from(*part->shard);
  obs::SlackTelemetry view;
  view.init(&folded, wire_class_names());
  view.write_table(out);
}

void CmpSystem::dump_state(std::ostream& out) const {
  out << "=== CmpSystem @ cycle " << now_.value() << " (" << cfg_.name()
      << ") ===\n";
  out << "warmup_done=" << warmup_done_ << " waiting_at_barrier=" << waiting_
      << " network_quiescent=" << network_->quiescent() << "\n";
  for (unsigned tidx = 0; tidx < cfg_.n_tiles; ++tidx) {
    const Tile& t = *tiles_[tidx];
    out << "tile " << tidx << ": core "
        << (t.core->done() ? "done" : t.core->blocked() ? "blocked" : "running")
        << " instr=" << t.core->instructions()
        << " | l1 " << (t.l1->quiescent() ? "idle" : "busy")
        << " l1i " << (t.l1i->quiescent() ? "idle" : "busy")
        << " dir " << (t.dir->quiescent() ? "idle" : "busy")
        << " loopback=" << t.loopback.size() << "\n";
  }
}

std::uint64_t CmpSystem::total_instructions() const {
  std::uint64_t total = 0;
  // tcmplint: tile-seam (single-threaded aggregation at report/warmup boundaries, between partition phases)
  for (const auto& t : tiles_) total += t->core->instructions();
  return total;
}

std::uint64_t CmpSystem::compression_accesses() const {
  std::uint64_t total = 0;
  // tcmplint: tile-seam (single-threaded aggregation at report/warmup boundaries, between partition phases)
  for (const auto& t : tiles_) total += t->nic->compression_accesses();
  return total;
}

}  // namespace tcmp::cmp
