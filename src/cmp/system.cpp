#include "cmp/system.hpp"

#include <algorithm>
#include <ostream>

#include "common/abort.hpp"
#include "common/check.hpp"
#include "noc/channel.hpp"
#include "obs/observer.hpp"
#include "obs/slack.hpp"
#include "sim/profiler.hpp"

namespace tcmp::cmp {

using protocol::CoherenceMsg;

CmpSystem::CmpSystem(const CmpConfig& cfg, std::shared_ptr<core::Workload> workload)
    : cfg_(cfg), workload_(std::move(workload)), flight_(cfg.n_tiles) {
  TCMP_CHECK(workload_ != nullptr);
  TCMP_CHECK(cfg_.n_tiles == cfg_.mesh_width * cfg_.mesh_height);

  noc::NocConfig ncfg;
  ncfg.width = cfg_.mesh_width;
  ncfg.height = cfg_.mesh_height;
  ncfg.topology = cfg_.topology;
  ncfg.channels = noc::make_channels(cfg_.link, cfg_.link_length_mm, cfg_.freq);
  ncfg.vcs_per_vnet = cfg_.vcs_per_vnet;
  ncfg.buffer_flits = cfg_.buffer_flits;
  ncfg.single_cycle_router = cfg_.single_cycle_router;
  ncfg.link_length_mm = cfg_.link_length_mm;
  ncfg.freq = cfg_.freq;
  network_ = std::make_unique<noc::Network>(ncfg, &stats_);

  at_barrier_.assign(cfg_.n_tiles, false);
  for (unsigned i = 0; i < protocol::kNumMsgTypes; ++i) {
    const auto type = static_cast<protocol::MsgType>(i);
    msg_counters_[i] =
        stats_.counter_ref("msg." + std::string(protocol::to_string(type)));
  }
  local_count_ = stats_.counter_ref("msg_local.count");
  remote_count_ = stats_.counter_ref("msg_remote.count");
  remote_bytes_ = stats_.counter_ref("msg_remote.uncompressed_bytes");
  barrier_arrivals_ = stats_.counter_ref("sync.barrier_arrivals");
  barriers_completed_ = stats_.counter_ref("sync.barriers_completed");

  for (unsigned t = 0; t < cfg_.n_tiles; ++t) {
    auto tile = std::make_unique<Tile>();
    const auto id = static_cast<NodeId>(t);
    auto sink = [this, id](CoherenceMsg msg) { route_outgoing(id, msg); };
    protocol::L1Cache::Config l1cfg = cfg_.l1;
    protocol::Directory::Config l2cfg = cfg_.l2;
    l1cfg.reply_partitioning = l2cfg.reply_partitioning = cfg_.reply_partitioning;
    tile->l1 = std::make_unique<protocol::L1Cache>(id, l1cfg, cfg_.n_tiles,
                                                   &stats_, sink);
    tile->dir = std::make_unique<protocol::Directory>(id, l2cfg, cfg_.n_tiles,
                                                      &stats_, sink);
    tile->nic = std::make_unique<het::TileNic>(id, cfg_.scheme, cfg_.link.style,
                                               cfg_.n_tiles, network_.get(),
                                               &stats_);
    tile->l1i = std::make_unique<protocol::ICache>(id, protocol::ICache::Config{},
                                                   cfg_.n_tiles, &stats_, sink);
    tile->core = std::make_unique<core::Core>(id, core::Core::Config{},
                                              workload_.get(), tile->l1.get(),
                                              &stats_);
    tile->core->set_icache(tile->l1i.get(), workload_->code_lines());
    tile->core->set_barrier_handler(
        [this](unsigned c, std::uint32_t b) { on_barrier(c, b); });
    // Fill callbacks wrap the core notification with the slack-telemetry
    // unstall probe: when the core was provably stalled on this line, the
    // fill resolves every delivery parked against the stall (realized slack
    // = unstall cycle - delivery cycle). slack_ is null unless an observer
    // with telemetry enabled is attached, so the probe costs one branch.
    tile->l1->set_fill_callback(
        // tcmplint: tile-seam (same-tile fill callback wired at construction; never crosses a partition)
        [this, core = tile->core.get(), id](LineAddr line) {
          const bool was_stalled = core->stalled_on(line);
          core->on_fill(line);
          if (was_stalled && slack_ != nullptr) [[unlikely]] {
            slack_->on_unstall(id, line, now_);
          }
        });
    // tcmplint: tile-seam (same-tile fill callback wired at construction; never crosses a partition)
    tile->l1i->set_fill_callback([this, core = tile->core.get(), id] {
      const bool was_stalled = core->stalled_on_ifetch();
      core->on_ifill();
      if (was_stalled && slack_ != nullptr) [[unlikely]] {
        slack_->on_unstall_ifetch(id, now_);
      }
    });
    tiles_.push_back(std::move(tile));
  }

  network_->set_deliver([this](NodeId node, const CoherenceMsg& msg) {
    tiles_[node]->nic->receive(
        msg, now_, [this, node](const CoherenceMsg& m) { deliver_local(node, m); });
  });

  // Register every component with the event kernel. Registration order is
  // the next_wake() scan order: cores first (any runnable core makes the
  // next cycle live and early-exits the scan), then the network, then the
  // directories (pipeline deadlines), then the driver-level recurring events
  // (telemetry sampling, periodic checks), then the purely message-driven
  // components (never wake sources; registered for the quiescence contract).
  for (auto& t : tiles_) kernel_.add_component(t->core.get(), "core");
  kernel_.add_component(network_.get(), "network");
  for (auto& t : tiles_) kernel_.add_component(t->dir.get(), "dir");
  auto obs_next = [this] { return obs_sample_due_; };
  obs_event_ = std::make_unique<sim::ScheduledEvent<decltype(obs_next)>>(obs_next);
  kernel_.add_component(obs_event_.get(), "obs.sampler");
  auto check_next = [this] { return check_due_; };
  check_event_ =
      std::make_unique<sim::ScheduledEvent<decltype(check_next)>>(check_next);
  kernel_.add_component(check_event_.get(), "periodic.check");
  for (auto& t : tiles_) {
    kernel_.add_component(t->l1.get(), "l1");
    kernel_.add_component(t->l1i.get(), "l1i");
    kernel_.add_component(t->nic.get(), "nic");
  }

  if (workload_->has_warmup()) {
    // Functional warmup: fill caches quickly, then measure the steady
    // parallel phase at the real memory latency.
    for (auto& t : tiles_) t->dir->set_memory_latency(cfg_.warmup_memory_latency);
  } else {
    warmup_done_ = true;
  }
}

CmpSystem::~CmpSystem() {
  if (abort_token_ != 0) AbortHooks::remove(abort_token_);
}

void CmpSystem::set_postmortem_path(std::string path) {
  if (abort_token_ != 0) {
    AbortHooks::remove(abort_token_);
    abort_token_ = 0;
  }
  postmortem_path_ = std::move(path);
  if (!postmortem_path_.empty()) {
    abort_token_ = AbortHooks::add([this] { dump_postmortem(); });
  }
}

bool CmpSystem::dump_postmortem() const {
  if (postmortem_path_.empty()) return false;
  return flight_.dump_to_file(postmortem_path_);
}

void CmpSystem::set_profiler(sim::SelfProfiler* prof) {
  prof_ = prof;
  if (prof == nullptr) return;
  // Scope registration order is presentation order is lap order in step_impl.
  sc_obs_ = prof->register_scope("obs.sample");
  sc_net_ = prof->register_scope("network");
  sc_loopback_ = prof->register_scope("loopback");
  sc_dirs_ = prof->register_scope("directories");
  sc_cores_ = prof->register_scope("cores");
  sc_barrier_ = prof->register_scope("barrier");
  sc_check_ = prof->register_scope("periodic.check");
  sc_drain_ = prof->register_scope("drain.check");
  sc_scan_ = prof->register_scope("kernel.scan");
  sc_idle_ = prof->register_scope("idle.skip");
}

void CmpSystem::write_self_profile(std::ostream& out) const {
  if (prof_ == nullptr) {
    out << "self-profile: no profiler attached\n";
    return;
  }
  prof_->write_table(out);
  // Kernel pull-scan attribution: how often next_wake polled each component
  // class and how often that class terminated the scan early (the hot exit).
  // Aggregated over registration entries (16 cores -> one "core" row).
  std::vector<std::pair<std::string, std::pair<std::uint64_t, std::uint64_t>>>
      agg;
  for (const auto& s : kernel_.scan_stats()) {
    auto it = std::find_if(agg.begin(), agg.end(),
                           [&](const auto& a) { return a.first == s.name; });
    if (it == agg.end()) {
      agg.emplace_back(s.name, std::make_pair(s.polls, s.hot_exits));
    } else {
      it->second.first += s.polls;
      it->second.second += s.hot_exits;
    }
  }
  std::uint64_t total_polls = 0;
  for (const auto& a : agg) total_polls += a.second.first;
  out << "kernel pull-scan (" << total_polls << " polls):\n";
  for (const auto& a : agg) {
    out << "  " << a.first << ": polls=" << a.second.first
        << " hot_exits=" << a.second.second << "\n";
  }
}

void CmpSystem::attach_observer(obs::Observer* obs) {
  if (obs_ != nullptr && obs != obs_) obs_->set_clock(nullptr);
  obs_ = obs;
  network_->set_observer(obs);
  for (auto& t : tiles_) {
    t->nic->set_observer(obs);
    t->l1->set_hooks(obs);
    t->dir->set_hooks(obs);
  }
  if (obs == nullptr) {
    obs_sample_due_ = kNeverCycle;
    slack_ = nullptr;
    return;
  }
  // Slack telemetry rides every level that samples stats at all. Wire
  // classes are the network's channel planes plus a "local" pseudo-class for
  // tile-internal loopback traffic, which never touches a wire.
  if (!obs->slack().enabled()) {
    std::vector<std::string> wires;
    for (unsigned c = 0; c < network_->num_channels(); ++c) {
      wires.push_back(network_->channel(c).name);
    }
    wires.emplace_back("local");
    obs->slack().init(&stats_, wires);
  }
  slack_ = &obs->slack();
  // The observer reads the system clock directly: hooks stay timestamped
  // without a per-cycle tick, and step() only calls into the observer when
  // a time-series sample is actually due.
  obs->set_clock(&now_);
  obs_sample_due_ = obs->timeseries().next_boundary();
  obs->label_tiles(cfg_.n_tiles);
  if (!warmup_done_) obs->set_warmup_pending();
  obs->add_gauge("dir_busy_lines", [this] {
    double total = 0;
    // tcmplint: tile-seam (report-time gauge aggregation; becomes a per-partition shard merge)
    for (const auto& t : tiles_) total += t->dir->busy_lines();
    return total;
  });
  obs->add_gauge("dir_queued_msgs", [this] {
    double total = 0;
    // tcmplint: tile-seam (report-time gauge aggregation; becomes a per-partition shard merge)
    for (const auto& t : tiles_) total += t->dir->queued_msgs();
    return total;
  });
}

void CmpSystem::route_outgoing(NodeId tile, CoherenceMsg msg) {
  ++msg_counters_[static_cast<unsigned>(msg.type)];
  if (slack_ != nullptr) [[unlikely]] {
    // Tag at injection with the requesting core's state; the tag travels
    // with the message (telemetry-only field) and is read back at delivery.
    msg.slack_class = static_cast<std::uint8_t>(
        obs::classify(msg.type, beneficiary_stalled(msg)));
  }
  if (msg.dst == tile) {
    // Tile-internal hop (e.g. the local L2 slice is the home): no mesh
    // traversal, no compression, a fixed short latency. The loopback queue
    // is not a kernel component, so mark its deadline live explicitly (the
    // pop phase runs before the sinks, so a deadline at or before now_ is
    // popped next cycle — exactly what the per-cycle loop did).
    msg.wire_class = static_cast<std::uint8_t>(network_->num_channels());
    flight_.record(obs::FlightEventKind::kSendLocal, tile, msg, now_);
    tiles_[tile]->loopback.push(now_ + cfg_.local_latency, msg);
    kernel_.wake(std::max(now_ + cfg_.local_latency, now_ + 1));
    ++local_count_;
    return;
  }
  ++remote_count_;
  remote_bytes_ += protocol::uncompressed_bytes(msg.type);
  flight_.record(obs::FlightEventKind::kSendRemote, tile, msg, now_);
  if (remote_hook_) remote_hook_(msg);
  tiles_[tile]->nic->send(msg, now_);
}

bool CmpSystem::beneficiary_stalled(const CoherenceMsg& msg) const {
  if (!protocol::is_critical(msg.type)) return false;
  // The beneficiary is the core whose miss this message serves: the
  // requester when the protocol stamped one (forwards, acks, most replies),
  // else the sender for directory-bound requests or the receiver for
  // L1-bound replies.
  const NodeId b = msg.requester != kInvalidNode
                       ? msg.requester
                       : (msg.dst_unit == protocol::Unit::kDir ? msg.src
                                                               : msg.dst);
  if (b >= tiles_.size()) return false;
  // tcmplint: tile-seam (slack probe reads the beneficiary core's stall state; cross-partition it must ride the message)
  const core::Core& core = *tiles_[b]->core;
  if (msg.type == protocol::MsgType::kGetInstr ||
      msg.dst_unit == protocol::Unit::kL1I) {
    return core.stalled_on_ifetch();
  }
  return core.stalled_on(msg.line);
}

void CmpSystem::deliver_local(NodeId tile, const CoherenceMsg& msg) {
  flight_.record(obs::FlightEventKind::kDeliver, tile, msg, now_);
  if (slack_ != nullptr) [[unlikely]] {
    // Record BEFORE the handler runs: a reply that completes the miss
    // synchronously fires the fill callback (and the unstall probe) inside
    // the deliver below, resolving this very delivery with zero slack.
    const bool parked =
        obs::can_unstall_dst(msg.type, msg.dst_unit) &&
        (msg.dst_unit == protocol::Unit::kL1I
             ? tiles_[tile]->core->stalled_on_ifetch()
             : tiles_[tile]->core->stalled_on(msg.line));
    slack_->on_delivered(tile, msg, parked, now_);
  }
  switch (msg.dst_unit) {
    case protocol::Unit::kDir:
      tiles_[tile]->dir->deliver(msg, now_);
      break;
    case protocol::Unit::kL1I:
      tiles_[tile]->l1i->deliver(msg);
      break;
    case protocol::Unit::kL1:
      tiles_[tile]->l1->deliver(msg);
      break;
  }
  // Close the lifecycle span at protocol-handler completion, not ejection:
  // the gap between the two is delivery/handler time.
  if (obs_ != nullptr && msg.trace_id != 0) [[unlikely]] {
    obs_->msg_completed(msg, tile, now_);
  }
}

void CmpSystem::on_barrier(unsigned core, std::uint32_t id) {
  TCMP_CHECK(!at_barrier_[core]);
  at_barrier_[core] = true;
  pending_barrier_id_ = id;
  ++waiting_;
  ++barrier_arrivals_;

  unsigned done = 0;
  for (const auto& t : tiles_)
    if (t->core->done()) ++done;
  if (waiting_ + done == cfg_.n_tiles) release_barrier();
}

void CmpSystem::release_barrier() {
  const bool warmup_boundary =
      pending_barrier_id_ == core::kWarmupBarrierId && !warmup_done_;
  for (unsigned c = 0; c < cfg_.n_tiles; ++c) {
    if (at_barrier_[c]) {
      at_barrier_[c] = false;
      tiles_[c]->core->barrier_release();
    }
  }
  waiting_ = 0;
  ++barriers_completed_;
  if (warmup_boundary) end_warmup();
}

void CmpSystem::end_warmup() {
  warmup_done_ = true;
  measure_start_ = now_;
  warmup_instructions_ = total_instructions();
  warmup_compression_accesses_ = compression_accesses();
  for (auto& t : tiles_) t->dir->set_memory_latency(cfg_.l2.memory_latency);
  // Flush the warmup telemetry window before the counters it snapshots are
  // zeroed, so measured-phase window deltas sum exactly to the final report.
  if (obs_ != nullptr) {
    obs_->on_registry_zeroed(now_);
    // phase_boundary moved the sampling window; refresh the hoisted check.
    obs_sample_due_ = obs_->timeseries().next_boundary();
  }
  stats_.zero_all();
}

void CmpSystem::set_periodic_check(Cycle interval, PeriodicCheck check) {
  if (interval == Cycle{0} || !check) {
    check_interval_ = Cycle{0};
    check_due_ = kNeverCycle;
    periodic_check_ = nullptr;
    return;
  }
  check_interval_ = interval;
  // First firing at the next multiple of the interval strictly after now_
  // (the per-cycle loop fired whenever now_ % interval == 0).
  check_due_ = Cycle{(now_.value() / interval.value() + 1) * interval.value()};
  periodic_check_ = std::move(check);
}

void CmpSystem::step() { step_impl<false>(); }

template <bool kProfiled>
void CmpSystem::step_impl() {
  ++now_;
  // Hoisted from the seed's per-cycle `obs_ != nullptr` branch: the observer
  // reads the clock through set_clock, so it only needs a call when a
  // time-series sample is due (obs_sample_due_ is kNeverCycle when detached).
  if (now_ >= obs_sample_due_) [[unlikely]] {
    obs_->sample_tick(now_);
    obs_sample_due_ = obs_->timeseries().next_boundary();
  }
  if constexpr (kProfiled) prof_->lap(sc_obs_);
  network_->tick(now_);
  if constexpr (kProfiled) prof_->lap(sc_net_);
  for (auto& t : tiles_) {
    while (auto msg = t->loopback.pop_ready(now_)) {
      deliver_local(msg->dst, *msg);
    }
  }
  if constexpr (kProfiled) prof_->lap(sc_loopback_);
  for (auto& t : tiles_) t->dir->tick(now_);
  if constexpr (kProfiled) prof_->lap(sc_dirs_);
  for (auto& t : tiles_) t->core->tick(now_);
  if constexpr (kProfiled) prof_->lap(sc_cores_);

  // A core finishing can release a barrier everyone else is already in.
  if (waiting_ > 0) {
    unsigned done = 0;
    for (const auto& t : tiles_)
      if (t->core->done()) ++done;
    if (waiting_ + done == cfg_.n_tiles) release_barrier();
  }
  if constexpr (kProfiled) prof_->lap(sc_barrier_);

  // Hoisted from the seed's `now_ % check_interval_ == 0` test: check_due_
  // tracks the next multiple of the interval (kNeverCycle when uninstalled).
  if (now_ >= check_due_) [[unlikely]] {
    if (!periodic_check_(now_)) aborted_ = true;
    check_due_ += check_interval_;
  }
  if constexpr (kProfiled) prof_->lap(sc_check_);
}

bool CmpSystem::finished() const {
  for (const auto& t : tiles_) {
    if (!t->core->done()) return false;
  }
  for (const auto& t : tiles_) {
    if (!t->l1->quiescent() || !t->l1i->quiescent() || !t->dir->quiescent() ||
        !t->loopback.empty())
      return false;
  }
  return network_->quiescent();
}

void CmpSystem::advance_idle(Cycle target) {
  TCMP_DCHECK(target > now_);
  const Cycle skipped = target - now_;
  // The only side effect a dead cycle has in the per-cycle loop is blocked-
  // core accounting (every other component's tick is a provable no-op, which
  // is what made the cycles skippable in the first place).
  for (auto& t : tiles_) t->core->account_idle(skipped);
  now_ = target;
}

bool CmpSystem::run(Cycle max_cycles) {
  if (prof_ != nullptr) {
    // Lap-based attribution: the laps tile the whole loop contiguously, so
    // the table accounts for (nearly) all of run()'s wall time.
    prof_->start_run();
    const bool ok = run_loop<true>(max_cycles);
    prof_->stop_run();
    return ok;
  }
  return run_loop<false>(max_cycles);
}

template <bool kProfiled>
bool CmpSystem::run_loop(Cycle max_cycles) {
  while (now_ < max_cycles && !aborted_) {
    step_impl<kProfiled>();
    const bool done = finished();
    if constexpr (kProfiled) prof_->lap(sc_drain_);
    if (done) return !aborted_;
    if (!dead_cycle_skipping_) continue;
    Cycle nxt{0};
    if constexpr (kProfiled) {
      nxt = kernel_.next_wake_counted(now_);
      prof_->lap(sc_scan_);
    } else {
      nxt = kernel_.next_wake(now_);
    }
    if (nxt <= now_ + 1) continue;
    // Every cycle in (now_, nxt) is globally dead: jump to just before the
    // next live cycle. kNeverCycle (deadlock: nothing will ever act again)
    // clamps to the horizon, replicating the seed's spin to max_cycles —
    // including its blocked-core accounting.
    advance_idle(std::min(Cycle{nxt.value() - 1}, max_cycles));
    if constexpr (kProfiled) prof_->lap(sc_idle_);
  }
  return finished() && !aborted_;
}

void CmpSystem::dump_state(std::ostream& out) const {
  out << "=== CmpSystem @ cycle " << now_.value() << " (" << cfg_.name()
      << ") ===\n";
  out << "warmup_done=" << warmup_done_ << " waiting_at_barrier=" << waiting_
      << " network_quiescent=" << network_->quiescent() << "\n";
  for (unsigned tidx = 0; tidx < cfg_.n_tiles; ++tidx) {
    const Tile& t = *tiles_[tidx];
    out << "tile " << tidx << ": core "
        << (t.core->done() ? "done" : t.core->blocked() ? "blocked" : "running")
        << " instr=" << t.core->instructions()
        << " | l1 " << (t.l1->quiescent() ? "idle" : "busy")
        << " l1i " << (t.l1i->quiescent() ? "idle" : "busy")
        << " dir " << (t.dir->quiescent() ? "idle" : "busy")
        << " loopback=" << t.loopback.size() << "\n";
  }
}

std::uint64_t CmpSystem::total_instructions() const {
  std::uint64_t total = 0;
  // tcmplint: tile-seam (report-time counter aggregation; becomes a per-partition shard merge)
  for (const auto& t : tiles_) total += t->core->instructions();
  return total;
}

std::uint64_t CmpSystem::compression_accesses() const {
  std::uint64_t total = 0;
  // tcmplint: tile-seam (report-time counter aggregation; becomes a per-partition shard merge)
  for (const auto& t : tiles_) total += t->nic->compression_accesses();
  return total;
}

}  // namespace tcmp::cmp
