// SMARTS-style interval sampling (docs/checkpointing.md): long workloads run
// as alternating phases — functional fast-forward, where the workload's op
// stream is consumed instantly through the caches' warm interfaces with no
// timing, and short detailed windows, where the full machine simulates
// cycle-by-cycle. Each window is preceded by a detailed (unmeasured) warmup
// stretch that re-trains the timing state the functional phase cannot model
// (MSHRs, network occupancy, router pipelines). Whole-run metrics are
// extrapolated from the measured windows; per-window CPI variance yields a
// confidence bound on the estimate.
//
// The driver requires --threads 1 and no attached observer. Between phases
// every core is fenced (core::Core::set_fenced) and the machine drained to a
// quiescent point so the warm interfaces' no-in-flight-state precondition
// holds. Cores parked at a barrier are handed off as-is: the functional
// engine shares the system's barrier controller, so a barrier some cores
// reached in detailed mode completes when the remaining streams reach it
// functionally (or vice versa).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cmp/report.hpp"
#include "cmp/system.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace tcmp::cmp {

/// Parsed --sample specification.
struct SamplingConfig {
  /// Detailed but unmeasured cycles before each window (timing re-train).
  Cycle warmup{2'000};
  /// Measured detailed-window length in *instructions per core* (SMARTS
  /// units): fixed-instruction windows weight every stream position equally,
  /// where fixed-cycle windows would over-weight cheap regions (a harmonic
  /// mean, biased low on phase-heavy workloads).
  std::uint64_t detail = 10'000;
  /// Functional instructions consumed per core between windows.
  std::uint64_t period = 200'000;

  /// Parse "mode=interval,warmup=W,detail=D,period=P" (mode optional; the
  /// only supported mode is "interval"). Aborts on unknown keys/bad values.
  static SamplingConfig parse(const std::string& spec);
};

/// Outcome of a sampled run: measured-window aggregates plus the
/// extrapolated whole-run estimate.
struct SamplingResult {
  bool completed = false;         ///< workload ran to completion, not aborted
  std::uint64_t windows = 0;      ///< measured windows executed

  Cycle detailed_cycles{0};       ///< sum of measured-window cycles
  std::uint64_t detailed_instructions = 0;  ///< retired inside windows
  /// Compression-pipeline accesses observed inside measured windows.
  std::uint64_t detailed_compression_accesses = 0;
  /// All instructions retired in detailed mode (windows + warmup + drain
  /// tails), measured phase only.
  std::uint64_t detailed_total_instructions = 0;
  std::uint64_t functional_instructions = 0;  ///< consumed by fast-forward
  /// Fast-forward share spent on the workload's own warmup phase (excluded
  /// from extrapolation).
  std::uint64_t functional_warmup_instructions = 0;
  /// Whole-workload measured-phase instruction count: detailed + functional.
  std::uint64_t total_instructions = 0;

  double cpi = 0.0;               ///< Σ window cycles / Σ window instructions
  double cpi_window_mean = 0.0;   ///< mean of per-window CPI samples
  /// 95% confidence half-width on the per-window CPI mean (normal
  /// approximation across windows; 0 with fewer than 2 windows).
  double cpi_ci95 = 0.0;
  double extrapolation = 1.0;     ///< total / detailed window instructions
  Cycle estimated_cycles{0};      ///< cpi x total_instructions
};

/// Drives one CmpSystem through a sampled execution. Constructed against a
/// freshly built (or checkpoint-restored) system; run() consumes the
/// workload to completion.
class SampledRun {
 public:
  SampledRun(CmpSystem& sys, const SamplingConfig& cfg);

  /// Execute the sampled run. `max_detailed_cycles` bounds the *detailed*
  /// cycles spent (the analogue of run()'s max_cycles); returns true when
  /// the workload completed within the budget and nothing aborted.
  bool run(Cycle max_detailed_cycles = Cycle{500'000'000});

  [[nodiscard]] const SamplingResult& result() const { return res_; }
  /// Accumulated measured-window registry (unscaled window events).
  [[nodiscard]] const StatRegistry& window_stats() const { return accum_; }
  /// Extrapolated registry: every counter scaled by the extrapolation
  /// factor; scalars and histograms are intensity distributions and stay
  /// unscaled (docs/checkpointing.md discusses the error model).
  [[nodiscard]] StatRegistry scaled_stats() const;

 private:
  /// Fence/unfence every core (the detailed <-> functional handoff).
  void fence_all(bool fenced);
  /// Every core parked (done / drained / at a barrier) and the memory
  /// system + network fully quiescent: warm access becomes legal.
  [[nodiscard]] bool handoff_ready() const;
  /// Step the fenced machine until handoff_ready() (bounded; aborts the
  /// process if the machine cannot drain — a protocol bug, not a workload
  /// property).
  void drain();
  /// Detailed phase: step up to `budget` cycles. False when the run must
  /// stop (aborted, or the total detailed budget is exhausted).
  bool run_detailed(Cycle budget, Cycle max_total);
  /// Measured window: step until `instr_budget` instructions retire
  /// (aggregate, from `i0`) or the workload finishes. Same return contract
  /// as run_detailed.
  bool run_window(std::uint64_t i0, std::uint64_t instr_budget,
                  Cycle max_total);
  /// Functional phase: consume up to `period` instructions per core through
  /// the warm interfaces. Returns instructions consumed. With
  /// `stop_at_warmup_boundary`, halts every stream the moment the workload's
  /// warmup-boundary barrier releases (used to keep the measurement origin
  /// out of the windows).
  std::uint64_t fast_forward(bool stop_at_warmup_boundary = false);
  /// Functional end state of one load/store: L1 hit paths in place, misses
  /// through the home directory's warm_access, evictions written back.
  void warm_mem(unsigned core, LineAddr line, bool is_write);
  void finalize();

  CmpSystem& sys_;
  SamplingConfig cfg_;
  StatRegistry accum_;
  SamplingResult res_;
  std::vector<double> window_cpi_;
  Cycle total_detailed_{0};
};

/// Paper-metric harvest of a sampled run: make_result over the scaled
/// registry with the extrapolated cycle/instruction totals.
[[nodiscard]] RunResult make_sampled_result(const CmpSystem& system,
                                            const SampledRun& run);

}  // namespace tcmp::cmp
