// CmpSystem checkpoint/restore (docs/checkpointing.md).
//
// One snapshot_io walk serializes the complete simulation-visible state in a
// fixed order: driver clock and warmup boundary, barrier controller, every
// tile's components, the network, the per-partition wake calendars and stat
// shards, and finally the workload's cursors. Partition shards are saved
// per-shard (not merged) so a restored K-thread run reproduces the exact FP
// accumulation order of the uninterrupted one — which is why restore
// requires the same --threads K, enforced via the fingerprint and the
// n_parts_ verify.
//
// Deliberately NOT captured (host-side / re-attachable state): observers and
// their sampling cadence, periodic checks, the self-profiler, the flight
// recorder ring, and the postmortem path. All of these either do not affect
// simulation results or are re-installed by the driver after restore.

#include <istream>
#include <ostream>
#include <sstream>

#include "cmp/system.hpp"
#include "common/check.hpp"
#include "common/snapshot.hpp"

namespace tcmp::cmp {

std::string CmpSystem::snapshot_fingerprint() const {
  std::ostringstream fp;
  fp << cfg_.name() << "|tiles=" << cfg_.n_tiles << "|threads=" << cfg_.threads
     << "|workload=" << workload_->name();
  return fp.str();
}

template <typename Ar>
void CmpSystem::snapshot_io(Ar& ar) {
  ar.section("cmp");
  ar.verify(cfg_.n_tiles);
  ar.verify(n_parts_);

  // Driver clock and the warmup/measurement boundary.
  ar.field(now_);
  ar.field(measure_start_);
  ar.field(warmup_done_);
  ar.field(warmup_instructions_);
  ar.field(warmup_compression_accesses_);

  // Barrier controller (between cycles the replay scratch state is idle).
  ar.field(at_barrier_);
  ar.field(waiting_);
  ar.field(pending_barrier_id_);

  // K > 1 slack telemetry publishes double-buffered stall snapshots; their
  // presence depends on enable_slack_telemetry(), which both runs must have
  // called identically.
  ar.verify(stall_published_.size());
  ar.field(stall_published_);
  ar.field(stall_next_);

  // Hoisted periodic-check cadence: meaningful only when the restoring run
  // installed the same check, which set_periodic_check recomputes from now_.
  // The sampler cadence (obs_sample_due_) belongs to the observer and is
  // re-derived by attach_observer.

  for (auto& t : tiles_) {
    ar.field(*t->core);
    ar.field(*t->l1);
    ar.field(*t->l1i);
    ar.field(*t->dir);
    ar.field(*t->nic);
    ar.field(t->loopback);
  }

  ar.field(*network_);

  ar.section("kernels");
  for (auto& part : parts_) ar.field(part->kernel);

  // Stat shards, per partition: interned refs survive because
  // StatRegistry::load assigns in place.
  ar.section("stats");
  for (auto& part : parts_) {
    if constexpr (Ar::kIsWriter) {
      part->shard->save(ar);
    } else {
      part->shard->load(ar);
    }
  }

  ar.section("workload");
  if constexpr (Ar::kIsWriter) {
    static_cast<const core::Workload&>(*workload_).save(ar);
  } else {
    workload_->load(ar);
  }
}

void CmpSystem::save_checkpoint(std::ostream& out) {
  TCMP_CHECK_MSG(!aborted_, "cannot checkpoint an aborted run");
  TCMP_CHECK_MSG(workload_->can_snapshot(),
                 "this workload does not support checkpointing");
  if (n_parts_ > 1) {
    // A checkpoint lands between cycles, after the serial epilogue published
    // this cycle's boundary events. Apply them now — the identical write the
    // next cycle's drain phase would make (deadlines are all in the future),
    // so the continuing run and the snapshot agree — leaving the boundary
    // channels provably empty.
    for (unsigned p = 0; p < n_parts_; ++p) network_->drain_boundary(p);
    // Barrier-replay scratch lists are consumed within the epilogue.
    for (const auto& part : parts_) TCMP_CHECK(part->events.empty());
  }
  TCMP_CHECK(network_->boundaries_empty());
  SnapshotWriter w(out);
  write_snapshot_header(w, snapshot_fingerprint());
  snapshot_io(w);
  TCMP_CHECK_MSG(w.good(), "checkpoint write failed");
}

void CmpSystem::load_checkpoint(std::istream& in) {
  SnapshotReader r(in);
  read_snapshot_header(r, snapshot_fingerprint());
  snapshot_io(r);
  TCMP_CHECK_MSG(r.good(), "checkpoint read failed");
  // The restored clock invalidates any hoisted cadence computed before the
  // load; a check installed pre-restore is re-anchored here.
  if (periodic_check_ != nullptr && check_interval_ != Cycle{0}) {
    set_periodic_check(check_interval_, periodic_check_);
  }
}

}  // namespace tcmp::cmp
