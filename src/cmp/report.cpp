#include "cmp/report.hpp"

#include "compression/hw_cost.hpp"
#include "power/metrics.hpp"
#include "protocol/coherence_msg.hpp"

namespace tcmp::cmp {

using power::EnergyAccount;

units::Joules RunResult::link_energy() const {
  return energy.get(EnergyAccount::kLinkDynamic) + energy.get(EnergyAccount::kLinkStatic);
}

double RunResult::link_ed2p() const { return power::ed2p(link_energy(), seconds); }

double RunResult::interconnect_ed2p() const {
  return power::ed2p(interconnect_energy(), seconds);
}

double RunResult::full_cmp_ed2p() const { return power::ed2p(total_energy(), seconds); }

RunResult make_result(const CmpSystem& system) {
  return make_result(system, system.merged_stats(), system.cycles(),
                     system.measured_instructions(),
                     system.measured_compression_accesses());
}

RunResult make_result(const CmpSystem& system, const StatRegistry& stats,
                      Cycle cycles, std::uint64_t instructions,
                      std::uint64_t compression_accesses) {
  const CmpConfig& cfg = system.config();
  RunResult r;
  r.configuration = cfg.name();
  r.cycles = cycles;
  r.seconds = static_cast<double>(r.cycles.value()) / cfg.freq;
  r.instructions = instructions;

  // --- links: dynamic from toggled wire-length, static from geometry x time.
  // Wire lengths and router counts come from the network itself so both the
  // mesh and tree topologies account correctly.
  const noc::Network& net = system.network();
  const auto channels = noc::make_channels(cfg.link, cfg.link_length_mm, cfg.freq);
  for (unsigned c = 0; c < channels.size(); ++c) {
    const auto& ch = channels[c];
    // bit_dmm_hops: toggled bits x traversed link length, in 0.1 mm units.
    const auto bit_dmm = static_cast<double>(
        stats.counter_value("noc." + ch.name + ".bit_dmm_hops"));
    const units::Meters toggled{bit_dmm * 1e-4 /*m per dmm*/};
    const units::Joules e_dyn =
        toggled * ch.wires.dyn_power / cfg.freq * cfg.switching_activity;
    r.energy.add(EnergyAccount::kLinkDynamic, e_dyn);

    const double wires = static_cast<double>(ch.width_bits());
    const units::Meters plane_m{net.total_directed_link_mm(c) * 1e-3};
    r.energy.add(EnergyAccount::kLinkStatic,
                 wires * ch.wires.static_power * plane_m * r.seconds);
  }

  // --- routers: Orion-mini per-traversal events + leakage ---
  for (unsigned c = 0; c < channels.size(); ++c) {
    const auto& ch = channels[c];
    const auto traversals = static_cast<double>(
        stats.counter_value("noc." + ch.name + ".router_traversals"));
    const unsigned bits = ch.width_bits();
    r.energy.add(EnergyAccount::kRouterBuffer,
                 traversals * (cfg.router_energy.buffer_write_energy(bits) +
                               cfg.router_energy.buffer_read_energy(bits)));
    r.energy.add(EnergyAccount::kRouterCrossbar,
                 traversals * cfg.router_energy.crossbar_energy(bits));
    r.energy.add(EnergyAccount::kRouterArbiter,
                 traversals * cfg.router_energy.arbitration_per_flit);
    const units::Watts leak = cfg.router_energy.router_leakage(
        noc::kNumPorts, protocol::kNumVnets * cfg.vcs_per_vnet, cfg.buffer_flits,
        bits);
    r.energy.add(EnergyAccount::kRouterStatic,
                 leak * net.router_count(c) * r.seconds);
  }

  // --- compression hardware ---
  const auto hw = compression::scheme_hw_cost(cfg.scheme, cfg.n_tiles, cfg.freq);
  r.energy.add(EnergyAccount::kCompressionDynamic,
               static_cast<double>(compression_accesses) * hw.access_energy);
  r.energy.add(EnergyAccount::kCompressionStatic,
               hw.leakage_per_core * cfg.n_tiles * r.seconds);

  // --- cores, caches, memory (Fig. 7 denominator) ---
  const auto& cp = cfg.chip_power;
  r.energy.add(EnergyAccount::kCoreDynamic,
               static_cast<double>(r.instructions) * cp.core_energy_per_instr);
  r.energy.add(EnergyAccount::kCoreStatic,
               cp.core_leakage * cfg.n_tiles * r.seconds);
  r.energy.add(EnergyAccount::kL1Dynamic,
               static_cast<double>(stats.counter_value("l1.accesses")) * cp.l1_access);
  r.energy.add(EnergyAccount::kL2Dynamic,
               static_cast<double>(stats.counter_value("l2.accesses")) * cp.l2_access);
  r.energy.add(EnergyAccount::kCacheStatic,
               cp.cache_leakage * cfg.n_tiles * r.seconds);
  const double mem_events = static_cast<double>(stats.counter_value("mem.reads") +
                                                stats.counter_value("mem.writebacks"));
  r.energy.add(EnergyAccount::kMemoryDynamic, mem_events * cp.mem_access);

  // --- coverage, message mix, latency ---
  const auto compressed = stats.counter_value("compression.compressed");
  const auto attempts = compressed + stats.counter_value("compression.uncompressed");
  r.compression_coverage =
      attempts != 0 ? static_cast<double>(compressed) / static_cast<double>(attempts)
                    : 0.0;

  r.remote_messages = stats.counter_value("msg_remote.count");
  r.local_messages = stats.counter_value("msg_local.count");
  for (unsigned i = 0; i < protocol::kNumMsgTypes; ++i) {
    const auto type = static_cast<protocol::MsgType>(i);
    const std::string key = "msg." + std::string(protocol::to_string(type));
    const auto count = stats.counter_value(key);
    if (count != 0) r.msg_counts[protocol::to_string(type)] = count;
  }
  if (const Histogram* h = stats.find_histogram("noc.critical_latency")) {
    r.avg_critical_latency = h->scalar().mean();
  }
  for (const auto& [name, hist] : stats.histograms()) {
    if (name.rfind("noc.", 0) != 0 || hist.scalar().count() == 0) continue;
    RunResult::Quantiles q;
    q.mean = hist.scalar().mean();
    q.p50 = hist.quantile(0.50);
    q.p95 = hist.quantile(0.95);
    q.p99 = hist.quantile(0.99);
    q.count = hist.scalar().count();
    r.latency.emplace(name.substr(4), q);
  }
  return r;
}

}  // namespace tcmp::cmp
