#include "cmp/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.hpp"
#include "core/core_model.hpp"
#include "protocol/directory.hpp"
#include "protocol/l1_cache.hpp"

namespace tcmp::cmp {
namespace {

/// Round-robin turn size in the functional phase: large enough to amortize
/// the per-core switch, small enough that barrier-coupled streams interleave
/// with realistic sharing (the warm cache contents depend on the order).
constexpr std::uint64_t kTurnInstructions = 256;

/// Hard bound on a single drain: a fenced machine that cannot reach a
/// quiescent point within this many cycles has a stuck transaction.
constexpr std::uint64_t kDrainLimitCycles = 1'000'000;

std::uint64_t parse_u64(const std::string& key, const std::string& v) {
  std::size_t used = 0;
  std::uint64_t out = 0;
  try {
    out = std::stoull(v, &used);
  } catch (...) {
    used = 0;
  }
  TCMP_CHECK_MSG(used == v.size() && !v.empty(),
                 "--sample: bad numeric value (warmup/detail/period)");
  (void)key;
  return out;
}

}  // namespace

SamplingConfig SamplingConfig::parse(const std::string& spec) {
  SamplingConfig cfg;
  std::size_t at = 0;
  while (at < spec.size()) {
    std::size_t comma = spec.find(',', at);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(at, comma - at);
    at = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    TCMP_CHECK_MSG(eq != std::string::npos,
                   "--sample: expected key=value items");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    if (key == "mode") {
      TCMP_CHECK_MSG(val == "interval",
                     "--sample: the only supported mode is 'interval'");
    } else if (key == "warmup") {
      cfg.warmup = Cycle{parse_u64(key, val)};
    } else if (key == "detail") {
      cfg.detail = parse_u64(key, val);
    } else if (key == "period") {
      cfg.period = parse_u64(key, val);
    } else {
      TCMP_CHECK_MSG(false,
                     "--sample: unknown key (mode, warmup, detail, period)");
    }
  }
  TCMP_CHECK_MSG(cfg.detail > 0, "--sample: detail must be > 0");
  TCMP_CHECK_MSG(cfg.period > 0, "--sample: period must be > 0");
  return cfg;
}

SampledRun::SampledRun(CmpSystem& sys, const SamplingConfig& cfg)
    : sys_(sys), cfg_(cfg) {
  TCMP_CHECK_MSG(sys_.n_parts_ == 1,
                 "interval sampling requires --threads 1 (the functional "
                 "phase touches every tile from one thread)");
  TCMP_CHECK_MSG(sys_.obs_ == nullptr,
                 "interval sampling does not support an attached observer");
}

void SampledRun::fence_all(bool fenced) {
  for (auto& t : sys_.tiles_) t->core->set_fenced(fenced);
}

bool SampledRun::handoff_ready() const {
  for (unsigned c = 0; c < sys_.cfg_.n_tiles; ++c) {
    // tcmplint: tile-seam (--sample requires --threads 1; reads between cycles)
    const core::Core& core = *sys_.tiles_[c]->core;
    if (!(core.done() || core.drained() || sys_.at_barrier_[c])) return false;
  }
  for (const auto& t : sys_.tiles_) {
    if (!t->l1->quiescent() || !t->l1i->quiescent() || !t->dir->quiescent() ||
        !t->loopback.empty())
      return false;
  }
  return sys_.network_->quiescent() && sys_.network_->boundaries_empty();
}

void SampledRun::drain() {
  std::uint64_t guard = 0;
  while (!handoff_ready() && !sys_.aborted_) {
    TCMP_CHECK_MSG(guard < kDrainLimitCycles,
                   "sampling drain did not converge (stuck transaction)");
    sys_.step();
    ++guard;
  }
}

bool SampledRun::run_detailed(Cycle budget, Cycle max_total) {
  Cycle ran{0};
  while (ran < budget) {
    if (sys_.aborted_) return false;
    if (total_detailed_ >= max_total) return false;
    if (sys_.finished()) return true;
    sys_.step();
    ran += Cycle{1};
    total_detailed_ += Cycle{1};
  }
  return true;
}

bool SampledRun::run_window(std::uint64_t i0, std::uint64_t instr_budget,
                            Cycle max_total) {
  while (sys_.total_instructions() - i0 < instr_budget) {
    if (sys_.aborted_) return false;
    if (total_detailed_ >= max_total) return false;
    if (sys_.finished()) return true;
    sys_.step();
    total_detailed_ += Cycle{1};
  }
  return true;
}

std::uint64_t SampledRun::fast_forward(bool stop_at_warmup_boundary) {
  const unsigned n = sys_.cfg_.n_tiles;
  std::vector<std::uint64_t> remaining(n, cfg_.period);
  std::uint64_t consumed = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (unsigned c = 0; c < n; ++c) {
      // tcmplint: tile-seam (functional fast-forward; single-threaded, drained)
      core::Core& core = *sys_.tiles_[c]->core;
      std::uint64_t turn = kTurnInstructions;
      while (turn > 0 && remaining[c] > 0 && !core.done() &&
             !sys_.at_barrier_[c] &&
             !(stop_at_warmup_boundary && sys_.warmup_done_)) {
        const core::Op op = sys_.workload_->next(c);
        progress = true;
        switch (op.kind) {
          case core::OpKind::kDone: {
            core.warm_mark_done();
            remaining[c] = 0;
            // Mirror step_impl: a finishing core can release a barrier
            // everyone else is already in.
            if (sys_.waiting_ > 0) {
              unsigned done = 0;
              for (const auto& t : sys_.tiles_)
                if (t->core->done()) ++done;
              if (sys_.waiting_ + done == n) sys_.release_barrier();
            }
            break;
          }
          case core::OpKind::kBarrier:
            // Same end state tick() reaches: the core waits, the controller
            // records the arrival (and releases — including the warmup
            // boundary — when the last stream gets here).
            core.warm_arrive_barrier();
            sys_.on_barrier(c, op.count);
            break;
          case core::OpKind::kCompute: {
            core.warm_advance_istream(op.count);
            if (!sys_.warmup_done_) {
              res_.functional_warmup_instructions += op.count;
            }
            consumed += op.count;
            remaining[c] -= std::min<std::uint64_t>(op.count, remaining[c]);
            turn -= std::min<std::uint64_t>(op.count, turn);
            break;
          }
          case core::OpKind::kLoad:
          case core::OpKind::kStore:
            warm_mem(c, op.line, op.kind == core::OpKind::kStore);
            core.warm_advance_istream(1);
            if (!sys_.warmup_done_) ++res_.functional_warmup_instructions;
            ++consumed;
            --remaining[c];
            --turn;
            break;
        }
      }
    }
  }
  return consumed;
}

void SampledRun::warm_mem(unsigned core, LineAddr line, bool is_write) {
  using protocol::L1State;
  auto& tiles = sys_.tiles_;
  // tcmplint: tile-seam (functional warming; single-threaded, machine drained)
  protocol::L1Cache& l1 = *tiles[core]->l1;
  const auto st = l1.state_of(line);
  if (st.has_value()) {
    switch (*st) {
      case L1State::kM:
      case L1State::kE:
        if (is_write) {
          // Store hit: access()'s silent E->M and version bump.
          l1.warm_set_state(line, L1State::kM, l1.version_of(line) + 1);
        } else {
          l1.warm_touch(line);
        }
        return;
      case L1State::kS:
        if (!is_write) {
          l1.warm_touch(line);
          return;
        }
        break;  // store to Shared: upgrade through the home
    }
  }
  const unsigned n = sys_.cfg_.n_tiles;
  // tcmplint: tile-seam (functional warming; single-threaded, machine drained)
  protocol::Directory& home = *tiles[line.value() % n]->dir;
  const auto version = [&tiles](NodeId node, LineAddr l) {
    return tiles[node.value()]->l1->version_of(l);
  };
  const auto drop = [&tiles](NodeId node, LineAddr l) {
    tiles[node.value()]->l1->warm_drop(l);
  };
  const auto downgrade = [&tiles](NodeId node, LineAddr l) {
    // tcmplint: tile-seam (warm-callback from the home; single-threaded)
    protocol::L1Cache& owner = *tiles[node.value()]->l1;
    owner.warm_set_state(l, L1State::kS, owner.version_of(l));
  };
  const auto grant =
      home.warm_access(line, NodeId{core}, is_write, version, drop, downgrade);
  if (st.has_value()) {
    // Upgrade: the S copy stayed resident; adopt the granted state/version.
    l1.warm_set_state(line, grant.l1_state, grant.version);
    return;
  }
  if (auto ev = l1.warm_install(line, grant.l1_state, grant.version)) {
    if (ev->state == L1State::kM || ev->state == L1State::kE) {
      // tcmplint: tile-seam (victim writeback during warming; single-threaded)
      protocol::Directory& victim_home = *tiles[ev->line.value() % n]->dir;
      victim_home.warm_writeback(ev->line, NodeId{core},
                                 ev->state == L1State::kM, ev->version);
    }
    // Shared evictions are silent, exactly like the detailed protocol.
  }
}

bool SampledRun::run(Cycle max_detailed_cycles) {
  // Start (or resume — a checkpoint restores mid-flight machine state) from
  // a quiescent handoff point.
  fence_all(true);
  drain();
  // The workload's own warmup phase must never land inside a measured
  // window: end_warmup() restarts the cycle/instruction origin the full-
  // detail report measures from (and switches the directories off the
  // reduced warmup memory latency), so a window straddling the boundary
  // would mix pre-origin cycles — measured on a different machine — into
  // the post-origin extrapolation base. Consume it functionally, stopping
  // exactly at the boundary barrier. (Warmup-free workloads and restored
  // checkpoints start with warmup_done_ already true and skip this.)
  while (!sys_.warmup_done_ && !sys_.finished() && !sys_.aborted_) {
    res_.functional_instructions +=
        fast_forward(/*stop_at_warmup_boundary=*/true);
  }
  fence_all(false);
  // Detail-first: the measured phase opens with a measured window, so even
  // a workload shorter than one sampling period yields a CPI estimate — and
  // the post-warmup machine state the full-detail reference measures from
  // is inherited warm from the functional warmup, not approximated.
  while (!sys_.finished() && !sys_.aborted_) {
    // Detailed warmup re-trains timing state; its events are wiped by the
    // zero below, so the window measures a warmed machine.
    if (!run_detailed(cfg_.warmup, max_detailed_cycles)) break;
    const std::uint64_t i0 = sys_.total_instructions();
    const std::uint64_t x0 = sys_.compression_accesses();
    const Cycle c0 = sys_.now_;
    sys_.stats_.zero_all();
    const bool window_ok = run_window(
        i0, cfg_.detail * sys_.cfg_.n_tiles, max_detailed_cycles);
    // Measure at the fence point, symmetrically: misses still in flight
    // here lose their remaining stall cycles from this window, but the
    // window's head gained the mirror image — stalls of misses issued
    // during the (unmeasured) warmup whose retirements landed after c0.
    // In steady state the two boundary effects cancel. Extending dc to
    // full quiescence instead would pay every window's drain tail serially
    // — overlap the uninterrupted run never loses — and bias CPI high by
    // one drain per window.
    const Cycle dc = sys_.now_ - c0;
    const std::uint64_t di = sys_.total_instructions() - i0;
    // Counters are harvested at the same boundary as dc/di: events of
    // misses still in flight at the fence fall outside the window, but the
    // window's head holds their mirror image (completion traffic of misses
    // issued during the unmeasured warmup). Harvesting after the drain
    // instead would keep BOTH boundaries' events — double-counting one
    // handoff tail of traffic per window, which inflates every
    // per-instruction message rate the extrapolation scales up.
    accum_.merge_from(sys_.stats_);
    res_.detailed_cycles += dc;
    res_.detailed_instructions += di;
    res_.detailed_compression_accesses += sys_.compression_accesses() - x0;
    // The drain is handoff mechanics, outside the measurement entirely.
    fence_all(true);
    drain();
    if (di > 0) {
      window_cpi_.push_back(static_cast<double>(dc.value()) /
                            static_cast<double>(di));
    }
    ++res_.windows;
    if (!window_ok) break;
    if (sys_.finished() || sys_.aborted_) break;
    res_.functional_instructions += fast_forward();
    fence_all(false);
  }
  fence_all(false);
  finalize();
  res_.completed = sys_.finished() && !sys_.aborted_;
  return res_.completed;
}

void SampledRun::finalize() {
  res_.detailed_total_instructions = sys_.measured_instructions();
  const std::uint64_t functional_measured =
      res_.functional_instructions - res_.functional_warmup_instructions;
  res_.total_instructions =
      res_.detailed_total_instructions + functional_measured;
  if (res_.detailed_instructions > 0) {
    res_.cpi = static_cast<double>(res_.detailed_cycles.value()) /
               static_cast<double>(res_.detailed_instructions);
    res_.extrapolation = static_cast<double>(res_.total_instructions) /
                         static_cast<double>(res_.detailed_instructions);
  }
  const std::size_t n = window_cpi_.size();
  if (n > 0) {
    double sum = 0.0;
    for (double v : window_cpi_) sum += v;
    res_.cpi_window_mean = sum / static_cast<double>(n);
    if (n > 1) {
      double ss = 0.0;
      for (double v : window_cpi_) {
        const double d = v - res_.cpi_window_mean;
        ss += d * d;
      }
      const double var = ss / static_cast<double>(n - 1);
      res_.cpi_ci95 = 1.96 * std::sqrt(var / static_cast<double>(n));
    }
  }
  res_.estimated_cycles = Cycle{static_cast<std::uint64_t>(
      std::llround(res_.cpi * static_cast<double>(res_.total_instructions)))};
}

StatRegistry SampledRun::scaled_stats() const {
  StatRegistry out;
  const double f = res_.extrapolation;
  for (const auto& [name, v] : accum_.counters()) {
    out.counter(name) = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(v) * f));
  }
  for (const auto& [name, s] : accum_.scalars()) out.scalar(name) = s;
  for (const auto& [name, h] : accum_.histograms()) {
    out.histogram(name, h.bins().size(), h.bin_width()) = h;
  }
  return out;
}

RunResult make_sampled_result(const CmpSystem& system, const SampledRun& run) {
  const SamplingResult& s = run.result();
  const auto scaled_compression = static_cast<std::uint64_t>(std::llround(
      static_cast<double>(s.detailed_compression_accesses) * s.extrapolation));
  return make_result(system, run.scaled_stats(), s.estimated_cycles,
                     s.total_instructions, scaled_compression);
}

}  // namespace tcmp::cmp
