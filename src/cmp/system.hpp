// Full-CMP assembly and simulation driver: 16 tiles (core + L1 + L2/
// directory slice + NIC) over the (possibly heterogeneous) mesh, plus a
// global barrier controller. Single-threaded and deterministic; parallel
// parameter sweeps run one CmpSystem per configuration (bench/bench_util.hpp
// provides the sweep driver).
//
// Timing is event-scheduled (sim/kernel.hpp): every component implements the
// Scheduled contract, and run() jumps the clock across globally dead cycles
// instead of ticking an idle machine. Each *live* cycle still executes the
// full classic step() in the classic order, so results are bit-identical to
// the plain per-cycle loop (docs/kernel.md).
#pragma once

#include <array>
#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include <string>

#include "cmp/config.hpp"
#include "common/stats.hpp"
#include "core/core_model.hpp"
#include "core/workload.hpp"
#include "het/nic.hpp"
#include "noc/network.hpp"
#include "obs/flight_recorder.hpp"
#include "protocol/delay_queue.hpp"
#include "protocol/directory.hpp"
#include "protocol/icache.hpp"
#include "protocol/l1_cache.hpp"
#include "sim/kernel.hpp"

namespace tcmp::obs {
class Observer;
class SlackTelemetry;
}
namespace tcmp::sim {
class SelfProfiler;
}

namespace tcmp::cmp {

class CmpSystem {
 public:
  CmpSystem(const CmpConfig& cfg, std::shared_ptr<core::Workload> workload);
  /// Unregisters the post-mortem abort hook, if one was installed.
  ~CmpSystem();
  CmpSystem(const CmpSystem&) = delete;
  CmpSystem& operator=(const CmpSystem&) = delete;

  /// Run until every core finished and the machine drained, or `max_cycles`
  /// elapsed. Returns true when the workload completed. Skips globally dead
  /// cycles via the event kernel (see set_dead_cycle_skipping).
  bool run(Cycle max_cycles = Cycle{500'000'000});

  /// Single simulation step (tests). Always advances exactly one cycle.
  void step();

  /// Disable/enable dead-cycle skipping in run(). Results are bit-identical
  /// either way; the per-cycle loop exists for A/B measurement
  /// (bench/micro_kernel.cpp) and as a determinism cross-check.
  void set_dead_cycle_skipping(bool on) { dead_cycle_skipping_ = on; }
  [[nodiscard]] bool dead_cycle_skipping() const { return dead_cycle_skipping_; }

  /// The event kernel (tests: wake-calendar and next-wake behavior).
  [[nodiscard]] sim::SimKernel& kernel() { return kernel_; }
  [[nodiscard]] const sim::SimKernel& kernel() const { return kernel_; }

  /// Measured cycles (excludes the functional-warmup phase, if any).
  [[nodiscard]] Cycle cycles() const { return now_ - measure_start_; }
  [[nodiscard]] Cycle total_cycles() const { return now_; }
  [[nodiscard]] bool warmup_done() const { return warmup_done_; }
  [[nodiscard]] bool finished() const;
  [[nodiscard]] std::uint64_t total_instructions() const;
  [[nodiscard]] std::uint64_t compression_accesses() const;
  /// Instruction / compression-access counts for the measured phase only.
  [[nodiscard]] std::uint64_t measured_instructions() const {
    return total_instructions() - warmup_instructions_;
  }
  [[nodiscard]] std::uint64_t measured_compression_accesses() const {
    return compression_accesses() - warmup_compression_accesses_;
  }

  [[nodiscard]] const CmpConfig& config() const { return cfg_; }
  [[nodiscard]] const StatRegistry& stats() const { return stats_; }
  [[nodiscard]] StatRegistry& stats() { return stats_; }
  [[nodiscard]] core::Workload& workload() { return *workload_; }

  // Component access for tests and examples. These hand out references into
  // tile-owned state, which is exactly what the tile-escape lint polices:
  // they are sanctioned for single-threaded drivers (tests, examples,
  // verify scans) only and must never be called from sweep worker threads
  // or, later, across partition boundaries (docs/static-analysis.md).
  // tcmplint: tile-seam (single-threaded test/verify access)
  [[nodiscard]] protocol::L1Cache& l1(unsigned tile) { return *tiles_[tile]->l1; }
  // tcmplint: tile-seam (single-threaded test/verify access)
  [[nodiscard]] protocol::Directory& directory(unsigned tile) {
    return *tiles_[tile]->dir;
  }
  // tcmplint: tile-seam (single-threaded test/verify access)
  [[nodiscard]] core::Core& core(unsigned tile) { return *tiles_[tile]->core; }
  // tcmplint: tile-seam (single-threaded test/verify access)
  [[nodiscard]] het::TileNic& nic(unsigned tile) { return *tiles_[tile]->nic; }
  [[nodiscard]] noc::Network& network() { return *network_; }
  [[nodiscard]] const noc::Network& network() const { return *network_; }

  /// Human-readable machine-state snapshot (deadlock triage, debugging):
  /// per-core progress and block reasons, outstanding protocol transactions,
  /// network occupancy.
  void dump_state(std::ostream& out) const;

  /// Observe every remote (mesh-traversing) message at injection time.
  /// Used by the compression-coverage bench to capture address streams.
  using MsgHook = std::function<void(const protocol::CoherenceMsg&)>;
  void set_remote_msg_hook(MsgHook hook) { remote_hook_ = std::move(hook); }

  /// Install a periodic global check (the coherence-lint scanner): `check`
  /// runs every `interval` cycles at the end of step(); returning false
  /// aborts the run (aborted() turns true and run() stops). Interval 0 or a
  /// null function uninstalls.
  using PeriodicCheck = std::function<bool(Cycle)>;
  void set_periodic_check(Cycle interval, PeriodicCheck check);
  /// True when a periodic check failed; run() returns false from then on.
  [[nodiscard]] bool aborted() const { return aborted_; }

  /// Wire a message-lifecycle / telemetry observer into every component
  /// (network, routers, NICs, L1s, directories) and register the directory
  /// occupancy gauges. Null detaches. The observer must outlive the system
  /// (or be detached first). At levels >= kTimeseries this also enables the
  /// slack/criticality telemetry (obs/slack.hpp): messages are tagged at
  /// injection and realized slack is measured at core unstall.
  void attach_observer(obs::Observer* obs);

  /// Attach an opt-in host-time self-profiler (sim/profiler.hpp): run()
  /// switches to an instrumented loop that attributes wall time per driver
  /// section and per kernel phase (pull scan / dead-cycle skip). Null
  /// detaches (the unprofiled loop carries zero instrumentation). Results
  /// are bit-identical either way.
  void set_profiler(sim::SelfProfiler* prof);
  [[nodiscard]] sim::SelfProfiler* profiler() const { return prof_; }
  /// Profiler table plus the kernel's per-component pull-scan attribution.
  void write_self_profile(std::ostream& out) const;

  /// The always-on flight recorder: a bounded ring of recent
  /// message-lifecycle events per tile (obs/flight_recorder.hpp).
  [[nodiscard]] const obs::FlightRecorder& flight_recorder() const {
    return flight_;
  }
  /// Arm the crash post-mortem: on a TCMP_CHECK/TCMP_DCHECK abort (via the
  /// common/abort.hpp hooks) or an explicit dump_postmortem() call — e.g.
  /// after a coherence-lint abort — the flight recorder is dumped to `path`.
  /// Empty disarms.
  void set_postmortem_path(std::string path);
  [[nodiscard]] const std::string& postmortem_path() const {
    return postmortem_path_;
  }
  /// Dump the flight recorder to the armed path now (lint-abort path).
  /// Returns false when disarmed or the file could not be written.
  bool dump_postmortem() const;

 private:
  struct Tile {
    std::unique_ptr<protocol::L1Cache> l1;
    std::unique_ptr<protocol::ICache> l1i;
    std::unique_ptr<protocol::Directory> dir;
    std::unique_ptr<core::Core> core;
    std::unique_ptr<het::TileNic> nic;
    /// Tile-internal messages (L1 <-> local L2 slice) bypass the mesh.
    /// FIFO pipe: pushed with the constant local latency at non-decreasing
    /// now_, so deadlines are monotone.
    protocol::FifoDelayQueue<protocol::CoherenceMsg> loopback;
  };

  void route_outgoing(NodeId tile, protocol::CoherenceMsg msg);
  void deliver_local(NodeId tile, const protocol::CoherenceMsg& msg);
  /// Slack telemetry: is the core that benefits from `msg` (the requester
  /// whose miss it serves) currently stalled waiting for it?
  [[nodiscard]] bool beneficiary_stalled(const protocol::CoherenceMsg& msg) const;
  /// step() body, compiled with or without self-profiler laps.
  template <bool kProfiled>
  void step_impl();
  /// run() body, compiled with or without self-profiler instrumentation
  /// (the unprofiled variant is instruction-identical to the pre-profiler
  /// loop; results are bit-identical in both).
  template <bool kProfiled>
  bool run_loop(Cycle max_cycles);
  void on_barrier(unsigned core, std::uint32_t id);
  void release_barrier();
  void end_warmup();
  /// Jump the clock to `target`, bulk-accounting the blocked-core cycles the
  /// per-cycle loop would have accrued. Only valid when every cycle in
  /// (now_, target] is globally dead.
  void advance_idle(Cycle target);

  CmpConfig cfg_;
  StatRegistry stats_;
  sim::SimKernel kernel_;
  bool dead_cycle_skipping_ = true;
  /// Hoisted per-cycle conditions: the next cycle at which the time-series
  /// sampler / the periodic check may fire (kNeverCycle when detached).
  /// step() compares against these instead of re-testing obs_ != nullptr and
  /// now_ % check_interval_ every cycle; both are also kernel wake sources.
  Cycle obs_sample_due_{kNeverCycle};
  Cycle check_due_{kNeverCycle};
  std::unique_ptr<sim::Scheduled> obs_event_;
  std::unique_ptr<sim::Scheduled> check_event_;
  Cycle check_interval_{0};
  PeriodicCheck periodic_check_;
  bool aborted_ = false;
  // Interned stat handles (hot path: every routed message / barrier).
  std::array<CounterRef, protocol::kNumMsgTypes> msg_counters_{};
  CounterRef local_count_;
  CounterRef remote_count_;
  CounterRef remote_bytes_;
  CounterRef barrier_arrivals_;
  CounterRef barriers_completed_;
  std::shared_ptr<core::Workload> workload_;
  MsgHook remote_hook_;
  obs::Observer* obs_ = nullptr;
  /// Non-null iff the attached observer's slack telemetry is enabled; the
  /// injection/delivery/unstall hot paths test this single pointer.
  obs::SlackTelemetry* slack_ = nullptr;
  /// Always-on bounded message-lifecycle history (crash post-mortems).
  obs::FlightRecorder flight_;
  std::string postmortem_path_;
  std::uint64_t abort_token_ = 0;  ///< common/abort.hpp registration
  /// Opt-in self-profiler and its registered scope ids (set_profiler).
  sim::SelfProfiler* prof_ = nullptr;
  unsigned sc_obs_ = 0, sc_net_ = 0, sc_loopback_ = 0, sc_dirs_ = 0,
           sc_cores_ = 0, sc_barrier_ = 0, sc_check_ = 0, sc_drain_ = 0,
           sc_scan_ = 0, sc_idle_ = 0;
  std::unique_ptr<noc::Network> network_;
  std::vector<std::unique_ptr<Tile>> tiles_;
  Cycle now_{0};

  // Barrier controller.
  std::vector<bool> at_barrier_;
  unsigned waiting_ = 0;
  std::uint32_t pending_barrier_id_ = 0;

  // Warmup/measurement boundary.
  Cycle measure_start_{0};
  bool warmup_done_ = false;
  std::uint64_t warmup_instructions_ = 0;
  std::uint64_t warmup_compression_accesses_ = 0;
};

}  // namespace tcmp::cmp
