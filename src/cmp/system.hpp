// Full-CMP assembly and simulation driver: n_tiles tiles (core + L1 + L2/
// directory slice + NIC, 16 up to 256+ via CmpConfig::with_tiles) over the
// (possibly heterogeneous) mesh, plus a global barrier controller. Parallel
// parameter sweeps still run one CmpSystem per configuration
// (bench/bench_util.hpp provides the sweep driver).
//
// Timing is event-scheduled (sim/kernel.hpp): every component implements the
// Scheduled contract, and run() jumps the clock across globally dead cycles
// instead of ticking an idle machine. Each *live* cycle still executes the
// full classic step() in the classic order, so results are bit-identical to
// the plain per-cycle loop (docs/kernel.md).
//
// With CmpConfig::threads = K > 1 the tile array is split into K contiguous
// row-block partitions (sim/partition.hpp), each with its own SimKernel wake
// calendar and StatRegistry shard, executed in cycle lockstep on K threads.
// Cross-partition interaction is message-only: NoC flits/credits ride
// boundary channels swapped once per cycle under the >= 1-cycle link
// synchronization horizon, barrier arrivals are recorded as events and
// replayed serially in tile order, and the slack beneficiary probe reads a
// double-buffered stall snapshot. Simulation results are deterministic and
// independent of K — byte-identical to the seed's single-threaded driver at
// K = 1, equal counter maps at any K (docs/partitioning.md; the one
// documented exception is slack *classification*, which at K > 1 reads the
// previous cycle's stall snapshot instead of live core state).
#pragma once

#include <array>
#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include <string>

#include "cmp/config.hpp"
#include "common/stats.hpp"
#include "core/core_model.hpp"
#include "core/workload.hpp"
#include "het/nic.hpp"
#include "noc/network.hpp"
#include "obs/flight_recorder.hpp"
#include "protocol/delay_queue.hpp"
#include "protocol/directory.hpp"
#include "protocol/icache.hpp"
#include "protocol/l1_cache.hpp"
#include "sim/kernel.hpp"
#include "sim/partition.hpp"

namespace tcmp::obs {
class Observer;
class SlackTelemetry;
}
namespace tcmp::sim {
class SelfProfiler;
}

namespace tcmp::cmp {

class CmpSystem {
 public:
  CmpSystem(const CmpConfig& cfg, std::shared_ptr<core::Workload> workload);
  /// Unregisters the post-mortem abort hook, if one was installed.
  ~CmpSystem();
  CmpSystem(const CmpSystem&) = delete;
  CmpSystem& operator=(const CmpSystem&) = delete;

  /// Run until every core finished and the machine drained, or `max_cycles`
  /// elapsed. Returns true when the workload completed. Skips globally dead
  /// cycles via the event kernel (see set_dead_cycle_skipping).
  bool run(Cycle max_cycles = Cycle{500'000'000});

  /// Single simulation step (tests). Always advances exactly one cycle.
  void step();

  /// Disable/enable dead-cycle skipping in run(). Results are bit-identical
  /// either way; the per-cycle loop exists for A/B measurement
  /// (bench/micro_kernel.cpp) and as a determinism cross-check.
  void set_dead_cycle_skipping(bool on) { dead_cycle_skipping_ = on; }
  [[nodiscard]] bool dead_cycle_skipping() const { return dead_cycle_skipping_; }

  /// The event kernel (tests: wake-calendar and next-wake behavior). At
  /// K > 1 this is partition 0's kernel; each partition owns its own.
  [[nodiscard]] sim::SimKernel& kernel() { return parts_[0]->kernel; }
  [[nodiscard]] const sim::SimKernel& kernel() const { return parts_[0]->kernel; }
  /// Partitions the tile array is split into (1 == the seed's driver).
  [[nodiscard]] unsigned num_partitions() const { return n_parts_; }

  /// Measured cycles (excludes the functional-warmup phase, if any).
  [[nodiscard]] Cycle cycles() const { return now_ - measure_start_; }
  [[nodiscard]] Cycle total_cycles() const { return now_; }
  [[nodiscard]] bool warmup_done() const { return warmup_done_; }
  [[nodiscard]] bool finished() const;
  [[nodiscard]] std::uint64_t total_instructions() const;
  [[nodiscard]] std::uint64_t compression_accesses() const;
  /// Instruction / compression-access counts for the measured phase only.
  [[nodiscard]] std::uint64_t measured_instructions() const {
    return total_instructions() - warmup_instructions_;
  }
  [[nodiscard]] std::uint64_t measured_compression_accesses() const {
    return compression_accesses() - warmup_compression_accesses_;
  }

  [[nodiscard]] const CmpConfig& config() const { return cfg_; }
  [[nodiscard]] const StatRegistry& stats() const { return stats_; }
  [[nodiscard]] StatRegistry& stats() { return stats_; }
  /// Registry view for reports and exports: at K = 1 the registry itself; at
  /// K > 1 the partition shards folded together in partition-index order
  /// (StatRegistry::merge_from). The merge is recomputed on every call —
  /// references into a previous return value do not survive the next one —
  /// so call it at report time, not per cycle.
  [[nodiscard]] const StatRegistry& merged_stats() const;
  [[nodiscard]] core::Workload& workload() { return *workload_; }

  // Component access for tests and examples. These hand out references into
  // tile-owned state, which is exactly what the tile-escape lint polices:
  // they are sanctioned for single-threaded drivers (tests, examples,
  // verify scans) only and must never be called from sweep worker threads
  // or, later, across partition boundaries (docs/static-analysis.md).
  // tcmplint: tile-seam (single-threaded test/verify access)
  [[nodiscard]] protocol::L1Cache& l1(unsigned tile) { return *tiles_[tile]->l1; }
  // tcmplint: tile-seam (single-threaded test/verify access)
  [[nodiscard]] protocol::Directory& directory(unsigned tile) {
    return *tiles_[tile]->dir;
  }
  // tcmplint: tile-seam (single-threaded test/verify access)
  [[nodiscard]] core::Core& core(unsigned tile) { return *tiles_[tile]->core; }
  // tcmplint: tile-seam (single-threaded test/verify access)
  [[nodiscard]] het::TileNic& nic(unsigned tile) { return *tiles_[tile]->nic; }
  [[nodiscard]] noc::Network& network() { return *network_; }
  [[nodiscard]] const noc::Network& network() const { return *network_; }

  /// Human-readable machine-state snapshot (deadlock triage, debugging):
  /// per-core progress and block reasons, outstanding protocol transactions,
  /// network occupancy.
  void dump_state(std::ostream& out) const;

  /// Observe every remote (mesh-traversing) message at injection time.
  /// Used by the compression-coverage bench to capture address streams.
  using MsgHook = std::function<void(const protocol::CoherenceMsg&)>;
  void set_remote_msg_hook(MsgHook hook) { remote_hook_ = std::move(hook); }

  /// Install a periodic global check (the coherence-lint scanner): `check`
  /// runs every `interval` cycles at the end of step(); returning false
  /// aborts the run (aborted() turns true and run() stops). Interval 0 or a
  /// null function uninstalls.
  using PeriodicCheck = std::function<bool(Cycle)>;
  void set_periodic_check(Cycle interval, PeriodicCheck check);
  /// True when a periodic check failed; run() returns false from then on.
  [[nodiscard]] bool aborted() const { return aborted_; }

  /// Wire a message-lifecycle / telemetry observer into every component
  /// (network, routers, NICs, L1s, directories) and register the directory
  /// occupancy gauges. Null detaches. The observer must outlive the system
  /// (or be detached first). At levels >= kTimeseries this also enables the
  /// slack/criticality telemetry (obs/slack.hpp): messages are tagged at
  /// injection and realized slack is measured at core unstall. Observers are
  /// a single-threaded feature: attaching one requires threads == 1 (their
  /// trace/window state is shared across tiles). At K > 1 the only supported
  /// telemetry is the sharded slack path below.
  void attach_observer(obs::Observer* obs);

  /// K > 1 replacement for observer-carried slack telemetry: one
  /// SlackTelemetry shard per partition, registered on that partition's
  /// registry shard under the same stat names, so the report-time merge
  /// reassembles the single-threaded distributions. Call before run().
  void enable_slack_telemetry();
  /// Write the slack class x wire table (tcmpsim --slack-report): finalizes
  /// and reads the attached observer's telemetry at K = 1, the merged
  /// partition shards at K > 1. No-op when slack telemetry is off.
  void write_slack_table(std::ostream& out);

  /// Attach an opt-in host-time self-profiler (sim/profiler.hpp): run()
  /// switches to an instrumented loop that attributes wall time per driver
  /// section and per kernel phase (pull scan / dead-cycle skip). Null
  /// detaches (the unprofiled loop carries zero instrumentation). Results
  /// are bit-identical either way.
  void set_profiler(sim::SelfProfiler* prof);
  [[nodiscard]] sim::SelfProfiler* profiler() const { return prof_; }
  /// Profiler table plus the kernel's per-component pull-scan attribution.
  void write_self_profile(std::ostream& out) const;

  /// The always-on flight recorder: a bounded ring of recent
  /// message-lifecycle events per tile (obs/flight_recorder.hpp).
  [[nodiscard]] const obs::FlightRecorder& flight_recorder() const {
    return flight_;
  }
  /// Arm the crash post-mortem: on a TCMP_CHECK/TCMP_DCHECK abort (via the
  /// common/abort.hpp hooks) or an explicit dump_postmortem() call — e.g.
  /// after a coherence-lint abort — the flight recorder is dumped to `path`.
  /// Empty disarms.
  void set_postmortem_path(std::string path);
  [[nodiscard]] const std::string& postmortem_path() const {
    return postmortem_path_;
  }
  /// Dump the flight recorder to the armed path now (lint-abort path).
  /// Returns false when disarmed or the file could not be written.
  bool dump_postmortem() const;

  // --- Checkpoint/restore (docs/checkpointing.md) --------------------------
  // A checkpoint is taken between cycles and captures every bit of
  // simulation-visible state: cores, caches, directories, NIC compressor /
  // sequence state, routers, wake calendars, stat shards, RNGs, barrier
  // controller, and the workload's cursors (the workload must report
  // can_snapshot()). A restored run continues byte-identically to the
  // uninterrupted one at the same --threads K; the fingerprint refuses a
  // snapshot taken under a different config, workload, or K. Runtime
  // attachments (observer, periodic check, profiler, postmortem path) are
  // deliberately NOT captured — they are re-made by the driver.
  void save_checkpoint(std::ostream& out);
  void load_checkpoint(std::istream& in);
  /// Config/workload identity baked into the snapshot header.
  [[nodiscard]] std::string snapshot_fingerprint() const;

 private:
  /// One body for both archive directions (save/load_checkpoint dispatch).
  template <typename Ar>
  void snapshot_io(Ar& ar);

  friend class SampledRun;  // the sampling driver (cmp/sampling.cpp) drives
                            // fence/drain/warm phases through private state
  struct Tile {
    std::unique_ptr<protocol::L1Cache> l1;
    std::unique_ptr<protocol::ICache> l1i;
    std::unique_ptr<protocol::Directory> dir;
    std::unique_ptr<core::Core> core;
    std::unique_ptr<het::TileNic> nic;
    /// Tile-internal messages (L1 <-> local L2 slice) bypass the mesh.
    /// FIFO pipe: pushed with the constant local latency at non-decreasing
    /// now_, so deadlines are monotone.
    protocol::FifoDelayQueue<protocol::CoherenceMsg> loopback;
  };

  /// A core's barrier arrival or done transition observed during the
  /// parallel phase; replayed serially in tile order.
  struct BarrierEvent {
    unsigned core = 0;
    std::uint32_t id = 0;   ///< barrier id (arrivals only)
    bool done = false;      ///< true: done transition, false: barrier arrival
  };

  /// One partition's private simulation state (docs/partitioning.md). At
  /// K = 1 there is exactly one, whose shard aliases stats_ — the seed's
  /// single-kernel, single-registry driver.
  struct Partition {
    sim::SimKernel kernel;
    std::unique_ptr<StatRegistry> owned_shard;  ///< null for partition 0
    StatRegistry* shard = nullptr;              ///< == &stats_ for partition 0
    /// Interned per-shard handles for the driver-level message counters
    /// (route_outgoing runs on the owning partition's thread).
    std::array<CounterRef, protocol::kNumMsgTypes> msg_counters{};
    CounterRef local_count;
    CounterRef remote_count;
    CounterRef remote_bytes;
    /// K > 1: adapter exposing Network::next_event_partition to the kernel.
    std::unique_ptr<sim::Scheduled> net_event;
    /// Barrier arrivals / done transitions recorded (tile-ordered) during
    /// the parallel phase, replayed serially (replay_barrier_events).
    std::vector<BarrierEvent> events;
    /// K > 1 slack shard (enable_slack_telemetry); null when slack is off.
    std::unique_ptr<obs::SlackTelemetry> slack;
    // Epilogue inputs, written by the owning thread at the end of its
    // parallel phase and read serially between the barriers.
    bool finished = false;
    Cycle next_wake{0};
  };

  /// How on_barrier reacts: the seed's immediate serial handling (K = 1),
  /// event recording (K > 1 parallel phase), or direct replay handling
  /// (re-ticked cores inside replay_barrier_events). Written only between
  /// the cycle barriers, so parallel-phase reads are race-free.
  enum class BarrierMode : std::uint8_t { kSerial, kRecord, kReplay };

  void route_outgoing(NodeId tile, protocol::CoherenceMsg msg);
  void deliver_local(NodeId tile, const protocol::CoherenceMsg& msg);
  /// Slack telemetry: is the core that benefits from `msg` (the requester
  /// whose miss it serves) currently stalled waiting for it? At K > 1 this
  /// reads the previous cycle's published stall snapshot — the cross-
  /// partition form of the probe (docs/partitioning.md).
  [[nodiscard]] bool beneficiary_stalled(const protocol::CoherenceMsg& msg) const;
  /// The slack telemetry sink for events on `tile`: the observer's (K = 1)
  /// or the owning partition's shard (K > 1); null when slack is off.
  [[nodiscard]] obs::SlackTelemetry* slack_for(unsigned tile) const {
    return n_parts_ == 1 ? slack_ : parts_[part_of_[tile]]->slack.get();
  }
  [[nodiscard]] std::vector<std::string> wire_class_names() const;
  /// step() body, compiled with or without self-profiler laps.
  template <bool kProfiled>
  void step_impl();
  /// run() body, compiled with or without self-profiler instrumentation
  /// (the unprofiled variant is instruction-identical to the pre-profiler
  /// loop; results are bit-identical in both).
  template <bool kProfiled>
  bool run_loop(Cycle max_cycles);
  // --- Partitioned driver (K > 1; see docs/partitioning.md) ---------------
  /// Cycle-lockstep loop: K - 1 worker threads plus this thread as the
  /// partition-0 worker and coordinator, two spin-barrier waits per live
  /// cycle, serial epilogue in between iterations.
  bool run_partitioned(Cycle max_cycles);
  /// step() at K > 1: the same cycle, with the partition phases executed
  /// sequentially on the calling thread (boundary double-buffering makes
  /// sequential and parallel execution identical).
  void step_partitioned();
  /// Partition p's share of one live cycle: drain boundary events, tick the
  /// partition's routers/lanes, pop loopbacks, tick directories and cores
  /// (recording barrier events), publish the stall snapshot, compute the
  /// partition's finished flag and next wake.
  void parallel_phase(unsigned p);
  /// Between the cycle's barriers: barrier-event replay, periodic check,
  /// boundary exchange. Returns the earliest next live cycle (kNeverCycle
  /// when nothing is pending) and sets epilogue_finished_.
  Cycle serial_epilogue();
  /// Replay the parallel phase's barrier arrivals / done transitions in tile
  /// order, reproducing the serial driver's mid-cycle releases (undo the
  /// provisionally blocked ticks, release, re-tick). Returns true when any
  /// release happened.
  bool replay_barrier_events();
  /// Serial-order handling of one barrier arrival during replay.
  void replay_arrival(unsigned core, std::uint32_t id);
  [[nodiscard]] bool partition_finished(unsigned p) const;
  void on_barrier(unsigned core, std::uint32_t id);
  void release_barrier();
  void end_warmup();
  /// Jump the clock to `target`, bulk-accounting the blocked-core cycles the
  /// per-cycle loop would have accrued. Only valid when every cycle in
  /// (now_, target] is globally dead.
  void advance_idle(Cycle target);

  CmpConfig cfg_;
  // Serialized through the per-partition shard pointers in the checkpoint's
  // stats section, which alias this registry.
  // tcmplint: snapshot-exempt (saved via the aliasing per-partition shards)
  StatRegistry stats_;
  // tcmplint: snapshot-exempt (config-derived; rebuilt by the constructor)
  sim::PartitionPlan plan_;
  unsigned n_parts_ = 1;
  // tcmplint: snapshot-exempt (derived from plan_; rebuilt by the ctor)
  std::vector<unsigned> part_of_;  ///< [tile] owning partition
  std::vector<std::unique_ptr<Partition>> parts_;
  /// Merge cache behind merged_stats() (K > 1 report path).
  // tcmplint: snapshot-exempt (cache; recomputed on demand after restore)
  mutable StatRegistry merged_;
  // tcmplint: snapshot-exempt (config toggle, not simulation state)
  bool dead_cycle_skipping_ = true;
  /// Hoisted per-cycle conditions: the next cycle at which the time-series
  /// sampler / the periodic check may fire (kNeverCycle when detached).
  /// step() compares against these instead of re-testing obs_ != nullptr and
  /// now_ % check_interval_ every cycle; both are also kernel wake sources.
  // tcmplint: snapshot-exempt (re-derived by attach_observer after restore)
  Cycle obs_sample_due_{kNeverCycle};
  // tcmplint: snapshot-exempt (re-anchored by load_checkpoint)
  Cycle check_due_{kNeverCycle};
  // tcmplint: snapshot-exempt (kernel wake registration; attach re-creates)
  std::unique_ptr<sim::Scheduled> obs_event_;
  // tcmplint: snapshot-exempt (kernel wake registration; attach re-creates)
  std::unique_ptr<sim::Scheduled> check_event_;
  // tcmplint: snapshot-exempt (runtime attachment; set_periodic_check)
  Cycle check_interval_{0};
  // tcmplint: snapshot-exempt (runtime attachment; set_periodic_check)
  PeriodicCheck periodic_check_;
  // tcmplint: snapshot-exempt (save_checkpoint refuses aborted runs)
  bool aborted_ = false;
  // Interned stat handles for the serially-handled barrier controller
  // (shard 0; the per-message counters live in Partition::msg_counters).
  CounterRef barrier_arrivals_;
  CounterRef barriers_completed_;
  std::shared_ptr<core::Workload> workload_;
  // tcmplint: snapshot-exempt (runtime attachment, re-installed after restore)
  MsgHook remote_hook_;
  obs::Observer* obs_ = nullptr;
  /// Non-null iff the attached observer's slack telemetry is enabled; the
  /// injection/delivery/unstall hot paths test this single pointer.
  obs::SlackTelemetry* slack_ = nullptr;
  /// Always-on bounded message-lifecycle history (crash post-mortems).
  // tcmplint: snapshot-exempt (host-side debugging ring, never sim input)
  obs::FlightRecorder flight_;
  // tcmplint: snapshot-exempt (host-side crash plumbing, never sim input)
  std::string postmortem_path_;
  // tcmplint: snapshot-exempt (process-local abort registration)
  std::uint64_t abort_token_ = 0;  ///< common/abort.hpp registration
  /// Opt-in self-profiler and its registered scope ids (set_profiler).
  sim::SelfProfiler* prof_ = nullptr;
  // tcmplint: snapshot-exempt (profiler scope ids; set_profiler re-registers)
  unsigned sc_obs_ = 0, sc_net_ = 0, sc_loopback_ = 0, sc_dirs_ = 0,
           sc_cores_ = 0, sc_barrier_ = 0, sc_check_ = 0, sc_drain_ = 0,
           sc_scan_ = 0, sc_idle_ = 0;
  std::unique_ptr<noc::Network> network_;
  std::vector<std::unique_ptr<Tile>> tiles_;
  Cycle now_{0};

  // Barrier controller. At K > 1 this state is touched only serially (the
  // parallel phase records events; replay_barrier_events applies them).
  std::vector<bool> at_barrier_;
  unsigned waiting_ = 0;
  std::uint32_t pending_barrier_id_ = 0;
  // tcmplint: snapshot-exempt (derived from cfg_.threads by the constructor)
  BarrierMode barrier_mode_ = BarrierMode::kSerial;
  // replay_barrier_events working state (serial epilogue only): scratch that
  // is always consumed before the between-cycles checkpoint boundary.
  // tcmplint: snapshot-exempt (epilogue scratch, idle between cycles)
  unsigned replay_done_count_ = 0;
  // tcmplint: snapshot-exempt (epilogue scratch, idle between cycles)
  std::vector<bool> replay_retick_;
  // tcmplint: snapshot-exempt (epilogue scratch, idle between cycles)
  bool replay_any_action_ = false;
  // tcmplint: snapshot-exempt (epilogue scratch, recomputed every cycle)
  bool epilogue_finished_ = false;
  /// Double-buffered per-tile stall snapshots for the K > 1 slack probe:
  /// the parallel phase writes next (own tiles only), the serial epilogue
  /// swaps, beneficiary_stalled reads published. Sized only when slack
  /// telemetry is enabled at K > 1.
  std::vector<core::StallSnapshot> stall_published_;
  std::vector<core::StallSnapshot> stall_next_;

  // Warmup/measurement boundary.
  Cycle measure_start_{0};
  bool warmup_done_ = false;
  std::uint64_t warmup_instructions_ = 0;
  std::uint64_t warmup_compression_accesses_ = 0;
};

}  // namespace tcmp::cmp
