#include "common/check.hpp"
#include "compression/compressor.hpp"
#include "compression/dbrc.hpp"
#include "compression/stride.hpp"
#include "compression/trivial.hpp"

namespace tcmp::compression {

CompressorPair make_compressor(const SchemeConfig& cfg, unsigned n_nodes) {
  switch (cfg.kind) {
    case SchemeKind::kNone:
      return {std::make_unique<NullSender>(), std::make_unique<NullReceiver>()};
    case SchemeKind::kStride:
      return {std::make_unique<StrideSender>(cfg.low_bytes, n_nodes),
              std::make_unique<StrideReceiver>(cfg.low_bytes, n_nodes)};
    case SchemeKind::kDbrc:
      if (cfg.idealized_mirrors) {
        // Receiver mirrors are assumed synchronized (the paper's model):
        // reconstruction always succeeds; the mirror read is still charged.
        return {std::make_unique<DbrcSender>(cfg.entries, cfg.low_bytes, n_nodes,
                                             /*idealized_mirrors=*/true),
                std::make_unique<IdealMirrorReceiver>()};
      }
      return {std::make_unique<DbrcSender>(cfg.entries, cfg.low_bytes, n_nodes,
                                           /*idealized_mirrors=*/false),
              std::make_unique<DbrcReceiver>(cfg.entries, cfg.low_bytes, n_nodes)};
    case SchemeKind::kPerfect:
      return {std::make_unique<PerfectSender>(), std::make_unique<PerfectReceiver>()};
  }
  TCMP_CHECK(false);
  return {};
}

}  // namespace tcmp::compression
