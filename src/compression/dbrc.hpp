// Dynamic Base Register Caching (Farrens & Park [8]), adapted to a tiled CMP
// as in Fig. 1 (left).
//
// The sender keeps ONE compression cache per message class, content-addressed
// on the high-order bits of the line address, with true-LRU replacement. In a
// 16-node network the receivers' mirror register files only observe messages
// addressed to them, so each sender entry carries a per-destination valid
// bit-vector: a compressed index is sent to a destination only if that
// destination is known to hold the entry; otherwise the full address travels
// together with the entry index, installing/updating the receiver's mirror.
// This keeps sender and all 16 receiver mirrors coherent with exactly the
// hardware inventory Table 1 charges (1 sending structure + 16 receiving
// structures per class per core).
#pragma once

#include <cstdint>
#include <vector>

#include "common/node_set.hpp"
#include "compression/compressor.hpp"

namespace tcmp::compression {

class DbrcSender final : public SenderCompressor {
 public:
  DbrcSender(unsigned entries, unsigned low_bytes, unsigned n_nodes,
             bool idealized_mirrors = true);

  Encoding compress(NodeId dst, LineAddr line) override;

  /// Fraction of compress() calls that produced a compressed encoding.
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

  /// Read-only view of one compression-cache entry (verify lint: the
  /// runtime mirror-consistency scan compares these against receiver state).
  /// `hi_tag` is the raw high-order bit pattern of a line address, not a
  /// full LineAddr — hence the plain representation type.
  struct EntrySnapshot {
    std::uint64_t hi_tag = 0;
    NodeSet dest_valid;
    bool valid = false;
  };
  [[nodiscard]] unsigned num_entries() const {
    return static_cast<unsigned>(entries_.size());
  }
  [[nodiscard]] EntrySnapshot entry_snapshot(unsigned index) const {
    const Entry& e = entries_[index];
    return EntrySnapshot{e.hi_tag, e.dest_valid, e.valid};
  }
  [[nodiscard]] bool idealized_mirrors() const { return idealized_mirrors_; }

  /// Checkpoint save/load: compression-cache entries, LRU clock and hit
  /// counters restore exactly (docs/checkpointing.md).
  void save(SnapshotWriter& w) const override {
    SenderCompressor::save(w);
    const_cast<DbrcSender*>(this)->snapshot_io(w);
  }
  void load(SnapshotReader& r) override {
    SenderCompressor::load(r);
    snapshot_io(r);
  }

 private:
  struct Entry {
    std::uint64_t hi_tag = 0;
    NodeSet dest_valid;  ///< bit i: receiver i's mirror holds this entry
    std::uint64_t lru_stamp = 0;
    bool valid = false;

    template <typename Ar>
    void snapshot_io(Ar& ar) {
      ar.field(hi_tag);
      ar.field(dest_valid);
      ar.field(lru_stamp);
      ar.field(valid);
    }
  };

  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(entries_);
    ar.verify(low_bytes_);
    ar.verify(n_nodes_);
    ar.verify(idealized_mirrors_);
    ar.field(clock_);
    ar.field(hits_);
    ar.field(misses_);
  }

  [[nodiscard]] std::uint64_t hi_of(LineAddr line) const {
    return line.value() >> (8 * low_bytes_);
  }
  [[nodiscard]] std::uint64_t lo_of(LineAddr line) const {
    return line.value() & ((std::uint64_t{1} << (8 * low_bytes_)) - 1);
  }

  std::vector<Entry> entries_;
  unsigned low_bytes_;
  unsigned n_nodes_;
  bool idealized_mirrors_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

class DbrcReceiver final : public ReceiverDecompressor {
 public:
  DbrcReceiver(unsigned entries, unsigned low_bytes, unsigned n_nodes);

  LineAddr decode(NodeId src, const Encoding& enc, LineAddr full_line) override;

  /// Mirror register content (verify lint): raw high-order tag bits.
  [[nodiscard]] std::uint64_t mirror_tag(NodeId src, unsigned index) const {
    return mirror_[src][index];
  }

  /// Checkpoint save/load: the per-sender mirror tags restore exactly so a
  /// resumed run decodes the identical address sequence.
  void save(SnapshotWriter& w) const override {
    ReceiverDecompressor::save(w);
    const_cast<DbrcReceiver*>(this)->snapshot_io(w);
  }
  void load(SnapshotReader& r) override {
    ReceiverDecompressor::load(r);
    snapshot_io(r);
  }

 private:
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(mirror_);
    ar.verify(low_bytes_);
  }

  // mirror_[src][index] = high-order tag of sender src's entry.
  std::vector<std::vector<std::uint64_t>> mirror_;
  unsigned low_bytes_;
};

}  // namespace tcmp::compression
