// Degenerate compressors: Perfect (oracle: every address compresses, used for
// the solid potential-improvement lines of Fig. 6) and Null (nothing
// compresses; the baseline path).
#pragma once

#include "compression/compressor.hpp"

namespace tcmp::compression {

class PerfectSender final : public SenderCompressor {
 public:
  Encoding compress(NodeId /*dst*/, LineAddr line) override {
    Encoding enc;
    enc.compressed = true;
    enc.low_bits = line.value();  // oracle: receiver reconstructs for free
    return enc;
  }
};

class PerfectReceiver final : public ReceiverDecompressor {
 public:
  LineAddr decode(NodeId /*src*/, const Encoding& enc, LineAddr full_line) override {
    return enc.compressed ? LineAddr{enc.low_bits} : full_line;
  }
};

/// Receiver for idealized-mirror DBRC: reconstruction is assumed exact (the
/// message's functional address is authoritative); the register-file access
/// is still counted for energy.
class IdealMirrorReceiver final : public ReceiverDecompressor {
 public:
  LineAddr decode(NodeId /*src*/, const Encoding& enc, LineAddr full_line) override {
    if (enc.compressed) {
      ++accesses_.lookups;
    } else if (enc.install) {
      ++accesses_.updates;
    }
    return full_line;
  }
};

class NullSender final : public SenderCompressor {
 public:
  Encoding compress(NodeId /*dst*/, LineAddr /*line*/) override { return Encoding{}; }
};

class NullReceiver final : public ReceiverDecompressor {
 public:
  LineAddr decode(NodeId /*src*/, const Encoding& /*enc*/, LineAddr full_line) override {
    return full_line;
  }
};

}  // namespace tcmp::compression
