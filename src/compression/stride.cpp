#include "compression/stride.hpp"

#include "common/check.hpp"

namespace tcmp::compression {

StrideSender::StrideSender(unsigned low_bytes, unsigned n_nodes)
    : base_(n_nodes, LineAddr{}), valid_(n_nodes, false), low_bytes_(low_bytes) {
  TCMP_CHECK(low_bytes == 1 || low_bytes == 2);
}

bool StrideSender::fits(std::int64_t delta, unsigned low_bytes) {
  const std::int64_t limit = std::int64_t{1} << (8 * low_bytes - 1);
  return delta >= -limit && delta < limit;
}

Encoding StrideSender::compress(NodeId dst, LineAddr line) {
  TCMP_DCHECK(dst < base_.size());
  ++accesses_.lookups;
  Encoding enc;
  if (valid_[dst]) {
    const std::int64_t delta = static_cast<std::int64_t>(line.value()) -
                               static_cast<std::int64_t>(base_[dst].value());
    if (fits(delta, low_bytes_)) {
      ++hits_;
      enc.compressed = true;
      // Two's-complement truncation to low_bytes; the receiver sign-extends.
      enc.low_bits = static_cast<std::uint64_t>(delta) &
                     ((std::uint64_t{1} << (8 * low_bytes_)) - 1);
    } else {
      ++misses_;
      enc.install = true;
    }
  } else {
    ++misses_;
    enc.install = true;
    valid_[dst] = true;
  }
  base_[dst] = line;
  ++accesses_.updates;
  return enc;
}

StrideReceiver::StrideReceiver(unsigned low_bytes, unsigned n_nodes)
    : base_(n_nodes, LineAddr{}), low_bytes_(low_bytes) {}

LineAddr StrideReceiver::decode(NodeId src, const Encoding& enc, LineAddr full_line) {
  TCMP_DCHECK(src < base_.size());
  ++accesses_.updates;
  if (!enc.compressed) {
    base_[src] = full_line;
    return full_line;
  }
  // Sign-extend the transmitted delta.
  const unsigned bits = 8 * low_bytes_;
  std::int64_t delta = static_cast<std::int64_t>(enc.low_bits);
  if ((enc.low_bits >> (bits - 1)) & 1) delta -= std::int64_t{1} << bits;
  const LineAddr line{static_cast<std::uint64_t>(
      static_cast<std::int64_t>(base_[src].value()) + delta)};
  base_[src] = line;
  return line;
}

}  // namespace tcmp::compression
