#include "compression/scheme.hpp"

#include "common/check.hpp"

namespace tcmp::compression {

std::string SchemeConfig::name() const {
  switch (kind) {
    case SchemeKind::kNone:
      return "none";
    case SchemeKind::kStride:
      return std::to_string(low_bytes) + "-byte Stride";
    case SchemeKind::kDbrc:
      return std::to_string(entries) + "-entry DBRC (" + std::to_string(low_bytes) +
             "B LO)";
    case SchemeKind::kPerfect:
      return "Perfect (" + std::to_string(vl_width_bytes()) + "B VL)";
  }
  return "?";
}

unsigned SchemeConfig::compressed_addr_bytes() const {
  switch (kind) {
    case SchemeKind::kNone:
      return 8;  // full address, never compressed
    case SchemeKind::kStride:
    case SchemeKind::kDbrc:
      TCMP_CHECK(low_bytes == 1 || low_bytes == 2);
      return low_bytes;
    case SchemeKind::kPerfect:
      return low_bytes;  // 0 for the 3-byte VL configuration
  }
  return 8;
}

}  // namespace tcmp::compression
