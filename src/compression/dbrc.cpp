#include "compression/dbrc.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tcmp::compression {

DbrcSender::DbrcSender(unsigned entries, unsigned low_bytes, unsigned n_nodes,
                       bool idealized_mirrors)
    : entries_(entries),
      low_bytes_(low_bytes),
      n_nodes_(n_nodes),
      idealized_mirrors_(idealized_mirrors) {
  TCMP_CHECK(entries >= 1 && entries <= 256);
  TCMP_CHECK(low_bytes == 1 || low_bytes == 2);
  TCMP_CHECK(n_nodes >= 2 && n_nodes <= NodeSet::kMaxNodes);
}

Encoding DbrcSender::compress(NodeId dst, LineAddr line) {
  TCMP_DCHECK(dst < n_nodes_);
  const std::uint64_t hi = hi_of(line);
  ++clock_;
  ++accesses_.lookups;

  // Content-addressed lookup on the high-order bits.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (!e.valid || e.hi_tag != hi) continue;
    e.lru_stamp = clock_;
    Encoding enc;
    enc.index = static_cast<std::uint8_t>(i);
    if (idealized_mirrors_ || e.dest_valid.test(dst)) {
      ++hits_;
      enc.compressed = true;
      enc.low_bits = lo_of(line);
    } else {
      // The entry exists but this destination has never seen it: send the
      // full address once and mark the mirror as installed.
      ++misses_;
      e.dest_valid.set(dst);
      enc.install = true;
      ++accesses_.updates;
    }
    return enc;
  }

  // Miss: evict the true-LRU entry; only `dst` will hold the new mirror.
  ++misses_;
  auto victim = std::min_element(entries_.begin(), entries_.end(),
                                 [](const Entry& a, const Entry& b) {
                                   if (a.valid != b.valid) return !a.valid;
                                   return a.lru_stamp < b.lru_stamp;
                                 });
  victim->valid = true;
  victim->hi_tag = hi;
  victim->dest_valid.clear();
  victim->dest_valid.set(dst);
  victim->lru_stamp = clock_;
  ++accesses_.updates;

  Encoding enc;
  enc.index = static_cast<std::uint8_t>(victim - entries_.begin());
  enc.install = true;
  return enc;
}

DbrcReceiver::DbrcReceiver(unsigned entries, unsigned low_bytes, unsigned n_nodes)
    : mirror_(n_nodes, std::vector<std::uint64_t>(entries, 0)), low_bytes_(low_bytes) {}

LineAddr DbrcReceiver::decode(NodeId src, const Encoding& enc, LineAddr full_line) {
  TCMP_DCHECK(src < mirror_.size());
  auto& regs = mirror_[src];
  TCMP_CHECK_MSG(enc.index < regs.size(), "DBRC index out of range");
  if (enc.compressed) {
    ++accesses_.lookups;
    return LineAddr{(regs[enc.index] << (8 * low_bytes_)) | enc.low_bits};
  }
  if (enc.install) {
    ++accesses_.updates;
    regs[enc.index] = full_line.value() >> (8 * low_bytes_);
  }
  return full_line;
}

}  // namespace tcmp::compression
