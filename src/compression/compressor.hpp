// Sender/receiver compressor interfaces.
//
// One SenderCompressor instance lives at each tile's network interface per
// message class (requests vs. coherence commands); one ReceiverDecompressor
// per tile per class decodes messages from all 16 possible senders.
//
// The simulator carries the true address in every message for functional
// correctness and *additionally* runs the decompressor, asserting that the
// reconstructed address matches — any sender/receiver state divergence (e.g.
// from channel reordering) trips a TCMP_CHECK instead of silently corrupting
// results.
#pragma once

#include <cstdint>
#include <memory>

#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "compression/scheme.hpp"

namespace tcmp::compression {

/// What travels on the wire for the address portion of a message.
struct Encoding {
  bool compressed = false;
  /// DBRC: compression-cache entry this address maps to (valid for both
  /// compressed sends and uncompressed installs). Unused by Stride/Perfect.
  std::uint8_t index = 0;
  /// True when an uncompressed send installs/updates receiver state.
  bool install = false;
  /// The uncompressed low-order bytes of the line address (compressed sends).
  std::uint64_t low_bits = 0;

  /// Checkpoint serialization (common/snapshot.hpp).
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(compressed);
    ar.field(index);
    ar.field(install);
    ar.field(low_bits);
  }
};

/// Access counters for energy accounting: each table lookup/update costs one
/// cacti_mini access.
struct AccessCounters {
  std::uint64_t lookups = 0;
  std::uint64_t updates = 0;
  [[nodiscard]] std::uint64_t total() const { return lookups + updates; }

  /// Checkpoint serialization (common/snapshot.hpp): the counters feed the
  /// energy report, so they restore exactly.
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(lookups);
    ar.field(updates);
  }
};

class SenderCompressor {
 public:
  virtual ~SenderCompressor() = default;

  /// Encode `line` (a line address) for destination `dst`, updating sender
  /// state.
  virtual Encoding compress(NodeId dst, LineAddr line) = 0;

  /// Checkpoint save/load (common/snapshot.hpp): stateful schemes override,
  /// chain to the base for the energy counters, and serialize their tables;
  /// the compressor state restores exactly so a resumed run encodes the
  /// identical hit/miss sequence. The stateless schemes inherit this as-is.
  virtual void save(SnapshotWriter& w) const { w.field(accesses_); }
  virtual void load(SnapshotReader& r) { r.field(accesses_); }

  [[nodiscard]] const AccessCounters& accesses() const { return accesses_; }

 protected:
  AccessCounters accesses_;
};

class ReceiverDecompressor {
 public:
  virtual ~ReceiverDecompressor() = default;

  /// Decode a message from `src`, updating receiver state. For uncompressed
  /// messages `full_line` is the address carried on the wire; for compressed
  /// messages it is ignored and the address is reconstructed from state.
  virtual LineAddr decode(NodeId src, const Encoding& enc, LineAddr full_line) = 0;

  /// Checkpoint save/load — same contract as SenderCompressor::save.
  virtual void save(SnapshotWriter& w) const { w.field(accesses_); }
  virtual void load(SnapshotReader& r) { r.field(accesses_); }

  [[nodiscard]] const AccessCounters& accesses() const { return accesses_; }

 protected:
  AccessCounters accesses_;
};

struct CompressorPair {
  std::unique_ptr<SenderCompressor> sender;
  std::unique_ptr<ReceiverDecompressor> receiver;
};

/// Build the sender/receiver implementation for a scheme in an `n_nodes` CMP.
[[nodiscard]] CompressorPair make_compressor(const SchemeConfig& cfg, unsigned n_nodes);

}  // namespace tcmp::compression
