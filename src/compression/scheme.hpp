// Compression scheme configuration (paper Sec. 3.1).
//
// Compression operates on the 64-bit *line* address carried by requests and
// coherence commands. A scheme splits the line address into `low_bytes` of
// uncompressed low-order bits plus a high-order part that is either matched
// in a compression cache (DBRC) or differenced against a base register
// (Stride). On a hit, only the low-order bytes (plus a small index folded
// into the 3-byte control header) travel on the wire.
#pragma once

#include <string>

namespace tcmp::compression {

enum class SchemeKind { kNone, kStride, kDbrc, kPerfect };

/// Requests and coherence commands use separate hardware structures "to
/// avoid destructive interferences between both address streams" (Sec. 3.1).
enum class MsgClass : unsigned { kRequest = 0, kCommand = 1 };
inline constexpr unsigned kNumMsgClasses = 2;

struct SchemeConfig {
  SchemeKind kind = SchemeKind::kNone;
  unsigned entries = 4;    ///< DBRC compression-cache entries (4/16/64)
  unsigned low_bytes = 2;  ///< uncompressed low-order bytes (1 or 2)
  /// DBRC mirror model. true (default, the paper's model): receiver register
  /// files are assumed synchronized with the sender cache, so any tag hit
  /// compresses. false: conservative point-to-point design where each entry
  /// tracks which destinations hold it (per-destination valid bits) and the
  /// first send of an entry to each destination goes uncompressed — see
  /// bench/ablation_dbrc_mirrors for its coverage cost.
  bool idealized_mirrors = true;

  [[nodiscard]] std::string name() const;

  /// Address bytes on the wire when compression succeeds (0 for Perfect).
  [[nodiscard]] unsigned compressed_addr_bytes() const;

  /// VL bundle width this scheme requires: 3-byte control header +
  /// compressed address (paper Sec. 4.3: 4-5 bytes; 3 bytes for Perfect).
  [[nodiscard]] unsigned vl_width_bytes() const { return 3 + compressed_addr_bytes(); }

  [[nodiscard]] bool enabled() const { return kind != SchemeKind::kNone; }

  // Named configurations evaluated in the paper.
  static SchemeConfig none() { return {SchemeKind::kNone, 0, 0}; }
  static SchemeConfig stride(unsigned low_bytes) {
    return {SchemeKind::kStride, 0, low_bytes};
  }
  static SchemeConfig dbrc(unsigned entries, unsigned low_bytes) {
    return {SchemeKind::kDbrc, entries, low_bytes};
  }
  static SchemeConfig perfect(unsigned vl_bytes = 3) {
    // Perfect compression with a chosen VL width: the paper's three solid
    // lines in Fig. 6 are perfect coverage at 3/4/5-byte VL bundles.
    return {SchemeKind::kPerfect, 0, vl_bytes - 3};
  }

  friend bool operator==(const SchemeConfig&, const SchemeConfig&) = default;
};

}  // namespace tcmp::compression
