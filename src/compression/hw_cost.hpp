// Hardware cost aggregation for a compression scheme in an n-core CMP —
// the quantities of Table 1 (per-core totals) plus the per-access energies
// the simulator charges at run time.
#pragma once

#include "compression/scheme.hpp"
#include "power/cacti_mini.hpp"

namespace tcmp::compression {

struct SchemeHwCost {
  unsigned structures_per_core = 0;  ///< arrays counted per core (all classes)
  unsigned storage_bytes_per_core = 0;
  double area_mm2_per_core = 0.0;
  double leakage_w_per_core = 0.0;
  /// Energy of one table access (lookup or update) of one structure.
  double access_energy_j = 0.0;
  /// "Max. Dyn. Power" in the Table 1 sense: every structure of every core...
  /// accessed each cycle at f — reported per core.
  double max_dyn_power_w_per_core = 0.0;
};

/// Cost using the paper's hardware inventory: per message class, 1 sending
/// structure + n_nodes receiving structures per core, each of
/// `entries * 8 bytes` (DBRC) or one 8-byte register (Stride).
[[nodiscard]] SchemeHwCost scheme_hw_cost(const SchemeConfig& cfg, unsigned n_nodes,
                                          double freq_hz = 4e9);

}  // namespace tcmp::compression
