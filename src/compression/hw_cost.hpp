// Hardware cost aggregation for a compression scheme in an n-core CMP —
// the quantities of Table 1 (per-core totals) plus the per-access energies
// the simulator charges at run time.
#pragma once

#include "common/units.hpp"
#include "compression/scheme.hpp"
#include "power/cacti_mini.hpp"

namespace tcmp::compression {

struct SchemeHwCost {
  unsigned structures_per_core = 0;  ///< arrays counted per core (all classes)
  unsigned storage_bytes_per_core = 0;
  units::SquareMeters area_per_core;
  units::Watts leakage_per_core;
  /// Energy of one table access (lookup or update) of one structure.
  units::Joules access_energy;
  /// "Max. Dyn. Power" in the Table 1 sense: every structure of every core...
  /// accessed each cycle at f — reported per core.
  units::Watts max_dyn_power_per_core;
};

/// Cost using the paper's hardware inventory: per message class, 1 sending
/// structure + n_nodes receiving structures per core, each of
/// `entries * 8 bytes` (DBRC) or one 8-byte register (Stride).
[[nodiscard]] SchemeHwCost scheme_hw_cost(const SchemeConfig& cfg, unsigned n_nodes,
                                          units::Hertz freq = units::hertz(4e9));

}  // namespace tcmp::compression
