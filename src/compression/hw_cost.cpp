#include "compression/hw_cost.hpp"

#include "common/check.hpp"

namespace tcmp::compression {

SchemeHwCost scheme_hw_cost(const SchemeConfig& cfg, unsigned n_nodes,
                            units::Hertz freq) {
  SchemeHwCost cost;
  if (cfg.kind == SchemeKind::kNone || cfg.kind == SchemeKind::kPerfect) {
    return cost;  // no hardware (Perfect is an oracle bound)
  }

  power::ArrayParams params;
  switch (cfg.kind) {
    case SchemeKind::kDbrc:
      params = {power::ArrayKind::kCam, cfg.entries, 64};
      break;
    case SchemeKind::kStride:
      params = {power::ArrayKind::kRegister, 1, 64};
      break;
    default:
      TCMP_CHECK(false);
  }

  const power::ArrayCosts one = power::array_costs(params);
  // Per core: (1 sender + n receivers) per message class.
  cost.structures_per_core = kNumMsgClasses * (1 + n_nodes);
  cost.storage_bytes_per_core = cost.structures_per_core * params.bits() / 8;
  cost.area_per_core = cost.structures_per_core * one.area;
  cost.leakage_per_core = cost.structures_per_core * one.leakage;
  cost.access_energy = one.access_energy;
  cost.max_dyn_power_per_core =
      cost.structures_per_core * one.access_energy * freq;
  return cost;
}

}  // namespace tcmp::compression
