// Stride compression (Fig. 1, right): the sender keeps, per destination, the
// last line address sent; when the signed difference to the next address fits
// in `low_bytes`, only the difference travels. Both ends update their base
// register on every message (compressed or not), so no index/install protocol
// is needed — but the first message to each destination is always
// uncompressed.
#pragma once

#include <cstdint>
#include <vector>

#include "compression/compressor.hpp"

namespace tcmp::compression {

class StrideSender final : public SenderCompressor {
 public:
  StrideSender(unsigned low_bytes, unsigned n_nodes);

  Encoding compress(NodeId dst, LineAddr line) override;

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

  /// True iff `delta` is representable in `low_bytes` signed bytes.
  static bool fits(std::int64_t delta, unsigned low_bytes);

  /// Checkpoint save/load: per-destination base registers restore exactly
  /// (docs/checkpointing.md).
  void save(SnapshotWriter& w) const override {
    SenderCompressor::save(w);
    const_cast<StrideSender*>(this)->snapshot_io(w);
  }
  void load(SnapshotReader& r) override {
    SenderCompressor::load(r);
    snapshot_io(r);
  }

 private:
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(base_);
    ar.field(valid_);
    ar.verify(low_bytes_);
    ar.field(hits_);
    ar.field(misses_);
  }

  std::vector<LineAddr> base_;
  std::vector<bool> valid_;
  unsigned low_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

class StrideReceiver final : public ReceiverDecompressor {
 public:
  StrideReceiver(unsigned low_bytes, unsigned n_nodes);

  LineAddr decode(NodeId src, const Encoding& enc, LineAddr full_line) override;

  /// Checkpoint save/load — mirrors StrideSender::save.
  void save(SnapshotWriter& w) const override {
    ReceiverDecompressor::save(w);
    const_cast<StrideReceiver*>(this)->snapshot_io(w);
  }
  void load(SnapshotReader& r) override {
    ReceiverDecompressor::load(r);
    snapshot_io(r);
  }

 private:
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(base_);
    ar.verify(low_bytes_);
  }

  std::vector<LineAddr> base_;
  unsigned low_bytes_ = 0;
};

}  // namespace tcmp::compression
