// Stride compression (Fig. 1, right): the sender keeps, per destination, the
// last line address sent; when the signed difference to the next address fits
// in `low_bytes`, only the difference travels. Both ends update their base
// register on every message (compressed or not), so no index/install protocol
// is needed — but the first message to each destination is always
// uncompressed.
#pragma once

#include <cstdint>
#include <vector>

#include "compression/compressor.hpp"

namespace tcmp::compression {

class StrideSender final : public SenderCompressor {
 public:
  StrideSender(unsigned low_bytes, unsigned n_nodes);

  Encoding compress(NodeId dst, LineAddr line) override;

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

  /// True iff `delta` is representable in `low_bytes` signed bytes.
  static bool fits(std::int64_t delta, unsigned low_bytes);

 private:
  std::vector<LineAddr> base_;
  std::vector<bool> valid_;
  unsigned low_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

class StrideReceiver final : public ReceiverDecompressor {
 public:
  StrideReceiver(unsigned low_bytes, unsigned n_nodes);

  LineAddr decode(NodeId src, const Encoding& enc, LineAddr full_line) override;

 private:
  std::vector<LineAddr> base_;
  unsigned low_bytes_ = 0;
};

}  // namespace tcmp::compression
