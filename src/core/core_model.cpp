#include "core/core_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tcmp::core {

Core::Core(NodeId id, const Config& cfg, Workload* workload, protocol::L1Cache* l1,
           StatRegistry* stats)
    : id_(id), cfg_(cfg), workload_(workload), l1_(l1), stats_(stats) {
  TCMP_CHECK(workload_ != nullptr && l1_ != nullptr && stats_ != nullptr);
  blocked_counter_ = stats_->counter_ref("core.blocked_cycles");
  ifetch_stalls_ = stats_->counter_ref("core.ifetch_stalls");
  miss_stalls_ = stats_->counter_ref("core.miss_stalls");
  finished_ = stats_->counter_ref("core.finished");
}

void Core::account_idle(Cycle n) {
  TCMP_DCHECK(!runnable() || drained());
  // tick() is a pure no-op for a done or fence-parked core: no accounting.
  if (drained()) return;
  blocked_cycles_ += n;
  blocked_counter_ += n.value();
}

void Core::set_icache(protocol::ICache* icache, std::uint64_t code_lines) {
  icache_ = icache;
  code_lines_ = std::max<std::uint64_t>(code_lines, 16);
  pc_rng_.reseed(0xC0DE + id_ * 977u);
  code_cursor_ = pc_rng_.next_below(code_lines_);
}

LineAddr Core::next_code_line() {
  // SPMD text: execution lives in a hot loop nest that fits the I-cache,
  // with rare excursions (calls into cold helpers/libraries) across the full
  // program text. This yields the sub-percent I-miss rates real SPLASH codes
  // exhibit while still generating occasional instruction-fetch traffic.
  const std::uint64_t hot_lines = std::min<std::uint64_t>(code_lines_, 96);
  if (pc_rng_.chance(0.99)) {
    if (pc_rng_.chance(0.85)) {
      code_cursor_ = (code_cursor_ + 1) % hot_lines;
    } else {
      code_cursor_ = pc_rng_.next_below(hot_lines);
    }
  } else {
    code_cursor_ = pc_rng_.next_below(code_lines_);
  }
  return LineAddr{core::kCodeBaseLine.value() + code_cursor_};
}

void Core::warm_advance_istream(std::uint64_t n) {
  if (icache_ == nullptr) return;
  while (n > 0) {
    if (ifetch_budget_ == 0) {
      // Mirrors tick()'s front-end, including the re-fetch-same-line rule:
      // a line rolled before a stall is kept, not re-rolled.
      if (!have_pending_line_) pending_code_line_ = next_code_line();
      have_pending_line_ = false;
      icache_->warm_install(pending_code_line_);
      ifetch_budget_ = cfg_.ifetch_interval;
    }
    const auto step = std::min<std::uint64_t>(n, ifetch_budget_);
    ifetch_budget_ -= static_cast<unsigned>(step);
    n -= step;
  }
}

void Core::on_ifill() {
  TCMP_CHECK(wait_ifetch_);
  wait_ifetch_ = false;
}

void Core::on_fill(LineAddr line) {
  if (wait_fill_ && line == wait_line_) {
    wait_fill_ = false;
    if (fill_retires_instr_) {
      ++instructions_;
      fill_retires_instr_ = false;
    }
  }
}

void Core::barrier_release() {
  TCMP_CHECK(wait_barrier_);
  wait_barrier_ = false;
}

void Core::tick(Cycle now) {
  (void)now;
  if (done_) return;
  if (wait_fill_ || wait_barrier_ || wait_ifetch_) {
    ++blocked_cycles_;
    ++blocked_counter_;
    return;
  }
  // Front-end: fetch the next instruction line when the previous one is
  // consumed. A miss stalls the whole in-order pipeline; after the fill the
  // SAME line is re-fetched (now a hit) rather than rolling a new target.
  if (icache_ != nullptr && ifetch_budget_ == 0) {
    if (!have_pending_line_) {
      pending_code_line_ = next_code_line();
      have_pending_line_ = true;
    }
    if (!icache_->fetch(pending_code_line_)) {
      wait_ifetch_ = true;
      ++ifetch_stalls_;
      return;
    }
    have_pending_line_ = false;
    ifetch_budget_ = cfg_.ifetch_interval;
  }

  for (unsigned slot = 0; slot < cfg_.issue_width; ++slot) {
    if (compute_left_ > 0) {
      --compute_left_;
      ++instructions_;
      if (ifetch_budget_ > 0) --ifetch_budget_;
      continue;
    }
    if (!has_op_) {
      if (fenced_) return;  // park at the op boundary (sampling fence)
      op_ = workload_->next(id_);
      has_op_ = true;
    }
    switch (op_.kind) {
      case OpKind::kCompute:
        compute_left_ = op_.count;
        has_op_ = false;
        continue;  // retire from the burst starting this slot next iteration
      case OpKind::kLoad:
      case OpKind::kStore: {
        const auto result = l1_->access(op_.line, op_.kind == OpKind::kStore);
        if (result == protocol::AccessResult::kHit) {
          has_op_ = false;
          ++instructions_;
          if (ifetch_budget_ > 0) --ifetch_budget_;
          continue;
        }
        wait_fill_ = true;
        wait_line_ = op_.line;
        if (result == protocol::AccessResult::kMiss) {
          has_op_ = false;
          fill_retires_instr_ = true;
        } else {
          // kRetry: keep the op; re-execute the access after the fill.
          fill_retires_instr_ = false;
        }
        ++miss_stalls_;
        return;
      }
      case OpKind::kBarrier: {
        wait_barrier_ = true;
        has_op_ = false;
        TCMP_CHECK(on_barrier_ != nullptr);
        on_barrier_(id_, op_.count);
        return;
      }
      case OpKind::kDone:
        done_ = true;
        ++finished_;
        return;
    }
  }
}

}  // namespace tcmp::core
