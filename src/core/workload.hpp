// Workload abstraction: each core consumes a deterministic stream of
// operations (compute bursts, loads, stores, barriers). Workloads are the
// substitution for the paper's SPLASH/SPLASH-2 binaries — see
// src/workloads/apps.hpp for the 13 application models.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "common/types.hpp"

namespace tcmp {
class SnapshotWriter;
class SnapshotReader;
}

namespace tcmp::core {

/// Barrier id reserved for the warmup/measurement boundary: when this
/// barrier releases, the system zeroes its statistics and restores the full
/// memory latency (functional cache warmup, the standard methodology for
/// measuring only the steady parallel phase).
inline constexpr std::uint32_t kWarmupBarrierId = 0xFFFFFFFFu;

enum class OpKind : std::uint8_t {
  kCompute,  ///< `count` ALU instructions (no memory)
  kLoad,     ///< read `line`
  kStore,    ///< write `line`
  kBarrier,  ///< global barrier `count`
  kDone,     ///< this core's parallel phase is finished
};

struct Op {
  OpKind kind = OpKind::kDone;
  LineAddr line{};
  std::uint32_t count = 0;  ///< compute length or barrier id

  static Op compute(std::uint32_t n) { return {OpKind::kCompute, LineAddr{}, n}; }
  static Op load(LineAddr line) { return {OpKind::kLoad, line, 0}; }
  static Op store(LineAddr line) { return {OpKind::kStore, line, 0}; }
  static Op barrier(std::uint32_t id) { return {OpKind::kBarrier, LineAddr{}, id}; }
  static Op done() { return {OpKind::kDone, LineAddr{}, 0}; }

  /// Checkpoint serialization (common/snapshot.hpp).
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(kind);
    ar.field(line);
    ar.field(count);
  }
};

class Workload {
 public:
  virtual ~Workload() = default;

  /// Next operation for `core`. Called once per consumed op; must keep
  /// returning kDone after the stream ends.
  virtual Op next(unsigned core) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// True when the stream begins with a warmup phase terminated by a
  /// kWarmupBarrierId barrier.
  [[nodiscard]] virtual bool has_warmup() const { return false; }

  /// Size of the program text in cache lines (shared read-only by all cores,
  /// SPMD-style). Drives the instruction-fetch model.
  [[nodiscard]] virtual std::uint64_t code_lines() const { return 512; }

  /// Checkpoint support (common/snapshot.hpp): workloads whose per-core
  /// cursors can be serialized and restored override all three. A workload
  /// identity string is part of the snapshot fingerprint, so a snapshot can
  /// only restore onto the same workload configuration.
  [[nodiscard]] virtual bool can_snapshot() const { return false; }
  virtual void save(SnapshotWriter&) const {
    TCMP_CHECK_MSG(false, "this workload does not support checkpointing");
  }
  virtual void load(SnapshotReader&) {
    TCMP_CHECK_MSG(false, "this workload does not support checkpointing");
  }
};

/// Line address where the (shared) program text is laid out.
inline constexpr LineAddr kCodeBaseLine{0x8000000};

}  // namespace tcmp::core
