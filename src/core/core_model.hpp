// In-order 2-way core timing model (Table 4). The core retires up to
// `issue_width` instructions per cycle; a memory instruction that misses in
// the L1 blocks the pipeline until the fill returns (loads and stores both
// block: in-order issue with no store buffer, the conservative model also
// used by RSIM's simple-core mode).
//
// Thread compatibility: tile-owned, no internal locking. The core holds raw
// pointers to its *own tile's* L1/L1I (a sanctioned same-tile edge of the
// tile-escape lint, docs/static-analysis.md); it never touches another
// tile's state directly.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/workload.hpp"
#include "protocol/icache.hpp"
#include "protocol/l1_cache.hpp"
#include "sim/scheduled.hpp"

namespace tcmp::core {

/// One core's stall state at the end of a simulated cycle, published into
/// the partitioned driver's double-buffered snapshot (docs/partitioning.md):
/// the cross-partition slack beneficiary probe reads this instead of the
/// live core.
struct StallSnapshot {
  LineAddr line{};      ///< meaningful only while `mem` is set
  bool mem = false;     ///< blocked on a data fill of `line`
  bool ifetch = false;  ///< blocked on an instruction fetch

  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(line);
    ar.field(mem);
    ar.field(ifetch);
  }
};

class Core final : public sim::Scheduled {
 public:
  struct Config {
    unsigned issue_width = 2;
    /// Instructions per I-cache line (64 B / ~4 B per instruction).
    unsigned ifetch_interval = 16;
  };

  /// `on_barrier(core, id)` must eventually be answered by barrier_release().
  using BarrierFn = std::function<void(unsigned core, std::uint32_t id)>;

  Core(NodeId id, const Config& cfg, Workload* workload, protocol::L1Cache* l1,
       StatRegistry* stats);

  void set_barrier_handler(BarrierFn fn) { on_barrier_ = std::move(fn); }

  /// Attach the instruction cache (optional; without one the front-end
  /// never stalls). `code_lines` is the shared program-text footprint.
  void set_icache(protocol::ICache* icache, std::uint64_t code_lines);

  /// Called by the L1 fill callback.
  void on_fill(LineAddr line);
  /// Called by the I-cache fill callback.
  void on_ifill();
  /// Called by the barrier controller when every core arrived.
  void barrier_release();

  void tick(Cycle now);

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] bool blocked() const {
    return wait_fill_ || wait_barrier_ || wait_ifetch_;
  }
  [[nodiscard]] bool runnable() const { return !done_ && !blocked(); }
  [[nodiscard]] std::uint64_t instructions() const { return instructions_; }
  /// Slack telemetry (obs/slack.hpp): is this core blocked at the head of
  /// its in-order pipeline waiting for a fill of exactly `line`? The next
  /// on_fill(line) is guaranteed to unstall it.
  [[nodiscard]] bool stalled_on(LineAddr line) const {
    return wait_fill_ && wait_line_ == line;
  }
  /// Slack telemetry: blocked on an instruction-fetch miss (the next
  /// on_ifill() unstalls it).
  [[nodiscard]] bool stalled_on_ifetch() const { return wait_ifetch_; }

  /// Write this core's stall state into the partitioned driver's
  /// double-buffered snapshot: the cross-partition slack beneficiary probe
  /// reads last cycle's published snapshot instead of this core's live state
  /// (docs/partitioning.md).
  void snapshot_stall(StallSnapshot& out) const {
    out.line = wait_line_;
    out.mem = wait_fill_;
    out.ifetch = wait_ifetch_;
  }

  /// Sampling fence (cmp/sampling.hpp): a fenced core finishes the
  /// operation it is executing (including any outstanding miss) but does
  /// not fetch the next one from the workload, parking at an op boundary
  /// where the functional fast-forward can take over the stream.
  void set_fenced(bool f) { fenced_ = f; }
  [[nodiscard]] bool fenced() const { return fenced_; }
  /// Fenced and parked at an op boundary (or finished). Cores waiting at a
  /// barrier are NOT drained — the sampling driver treats them as
  /// handoff-ready and completes the barrier functionally when their peers'
  /// streams reach it (docs/checkpointing.md).
  [[nodiscard]] bool drained() const {
    return done_ || (fenced_ && !has_op_ && compute_left_ == 0 && !blocked());
  }
  /// Functional fast-forward: this core's kDone was consumed outside the
  /// detailed model; mark it finished exactly as tick() would have.
  void warm_mark_done() {
    done_ = true;
    ++finished_;
  }
  /// Functional fast-forward: this core's stream reached a barrier op.
  /// Enter the same wait state tick() would have; the barrier controller's
  /// release_barrier() clears it via barrier_release().
  void warm_arrive_barrier() {
    TCMP_DCHECK(!wait_barrier_ && !has_op_);
    wait_barrier_ = true;
  }
  /// Functional fast-forward: advance the instruction-fetch walk as if `n`
  /// instructions retired. The walk is deterministic in instruction count
  /// (budget countdown + pc_rng_ draws), so this reproduces the exact
  /// line sequence the detailed front-end would have fetched, warming the
  /// I-cache silently along the way — the cursor, RNG, and I-cache contents
  /// all re-enter detailed mode consistent with the stream position.
  void warm_advance_istream(std::uint64_t n);

  /// Scheduled contract: a runnable core issues every cycle; a blocked or
  /// finished one does nothing until an external fill / barrier release
  /// arrives (which can only land on a cycle another component keeps live).
  /// A drained (fence-parked) core is likewise event-free until unfenced.
  [[nodiscard]] Cycle next_event() const override {
    return runnable() && !drained() ? sim::kEveryCycle : kNeverCycle;
  }
  [[nodiscard]] bool quiescent() const override { return done_; }

  /// Bulk equivalent of ticking a blocked core `n` times: accrues the same
  /// blocked-cycle accounting the per-cycle loop would have, so dead-cycle
  /// skipping stays bit-identical. Callers must only skip cycles on which
  /// every core is blocked or done.
  void account_idle(Cycle n);

  /// Roll back the accounting of one blocked tick. The partitioned driver's
  /// barrier replay (docs/partitioning.md) provisionally ticks every core in
  /// the parallel phase; when a barrier release within the same cycle would
  /// have unblocked this core before its serial turn, the blocked tick is
  /// undone here and the core re-ticked after the release.
  void undo_blocked_tick() {
    TCMP_DCHECK(blocked_cycles_ > Cycle{0});
    blocked_cycles_ = blocked_cycles_ - Cycle{1};
    --blocked_counter_;
  }

  /// Checkpoint serialization (common/snapshot.hpp): the full execution
  /// cursor — front-end state, in-progress op, wait flags, instruction and
  /// blocked-cycle totals, and the PC random stream.
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.section("core");
    ar.verify(id_);
    ar.verify(code_lines_);
    ar.field(pc_rng_);
    ar.field(code_cursor_);
    ar.field(ifetch_budget_);
    ar.field(pending_code_line_);
    ar.field(have_pending_line_);
    ar.field(wait_ifetch_);
    ar.field(done_);
    ar.field(wait_fill_);
    ar.field(wait_barrier_);
    ar.field(wait_line_);
    ar.field(fill_retires_instr_);
    ar.field(compute_left_);
    ar.field(has_op_);
    ar.field(op_);
    ar.field(instructions_);
    ar.field(blocked_cycles_);
    ar.field(fenced_);
  }

 private:
  NodeId id_;
  // tcmplint: snapshot-exempt (construction parameter, never mutates)
  Config cfg_;
  Workload* workload_;
  protocol::L1Cache* l1_;
  StatRegistry* stats_;
  // tcmplint: snapshot-exempt (callback wired by the system constructor)
  BarrierFn on_barrier_;

  [[nodiscard]] LineAddr next_code_line();

  protocol::ICache* icache_ = nullptr;
  std::uint64_t code_lines_ = 512;
  Rng pc_rng_{1};
  std::uint64_t code_cursor_ = 0;
  unsigned ifetch_budget_ = 0;
  LineAddr pending_code_line_{};     ///< line chosen for the in-progress fetch
  bool have_pending_line_ = false;
  bool wait_ifetch_ = false;

  bool done_ = false;
  bool wait_fill_ = false;
  bool wait_barrier_ = false;
  LineAddr wait_line_{};
  bool fill_retires_instr_ = false;  ///< the blocked memory op retires on fill
  std::uint32_t compute_left_ = 0;
  bool has_op_ = false;
  Op op_{};
  std::uint64_t instructions_ = 0;
  Cycle blocked_cycles_{0};
  bool fenced_ = false;  ///< sampling fence: park at the next op boundary
  // Interned stat handles (hot path: every ticked cycle).
  CounterRef blocked_counter_;
  CounterRef ifetch_stalls_;
  CounterRef miss_stalls_;
  CounterRef finished_;
};

}  // namespace tcmp::core
