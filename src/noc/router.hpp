// Input-queued virtual-channel wormhole router with credit-based flow
// control and a 3-stage pipeline (BW -> VA -> SA/ST) plus link traversal:
// a flit buffered at cycle t can win VC allocation at t+1, switch allocation
// at t+2, and is written into the downstream buffer at t+3+link_cycles.
//
// Routing is table-driven: the topology builder (2D mesh with XY routes, or
// the two-level tree) fills a per-router destination->output-port table, so
// any deadlock-free single-path topology plugs in without touching the
// router. VCs are partitioned by virtual network: vc = vnet * vcs_per_vnet
// + k; a packet never changes vnet, so the three protocol classes (requests,
// forwards, responses) cannot block each other. Any port may be an ejection
// port (meshes eject at kPortLocal; tree cluster routers eject each leaf
// tile at its own port).
//
// Thread compatibility: single-owner, no internal locking. Downstream/
// upstream router pointers are intra-plane wiring; when a link crosses a
// partition boundary the two writes it makes through them (flit into the
// downstream arrival queue, credit into the upstream return heap) are
// rerouted onto a BoundaryChannel (noc/boundary.hpp) and applied by the
// owning partition — the only cross-partition *reads* left are of
// construction-time-immutable link configuration (docs/partitioning.md).
#pragma once

#include <algorithm>
#include <functional>
#include <optional>
#include <vector>

#include "common/queues.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "noc/flit.hpp"
#include "protocol/delay_queue.hpp"

namespace tcmp::obs {
class Observer;
}

namespace tcmp::noc {

class BoundaryChannel;

inline constexpr unsigned kPortE = 0;
inline constexpr unsigned kPortW = 1;
inline constexpr unsigned kPortN = 2;
inline constexpr unsigned kPortS = 3;
inline constexpr unsigned kPortLocal = 4;
inline constexpr unsigned kNumPorts = 5;

class Router {
 public:
  struct Config {
    unsigned vcs_per_vnet = 1;
    unsigned vnets = 3;
    unsigned buffer_flits = 4;  ///< per input VC
    unsigned nodes = 16;        ///< destinations the route table covers
    /// Single-cycle router (lookahead routing + speculative allocation):
    /// a flit can be buffered, allocated and switched in the same cycle, so
    /// per-hop latency is 1 + link_cycles. False models a 3-stage pipeline.
    bool single_cycle = true;
  };

  using EjectFn = std::function<void(Flit&&)>;

  Router(NodeId id, const Config& cfg, StatRegistry* stats, std::string stat_prefix);

  /// Wire output `out_port` to `downstream`'s input `in_port` over a link of
  /// `link_cycles` latency and `link_mm` physical length (energy accounting).
  void connect(unsigned out_port, Router* downstream, unsigned in_port,
               unsigned link_cycles, double link_mm);  // tcmplint: allow-raw-unit (config boundary, mm)
  /// Deliver packets for destination tiles ejecting at `port` to `fn`.
  void set_eject(unsigned port, EjectFn fn);
  /// Destination `dst` leaves this router through `port`.
  void set_route(NodeId dst, unsigned port);

  /// Attach a lifecycle observer (per-hop trace events); null detaches.
  void set_observer(obs::Observer* obs) { obs_ = obs; }

  /// Mark output `out_port` (already connect()ed) as crossing a partition
  /// boundary: switched flits go to `ch` instead of directly into the
  /// downstream router's arrival queue.
  void set_cross_downstream(unsigned out_port, BoundaryChannel* ch) {
    TCMP_CHECK(out_port < kNumPorts && output_[out_port].downstream != nullptr);
    output_[out_port].cross = ch;
  }
  /// Mark input `in_port`'s upstream as cross-partition: credit returns go
  /// to `ch` instead of directly into the upstream router's credit heap.
  void set_cross_upstream(unsigned in_port, BoundaryChannel* ch) {
    TCMP_CHECK(in_port < kNumPorts && upstream_of_input_[in_port] != nullptr);
    upstream_cross_[in_port] = ch;
  }

  /// Boundary-channel drain hooks: exactly the writes the direct-link path
  /// makes, executed by this router's owning partition. See noc/boundary.hpp.
  void external_arrival(unsigned port, unsigned vc, Cycle deadline, Flit&& flit) {
    arrivals_[port].push(deadline, {vc, std::move(flit)});
    ++arrivals_pending_;
  }
  void external_credit(unsigned out_port, unsigned vc, Cycle deadline) {
    credit_returns_.push(deadline, {out_port, vc});
  }

  /// Network-interface injection into input port `port`. Returns false when
  /// the chosen VC has no buffer space (retry next cycle).
  [[nodiscard]] bool try_inject(unsigned port, unsigned vc, Flit&& flit, Cycle now);
  /// True if the port's VC can accept a flit this cycle.
  [[nodiscard]] bool can_inject(unsigned port, unsigned vc) const;

  // The network calls the three phases for every router each cycle, in this
  // order across the whole mesh: deliver, allocate, swtraverse. The idle
  // early-outs live here in the header so a quiet router costs one or two
  // flag loads per phase instead of an out-of-line call (an idle mesh ticks
  // every router every cycle, so this is the simulator's hottest no-op).
  void tick_deliver(Cycle now) {
    if (arrivals_pending_ != 0 || !credit_returns_.empty()) deliver_busy(now);
  }
  void tick_allocate(Cycle now) {
    if (buffered_ != 0) allocate_busy(now);
  }
  void tick_switch(Cycle now) {
    if (buffered_ != 0) switch_busy(now);
  }

  [[nodiscard]] bool quiescent() const;

  /// Earliest cycle after `now` at which any tick phase has work: next cycle
  /// while flits are buffered (allocation/switching may act every cycle),
  /// otherwise the earliest link arrival. In-flight credit returns are
  /// deliberately NOT a wake source: credits are only read during switch
  /// allocation, which requires buffered flits — and buffered flits keep
  /// every cycle live, so a credit due at cycle c is always applied (in the
  /// deliver phase) no later than the first cycle whose switch could read
  /// it. See docs/kernel.md for the full argument.
  [[nodiscard]] Cycle next_event(Cycle now) const {
    if (buffered_ != 0) return now + 1;
    if (arrivals_pending_ == 0) return kNeverCycle;
    Cycle nxt = kNeverCycle;
    for (const auto& q : arrivals_) nxt = std::min(nxt, q.next_ready());
    return nxt;
  }

  [[nodiscard]] unsigned num_vcs() const { return cfg_.vcs_per_vnet * cfg_.vnets; }
  [[nodiscard]] NodeId id() const { return id_; }

  /// Checkpoint serialization (common/snapshot.hpp): every input VC buffer,
  /// output VC allocation/credit state, in-flight link arrivals and credit
  /// returns. Wiring (downstream pointers, routes, eject fns) is rebuilt by
  /// construction and not serialized.
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(buffered_);
    ar.field(arrivals_pending_);
    ar.field(input_);
    for (OutputPort& p : output_) {
      ar.field(p.vcs);
      ar.field(p.sa_rr);
    }
    for (auto& q : arrivals_) ar.field(q);
    ar.field(credit_returns_);
  }

 private:
  struct BufferedFlit {
    Flit flit;
    Cycle buffered_at{0};

    template <typename Ar>
    void snapshot_io(Ar& ar) {
      ar.field(flit);
      ar.field(buffered_at);
    }
  };

  struct InputVc {
    /// Fixed-capacity ring sized by the credit bound (cfg_.buffer_flits):
    /// credits guarantee an upstream never sends into a full buffer, so the
    /// ring can never overflow (checked in deliver_busy / can_inject).
    RingBuffer<BufferedFlit> buffer;
    bool routed = false;
    unsigned out_port = 0;
    bool vc_allocated = false;
    unsigned out_vc = 0;
    Cycle allocated_at{0};

    template <typename Ar>
    void snapshot_io(Ar& ar) {
      ar.field(buffer);
      ar.field(routed);
      ar.field(out_port);
      ar.field(vc_allocated);
      ar.field(out_vc);
      ar.field(allocated_at);
    }
  };

  struct OutputVc {
    bool held = false;
    unsigned holder_port = 0;
    unsigned holder_vc = 0;
    unsigned credits = 0;

    template <typename Ar>
    void snapshot_io(Ar& ar) {
      ar.field(held);
      ar.field(holder_port);
      ar.field(holder_vc);
      ar.field(credits);
    }
  };

  struct OutputPort {
    Router* downstream = nullptr;
    unsigned downstream_port = 0;
    unsigned link_cycles = 0;
    double link_mm = 0.0;  // tcmplint: allow-raw-unit (energy accounting, mm)
    EjectFn eject;  ///< set on ejection ports instead of a downstream
    BoundaryChannel* cross = nullptr;  ///< non-null: link crosses a partition
    std::vector<OutputVc> vcs;
    unsigned sa_rr = 0;  ///< round-robin pointer over (in_port, in_vc)
  };

  struct LinkArrival {
    unsigned vc = 0;
    Flit flit;

    template <typename Ar>
    void snapshot_io(Ar& ar) {
      ar.field(vc);
      ar.field(flit);
    }
  };

  void send_credit(unsigned in_port, unsigned vc, Cycle now);

  // Busy-path bodies of the three tick phases (see the inline wrappers).
  void deliver_busy(Cycle now);
  void allocate_busy(Cycle now);
  void switch_busy(Cycle now);

  // tcmplint: snapshot-exempt (construction parameter, never mutates)
  NodeId id_;
  // tcmplint: snapshot-exempt (construction parameter, never mutates)
  Config cfg_;
  StatRegistry* stats_;
  // tcmplint: snapshot-exempt (stat-name prefix derived at construction)
  std::string prefix_;
  // tcmplint: snapshot-exempt (topology-derived at construction)
  std::vector<std::uint8_t> route_table_;  ///< destination -> output port
  CounterRef traversals_;  ///< interned stat handles (hot path)
  CounterRef flit_hops_;
  CounterRef bit_hops_;
  CounterRef bit_dmm_hops_;  ///< bits x link length (0.1 mm units)
  unsigned buffered_ = 0;  ///< flits currently buffered (idle fast-path)
  unsigned arrivals_pending_ = 0;  ///< flits in flight on any input link

  std::vector<std::vector<InputVc>> input_;  ///< [port][vc]
  std::vector<OutputPort> output_;           ///< [port]
  /// Each input port has exactly one upstream output port (fixed
  /// link_cycles, at most one flit per cycle), so per-port link arrivals are
  /// strictly monotone — a FIFO pipe, not a heap.
  protocol::FifoDelayQueue<LinkArrival> arrivals_[kNumPorts];
  /// Deliberately still a heap: one queue collects credits from ALL output
  /// ports, whose link lengths differ (tree root vs leaf links), so
  /// deadlines are not monotone.
  protocol::DelayQueue<std::pair<unsigned, unsigned>> credit_returns_;  ///< (port, vc)
  std::vector<Router*> upstream_of_input_ = std::vector<Router*>(kNumPorts, nullptr);
  std::vector<unsigned> upstream_out_port_ = std::vector<unsigned>(kNumPorts, 0);
  /// Non-null where the upstream of an input port is in another partition:
  /// the reverse-direction boundary channel carrying this port's credits.
  std::vector<BoundaryChannel*> upstream_cross_ =
      std::vector<BoundaryChannel*>(kNumPorts, nullptr);
  // Cold: only read on tail-flit switch traversals. Kept last so the hot
  // members above stay in the same cache lines as without observability.
  obs::Observer* obs_ = nullptr;
};

}  // namespace tcmp::noc
