// Network facade: per-channel 2D-mesh router planes plus per-tile network
// interfaces (packetization, injection lanes per virtual network, ejection
// reassembly). The caller's mapping policy decides which channel and how many
// wire bytes each message uses; the network handles everything below that.
//
// Thread compatibility: single-owner at K = 1 (the whole network ticks as
// one Scheduled component, exactly the seed behavior). Under a partition
// plan (docs/partitioning.md) every router, injection lane and stat handle
// belongs to the partition of its node; the partition phases (drain_boundary
// / tick_partition / next_event_partition / quiescent_partition) touch only
// that partition's state, and the two direct writes a cross-partition link
// would make are rerouted onto BoundaryChannels, swapped by the serial
// epilogue (exchange_boundaries). The cut happens at link boundaries inside
// this layer, below the NIC seam the tile-escape lint polices
// (docs/static-analysis.md).
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "noc/boundary.hpp"
#include "noc/channel.hpp"
#include "noc/router.hpp"
#include "sim/partition.hpp"
#include "sim/scheduled.hpp"

namespace tcmp::obs {
class Observer;
}

namespace tcmp::noc {

/// Interconnect topology. The 2D mesh is the paper's (and any tiled CMP's)
/// layout; the two-level tree is the organization for which Cheng et al. [6]
/// reported their heterogeneous-wire gains — few routers, long wires.
enum class Topology { kMesh2D, kTree2Level };

struct NocConfig {
  unsigned width = 4;
  unsigned height = 4;
  Topology topology = Topology::kMesh2D;
  std::vector<ChannelSpec> channels;
  unsigned vcs_per_vnet = 1;
  unsigned buffer_flits = 4;
  bool single_cycle_router = true;  ///< see Router::Config::single_cycle
  double link_length_mm = 5.0;  // tcmplint: allow-raw-unit (config boundary)
                                ///< mesh hop length (tree: leaf links)
  /// Tree only: cluster-to-root links are this factor longer than leaf links.
  double tree_root_link_factor = 2.0;
  units::Hertz freq = units::hertz(4e9);

  [[nodiscard]] unsigned nodes() const { return width * height; }
};

class Network final : public sim::Scheduled {
 public:
  using DeliverFn = std::function<void(NodeId, const protocol::CoherenceMsg&)>;

  /// Single-partition network (the seed's shape): one registry, no boundary
  /// channels, tick() drives everything.
  Network(const NocConfig& cfg, StatRegistry* stats);

  /// Partitioned network: routers, lanes and stat handles of node n live on
  /// shards[plan.part_of(n)]. Requires the 2D mesh topology and — the
  /// synchronization horizon — every channel's link_cycles >= 1.
  Network(const NocConfig& cfg, const sim::PartitionPlan& plan,
          const std::vector<StatRegistry*>& shards);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Attach a message-lifecycle observer: assigns trace ids at injection,
  /// reports per-hop traversals (via the routers) and the latency breakdown
  /// at ejection. Null detaches.
  void set_observer(obs::Observer* obs);

  /// Queue `msg` for injection at its source tile on `channel`, occupying
  /// `wire_bytes` on the wire (after compression). Unbounded NI queue; the
  /// credit protocol applies from the local router inward.
  void inject(const protocol::CoherenceMsg& msg, unsigned channel,
              Bytes wire_bytes, Cycle now);

  void tick(Cycle now);

  // --- Partition phases (K > 1; see docs/partitioning.md) -----------------
  /// Serial prologue: publish the cycle clock (the eject callbacks read it).
  void begin_cycle(Cycle now) { now_ = now; }
  /// Parallel, start of partition p's phase: apply the boundary events the
  /// last serial epilogue published for p.
  void drain_boundary(unsigned p) {
    for (BoundaryChannel* ch : inbound_[p]) ch->drain();
  }
  /// Parallel: the three router phases plus lane pumping, restricted to
  /// partition p's routers and nodes.
  void tick_partition(unsigned p, Cycle now);
  /// Serial epilogue (between the cycle's barriers): publish every pending
  /// boundary event; returns the earliest published deadline (kNeverCycle
  /// when nothing crossed) — a wake bound no partition calendar knows about.
  Cycle exchange_boundaries() {
    Cycle nxt = kNeverCycle;
    for (auto& ch : boundaries_) nxt = std::min(nxt, ch->exchange());
    return nxt;
  }
  [[nodiscard]] bool boundaries_empty() const {
    for (const auto& ch : boundaries_)
      if (!ch->empty()) return false;
    return true;
  }
  [[nodiscard]] Cycle next_event_partition(unsigned p) const;
  [[nodiscard]] bool quiescent_partition(unsigned p) const;
  [[nodiscard]] unsigned num_partitions() const { return plan_.num_partitions(); }

  [[nodiscard]] bool quiescent() const override;
  /// Scheduled contract: next cycle while any router buffers flits or any
  /// injection lane has a packet (both may act every cycle), otherwise the
  /// earliest in-flight link arrival across every plane.
  [[nodiscard]] Cycle next_event() const override;
  [[nodiscard]] unsigned num_channels() const {
    return static_cast<unsigned>(cfg_.channels.size());
  }
  [[nodiscard]] const ChannelSpec& channel(unsigned c) const { return cfg_.channels[c]; }
  [[nodiscard]] const NocConfig& config() const { return cfg_; }
  /// Total directed wire length of one channel plane (energy accounting).
  [[nodiscard]] double total_directed_link_mm(unsigned c) const {  // tcmplint: allow-raw-unit
    return planes_[c].total_link_mm;
  }
  /// Routers in one channel plane (5 for the tree, nodes() for the mesh).
  [[nodiscard]] unsigned router_count(unsigned c) const {
    return static_cast<unsigned>(planes_[c].routers.size());
  }

  /// Total flits a packet of `wire_bytes` occupies on channel `c`.
  [[nodiscard]] Flits flits_for(unsigned c, Bytes wire_bytes) const {
    return cfg_.channels[c].flits_for(wire_bytes);
  }

  /// Checkpoint serialization (common/snapshot.hpp): every router and
  /// injection lane across every plane, plus the cycle clock. Boundary
  /// channels must be empty — a checkpoint happens between cycles, after
  /// exchange_boundaries() and the following drain have run.
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    TCMP_CHECK_MSG(boundaries_empty(),
                   "network snapshot with boundary events in flight");
    ar.section("noc");
    for (ChannelPlane& plane : planes_) {
      for (auto& r : plane.routers) ar.field(*r);
      for (auto& node_lanes : plane.lanes)
        for (Lane& lane : node_lanes) ar.field(lane);
    }
    ar.field(now_);
  }

 private:
  struct Packet {
    protocol::CoherenceMsg msg;
    Bytes wire_bytes{0};
    Cycle queued_at{};

    template <typename Ar>
    void snapshot_io(Ar& ar) {
      ar.field(msg);
      ar.field(wire_bytes);
      ar.field(queued_at);
    }
  };

  /// One injection lane per (node, channel, vnet): serializes packets into
  /// flits, one flit per cycle, holding a single VC until the tail is in.
  /// Packet ids are lane-local (id x lane is unique) so id assignment needs
  /// no cross-partition counter.
  struct Lane {
    std::deque<Packet> queue;
    unsigned flits_emitted = 0;
    unsigned total_flits = 0;
    unsigned vc = 0;
    std::uint64_t packet_id = 0;
    std::uint64_t next_packet_id = 1;
    bool active = false;

    template <typename Ar>
    void snapshot_io(Ar& ar) {
      ar.field(queue);
      ar.field(flits_emitted);
      ar.field(total_flits);
      ar.field(vc);
      ar.field(packet_id);
      ar.field(next_packet_id);
      ar.field(active);
    }
  };

  /// Where a tile attaches to a plane: which router, which port.
  struct Attach {
    Router* router = nullptr;
    unsigned port = 0;
  };

  /// Per-plane stat handles, one set per partition shard (index 0 is the
  /// whole registry at K = 1). Every shard registers the same names, so the
  /// report-time merge sums them back into the seed's single counters.
  struct PlaneStats {
    CounterRef packets;
    CounterRef payload_bytes;
    CounterRef flits_injected;
    HistogramRef latency;
  };

  struct ChannelPlane {
    std::vector<std::unique_ptr<Router>> routers;
    std::vector<Attach> attach;            ///< [node]
    std::vector<std::vector<Lane>> lanes;  ///< [node][vnet]
    double total_link_mm = 0.0;  // tcmplint: allow-raw-unit (energy accounting, mm)
    std::vector<PlaneStats> pstats;        ///< [partition]
  };

  void build_mesh(unsigned ch);
  void build_tree(unsigned ch);

  void pump_lane(unsigned ch, NodeId node, unsigned vnet, Cycle now);
  void on_eject(unsigned ch, NodeId node, Flit&& flit, Cycle now);

  /// The boundary channel carrying events produced by partition `from` for
  /// partition `to`, created on first use during topology build.
  [[nodiscard]] BoundaryChannel* channel_between(unsigned from, unsigned to);

  // tcmplint: snapshot-exempt (construction parameter, never mutates)
  NocConfig cfg_;
  // tcmplint: snapshot-exempt (construction parameter, never mutates)
  sim::PartitionPlan plan_;
  // tcmplint: snapshot-exempt (registry attachments wired at construction)
  std::vector<StatRegistry*> shards_;   ///< [partition]
  // tcmplint: snapshot-exempt (derived from plan_ at construction)
  std::vector<unsigned> part_of_;       ///< [node] owning partition
  // tcmplint: snapshot-exempt (callback wired by the system constructor)
  DeliverFn deliver_;
  obs::Observer* obs_ = nullptr;
  std::vector<ChannelPlane> planes_;
  std::vector<HistogramRef> critical_latency_;  ///< [partition]
  /// Per-vnet end-to-end latency decomposition ("noc.lat.<class>.<part>"):
  /// total = queue (NI wait + serialization) + router (pipeline/contention)
  /// + wire (link flight).
  struct VnetLatency {
    HistogramRef total;
    HistogramRef queue;
    HistogramRef router;
    HistogramRef wire;
  };
  // tcmplint: snapshot-exempt (interned stat handles, re-interned at ctor)
  std::vector<std::array<VnetLatency, protocol::kNumVnets>> vnet_lat_;  ///< [partition]
  // save_checkpoint drains and CHECKs the boundary channels empty, so there
  // is no in-flight state to serialize.
  // tcmplint: snapshot-exempt (drained and CHECKed empty at every save)
  std::vector<std::unique_ptr<BoundaryChannel>> boundaries_;
  /// boundaries_ entry index for the (from, to) directed pair, dense K x K;
  /// ~0u where absent. Indexed from * K + to.
  // tcmplint: snapshot-exempt (derived from plan_ at construction)
  std::vector<unsigned> boundary_index_;
  // tcmplint: snapshot-exempt (derived from plan_ at construction)
  std::vector<std::vector<BoundaryChannel*>> inbound_;  ///< [partition] consumers
  Cycle now_{0};
};

}  // namespace tcmp::noc
