// Network facade: per-channel 2D-mesh router planes plus per-tile network
// interfaces (packetization, injection lanes per virtual network, ejection
// reassembly). The caller's mapping policy decides which channel and how many
// wire bytes each message uses; the network handles everything below that.
//
// Thread compatibility: single-owner, no internal locking. The router-to-
// router links inside a plane are direct pointers; when the mesh is
// partitioned across threads (ROADMAP item 1) the cut happens at link
// boundaries inside this layer, below the NIC seam the tile-escape lint
// polices (docs/static-analysis.md).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "noc/channel.hpp"
#include "noc/router.hpp"
#include "sim/scheduled.hpp"

namespace tcmp::obs {
class Observer;
}

namespace tcmp::noc {

/// Interconnect topology. The 2D mesh is the paper's (and any tiled CMP's)
/// layout; the two-level tree is the organization for which Cheng et al. [6]
/// reported their heterogeneous-wire gains — few routers, long wires.
enum class Topology { kMesh2D, kTree2Level };

struct NocConfig {
  unsigned width = 4;
  unsigned height = 4;
  Topology topology = Topology::kMesh2D;
  std::vector<ChannelSpec> channels;
  unsigned vcs_per_vnet = 1;
  unsigned buffer_flits = 4;
  bool single_cycle_router = true;  ///< see Router::Config::single_cycle
  double link_length_mm = 5.0;  // tcmplint: allow-raw-unit (config boundary)
                                ///< mesh hop length (tree: leaf links)
  /// Tree only: cluster-to-root links are this factor longer than leaf links.
  double tree_root_link_factor = 2.0;
  units::Hertz freq = units::hertz(4e9);

  [[nodiscard]] unsigned nodes() const { return width * height; }
};

class Network final : public sim::Scheduled {
 public:
  using DeliverFn = std::function<void(NodeId, const protocol::CoherenceMsg&)>;

  Network(const NocConfig& cfg, StatRegistry* stats);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Attach a message-lifecycle observer: assigns trace ids at injection,
  /// reports per-hop traversals (via the routers) and the latency breakdown
  /// at ejection. Null detaches.
  void set_observer(obs::Observer* obs);

  /// Queue `msg` for injection at its source tile on `channel`, occupying
  /// `wire_bytes` on the wire (after compression). Unbounded NI queue; the
  /// credit protocol applies from the local router inward.
  void inject(const protocol::CoherenceMsg& msg, unsigned channel,
              Bytes wire_bytes, Cycle now);

  void tick(Cycle now);

  [[nodiscard]] bool quiescent() const override;
  /// Scheduled contract: next cycle while any router buffers flits or any
  /// injection lane has a packet (both may act every cycle), otherwise the
  /// earliest in-flight link arrival across every plane.
  [[nodiscard]] Cycle next_event() const override;
  [[nodiscard]] unsigned num_channels() const {
    return static_cast<unsigned>(cfg_.channels.size());
  }
  [[nodiscard]] const ChannelSpec& channel(unsigned c) const { return cfg_.channels[c]; }
  [[nodiscard]] const NocConfig& config() const { return cfg_; }
  /// Total directed wire length of one channel plane (energy accounting).
  [[nodiscard]] double total_directed_link_mm(unsigned c) const {  // tcmplint: allow-raw-unit
    return planes_[c].total_link_mm;
  }
  /// Routers in one channel plane (5 for the tree, nodes() for the mesh).
  [[nodiscard]] unsigned router_count(unsigned c) const {
    return static_cast<unsigned>(planes_[c].routers.size());
  }

  /// Total flits a packet of `wire_bytes` occupies on channel `c`.
  [[nodiscard]] Flits flits_for(unsigned c, Bytes wire_bytes) const {
    return cfg_.channels[c].flits_for(wire_bytes);
  }

 private:
  struct Packet {
    protocol::CoherenceMsg msg;
    Bytes wire_bytes{0};
    Cycle queued_at{};
  };

  /// One injection lane per (node, channel, vnet): serializes packets into
  /// flits, one flit per cycle, holding a single VC until the tail is in.
  struct Lane {
    std::deque<Packet> queue;
    unsigned flits_emitted = 0;
    unsigned total_flits = 0;
    unsigned vc = 0;
    std::uint64_t packet_id = 0;
    bool active = false;
  };

  /// Where a tile attaches to a plane: which router, which port.
  struct Attach {
    Router* router = nullptr;
    unsigned port = 0;
  };

  struct ChannelPlane {
    std::vector<std::unique_ptr<Router>> routers;
    std::vector<Attach> attach;            ///< [node]
    std::vector<std::vector<Lane>> lanes;  ///< [node][vnet]
    double total_link_mm = 0.0;  // tcmplint: allow-raw-unit (energy accounting, mm)
    // Interned stat handles (hot path).
    CounterRef packets;
    CounterRef payload_bytes;
    CounterRef flits_injected;
    HistogramRef latency;
  };

  void build_mesh(unsigned ch);
  void build_tree(unsigned ch);

  void pump_lane(unsigned ch, NodeId node, unsigned vnet, Cycle now);
  void on_eject(unsigned ch, NodeId node, Flit&& flit, Cycle now);

  NocConfig cfg_;
  StatRegistry* stats_;
  DeliverFn deliver_;
  obs::Observer* obs_ = nullptr;
  std::vector<ChannelPlane> planes_;
  HistogramRef critical_latency_;
  /// Per-vnet end-to-end latency decomposition ("noc.lat.<class>.<part>"):
  /// total = queue (NI wait + serialization) + router (pipeline/contention)
  /// + wire (link flight).
  struct VnetLatency {
    HistogramRef total;
    HistogramRef queue;
    HistogramRef router;
    HistogramRef wire;
  };
  VnetLatency vnet_lat_[protocol::kNumVnets];
  std::uint64_t next_packet_id_ = 1;
  Cycle now_{0};
};

}  // namespace tcmp::noc
