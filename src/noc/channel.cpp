#include "noc/channel.hpp"

#include "common/check.hpp"

namespace tcmp::noc {

std::vector<ChannelSpec> make_channels(const wire::LinkPartition& partition,
                                       double link_length_mm, units::Hertz freq) {
  std::vector<ChannelSpec> channels;
  const wire::WireSpec b = wire::paper_spec(wire::WireClass::kB8X);
  ChannelSpec bch;
  bch.name = "B";
  bch.width_bytes = partition.b_bytes;
  bch.link_cycles = b.link_cycles(link_length_mm, freq);
  bch.wires = b;
  channels.push_back(bch);

  if (partition.style == wire::LinkStyle::kVlHet) {
    const wire::WireSpec vl = wire::paper_spec(wire::WireClass::kVL, partition.vl_bytes);
    ChannelSpec vch;
    vch.name = "VL";
    vch.width_bytes = partition.vl_bytes;
    vch.link_cycles = vl.link_cycles(link_length_mm, freq);
    vch.wires = vl;
    channels.push_back(vch);
    TCMP_CHECK(vch.link_cycles < bch.link_cycles);
  } else if (partition.style == wire::LinkStyle::kCheng3Way) {
    const wire::WireSpec l = wire::paper_spec(wire::WireClass::kL8X);
    ChannelSpec lch;
    lch.name = "L";
    lch.width_bytes = partition.l_bytes;
    lch.link_cycles = l.link_cycles(link_length_mm, freq);
    lch.wires = l;
    channels.push_back(lch);
    const wire::WireSpec pw = wire::paper_spec(wire::WireClass::kPW4X);
    ChannelSpec pch;
    pch.name = "PW";
    pch.width_bytes = partition.pw_bytes;
    pch.link_cycles = pw.link_cycles(link_length_mm, freq);
    pch.wires = pw;
    channels.push_back(pch);
    TCMP_CHECK(lch.link_cycles < bch.link_cycles);
    TCMP_CHECK(pch.link_cycles > bch.link_cycles);
  }
  return channels;
}

}  // namespace tcmp::noc
