#include "noc/network.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "obs/observer.hpp"

namespace tcmp::noc {

namespace {
// Latency histograms: 128 bins of 4 cycles resolve quantiles up to 512
// cycles; the overflow bin catches pathological outliers.
constexpr std::size_t kLatBins = 128;
constexpr std::uint64_t kLatBinWidth = 4;
constexpr const char* kVnetName[protocol::kNumVnets] = {"req", "fwd", "resp"};
}  // namespace

Network::Network(const NocConfig& cfg, StatRegistry* stats)
    : Network(cfg, sim::PartitionPlan(cfg.width, cfg.height, 1), {stats}) {}

Network::Network(const NocConfig& cfg, const sim::PartitionPlan& plan,
                 const std::vector<StatRegistry*>& shards)
    : cfg_(cfg), plan_(plan), shards_(shards) {
  const unsigned k = plan_.num_partitions();
  TCMP_CHECK(shards_.size() == k);
  for (StatRegistry* s : shards_) TCMP_CHECK(s != nullptr);
  TCMP_CHECK(!cfg_.channels.empty());
  TCMP_CHECK(cfg_.width >= 2 && cfg_.height >= 1);
  if (k > 1) {
    TCMP_CHECK_MSG(cfg_.topology == Topology::kMesh2D,
                   "only the 2D mesh can be partitioned");
    // The synchronization horizon (docs/partitioning.md): every boundary
    // event deadline must be at least one cycle out.
    for (const ChannelSpec& ch : cfg_.channels) {
      TCMP_CHECK_MSG(ch.link_cycles >= 1,
                     "partitioning requires >= 1-cycle links");
    }
  }
  part_of_.resize(cfg_.nodes());
  for (unsigned n = 0; n < cfg_.nodes(); ++n) part_of_[n] = plan_.part_of(n);
  boundary_index_.assign(static_cast<std::size_t>(k) * k, ~0u);
  inbound_.resize(k);

  planes_.resize(cfg_.channels.size());
  for (unsigned c = 0; c < cfg_.channels.size(); ++c) {
    if (cfg_.topology == Topology::kMesh2D) {
      build_mesh(c);
    } else {
      build_tree(c);
    }
    ChannelPlane& plane = planes_[c];
    for (auto& a : plane.attach) {
      TCMP_CHECK_MSG(a.router != nullptr, "tile not attached to the plane");
    }
    plane.lanes.assign(cfg_.nodes(), std::vector<Lane>(protocol::kNumVnets));
    const std::string prefix = "noc." + cfg_.channels[c].name;
    plane.pstats.resize(k);
    for (unsigned p = 0; p < k; ++p) {
      PlaneStats& ps = plane.pstats[p];
      ps.packets = shards_[p]->counter_ref(prefix + ".packets");
      ps.payload_bytes = shards_[p]->counter_ref(prefix + ".payload_bytes");
      ps.flits_injected = shards_[p]->counter_ref(prefix + ".flits_injected");
      ps.latency =
          shards_[p]->histogram_ref(prefix + ".latency", kLatBins, kLatBinWidth);
    }
  }
  critical_latency_.resize(k);
  vnet_lat_.resize(k);
  for (unsigned p = 0; p < k; ++p) {
    critical_latency_[p] =
        shards_[p]->histogram_ref("noc.critical_latency", kLatBins, kLatBinWidth);
    for (unsigned v = 0; v < protocol::kNumVnets; ++v) {
      const std::string base = std::string("noc.lat.") + kVnetName[v];
      vnet_lat_[p][v].total =
          shards_[p]->histogram_ref(base + ".total", kLatBins, kLatBinWidth);
      vnet_lat_[p][v].queue =
          shards_[p]->histogram_ref(base + ".queue", kLatBins, kLatBinWidth);
      vnet_lat_[p][v].router =
          shards_[p]->histogram_ref(base + ".router", kLatBins, kLatBinWidth);
      vnet_lat_[p][v].wire =
          shards_[p]->histogram_ref(base + ".wire", kLatBins, kLatBinWidth);
    }
  }
}

BoundaryChannel* Network::channel_between(unsigned from, unsigned to) {
  const unsigned k = plan_.num_partitions();
  unsigned& idx = boundary_index_[static_cast<std::size_t>(from) * k + to];
  if (idx == ~0u) {
    idx = static_cast<unsigned>(boundaries_.size());
    boundaries_.push_back(std::make_unique<BoundaryChannel>());
    inbound_[to].push_back(boundaries_.back().get());
  }
  return boundaries_[idx].get();
}

void Network::set_observer(obs::Observer* obs) {
  obs_ = obs;
  for (auto& plane : planes_) {
    for (auto& r : plane.routers) r->set_observer(obs);
  }
}

void Network::build_mesh(unsigned ch) {
  ChannelPlane& plane = planes_[ch];
  const ChannelSpec& spec = cfg_.channels[ch];
  Router::Config rcfg;
  rcfg.vcs_per_vnet = cfg_.vcs_per_vnet;
  rcfg.vnets = protocol::kNumVnets;
  rcfg.buffer_flits = cfg_.buffer_flits;
  rcfg.nodes = cfg_.nodes();
  rcfg.single_cycle = cfg_.single_cycle_router;

  const std::string prefix = "noc." + spec.name;
  for (unsigned n = 0; n < cfg_.nodes(); ++n) {
    // Each router's stat handles live on its owning partition's shard.
    plane.routers.push_back(std::make_unique<Router>(
        static_cast<NodeId>(n), rcfg, shards_[part_of_[n]], prefix));
  }

  const unsigned w = cfg_.width;
  const unsigned link_cycles = spec.link_cycles;
  const double mm = cfg_.link_length_mm;
  // Directed link `from` -> `to`; when it crosses a partition boundary, both
  // writes it makes (flit downstream, credit upstream) go via boundary
  // channels. Row-block partitions only ever cut vertical (N/S) links.
  const auto wire = [&](unsigned from, unsigned out_port, unsigned to,
                        unsigned in_port) {
    plane.routers[from]->connect(out_port, plane.routers[to].get(), in_port,
                                 link_cycles, mm);
    if (part_of_[from] != part_of_[to]) {
      plane.routers[from]->set_cross_downstream(
          out_port, channel_between(part_of_[from], part_of_[to]));
      plane.routers[to]->set_cross_upstream(
          in_port, channel_between(part_of_[to], part_of_[from]));
    }
  };
  for (unsigned n = 0; n < cfg_.nodes(); ++n) {
    const unsigned x = n % w, y = n / w;
    if (x + 1 < w) {
      wire(n, kPortE, n + 1, kPortW);
      wire(n + 1, kPortW, n, kPortE);
      plane.total_link_mm += 2 * mm;
    }
    if (y + 1 < cfg_.height) {
      wire(n, kPortS, n + w, kPortN);
      wire(n + w, kPortN, n, kPortS);
      plane.total_link_mm += 2 * mm;
    }
  }

  // XY routing tables and per-node attach/eject at the Local port.
  plane.attach.assign(cfg_.nodes(), Attach{});
  for (unsigned r = 0; r < cfg_.nodes(); ++r) {
    Router& router = *plane.routers[r];
    const unsigned x = r % w, y = r / w;
    for (unsigned d = 0; d < cfg_.nodes(); ++d) {
      const unsigned dx = d % w, dy = d / w;
      unsigned port = kPortLocal;
      if (dx > x) {
        port = kPortE;
      } else if (dx < x) {
        port = kPortW;
      } else if (dy > y) {
        port = kPortS;
      } else if (dy < y) {
        port = kPortN;
      }
      router.set_route(static_cast<NodeId>(d), port);
    }
    const auto node = static_cast<NodeId>(r);
    router.set_eject(kPortLocal, [this, ch, node](Flit&& flit) {
      on_eject(ch, node, std::move(flit), now_);
    });
    plane.attach[r] = Attach{&router, kPortLocal};
  }
}

void Network::build_tree(unsigned ch) {
  // Two-level tree: nodes/4 cluster routers (one port per leaf tile + one
  // uplink) under a single root. Few routers, long root links: the topology
  // for which [6] reported its gains.
  ChannelPlane& plane = planes_[ch];
  const ChannelSpec& spec = cfg_.channels[ch];
  const unsigned n_nodes = cfg_.nodes();
  TCMP_CHECK_MSG(n_nodes % 4 == 0 && n_nodes / 4 <= kNumPorts - 1,
                 "tree topology supports up to 4 clusters of 4 tiles");
  const unsigned n_clusters = n_nodes / 4;

  Router::Config rcfg;
  rcfg.vcs_per_vnet = cfg_.vcs_per_vnet;
  rcfg.vnets = protocol::kNumVnets;
  rcfg.buffer_flits = cfg_.buffer_flits;
  rcfg.nodes = n_nodes;
  rcfg.single_cycle = cfg_.single_cycle_router;

  const std::string prefix = "noc." + spec.name;
  for (unsigned r = 0; r < n_clusters + 1; ++r) {
    plane.routers.push_back(
        std::make_unique<Router>(static_cast<NodeId>(r), rcfg, shards_[0], prefix));
  }
  Router& root = *plane.routers[n_clusters];

  const double root_mm = cfg_.link_length_mm * cfg_.tree_root_link_factor;
  const unsigned root_cycles = static_cast<unsigned>(std::max<double>(
      1.0, std::ceil(static_cast<double>(spec.link_cycles) *
                     cfg_.tree_root_link_factor)));
  constexpr unsigned kUpPort = kNumPorts - 1;

  plane.attach.assign(n_nodes, Attach{});
  for (unsigned c = 0; c < n_clusters; ++c) {
    Router& cluster = *plane.routers[c];
    cluster.connect(kUpPort, &root, /*in_port=*/c, root_cycles, root_mm);
    root.connect(c, &cluster, kUpPort, root_cycles, root_mm);
    plane.total_link_mm += 2 * root_mm;

    for (unsigned d = 0; d < n_nodes; ++d) {
      cluster.set_route(static_cast<NodeId>(d), d / 4 == c ? d % 4 : kUpPort);
      root.set_route(static_cast<NodeId>(d), d / 4);
    }
    for (unsigned i = 0; i < 4; ++i) {
      const auto node = static_cast<NodeId>(c * 4 + i);
      cluster.set_eject(i, [this, ch, node](Flit&& flit) {
        on_eject(ch, node, std::move(flit), now_);
      });
      plane.attach[node] = Attach{&cluster, i};
      // The tile-to-cluster stub is part of the plane's metal.
      plane.total_link_mm += 2 * cfg_.link_length_mm;
    }
  }
}

void Network::inject(const protocol::CoherenceMsg& msg, unsigned channel,
                     Bytes wire_bytes, Cycle now) {
  TCMP_CHECK(channel < planes_.size());
  TCMP_CHECK(msg.src < cfg_.nodes() && msg.dst < cfg_.nodes());
  TCMP_CHECK_MSG(msg.src != msg.dst, "local messages must not enter the mesh");
  const unsigned vnet = protocol::vnet_of(msg.type);
  ChannelPlane& plane = planes_[channel];
  Lane& lane = plane.lanes[msg.src][vnet];
  lane.queue.push_back({msg, wire_bytes, now});
  if (obs_ != nullptr) [[unlikely]] {
    lane.queue.back().msg.trace_id =
        obs_->msg_injected(msg, cfg_.channels[channel].name, wire_bytes, now);
  }
  PlaneStats& ps = plane.pstats[part_of_[msg.src]];
  ++ps.packets;
  ps.payload_bytes += wire_bytes;
}

void Network::pump_lane(unsigned ch, NodeId node, unsigned vnet, Cycle now) {
  Lane& lane = planes_[ch].lanes[node][vnet];
  if (!lane.active) {
    if (lane.queue.empty()) return;
    lane.active = true;
    lane.flits_emitted = 0;
    lane.total_flits = flits_for(ch, lane.queue.front().wire_bytes);
    lane.vc = vnet * cfg_.vcs_per_vnet;  // single-VC lanes use the first VC
    lane.packet_id = lane.next_packet_id++;
  }
  const Attach& at = planes_[ch].attach[node];
  if (!at.router->can_inject(at.port, lane.vc)) return;

  const Packet& pkt = lane.queue.front();
  const ChannelSpec& spec = cfg_.channels[ch];
  const unsigned i = lane.flits_emitted;
  const unsigned remaining = pkt.wire_bytes - i * spec.width_bytes;
  Flit flit;
  flit.packet_id = lane.packet_id;
  flit.src = pkt.msg.src;
  flit.dst = pkt.msg.dst;
  flit.vnet = static_cast<std::uint8_t>(vnet);
  flit.head = i == 0;
  flit.tail = i + 1 == lane.total_flits;
  flit.active_bits =
      static_cast<std::uint16_t>(8 * std::min(remaining, spec.width_bytes.value()));
  flit.injected_at = pkt.queued_at;
  if (flit.tail) {
    flit.msg = pkt.msg;
    flit.queue_cycles = static_cast<std::uint16_t>(
        std::min<std::uint64_t>((now - pkt.queued_at).value(), 0xFFFF));
  }

  const bool ok = at.router->try_inject(at.port, lane.vc, std::move(flit), now);
  TCMP_CHECK(ok);
  ++planes_[ch].pstats[part_of_[node]].flits_injected;
  if (++lane.flits_emitted == lane.total_flits) {
    lane.queue.pop_front();
    lane.active = false;
  }
}

void Network::on_eject(unsigned ch, NodeId node, Flit&& flit, Cycle now) {
  if (!flit.tail) return;  // only the tail completes the packet
  const unsigned part = part_of_[node];
  const Cycle total = now - flit.injected_at;
  planes_[ch].pstats[part].latency.add(total.value());
  if (protocol::is_critical(flit.msg.type)) {
    critical_latency_[part].add(total.value());
  }
  // Decompose: queue covers NI lane wait plus serialization (inject ->
  // tail leaves the NI); wire is accumulated link flight; the remainder is
  // router pipeline and contention time.
  const Cycle queue{flit.queue_cycles};
  const Cycle wire{flit.wire_cycles};
  const Cycle router = total - queue - wire;
  VnetLatency& vl = vnet_lat_[part][flit.vnet];
  vl.total.add(total.value());
  vl.queue.add(queue.value());
  vl.router.add(router.value());
  vl.wire.add(wire.value());
  if (obs_ != nullptr) [[unlikely]] {
    obs_->msg_ejected(flit.msg, now, total, queue, wire);
  }
  TCMP_CHECK(deliver_ != nullptr);
  deliver_(node, flit.msg);
}

void Network::tick(Cycle now) {
  now_ = now;
  for (auto& plane : planes_) {
    for (auto& r : plane.routers) r->tick_deliver(now);
  }
  for (auto& plane : planes_) {
    for (auto& r : plane.routers) r->tick_allocate(now);
  }
  for (auto& plane : planes_) {
    for (auto& r : plane.routers) r->tick_switch(now);
  }
  for (unsigned c = 0; c < planes_.size(); ++c) {
    auto& lanes = planes_[c].lanes;
    for (unsigned n = 0; n < cfg_.nodes(); ++n) {
      for (unsigned v = 0; v < protocol::kNumVnets; ++v) {
        // Guard here rather than inside pump_lane: an idle network ticks
        // every lane every cycle, and this keeps that case a couple of loads
        // instead of a function call when the compiler declines to inline.
        Lane& lane = lanes[n][v];
        if (!lane.active && lane.queue.empty()) continue;
        pump_lane(c, static_cast<NodeId>(n), v, now);
      }
    }
  }
}

void Network::tick_partition(unsigned p, Cycle now) {
  const unsigned lo = plan_.first(p), hi = plan_.first(p + 1);
  for (auto& plane : planes_) {
    for (unsigned n = lo; n < hi; ++n) plane.routers[n]->tick_deliver(now);
  }
  for (auto& plane : planes_) {
    for (unsigned n = lo; n < hi; ++n) plane.routers[n]->tick_allocate(now);
  }
  for (auto& plane : planes_) {
    for (unsigned n = lo; n < hi; ++n) plane.routers[n]->tick_switch(now);
  }
  for (unsigned c = 0; c < planes_.size(); ++c) {
    auto& lanes = planes_[c].lanes;
    for (unsigned n = lo; n < hi; ++n) {
      for (unsigned v = 0; v < protocol::kNumVnets; ++v) {
        Lane& lane = lanes[n][v];
        if (!lane.active && lane.queue.empty()) continue;
        pump_lane(c, static_cast<NodeId>(n), v, now);
      }
    }
  }
}

Cycle Network::next_event_partition(unsigned p) const {
  const unsigned lo = plan_.first(p), hi = plan_.first(p + 1);
  Cycle nxt = kNeverCycle;
  for (const auto& plane : planes_) {
    for (unsigned n = lo; n < hi; ++n) {
      for (const auto& lane : plane.lanes[n]) {
        if (lane.active || !lane.queue.empty()) return now_ + 1;
      }
      const Cycle e = plane.routers[n]->next_event(now_);
      if (e <= now_ + 1) return now_ + 1;
      nxt = std::min(nxt, e);
    }
  }
  return nxt;
}

bool Network::quiescent_partition(unsigned p) const {
  const unsigned lo = plan_.first(p), hi = plan_.first(p + 1);
  for (const auto& plane : planes_) {
    for (unsigned n = lo; n < hi; ++n) {
      if (!plane.routers[n]->quiescent()) return false;
      for (const auto& lane : plane.lanes[n]) {
        if (!lane.queue.empty()) return false;
      }
    }
  }
  return true;
}

Cycle Network::next_event() const {
  Cycle nxt = kNeverCycle;
  for (const auto& plane : planes_) {
    for (const auto& node_lanes : plane.lanes) {
      for (const auto& lane : node_lanes) {
        if (lane.active || !lane.queue.empty()) return now_ + 1;
      }
    }
    for (const auto& r : plane.routers) {
      const Cycle e = r->next_event(now_);
      if (e <= now_ + 1) return now_ + 1;
      nxt = std::min(nxt, e);
    }
  }
  return nxt;
}

bool Network::quiescent() const {
  for (const auto& plane : planes_) {
    for (const auto& r : plane.routers) {
      if (!r->quiescent()) return false;
    }
    for (const auto& node_lanes : plane.lanes) {
      for (const auto& lane : node_lanes) {
        if (!lane.queue.empty()) return false;
      }
    }
  }
  return true;
}

}  // namespace tcmp::noc
