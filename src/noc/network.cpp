#include "noc/network.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "obs/observer.hpp"

namespace tcmp::noc {

namespace {
// Latency histograms: 128 bins of 4 cycles resolve quantiles up to 512
// cycles; the overflow bin catches pathological outliers.
constexpr std::size_t kLatBins = 128;
constexpr std::uint64_t kLatBinWidth = 4;
constexpr const char* kVnetName[protocol::kNumVnets] = {"req", "fwd", "resp"};
}  // namespace

Network::Network(const NocConfig& cfg, StatRegistry* stats)
    : cfg_(cfg), stats_(stats) {
  TCMP_CHECK(stats_ != nullptr);
  TCMP_CHECK(!cfg_.channels.empty());
  TCMP_CHECK(cfg_.width >= 2 && cfg_.height >= 1);

  planes_.resize(cfg_.channels.size());
  for (unsigned c = 0; c < cfg_.channels.size(); ++c) {
    if (cfg_.topology == Topology::kMesh2D) {
      build_mesh(c);
    } else {
      build_tree(c);
    }
    ChannelPlane& plane = planes_[c];
    for (auto& a : plane.attach) {
      TCMP_CHECK_MSG(a.router != nullptr, "tile not attached to the plane");
    }
    plane.lanes.assign(cfg_.nodes(), std::vector<Lane>(protocol::kNumVnets));
    const std::string prefix = "noc." + cfg_.channels[c].name;
    plane.packets = stats_->counter_ref(prefix + ".packets");
    plane.payload_bytes = stats_->counter_ref(prefix + ".payload_bytes");
    plane.flits_injected = stats_->counter_ref(prefix + ".flits_injected");
    plane.latency =
        stats_->histogram_ref(prefix + ".latency", kLatBins, kLatBinWidth);
  }
  critical_latency_ =
      stats_->histogram_ref("noc.critical_latency", kLatBins, kLatBinWidth);
  for (unsigned v = 0; v < protocol::kNumVnets; ++v) {
    const std::string base = std::string("noc.lat.") + kVnetName[v];
    vnet_lat_[v].total =
        stats_->histogram_ref(base + ".total", kLatBins, kLatBinWidth);
    vnet_lat_[v].queue =
        stats_->histogram_ref(base + ".queue", kLatBins, kLatBinWidth);
    vnet_lat_[v].router =
        stats_->histogram_ref(base + ".router", kLatBins, kLatBinWidth);
    vnet_lat_[v].wire =
        stats_->histogram_ref(base + ".wire", kLatBins, kLatBinWidth);
  }
}

void Network::set_observer(obs::Observer* obs) {
  obs_ = obs;
  for (auto& plane : planes_) {
    for (auto& r : plane.routers) r->set_observer(obs);
  }
}

void Network::build_mesh(unsigned ch) {
  ChannelPlane& plane = planes_[ch];
  const ChannelSpec& spec = cfg_.channels[ch];
  Router::Config rcfg;
  rcfg.vcs_per_vnet = cfg_.vcs_per_vnet;
  rcfg.vnets = protocol::kNumVnets;
  rcfg.buffer_flits = cfg_.buffer_flits;
  rcfg.nodes = cfg_.nodes();
  rcfg.single_cycle = cfg_.single_cycle_router;

  const std::string prefix = "noc." + spec.name;
  for (unsigned n = 0; n < cfg_.nodes(); ++n) {
    plane.routers.push_back(
        std::make_unique<Router>(static_cast<NodeId>(n), rcfg, stats_, prefix));
  }

  const unsigned w = cfg_.width;
  const unsigned link_cycles = spec.link_cycles;
  const double mm = cfg_.link_length_mm;
  for (unsigned n = 0; n < cfg_.nodes(); ++n) {
    const unsigned x = n % w, y = n / w;
    if (x + 1 < w) {
      plane.routers[n]->connect(kPortE, plane.routers[n + 1].get(), kPortW,
                                link_cycles, mm);
      plane.routers[n + 1]->connect(kPortW, plane.routers[n].get(), kPortE,
                                    link_cycles, mm);
      plane.total_link_mm += 2 * mm;
    }
    if (y + 1 < cfg_.height) {
      plane.routers[n]->connect(kPortS, plane.routers[n + w].get(), kPortN,
                                link_cycles, mm);
      plane.routers[n + w]->connect(kPortN, plane.routers[n].get(), kPortS,
                                    link_cycles, mm);
      plane.total_link_mm += 2 * mm;
    }
  }

  // XY routing tables and per-node attach/eject at the Local port.
  plane.attach.assign(cfg_.nodes(), Attach{});
  for (unsigned r = 0; r < cfg_.nodes(); ++r) {
    Router& router = *plane.routers[r];
    const unsigned x = r % w, y = r / w;
    for (unsigned d = 0; d < cfg_.nodes(); ++d) {
      const unsigned dx = d % w, dy = d / w;
      unsigned port = kPortLocal;
      if (dx > x) {
        port = kPortE;
      } else if (dx < x) {
        port = kPortW;
      } else if (dy > y) {
        port = kPortS;
      } else if (dy < y) {
        port = kPortN;
      }
      router.set_route(static_cast<NodeId>(d), port);
    }
    const auto node = static_cast<NodeId>(r);
    router.set_eject(kPortLocal, [this, ch, node](Flit&& flit) {
      on_eject(ch, node, std::move(flit), now_);
    });
    plane.attach[r] = Attach{&router, kPortLocal};
  }
}

void Network::build_tree(unsigned ch) {
  // Two-level tree: nodes/4 cluster routers (one port per leaf tile + one
  // uplink) under a single root. Few routers, long root links: the topology
  // for which [6] reported its gains.
  ChannelPlane& plane = planes_[ch];
  const ChannelSpec& spec = cfg_.channels[ch];
  const unsigned n_nodes = cfg_.nodes();
  TCMP_CHECK_MSG(n_nodes % 4 == 0 && n_nodes / 4 <= kNumPorts - 1,
                 "tree topology supports up to 4 clusters of 4 tiles");
  const unsigned n_clusters = n_nodes / 4;

  Router::Config rcfg;
  rcfg.vcs_per_vnet = cfg_.vcs_per_vnet;
  rcfg.vnets = protocol::kNumVnets;
  rcfg.buffer_flits = cfg_.buffer_flits;
  rcfg.nodes = n_nodes;
  rcfg.single_cycle = cfg_.single_cycle_router;

  const std::string prefix = "noc." + spec.name;
  for (unsigned r = 0; r < n_clusters + 1; ++r) {
    plane.routers.push_back(
        std::make_unique<Router>(static_cast<NodeId>(r), rcfg, stats_, prefix));
  }
  Router& root = *plane.routers[n_clusters];

  const double root_mm = cfg_.link_length_mm * cfg_.tree_root_link_factor;
  const unsigned root_cycles = static_cast<unsigned>(std::max<double>(
      1.0, std::ceil(static_cast<double>(spec.link_cycles) *
                     cfg_.tree_root_link_factor)));
  constexpr unsigned kUpPort = kNumPorts - 1;

  plane.attach.assign(n_nodes, Attach{});
  for (unsigned c = 0; c < n_clusters; ++c) {
    Router& cluster = *plane.routers[c];
    cluster.connect(kUpPort, &root, /*in_port=*/c, root_cycles, root_mm);
    root.connect(c, &cluster, kUpPort, root_cycles, root_mm);
    plane.total_link_mm += 2 * root_mm;

    for (unsigned d = 0; d < n_nodes; ++d) {
      cluster.set_route(static_cast<NodeId>(d), d / 4 == c ? d % 4 : kUpPort);
      root.set_route(static_cast<NodeId>(d), d / 4);
    }
    for (unsigned i = 0; i < 4; ++i) {
      const auto node = static_cast<NodeId>(c * 4 + i);
      cluster.set_eject(i, [this, ch, node](Flit&& flit) {
        on_eject(ch, node, std::move(flit), now_);
      });
      plane.attach[node] = Attach{&cluster, i};
      // The tile-to-cluster stub is part of the plane's metal.
      plane.total_link_mm += 2 * cfg_.link_length_mm;
    }
  }
}

void Network::inject(const protocol::CoherenceMsg& msg, unsigned channel,
                     Bytes wire_bytes, Cycle now) {
  TCMP_CHECK(channel < planes_.size());
  TCMP_CHECK(msg.src < cfg_.nodes() && msg.dst < cfg_.nodes());
  TCMP_CHECK_MSG(msg.src != msg.dst, "local messages must not enter the mesh");
  const unsigned vnet = protocol::vnet_of(msg.type);
  ChannelPlane& plane = planes_[channel];
  Lane& lane = plane.lanes[msg.src][vnet];
  lane.queue.push_back({msg, wire_bytes, now});
  if (obs_ != nullptr) [[unlikely]] {
    lane.queue.back().msg.trace_id =
        obs_->msg_injected(msg, cfg_.channels[channel].name, wire_bytes, now);
  }
  ++plane.packets;
  plane.payload_bytes += wire_bytes;
}

void Network::pump_lane(unsigned ch, NodeId node, unsigned vnet, Cycle now) {
  Lane& lane = planes_[ch].lanes[node][vnet];
  if (!lane.active) {
    if (lane.queue.empty()) return;
    lane.active = true;
    lane.flits_emitted = 0;
    lane.total_flits = flits_for(ch, lane.queue.front().wire_bytes);
    lane.vc = vnet * cfg_.vcs_per_vnet;  // single-VC lanes use the first VC
    lane.packet_id = next_packet_id_++;
  }
  const Attach& at = planes_[ch].attach[node];
  if (!at.router->can_inject(at.port, lane.vc)) return;

  const Packet& pkt = lane.queue.front();
  const ChannelSpec& spec = cfg_.channels[ch];
  const unsigned i = lane.flits_emitted;
  const unsigned remaining = pkt.wire_bytes - i * spec.width_bytes;
  Flit flit;
  flit.packet_id = lane.packet_id;
  flit.src = pkt.msg.src;
  flit.dst = pkt.msg.dst;
  flit.vnet = static_cast<std::uint8_t>(vnet);
  flit.head = i == 0;
  flit.tail = i + 1 == lane.total_flits;
  flit.active_bits =
      static_cast<std::uint16_t>(8 * std::min(remaining, spec.width_bytes.value()));
  flit.injected_at = pkt.queued_at;
  if (flit.tail) {
    flit.msg = pkt.msg;
    flit.queue_cycles = static_cast<std::uint16_t>(
        std::min<std::uint64_t>((now - pkt.queued_at).value(), 0xFFFF));
  }

  const bool ok = at.router->try_inject(at.port, lane.vc, std::move(flit), now);
  TCMP_CHECK(ok);
  ++planes_[ch].flits_injected;
  if (++lane.flits_emitted == lane.total_flits) {
    lane.queue.pop_front();
    lane.active = false;
  }
}

void Network::on_eject(unsigned ch, NodeId node, Flit&& flit, Cycle now) {
  if (!flit.tail) return;  // only the tail completes the packet
  const Cycle total = now - flit.injected_at;
  planes_[ch].latency.add(total.value());
  if (protocol::is_critical(flit.msg.type)) {
    critical_latency_.add(total.value());
  }
  // Decompose: queue covers NI lane wait plus serialization (inject ->
  // tail leaves the NI); wire is accumulated link flight; the remainder is
  // router pipeline and contention time.
  const Cycle queue{flit.queue_cycles};
  const Cycle wire{flit.wire_cycles};
  const Cycle router = total - queue - wire;
  VnetLatency& vl = vnet_lat_[flit.vnet];
  vl.total.add(total.value());
  vl.queue.add(queue.value());
  vl.router.add(router.value());
  vl.wire.add(wire.value());
  if (obs_ != nullptr) [[unlikely]] {
    obs_->msg_ejected(flit.msg, now, total, queue, wire);
  }
  TCMP_CHECK(deliver_ != nullptr);
  deliver_(node, flit.msg);
}

void Network::tick(Cycle now) {
  now_ = now;
  for (auto& plane : planes_) {
    for (auto& r : plane.routers) r->tick_deliver(now);
  }
  for (auto& plane : planes_) {
    for (auto& r : plane.routers) r->tick_allocate(now);
  }
  for (auto& plane : planes_) {
    for (auto& r : plane.routers) r->tick_switch(now);
  }
  for (unsigned c = 0; c < planes_.size(); ++c) {
    auto& lanes = planes_[c].lanes;
    for (unsigned n = 0; n < cfg_.nodes(); ++n) {
      for (unsigned v = 0; v < protocol::kNumVnets; ++v) {
        // Guard here rather than inside pump_lane: an idle network ticks
        // every lane every cycle, and this keeps that case a couple of loads
        // instead of a function call when the compiler declines to inline.
        Lane& lane = lanes[n][v];
        if (!lane.active && lane.queue.empty()) continue;
        pump_lane(c, static_cast<NodeId>(n), v, now);
      }
    }
  }
}

Cycle Network::next_event() const {
  Cycle nxt = kNeverCycle;
  for (const auto& plane : planes_) {
    for (const auto& node_lanes : plane.lanes) {
      for (const auto& lane : node_lanes) {
        if (lane.active || !lane.queue.empty()) return now_ + 1;
      }
    }
    for (const auto& r : plane.routers) {
      const Cycle e = r->next_event(now_);
      if (e <= now_ + 1) return now_ + 1;
      nxt = std::min(nxt, e);
    }
  }
  return nxt;
}

bool Network::quiescent() const {
  for (const auto& plane : planes_) {
    for (const auto& r : plane.routers) {
      if (!r->quiescent()) return false;
    }
    for (const auto& node_lanes : plane.lanes) {
      for (const auto& lane : node_lanes) {
        if (!lane.queue.empty()) return false;
      }
    }
  }
  return true;
}

}  // namespace tcmp::noc
