// Inter-partition boundary channels (docs/partitioning.md): the message
// queues that replace the two direct cross-router writes a mesh link makes
// (a flit into the downstream input queue, a credit into the upstream return
// heap) when the link crosses a partition boundary.
//
// Each channel is one DIRECTED partition pair and is double-buffered:
// producers append to the `pending` side during the parallel phase (single
// writer — only the producing partition's thread touches it), the serial
// epilogue swaps pending and ready between the cycle's two barriers, and the
// consuming partition drains the `ready` side at the start of its next
// parallel phase (single reader). The barrier provides the happens-before
// edge, so no atomics are needed.
//
// Timing is preserved exactly: events carry the same deadline the direct
// write would have used (flit: t + 1 + link_cycles, credit: t + link_cycles,
// for a link traversed in cycle t), and with link_cycles >= 1 — the
// synchronization horizon the Network constructor enforces — every deadline
// is >= t + 1, so draining at the start of cycle t + 1 lands the event in
// the downstream queue before anything can legally consume it.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "noc/router.hpp"

namespace tcmp::noc {

class BoundaryChannel {
 public:
  /// Producer side (parallel phase, producing partition only): a flit that
  /// crossed the switch of an upstream router whose link leads into `router`
  /// (owned by the consuming partition).
  void push_flit(Router* router, unsigned port, unsigned vc, Cycle deadline,
                 Flit&& flit) {
    pending_flits_.push_back(FlitEvent{router, port, vc, deadline, std::move(flit)});
  }

  /// Producer side: a credit return headed for `router` (the upstream of a
  /// cross-partition link, owned by the consuming partition).
  void push_credit(Router* router, unsigned out_port, unsigned vc, Cycle deadline) {
    pending_credits_.push_back(CreditEvent{router, out_port, vc, deadline});
  }

  /// Serial epilogue (between the cycle's barriers): publish this cycle's
  /// flits to the consumer and apply the credits right away. Returns the
  /// earliest flit deadline now sitting on the ready side (kNeverCycle when
  /// none) — the consumer partition's contribution to the global next-wake,
  /// since its own calendar cannot know about events it has not drained yet.
  ///
  /// Credits are applied here, not double-buffered: both partitions are
  /// parked at the barrier, so the serial write into the upstream router's
  /// credit heap is race-free, and the heap already defers the credit to its
  /// deadline — the same cycle the direct-link path would apply it. Keeping
  /// credits out of the channel preserves the seed's finish rule: in-flight
  /// credit returns never delay end-of-run detection (they are not part of
  /// Router::quiescent(), and the wake argument in docs/kernel.md covers
  /// them without a boundary deadline).
  Cycle exchange() {
    TCMP_CHECK_MSG(ready_flits_.empty(),
                   "boundary events published but never drained");
    for (const CreditEvent& e : pending_credits_) {
      e.router->external_credit(e.out_port, e.vc, e.deadline);
    }
    pending_credits_.clear();
    std::swap(pending_flits_, ready_flits_);
    Cycle nxt = kNeverCycle;
    for (const FlitEvent& e : ready_flits_) nxt = std::min(nxt, e.deadline);
    return nxt;
  }

  /// Consumer side (start of the consuming partition's parallel phase):
  /// apply every published flit to its router, exactly the write the
  /// direct-link path would have made.
  void drain() {
    for (FlitEvent& e : ready_flits_) {
      e.router->external_arrival(e.port, e.vc, e.deadline, std::move(e.flit));
    }
    ready_flits_.clear();
  }

  [[nodiscard]] bool empty() const {
    return pending_flits_.empty() && pending_credits_.empty() &&
           ready_flits_.empty();
  }

 private:
  struct FlitEvent {
    Router* router = nullptr;
    unsigned port = 0;
    unsigned vc = 0;
    Cycle deadline{};
    Flit flit{};
  };
  struct CreditEvent {
    Router* router = nullptr;
    unsigned out_port = 0;
    unsigned vc = 0;
    Cycle deadline{};
  };

  std::vector<FlitEvent> pending_flits_, ready_flits_;
  std::vector<CreditEvent> pending_credits_;  ///< applied at exchange()
};

}  // namespace tcmp::noc
