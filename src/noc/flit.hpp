// Flow-control digits. A packet is serialized into ceil(bytes/width) flits;
// the head flit drives routing/VC allocation, the tail flit carries the
// protocol message (wormhole switching keeps a packet's flits in order on a
// single VC path, so the message payload is available exactly when the
// packet fully arrives).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "protocol/coherence_msg.hpp"

namespace tcmp::noc {

struct Flit {
  std::uint64_t packet_id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint8_t vnet = 0;
  bool head = false;
  bool tail = false;
  std::uint16_t active_bits = 0;  ///< wires actually toggled by this flit
  // Latency-breakdown bookkeeping, maintained on tail flits only: when the
  // tail leaves the NI lane the packet has fully cleared injection queuing +
  // serialization; every link traversal afterwards adds wire-flight cycles.
  // The remainder of the end-to-end latency is router pipeline time. Both
  // are saturating uint16 so they slot into the struct's padding (the
  // breakdown degrades gracefully on >65k-cycle pathologies; the total stays
  // exact).
  std::uint16_t queue_cycles = 0;  ///< tail: NI wait + serialization cycles
  std::uint16_t wire_cycles = 0;   ///< tail: accumulated link-traversal cycles
  Cycle injected_at{0};          ///< head: packet injection time (latency stats)
  protocol::CoherenceMsg msg{};   ///< valid on tail flits only

  /// Checkpoint serialization (common/snapshot.hpp): in-flight flits travel
  /// whole, bookkeeping included.
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(packet_id);
    ar.field(src);
    ar.field(dst);
    ar.field(vnet);
    ar.field(head);
    ar.field(tail);
    ar.field(active_bits);
    ar.field(queue_cycles);
    ar.field(wire_cycles);
    ar.field(injected_at);
    ar.field(msg);
  }
};

}  // namespace tcmp::noc
