// Flow-control digits. A packet is serialized into ceil(bytes/width) flits;
// the head flit drives routing/VC allocation, the tail flit carries the
// protocol message (wormhole switching keeps a packet's flits in order on a
// single VC path, so the message payload is available exactly when the
// packet fully arrives).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "protocol/coherence_msg.hpp"

namespace tcmp::noc {

struct Flit {
  std::uint64_t packet_id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint8_t vnet = 0;
  bool head = false;
  bool tail = false;
  std::uint16_t active_bits = 0;  ///< wires actually toggled by this flit
  Cycle injected_at = 0;          ///< head: packet injection time (latency stats)
  protocol::CoherenceMsg msg{};   ///< valid on tail flits only
};

}  // namespace tcmp::noc
