#include "noc/router.hpp"

#include "common/check.hpp"
#include "noc/boundary.hpp"
#include "obs/observer.hpp"

namespace tcmp::noc {

Router::Router(NodeId id, const Config& cfg, StatRegistry* stats,
               std::string stat_prefix)
    : id_(id), cfg_(cfg), stats_(stats), prefix_(std::move(stat_prefix)) {
  TCMP_CHECK(stats_ != nullptr);
  traversals_ = stats_->counter_ref(prefix_ + ".router_traversals");
  flit_hops_ = stats_->counter_ref(prefix_ + ".flit_hops");
  bit_hops_ = stats_->counter_ref(prefix_ + ".bit_hops");
  bit_dmm_hops_ = stats_->counter_ref(prefix_ + ".bit_dmm_hops");
  TCMP_CHECK(cfg_.vcs_per_vnet >= 1 && cfg_.vnets >= 1 && cfg_.buffer_flits >= 1);
  route_table_.assign(cfg_.nodes, kPortLocal);
  input_.assign(kNumPorts, std::vector<InputVc>(num_vcs()));
  for (auto& port : input_)
    for (InputVc& vc : port) vc.buffer.reset_capacity(cfg_.buffer_flits);
  output_.resize(kNumPorts);
  for (auto& out : output_) out.vcs.resize(num_vcs());
}

void Router::set_route(NodeId dst, unsigned port) {
  TCMP_CHECK(dst < route_table_.size() && port < kNumPorts);
  route_table_[dst] = static_cast<std::uint8_t>(port);
}

void Router::set_eject(unsigned port, EjectFn fn) {
  TCMP_CHECK(port < kNumPorts);
  output_[port].eject = std::move(fn);
  // Ejection sinks always drain: unbounded credit.
  for (auto& vc : output_[port].vcs) vc.credits = ~0u;
}

void Router::connect(unsigned out_port, Router* downstream, unsigned in_port,
                     unsigned link_cycles, double link_mm) {
  TCMP_CHECK(out_port < kNumPorts);
  TCMP_CHECK(downstream != nullptr && in_port < kNumPorts);
  OutputPort& out = output_[out_port];
  TCMP_CHECK_MSG(!out.eject, "port is already an ejection port");
  out.downstream = downstream;
  out.downstream_port = in_port;
  out.link_cycles = link_cycles;
  out.link_mm = link_mm;
  for (auto& vc : out.vcs) vc.credits = downstream->cfg_.buffer_flits;
  downstream->upstream_of_input_[in_port] = this;
  downstream->upstream_out_port_[in_port] = out_port;
}

bool Router::can_inject(unsigned port, unsigned vc) const {
  TCMP_DCHECK(port < kNumPorts && vc < num_vcs());
  return !input_[port][vc].buffer.full();
}

bool Router::try_inject(unsigned port, unsigned vc, Flit&& flit, Cycle now) {
  if (!can_inject(port, vc)) return false;
  input_[port][vc].buffer.push_back({std::move(flit), now});
  ++buffered_;
  return true;
}

void Router::deliver_busy(Cycle now) {
  for (unsigned p = 0; p < kNumPorts; ++p) {
    if (arrivals_[p].next_ready() > now) continue;
    while (auto arr = arrivals_[p].pop_ready(now)) {
      InputVc& vc = input_[p][arr->vc];
      TCMP_CHECK_MSG(!vc.buffer.full(),
                     "credit protocol violated: buffer overflow");
      vc.buffer.push_back({std::move(arr->flit), now});
      ++buffered_;
      --arrivals_pending_;
    }
  }
  while (auto cr = credit_returns_.pop_ready(now)) {
    output_[cr->first].vcs[cr->second].credits++;
  }
}

void Router::allocate_busy(Cycle now) {
  for (unsigned p = 0; p < kNumPorts; ++p) {
    for (unsigned v = 0; v < num_vcs(); ++v) {
      InputVc& in = input_[p][v];
      if (in.buffer.empty()) continue;
      BufferedFlit& head = in.buffer.front();
      if (!head.flit.head || in.vc_allocated) continue;
      if (!cfg_.single_cycle && head.buffered_at >= now) continue;  // BW -> VA
      if (!in.routed) {
        TCMP_DCHECK(head.flit.dst < route_table_.size());
        in.out_port = route_table_[head.flit.dst];
        in.routed = true;
      }
      OutputPort& out = output_[in.out_port];
      const unsigned base = head.flit.vnet * cfg_.vcs_per_vnet;
      for (unsigned k = 0; k < cfg_.vcs_per_vnet; ++k) {
        OutputVc& ovc = out.vcs[base + k];
        if (ovc.held) continue;
        ovc.held = true;
        ovc.holder_port = p;
        ovc.holder_vc = v;
        in.vc_allocated = true;
        in.out_vc = base + k;
        in.allocated_at = now;
        break;
      }
    }
  }
}

void Router::send_credit(unsigned in_port, unsigned vc, Cycle now) {
  Router* up = upstream_of_input_[in_port];
  if (up == nullptr) return;  // Local port: the NI checks occupancy directly
  const unsigned up_out = upstream_out_port_[in_port];
  // link_cycles is immutable after construction, so this read is safe even
  // when the upstream router belongs to another partition.
  const Cycle deadline = now + up->output_[up_out].link_cycles;
  if (upstream_cross_[in_port] != nullptr) {
    upstream_cross_[in_port]->push_credit(up, up_out, vc, deadline);
  } else {
    up->credit_returns_.push(deadline, {up_out, vc});
  }
}

void Router::switch_busy(Cycle now) {
  bool input_used[kNumPorts] = {};
  for (unsigned p = 0; p < kNumPorts; ++p) {
    OutputPort& out = output_[p];
    const unsigned slots = kNumPorts * num_vcs();
    for (unsigned i = 0; i < slots; ++i) {
      const unsigned idx = (out.sa_rr + i) % slots;
      const unsigned in_port = idx / num_vcs();
      const unsigned in_vc = idx % num_vcs();
      if (input_used[in_port]) continue;
      InputVc& in = input_[in_port][in_vc];
      if (!in.vc_allocated || in.out_port != p || in.buffer.empty()) continue;
      BufferedFlit& head = in.buffer.front();
      if (!cfg_.single_cycle) {
        if (head.buffered_at >= now) continue;         // still being written
        if (head.flit.head && in.allocated_at >= now) continue;  // VA -> SA
      } else if (head.buffered_at > now) {
        continue;
      }
      OutputVc& ovc = out.vcs[in.out_vc];
      if (ovc.credits == 0) continue;

      // Winner: traverse the switch.
      Flit flit = std::move(head.flit);
      const unsigned out_vc = in.out_vc;
      in.buffer.pop_front();
      --buffered_;
      input_used[in_port] = true;
      out.sa_rr = (idx + 1) % slots;
      ++traversals_;
      if (flit.tail) {
        ovc.held = false;
        in.vc_allocated = false;
        in.routed = false;
        if (obs_ != nullptr) [[unlikely]] {
          obs_->msg_hop(flit.msg, id_, now);
        }
      }
      send_credit(in_port, in_vc, now);

      if (out.eject) {
        out.eject(std::move(flit));
      } else {
        TCMP_CHECK_MSG(out.downstream != nullptr, "unwired output port");
        ovc.credits--;
        ++flit_hops_;
        bit_hops_ += flit.active_bits;
        bit_dmm_hops_ +=
            flit.active_bits * static_cast<std::uint64_t>(out.link_mm * 10.0 + 0.5);
        if (flit.tail) {
          flit.wire_cycles = static_cast<std::uint16_t>(flit.wire_cycles +
                                                        out.link_cycles);
        }
        const Cycle deadline = now + 1 + out.link_cycles;
        if (out.cross != nullptr) {
          out.cross->push_flit(out.downstream, out.downstream_port, out_vc,
                               deadline, std::move(flit));
        } else {
          out.downstream->arrivals_[out.downstream_port].push(
              deadline, {out_vc, std::move(flit)});
          ++out.downstream->arrivals_pending_;
        }
      }
      break;  // one flit per output port per cycle
    }
  }
}

bool Router::quiescent() const {
  for (const auto& port : input_)
    for (const auto& vc : port)
      if (!vc.buffer.empty()) return false;
  for (const auto& q : arrivals_)
    if (!q.empty()) return false;
  return true;
}

}  // namespace tcmp::noc
