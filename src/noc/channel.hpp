// Physical channel description. The baseline network has one 75-byte B-Wire
// channel; the heterogeneous network adds a narrow VL-Wire channel and
// shrinks the B channel to 34 bytes (paper Sec. 4.3). Each channel is a
// physically separate router+link plane; they share only the network
// interfaces.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "common/units.hpp"
#include "wire/link_design.hpp"
#include "wire/wire_spec.hpp"

namespace tcmp::noc {

struct ChannelSpec {
  std::string name;       ///< "B" or "VL"
  Bytes width_bytes{75};  ///< flit width
  unsigned link_cycles = 3;  ///< link traversal latency (cycles per hop)
  wire::WireSpec wires;      ///< per-wire energy characteristics

  [[nodiscard]] unsigned width_bits() const { return width_bytes * 8; }
  [[nodiscard]] Flits flits_for(Bytes bytes) const {
    return Flits{(bytes + width_bytes - 1) / width_bytes};
  }
};

/// Channel set for a link partition at a given clock and link length
/// (`link_length_mm` in the paper's mm units — the config boundary).
[[nodiscard]] std::vector<ChannelSpec> make_channels(
    const wire::LinkPartition& partition,
    double link_length_mm = 5.0,  // tcmplint: allow-raw-unit
    units::Hertz freq = units::hertz(4e9));

/// Channel index conventions. Channel 0 is always the B channel. For the
/// paper's VL+B style, channel 1 is the VL bundle. For the Cheng [6]
/// three-subnet style, channel 1 is the L subnet and channel 2 the PW subnet.
inline constexpr unsigned kBChannel = 0;
inline constexpr unsigned kVlChannel = 1;
inline constexpr unsigned kLChannel = 1;
inline constexpr unsigned kPwChannel = 2;

}  // namespace tcmp::noc
