#include "workloads/synthetic_app.hpp"

#include "common/check.hpp"
#include "common/snapshot.hpp"

namespace tcmp::workloads {
namespace {

/// SplitMix64 — used as a stateless scatter hash for non-contiguous layouts.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Scattered layouts keep 4 KB chunks intact.
constexpr std::uint64_t kChunkLines = 64;
/// Separation between a core's private arrays: distinct 1-byte-LO regions
/// (256 lines each) but a single 2-byte-LO region (64K lines) per core.
constexpr std::uint64_t kStreamGapLines = 512;

}  // namespace

SyntheticApp::SyntheticApp(const AppParams& params, unsigned n_cores)
    : params_(params), n_cores_(n_cores), cores_(n_cores) {
  TCMP_CHECK(n_cores >= 1);
  TCMP_CHECK(params_.shared_lines >= n_cores * 4);
  TCMP_CHECK(params_.num_streams >= 1);
  for (unsigned c = 0; c < n_cores; ++c) {
    cores_[c].rng.reseed(params_.seed * 1000003 + c * 7919 + 17);
    cores_[c].stream_cursor.assign(params_.num_streams, 0);
  }
  // Layout: per-core private arrays live in separate regions (kStreamGapLines
  // apart); the shared region follows all of them.
  shared_base_ = LineAddr{params_.base_line +
                          n_cores_ * params_.num_streams * kStreamGapLines};
}

void SyntheticApp::save(SnapshotWriter& w) const {
  const_cast<SyntheticApp*>(this)->snapshot_io(w);
}

void SyntheticApp::load(SnapshotReader& r) { snapshot_io(r); }

LineAddr SyntheticApp::apply_layout(LineAddr region_base, std::uint64_t offset,
                                std::uint64_t salt) const {
  if (params_.layout == Layout::kContiguous) {
    return LineAddr{region_base.value() + offset};
  }
  // Scattered: keep 4 KB chunks intact (cache/page locality survives) but
  // place chunks pseudo-randomly across a large VA window, as heap-allocated
  // and non-contiguous grid data behave.
  const std::uint64_t chunk = offset / kChunkLines;
  const std::uint64_t within = offset % kChunkLines;
  const std::uint64_t placed = mix64(chunk * 0x10001 + salt * 0x9e37 + params_.seed) %
                               (params_.scatter_lines / kChunkLines);
  return LineAddr{params_.base_line + params_.scatter_lines +
                  placed * kChunkLines + within};
}

LineAddr SyntheticApp::private_line(unsigned core, CoreState& st) {
  // Bursty interleaving over the core's arrays: inner loops process one
  // array for a stretch, then move to the next.
  if (!st.rng.chance(0.85)) st.next_stream = (st.next_stream + 1) % params_.num_streams;
  const unsigned k = st.next_stream;
  const std::uint64_t stream_lines =
      std::max<std::uint64_t>(64, params_.private_lines / params_.num_streams);
  std::uint64_t& cursor = st.stream_cursor[k];
  if (st.rng.chance(params_.spatial_locality)) {
    cursor = (cursor + 1) % stream_lines;
  } else {
    cursor = st.rng.next_below(stream_lines);
  }
  const LineAddr base{params_.base_line +
                      (core * params_.num_streams + k) * kStreamGapLines};
  return apply_layout(base, cursor, /*salt=*/core * 16 + k + 1);
}

LineAddr SyntheticApp::shared_line(unsigned core, CoreState& st) {
  const std::uint64_t lines = params_.shared_lines;
  const std::uint64_t segment = lines / n_cores_;
  std::uint64_t offset = 0;

  // Programs stream sequentially through shared records; with probability
  // spatial_locality the access continues the current run instead of
  // re-targeting by pattern. Epoch changes (migratory handoffs, transpose
  // phases) break the run.
  const std::uint64_t epoch = [&]() -> std::uint64_t {
    switch (params_.pattern) {
      case SharePattern::kMigratory:
        return st.ops_done / 24;
      case SharePattern::kTranspose:
        return params_.barrier_interval != 0 ? st.ops_done / params_.barrier_interval
                                             : st.ops_done / 2000;
      default:
        return 0;
    }
  }();
  if (st.shared_cursor_valid && st.shared_epoch == epoch &&
      params_.pattern != SharePattern::kIrregularGraph &&
      st.rng.chance(params_.spatial_locality)) {
    st.shared_cursor = (st.shared_cursor + 1) % lines;
    return apply_layout(shared_base_, st.shared_cursor, /*salt=*/0);
  }
  st.shared_epoch = epoch;

  switch (params_.pattern) {
    case SharePattern::kNeighbor: {
      // 2D stencil on a 4x4 tile grid: mostly own block, sometimes an edge
      // row of a mesh neighbour.
      unsigned target = core;
      if (st.rng.chance(0.25)) {
        // Mesh aspect assumption, matching CmpConfig::with_tiles: 4 wide up
        // to 16 cores, 8 up to 64, 16 beyond.
        const unsigned w = n_cores_ <= 16 ? 4 : (n_cores_ <= 64 ? 8 : 16);
        const unsigned x = core % w, y = core / w;
        unsigned nbr[4];
        unsigned n = 0;
        if (x + 1 < w) nbr[n++] = core + 1;
        if (x > 0) nbr[n++] = core - 1;
        if (y + 1 < n_cores_ / w) nbr[n++] = core + w;
        if (y > 0) nbr[n++] = core - w;
        target = nbr[st.rng.next_below(n)];
      }
      {
        const std::uint64_t hot = std::max<std::uint64_t>(32, segment / 4);
        offset = target * segment + (st.rng.chance(params_.shared_hot_frac)
                                         ? st.rng.next_below(hot)
                                         : st.rng.next_below(segment));
      }
      break;
    }
    case SharePattern::kMigratory: {
      // Objects hopscotch between cores as they advance through their work.
      const std::uint64_t n_objects = 32;
      const std::uint64_t obj_lines = std::max<std::uint64_t>(1, lines / n_objects);
      const std::uint64_t obj = (epoch + core) % n_objects;
      offset = obj * obj_lines + st.rng.next_below(obj_lines);
      break;
    }
    case SharePattern::kProducerConsumer: {
      const unsigned producer = (core + n_cores_ - 1) % n_cores_;
      const unsigned target = st.rng.chance(0.7) ? producer : core;
      offset = target * segment + st.rng.next_below(segment);
      break;
    }
    case SharePattern::kReadMostly:
    case SharePattern::kUniformRandom: {
      const std::uint64_t hot = std::max<std::uint64_t>(64, lines / 8);
      offset = st.rng.chance(params_.shared_hot_frac) ? st.rng.next_below(hot)
                                                      : st.rng.next_below(lines);
      break;
    }
    case SharePattern::kTranspose: {
      // Phased all-to-all: in phase p, core c consumes segment (c+p) mod N.
      const unsigned target = static_cast<unsigned>((core + epoch) % n_cores_);
      offset = target * segment + st.rng.next_below(segment);
      break;
    }
    case SharePattern::kIrregularGraph: {
      // Pointer chase: mostly follow the hash chain, occasionally restart.
      if (st.rng.chance(0.15)) st.chase_cursor = st.rng.next_below(lines);
      st.chase_cursor = mix64(st.chase_cursor + params_.seed) % lines;
      offset = st.chase_cursor;
      break;
    }
  }
  st.shared_cursor = offset;
  st.shared_cursor_valid = true;
  return apply_layout(shared_base_, offset, /*salt=*/0);
}

core::Op SyntheticApp::memory_op(unsigned core, CoreState& st) {
  ++st.ops_done;
  // Read-modify-write completion takes priority (migratory objects).
  if (st.pending_store) {
    st.pending_store = false;
    return core::Op::store(st.pending_store_line);
  }
  // Word-granularity dwell: programs touch several words of a line before
  // moving on; repeated touches hit in the L1 and generate no traffic.
  if (st.dwell_left > 0) {
    --st.dwell_left;
    const bool w = st.rng.chance(params_.write_frac);
    return w ? core::Op::store(st.last_line) : core::Op::load(st.last_line);
  }
  const bool shared = st.rng.chance(params_.shared_frac);
  const LineAddr line = shared ? shared_line(core, st) : private_line(core, st);
  st.last_line = line;
  if (params_.line_dwell > 1.0) {
    st.dwell_left = static_cast<std::uint32_t>(
        st.rng.next_below(static_cast<std::uint64_t>(2.0 * params_.line_dwell)));
  }
  bool write = st.rng.chance(params_.write_frac);
  if (shared && params_.pattern == SharePattern::kMigratory) {
    // Migratory sharing reads then writes the object.
    st.pending_store = true;
    st.pending_store_line = line;
    write = false;
  }
  if (shared && params_.pattern == SharePattern::kProducerConsumer) {
    // Writes go to the own segment only; reads prefer the producer's.
    write = st.rng.chance(params_.write_frac * 0.5);
  }
  return write ? core::Op::store(line) : core::Op::load(line);
}

core::Op SyntheticApp::next(unsigned core) {
  TCMP_CHECK(core < n_cores_);
  CoreState& st = cores_[core];
  if (st.finished) return core::Op::done();

  if (st.emit_compute) {
    st.emit_compute = false;
    if (params_.compute_per_mem > 0.0) {
      const auto mean = static_cast<std::uint64_t>(2.0 * params_.compute_per_mem);
      const auto n = static_cast<std::uint32_t>(st.rng.next_below(mean + 1));
      if (n > 0) return core::Op::compute(n);
    }
  }

  const std::uint64_t warmup = params_.warmup_ops();
  if (st.ops_done >= params_.ops_per_core + warmup) {
    st.finished = true;
    return core::Op::done();
  }

  // Warmup/measurement boundary.
  if (warmup != 0 && st.ops_done == warmup && !st.warmup_barrier_emitted) {
    st.warmup_barrier_emitted = true;
    return core::Op::barrier(core::kWarmupBarrierId);
  }

  // Barrier synchronization between phases.
  if (params_.barrier_interval != 0 && st.ops_done > 0 &&
      st.ops_done % params_.barrier_interval == 0 &&
      st.barriers_hit < st.ops_done / params_.barrier_interval) {
    ++st.barriers_hit;
    return core::Op::barrier(st.barriers_hit);
  }

  st.emit_compute = true;
  return memory_op(core, st);
}

}  // namespace tcmp::workloads
