#include "workloads/trace_workload.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace tcmp::workloads {

TraceWorkload::TraceWorkload(std::istream& in, unsigned n_cores, std::string name)
    : streams_(n_cores), name_(std::move(name)) {
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    unsigned core;
    std::string op;
    if (!(ls >> core >> op)) continue;  // blank/comment line
    TCMP_CHECK_MSG(core < n_cores, "trace: core id out of range");
    auto& stream = streams_[core];
    if (op == "L" || op == "S") {
      std::uint64_t addr = 0;
      ls >> std::hex >> addr;
      TCMP_CHECK_MSG(!ls.fail(), "trace: bad address");
      const LineAddr line_addr{addr};
      stream.push_back(op == "L" ? core::Op::load(line_addr)
                                 : core::Op::store(line_addr));
    } else if (op == "C") {
      std::uint32_t n = 0;
      ls >> std::dec >> n;
      TCMP_CHECK_MSG(!ls.fail(), "trace: bad compute count");
      stream.push_back(core::Op::compute(n));
    } else if (op == "B") {
      std::uint32_t id = 0;
      ls >> std::dec >> id;
      TCMP_CHECK_MSG(!ls.fail(), "trace: bad barrier id");
      stream.push_back(core::Op::barrier(id));
    } else {
      TCMP_CHECK_MSG(false, "trace: unknown op");
    }
  }
}

TraceWorkload TraceWorkload::from_file(const std::string& path, unsigned n_cores) {
  std::ifstream in(path);
  TCMP_CHECK_MSG(in.good(), "trace: cannot open file");
  return TraceWorkload(in, n_cores, path);
}

core::Op TraceWorkload::next(unsigned core) {
  TCMP_CHECK(core < streams_.size());
  auto& stream = streams_[core];
  if (stream.empty()) return core::Op::done();
  core::Op op = stream.front();
  stream.pop_front();
  return op;
}

std::size_t TraceWorkload::total_events() const {
  std::size_t n = 0;
  for (const auto& s : streams_) n += s.size();
  return n;
}

void write_trace(std::ostream& out, core::Workload& workload, unsigned n_cores,
                 std::size_t max_events_per_core) {
  out << "# tcmpsim trace: " << workload.name() << "\n";
  for (unsigned c = 0; c < n_cores; ++c) {
    for (std::size_t i = 0; i < max_events_per_core; ++i) {
      const core::Op op = workload.next(c);
      switch (op.kind) {
        case core::OpKind::kLoad:
          out << c << " L 0x" << std::hex << op.line.value() << std::dec << "\n";
          break;
        case core::OpKind::kStore:
          out << c << " S 0x" << std::hex << op.line.value() << std::dec << "\n";
          break;
        case core::OpKind::kCompute:
          out << c << " C " << op.count << "\n";
          break;
        case core::OpKind::kBarrier:
          out << c << " B " << op.count << "\n";
          break;
        case core::OpKind::kDone:
          i = max_events_per_core;  // stop this core
          break;
      }
    }
  }
}

}  // namespace tcmp::workloads
