#include "workloads/trace_workload.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace tcmp::workloads {

TraceWorkload::TraceWorkload(std::istream& in, unsigned n_cores,
                             std::string name)
    : name_(std::move(name)), in_(&in), buffers_(n_cores) {}

std::shared_ptr<TraceWorkload> TraceWorkload::from_file(const std::string& path,
                                                        unsigned n_cores) {
  auto file = std::make_shared<std::ifstream>(path);
  TCMP_CHECK_MSG(file->good(), "trace: cannot open file");
  auto w = std::make_shared<TraceWorkload>(*file, n_cores, path);
  w->owned_ = std::move(file);
  return w;
}

void TraceWorkload::refill(unsigned core) {
  std::string line;
  while (buffers_[core].empty() && !exhausted_) {
    if (!std::getline(*in_, line)) {
      exhausted_ = true;
      break;
    }
    ++line_no_;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    unsigned c = 0;
    std::string op;
    if (!(ls >> c >> op)) continue;  // blank/comment line
    TCMP_CHECK_MSG(c < buffers_.size(), "trace: core id out of range");
    auto& stream = buffers_[c];
    if (op == "L" || op == "S") {
      std::uint64_t addr = 0;
      ls >> std::hex >> addr;
      TCMP_CHECK_MSG(!ls.fail(), "trace: bad address");
      const LineAddr line_addr{addr};
      stream.push_back(op == "L" ? core::Op::load(line_addr)
                                 : core::Op::store(line_addr));
    } else if (op == "C") {
      std::uint32_t n = 0;
      ls >> std::dec >> n;
      TCMP_CHECK_MSG(!ls.fail(), "trace: bad compute count");
      stream.push_back(core::Op::compute(n));
    } else if (op == "B") {
      std::uint32_t id = 0;
      ls >> std::dec >> id;
      TCMP_CHECK_MSG(!ls.fail(), "trace: bad barrier id");
      stream.push_back(core::Op::barrier(id));
    } else {
      TCMP_CHECK_MSG(false, "trace: unknown op");
    }
    max_buffered_ = std::max(max_buffered_, stream.size());
  }
}

core::Op TraceWorkload::next(unsigned core) {
  LockGuard lock(mu_);
  TCMP_CHECK(core < buffers_.size());
  auto& stream = buffers_[core];
  if (stream.empty()) refill(core);
  if (stream.empty()) return core::Op::done();
  core::Op op = stream.front();
  stream.pop_front();
  ++consumed_;
  return op;
}

std::size_t TraceWorkload::events_consumed() const {
  LockGuard lock(mu_);
  return consumed_;
}

std::size_t TraceWorkload::max_buffered() const {
  LockGuard lock(mu_);
  return max_buffered_;
}

void write_trace(std::ostream& out, core::Workload& workload, unsigned n_cores,
                 std::size_t max_events_per_core) {
  out << "# tcmpsim trace: " << workload.name() << "\n";
  std::vector<bool> active(n_cores, true);
  std::vector<std::size_t> emitted(n_cores, 0);
  bool any = true;
  // Round-robin across cores: the streaming reader's per-core buffers then
  // never hold more than one event.
  while (any) {
    any = false;
    for (unsigned c = 0; c < n_cores; ++c) {
      if (!active[c]) continue;
      if (emitted[c] >= max_events_per_core) {
        active[c] = false;
        continue;
      }
      const core::Op op = workload.next(c);
      ++emitted[c];
      switch (op.kind) {
        case core::OpKind::kLoad:
          out << c << " L 0x" << std::hex << op.line.value() << std::dec << "\n";
          break;
        case core::OpKind::kStore:
          out << c << " S 0x" << std::hex << op.line.value() << std::dec << "\n";
          break;
        case core::OpKind::kCompute:
          out << c << " C " << op.count << "\n";
          break;
        case core::OpKind::kBarrier:
          out << c << " B " << op.count << "\n";
          break;
        case core::OpKind::kDone:
          active[c] = false;
          break;
      }
      any = any || active[c];
    }
  }
}

}  // namespace tcmp::workloads
