// The 13 application models of Table 4. Parameters encode each original
// program's documented behaviour (Woo et al. [23] for SPLASH-2; Culler et
// al. for EM3D; Mukherjee et al. for Unstructured):
//
//  * footprint and locality determine L1/L2 miss rates (traffic volume);
//  * sharing fraction and pattern determine the coherence-message mix
//    (Fig. 5) and interconnect sensitivity (Fig. 6): Water/LU share little,
//    MP3D/Unstructured are coherence-bound;
//  * address layout determines compression coverage (Fig. 2): Barnes' and
//    Radix' scattered/irregular address streams defeat small compression
//    caches, dense grid/matrix codes compress almost perfectly.
#include "workloads/app_params.hpp"

#include "common/check.hpp"

namespace tcmp::workloads {

const std::vector<AppParams>& all_apps() {
  // const once-init (thread-safe magic static, immutable afterwards):
  // concurrent sweep workers share this table safely; the mutable-static
  // lint allows exactly this form.
  static const std::vector<AppParams> apps = [] {
    std::vector<AppParams> v;

    // Barnes-Hut: octree walk over heap-allocated bodies. Irregular pointer
    // chasing over a scattered heap -> poor coverage; read-mostly tree with
    // moderate sharing.
    v.push_back({.name = "Barnes",
                 .ops_per_core = 40000,
                 .write_frac = 0.25,
                 .shared_frac = 0.40,
                 .private_lines = 512,
                 .shared_lines = 8192,
                 .pattern = SharePattern::kIrregularGraph,
                 .layout = Layout::kScattered,
                 .spatial_locality = 0.55,
                 .shared_hot_frac = 0.0,  // tree walks touch the whole octree
                 .barrier_interval = 5000,
                 .compute_per_mem = 2.5,
                 .scatter_lines = 1ULL << 20,  // ~128 MB heap: many regions
                 .code_lines = 1536,
                 .seed = 101});

    // EM3D: bipartite graph propagation, 5% remote links -> small shared
    // fraction but irregular graph edges over scattered nodes.
    v.push_back({.name = "EM3D",
                 .ops_per_core = 40000,
                 .write_frac = 0.35,
                 .shared_frac = 0.10,
                 .private_lines = 512,
                 .shared_lines = 8192,
                 .pattern = SharePattern::kIrregularGraph,
                 .layout = Layout::kScattered,
                 .spatial_locality = 0.70,
                 .barrier_interval = 5000,
                 .compute_per_mem = 1.5,
                 .scatter_lines = 1ULL << 20,
                 .code_lines = 768,
                 .seed = 102});

    // FFT: phased all-to-all transpose of contiguous matrices; highly
    // regular strides, frequent barriers.
    v.push_back({.name = "FFT",
                 .ops_per_core = 40000,
                 .write_frac = 0.40,
                 .shared_frac = 0.45,
                 .private_lines = 512,
                 .shared_lines = 8192,
                 .pattern = SharePattern::kTranspose,
                 .layout = Layout::kContiguous,
                 .spatial_locality = 0.95,
                 .barrier_interval = 2500,
                 .compute_per_mem = 1.5,
                 .code_lines = 512,
                 .seed = 103});

    // LU (contiguous blocks): dense blocked factorization, pipelined
    // producer-consumer on block columns; little sharing -> small gains.
    v.push_back({.name = "LU-cont",
                 .ops_per_core = 40000,
                 .write_frac = 0.45,
                 .shared_frac = 0.12,
                 .private_lines = 384,
                 .shared_lines = 8192,
                 .pattern = SharePattern::kProducerConsumer,
                 .layout = Layout::kContiguous,
                 .spatial_locality = 0.95,
                 .barrier_interval = 4000,
                 .compute_per_mem = 3.0,
                 .code_lines = 256,
                 .seed = 104});

    // LU (non-contiguous): same computation, rows scattered across the VA
    // space -> worse coverage for small low-order windows.
    v.push_back({.name = "LU-noncont",
                 .ops_per_core = 40000,
                 .write_frac = 0.45,
                 .shared_frac = 0.12,
                 .private_lines = 384,
                 .shared_lines = 8192,
                 .pattern = SharePattern::kProducerConsumer,
                 .layout = Layout::kScattered,
                 .spatial_locality = 0.95,
                 .barrier_interval = 4000,
                 .compute_per_mem = 3.0,
                 .scatter_lines = 1ULL << 18,  // rows moderately spread
                 .code_lines = 256,
                 .seed = 105});

    // MP3D: particles migrate between space cells owned by different cores;
    // the classic migratory-sharing stress test, coherence-dominated.
    v.push_back({.name = "MP3D",
                 .ops_per_core = 40000,
                 .write_frac = 0.45,
                 .shared_frac = 0.70,
                 .private_lines = 512,
                 .shared_lines = 8192,
                 .pattern = SharePattern::kMigratory,
                 .layout = Layout::kContiguous,
                 .spatial_locality = 0.80,
                 .line_dwell = 3.0,
                 .barrier_interval = 20000,
                 .compute_per_mem = 0.3,
                 .code_lines = 512,
                 .seed = 106});

    // Ocean (contiguous): red-black grid solver, nearest-neighbour halos.
    v.push_back({.name = "Ocean-cont",
                 .ops_per_core = 40000,
                 .write_frac = 0.40,
                 .shared_frac = 0.25,
                 .private_lines = 640,
                 .shared_lines = 8192,
                 .pattern = SharePattern::kNeighbor,
                 .layout = Layout::kContiguous,
                 .spatial_locality = 0.92,
                 .barrier_interval = 2500,
                 .compute_per_mem = 1.8,
                 .code_lines = 768,
                 .seed = 107});

    // Ocean (non-contiguous): 2D-array allocation scatters grid rows.
    v.push_back({.name = "Ocean-noncont",
                 .ops_per_core = 40000,
                 .write_frac = 0.40,
                 .shared_frac = 0.25,
                 .private_lines = 640,
                 .shared_lines = 8192,
                 .pattern = SharePattern::kNeighbor,
                 .layout = Layout::kScattered,
                 .spatial_locality = 0.92,
                 .barrier_interval = 2500,
                 .compute_per_mem = 1.8,
                 .scatter_lines = 1ULL << 18,
                 .code_lines = 768,
                 .seed = 108});

    // Radix: histogram ranking then permutation writes scattered uniformly
    // over the destination array -> low locality, low coverage.
    v.push_back({.name = "Radix",
                 .ops_per_core = 40000,
                 .write_frac = 0.50,
                 .shared_frac = 0.45,
                 .private_lines = 512,
                 .shared_lines = 16384,
                 .pattern = SharePattern::kUniformRandom,
                 .layout = Layout::kScattered,  // key array in scattered chunks
                 .spatial_locality = 0.30,
                 .shared_hot_frac = 0.0,  // permutation writes are uniform
                 .barrier_interval = 5000,
                 .compute_per_mem = 1.0,
                 .scatter_lines = 1ULL << 19,
                 .code_lines = 384,
                 .seed = 109});

    // Raytrace: large read-mostly scene (BVH + primitives), private rays.
    v.push_back({.name = "Raytrace",
                 .ops_per_core = 40000,
                 .write_frac = 0.10,
                 .shared_frac = 0.50,
                 .private_lines = 512,
                 .shared_lines = 12288,
                 .pattern = SharePattern::kReadMostly,
                 .layout = Layout::kContiguous,
                 .spatial_locality = 0.60,
                 .compute_per_mem = 2.5,
                 .code_lines = 2048,
                 .seed = 110});

    // Unstructured: CFD over an irregular mesh with heavy neighbour updates;
    // coherence-intensive like MP3D but graph-structured.
    v.push_back({.name = "Unstructured",
                 .ops_per_core = 40000,
                 .write_frac = 0.45,
                 .shared_frac = 0.60,
                 .private_lines = 512,
                 .shared_lines = 8192,
                 .pattern = SharePattern::kIrregularGraph,
                 .layout = Layout::kContiguous,
                 .spatial_locality = 0.60,
                 .line_dwell = 3.0,
                 .barrier_interval = 10000,
                 .compute_per_mem = 0.4,
                 .code_lines = 1024,
                 .seed = 111});

    // Water-nsq: O(n^2) molecular dynamics; large compute phases, tiny
    // sharing -> the interconnect barely matters.
    v.push_back({.name = "Water-nsq",
                 .ops_per_core = 40000,
                 .write_frac = 0.30,
                 .shared_frac = 0.08,
                 .private_lines = 384,
                 .shared_lines = 4096,
                 .pattern = SharePattern::kReadMostly,
                 .layout = Layout::kContiguous,
                 .spatial_locality = 0.93,
                 .barrier_interval = 6000,
                 .compute_per_mem = 4.0,
                 .code_lines = 384,
                 .seed = 112});

    // Water-spa: spatial-decomposition variant; even less sharing.
    v.push_back({.name = "Water-spa",
                 .ops_per_core = 40000,
                 .write_frac = 0.30,
                 .shared_frac = 0.06,
                 .private_lines = 384,
                 .shared_lines = 4096,
                 .pattern = SharePattern::kNeighbor,
                 .layout = Layout::kContiguous,
                 .spatial_locality = 0.93,
                 .barrier_interval = 6000,
                 .compute_per_mem = 4.0,
                 .code_lines = 448,
                 .seed = 113});

    return v;
  }();
  return apps;
}

const AppParams& app(const std::string& name) {
  for (const auto& a : all_apps()) {
    if (a.name == name) return a;
  }
  TCMP_CHECK_MSG(false, "unknown application name");
  return all_apps().front();
}

}  // namespace tcmp::workloads
