// Binary trace container (.tct): compact per-core event streams for long
// workloads (ROADMAP item 4 — many long traces instead of a few short
// synthetic kernels).
//
// The encoding eats our own dogfood: line addresses are stored as zigzag
// deltas against the previous address in the same core's stream — the same
// base+delta idea the paper's stride/DBRC address compressors exploit on the
// wire (compression/stride.hpp), applied to the trace file. Loads and stores
// in a striding loop cost 2 bytes each; compute bursts and barriers cost 1-2.
//
// File layout (all integers little-endian):
//   "TCT1"  u32 version  u32 n_cores  u32 flags  u64 code_lines
//   u64 first_block_offset[n_cores]      (0 = empty stream; back-patched)
//   u64 event_count[n_cores]             (back-patched at close)
//   blocks...
// Block: u64 next_block_offset (0 = last)  u32 payload_bytes  payload.
// Each core's blocks form a forward-linked chain, so the reader holds one
// block (<= 64 KiB) per core regardless of trace length, and cores never
// contend: every reader cursor owns its own file handle.
//
// Event encoding: opcode byte kind<<6 | n.
//   load (0) / store (1): n = byte length of the zigzag-encoded address
//     delta, which follows raw LE (n = 0 means delta 0).
//   compute (2) / barrier (3): value inline in n when < 63, else n = 63 and
//     a LEB128 varint follows.
// kDone is not encoded: a stream ends when its last block drains.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/workload.hpp"

namespace tcmp::workloads {

inline constexpr std::uint32_t kTraceFormatVersion = 1;
inline constexpr char kTraceMagic[4] = {'T', 'C', 'T', '1'};
/// Block payloads flush at this size; the reader's per-core memory bound.
inline constexpr std::size_t kTraceBlockBytes = 64 * 1024;

/// Streaming .tct writer. Single-threaded: one file cursor serves all cores
/// (tcmpsim gates --record to --threads 1).
class TraceRecorder {
 public:
  TraceRecorder(const std::string& path, unsigned n_cores, bool has_warmup,
                std::uint64_t code_lines);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Append one event (kDone is ignored — end-of-stream is implicit).
  void record(unsigned core, const core::Op& op);
  /// Flush every open block and back-patch the header tables. Idempotent;
  /// the destructor calls it.
  void close();

  [[nodiscard]] std::uint64_t events_recorded() const { return total_events_; }

 private:
  struct CoreStream {
    std::vector<std::uint8_t> buf;  ///< open block payload
    std::uint64_t patch_at = 0;     ///< file offset of the link to back-patch
    std::uint64_t prev_line = 0;  ///< delta base; tcmplint: allow-raw-unit (zigzag wrap-around arithmetic)
    std::uint64_t events = 0;
  };

  void flush(unsigned core);

  std::fstream out_;
  std::string path_;
  std::vector<CoreStream> cores_;
  std::uint64_t total_events_ = 0;
  bool closed_ = false;
};

/// Streaming .tct reader. Each core's cursor owns an independent file handle
/// and decodes its own block chain, so next() needs no locking: under a
/// partition plan each cursor is touched only by its tile's thread.
class BinaryTraceWorkload final : public core::Workload {
 public:
  explicit BinaryTraceWorkload(const std::string& path);

  core::Op next(unsigned core) override;
  [[nodiscard]] std::string name() const override { return path_; }
  [[nodiscard]] bool has_warmup() const override { return has_warmup_; }
  [[nodiscard]] std::uint64_t code_lines() const override { return code_lines_; }

  [[nodiscard]] unsigned n_cores() const { return n_cores_; }
  /// Total events in the file (from the header tables).
  [[nodiscard]] std::uint64_t total_events() const { return total_events_; }

  /// Checkpointable: a cursor is (block offset, position, delta base).
  [[nodiscard]] bool can_snapshot() const override { return true; }
  void save(SnapshotWriter& w) const override;
  void load(SnapshotReader& r) override;

 private:
  struct Cursor {
    std::unique_ptr<std::ifstream> in;
    std::vector<std::uint8_t> payload;  ///< current block
    std::uint64_t block_offset = 0;     ///< 0 = no block loaded
    std::uint64_t next_block = 0;
    std::uint64_t pos = 0;              ///< decode position within payload
    std::uint64_t prev_line = 0;  ///< delta base; tcmplint: allow-raw-unit (zigzag wrap-around arithmetic)
    bool done = false;
  };

  void load_block(Cursor& c, std::uint64_t offset);
  core::Op decode(Cursor& c);

  // The file identity and header fields below are re-read from the trace on
  // open; a checkpoint stores only the per-core cursor positions.
  // tcmplint: snapshot-exempt (file identity; restore re-opens the trace)
  std::string path_;
  unsigned n_cores_ = 0;
  // tcmplint: snapshot-exempt (trace header field, re-read on open)
  bool has_warmup_ = false;
  // tcmplint: snapshot-exempt (trace header field, re-read on open)
  std::uint64_t code_lines_ = 0;
  // tcmplint: snapshot-exempt (trace header field, re-read on open)
  std::uint64_t total_events_ = 0;
  // tcmplint: snapshot-exempt (trace header table, re-read on open)
  std::vector<std::uint64_t> first_block_;
  std::vector<Cursor> cursors_;
};

/// Pass-through wrapper that captures another workload's stream to a .tct
/// file as the simulation consumes it (tcmpsim --record). Single-threaded,
/// like the recorder it feeds.
class RecordingWorkload final : public core::Workload {
 public:
  RecordingWorkload(std::shared_ptr<core::Workload> inner,
                    const std::string& path, unsigned n_cores);

  core::Op next(unsigned core) override;
  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] bool has_warmup() const override { return inner_->has_warmup(); }
  [[nodiscard]] std::uint64_t code_lines() const override {
    return inner_->code_lines();
  }

  /// Finish the file (flush + back-patch). Idempotent.
  void finish() { recorder_.close(); }
  [[nodiscard]] std::uint64_t events_recorded() const {
    return recorder_.events_recorded();
  }

 private:
  std::shared_ptr<core::Workload> inner_;
  TraceRecorder recorder_;
};

}  // namespace tcmp::workloads
