// Deterministic synthetic application generator. One instance serves all 16
// cores; each core gets an independent seeded RNG and phase state, so the
// stream is reproducible regardless of simulator interleaving.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/workload.hpp"
#include "workloads/app_params.hpp"

namespace tcmp::workloads {

class SyntheticApp final : public core::Workload {
 public:
  SyntheticApp(const AppParams& params, unsigned n_cores);

  core::Op next(unsigned core) override;
  [[nodiscard]] std::string name() const override { return params_.name; }
  [[nodiscard]] bool has_warmup() const override { return params_.warmup_ops() != 0; }
  [[nodiscard]] std::uint64_t code_lines() const override { return params_.code_lines; }

  /// Checkpointable: per-core cursors plus their RNGs are the whole state.
  [[nodiscard]] bool can_snapshot() const override { return true; }
  void save(SnapshotWriter& w) const override;
  void load(SnapshotReader& r) override;

  [[nodiscard]] const AppParams& params() const { return params_; }

 private:
  struct CoreState {
    Rng rng{1};
    std::uint64_t ops_done = 0;
    std::vector<std::uint64_t> stream_cursor;  ///< per private array
    unsigned next_stream = 0;
    std::uint64_t chase_cursor = 0;   ///< irregular-graph walk position
    std::uint32_t barriers_hit = 0;
    bool pending_store = false;       ///< second half of a read-modify-write
    LineAddr pending_store_line{};
    LineAddr last_line{};             ///< dwell: repeated word accesses per line
    std::uint32_t dwell_left = 0;
    std::uint64_t shared_cursor = 0;  ///< sequential run position (shared region)
    bool shared_cursor_valid = false;
    std::uint64_t shared_epoch = 0;   ///< invalidates runs on phase/object change
    bool emit_compute = false;        ///< interleave compute after each mem op
    bool warmup_barrier_emitted = false;
    bool finished = false;

    template <typename Ar>
    void snapshot_io(Ar& ar) {
      ar.field(rng);
      ar.field(ops_done);
      ar.field(stream_cursor);
      ar.field(next_stream);
      ar.field(chase_cursor);
      ar.field(barriers_hit);
      ar.field(pending_store);
      ar.field(pending_store_line);
      ar.field(last_line);
      ar.field(dwell_left);
      ar.field(shared_cursor);
      ar.field(shared_cursor_valid);
      ar.field(shared_epoch);
      ar.field(emit_compute);
      ar.field(warmup_barrier_emitted);
      ar.field(finished);
    }
  };

  [[nodiscard]] LineAddr private_line(unsigned core, CoreState& st);
  [[nodiscard]] LineAddr shared_line(unsigned core, CoreState& st);
  [[nodiscard]] LineAddr apply_layout(LineAddr region_base, std::uint64_t offset,
                                  std::uint64_t salt) const;
  core::Op memory_op(unsigned core, CoreState& st);

  /// One body for both archive directions (save() and load() dispatch here).
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.section("synthetic-app");
    ar.verify(n_cores_);
    ar.verify(params_.seed);
    ar.field(cores_);
  }

  AppParams params_;
  unsigned n_cores_;
  std::vector<CoreState> cores_;
  // tcmplint: snapshot-exempt (config-derived constant, set at construction)
  LineAddr shared_base_;
};

}  // namespace tcmp::workloads
