#include "workloads/trace_io.hpp"

#include <algorithm>
#include <ios>

#include "common/check.hpp"
#include "common/snapshot.hpp"

namespace tcmp::workloads {
namespace {

constexpr std::uint32_t kFlagHasWarmup = 1u << 0;

void put_u32(std::ostream& o, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  o.write(b, 4);
}

void put_u64(std::ostream& o, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  o.write(b, 8);
}

std::uint32_t get_u32(std::istream& in) {
  char b[4];
  in.read(b, 4);
  TCMP_CHECK_MSG(in.good(), "tct: truncated file");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  return v;
}

std::uint64_t get_u64(std::istream& in) {
  char b[8];
  in.read(b, 8);
  TCMP_CHECK_MSG(in.good(), "tct: truncated file");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  return v;
}

[[nodiscard]] std::uint64_t zigzag(std::int64_t d) {
  return (static_cast<std::uint64_t>(d) << 1) ^
         static_cast<std::uint64_t>(d >> 63);
}

[[nodiscard]] std::int64_t unzigzag(std::uint64_t z) {
  return static_cast<std::int64_t>(z >> 1) ^
         -static_cast<std::int64_t>(z & 1);
}

void encode_varint(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  while (v >= 0x80) {
    buf.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf.push_back(static_cast<std::uint8_t>(v));
}

/// Event-kind codes in the opcode byte's top 2 bits.
enum : std::uint8_t { kOpLoad = 0, kOpStore = 1, kOpCompute = 2, kOpBarrier = 3 };

/// Header offset of the per-core first-block table.
[[nodiscard]] std::uint64_t first_block_table_at() { return 24; }
[[nodiscard]] std::uint64_t event_count_table_at(unsigned n_cores) {
  return 24 + 8ull * n_cores;
}

}  // namespace

// --- TraceRecorder ---------------------------------------------------------

TraceRecorder::TraceRecorder(const std::string& path, unsigned n_cores,
                             bool has_warmup, std::uint64_t code_lines)
    : out_(path, std::ios::in | std::ios::out | std::ios::trunc |
                     std::ios::binary),
      path_(path),
      cores_(n_cores) {
  TCMP_CHECK_MSG(out_.good(), "tct: cannot open output file");
  out_.write(kTraceMagic, sizeof kTraceMagic);
  put_u32(out_, kTraceFormatVersion);
  put_u32(out_, n_cores);
  put_u32(out_, has_warmup ? kFlagHasWarmup : 0);
  put_u64(out_, code_lines);
  // First-block and event-count tables, back-patched by close().
  for (unsigned c = 0; c < 2 * n_cores; ++c) put_u64(out_, 0);
  for (unsigned c = 0; c < n_cores; ++c)
    cores_[c].patch_at = first_block_table_at() + 8ull * c;
}

TraceRecorder::~TraceRecorder() { close(); }

void TraceRecorder::record(unsigned core, const core::Op& op) {
  TCMP_CHECK(core < cores_.size());
  TCMP_CHECK_MSG(!closed_, "tct: record after close");
  CoreStream& cs = cores_[core];
  auto& buf = cs.buf;
  switch (op.kind) {
    case core::OpKind::kLoad:
    case core::OpKind::kStore: {
      const std::uint8_t kind =
          op.kind == core::OpKind::kLoad ? kOpLoad : kOpStore;
      // Stride-style base+delta (see header): zigzag of the signed step
      // from this core's previous address, minimal-length little-endian.
      const std::uint64_t z =
          zigzag(static_cast<std::int64_t>(op.line.value() - cs.prev_line));
      std::uint8_t n = 0;
      for (std::uint64_t rest = z; rest != 0; rest >>= 8) ++n;
      buf.push_back(static_cast<std::uint8_t>(kind << 6 | n));
      for (std::uint8_t i = 0; i < n; ++i)
        buf.push_back(static_cast<std::uint8_t>((z >> (8 * i)) & 0xFF));
      cs.prev_line = op.line.value();
      break;
    }
    case core::OpKind::kCompute:
    case core::OpKind::kBarrier: {
      const std::uint8_t kind =
          op.kind == core::OpKind::kCompute ? kOpCompute : kOpBarrier;
      if (op.count < 63) {
        buf.push_back(static_cast<std::uint8_t>(kind << 6 | op.count));
      } else {
        buf.push_back(static_cast<std::uint8_t>(kind << 6 | 63));
        encode_varint(buf, op.count);
      }
      break;
    }
    case core::OpKind::kDone:
      return;  // end-of-stream is implicit
  }
  ++cs.events;
  ++total_events_;
  if (buf.size() >= kTraceBlockBytes) flush(core);
}

void TraceRecorder::flush(unsigned core) {
  CoreStream& cs = cores_[core];
  if (cs.buf.empty()) return;
  out_.seekp(0, std::ios::end);
  const std::uint64_t offset = static_cast<std::uint64_t>(out_.tellp());
  put_u64(out_, 0);  // next_block_offset, patched when the next block lands
  put_u32(out_, static_cast<std::uint32_t>(cs.buf.size()));
  out_.write(reinterpret_cast<const char*>(cs.buf.data()),
             static_cast<std::streamsize>(cs.buf.size()));
  // Link this block into the core's chain.
  out_.seekp(static_cast<std::streamoff>(cs.patch_at));
  put_u64(out_, offset);
  cs.patch_at = offset;  // the new block's next_block_offset field
  cs.buf.clear();
}

void TraceRecorder::close() {
  if (closed_) return;
  closed_ = true;
  for (unsigned c = 0; c < cores_.size(); ++c) flush(c);
  out_.seekp(
      static_cast<std::streamoff>(event_count_table_at(
          static_cast<unsigned>(cores_.size()))));
  for (const CoreStream& cs : cores_) put_u64(out_, cs.events);
  out_.flush();
  TCMP_CHECK_MSG(out_.good(), "tct: write failed");
}

// --- BinaryTraceWorkload ---------------------------------------------------

BinaryTraceWorkload::BinaryTraceWorkload(const std::string& path)
    : path_(path) {
  std::ifstream header(path, std::ios::binary);
  TCMP_CHECK_MSG(header.good(), "tct: cannot open file");
  char magic[sizeof kTraceMagic];
  header.read(magic, sizeof magic);
  TCMP_CHECK_MSG(header.good() && std::equal(std::begin(magic), std::end(magic),
                                             std::begin(kTraceMagic)),
                 "tct: not a binary trace (bad magic)");
  const std::uint32_t version = get_u32(header);
  TCMP_CHECK_MSG(version >= 1 && version <= kTraceFormatVersion,
                 "tct: format version not supported by this build");
  n_cores_ = get_u32(header);
  TCMP_CHECK_MSG(n_cores_ >= 1 && n_cores_ <= 4096, "tct: bad core count");
  const std::uint32_t flags = get_u32(header);
  has_warmup_ = (flags & kFlagHasWarmup) != 0;
  code_lines_ = get_u64(header);
  first_block_.resize(n_cores_);
  for (auto& off : first_block_) off = get_u64(header);
  for (unsigned c = 0; c < n_cores_; ++c) total_events_ += get_u64(header);
  cursors_.resize(n_cores_);
  for (Cursor& c : cursors_) {
    c.in = std::make_unique<std::ifstream>(path, std::ios::binary);
    TCMP_CHECK_MSG(c.in->good(), "tct: cannot open file");
  }
}

void BinaryTraceWorkload::load_block(Cursor& c, std::uint64_t offset) {
  c.in->seekg(static_cast<std::streamoff>(offset));
  c.next_block = get_u64(*c.in);
  const std::uint32_t bytes = get_u32(*c.in);
  c.payload.resize(bytes);
  c.in->read(reinterpret_cast<char*>(c.payload.data()), bytes);
  TCMP_CHECK_MSG(c.in->good(), "tct: truncated block");
  c.block_offset = offset;
  c.pos = 0;
}

core::Op BinaryTraceWorkload::decode(Cursor& c) {
  TCMP_DCHECK(c.pos < c.payload.size());
  const std::uint8_t op = c.payload[c.pos++];
  const std::uint8_t kind = op >> 6;
  const std::uint8_t n = op & 63;
  if (kind == kOpLoad || kind == kOpStore) {
    TCMP_CHECK_MSG(c.pos + n <= c.payload.size(), "tct: corrupt event");
    std::uint64_t z = 0;
    for (std::uint8_t i = 0; i < n; ++i)
      z |= static_cast<std::uint64_t>(c.payload[c.pos++]) << (8 * i);
    c.prev_line += static_cast<std::uint64_t>(unzigzag(z));
    const LineAddr line{c.prev_line};
    return kind == kOpLoad ? core::Op::load(line) : core::Op::store(line);
  }
  std::uint64_t v = n;
  if (n == 63) {
    v = 0;
    unsigned shift = 0;
    while (true) {
      TCMP_CHECK_MSG(c.pos < c.payload.size(), "tct: corrupt event");
      const std::uint8_t byte = c.payload[c.pos++];
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
  }
  const auto count = static_cast<std::uint32_t>(v);
  return kind == kOpCompute ? core::Op::compute(count)
                            : core::Op::barrier(count);
}

core::Op BinaryTraceWorkload::next(unsigned core) {
  TCMP_CHECK(core < cursors_.size());
  Cursor& c = cursors_[core];
  if (c.done) return core::Op::done();
  if (c.block_offset == 0) {
    if (first_block_[core] == 0) {
      c.done = true;
      return core::Op::done();
    }
    load_block(c, first_block_[core]);
  }
  while (c.pos >= c.payload.size()) {
    if (c.next_block == 0) {
      c.done = true;
      c.payload.clear();
      c.payload.shrink_to_fit();
      return core::Op::done();
    }
    load_block(c, c.next_block);
  }
  return decode(c);
}

void BinaryTraceWorkload::save(SnapshotWriter& w) const {
  w.section("tct");
  w.verify(n_cores_);
  for (const Cursor& c : cursors_) {
    w.field(c.block_offset);
    w.field(c.pos);
    w.field(c.prev_line);
    w.field(c.done);
  }
}

void BinaryTraceWorkload::load(SnapshotReader& r) {
  r.section("tct");
  r.verify(n_cores_);
  for (Cursor& c : cursors_) {
    std::uint64_t block_offset = 0;
    std::uint64_t pos = 0;
    r.field(block_offset);
    r.field(pos);
    r.field(c.prev_line);
    r.field(c.done);
    c.payload.clear();
    c.block_offset = 0;
    c.next_block = 0;
    c.pos = 0;
    if (!c.done && block_offset != 0) {
      load_block(c, block_offset);
      TCMP_CHECK_MSG(pos <= c.payload.size(), "tct: snapshot cursor corrupt");
      c.pos = pos;
    }
  }
}

// --- RecordingWorkload -----------------------------------------------------

RecordingWorkload::RecordingWorkload(std::shared_ptr<core::Workload> inner,
                                     const std::string& path, unsigned n_cores)
    : inner_(std::move(inner)),
      recorder_(path, n_cores, inner_->has_warmup(), inner_->code_lines()) {}

core::Op RecordingWorkload::next(unsigned core) {
  const core::Op op = inner_->next(core);
  if (op.kind != core::OpKind::kDone) recorder_.record(core, op);
  return op;
}

}  // namespace tcmp::workloads
