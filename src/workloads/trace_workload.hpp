// Trace-file workloads: run the simulator on externally produced per-core
// memory traces instead of the synthetic application models, and dump any
// workload's stream to the same format.
//
// Format: one event per line, `<core> <op> [arg]`, '#' comments allowed.
//   4 L 0x1a2b          load of line 0x1a2b by core 4
//   4 S 0x1a2c          store
//   4 C 12              12 compute instructions
//   4 B 1               barrier 1 (all cores must emit the same barriers)
// Events for a core are consumed in file order; cores interleave freely.
#pragma once

#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/workload.hpp"

namespace tcmp::workloads {

class TraceWorkload final : public core::Workload {
 public:
  /// Parse a trace from a stream. Aborts (TCMP_CHECK) on malformed lines.
  TraceWorkload(std::istream& in, unsigned n_cores, std::string name = "trace");
  /// Convenience: parse from a file path.
  static TraceWorkload from_file(const std::string& path, unsigned n_cores);

  core::Op next(unsigned core) override;
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] std::size_t total_events() const;

 private:
  std::vector<std::deque<core::Op>> streams_;
  std::string name_;
};

/// Dump `ops` events per core of any workload to the trace format (testing,
/// interchange, replaying synthetic apps elsewhere).
void write_trace(std::ostream& out, core::Workload& workload, unsigned n_cores,
                 std::size_t max_events_per_core);

}  // namespace tcmp::workloads
