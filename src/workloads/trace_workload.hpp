// Trace-file workloads: run the simulator on externally produced per-core
// memory traces instead of the synthetic application models, and dump any
// workload's stream to the same format.
//
// Format: one event per line, `<core> <op> [arg]`, '#' comments allowed.
//   4 L 0x1a2b          load of line 0x1a2b by core 4
//   4 S 0x1a2c          store
//   4 C 12              12 compute instructions
//   4 B 1               barrier 1 (all cores must emit the same barriers)
// Events for a core are consumed in file order; cores interleave freely.
//
// The reader is streaming: lines are parsed on demand into small per-core
// buffers, so a multi-gigabyte trace runs in memory proportional to the
// trace's interleaving skew (how far ahead of the slowest core any other
// core's events appear in the file), not to its length. write_trace emits
// round-robin interleaved streams, for which the skew is one event per core.
// The binary .tct format (workloads/trace_io.hpp) is the preferred container
// for long traces; this text form stays as the human-readable interchange.
#pragma once

#include <deque>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "core/workload.hpp"

namespace tcmp::workloads {

class TraceWorkload final : public core::Workload {
 public:
  /// Stream events from `in`, which must outlive this workload. Aborts
  /// (TCMP_CHECK) on malformed lines — at parse time, i.e. from next().
  TraceWorkload(std::istream& in, unsigned n_cores, std::string name = "trace");
  /// Convenience: stream from a file path (the file handle is owned).
  static std::shared_ptr<TraceWorkload> from_file(const std::string& path,
                                                  unsigned n_cores);

  core::Op next(unsigned core) override;
  [[nodiscard]] std::string name() const override { return name_; }

  /// Events handed out so far (kDone excluded). With a streaming reader the
  /// total is unknowable until the stream ends; after every core has drained
  /// this equals the trace's event count.
  [[nodiscard]] std::size_t events_consumed() const;
  /// Largest number of events any single per-core buffer ever held — the
  /// observable memory bound, equal to the trace's interleaving skew.
  [[nodiscard]] std::size_t max_buffered() const;

 private:
  /// Parse forward until `core` has a buffered event or the stream ends.
  /// Events for other cores encountered on the way are buffered for them.
  void refill(unsigned core) TCMP_REQUIRES(mu_);

  std::string name_;  // tcmplint: allow-unguarded-field (immutable after construction)
  /// from_file keeps the underlying stream alive here.
  std::shared_ptr<std::istream> owned_;  // tcmplint: allow-unguarded-field (immutable after construction)

  /// next() is called from per-tile simulation threads under a partition
  /// plan; the shared stream cursor and buffers need the lock.
  mutable Mutex mu_;
  std::istream* in_ TCMP_GUARDED_BY(mu_);
  std::vector<std::deque<core::Op>> buffers_ TCMP_GUARDED_BY(mu_);
  std::size_t line_no_ TCMP_GUARDED_BY(mu_) = 0;
  std::size_t consumed_ TCMP_GUARDED_BY(mu_) = 0;
  std::size_t max_buffered_ TCMP_GUARDED_BY(mu_) = 0;
  bool exhausted_ TCMP_GUARDED_BY(mu_) = false;
};

/// Dump up to `max_events_per_core` events per core of any workload to the
/// trace format (testing, interchange, replaying synthetic apps elsewhere).
/// Streams are interleaved round-robin so the streaming reader's per-core
/// buffers stay at one event deep.
void write_trace(std::ostream& out, core::Workload& workload, unsigned n_cores,
                 std::size_t max_events_per_core);

}  // namespace tcmp::workloads
