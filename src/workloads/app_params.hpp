// Parameterized application models standing in for the paper's 13 benchmarks
// (Table 4, bottom). Each parameter set encodes the documented memory
// behaviour of the original program — sharing pattern, footprint, spatial
// locality, allocation layout, synchronization density — which is what
// determines message mix (Fig. 5), compression coverage (Fig. 2) and
// interconnect sensitivity (Fig. 6). See DESIGN.md for the substitution
// rationale and workloads/apps.cpp for per-application notes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tcmp::workloads {

/// How cores touch the shared region.
enum class SharePattern {
  kNeighbor,    ///< grid stencil: own block + edges of mesh neighbours (Ocean)
  kMigratory,   ///< objects move core-to-core with read-modify-write (MP3D)
  kProducerConsumer,  ///< core c writes segment c, reads segment c-1 (LU)
  kReadMostly,  ///< widely read, rarely written (Raytrace scene, Barnes body tree)
  kTranspose,   ///< phased all-to-all (FFT transpose, Radix ranking)
  kUniformRandom,     ///< scattered accesses over the whole region (Radix perm.)
  kIrregularGraph,    ///< pointer-chasing over an irregular structure (EM3D,
                      ///  Unstructured, Barnes tree walk)
};

/// Virtual-address layout of each core's data. Contiguous keeps a core's
/// footprint in one dense region (compressible addresses); scattered spreads
/// 4 KB chunks pseudo-randomly over a large VA space (the "non-contiguous
/// allocation" of LU-noncont / Ocean-noncont, and heap-allocated pointer
/// structures) which defeats small compression caches.
enum class Layout { kContiguous, kScattered };

struct AppParams {
  std::string name;
  std::uint64_t ops_per_core = 20000;  ///< memory operations per core
  double write_frac = 0.3;
  double shared_frac = 0.2;        ///< accesses hitting the shared region
  std::uint64_t private_lines = 4096;   ///< per-core footprint (64 B lines)
  std::uint64_t shared_lines = 8192;    ///< global shared footprint
  SharePattern pattern = SharePattern::kUniformRandom;
  Layout layout = Layout::kContiguous;
  double spatial_locality = 0.9;   ///< P(next access continues sequentially)
  double line_dwell = 6.0;         ///< mean accesses to a line before moving on
  /// Fraction of shared accesses that hit the hot subset (1/16 of the
  /// region): real programs concentrate coherence traffic on hot structures
  /// (locks, frontiers, boundary rows). 0 disables (uniform traffic).
  double shared_hot_frac = 0.75;
  /// Concurrent private data structures (arrays) each core walks, placed in
  /// separate address regions (loops touch several arrays per iteration);
  /// this is what limits small compression caches on 1-byte-LO windows.
  unsigned num_streams = 4;
  unsigned barrier_interval = 0;   ///< memory ops between barriers (0 = none)
  double compute_per_mem = 2.0;    ///< mean ALU instructions between mem ops
  std::uint64_t base_line = 0x10000000;  ///< region base (line address)  // tcmplint: allow-raw-unit (layout arithmetic seed)
  double warmup_frac = 0.3;        ///< warmup ops (fraction of ops_per_core)
  /// VA window (in lines) that scattered layouts spread chunks over; larger
  /// windows mean more distinct high-order address regions and therefore
  /// lower compression coverage.
  std::uint64_t scatter_lines = 1ULL << 19;
  /// Program-text footprint in lines (shared by all cores; drives I-fetches).
  std::uint64_t code_lines = 512;
  std::uint64_t seed = 1;

  [[nodiscard]] std::uint64_t warmup_ops() const {
    return static_cast<std::uint64_t>(warmup_frac * static_cast<double>(ops_per_core));
  }

  [[nodiscard]] AppParams scaled(double factor) const {
    AppParams p = *this;
    p.ops_per_core = static_cast<std::uint64_t>(static_cast<double>(ops_per_core) * factor);
    if (p.ops_per_core < 200) p.ops_per_core = 200;
    return p;
  }
};

/// The 13 applications of Table 4, in the paper's order.
[[nodiscard]] const std::vector<AppParams>& all_apps();

/// Lookup by name (aborts if unknown).
[[nodiscard]] const AppParams& app(const std::string& name);

}  // namespace tcmp::workloads
