// Allocation-free hot-path queue primitives. The modeled structures they
// back are tiny and bounded (credit-bounded VC buffers, per-line pending
// queues that are almost always empty, sequence windows spanning a handful
// of in-flight messages), so fixed or small-buffer storage is faithful to
// the hardware as well as fast: no per-element node allocation, no
// rebalancing, contiguous memory. See docs/performance.md for the capacity
// arguments at each use site.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace tcmp {

/// Fixed-capacity FIFO ring. The capacity is set once (construction or
/// reset_capacity) and never grows: pushing into a full ring is a programming
/// error (at the router use site it would mean a credit-protocol violation,
/// which the caller checks first). Requires default-constructible T.
template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;
  explicit RingBuffer(std::size_t capacity) { reset_capacity(capacity); }
  RingBuffer(const RingBuffer&) = default;
  RingBuffer& operator=(const RingBuffer&) = default;
  // Moved-from rings read as empty with zero capacity (the default move
  // would copy the scalar cursors over a hollowed-out slot vector).
  RingBuffer(RingBuffer&& other) noexcept { *this = std::move(other); }
  RingBuffer& operator=(RingBuffer&& other) noexcept {
    if (this != &other) {
      slots_ = std::move(other.slots_);
      head_ = std::exchange(other.head_, 0);
      size_ = std::exchange(other.size_, 0);
      other.slots_.clear();
    }
    return *this;
  }

  /// (Re)size the ring; only valid while empty.
  void reset_capacity(std::size_t capacity) {
    TCMP_CHECK(size_ == 0 && capacity >= 1);
    slots_.assign(capacity, T{});
    head_ = 0;
  }

  void push_back(T v) {
    TCMP_DCHECK_MSG(size_ < slots_.size(), "RingBuffer overflow");
    std::size_t idx = head_ + size_;
    if (idx >= slots_.size()) idx -= slots_.size();
    slots_[idx] = std::move(v);
    ++size_;
  }

  [[nodiscard]] T& front() {
    TCMP_DCHECK(size_ > 0);
    return slots_[head_];
  }
  [[nodiscard]] const T& front() const {
    TCMP_DCHECK(size_ > 0);
    return slots_[head_];
  }

  void pop_front() {
    TCMP_DCHECK(size_ > 0);
    slots_[head_] = T{};  // drop payloads eagerly (moved-from hygiene)
    if (++head_ == slots_.size()) head_ = 0;
    --size_;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == slots_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Exact-image checkpoint serialization (common/snapshot.hpp).
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(slots_);
    ar.field(head_);
    ar.field(size_);
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Small-buffer FIFO: the first kInline elements live inside the object (no
/// allocation at all for the common case), spilling to a heap ring only when
/// a queue transiently grows past that. Value-semantic (copy/move work
/// member-wise because storage is addressed through data(), never through a
/// cached pointer). Requires default-constructible T.
template <typename T, std::size_t kInline = 2>
class SmallQueue {
 public:
  SmallQueue() = default;
  SmallQueue(const SmallQueue&) = default;
  SmallQueue& operator=(const SmallQueue&) = default;
  // Moved-from queues must read as empty (call sites move a pending queue
  // out of its entry and expect the entry's queue drained); the default move
  // would copy the scalar cursors and leave the source claiming its old size.
  SmallQueue(SmallQueue&& other) noexcept { *this = std::move(other); }
  SmallQueue& operator=(SmallQueue&& other) noexcept {
    if (this != &other) {
      inline_ = std::move(other.inline_);
      heap_ = std::move(other.heap_);
      cap_ = std::exchange(other.cap_, kInline);
      head_ = std::exchange(other.head_, 0);
      size_ = std::exchange(other.size_, 0);
      other.heap_.clear();
    }
    return *this;
  }

  void push_back(T v) {
    if (size_ == cap_) grow();
    std::size_t idx = head_ + size_;
    if (idx >= cap_) idx -= cap_;
    data()[idx] = std::move(v);
    ++size_;
  }

  [[nodiscard]] T& front() {
    TCMP_DCHECK(size_ > 0);
    return data()[head_];
  }
  [[nodiscard]] const T& front() const {
    TCMP_DCHECK(size_ > 0);
    return data()[head_];
  }
  [[nodiscard]] T& back() {
    TCMP_DCHECK(size_ > 0);
    std::size_t idx = head_ + size_ - 1;
    if (idx >= cap_) idx -= cap_;
    return data()[idx];
  }
  [[nodiscard]] const T& back() const {
    return const_cast<SmallQueue*>(this)->back();
  }

  void pop_front() {
    TCMP_DCHECK(size_ > 0);
    data()[head_] = T{};  // drop payloads eagerly (moved-from hygiene)
    if (++head_ == cap_) head_ = 0;
    --size_;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  [[nodiscard]] bool spilled() const { return !heap_.empty(); }

  /// Exact-image checkpoint serialization (common/snapshot.hpp): inline and
  /// heap storage both travel, so a spilled queue restores spilled.
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(inline_);
    ar.field(heap_);
    ar.field(cap_);
    ar.field(head_);
    ar.field(size_);
  }

 private:
  [[nodiscard]] T* data() {
    return heap_.empty() ? inline_.data() : heap_.data();
  }
  [[nodiscard]] const T* data() const {
    return heap_.empty() ? inline_.data() : heap_.data();
  }

  void grow() {
    std::vector<T> next(cap_ * 2);
    for (std::size_t i = 0; i < size_; ++i) {
      std::size_t idx = head_ + i;
      if (idx >= cap_) idx -= cap_;
      next[i] = std::move(data()[idx]);
    }
    heap_ = std::move(next);
    cap_ *= 2;
    head_ = 0;
  }

  std::array<T, kInline> inline_{};
  std::vector<T> heap_;  ///< empty until the queue first exceeds kInline
  std::size_t cap_ = kInline;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Flat sequence-indexed reorder window: a power-of-two slot array addressed
/// by `seq & mask`, replacing a std::map keyed by sequence number. The
/// caller owns the "next expected" cursor (`base`); the window holds items
/// with seq in (base, base + capacity), doubling (and re-placing the held
/// items by their stored seq) on the rare arrival beyond that span. Because
/// `base` only advances and every held seq was within span when inserted,
/// distinct held seqs always map to distinct slots. Storage is lazy: an
/// empty window owns no heap memory.
template <typename T>
class SeqWindow {
 public:
  SeqWindow() = default;
  SeqWindow(const SeqWindow&) = default;
  SeqWindow& operator=(const SeqWindow&) = default;
  // Same moved-from-reads-as-empty contract as SmallQueue: the default move
  // would leave the source's count_ stale over a hollowed-out slot vector.
  SeqWindow(SeqWindow&& other) noexcept { *this = std::move(other); }
  SeqWindow& operator=(SeqWindow&& other) noexcept {
    if (this != &other) {
      slots_ = std::move(other.slots_);
      count_ = std::exchange(other.count_, 0);
      other.slots_.clear();
    }
    return *this;
  }

  /// Park `item` at `seq` (must be > base, the caller's next-expected seq).
  void insert(std::uint32_t base, std::uint32_t seq, T item) {
    TCMP_DCHECK(seq > base);
    if (slots_.empty()) slots_.resize(kInitialSlots);
    while (seq - base >= slots_.size()) grow();
    Slot& s = slots_[index(seq)];
    TCMP_CHECK_MSG(!s.occupied, "duplicate sequence number in reorder window");
    s.seq = seq;
    s.item = std::move(item);
    s.occupied = true;
    ++count_;
  }

  /// Remove and return the item parked at `seq`, if present.
  [[nodiscard]] std::optional<T> take(std::uint32_t seq) {
    if (count_ == 0) return std::nullopt;
    Slot& s = slots_[index(seq)];
    if (!s.occupied || s.seq != seq) return std::nullopt;
    s.occupied = false;
    --count_;
    T item = std::move(s.item);
    s.item = T{};
    return item;
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Exact-image checkpoint serialization (common/snapshot.hpp).
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(slots_);
    ar.field(count_);
  }

 private:
  static constexpr std::size_t kInitialSlots = 4;  // power of two

  struct Slot {
    T item{};
    std::uint32_t seq = 0;
    bool occupied = false;

    template <typename Ar>
    void snapshot_io(Ar& ar) {
      ar.field(item);
      ar.field(seq);
      ar.field(occupied);
    }
  };

  [[nodiscard]] std::size_t index(std::uint32_t seq) const {
    return seq & (slots_.size() - 1);
  }

  void grow() {
    std::vector<Slot> next(slots_.size() * 2);
    for (Slot& s : slots_) {
      if (!s.occupied) continue;
      Slot& d = next[s.seq & (next.size() - 1)];
      d = std::move(s);
    }
    slots_ = std::move(next);
  }

  std::vector<Slot> slots_;  ///< power-of-two length (empty until first use)
  std::size_t count_ = 0;
};

}  // namespace tcmp
