#include "common/abort.hpp"

#include <atomic>
#include <utility>
#include <vector>

#include "common/sync.hpp"

namespace tcmp {

namespace {

struct Entry {
  AbortHooks::Token token;
  AbortHooks::Hook hook;
};

// The one process-global piece of mutable state in the tree that is shared
// across sweep worker threads (every CmpSystem registers its post-mortem
// hook here), so its discipline is spelled out in types: every field is
// guarded by `mu` and -Wthread-safety rejects an unlocked touch.
struct Registry {
  Mutex mu;
  std::vector<Entry> entries TCMP_GUARDED_BY(mu);
  AbortHooks::Token next_token TCMP_GUARDED_BY(mu) = 1;
};

// Leaked on purpose: hooks may fire during static destruction of other
// objects, and a function-local leaked singleton can never be destroyed
// before them. Mutable by design, mutex-guarded above.
Registry& registry() {
  static Registry* r = new Registry();  // tcmplint: allow-mutable-static (mutex-guarded leaked singleton; see comment)
  return *r;
}

std::atomic<bool> running{false};

}  // namespace

AbortHooks::Token AbortHooks::add(Hook hook) {
  Registry& r = registry();
  const LockGuard lock(r.mu);
  const Token t = r.next_token++;
  r.entries.push_back({t, std::move(hook)});
  return t;
}

void AbortHooks::remove(Token token) {
  Registry& r = registry();
  const LockGuard lock(r.mu);
  for (auto it = r.entries.begin(); it != r.entries.end(); ++it) {
    if (it->token == token) {
      r.entries.erase(it);
      return;
    }
  }
}

void AbortHooks::run_all() noexcept {
  // One shot per process: the first failure dumps; a cascading failure
  // inside a hook (or a second failing thread) must not re-enter.
  if (running.exchange(true)) return;
  Registry& r = registry();
  // Move the hooks out under the lock, run them outside it: a hook may touch
  // code that itself registers/removes hooks.
  std::vector<Entry> entries;
  {
    const LockGuard lock(r.mu);
    entries = std::move(r.entries);
    r.entries.clear();
  }
  for (auto& e : entries) {
    if (e.hook) e.hook();
  }
}

namespace detail {
// Out-of-line bridge for check.hpp, which must stay dependency-free: the
// header only declares this symbol.
void run_abort_hooks() noexcept { AbortHooks::run_all(); }
}  // namespace detail

}  // namespace tcmp
