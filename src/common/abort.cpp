#include "common/abort.hpp"

#include <atomic>
#include <mutex>
#include <utility>
#include <vector>

namespace tcmp {

namespace {

struct Entry {
  AbortHooks::Token token;
  AbortHooks::Hook hook;
};

struct Registry {
  std::mutex mu;
  std::vector<Entry> entries;
  AbortHooks::Token next_token = 1;
};

// Leaked on purpose: hooks may fire during static destruction of other
// objects, and a function-local leaked singleton can never be destroyed
// before them.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

std::atomic<bool> running{false};

}  // namespace

AbortHooks::Token AbortHooks::add(Hook hook) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  const Token t = r.next_token++;
  r.entries.push_back({t, std::move(hook)});
  return t;
}

void AbortHooks::remove(Token token) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (auto it = r.entries.begin(); it != r.entries.end(); ++it) {
    if (it->token == token) {
      r.entries.erase(it);
      return;
    }
  }
}

void AbortHooks::run_all() noexcept {
  // One shot per process: the first failure dumps; a cascading failure
  // inside a hook (or a second failing thread) must not re-enter.
  if (running.exchange(true)) return;
  Registry& r = registry();
  // Move the hooks out under the lock, run them outside it: a hook may touch
  // code that itself registers/removes hooks.
  std::vector<Entry> entries;
  {
    const std::lock_guard<std::mutex> lock(r.mu);
    entries = std::move(r.entries);
    r.entries.clear();
  }
  for (auto& e : entries) {
    if (e.hook) e.hook();
  }
}

namespace detail {
// Out-of-line bridge for check.hpp, which must stay dependency-free: the
// header only declares this symbol.
void run_abort_hooks() noexcept { AbortHooks::run_all(); }
}  // namespace detail

}  // namespace tcmp
