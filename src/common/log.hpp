// Minimal leveled logger. Benches/examples run at Info; protocol debugging
// uses Trace (set TCMP_LOG=trace in the environment). Trace calls on hot
// paths are guarded so formatting cost is only paid when enabled.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace tcmp {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);
  static bool enabled(LogLevel lvl) { return static_cast<int>(lvl) >= static_cast<int>(level()); }

  [[gnu::format(printf, 2, 3)]] static void write(LogLevel lvl, const char* fmt, ...);
};

#define TCMP_LOG_TRACE(...)                                        \
  do {                                                             \
    if (::tcmp::Log::enabled(::tcmp::LogLevel::kTrace))            \
      ::tcmp::Log::write(::tcmp::LogLevel::kTrace, __VA_ARGS__);   \
  } while (0)
#define TCMP_LOG_INFO(...) ::tcmp::Log::write(::tcmp::LogLevel::kInfo, __VA_ARGS__)
#define TCMP_LOG_WARN(...) ::tcmp::Log::write(::tcmp::LogLevel::kWarn, __VA_ARGS__)

}  // namespace tcmp
