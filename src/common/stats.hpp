// Lightweight statistics primitives: counters, scalar trackers and fixed-bin
// histograms, plus a registry that modules use to expose their stats for the
// end-of-run report. No locking: the simulator is single-threaded per system
// instance (parallel sweeps run one system per thread, each with its own
// registry — the contract common/parallel.hpp documents and the TSan CI job
// checks). The partitioned kernel (ROADMAP item 1) will shard this registry
// per partition and merge at report time, keeping the lock-free hot path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace tcmp {

class SnapshotWriter;
class SnapshotReader;

/// Running mean/min/max/count of a scalar sample stream.
class ScalarStat {
 public:
  void add(double v) {
    sum_ += v;
    sum_sq_ += v * v;
    min_ = count_ == 0 ? v : std::min(min_, v);
    max_ = count_ == 0 ? v : std::max(max_, v);
    ++count_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const {
    if (count_ < 2) return 0.0;
    const double n = static_cast<double>(count_);
    return std::max(0.0, sum_sq_ / n - (sum_ / n) * (sum_ / n));
  }
  void reset() { *this = ScalarStat{}; }

  /// Fold another sample stream into this one (partition-shard merge): the
  /// result is what one stat fed both streams would hold, up to FP addition
  /// order in sum/sum_sq.
  void merge(const ScalarStat& o) {
    if (o.count_ == 0) return;
    min_ = count_ == 0 ? o.min_ : std::min(min_, o.min_);
    max_ = count_ == 0 ? o.max_ : std::max(max_, o.max_);
    sum_ += o.sum_;
    sum_sq_ += o.sum_sq_;
    count_ += o.count_;
  }

  /// Checkpoint serialization (common/snapshot.hpp): raw double bits travel,
  /// so restored sums continue accumulating byte-identically.
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(sum_);
    ar.field(sum_sq_);
    ar.field(min_);
    ar.field(max_);
    ar.field(count_);
  }

 private:
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Histogram with uniform integer bins [0, bin_width, 2*bin_width, ...); the
/// last bin is an overflow catch-all.
class Histogram {
 public:
  explicit Histogram(std::size_t bins = 32, std::uint64_t bin_width = 1)
      : bins_(bins, 0), bin_width_(bin_width) {
    TCMP_CHECK(bins >= 2 && bin_width >= 1);
  }

  void add(std::uint64_t v) {
    scalar_.add(static_cast<double>(v));
    std::size_t idx = static_cast<std::size_t>(v / bin_width_);
    if (idx >= bins_.size()) idx = bins_.size() - 1;
    ++bins_[idx];
  }

  [[nodiscard]] const std::vector<std::uint64_t>& bins() const { return bins_; }
  [[nodiscard]] std::uint64_t bin_width() const { return bin_width_; }
  [[nodiscard]] const ScalarStat& scalar() const { return scalar_; }

  /// Value below which `q` (0..1) of the samples fall, estimated from bins.
  [[nodiscard]] double quantile(double q) const;

  /// Fold another histogram with identical bin geometry into this one
  /// (partition-shard merge).
  void merge(const Histogram& o) {
    TCMP_CHECK(bins_.size() == o.bins_.size() && bin_width_ == o.bin_width_);
    for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += o.bins_[i];
    scalar_.merge(o.scalar_);
  }

  /// Zero every bin and the running moments, keeping the bin geometry (and
  /// therefore any cached pointers to this histogram) intact.
  void clear_values() {
    std::fill(bins_.begin(), bins_.end(), 0);
    scalar_.reset();
  }

  /// Checkpoint serialization (common/snapshot.hpp). Assigns in place, so a
  /// registry node (and any interned HistogramRef) survives a load; geometry
  /// is overwritten with the saved values, which a same-config restore
  /// registered identically anyway.
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(bins_);
    ar.field(bin_width_);
    ar.field(scalar_);
  }

 private:
  std::vector<std::uint64_t> bins_;
  // clear_values() deliberately keeps the bin geometry so the histogram
  // shape (and cached Histogram pointers) stay valid across resets.
  // tcmplint: reset-exempt (bin geometry survives clear_values by design)
  std::uint64_t bin_width_;
  ScalarStat scalar_;
};

class StatRegistry;

/// Interned handle to a registry counter: the string lookup happens exactly
/// once (at construction / init time), after which bumps are a single pointer
/// chase. Handles stay valid across zero_all() — the registry's maps are
/// node-based and zero_all() writes values in place — and are invalidated
/// only by StatRegistry::reset().
class CounterRef {
 public:
  CounterRef() = default;
  CounterRef& operator++() {
    ++*slot_;
    return *this;
  }
  CounterRef& operator+=(std::uint64_t delta) {
    *slot_ += delta;
    return *this;
  }
  /// Undo of a prior increment (the barrier-replay driver rolls back a
  /// provisional blocked tick; see docs/partitioning.md).
  CounterRef& operator--() {
    TCMP_DCHECK(*slot_ > 0);
    --*slot_;
    return *this;
  }
  [[nodiscard]] std::uint64_t value() const { return *slot_; }
  [[nodiscard]] bool valid() const { return slot_ != nullptr; }

 private:
  friend class StatRegistry;
  explicit CounterRef(std::uint64_t* slot) : slot_(slot) {}
  std::uint64_t* slot_ = nullptr;
};

/// Interned handle to a registry scalar (same stability contract as
/// CounterRef).
class ScalarRef {
 public:
  ScalarRef() = default;
  void add(double v) { stat_->add(v); }
  [[nodiscard]] const ScalarStat& get() const { return *stat_; }
  [[nodiscard]] bool valid() const { return stat_ != nullptr; }

 private:
  friend class StatRegistry;
  explicit ScalarRef(ScalarStat* stat) : stat_(stat) {}
  ScalarStat* stat_ = nullptr;
};

/// Interned handle to a registry histogram (same stability contract as
/// CounterRef: clear_values() keeps the bin geometry, so handles survive the
/// warmup/measurement boundary).
class HistogramRef {
 public:
  HistogramRef() = default;
  void add(std::uint64_t v) { hist_->add(v); }
  [[nodiscard]] const Histogram& get() const { return *hist_; }
  [[nodiscard]] bool valid() const { return hist_ != nullptr; }

 private:
  friend class StatRegistry;
  explicit HistogramRef(Histogram* hist) : hist_(hist) {}
  Histogram* hist_ = nullptr;
};

/// Named stat registry. Components register plain counters / scalars; the CMP
/// report walks it. Names are hierarchical ("noc.vl.flit_hops").
///
/// Hot-path contract: components resolve their stats ONCE at construction via
/// the *_ref methods and bump through the returned handles; per-event
/// string-keyed lookups are banned in hot-path files (tcmplint rule
/// stat-string-hot-path). Handles remain valid across zero_all() and are
/// invalidated only by reset().
class StatRegistry {
 public:
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  ScalarStat& scalar(const std::string& name) { return scalars_[name]; }
  /// Named histogram; the bin geometry is fixed by whoever registers it
  /// first (later callers get the existing histogram unchanged).
  Histogram& histogram(const std::string& name, std::size_t bins = 64,
                       std::uint64_t bin_width = 1) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.try_emplace(name, Histogram(bins, bin_width)).first;
    }
    return it->second;
  }

  /// Interned handles: one-time name resolution for per-event bump sites.
  [[nodiscard]] CounterRef counter_ref(const std::string& name) {
    return CounterRef(&counter(name));
  }
  [[nodiscard]] ScalarRef scalar_ref(const std::string& name) {
    return ScalarRef(&scalar(name));
  }
  [[nodiscard]] HistogramRef histogram_ref(const std::string& name,
                                           std::size_t bins = 64,
                                           std::uint64_t bin_width = 1) {
    return HistogramRef(&histogram(name, bins, bin_width));
  }

  /// Read-only lookup that never creates the counter: nullptr when no such
  /// counter exists (yet). Callers that must not perturb the report's counter
  /// set (e.g. the time-series sampler, whose column list may name counters
  /// a given configuration never registers) cache the result once it
  /// resolves; the pointer is stable for the registry's lifetime (reset()
  /// excepted).
  [[nodiscard]] const std::uint64_t* find_counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, ScalarStat>& scalars() const { return scalars_; }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  /// nullptr when no histogram of that name was registered.
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  /// Sum of all counters whose name starts with `prefix`.
  [[nodiscard]] std::uint64_t sum_prefix(const std::string& prefix) const;

  void reset();

  /// Zero every value in place, keeping map nodes (and therefore any cached
  /// pointers into the registry) valid. Used at the warmup/measurement
  /// boundary.
  void zero_all();

  /// Fold a partition shard into this registry, name-keyed: counters add,
  /// scalars merge their moments, histograms (same geometry) add per bin.
  /// Stats the shard has and this registry lacks are created. Shards are
  /// merged in partition-index order so FP accumulation order — the only
  /// order-sensitive part — is deterministic for a given K.
  void merge_from(const StatRegistry& shard);

  /// Checkpoint save/load (common/snapshot.hpp). load() applies values IN
  /// PLACE, zero_all-style: existing map nodes are kept so every interned
  /// CounterRef/ScalarRef/HistogramRef resolved at construction stays valid
  /// across a restore; names the snapshot has and this registry lacks are
  /// created (both runs register the same set at construction, so in a
  /// same-config restore this path is idle).
  void save(SnapshotWriter& w) const;
  void load(SnapshotReader& r);

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, ScalarStat> scalars_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace tcmp
