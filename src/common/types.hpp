// Fundamental scalar types shared by every subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace tcmp {

/// Simulation time in core clock cycles (4 GHz in the paper's configuration).
using Cycle = std::uint64_t;

/// Physical byte address. The protocol operates on 64-byte line addresses
/// (Addr >> 6); compression operates on line addresses as well.
using Addr = std::uint64_t;

/// Tile / core / router identifier (0..15 for the paper's 16-tile CMP).
using NodeId = std::uint16_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// Cache line geometry used throughout (Table 4: 64-byte lines).
inline constexpr unsigned kLineBytes = 64;
inline constexpr unsigned kLineShift = 6;

[[nodiscard]] constexpr Addr line_of(Addr byte_addr) { return byte_addr >> kLineShift; }
[[nodiscard]] constexpr Addr byte_of_line(Addr line) { return line << kLineShift; }

}  // namespace tcmp
