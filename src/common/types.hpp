// Strong scalar types shared by every subsystem.
//
// Identity quantities (cycles, addresses, node ids, byte/flit counts) are
// tagged wrapper types rather than bare integer aliases, so that passing a
// byte address where a line address is expected — or multiplying two
// timestamps — is a compile error instead of a silently corrupted result.
//
// Two strength tiers are used deliberately:
//   * opaque  (explicit in, explicit `.value()` out): Cycle, ByteAddr,
//     LineAddr. These are the types whose confusion corrupts simulations;
//     only dimensionally meaningful arithmetic is defined (Cycle+Cycle is a
//     cycle, Cycle*Cycle is ill-formed, addresses admit no arithmetic).
//   * semi-strong (explicit in, implicit out): NodeId, Bytes, Flits. These
//     index arrays and size buffers, so they decay to their representation
//     on read; construction still requires an explicit cast, which is where
//     the mixups happen.
//
// The ONLY byte<->line conversions are line_of() and byte_of_line().
// Physical quantities (seconds, joules, ...) live in common/units.hpp.
#pragma once

#include <compare>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace tcmp {

/// Simulation time, in core clock cycles (4 GHz in the paper's
/// configuration). Covers both timestamps and durations: additive
/// arithmetic only (sums, differences, phase within a period); products of
/// times are dimensionally meaningless and do not compile.
class Cycle {
 public:
  using Rep = std::uint64_t;

  constexpr Cycle() = default;
  constexpr explicit Cycle(Rep v) : v_(v) {}

  [[nodiscard]] constexpr Rep value() const { return v_; }

  friend constexpr bool operator==(Cycle, Cycle) = default;
  friend constexpr auto operator<=>(Cycle, Cycle) = default;

  constexpr Cycle& operator+=(Cycle d) {
    v_ += d.v_;
    return *this;
  }
  constexpr Cycle& operator-=(Cycle d) {
    v_ -= d.v_;
    return *this;
  }
  constexpr Cycle& operator++() {
    ++v_;
    return *this;
  }

  friend constexpr Cycle operator+(Cycle a, Cycle b) { return Cycle{a.v_ + b.v_}; }
  friend constexpr Cycle operator-(Cycle a, Cycle b) { return Cycle{a.v_ - b.v_}; }
  /// A raw integer on one side is a cycle *count* (delta); allowing it keeps
  /// the ubiquitous `now + 1` timing arithmetic readable.
  friend constexpr Cycle operator+(Cycle a, std::uint64_t n) { return Cycle{a.v_ + n}; }
  friend constexpr Cycle operator+(std::uint64_t n, Cycle a) { return Cycle{n + a.v_}; }
  friend constexpr Cycle operator-(Cycle a, std::uint64_t n) { return Cycle{a.v_ - n}; }
  /// Phase within a period (periodic checks / telemetry sampling).
  friend constexpr Rep operator%(Cycle a, Cycle period) { return a.v_ % period.v_; }

 private:
  Rep v_ = 0;
};

/// "Never happens" timestamp sentinel (used by idle fast-forward paths).
inline constexpr Cycle kNeverCycle{std::numeric_limits<std::uint64_t>::max()};

/// A byte-granular physical address. No arithmetic: the simulator only ever
/// derives the cache line (line_of) or checks identity.
class ByteAddr {
 public:
  using Rep = std::uint64_t;

  constexpr ByteAddr() = default;
  constexpr explicit ByteAddr(Rep v) : v_(v) {}

  [[nodiscard]] constexpr Rep value() const { return v_; }

  friend constexpr bool operator==(ByteAddr, ByteAddr) = default;
  friend constexpr auto operator<=>(ByteAddr, ByteAddr) = default;

 private:
  Rep v_ = 0;
};

/// A cache-line-granular address (byte address >> kLineShift). The protocol,
/// compression and workload layers traffic exclusively in line addresses.
/// Deliberately not interconvertible with ByteAddr except through line_of /
/// byte_of_line below.
class LineAddr {
 public:
  using Rep = std::uint64_t;

  constexpr LineAddr() = default;
  constexpr explicit LineAddr(Rep v) : v_(v) {}

  [[nodiscard]] constexpr Rep value() const { return v_; }

  friend constexpr bool operator==(LineAddr, LineAddr) = default;
  friend constexpr auto operator<=>(LineAddr, LineAddr) = default;

 private:
  Rep v_ = 0;
};

namespace detail {

/// Shared shape of the semi-strong index-like types: explicit construction
/// from any integer (truncating to the representation, exactly as the
/// previous bare aliases did), implicit read-out so values keep working as
/// array indices, shift counts and size operands.
template <typename Tag, typename RepT>
class IndexLike {
 public:
  using Rep = RepT;

  constexpr IndexLike() = default;
  template <std::integral I>
  constexpr explicit IndexLike(I v) : v_(static_cast<Rep>(v)) {}

  constexpr operator Rep() const { return v_; }  // NOLINT(google-explicit-constructor)
  [[nodiscard]] constexpr Rep value() const { return v_; }

 private:
  Rep v_ = 0;
};

}  // namespace detail

/// Tile / core / router identifier (0..15 for the paper's 16-tile CMP).
class NodeId : public detail::IndexLike<NodeId, std::uint16_t> {
  using IndexLike::IndexLike;
};

/// A payload size in bytes (message or link-width granularity).
class Bytes : public detail::IndexLike<Bytes, unsigned> {
  using IndexLike::IndexLike;
};

/// A payload size in flits of some channel.
class Flits : public detail::IndexLike<Flits, unsigned> {
  using IndexLike::IndexLike;
};

inline constexpr NodeId kInvalidNode{std::numeric_limits<std::uint16_t>::max()};

/// Cache line geometry used throughout (Table 4: 64-byte lines).
inline constexpr unsigned kLineBytes = 64;
inline constexpr unsigned kLineShift = 6;  // log2(kLineBytes)

/// The only ByteAddr -> LineAddr conversion.
[[nodiscard]] constexpr LineAddr line_of(ByteAddr addr) {
  return LineAddr{addr.value() >> kLineShift};
}

/// The only LineAddr -> ByteAddr conversion (first byte of the line).
[[nodiscard]] constexpr ByteAddr byte_of_line(LineAddr line) {
  return ByteAddr{line.value() << kLineShift};
}

}  // namespace tcmp

template <>
struct std::hash<tcmp::Cycle> {
  [[nodiscard]] std::size_t operator()(tcmp::Cycle c) const noexcept {
    return std::hash<std::uint64_t>{}(c.value());
  }
};

template <>
struct std::hash<tcmp::ByteAddr> {
  [[nodiscard]] std::size_t operator()(tcmp::ByteAddr a) const noexcept {
    return std::hash<std::uint64_t>{}(a.value());
  }
};

template <>
struct std::hash<tcmp::LineAddr> {
  [[nodiscard]] std::size_t operator()(tcmp::LineAddr a) const noexcept {
    return std::hash<std::uint64_t>{}(a.value());
  }
};
