#include "common/table.hpp"

#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace tcmp {

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  TCMP_CHECK_MSG(cells.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " ");
      if (c == 0) {
        out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      } else {
        out << std::string(widths[c] - row[c].size(), ' ') << row[c];
      }
      out << " |";
    }
    out << '\n';
  };
  auto emit_sep = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c)
      out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
    out << '\n';
  };
  emit_row(header_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace tcmp
