// Deterministic parallel sweep driver (the engine behind the figure benches'
// `--jobs N` flag, and the thread pool ROADMAP item 1's partitioned kernel
// will grow from).
//
// Thread-safety contract — this is the pattern the tile-escape lint
// (docs/static-analysis.md) exists to preserve: each task is self-contained
// (builds its own CmpSystem, one StatRegistry per run, nothing shared), the
// work queue is a single atomic cursor, and every result is written to a
// distinct, pre-sized vector slot owned by exactly one task. No lock is
// needed because no mutable state is shared; the TSan CI job and
// tests/test_parallel_sweep.cpp keep that claim honest.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <thread>
#include <vector>

namespace tcmp {

/// Run `task(i)` for every i in [0, n) across `jobs` worker threads and
/// return the results indexed by task, so callers consume output whose
/// content is identical at any job count. With `progress` set, per-task
/// completion lines go to stderr (stdout is never touched here).
template <typename Task>
[[nodiscard]] auto parallel_sweep(std::size_t n, unsigned jobs, Task task,
                                  bool progress = false)
    -> std::vector<decltype(task(std::size_t{0}))> {
  std::vector<decltype(task(std::size_t{0}))> results(n);
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      results[i] = task(i);
      if (progress) std::fprintf(stderr, "  [%zu/%zu] runs done\n", i + 1, n);
    }
    return results;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      results[i] = task(i);
      const std::size_t done = completed.fetch_add(1) + 1;
      if (progress) std::fprintf(stderr, "  [%zu/%zu] runs done\n", done, n);
    }
  };
  const auto n_workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs, n));
  std::vector<std::thread> pool;
  pool.reserve(n_workers);
  for (unsigned w = 0; w < n_workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return results;
}

}  // namespace tcmp
