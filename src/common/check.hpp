// Invariant checking. TCMP_CHECK is always on (cheap, used on cold paths such
// as protocol state transitions where a violation means a simulator bug);
// TCMP_DCHECK compiles out in release builds for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tcmp::detail {
/// Runs the process-wide abort hooks (common/abort.hpp): flight-recorder
/// post-mortem dumps, partial trace/time-series flushes. Declared here so
/// this header stays dependency-free; defined in common/abort.cpp.
void run_abort_hooks() noexcept;

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "TCMP_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  // Last gasp: give registered observers a chance to dump recent history
  // (bounded rings, partially written traces) before the process dies.
  run_abort_hooks();
  std::abort();
}
}  // namespace tcmp::detail

#define TCMP_CHECK(expr)                                                      \
  do {                                                                        \
    if (!(expr)) ::tcmp::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define TCMP_CHECK_MSG(expr, msg)                                                \
  do {                                                                           \
    if (!(expr)) ::tcmp::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
// No-eval form: the expression stays type-checked (so it cannot rot and its
// operands are not "unused") but sizeof guarantees it is never evaluated.
#define TCMP_DCHECK(expr) ((void)sizeof(static_cast<bool>(expr)))
#define TCMP_DCHECK_MSG(expr, msg) ((void)sizeof(static_cast<bool>(expr)))
#else
#define TCMP_DCHECK(expr) TCMP_CHECK(expr)
#define TCMP_DCHECK_MSG(expr, msg) TCMP_CHECK_MSG(expr, msg)
#endif
