#include "common/stats.hpp"

#include "common/snapshot.hpp"

namespace tcmp {

double Histogram::quantile(double q) const {
  TCMP_CHECK(q >= 0.0 && q <= 1.0);
  const std::uint64_t total = scalar_.count();
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cum + static_cast<double>(bins_[i]);
    if (next >= target) {
      // Linear interpolation within the bin.
      const double frac = bins_[i] ? (target - cum) / static_cast<double>(bins_[i]) : 0.0;
      return (static_cast<double>(i) + frac) * static_cast<double>(bin_width_);
    }
    cum = next;
  }
  return static_cast<double>(bins_.size() * bin_width_);
}

std::uint64_t StatRegistry::sum_prefix(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound(prefix);
       it != counters_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
    total += it->second;
  }
  return total;
}

void StatRegistry::reset() {
  counters_.clear();
  scalars_.clear();
  histograms_.clear();
}

void StatRegistry::zero_all() {
  for (auto& [name, value] : counters_) value = 0;
  for (auto& [name, stat] : scalars_) stat.reset();
  for (auto& [name, hist] : histograms_) hist.clear_values();
}

void StatRegistry::save(SnapshotWriter& w) const {
  w.section("stats.counters");
  w.field(counters_);
  w.section("stats.scalars");
  w.raw_u64(scalars_.size());
  for (const auto& [name, stat] : scalars_) {
    w.field(name);
    w.field(stat);
  }
  w.section("stats.histograms");
  w.raw_u64(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    w.field(name);
    w.field(hist);
  }
}

void StatRegistry::load(SnapshotReader& r) {
  // In-place application: zero everything registered, then assign the saved
  // values node-by-node. Plain map deserialization would clear() the maps
  // and invalidate every interned handle resolved at construction.
  zero_all();
  r.section("stats.counters");
  std::map<std::string, std::uint64_t> saved_counters;
  r.field(saved_counters);
  for (const auto& [name, value] : saved_counters) counters_[name] = value;
  r.section("stats.scalars");
  for (std::uint64_t n = r.raw_u64(); n > 0; --n) {
    std::string name;
    r.field(name);
    r.field(scalars_[name]);
  }
  r.section("stats.histograms");
  for (std::uint64_t n = r.raw_u64(); n > 0; --n) {
    std::string name;
    r.field(name);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
      it = histograms_.try_emplace(name, Histogram()).first;
    r.field(it->second);
  }
}

void StatRegistry::merge_from(const StatRegistry& shard) {
  for (const auto& [name, value] : shard.counters_) counters_[name] += value;
  for (const auto& [name, stat] : shard.scalars_) scalars_[name].merge(stat);
  for (const auto& [name, hist] : shard.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.try_emplace(name, hist);
    } else {
      it->second.merge(hist);
    }
  }
}

}  // namespace tcmp
