// Minimal command-line argument parser for the tools and examples:
// supports --key value, --key=value, and boolean --flag forms, with typed
// accessors and unknown-argument detection.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace tcmp {

class ArgParser {
 public:
  /// Parse argv; returns false (and fills error()) on malformed input.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const { return values_.contains(key); }
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] long get_long(const std::string& key, long fallback) const;
  /// --flag with no value (or =true/=false).
  [[nodiscard]] bool get_flag(const std::string& key) const;

  /// Non-flag positional arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Keys that were provided but are not in `known` (for usage errors).
  [[nodiscard]] std::vector<std::string> unknown_keys(
      const std::set<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace tcmp
