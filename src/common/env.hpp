// Environment-variable helpers used by benches to scale workload sizes
// (e.g. TCMP_SCALE=0.25 for a quick smoke run) without rebuilding.
#pragma once

#include <cstdlib>
#include <string>

namespace tcmp {

[[nodiscard]] inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return end != v ? parsed : fallback;
}

[[nodiscard]] inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return end != v ? parsed : fallback;
}

[[nodiscard]] inline std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::string(v) : fallback;
}

}  // namespace tcmp
