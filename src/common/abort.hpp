// Abort-hook registry: best-effort "last gasp" callbacks that run when the
// simulator is about to die on an invariant failure (TCMP_CHECK / TCMP_DCHECK
// via check_failed) or when a driver decides to abort after a runtime
// coherence-lint violation.
//
// Consumers register hooks that dump whatever post-mortem state they own —
// the per-tile flight recorder, partially written trace / time-series files —
// so a verify kill leaves a replayable tail of history instead of a one-line
// abort message.
//
// Contract:
//   * Hooks run in registration order, each at most once per process (a hook
//     that itself aborts cannot recurse into the registry: run_abort_hooks is
//     re-entrancy guarded).
//   * Hooks must be best-effort and exception-free: the process is dying and
//     nothing can be assumed beyond the objects the hook captured.
//   * Registration returns a token; owners MUST remove() their hook before
//     the captured objects are destroyed (the registry is process-global and
//     outlives any one CmpSystem).
//   * The registry is mutex-protected (common/sync.hpp: the locking
//     discipline is spelled out in TCMP_GUARDED_BY annotations that Clang's
//     -Wthread-safety verifies): parallel sweeps run one system per thread
//     and each registers its own hooks.
#pragma once

#include <cstdint>
#include <functional>

namespace tcmp {

class AbortHooks {
 public:
  using Hook = std::function<void()>;
  using Token = std::uint64_t;

  /// Register `hook`; returns a token for remove(). Thread-safe.
  static Token add(Hook hook);
  /// Unregister a previously added hook. Safe to call with a token that was
  /// already removed (no-op). Thread-safe.
  static void remove(Token token);
  /// Run every registered hook once, in registration order. Re-entrancy
  /// guarded: a hook that triggers another abort does not re-run the list.
  /// Called by check_failed() before std::abort(), and by drivers on the
  /// soft (lint) abort path.
  static void run_all() noexcept;
};

}  // namespace tcmp
