#include "common/log.hpp"

#include <atomic>
#include <string>

#include "common/env.hpp"

namespace tcmp {
namespace {

LogLevel initial_level() {
  const std::string env = env_string("TCMP_LOG", "");
  if (env == "trace") return LogLevel::kTrace;
  if (env == "debug") return LogLevel::kDebug;
  if (env == "warn") return LogLevel::kWarn;
  if (env == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

// Atomic so concurrent sweep workers can read (and tests can set) the level
// without a data race; relaxed ordering suffices — the level is a filter,
// not a synchronization point.
std::atomic<LogLevel>& level_ref() {
  static std::atomic<LogLevel> lvl{initial_level()};
  return lvl;
}

constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};

}  // namespace

LogLevel Log::level() { return level_ref().load(std::memory_order_relaxed); }
void Log::set_level(LogLevel lvl) {
  level_ref().store(lvl, std::memory_order_relaxed);
}

void Log::write(LogLevel lvl, const char* fmt, ...) {
  if (!enabled(lvl)) return;
  std::fprintf(stderr, "[%s] ", kNames[static_cast<int>(lvl)]);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace tcmp
