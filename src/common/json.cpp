#include "common/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace tcmp::json {

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& m : members) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const Value* Value::find_path(const std::string& path) const {
  const Value* cur = this;
  std::size_t pos = 0;
  while (pos < path.size()) {
    if (!cur->is_object()) return nullptr;
    const Value* next = nullptr;
    std::size_t best_len = 0;
    for (const auto& [k, v] : cur->members) {
      if (k.empty() || k.size() < best_len) continue;
      if (path.compare(pos, k.size(), k) != 0) continue;
      const std::size_t end = pos + k.size();
      if (end != path.size() && path[end] != '.') continue;
      best_len = k.size();
      next = &v;
    }
    if (next == nullptr) return nullptr;
    pos += best_len;
    if (pos < path.size()) ++pos;  // consume the '.'
    cur = next;
  }
  return cur;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ParseResult run() {
    ParseResult r;
    skip_ws();
    if (!parse_value(r.value)) {
      r.error = error_;
      return r;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      r.error = error_;
      return r;
    }
    r.ok = true;
    return r;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool fail(const char* msg) {
    if (error_.empty()) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "offset %zu: %s", pos_, msg);
      error_ = buf;
    }
    return false;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.type = Value::Type::kString; return parse_string(out.str);
      case 't':
        out.type = Value::Type::kBool;
        out.boolean = true;
        return literal("true", 4);
      case 'f':
        out.type = Value::Type::kBool;
        out.boolean = false;
        return literal("false", 5);
      case 'n': out.type = Value::Type::kNull; return literal("null", 4);
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.type = Value::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected member name");
      }
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out) {
    out.type = Value::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.items.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        default: return fail("unsupported escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return fail("expected a value");
    out.type = Value::Type::kNumber;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

ParseResult parse(const std::string& text) { return Parser(text).run(); }

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

}  // namespace tcmp::json
