// Fixed-width set of mesh nodes: four 64-bit words in a std::array, no heap,
// trivially copyable. The seed capped meshes at 32 tiles because its two
// full-map bit vectors (directory sharer sets, DBRC per-destination valid
// bits) were single uint32_t fields; NodeSet widens both to 256 nodes — the
// ceiling the partitioned driver targets (16x16 mesh, ROADMAP item 1) —
// while staying cheap enough to live inline in cache-array payloads.
// Constructors that size against a node count CHECK n_nodes <= kMaxNodes so
// an oversized config fails loudly instead of silently truncating the map.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace tcmp {

class NodeSet {
 public:
  static constexpr unsigned kMaxNodes = 256;

  constexpr NodeSet() = default;

  /// Set with exactly the bits `a` and `b` (the directory's BusyShared
  /// resolution path lists the old owner and the forward requester).
  [[nodiscard]] static constexpr NodeSet of(unsigned a, unsigned b) {
    NodeSet m;
    m.set(a);
    m.set(b);
    return m;
  }

  constexpr void set(unsigned n) { words_[n / 64] |= word_bit(n); }
  constexpr void reset(unsigned n) { words_[n / 64] &= ~word_bit(n); }
  constexpr void clear() { words_ = {}; }

  [[nodiscard]] constexpr bool test(unsigned n) const {
    return (words_[n / 64] & word_bit(n)) != 0;
  }

  [[nodiscard]] constexpr bool none() const {
    for (const std::uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }

  [[nodiscard]] constexpr unsigned count() const {
    unsigned c = 0;
    for (const std::uint64_t w : words_) c += static_cast<unsigned>(std::popcount(w));
    return c;
  }

  /// Copy of this set with bit `n` cleared (the "other sharers" set).
  [[nodiscard]] constexpr NodeSet without(unsigned n) const {
    NodeSet m = *this;
    m.reset(n);
    return m;
  }

  friend constexpr bool operator==(const NodeSet&, const NodeSet&) = default;

  /// Checkpoint serialization (common/snapshot.hpp).
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(words_);
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t word_bit(unsigned n) {
    return std::uint64_t{1} << (n % 64);
  }

  std::array<std::uint64_t, kMaxNodes / 64> words_{};
};

}  // namespace tcmp
