// Thin physical-unit helpers. Values are carried as doubles in SI units;
// the suffix constructors and accessors keep intent explicit at call sites
// (wire lengths in meters, delays in seconds, energies in joules).
#pragma once

namespace tcmp::units {

// --- time ---
inline constexpr double kPicosecond = 1e-12;
inline constexpr double kNanosecond = 1e-9;
[[nodiscard]] constexpr double ps(double v) { return v * kPicosecond; }
[[nodiscard]] constexpr double ns(double v) { return v * kNanosecond; }
[[nodiscard]] constexpr double to_ps(double seconds) { return seconds / kPicosecond; }

// --- length ---
inline constexpr double kMicrometer = 1e-6;
inline constexpr double kMillimeter = 1e-3;
[[nodiscard]] constexpr double um(double v) { return v * kMicrometer; }
[[nodiscard]] constexpr double mm(double v) { return v * kMillimeter; }
[[nodiscard]] constexpr double to_mm(double meters) { return meters / kMillimeter; }
[[nodiscard]] constexpr double to_um(double meters) { return meters / kMicrometer; }

// --- energy / power ---
inline constexpr double kPicojoule = 1e-12;
inline constexpr double kNanojoule = 1e-9;
inline constexpr double kMilliwatt = 1e-3;
[[nodiscard]] constexpr double pj(double v) { return v * kPicojoule; }
[[nodiscard]] constexpr double nj(double v) { return v * kNanojoule; }
[[nodiscard]] constexpr double mw(double v) { return v * kMilliwatt; }
[[nodiscard]] constexpr double to_pj(double joules) { return joules / kPicojoule; }
[[nodiscard]] constexpr double to_mw(double watts) { return watts / kMilliwatt; }

// --- area ---
inline constexpr double kSquareMicrometer = 1e-12;  // in m^2
[[nodiscard]] constexpr double um2(double v) { return v * kSquareMicrometer; }
[[nodiscard]] constexpr double to_mm2(double m2) { return m2 / 1e-6; }

}  // namespace tcmp::units
