// Compile-time dimensional analysis for physical quantities.
//
// Quantity<M,L,T,I> carries a double in SI base units together with its
// dimension as kg^M · m^L · s^T · A^I template exponents. Addition and
// subtraction require identical dimensions; multiplication and division do
// exponent arithmetic at compile time (Joules / Seconds -> Watts), and a
// product whose exponents all cancel collapses back to a plain double. The
// wrappers forward to the identical IEEE double operations, so replacing a
// raw-double computation with Quantity arithmetic of the same expression
// structure is bit-identical.
//
// The suffix constructors (ps, mm, pj, ...) and accessors (to_ps, to_mm,
// ...) keep intent explicit at call sites while storing SI canonically.
#pragma once

#include <cmath>

namespace tcmp::units {

/// A physical quantity of dimension kg^M · m^L · s^T · A^I, stored as a
/// double in SI base units.
template <int M, int L, int T, int I = 0>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : v_(v) {}

  /// Magnitude in SI base units.
  [[nodiscard]] constexpr double value() const { return v_; }

  friend constexpr bool operator==(Quantity, Quantity) = default;
  friend constexpr auto operator<=>(Quantity, Quantity) = default;

  constexpr Quantity operator-() const { return Quantity{-v_}; }

  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    v_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    v_ /= s;
    return *this;
  }

  // Same-dimension sums; mixed-dimension sums do not compile.
  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.v_ + b.v_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.v_ - b.v_};
  }

  // Dimensionless scale factors.
  friend constexpr Quantity operator*(Quantity a, double s) { return Quantity{a.v_ * s}; }
  friend constexpr Quantity operator*(double s, Quantity a) { return Quantity{s * a.v_}; }
  friend constexpr Quantity operator/(Quantity a, double s) { return Quantity{a.v_ / s}; }

 private:
  double v_ = 0.0;
};

namespace detail {
/// Wrap a raw double as Quantity<M,L,T,I>, collapsing the dimensionless
/// case to plain double so ratios read naturally at call sites.
template <int M, int L, int T, int I>
[[nodiscard]] constexpr auto make(double v) {
  if constexpr (M == 0 && L == 0 && T == 0 && I == 0) {
    return v;
  } else {
    return Quantity<M, L, T, I>{v};
  }
}
}  // namespace detail

/// Products and quotients combine dimensions (checked at compile time).
template <int M1, int L1, int T1, int I1, int M2, int L2, int T2, int I2>
[[nodiscard]] constexpr auto operator*(Quantity<M1, L1, T1, I1> a,
                                       Quantity<M2, L2, T2, I2> b) {
  return detail::make<M1 + M2, L1 + L2, T1 + T2, I1 + I2>(a.value() * b.value());
}

template <int M1, int L1, int T1, int I1, int M2, int L2, int T2, int I2>
[[nodiscard]] constexpr auto operator/(Quantity<M1, L1, T1, I1> a,
                                       Quantity<M2, L2, T2, I2> b) {
  return detail::make<M1 - M2, L1 - L2, T1 - T2, I1 - I2>(a.value() / b.value());
}

template <int M, int L, int T, int I>
[[nodiscard]] constexpr auto operator/(double s, Quantity<M, L, T, I> q) {
  return detail::make<-M, -L, -T, -I>(s / q.value());
}

/// Square root halves every exponent; only defined for even dimensions
/// (exactly what the Bakoglu repeater-sizing closed forms need).
template <int M, int L, int T, int I>
  requires(M % 2 == 0 && L % 2 == 0 && T % 2 == 0 && I % 2 == 0)
[[nodiscard]] inline Quantity<M / 2, L / 2, T / 2, I / 2> sqrt(Quantity<M, L, T, I> q) {
  return Quantity<M / 2, L / 2, T / 2, I / 2>{std::sqrt(q.value())};
}

// --- SI dimension aliases used by the wire/power models ---
using Seconds = Quantity<0, 0, 1>;
using Hertz = Quantity<0, 0, -1>;
using Meters = Quantity<0, 1, 0>;
using SquareMeters = Quantity<0, 2, 0>;
using Joules = Quantity<1, 2, -2>;
using Watts = Quantity<1, 2, -3>;
using Volts = Quantity<1, 2, -3, -1>;
using Amperes = Quantity<0, 0, 0, 1>;
using Ohms = Quantity<1, 2, -3, -2>;
using Farads = Quantity<-1, -2, 4, 2>;
// Per-length densities of the distributed RC wire model (Sec. 3, Eq. 1-4).
using OhmMeters = Quantity<1, 3, -3, -2>;        ///< resistivity
using OhmsPerMeter = Quantity<1, 1, -3, -2>;     ///< wire resistance / m
using FaradsPerMeter = Quantity<-1, -3, 4, 2>;   ///< wire capacitance / m
using SecondsPerMeter = Quantity<0, -1, 1>;      ///< wire delay / m
using WattsPerMeter = Quantity<1, 1, -3>;        ///< wire power / m
using AmperesPerMeter = Quantity<0, -1, 0, 1>;   ///< leakage / device width

// --- time ---
inline constexpr double kPicosecond = 1e-12;
inline constexpr double kNanosecond = 1e-9;
[[nodiscard]] constexpr Seconds seconds(double v) { return Seconds{v}; }
[[nodiscard]] constexpr Seconds ps(double v) { return Seconds{v * kPicosecond}; }
[[nodiscard]] constexpr Seconds ns(double v) { return Seconds{v * kNanosecond}; }
[[nodiscard]] constexpr double to_ps(Seconds s) { return s.value() / kPicosecond; }
[[nodiscard]] constexpr double to_ns(Seconds s) { return s.value() / kNanosecond; }

// --- frequency ---
[[nodiscard]] constexpr Hertz hertz(double v) { return Hertz{v}; }
[[nodiscard]] constexpr Hertz ghz(double v) { return Hertz{v * 1e9}; }

// --- length ---
inline constexpr double kMicrometer = 1e-6;
inline constexpr double kMillimeter = 1e-3;
[[nodiscard]] constexpr Meters meters(double v) { return Meters{v}; }
[[nodiscard]] constexpr Meters um(double v) { return Meters{v * kMicrometer}; }
[[nodiscard]] constexpr Meters mm(double v) { return Meters{v * kMillimeter}; }
[[nodiscard]] constexpr double to_mm(Meters m) { return m.value() / kMillimeter; }
[[nodiscard]] constexpr double to_um(Meters m) { return m.value() / kMicrometer; }

// --- energy / power ---
inline constexpr double kPicojoule = 1e-12;
inline constexpr double kNanojoule = 1e-9;
inline constexpr double kMilliwatt = 1e-3;
[[nodiscard]] constexpr Joules joules(double v) { return Joules{v}; }
[[nodiscard]] constexpr Joules pj(double v) { return Joules{v * kPicojoule}; }
[[nodiscard]] constexpr Joules nj(double v) { return Joules{v * kNanojoule}; }
[[nodiscard]] constexpr Watts watts(double v) { return Watts{v}; }
[[nodiscard]] constexpr Watts mw(double v) { return Watts{v * kMilliwatt}; }
[[nodiscard]] constexpr double to_pj(Joules j) { return j.value() / kPicojoule; }
[[nodiscard]] constexpr double to_mw(Watts w) { return w.value() / kMilliwatt; }

// --- electrical ---
[[nodiscard]] constexpr Volts volts(double v) { return Volts{v}; }
[[nodiscard]] constexpr Ohms ohms(double v) { return Ohms{v}; }
[[nodiscard]] constexpr Farads farads(double v) { return Farads{v}; }

// --- area ---
inline constexpr double kSquareMicrometer = 1e-12;  // in m^2
inline constexpr double kSquareMillimeter = 1e-6;   // in m^2
[[nodiscard]] constexpr SquareMeters um2(double v) {
  return SquareMeters{v * kSquareMicrometer};
}
[[nodiscard]] constexpr SquareMeters mm2(double v) {
  return SquareMeters{v * kSquareMillimeter};
}
[[nodiscard]] constexpr double to_mm2(SquareMeters a) { return a.value() / 1e-6; }

}  // namespace tcmp::units
