// Versioned binary snapshot archives for checkpoint/restore (ROADMAP item 4).
//
// SnapshotWriter and SnapshotReader are symmetric: a class serializes itself
// with ONE member template,
//
//   template <typename Ar> void snapshot_io(Ar& ar) { ar.field(a_); ... }
//
// instantiated with either archive, so the save and load walks can never
// drift apart field-by-field. field() handles integral/enum/bool/floating
// scalars, the strong types from common/types.hpp (anything exposing
// .value() plus explicit construction from its Rep), std::string, and the
// containers the simulator state lives in (vector, deque, array, optional,
// pair, map, unordered_map). Unordered maps are written in sorted-key order
// so the byte stream is independent of hash-bucket layout; reinserting on
// load is behaviorally safe because the nondet-iteration lint guarantees no
// simulator behavior depends on iteration order.
//
// Two guard mechanisms keep a stale or mismatched snapshot from silently
// corrupting a run:
//   * section("name") writes/checks a tag hash, so a save/load walk that
//     drifts fails at the section boundary, not five hundred fields later;
//   * verify(v) writes the value and on load CHECKs it equals the restoring
//     object's construction-time value — used for config shape baked into
//     objects (set counts, capacities, port counts).
// On any mismatch the reader TCMP_CHECKs: a snapshot is trusted input
// produced by the same binary family, not an attack surface to limp past.
//
// File layout: a snapshot stream starts with the magic, a format version and
// a caller-supplied config fingerprint string (write_snapshot_header /
// read_snapshot_header); docs/checkpointing.md records the version policy.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace tcmp {

/// Bumped when the stream layout changes incompatibly. Readers reject any
/// version above their own; older-version migration is added only when an
/// actual layout change lands (none yet — see docs/checkpointing.md).
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

namespace snapshot_detail {

inline constexpr char kMagic[8] = {'T', 'C', 'M', 'P', 'S', 'N', 'P', '\0'};

[[nodiscard]] constexpr std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 1469598103934665603ull;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 1099511628211ull;
  }
  return h;
}

/// The strong scalar family (Cycle, LineAddr, NodeId, ...): a nested Rep,
/// a value() observer, explicit construction back from Rep.
template <typename T>
concept StrongScalar = requires(const T& v) {
  typename T::Rep;
  { v.value() } -> std::convertible_to<typename T::Rep>;
  requires std::is_integral_v<typename T::Rep>;
  requires std::is_constructible_v<T, typename T::Rep>;
};

template <typename T, typename Ar>
concept HasSnapshotIo = requires(T& v, Ar& ar) { v.snapshot_io(ar); };

}  // namespace snapshot_detail

class SnapshotWriter {
 public:
  static constexpr bool kIsWriter = true;

  explicit SnapshotWriter(std::ostream& out) : out_(out) {}

  /// Tag hash marking a save/load phase boundary.
  void section(const char* name) { raw_u64(snapshot_detail::fnv1a(name)); }

  /// Construction-time config shape: written like a field; the reader
  /// CHECKs it against the restoring object instead of assigning.
  template <typename T>
  void verify(const T& v) {
    field(v);
  }

  template <typename T>
  void field(const T& v) {
    using snapshot_detail::StrongScalar;
    if constexpr (snapshot_detail::HasSnapshotIo<T, SnapshotWriter>) {
      // snapshot_io is non-const (the reader instantiation assigns); the
      // writer instantiation only reads.
      const_cast<T&>(v).snapshot_io(*this);
    } else if constexpr (std::is_same_v<T, bool>) {
      raw_u64(v ? 1 : 0);
    } else if constexpr (std::is_enum_v<T>) {
      raw_u64(static_cast<std::uint64_t>(
          static_cast<std::underlying_type_t<T>>(v)));
    } else if constexpr (std::is_integral_v<T>) {
      raw_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
    } else if constexpr (std::is_floating_point_v<T>) {
      raw_u64(std::bit_cast<std::uint64_t>(static_cast<double>(v)));
    } else if constexpr (StrongScalar<T>) {
      raw_u64(static_cast<std::uint64_t>(v.value()));
    } else {
      write_composite(v);
    }
  }

  void raw_u64(std::uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    out_.write(b, 8);
  }

  void raw_bytes(const char* p, std::size_t n) {
    out_.write(p, static_cast<std::streamsize>(n));
  }

  [[nodiscard]] bool good() const { return out_.good(); }

 private:
  void write_composite(const std::string& v) {
    raw_u64(v.size());
    raw_bytes(v.data(), v.size());
  }
  template <typename T>
  void write_composite(const std::vector<T>& v) {
    raw_u64(v.size());
    for (const T& e : v) field(e);
  }
  void write_composite(const std::vector<bool>& v) {
    raw_u64(v.size());
    for (const bool b : v) field(b);
  }
  template <typename T>
  void write_composite(const std::deque<T>& v) {
    raw_u64(v.size());
    for (const T& e : v) field(e);
  }
  template <typename T, std::size_t N>
  void write_composite(const std::array<T, N>& v) {
    for (const T& e : v) field(e);
  }
  template <typename T>
  void write_composite(const std::optional<T>& v) {
    field(v.has_value());
    if (v.has_value()) field(*v);
  }
  template <typename A, typename B>
  void write_composite(const std::pair<A, B>& v) {
    field(v.first);
    field(v.second);
  }
  template <typename K, typename V>
  void write_composite(const std::map<K, V>& ordered) {
    raw_u64(ordered.size());
    for (const auto& [k, v] : ordered) {
      field(k);
      field(v);
    }
  }
  template <typename K, typename V, typename H, typename E>
  void write_composite(const std::unordered_map<K, V, H, E>& m) {
    // Sorted-key order: the stream must not depend on hash-bucket layout.
    std::vector<const K*> keys;
    keys.reserve(m.size());
    // tcmplint: order-insensitive (collects every key, then sorts below)
    for (const auto& kv : m) keys.push_back(&kv.first);
    std::sort(keys.begin(), keys.end(),
              [](const K* a, const K* b) { return *a < *b; });
    raw_u64(m.size());
    for (const K* k : keys) {
      field(*k);
      field(m.at(*k));
    }
  }

  std::ostream& out_;
};

class SnapshotReader {
 public:
  static constexpr bool kIsWriter = false;

  explicit SnapshotReader(std::istream& in) : in_(in) {}

  void section(const char* name) {
    const std::uint64_t tag = raw_u64();
    TCMP_CHECK_MSG(tag == snapshot_detail::fnv1a(name),
                   "snapshot section tag mismatch (stream drifted from the "
                   "save walk, or the snapshot is from an incompatible build)");
  }

  /// Read the recorded value and CHECK it matches the restoring object's
  /// construction-time value (config shape must agree, never be assigned).
  template <typename T>
  void verify(const T& v) {
    std::remove_const_t<T> recorded{};
    field(recorded);
    TCMP_CHECK_MSG(recorded == v,
                   "snapshot config-shape mismatch: the restoring run was "
                   "constructed with different parameters than the saved one");
  }

  template <typename T>
  void field(T& v) {
    using snapshot_detail::StrongScalar;
    if constexpr (snapshot_detail::HasSnapshotIo<T, SnapshotReader>) {
      v.snapshot_io(*this);
    } else if constexpr (std::is_same_v<T, bool>) {
      v = raw_u64() != 0;
    } else if constexpr (std::is_enum_v<T>) {
      v = static_cast<T>(
          static_cast<std::underlying_type_t<T>>(raw_u64()));
    } else if constexpr (std::is_integral_v<T>) {
      v = static_cast<T>(static_cast<std::int64_t>(raw_u64()));
    } else if constexpr (std::is_floating_point_v<T>) {
      v = static_cast<T>(std::bit_cast<double>(raw_u64()));
    } else if constexpr (StrongScalar<T>) {
      v = T{static_cast<typename T::Rep>(raw_u64())};
    } else {
      read_composite(v);
    }
  }

  [[nodiscard]] std::uint64_t raw_u64() {
    char b[8];
    in_.read(b, 8);
    TCMP_CHECK_MSG(in_.good(), "snapshot stream truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i]))
           << (8 * i);
    return v;
  }

  void raw_bytes(char* p, std::size_t n) {
    in_.read(p, static_cast<std::streamsize>(n));
    TCMP_CHECK_MSG(n == 0 || in_.good(), "snapshot stream truncated");
  }

  [[nodiscard]] bool good() const { return in_.good(); }

 private:
  void read_composite(std::string& v) {
    v.resize(raw_u64());
    raw_bytes(v.data(), v.size());
  }
  template <typename T>
  void read_composite(std::vector<T>& v) {
    v.clear();
    v.resize(raw_u64());
    for (T& e : v) field(e);
  }
  void read_composite(std::vector<bool>& v) {
    v.clear();
    v.resize(raw_u64());
    for (std::size_t i = 0; i < v.size(); ++i) {
      bool b = false;
      field(b);
      v[i] = b;
    }
  }
  template <typename T>
  void read_composite(std::deque<T>& v) {
    v.clear();
    v.resize(raw_u64());
    for (T& e : v) field(e);
  }
  template <typename T, std::size_t N>
  void read_composite(std::array<T, N>& v) {
    for (T& e : v) field(e);
  }
  template <typename T>
  void read_composite(std::optional<T>& v) {
    bool has = false;
    field(has);
    if (has) {
      v.emplace();
      field(*v);
    } else {
      v.reset();
    }
  }
  template <typename A, typename B>
  void read_composite(std::pair<A, B>& v) {
    field(v.first);
    field(v.second);
  }
  template <typename K, typename V>
  void read_composite(std::map<K, V>& m) {
    m.clear();
    const std::uint64_t n = raw_u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      K k{};
      field(k);
      V val{};
      field(val);
      m.emplace_hint(m.end(), std::move(k), std::move(val));
    }
  }
  template <typename K, typename V, typename H, typename E>
  void read_composite(std::unordered_map<K, V, H, E>& m) {
    m.clear();
    const std::uint64_t n = raw_u64();
    m.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      K k{};
      field(k);
      V val{};
      field(val);
      m.emplace(std::move(k), std::move(val));
    }
  }

  std::istream& in_;
};

/// Open a snapshot stream: magic, format version, config fingerprint. The
/// fingerprint is any string both sides derive from their construction
/// parameters (config name + tiles + threads + workload identity); restore
/// refuses a snapshot whose fingerprint differs.
inline void write_snapshot_header(SnapshotWriter& w,
                                  const std::string& fingerprint) {
  w.raw_bytes(snapshot_detail::kMagic, sizeof snapshot_detail::kMagic);
  w.raw_u64(kSnapshotFormatVersion);
  w.field(fingerprint);
}

inline void read_snapshot_header(SnapshotReader& r,
                                 const std::string& expected_fingerprint) {
  char magic[sizeof snapshot_detail::kMagic] = {};
  r.raw_bytes(magic, sizeof magic);
  TCMP_CHECK_MSG(std::equal(std::begin(magic), std::end(magic),
                            std::begin(snapshot_detail::kMagic)),
                 "not a tcmp snapshot (bad magic)");
  const std::uint64_t version = r.raw_u64();
  TCMP_CHECK_MSG(version >= 1 && version <= kSnapshotFormatVersion,
                 "snapshot format version not supported by this build");
  std::string fingerprint;
  r.field(fingerprint);
  TCMP_CHECK_MSG(fingerprint == expected_fingerprint,
                 "snapshot fingerprint mismatch: the snapshot was taken under "
                 "a different config/workload than the restoring run");
}

}  // namespace tcmp
