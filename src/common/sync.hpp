// Thread-safety-annotated synchronization primitives.
//
// The simulator core is single-threaded by design (one CmpSystem per sweep
// task, nothing shared — see docs/kernel.md); the few places that genuinely
// share mutable state across threads (the process-global abort-hook registry,
// the parallel_sweep driver) must make that sharing *provable*. These
// wrappers carry Clang's thread-safety attributes so `-Wthread-safety`
// (enabled for Clang builds in the top-level CMakeLists, an error under
// TCMP_WERROR) statically checks that every TCMP_GUARDED_BY field is only
// touched with its mutex held. On GCC the attributes expand to nothing and
// the wrappers are exactly std::mutex / std::lock_guard.
//
// Conventions (enforced by tcmplint):
//   * guarded-field: in any class holding a Mutex, every sibling data member
//     is either TCMP_GUARDED_BY(that mutex) or explicitly annotated
//     `tcmplint: allow-unguarded-field (reason)`.
//   * mutable-static: non-const static-duration locals are banned outside an
//     annotated allowlist; shared mutable singletons must be mutex-guarded
//     (this header) or atomic.
#pragma once

#include <mutex>

#if defined(__clang__)
#define TCMP_TSA(x) __attribute__((x))
#else
#define TCMP_TSA(x)  // GCC: thread-safety attributes are Clang-only
#endif

#define TCMP_CAPABILITY(x) TCMP_TSA(capability(x))
#define TCMP_SCOPED_CAPABILITY TCMP_TSA(scoped_lockable)
#define TCMP_GUARDED_BY(x) TCMP_TSA(guarded_by(x))
#define TCMP_PT_GUARDED_BY(x) TCMP_TSA(pt_guarded_by(x))
#define TCMP_ACQUIRE(...) TCMP_TSA(acquire_capability(__VA_ARGS__))
#define TCMP_RELEASE(...) TCMP_TSA(release_capability(__VA_ARGS__))
#define TCMP_TRY_ACQUIRE(...) TCMP_TSA(try_acquire_capability(__VA_ARGS__))
#define TCMP_REQUIRES(...) TCMP_TSA(requires_capability(__VA_ARGS__))
#define TCMP_EXCLUDES(...) TCMP_TSA(locks_excluded(__VA_ARGS__))
#define TCMP_RETURN_CAPABILITY(x) TCMP_TSA(lock_returned(x))
#define TCMP_NO_THREAD_SAFETY_ANALYSIS TCMP_TSA(no_thread_safety_analysis)

namespace tcmp {

/// std::mutex as a Clang thread-safety *capability*: fields declared
/// TCMP_GUARDED_BY(mu) may only be read or written while `mu` is held, and
/// the analysis rejects any code path that forgets the lock.
class TCMP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TCMP_ACQUIRE() { mu_.lock(); }
  void unlock() TCMP_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TCMP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::lock_guard over Mutex, visible to the analysis as a scoped
/// capability: the guarded fields are accessible exactly for the guard's
/// lifetime.
class TCMP_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) TCMP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() TCMP_RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace tcmp
