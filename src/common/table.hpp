// ASCII table formatter used by the table/figure reproduction benches so all
// of them print in the same, easily-diffable layout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tcmp {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  TextTable& add_row(std::vector<std::string> cells);
  /// Render with column widths fitted to content; first column left-aligned,
  /// the rest right-aligned (numeric convention).
  [[nodiscard]] std::string str() const;

  static std::string fmt(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);  // 0.123 -> "12.3%"

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tcmp
