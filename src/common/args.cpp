#include "common/args.hpp"

#include <cstdlib>

namespace tcmp {

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    if (arg.size() == 2) {
      error_ = "bare '--' is not supported";
      return false;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not an option; "--flag" otherwise.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
  return true;
}

std::string ArgParser::get(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it != values_.end() ? it->second : fallback;
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return end != it->second.c_str() ? v : fallback;
}

long ArgParser::get_long(const std::string& key, long fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  return end != it->second.c_str() ? v : fallback;
}

bool ArgParser::get_flag(const std::string& key) const {
  auto it = values_.find(key);
  return it != values_.end() && it->second != "false" && it->second != "0";
}

std::vector<std::string> ArgParser::unknown_keys(
    const std::set<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    if (!known.contains(k)) out.push_back(k);
  }
  return out;
}

}  // namespace tcmp
