// Minimal JSON reader for the tooling layer (tools/tcmpstat): a
// recursive-descent parser producing an ordered DOM, plus the string-escape
// helper the writers share. Covers the full JSON grammar the canonical
// metrics schema uses (objects, arrays, strings, finite numbers, booleans,
// null); it is NOT a general-purpose library — no \uXXXX surrogate pairs, no
// streaming, inputs are trusted artifacts the simulator itself wrote.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace tcmp::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> items;                           ///< kArray
  std::vector<std::pair<std::string, Value>> members; ///< kObject (ordered)

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;
  /// Dotted-path lookup over nested objects. Segments match the LONGEST
  /// member name first, so keys that themselves contain dots (counter names
  /// like "msg_remote.count") resolve: "counters.msg_remote.count" finds
  /// member "msg_remote.count" of object "counters".
  [[nodiscard]] const Value* find_path(const std::string& path) const;
};

struct ParseResult {
  bool ok = false;
  Value value;
  std::string error;  ///< "offset N: message" when !ok
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
[[nodiscard]] ParseResult parse(const std::string& text);

/// Escape a string for embedding in a JSON string literal (no quotes added).
[[nodiscard]] std::string escape(const std::string& s);

}  // namespace tcmp::json
