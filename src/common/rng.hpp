// Deterministic, fast PRNG (xoshiro256**). Every stochastic component takes a
// seeded Rng so whole-system simulations are bit-reproducible; there is no
// global random state anywhere in the library.
#pragma once

#include <cstdint>

#include "common/check.hpp"

namespace tcmp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    TCMP_DCHECK(bound > 0);
    // Lemire's multiply-shift: modulo bias for simulation bounds (<< 2^64)
    // is negligible and the widening multiply avoids a division.
    __extension__ using u128 = unsigned __int128;
    const u128 m = static_cast<u128>(next_u64()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    TCMP_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial.
  bool chance(double p) { return next_double() < p; }

  /// Geometric-ish gap: number of trials until success with probability p,
  /// clamped to [1, cap]. Used for compute-gap generation in workloads.
  std::uint32_t geometric(double p, std::uint32_t cap = 1u << 20) {
    if (p >= 1.0) return 1;
    if (p <= 0.0) return cap;
    std::uint32_t n = 1;
    while (n < cap && !chance(p)) ++n;
    return n;
  }

  /// Checkpoint serialization (common/snapshot.hpp): the 256-bit state is
  /// the whole of an Rng, so a restored generator continues the exact
  /// sequence the saved one would have produced.
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    for (auto& word : state_) ar.field(word);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace tcmp
