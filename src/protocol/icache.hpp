// L1 instruction cache (Table 4: 32 KB 4-way per tile).
//
// Instruction lines are read-only for the SPLASH-style workloads (no
// self-modifying code), so the I-cache is modelled outside the coherence
// domain — the standard simplification: an I-miss sends a GetInstr request
// to the line's home L2 slice, which replies with the data without touching
// directory state, and no invalidations are ever delivered here. I-misses
// still travel the real network (short critical requests, compressible like
// any other) and occupy real L2 bandwidth.
//
// Thread compatibility: tile-owned, no internal locking; mutated only from
// its tile's simulation thread (tile-escape lint, docs/static-analysis.md).
#pragma once

#include <functional>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "protocol/cache_array.hpp"
#include "protocol/coherence_msg.hpp"
#include "sim/scheduled.hpp"

namespace tcmp::protocol {

class ICache final : public sim::Scheduled {
 public:
  struct Config {
    unsigned sets = 128;  ///< 32 KB, 4-way
    unsigned ways = 4;
  };

  using MsgSink = std::function<void(CoherenceMsg)>;
  using FillCallback = std::function<void()>;

  ICache(NodeId id, const Config& cfg, unsigned n_nodes, StatRegistry* stats,
         MsgSink sink);

  /// Fetch the line holding the next instructions. Returns true on hit;
  /// false blocks the core front-end until the fill callback fires.
  bool fetch(LineAddr line);

  /// Functional warming (cmp/sampling.cpp): end state of a fetch with no
  /// timing and no messages. Instruction lines are read-only and outside
  /// the coherence domain, so a silent install is exact — the array ends in
  /// the same state the detailed fetch path would leave it in.
  void warm_install(LineAddr line);

  void set_fill_callback(FillCallback cb) { fill_cb_ = std::move(cb); }

  /// Network-side delivery (only kData replies to our GetInstr).
  void deliver(const CoherenceMsg& msg);

  [[nodiscard]] bool quiescent() const override { return !miss_outstanding_; }
  /// Purely message-driven: no tick, so never a wake source by itself.
  [[nodiscard]] Cycle next_event() const override { return kNeverCycle; }

  /// Checkpoint serialization (common/snapshot.hpp).
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.section("l1i");
    ar.verify(id_);
    ar.field(array_);
    ar.field(miss_outstanding_);
    ar.field(miss_line_);
  }

 private:
  struct Payload {
    // presence only: instruction lines carry no state
    template <typename Ar>
    void snapshot_io(Ar&) {}
  };

  NodeId id_;
  // tcmplint: snapshot-exempt (construction parameter, never mutates)
  unsigned n_nodes_;
  CacheArray<Payload> array_;
  StatRegistry* stats_;
  // tcmplint: snapshot-exempt (send callback wired by the system constructor)
  MsgSink sink_;
  // tcmplint: snapshot-exempt (fill callback wired by the system constructor)
  FillCallback fill_cb_;
  // Interned stat handles (hot path: every instruction fetch).
  CounterRef fetches_;
  CounterRef misses_;
  bool miss_outstanding_ = false;
  LineAddr miss_line_{};
};

}  // namespace tcmp::protocol
