// Home L2 slice with in-tags full-map directory (Sec. 4.1): the L2 is shared
// but physically distributed (NUCA); each line's home tile is
// line % n_tiles. The directory serializes all transactions on a line;
// requests that arrive while the line is busy are queued FIFO per line.
//
// The L2 is inclusive. Evicting an L2 line with L1 copies first recalls them
// (Inv to sharers with acks collected at home, or Recall to the owner).
//
// Writeback/forward crossings on an unordered network are resolved by
// *holding the PutAck*: when a Put arrives from the owner of a line that has
// a forward or recall outstanding (a Busy* state), the home defers the
// PutAck until the owner's (Ack)Revision resolves the busy state. This keeps
// the invariant that a forward always finds either the stable line or the
// eviction buffer at the L1 — a PutAck can never overtake the forward and
// tear the buffer down. Puts that arrive after resolution (or after the line
// was recalled away entirely) are stale: acknowledged and ignored.
//
// Thread compatibility: tile-owned, no internal locking; mutated only from
// its tile's simulation thread through the message seam (tile-escape lint,
// docs/static-analysis.md).
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "common/queues.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "obs/hooks.hpp"
#include "protocol/cache_array.hpp"
#include "protocol/coherence_msg.hpp"
#include "protocol/delay_queue.hpp"
#include "protocol/l1_cache.hpp"
#include "protocol/sharer_mask.hpp"
#include "sim/scheduled.hpp"

namespace tcmp::protocol {

/// Home-stripped directory index (line = key * n_nodes + home). A distinct
/// strong type: a DirKey indexes one slice's array and is meaningless as a
/// global line address, so the two cannot be interchanged.
class DirKey {
 public:
  constexpr DirKey() = default;
  constexpr explicit DirKey(std::uint64_t v) : v_(v) {}
  [[nodiscard]] constexpr std::uint64_t value() const { return v_; }
  friend constexpr bool operator==(DirKey, DirKey) = default;

 private:
  std::uint64_t v_ = 0;
};

enum class DirState : std::uint8_t {
  kInvalid,    ///< no L1 copies; L2 data valid
  kShared,     ///< sharers bitmap; L2 data valid
  kExclusive,  ///< single L1 owner; L2 data possibly stale
  kBusyShared, ///< FwdGetS outstanding, waiting Revision
  kBusyExcl,   ///< FwdGetX outstanding, waiting AckRevision
  kBusyRecall, ///< eviction in progress, waiting InvAcks / owner response
};

class Directory final : public sim::Scheduled {
 public:
  struct Config {
    unsigned sets = 1024;      ///< 256 KB slice, 4-way, 64 B lines
    unsigned ways = 4;
    Cycle l2_latency{8};      ///< Table 4: 6+2 cycles
    Cycle memory_latency{400};
    /// Reply Partitioning [9]: send the critical word ahead of read replies.
    bool reply_partitioning = false;
  };

  using MsgSink = std::function<void(CoherenceMsg)>;

  Directory(NodeId id, const Config& cfg, unsigned n_nodes, StatRegistry* stats,
            MsgSink sink);

  /// Network-side delivery; processing happens l2_latency cycles later.
  void deliver(const CoherenceMsg& msg, Cycle now);

  /// Advance internal pipelines (delayed L2 accesses, memory fills).
  void tick(Cycle now);

  /// Earliest cycle at which tick() has work to do (for idle fast-forward).
  [[nodiscard]] Cycle next_event() const override;

  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] NodeId id() const { return id_; }

  /// Functional warmup support: fills already queued keep their latency.
  void set_memory_latency(Cycle lat) { cfg_.memory_latency = lat; }

  /// Attach observability hooks (per-message processing events); null detaches.
  void set_hooks(obs::ProtocolHooks* hooks) { hooks_ = hooks; }

  /// Occupancy gauges for telemetry sampling.
  [[nodiscard]] unsigned busy_lines() const { return busy_lines_; }
  [[nodiscard]] unsigned queued_msgs() const { return queued_msgs_; }

  /// Read-only directory-entry snapshot for invariant scans (verify lint).
  struct EntryView {
    DirState state = DirState::kInvalid;
    SharerMask sharers;
    NodeId owner = kInvalidNode;
    NodeId fwd_requester = kInvalidNode;
  };
  [[nodiscard]] std::optional<EntryView> entry_of(LineAddr line) const;

  /// Test hooks.
  [[nodiscard]] std::optional<DirState> dir_state_of(LineAddr line) const;
  [[nodiscard]] SharerMask sharers_of(LineAddr line) const;
  [[nodiscard]] NodeId owner_of(LineAddr line) const;
  /// Test hook: validation version of the L2 copy (0 if absent).
  [[nodiscard]] std::uint32_t version_of(LineAddr line) const;

  // --- Functional warm-up (SMARTS fast-forward; cmp/sampling.cpp) ----------
  // Directory-side effect of one load/store applied instantly: no messages,
  // no latency, no stat bumps. Only legal while the machine is drained (no
  // in-flight transactions anywhere), so no Busy*/MemTxn state can exist on
  // the touched lines. Effects on other tiles' L1 copies are delegated to
  // the caller-supplied callbacks (the directory cannot reach them).

  /// L1-side install the caller must apply for the accessing core.
  struct WarmGrant {
    L1State l1_state = L1State::kS;
    std::uint32_t version = 0;
  };
  // Callbacks name the line explicitly: the functional L2-eviction path
  // recalls copies of the *victim* line, not the accessed one.
  using WarmVersionFn = std::function<std::uint32_t(NodeId, LineAddr)>;
  using WarmDropFn = std::function<void(NodeId, LineAddr)>;
  using WarmDowngradeFn = std::function<void(NodeId, LineAddr)>;
  /// Apply the protocol's end state for a warm load/store by `core` (which
  /// must not already hold sufficient permission). Maintains inclusivity and
  /// version monotonicity: functional L2 evictions recall L1 copies via
  /// `l1_drop`, reading the owner's version via `l1_version`; warm loads on
  /// an Exclusive line downgrade the owner via `l1_downgrade`.
  WarmGrant warm_access(LineAddr line, NodeId core, bool is_write,
                        const WarmVersionFn& l1_version,
                        const WarmDropFn& l1_drop,
                        const WarmDowngradeFn& l1_downgrade);
  /// Functional writeback of a warm L1 eviction (M or E line): clears the
  /// owner exactly as the PutM/PutE exchange would have.
  void warm_writeback(LineAddr line, NodeId owner, bool was_modified,
                      std::uint32_t version);

  /// Checkpoint serialization (common/snapshot.hpp): the directory array
  /// (entries with their pending queues), both latency pipes, in-flight
  /// memory transactions, the off-chip version map and occupancy gauges.
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.section("dir");
    ar.verify(id_);
    ar.verify(n_nodes_);
    ar.field(cfg_.memory_latency);  // warmup/measured boundary state
    ar.field(array_);
    ar.field(access_pipe_);
    ar.field(memory_pipe_);
    ar.field(mem_txns_);
    ar.field(memory_versions_);
    ar.field(busy_lines_);
    ar.field(queued_msgs_);
    ar.field(now_);
  }

 private:
  /// Requests parked on a busy line or in-flight fill: almost always empty,
  /// rarely more than a couple deep, so a small-buffer queue keeps the
  /// common case allocation-free.
  using PendingQueue = SmallQueue<CoherenceMsg, 2>;

  struct DirEntry {
    DirState state = DirState::kInvalid;
    SharerMask sharers;  ///< full-map bit vector (up to SharerMask::kMaxNodes)
    NodeId owner = kInvalidNode;
    NodeId fwd_requester = kInvalidNode;  ///< requester of an in-flight forward
    bool l2_dirty = false;      ///< line dirty w.r.t. off-chip memory
    bool held_put_ack = false;  ///< PutAck deferred until the busy resolves
    /// BusyExcl only: the forward requester (new owner) wrote the line back
    /// before the old owner's AckRevision arrived, so the AckRevision must
    /// resolve the entry to Invalid instead of installing the requester.
    bool fwd_put = false;
    std::uint32_t version = 0;  ///< data-flow validation version
    std::uint16_t recall_acks_pending = 0;
    PendingQueue pending;  ///< requests queued while busy

    template <typename Ar>
    void snapshot_io(Ar& ar) {
      ar.field(state);
      ar.field(sharers);
      ar.field(owner);
      ar.field(fwd_requester);
      ar.field(l2_dirty);
      ar.field(held_put_ack);
      ar.field(fwd_put);
      ar.field(version);
      ar.field(recall_acks_pending);
      ar.field(pending);
    }
  };
  using Array = CacheArray<DirEntry, DirKey>;

  /// Off-chip fetch in flight for a line not present in L2.
  struct MemTxn {
    bool fill_arrived = false;
    PendingQueue pending;

    template <typename Ar>
    void snapshot_io(Ar& ar) {
      ar.field(fill_arrived);
      ar.field(pending);
    }
  };

  void send(CoherenceMsg msg);
  [[nodiscard]] DirKey key_of(LineAddr line) const;
  [[nodiscard]] LineAddr line_of_key(DirKey key) const;
  void process(const CoherenceMsg& msg);
  void handle_request(const CoherenceMsg& msg);
  void handle_request_hit(const CoherenceMsg& msg, Array::Line& l);
  void handle_put(const CoherenceMsg& msg);
  void handle_revision(const CoherenceMsg& msg);
  void handle_inv_ack(const CoherenceMsg& msg);

  void start_fill(LineAddr line, const CoherenceMsg& first);
  void try_install_fill(LineAddr line);
  void retry_blocked_fills();
  void start_recall(Array::Line& l);
  void finish_recall(Array::Line& l);
  void drain_pending(PendingQueue msgs);

  void reply_data(const CoherenceMsg& req, MsgType type, std::uint16_t acks,
                  std::uint32_t version);
  void send_partial_reply(NodeId requester, LineAddr line);
  void release_put_ack(LineAddr line, NodeId owner);
  void send_invs(LineAddr line, const SharerMask& sharers, NodeId collector,
                 Unit ack_unit);

  [[nodiscard]] static bool is_busy(DirState s) {
    return s == DirState::kBusyShared || s == DirState::kBusyExcl ||
           s == DirState::kBusyRecall;
  }

  NodeId id_;
  unsigned n_nodes_;
  Config cfg_;
  Array array_;
  StatRegistry* stats_;
  // tcmplint: snapshot-exempt (send callback wired by the system constructor)
  MsgSink sink_;
  obs::ProtocolHooks* hooks_ = nullptr;

  // FIFO pipes, not heaps: each is pushed with a per-instance-constant
  // latency at non-decreasing `now`, so deadlines are monotone (the memory
  // latency only ever increases, at the warmup/measurement boundary, which
  // preserves monotonicity; the push-side debug check enforces it).
  FifoDelayQueue<CoherenceMsg> access_pipe_;  ///< models the L2 access latency
  FifoDelayQueue<LineAddr> memory_pipe_;      ///< off-chip fills in flight
  std::unordered_map<LineAddr, MemTxn> mem_txns_;
  /// Validation versions of lines written back to off-chip memory.
  std::unordered_map<LineAddr, std::uint32_t> memory_versions_;
  unsigned busy_lines_ = 0;    ///< dir entries in a Busy* state
  unsigned queued_msgs_ = 0;   ///< requests parked on busy lines / fills
  Cycle now_{0};
  // Interned stat handles (hot path: every processed message).
  CounterRef l2_accesses_;
  CounterRef l2_evictions_;
  CounterRef mem_reads_;
  CounterRef mem_writebacks_;
  CounterRef queued_on_fill_;
  CounterRef queued_on_busy_;
  CounterRef instr_fetches_;
  CounterRef invalidations_sent_;
  CounterRef cache_to_cache_;
  CounterRef upgrades_granted_;
  CounterRef stale_puts_;
  CounterRef puts_accepted_;
  CounterRef held_put_acks_;
  CounterRef fwd_owner_puts_;
  CounterRef dropped_revisions_;
  CounterRef recalls_;
};

}  // namespace tcmp::protocol
