// Timed FIFO used to model fixed access latencies inside tiles (L2 tag/data
// pipelines, off-chip memory). Items pushed with a ready cycle pop in ready
// order; ties preserve insertion order, keeping the simulation deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace tcmp::protocol {

template <typename T>
class DelayQueue {
 public:
  void push(Cycle ready_at, T item) {
    heap_.push(Node{ready_at, next_seq_++, std::move(item)});
  }

  /// Pop the next item whose ready cycle has arrived, if any.
  [[nodiscard]] std::optional<T> pop_ready(Cycle now) {
    if (heap_.empty() || heap_.top().ready_at > now) return std::nullopt;
    T item = std::move(const_cast<Node&>(heap_.top()).item);
    heap_.pop();
    return item;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Earliest ready cycle of any queued item (kNeverCycle when empty) —
  /// used by the simulator's idle fast-forwarding.
  [[nodiscard]] Cycle next_ready() const {
    return heap_.empty() ? kNeverCycle : heap_.top().ready_at;
  }

 private:
  struct Node {
    Cycle ready_at;
    std::uint64_t seq;
    T item;
    bool operator>(const Node& o) const {
      return ready_at != o.ready_at ? ready_at > o.ready_at : seq > o.seq;
    }
  };
  std::priority_queue<Node, std::vector<Node>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tcmp::protocol
