// Timed FIFOs used to model fixed access latencies inside tiles (L2 tag/data
// pipelines, off-chip memory). Items pushed with a ready cycle pop in ready
// order; ties preserve insertion order, keeping the simulation deterministic.
//
// Two implementations with the same API:
//   DelayQueue      — a heap; accepts deadlines in any order. Needed where a
//                     single queue mixes latencies (e.g. router credit
//                     returns across output ports of different lengths).
//   FifoDelayQueue  — a plain ring; requires monotone (non-decreasing)
//                     deadlines, which holds for any pipe pushed with a
//                     per-instance-constant latency at non-decreasing `now`
//                     (L2 access pipe, memory pipe, tile loopback, per-port
//                     link arrivals). Ready order then equals insertion
//                     order, so the heap's O(log n) churn and seq tiebreak
//                     are pure overhead. The monotonicity contract is
//                     enforced by a debug check on every push.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/queues.hpp"
#include "common/types.hpp"

namespace tcmp::protocol {

template <typename T>
class DelayQueue {
 public:
  void push(Cycle ready_at, T item) {
    heap_.push(Node{ready_at, next_seq_++, std::move(item)});
  }

  /// Pop the next item whose ready cycle has arrived, if any.
  [[nodiscard]] std::optional<T> pop_ready(Cycle now) {
    if (heap_.empty() || heap_.top().ready_at > now) return std::nullopt;
    T item = std::move(const_cast<Node&>(heap_.top()).item);
    heap_.pop();
    return item;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Earliest ready cycle of any queued item (kNeverCycle when empty) —
  /// used by the simulator's idle fast-forwarding.
  [[nodiscard]] Cycle next_ready() const {
    return heap_.empty() ? kNeverCycle : heap_.top().ready_at;
  }

  /// Checkpoint serialization (common/snapshot.hpp). The heap is drained
  /// from a copy in pop order — (ready_at, seq) is a total order, so the
  /// serialized sequence (and the rebuilt heap's pop order) is independent
  /// of the internal array layout.
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(next_seq_);
    if constexpr (Ar::kIsWriter) {
      ar.raw_u64(heap_.size());
      auto copy = heap_;
      while (!copy.empty()) {
        Node n = copy.top();
        copy.pop();
        ar.field(n.ready_at);
        ar.field(n.seq);
        ar.field(n.item);
      }
    } else {
      heap_ = {};
      for (std::uint64_t n = ar.raw_u64(); n > 0; --n) {
        Node node{};
        ar.field(node.ready_at);
        ar.field(node.seq);
        ar.field(node.item);
        heap_.push(std::move(node));
      }
    }
  }

 private:
  struct Node {
    Cycle ready_at;
    std::uint64_t seq = 0;
    T item;
    bool operator>(const Node& o) const {
      return ready_at != o.ready_at ? ready_at > o.ready_at : seq > o.seq;
    }
  };
  std::priority_queue<Node, std::vector<Node>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

/// DelayQueue specialization for pipes whose deadlines arrive in
/// non-decreasing order (see file comment): a small-buffer ring whose front
/// carries the earliest deadline by construction.
template <typename T>
class FifoDelayQueue {
 public:
  void push(Cycle ready_at, T item) {
    TCMP_DCHECK_MSG(q_.empty() || ready_at >= q_.back().ready_at,
                    "FifoDelayQueue requires non-decreasing deadlines");
    q_.push_back(Node{ready_at, std::move(item)});
  }

  /// Pop the next item whose ready cycle has arrived, if any.
  [[nodiscard]] std::optional<T> pop_ready(Cycle now) {
    if (q_.empty() || q_.front().ready_at > now) return std::nullopt;
    T item = std::move(q_.front().item);
    q_.pop_front();
    return item;
  }

  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::size_t size() const { return q_.size(); }

  /// Earliest ready cycle of any queued item (kNeverCycle when empty) —
  /// used by the simulator's idle fast-forwarding.
  [[nodiscard]] Cycle next_ready() const {
    return q_.empty() ? kNeverCycle : q_.front().ready_at;
  }

  /// Checkpoint serialization (common/snapshot.hpp).
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(q_);
  }

 private:
  struct Node {
    Cycle ready_at{};
    T item{};

    template <typename Ar>
    void snapshot_io(Ar& ar) {
      ar.field(ready_at);
      ar.field(item);
    }
  };
  SmallQueue<Node, 4> q_;
};

}  // namespace tcmp::protocol
