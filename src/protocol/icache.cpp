#include "protocol/icache.hpp"

#include "common/check.hpp"

namespace tcmp::protocol {

ICache::ICache(NodeId id, const Config& cfg, unsigned n_nodes, StatRegistry* stats,
               MsgSink sink)
    : id_(id),
      n_nodes_(n_nodes),
      array_(cfg.sets, cfg.ways),
      stats_(stats),
      sink_(std::move(sink)) {
  TCMP_CHECK(stats_ != nullptr && sink_ != nullptr);
  fetches_ = stats_->counter_ref("l1i.fetches");
  misses_ = stats_->counter_ref("l1i.misses");
}

bool ICache::fetch(LineAddr line) {
  ++fetches_;
  if (auto* l = array_.find(line)) {
    array_.touch(*l);
    return true;
  }
  TCMP_CHECK_MSG(!miss_outstanding_, "in-order front-end: one I-miss at a time");
  ++misses_;
  miss_outstanding_ = true;
  miss_line_ = line;

  CoherenceMsg req;
  req.type = MsgType::kGetInstr;
  req.src = id_;
  req.dst = NodeId{line.value() % n_nodes_};
  req.line = line;
  req.requester = id_;
  sink_(req);
  return false;
}

void ICache::deliver(const CoherenceMsg& msg) {
  TCMP_CHECK(msg.type == MsgType::kData);
  TCMP_CHECK(miss_outstanding_ && msg.line == miss_line_);
  miss_outstanding_ = false;
  auto* slot = array_.victim(msg.line);
  if (slot->valid) array_.invalidate(*slot);  // read-only: silent eviction
  array_.fill(*slot, msg.line);
  if (fill_cb_) fill_cb_();
}

void ICache::warm_install(LineAddr line) {
  if (auto* l = array_.find(line)) {
    array_.touch(*l);
    return;
  }
  auto* slot = array_.victim(line);
  if (slot->valid) array_.invalidate(*slot);  // read-only: silent eviction
  array_.fill(*slot, line);
}

}  // namespace tcmp::protocol
