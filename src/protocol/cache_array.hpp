// Generic set-associative array with true-LRU replacement, parameterized by a
// per-line payload (L1 stores an L1 state; the L2 slice stores data-presence
// plus the directory entry) and by the strong key type it is indexed with
// (LineAddr for caches, DirKey for the home-stripped directory array). Only
// metadata is tracked — the simulator models addresses and states, not data
// values.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace tcmp::protocol {

/// A strong integer key: explicit construction from its representation and
/// explicit `.value()` read-out (LineAddr, DirKey, ...).
template <typename K>
concept StrongKey = requires(K k, std::uint64_t v) {
  K{v};
  { k.value() } -> std::convertible_to<std::uint64_t>;
};

template <typename Payload, StrongKey Key = LineAddr>
class CacheArray {
 public:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru_stamp = 0;
    bool valid = false;
    Payload payload{};

    template <typename Ar>
    void snapshot_io(Ar& ar) {
      ar.field(tag);
      ar.field(lru_stamp);
      ar.field(valid);
      ar.field(payload);
    }
  };

  CacheArray(unsigned sets, unsigned ways) : sets_(sets), ways_(ways), lines_(sets * ways) {
    TCMP_CHECK_MSG(std::has_single_bit(sets), "set count must be a power of two");
    TCMP_CHECK(ways >= 1);
  }

  /// Geometry helper: total bytes / line size / ways -> sets.
  static CacheArray from_geometry(std::size_t capacity_bytes, unsigned ways) {
    const std::size_t lines = capacity_bytes / kLineBytes;
    return CacheArray(static_cast<unsigned>(lines / ways), ways);
  }

  [[nodiscard]] unsigned sets() const { return sets_; }
  [[nodiscard]] unsigned ways() const { return ways_; }

  /// Find the line holding `key`; returns nullptr on miss. Does not touch
  /// LRU (use `touch` on an actual access).
  [[nodiscard]] Line* find(Key key) {
    const unsigned set = set_of(key);
    const std::uint64_t tag = tag_of(key);
    for (unsigned w = 0; w < ways_; ++w) {
      Line& l = lines_[set * ways_ + w];
      if (l.valid && l.tag == tag) return &l;
    }
    return nullptr;
  }
  [[nodiscard]] const Line* find(Key key) const {
    return const_cast<CacheArray*>(this)->find(key);
  }

  void touch(Line& line) { line.lru_stamp = ++clock_; }

  /// The line that would be evicted to make room for `key` (invalid lines
  /// first, then LRU). Never returns nullptr.
  [[nodiscard]] Line* victim(Key key) {
    const unsigned set = set_of(key);
    Line* best = &lines_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
      Line& l = lines_[set * ways_ + w];
      if (!l.valid) return &l;
      if (l.lru_stamp < best->lru_stamp) best = &l;
    }
    return best;
  }

  /// Install `key` into `slot` (which must belong to its set).
  void fill(Line& slot, Key key) {
    TCMP_DCHECK(&slot >= &lines_[set_of(key) * ways_] &&
                &slot < &lines_[set_of(key) * ways_] + ways_);
    slot.valid = true;
    slot.tag = tag_of(key);
    slot.payload = Payload{};
    touch(slot);
  }

  void invalidate(Line& slot) { slot.valid = false; }

  /// Reconstruct the full key of an (assumed valid) slot.
  [[nodiscard]] Key address_of(const Line& slot) const {
    const std::size_t idx = static_cast<std::size_t>(&slot - lines_.data());
    const unsigned set = static_cast<unsigned>(idx / ways_);
    return Key{(slot.tag * sets_) + set};
  }

  /// All ways of the set `key` maps to (victim policies, tests).
  [[nodiscard]] std::span<Line> set_lines(Key key) {
    return {&lines_[static_cast<std::size_t>(set_of(key)) * ways_], ways_};
  }

  /// Visit every valid line (tests / invariant checks).
  template <typename Fn>
  void for_each_valid(Fn&& fn) {
    for (auto& l : lines_)
      if (l.valid) fn(l);
  }
  template <typename Fn>
  void for_each_valid(Fn&& fn) const {
    for (const auto& l : lines_)
      if (l.valid) fn(l);
  }

  [[nodiscard]] unsigned set_of(Key key) const {
    return static_cast<unsigned>(key.value() & (sets_ - 1));
  }
  [[nodiscard]] std::uint64_t tag_of(Key key) const { return key.value() / sets_; }

  /// Checkpoint serialization (common/snapshot.hpp): geometry is verified
  /// (construction-time shape), lines and the LRU clock restore exactly.
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.verify(sets_);
    ar.verify(ways_);
    ar.field(lines_);
    ar.field(clock_);
  }

 private:
  unsigned sets_;
  unsigned ways_;
  std::vector<Line> lines_;
  std::uint64_t clock_ = 0;
};

}  // namespace tcmp::protocol
