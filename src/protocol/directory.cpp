#include "protocol/directory.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "common/check.hpp"

namespace tcmp::protocol {

Directory::Directory(NodeId id, const Config& cfg, unsigned n_nodes,
                     StatRegistry* stats, MsgSink sink)
    : id_(id),
      n_nodes_(n_nodes),
      cfg_(cfg),
      array_(cfg.sets, cfg.ways),
      stats_(stats),
      sink_(std::move(sink)) {
  TCMP_CHECK(stats_ != nullptr && sink_ != nullptr);
  TCMP_CHECK(n_nodes_ <= SharerMask::kMaxNodes);  // full-map sharer width
  l2_accesses_ = stats_->counter_ref("l2.accesses");
  l2_evictions_ = stats_->counter_ref("l2.evictions");
  mem_reads_ = stats_->counter_ref("mem.reads");
  mem_writebacks_ = stats_->counter_ref("mem.writebacks");
  queued_on_fill_ = stats_->counter_ref("dir.queued_on_fill");
  queued_on_busy_ = stats_->counter_ref("dir.queued_on_busy");
  instr_fetches_ = stats_->counter_ref("dir.instr_fetches");
  invalidations_sent_ = stats_->counter_ref("dir.invalidations_sent");
  cache_to_cache_ = stats_->counter_ref("dir.cache_to_cache");
  upgrades_granted_ = stats_->counter_ref("dir.upgrades_granted");
  stale_puts_ = stats_->counter_ref("dir.stale_puts");
  puts_accepted_ = stats_->counter_ref("dir.puts_accepted");
  held_put_acks_ = stats_->counter_ref("dir.held_put_acks");
  fwd_owner_puts_ = stats_->counter_ref("dir.fwd_owner_puts");
  dropped_revisions_ = stats_->counter_ref("dir.dropped_revisions");
  recalls_ = stats_->counter_ref("dir.recalls");
}

void Directory::send(CoherenceMsg msg) {
  msg.src = id_;
  sink_(msg);
}

// Lines are interleaved across home slices (home = line % n); the slice's
// array indexes the home-stripped line number so all sets are usable.
DirKey Directory::key_of(LineAddr line) const {
  TCMP_DCHECK(line.value() % n_nodes_ == id_);
  return DirKey{line.value() / n_nodes_};
}
LineAddr Directory::line_of_key(DirKey key) const {
  return LineAddr{key.value() * n_nodes_ + id_};
}

void Directory::deliver(const CoherenceMsg& msg, Cycle now) {
  now_ = now;
  access_pipe_.push(now + cfg_.l2_latency, msg);
}

void Directory::tick(Cycle now) {
  now_ = now;
  while (auto msg = access_pipe_.pop_ready(now)) process(*msg);
  while (auto line = memory_pipe_.pop_ready(now)) {
    auto it = mem_txns_.find(*line);
    TCMP_CHECK(it != mem_txns_.end());
    it->second.fill_arrived = true;
    try_install_fill(*line);
  }
}

Cycle Directory::next_event() const {
  return std::min(access_pipe_.next_ready(), memory_pipe_.next_ready());
}

bool Directory::quiescent() const {
  return access_pipe_.empty() && memory_pipe_.empty() && mem_txns_.empty() &&
         busy_lines_ == 0 && queued_msgs_ == 0;
}

std::optional<Directory::EntryView> Directory::entry_of(LineAddr line) const {
  const auto* l = array_.find(key_of(line));
  if (l == nullptr) return std::nullopt;
  return EntryView{l->payload.state, l->payload.sharers, l->payload.owner,
                   l->payload.fwd_requester};
}

std::optional<DirState> Directory::dir_state_of(LineAddr line) const {
  const auto* l = array_.find(key_of(line));
  if (l == nullptr) return std::nullopt;
  return l->payload.state;
}

SharerMask Directory::sharers_of(LineAddr line) const {
  const auto* l = array_.find(key_of(line));
  return l != nullptr ? l->payload.sharers : SharerMask{};
}

NodeId Directory::owner_of(LineAddr line) const {
  const auto* l = array_.find(key_of(line));
  return l != nullptr ? l->payload.owner : kInvalidNode;
}

std::uint32_t Directory::version_of(LineAddr line) const {
  const auto* l = array_.find(key_of(line));
  return l != nullptr ? l->payload.version : 0;
}

void Directory::process(const CoherenceMsg& msg) {
  ++l2_accesses_;
  if (hooks_ != nullptr) [[unlikely]] {
    hooks_->dir_msg_processed(id_, msg);
  }
  switch (msg.type) {
    case MsgType::kGetS:
    case MsgType::kGetX:
    case MsgType::kUpgrade:
    case MsgType::kGetInstr:
      handle_request(msg);
      break;
    case MsgType::kPutE:
    case MsgType::kPutM:
      handle_put(msg);
      break;
    case MsgType::kRevision:
    case MsgType::kAckRevision:
      handle_revision(msg);
      break;
    case MsgType::kInvAck:
      handle_inv_ack(msg);
      break;
    default:
      TCMP_CHECK_MSG(false, "message type not handled by directory");
  }
}

void Directory::handle_request(const CoherenceMsg& msg) {
  const LineAddr line = msg.line;
  TCMP_DCHECK(line.value() % n_nodes_ == id_);

  if (auto it = mem_txns_.find(line); it != mem_txns_.end()) {
    it->second.pending.push_back(msg);
    ++queued_msgs_;
    ++queued_on_fill_;
    return;
  }
  auto* l = array_.find(key_of(line));
  if (l == nullptr) {
    start_fill(line, msg);
    return;
  }
  if (msg.type == MsgType::kGetInstr) {
    // Instruction lines are read-only and fetched outside the directory:
    // reply from the L2 copy without touching coherence state (valid even
    // while the line is busy on the data side).
    array_.touch(*l);
    CoherenceMsg rsp;
    rsp.type = MsgType::kData;
    rsp.dst = msg.requester;
    rsp.dst_unit = Unit::kL1I;
    rsp.line = line;
    rsp.requester = msg.requester;
    rsp.version = l->payload.version;
    send(rsp);
    ++instr_fetches_;
    return;
  }
  if (is_busy(l->payload.state)) {
    l->payload.pending.push_back(msg);
    ++queued_msgs_;
    ++queued_on_busy_;
    return;
  }
  handle_request_hit(msg, *l);
}

void Directory::send_partial_reply(NodeId requester, LineAddr line) {
  if (!cfg_.reply_partitioning) return;
  CoherenceMsg partial;
  partial.type = MsgType::kPartialReply;
  partial.dst = requester;
  partial.dst_unit = Unit::kL1;
  partial.line = line;
  partial.requester = requester;
  send(partial);
}

void Directory::reply_data(const CoherenceMsg& req, MsgType type, std::uint16_t acks,
                           std::uint32_t version) {
  CoherenceMsg rsp;
  rsp.type = type;
  rsp.dst = req.requester;
  rsp.dst_unit = Unit::kL1;
  rsp.line = req.line;
  rsp.requester = req.requester;
  rsp.ack_count = acks;
  rsp.version = version;
  send(rsp);
}

void Directory::send_invs(LineAddr line, const SharerMask& sharers,
                          NodeId collector, Unit ack_unit) {
  for (unsigned n = 0; n < n_nodes_; ++n) {
    if (sharers.test(n)) {
      CoherenceMsg inv;
      inv.type = MsgType::kInv;
      inv.dst = static_cast<NodeId>(n);
      inv.dst_unit = Unit::kL1;
      inv.line = line;
      inv.requester = collector;
      inv.ack_unit = ack_unit;
      send(inv);
      ++invalidations_sent_;
    }
  }
}

void Directory::handle_request_hit(const CoherenceMsg& msg, Array::Line& l) {
  array_.touch(l);
  DirEntry& e = l.payload;
  const LineAddr line = msg.line;
  const NodeId req = msg.requester;

  if (msg.type == MsgType::kGetS) {
    switch (e.state) {
      case DirState::kInvalid:
        // MESI: grant Exclusive when nobody else holds the line.
        send_partial_reply(req, line);
        reply_data(msg, MsgType::kDataExcl, 0, e.version);
        e.state = DirState::kExclusive;
        e.owner = req;
        break;
      case DirState::kShared:
        send_partial_reply(req, line);
        reply_data(msg, MsgType::kData, 0, e.version);
        e.sharers.set(req);
        break;
      case DirState::kExclusive: {
        TCMP_CHECK_MSG(e.owner != req, "owner re-requesting its own line");
        CoherenceMsg fwd;
        fwd.type = MsgType::kFwdGetS;
        fwd.dst = e.owner;
        fwd.dst_unit = Unit::kL1;
        fwd.line = line;
        fwd.requester = req;
        send(fwd);
        e.state = DirState::kBusyShared;
        e.fwd_requester = req;
        ++busy_lines_;
        ++cache_to_cache_;
        break;
      }
      default:
        TCMP_CHECK(false);
    }
    return;
  }

  // GetX / Upgrade.
  switch (e.state) {
    case DirState::kInvalid:
      reply_data(msg, MsgType::kDataExcl, 0, e.version);
      e.state = DirState::kExclusive;
      e.owner = req;
      break;
    case DirState::kShared: {
      const SharerMask others = e.sharers.without(req);
      const auto acks = static_cast<std::uint16_t>(others.count());
      if (msg.type == MsgType::kUpgrade && e.sharers.test(req)) {
        reply_data(msg, MsgType::kUpgradeAck, acks, e.version);
        ++upgrades_granted_;
      } else {
        // GetX, or a stale Upgrade whose sharer copy was invalidated.
        reply_data(msg, MsgType::kDataExcl, acks, e.version);
      }
      send_invs(line, others, req, Unit::kL1);
      e.state = DirState::kExclusive;
      e.owner = req;
      e.sharers.clear();
      break;
    }
    case DirState::kExclusive: {
      TCMP_CHECK_MSG(e.owner != req, "owner re-requesting exclusivity");
      CoherenceMsg fwd;
      fwd.type = MsgType::kFwdGetX;
      fwd.dst = e.owner;
      fwd.dst_unit = Unit::kL1;
      fwd.line = line;
      fwd.requester = req;
      send(fwd);
      e.state = DirState::kBusyExcl;
      e.fwd_requester = req;
      ++busy_lines_;
      ++cache_to_cache_;
      break;
    }
    default:
      TCMP_CHECK(false);
  }
}

void Directory::handle_put(const CoherenceMsg& msg) {
  const LineAddr line = msg.line;
  auto* l = array_.find(key_of(line));

  CoherenceMsg ack;
  ack.type = MsgType::kPutAck;
  ack.dst = msg.src;
  ack.dst_unit = Unit::kL1;
  ack.line = line;

  if (l == nullptr) {
    // The line was recalled and evicted while this Put was in flight; the
    // recall response already carried the data.
    ++stale_puts_;
    send(ack);
    return;
  }
  DirEntry& e = l->payload;
  if (e.state == DirState::kExclusive && e.owner == msg.src) {
    if (msg.type == MsgType::kPutM) {
      e.l2_dirty = true;
      TCMP_CHECK_MSG(msg.version >= e.version, "writeback lost an update");
      e.version = msg.version;
    } else {
      TCMP_CHECK_MSG(msg.version == e.version, "clean PutE version mismatch");
    }
    e.state = DirState::kInvalid;
    e.owner = kInvalidNode;
    ++puts_accepted_;
    send(ack);
    return;
  }
  if (is_busy(e.state) && e.owner == msg.src) {
    // The Put crossed a forward/recall we already sent to this owner. The
    // owner will service that forward from its eviction buffer and answer
    // with a (Ack)Revision. Hold the PutAck until then: acknowledging now
    // would let the ack (response network) overtake the forward (command
    // network) and tear down the eviction buffer the forward needs.
    TCMP_CHECK(!e.held_put_ack);
    e.held_put_ack = true;
    if (msg.type == MsgType::kPutM) {
      e.l2_dirty = true;
      TCMP_CHECK_MSG(msg.version >= e.version, "crossing writeback lost an update");
      e.version = std::max(e.version, msg.version);
    }
    ++held_put_acks_;
    return;
  }
  if (e.state == DirState::kBusyExcl && e.fwd_requester == msg.src) {
    // The NEW owner installed M through the in-flight FwdGetX, evicted, and
    // its writeback beat the old owner's AckRevision home (three tiles,
    // three independent network paths). Nothing is in flight toward the new
    // owner, so acknowledge now — but remember that ownership already
    // returned, so the AckRevision resolves this entry to Invalid instead of
    // installing a tile that no longer holds the line.
    TCMP_CHECK(!e.fwd_put);
    TCMP_CHECK_MSG(msg.type == MsgType::kPutM, "FwdGetX target evicted clean");
    e.fwd_put = true;
    e.l2_dirty = true;
    TCMP_CHECK_MSG(msg.version >= e.version, "forward-put lost an update");
    e.version = msg.version;
    ++fwd_owner_puts_;
    send(ack);
    return;
  }
  // Stale Put: the owner already yielded through a forward/recall crossing
  // whose resolution raced ahead of this Put. Nothing can be in flight
  // toward the old owner anymore, so acknowledge immediately.
  ++stale_puts_;
  send(ack);
}

void Directory::release_put_ack(LineAddr line, NodeId owner) {
  CoherenceMsg ack;
  ack.type = MsgType::kPutAck;
  ack.dst = owner;
  ack.dst_unit = Unit::kL1;
  ack.line = line;
  send(ack);
}

void Directory::handle_revision(const CoherenceMsg& msg) {
  const LineAddr line = msg.line;
  auto* l = array_.find(key_of(line));
  if (l == nullptr) {
    // Recall completed via a crossing Put; this Revision is the echo.
    TCMP_CHECK(msg.type == MsgType::kRevision);
    ++dropped_revisions_;
    return;
  }
  DirEntry& e = l->payload;
  const bool release_ack = e.held_put_ack;
  const NodeId old_owner = e.owner;
  switch (e.state) {
    case DirState::kBusyShared: {
      TCMP_CHECK(msg.type == MsgType::kRevision);
      TCMP_CHECK_MSG(msg.version >= e.version, "revision lost an update");
      e.version = std::max(e.version, msg.version);
      e.l2_dirty = e.l2_dirty || msg.dirty_data;
      e.state = DirState::kShared;
      --busy_lines_;
      // The old owner stays listed; if it yielded from its eviction buffer
      // the entry is merely a stale sharer (tolerated by the protocol).
      e.sharers = SharerMask::of(e.owner, e.fwd_requester);
      e.owner = kInvalidNode;
      e.held_put_ack = false;
      if (release_ack) release_put_ack(line, old_owner);
      drain_pending(std::move(e.pending));
      break;
    }
    case DirState::kBusyExcl:
      TCMP_CHECK(msg.type == MsgType::kAckRevision);
      if (e.fwd_put) {
        // The forward requester already wrote the line back (handle_put):
        // ownership is home again, nobody holds a copy.
        e.fwd_put = false;
        e.state = DirState::kInvalid;
        e.owner = kInvalidNode;
      } else {
        e.state = DirState::kExclusive;
        e.owner = e.fwd_requester;
      }
      --busy_lines_;
      e.held_put_ack = false;
      if (release_ack) release_put_ack(line, old_owner);
      drain_pending(std::move(e.pending));
      break;
    case DirState::kBusyRecall:
      TCMP_CHECK(msg.type == MsgType::kRevision);
      TCMP_CHECK_MSG(msg.src == e.owner, "recall response from non-owner");
      TCMP_CHECK_MSG(msg.version >= e.version, "recalled line lost an update");
      e.version = std::max(e.version, msg.version);
      e.l2_dirty = e.l2_dirty || msg.dirty_data;
      e.held_put_ack = false;
      if (release_ack) release_put_ack(line, old_owner);
      finish_recall(*l);
      break;
    default:
      TCMP_CHECK_MSG(false, "revision in a non-busy directory state");
  }
}

void Directory::handle_inv_ack(const CoherenceMsg& msg) {
  // Inv-acks reach the directory only as the collector of an eviction recall
  // of a Shared line.
  auto* l = array_.find(key_of(msg.line));
  TCMP_CHECK_MSG(l != nullptr && l->payload.state == DirState::kBusyRecall,
                 "stray InvAck at directory");
  DirEntry& e = l->payload;
  TCMP_CHECK(e.recall_acks_pending > 0);
  if (--e.recall_acks_pending == 0) finish_recall(*l);
}

void Directory::start_fill(LineAddr line, const CoherenceMsg& first) {
  MemTxn txn;
  txn.pending.push_back(first);
  ++queued_msgs_;
  mem_txns_.emplace(line, std::move(txn));
  memory_pipe_.push(now_ + cfg_.memory_latency, line);
  ++mem_reads_;
}

void Directory::try_install_fill(LineAddr line) {
  auto it = mem_txns_.find(line);
  if (it == mem_txns_.end() || !it->second.fill_arrived) return;

  // Find an evictable way: invalid first, then the LRU non-busy line.
  const DirKey key = key_of(line);
  Array::Line* victim = nullptr;
  for (auto& cand : array_.set_lines(key)) {
    if (!cand.valid) {
      victim = &cand;
      break;
    }
  }
  if (victim == nullptr) {
    for (auto& cand : array_.set_lines(key)) {
      if (is_busy(cand.payload.state)) continue;
      if (victim == nullptr || cand.lru_stamp < victim->lru_stamp) victim = &cand;
    }
    if (victim == nullptr) return;  // every way busy: retried on completion
  }

  if (victim->valid) {
    DirEntry& ve = victim->payload;
    if (is_busy(ve.state)) return;  // retried when the recall completes
    if (ve.state == DirState::kShared || ve.state == DirState::kExclusive) {
      start_recall(*victim);
      return;  // retried by retry_blocked_fills after the recall completes
    }
    TCMP_CHECK(ve.state == DirState::kInvalid);
    if (ve.l2_dirty) ++mem_writebacks_;
    memory_versions_[line_of_key(array_.address_of(*victim))] = ve.version;
    TCMP_CHECK_MSG(ve.pending.empty(), "evicting a line with queued requests");
    array_.invalidate(*victim);
    ++l2_evictions_;
  }

  array_.fill(*victim, key);
  if (auto mv = memory_versions_.find(line); mv != memory_versions_.end()) {
    victim->payload.version = mv->second;
  }
  MemTxn txn = std::move(it->second);
  mem_txns_.erase(it);
  drain_pending(std::move(txn.pending));
}

void Directory::start_recall(Array::Line& l) {
  DirEntry& e = l.payload;
  const LineAddr line = line_of_key(array_.address_of(l));
  TCMP_CHECK(e.state == DirState::kShared || e.state == DirState::kExclusive);
  ++recalls_;
  if (e.state == DirState::kShared) {
    e.recall_acks_pending = static_cast<std::uint16_t>(e.sharers.count());
    TCMP_CHECK(e.recall_acks_pending > 0);
    send_invs(line, e.sharers, /*collector=*/id_, Unit::kDir);
    e.sharers.clear();
  } else {
    CoherenceMsg recall;
    recall.type = MsgType::kRecall;
    recall.dst = e.owner;
    recall.dst_unit = Unit::kL1;
    recall.line = line;
    recall.requester = id_;
    send(recall);
  }
  e.state = DirState::kBusyRecall;
  ++busy_lines_;
}

Directory::WarmGrant Directory::warm_access(LineAddr line, NodeId core,
                                            bool is_write,
                                            const WarmVersionFn& l1_version,
                                            const WarmDropFn& l1_drop,
                                            const WarmDowngradeFn& l1_downgrade) {
  TCMP_DCHECK(line.value() % n_nodes_ == id_);
  const DirKey key = key_of(line);
  TCMP_DCHECK(mem_txns_.find(line) == mem_txns_.end());
  Array::Line* l = array_.find(key);
  if (l == nullptr) {
    // Functional L2 fill. The eviction path mirrors try_install_fill +
    // recall, collapsed to its end state: drop (and for an owner, harvest
    // the version of) every L1 copy, record the memory writeback version,
    // install the new line at the version memory last saw.
    Array::Line* victim = array_.victim(key);
    if (victim->valid) {
      DirEntry& ve = victim->payload;
      TCMP_CHECK_MSG(!is_busy(ve.state) && ve.pending.empty(),
                     "warm L2 eviction hit an in-flight transaction (the "
                     "machine was not drained)");
      const LineAddr vline = line_of_key(array_.address_of(*victim));
      std::uint32_t v = ve.version;
      if (ve.state == DirState::kShared) {
        for (unsigned n = 0; n < n_nodes_; ++n)
          if (ve.sharers.test(n)) l1_drop(NodeId{n}, vline);
      } else if (ve.state == DirState::kExclusive) {
        v = std::max(v, l1_version(ve.owner, vline));
        l1_drop(ve.owner, vline);
      }
      memory_versions_[vline] = v;
      array_.invalidate(*victim);
    }
    array_.fill(*victim, key);
    if (auto mv = memory_versions_.find(line); mv != memory_versions_.end()) {
      victim->payload.version = mv->second;
    }
    l = victim;
  }
  array_.touch(*l);
  DirEntry& e = l->payload;
  TCMP_CHECK_MSG(!is_busy(e.state),
                 "warm access hit a busy line (the machine was not drained)");

  if (!is_write) {
    switch (e.state) {
      case DirState::kInvalid:
        // MESI: grant Exclusive when nobody else holds the line.
        e.state = DirState::kExclusive;
        e.owner = core;
        return WarmGrant{L1State::kE, e.version};
      case DirState::kShared:
        e.sharers.set(core);
        return WarmGrant{L1State::kS, e.version};
      case DirState::kExclusive: {
        // Functional FwdGetS + Revision: the owner downgrades to S and its
        // (possibly newer) version becomes the L2 copy's.
        TCMP_CHECK(e.owner != core);
        const std::uint32_t v = std::max(e.version, l1_version(e.owner, line));
        l1_downgrade(e.owner, line);
        e.version = v;
        e.l2_dirty = true;
        e.state = DirState::kShared;
        e.sharers.clear();
        e.sharers.set(e.owner);
        e.sharers.set(core);
        e.owner = kInvalidNode;
        return WarmGrant{L1State::kS, v};
      }
      default:
        TCMP_CHECK(false);
        return WarmGrant{};
    }
  }

  // Warm store: every other copy is dropped and `core` becomes the owner.
  std::uint32_t v = e.version;
  if (e.state == DirState::kShared) {
    for (unsigned n = 0; n < n_nodes_; ++n)
      if (e.sharers.test(n) && NodeId{n} != core) l1_drop(NodeId{n}, line);
  } else if (e.state == DirState::kExclusive) {
    TCMP_CHECK(e.owner != core);
    v = std::max(v, l1_version(e.owner, line));
    l1_drop(e.owner, line);
    e.version = v;
    e.l2_dirty = true;
  }
  e.state = DirState::kExclusive;
  e.owner = core;
  e.sharers.clear();
  // The store bumps the new holder's version past everything seen so far.
  return WarmGrant{L1State::kM, v + 1};
}

void Directory::warm_writeback(LineAddr line, NodeId owner, bool was_modified,
                               std::uint32_t version) {
  Array::Line* l = array_.find(key_of(line));
  TCMP_CHECK_MSG(l != nullptr, "warm writeback of a line not resident in L2 "
                               "(inclusivity violated)");
  DirEntry& e = l->payload;
  TCMP_CHECK(e.state == DirState::kExclusive && e.owner == owner);
  e.state = DirState::kInvalid;
  e.owner = kInvalidNode;
  if (was_modified) {
    e.version = version;
    e.l2_dirty = true;
  }
}

void Directory::finish_recall(Array::Line& l) {
  DirEntry& e = l.payload;
  TCMP_CHECK(e.state == DirState::kBusyRecall);
  --busy_lines_;
  if (e.l2_dirty) ++mem_writebacks_;
  memory_versions_[line_of_key(array_.address_of(l))] = e.version;
  PendingQueue pending = std::move(e.pending);
  array_.invalidate(l);
  ++l2_evictions_;
  drain_pending(std::move(pending));
  retry_blocked_fills();
}

void Directory::retry_blocked_fills() {
  // Snapshot first: try_install_fill erases from (and drain_pending may
  // insert into) mem_txns_.
  std::vector<LineAddr> ready;
  ready.reserve(mem_txns_.size());
  // tcmplint: order-insensitive (collect-only; the snapshot is sorted below)
  for (const auto& [fill_line, txn] : mem_txns_)
    if (txn.fill_arrived) ready.push_back(fill_line);
  // Replay in address order so the install sequence does not depend on the
  // hash table's bucket layout (installs can evict, so order is visible).
  std::sort(ready.begin(), ready.end());
  for (LineAddr fill_line : ready) try_install_fill(fill_line);
}

void Directory::drain_pending(PendingQueue msgs) {
  TCMP_CHECK(queued_msgs_ >= msgs.size());
  queued_msgs_ -= static_cast<unsigned>(msgs.size());
  // `msgs` was moved out of its entry, so handle_request cannot append to it
  // (re-queued messages land in the entry's fresh pending queue).
  while (!msgs.empty()) {
    handle_request(msgs.front());
    msgs.pop_front();
  }
}

}  // namespace tcmp::protocol
