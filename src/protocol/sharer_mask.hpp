// Full-map sharer vector for the in-tags directory (Sec. 4.1): a fixed
// 256-node bit set (common/node_set.hpp). The protocol-local name keeps
// directory code reading as the paper does ("the sharer mask") while the
// representation is shared with the DBRC destination-valid map.
#pragma once

#include "common/node_set.hpp"

namespace tcmp::protocol {

using SharerMask = ::tcmp::NodeSet;

}  // namespace tcmp::protocol
