// L1 data-cache coherence controller: MESI with a full-map directory at the
// home L2 slice (Sec. 4.1/4.2).
//
// Stable states (M/E/S) live in the cache array; transient states live in the
// MSHR (misses) and the eviction buffer (writebacks in flight). The protocol
// tolerates an unordered network (the heterogeneous VL/B channels can reorder
// messages between the same endpoints):
//   * Inv during IS_D marks the fill use-once (install-then-drop), avoiding
//     the stale-S hazard when an Inv overtakes the Data reply;
//   * forwards arriving while the local miss is still collecting data/acks
//     are parked in the MSHR and serviced right after install;
//   * forwards arriving while a writeback is in flight are serviced from the
//     eviction buffer, which then waits for the stale PutAck (II_A);
//   * a new miss to a line with an in-flight writeback is deferred until the
//     PutAck drains.
//
// Thread compatibility: tile-owned, no internal locking. All mutation is
// driven from its tile's single simulation thread; the only cross-tile entry
// point is deliver() via the NIC/message seam (the tile-escape lint,
// docs/static-analysis.md, keeps it that way).
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "obs/hooks.hpp"
#include "protocol/cache_array.hpp"
#include "protocol/coherence_msg.hpp"
#include "sim/scheduled.hpp"

namespace tcmp::protocol {

/// Stable L1 line states (I = not present).
enum class L1State : std::uint8_t { kS, kE, kM };

/// Outcome of a core-side access.
enum class AccessResult : std::uint8_t {
  kHit,    ///< completed this cycle
  kMiss,   ///< miss issued (or deferred); the access retires when the fill
           ///< callback fires for this line
  kRetry,  ///< the line has an open transaction (e.g. the core resumed early
           ///< on a PartialReply): block, then RE-EXECUTE the access after
           ///< the fill callback
};

class L1Cache final : public sim::Scheduled {
 public:
  struct Config {
    unsigned sets = 128;  ///< 32 KB, 4-way, 64 B lines
    unsigned ways = 4;
    /// Reply Partitioning [9]: data senders emit a critical PartialReply
    /// carrying the requested word ahead of the full line; read misses
    /// unblock the core on its arrival.
    bool reply_partitioning = false;
  };

  using MsgSink = std::function<void(CoherenceMsg)>;
  using FillCallback = std::function<void(LineAddr line)>;

  L1Cache(NodeId id, const Config& cfg, unsigned n_nodes, StatRegistry* stats,
          MsgSink sink);

  /// Core-side access; see AccessResult for the blocking contract.
  AccessResult access(LineAddr line, bool is_write);

  void set_fill_callback(FillCallback cb) { fill_cb_ = std::move(cb); }

  /// Attach observability hooks (miss begin/end lifecycle); null detaches.
  void set_hooks(obs::ProtocolHooks* hooks) { hooks_ = hooks; }

  /// Network-side delivery of a coherence message addressed to this L1.
  void deliver(const CoherenceMsg& msg);

  /// True when no MSHR / eviction-buffer entries are outstanding.
  [[nodiscard]] bool quiescent() const override {
    return mshrs_.empty() && evict_buf_.empty() && deferred_.empty();
  }
  /// Purely message-driven: no tick, so never a wake source by itself.
  [[nodiscard]] Cycle next_event() const override { return kNeverCycle; }

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] NodeId home_of(LineAddr line) const {
    return NodeId{line.value() % n_nodes_};
  }

  /// Test hook: stable state of a line (nullopt = I / transient).
  [[nodiscard]] std::optional<L1State> state_of(LineAddr line) const;
  /// Test hook: validation version of a resident line (0 if absent).
  [[nodiscard]] std::uint32_t version_of(LineAddr line) const;

  /// One resident stable line, as reported to the verify lint.
  struct StableLine {
    LineAddr line;
    L1State state = L1State::kS;
    NodeId tile;
  };
  /// Invariant-scan hook (verify lint): append every resident stable line
  /// whose address satisfies (line & stripe_mask) == stripe to `out`
  /// (stripe_mask 0 selects everything). The mask/stripe are raw bit
  /// patterns over the line-address representation, not addresses.
  /// Appending plain records to a caller-reused buffer keeps the periodic
  /// scan allocation-free.
  void collect_stable_lines(std::uint64_t stripe_mask, std::uint64_t stripe,
                            std::vector<StableLine>& out) const;
  /// Fault-injection hook (verify tests only): force a line's stable state,
  /// installing it if absent. Deliberately bypasses the protocol.
  void debug_force_state(LineAddr line, L1State st);

  // --- Functional warm-up (SMARTS fast-forward; cmp/sampling.cpp) ----------
  // Direct state edits with no messages / stats, legal only while this L1 is
  // quiescent. The directory-side bookkeeping is the caller's job.

  /// LRU-touch a resident line (warm hit).
  void warm_touch(LineAddr line);
  /// Set a resident line's state/version in place (downgrade, store upgrade).
  void warm_set_state(LineAddr line, L1State st, std::uint32_t version);
  /// Silently drop a copy if resident (functional invalidation).
  void warm_drop(LineAddr line);
  /// A stable line displaced by warm_install, for the caller's functional
  /// writeback (S lines evict silently, exactly like the detailed protocol).
  struct WarmEvicted {
    LineAddr line;
    L1State state = L1State::kS;
    std::uint32_t version = 0;
  };
  /// Install `line` (must not be resident), evicting if the set is full.
  std::optional<WarmEvicted> warm_install(LineAddr line, L1State st,
                                          std::uint32_t version);

  /// Checkpoint serialization (common/snapshot.hpp): the array plus every
  /// transient-state table, so a restored L1 resumes mid-transaction.
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.section("l1");
    ar.verify(id_);
    ar.verify(n_nodes_);
    ar.verify(reply_partitioning_);
    ar.field(array_);
    ar.field(mshrs_);
    ar.field(evict_buf_);
    ar.field(deferred_);
  }

 private:
  struct LinePayload {
    L1State state = L1State::kS;
    std::uint32_t version = 0;  ///< bumped on every store (validation)

    template <typename Ar>
    void snapshot_io(Ar& ar) {
      ar.field(state);
      ar.field(version);
    }
  };
  using Array = CacheArray<LinePayload>;

  struct Mshr {
    bool is_write = false;   ///< GetX/Upgrade path vs GetS path
    bool upgrade = false;    ///< original request was an Upgrade
    bool data_received = false;
    bool core_notified = false;    ///< partial reply already resumed the core
    bool grant_exclusive = false;  ///< reply was DataExcl/UpgradeAck
    bool drop_after_fill = false;  ///< IS_D_I: Inv overtook the Data reply
    int acks_expected = -1;        ///< -1 until the reply announces the count
    int acks_received = 0;
    std::uint32_t version = 0;     ///< version carried by the data reply
    std::optional<CoherenceMsg> parked_fwd;  ///< forward to service post-fill

    template <typename Ar>
    void snapshot_io(Ar& ar) {
      ar.field(is_write);
      ar.field(upgrade);
      ar.field(data_received);
      ar.field(core_notified);
      ar.field(grant_exclusive);
      ar.field(drop_after_fill);
      ar.field(acks_expected);
      ar.field(acks_received);
      ar.field(version);
      ar.field(parked_fwd);
    }
  };

  /// Writeback in flight. kIIA = ownership already yielded to a forward;
  /// only the stale PutAck is still due.
  enum class EvictState : std::uint8_t { kMIA, kEIA, kIIA };
  struct EvictEntry {
    EvictState state = EvictState::kMIA;
    std::uint32_t version = 0;

    template <typename Ar>
    void snapshot_io(Ar& ar) {
      ar.field(state);
      ar.field(version);
    }
  };

  void send(CoherenceMsg msg);
  void issue_miss(LineAddr line, bool is_write, bool upgrade);
  void maybe_complete(LineAddr line, Mshr& m);
  void install_fill(LineAddr line, Mshr& m);
  void evict_for(LineAddr incoming_line);
  void service_fwd_from_stable(const CoherenceMsg& msg, Array::Line& l);
  void service_fwd_from_evict(const CoherenceMsg& msg, EvictEntry& entry);
  void send_partial_reply(NodeId requester, LineAddr line);

  void on_inv(const CoherenceMsg& msg);
  void on_fwd(const CoherenceMsg& msg);
  void on_reply(const CoherenceMsg& msg);
  void on_put_ack(const CoherenceMsg& msg);

  NodeId id_;
  unsigned n_nodes_;
  bool reply_partitioning_;
  Array array_;
  StatRegistry* stats_;
  // tcmplint: snapshot-exempt (send callback wired by the system constructor)
  MsgSink sink_;
  // tcmplint: snapshot-exempt (fill callback wired by the system constructor)
  FillCallback fill_cb_;
  obs::ProtocolHooks* hooks_ = nullptr;
  // Interned stat handles (hot path: every access / protocol message).
  CounterRef accesses_;
  CounterRef read_misses_;
  CounterRef write_misses_;
  CounterRef upgrade_misses_;
  CounterRef retried_accesses_;
  CounterRef deferred_misses_;
  CounterRef invalidations_;
  CounterRef stale_invs_;
  CounterRef forwards_serviced_;
  CounterRef forwards_serviced_in_evict_;
  CounterRef partial_resumes_;
  CounterRef use_once_fills_;
  CounterRef silent_s_evictions_;

  std::unordered_map<LineAddr, Mshr> mshrs_;
  std::unordered_map<LineAddr, EvictEntry> evict_buf_;
  /// Misses deferred behind an in-flight writeback of the same line.
  std::unordered_map<LineAddr, bool /*is_write*/> deferred_;
};

}  // namespace tcmp::protocol
