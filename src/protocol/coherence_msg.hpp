// Coherence message vocabulary and the Fig. 4 classification (criticality x
// size) that drives the heterogeneous-interconnect mapping.
//
// Modelled wire sizes (Sec. 4.3 / 5.1):
//   * every message carries 3 bytes of control;
//   * requests, coherence commands and data-free responses add an 8-byte
//     block address (11 bytes total), compressible to 4-5 bytes;
//   * data-carrying messages add a 64-byte cache line (67 bytes total);
//   * coherence replies and replacement hints without data are 3 bytes.
//
// The simulator always carries the full functional payload (line address,
// ack counts, ...) regardless of the modelled wire size.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "compression/compressor.hpp"
#include "compression/scheme.hpp"

namespace tcmp::protocol {

enum class MsgType : std::uint8_t {
  // Requests: L1 -> home L2.
  kGetS,     ///< read miss
  kGetX,     ///< write miss
  kUpgrade,  ///< S -> M permission request
  kGetInstr, ///< instruction fetch miss (read-only, outside the directory)
  // Replacements: L1 -> home L2.
  kPutE,  ///< replacement hint, exclusive clean line (no data)
  kPutM,  ///< writeback, modified line (with data)
  // Responses: home L2 or remote owner -> requesting L1.
  kData,        ///< shared data reply (with line)
  kDataExcl,    ///< exclusive data reply (with line, carries inv-ack count)
  kUpgradeAck,  ///< upgrade granted without data (carries inv-ack count)
  // Coherence commands: home L2 -> L1s.
  kInv,      ///< invalidate a sharer
  kFwdGetS,  ///< intervention: owner must forward data to requester (leg 2)
  kFwdGetX,  ///< intervention: owner must forward+yield to requester
  kRecall,   ///< home evicting an L2 line: owner must return data
  /// Reply Partitioning extension (Flores et al., HiPC'07 [9], which the
  /// paper notes is orthogonal and combinable): the word the processor
  /// asked for, sent ahead of the full line as a short critical message so
  /// the core can resume before the 67-byte Ordinary Reply arrives.
  kPartialReply,
  // Coherence responses.
  kInvAck,       ///< sharer -> requester: invalidation done
  kRevision,     ///< owner -> home: ownership downgrade with data (leg 3b)
  kAckRevision,  ///< owner -> home: ownership yielded, no data
  kPutAck,       ///< home -> L1: replacement acknowledged
};

inline constexpr unsigned kNumMsgTypes = 18;

[[nodiscard]] const char* to_string(MsgType t);

/// Control bytes present in every message.
inline constexpr unsigned kControlBytes = 3;
/// Full (uncompressed) block address bytes.
inline constexpr unsigned kAddressBytes = 8;

/// Message carries a cache line (64 B) on the wire.
[[nodiscard]] bool carries_data(MsgType t);

/// Message carries the block address on the wire (and is therefore a
/// compression candidate).
[[nodiscard]] bool carries_address(MsgType t);

/// Fig. 4 criticality: true when the message lies on the critical path of an
/// L1 miss. Everything is critical except replacements, replacement acks and
/// revision messages (the "3b" leg).
[[nodiscard]] bool is_critical(MsgType t);

/// Short (<= 11 B uncompressed) vs long (67 B) classification.
[[nodiscard]] bool is_short(MsgType t);

/// Uncompressed wire size in bytes.
[[nodiscard]] Bytes uncompressed_bytes(MsgType t);

/// Which compression hardware class handles this message type (requests vs
/// commands use separate structures, Sec. 3.1). Only meaningful when
/// carries_address(t).
[[nodiscard]] compression::MsgClass compression_class(MsgType t);

/// Virtual network assignment for protocol deadlock freedom:
/// 0 = requests/replacements, 1 = forwarded commands, 2 = responses.
inline constexpr unsigned kNumVnets = 3;
[[nodiscard]] unsigned vnet_of(MsgType t);

/// Which controller on the destination tile consumes the message. Needed
/// because an InvAck may target either the requesting L1 or the home
/// directory (when the directory collects acks for an L2-eviction recall).
enum class Unit : std::uint8_t { kL1, kDir, kL1I };

struct CoherenceMsg {
  MsgType type = MsgType::kGetS;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Unit dst_unit = Unit::kDir;
  Unit ack_unit = Unit::kL1;  ///< on Inv: where the InvAck must be sent
  LineAddr line{};                  ///< block (line) address
  NodeId requester = kInvalidNode;  ///< original requester (for forwards/acks)
  std::uint16_t ack_count = 0;      ///< inv-acks the requester must collect
  bool dirty_data = false;          ///< revision/writeback carries dirty line
  /// Data-flow validation (not modelled on the wire): version of the line
  /// carried by data messages. Each store bumps the holder's version; every
  /// transfer must be monotone. Divergence indicates a lost update and
  /// aborts the simulation.
  std::uint32_t version = 0;

  // Filled in by the sending network interface:
  compression::Encoding enc{};  ///< address compression encoding
  std::uint32_t seq = 0;        ///< per (src,dst,class) sequence number
  /// Lifecycle-trace span id assigned at network injection when an observer
  /// is tracing; 0 = untraced. Not modelled on the wire.
  std::uint32_t trace_id = 0;
  /// Slack-telemetry tag stamped at injection when slack telemetry is
  /// enabled (obs/slack.hpp CritClass: was the requesting core blocked at
  /// ROB head, overlap-tolerant, or is this an ack/writeback?). Not
  /// modelled on the wire.
  std::uint8_t slack_class = 0;
  /// Channel plane the sending NIC mapped the message onto (noc channel
  /// index; 0 on the homogeneous baseline). Telemetry-only mirror of the
  /// het::MappingDecision — not itself modelled on the wire.
  std::uint8_t wire_class = 0;

  /// Checkpoint serialization (common/snapshot.hpp): in-flight messages
  /// travel whole, including the validation/telemetry tags, so a restored
  /// run replays the identical delivery sequence.
  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.field(type);
    ar.field(src);
    ar.field(dst);
    ar.field(dst_unit);
    ar.field(ack_unit);
    ar.field(line);
    ar.field(requester);
    ar.field(ack_count);
    ar.field(dirty_data);
    ar.field(version);
    ar.field(enc);
    ar.field(seq);
    ar.field(trace_id);
    ar.field(slack_class);
    ar.field(wire_class);
  }
};

}  // namespace tcmp::protocol
