#include "protocol/coherence_msg.hpp"

#include "common/check.hpp"

namespace tcmp::protocol {

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kGetS: return "GetS";
    case MsgType::kGetX: return "GetX";
    case MsgType::kUpgrade: return "Upgrade";
    case MsgType::kGetInstr: return "GetInstr";
    case MsgType::kPutE: return "PutE";
    case MsgType::kPutM: return "PutM";
    case MsgType::kData: return "Data";
    case MsgType::kDataExcl: return "DataExcl";
    case MsgType::kUpgradeAck: return "UpgradeAck";
    case MsgType::kInv: return "Inv";
    case MsgType::kFwdGetS: return "FwdGetS";
    case MsgType::kFwdGetX: return "FwdGetX";
    case MsgType::kRecall: return "Recall";
    case MsgType::kPartialReply: return "PartialReply";
    case MsgType::kInvAck: return "InvAck";
    case MsgType::kRevision: return "Revision";
    case MsgType::kAckRevision: return "AckRevision";
    case MsgType::kPutAck: return "PutAck";
  }
  return "?";
}

bool carries_data(MsgType t) {
  switch (t) {
    case MsgType::kData:
    case MsgType::kDataExcl:
    case MsgType::kPutM:
    case MsgType::kRevision:
      return true;
    default:
      return false;
  }
}

bool carries_address(MsgType t) {
  switch (t) {
    case MsgType::kGetS:
    case MsgType::kGetX:
    case MsgType::kUpgrade:
    case MsgType::kGetInstr:
    case MsgType::kInv:
    case MsgType::kFwdGetS:
    case MsgType::kFwdGetX:
    case MsgType::kRecall:
    case MsgType::kUpgradeAck:
      return true;
    default:
      return false;
  }
}

bool is_critical(MsgType t) {
  switch (t) {
    case MsgType::kPutE:
    case MsgType::kPutM:
    case MsgType::kRevision:
    case MsgType::kAckRevision:
    case MsgType::kPutAck:
      return false;
    default:
      return true;
  }
}

bool is_short(MsgType t) { return !carries_data(t); }

Bytes uncompressed_bytes(MsgType t) {
  if (carries_data(t)) return Bytes{kControlBytes + kLineBytes};  // 67
  if (carries_address(t)) return Bytes{kControlBytes + kAddressBytes};  // 11
  // Partial replies carry the critical word (8 B) plus control; the line
  // address is implied by the MSHR id in the control header ([9]).
  if (t == MsgType::kPartialReply) return Bytes{kControlBytes + 8};  // 11
  return Bytes{kControlBytes};  // 3
}

compression::MsgClass compression_class(MsgType t) {
  TCMP_DCHECK(carries_address(t));
  switch (t) {
    case MsgType::kGetS:
    case MsgType::kGetX:
    case MsgType::kUpgrade:
    case MsgType::kGetInstr:
      return compression::MsgClass::kRequest;
    default:
      // Commands and the data-free UpgradeAck flow home -> L1.
      return compression::MsgClass::kCommand;
  }
}

unsigned vnet_of(MsgType t) {
  switch (t) {
    case MsgType::kGetS:
    case MsgType::kGetX:
    case MsgType::kUpgrade:
    case MsgType::kGetInstr:
    case MsgType::kPutE:
    case MsgType::kPutM:
      return 0;
    case MsgType::kInv:
    case MsgType::kFwdGetS:
    case MsgType::kFwdGetX:
    case MsgType::kRecall:
      return 1;
    default:
      return 2;
  }
}

}  // namespace tcmp::protocol
