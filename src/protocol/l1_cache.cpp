#include "protocol/l1_cache.hpp"

#include "common/check.hpp"
#include "common/log.hpp"

namespace tcmp::protocol {

L1Cache::L1Cache(NodeId id, const Config& cfg, unsigned n_nodes, StatRegistry* stats,
                 MsgSink sink)
    : id_(id),
      n_nodes_(n_nodes),
      reply_partitioning_(cfg.reply_partitioning),
      array_(cfg.sets, cfg.ways),
      stats_(stats),
      sink_(std::move(sink)) {
  TCMP_CHECK(stats_ != nullptr);
  TCMP_CHECK(sink_ != nullptr);
  accesses_ = stats_->counter_ref("l1.accesses");
  read_misses_ = stats_->counter_ref("l1.read_misses");
  write_misses_ = stats_->counter_ref("l1.write_misses");
  upgrade_misses_ = stats_->counter_ref("l1.upgrade_misses");
  retried_accesses_ = stats_->counter_ref("l1.retried_accesses");
  deferred_misses_ = stats_->counter_ref("l1.deferred_misses");
  invalidations_ = stats_->counter_ref("l1.invalidations");
  stale_invs_ = stats_->counter_ref("l1.stale_invs");
  forwards_serviced_ = stats_->counter_ref("l1.forwards_serviced");
  forwards_serviced_in_evict_ =
      stats_->counter_ref("l1.forwards_serviced_in_evict");
  partial_resumes_ = stats_->counter_ref("l1.partial_resumes");
  use_once_fills_ = stats_->counter_ref("l1.use_once_fills");
  silent_s_evictions_ = stats_->counter_ref("l1.silent_s_evictions");
}

void L1Cache::send(CoherenceMsg msg) {
  msg.src = id_;
  sink_(msg);
}

std::optional<L1State> L1Cache::state_of(LineAddr line) const {
  const auto* l = array_.find(line);
  if (l == nullptr) return std::nullopt;
  return l->payload.state;
}

std::uint32_t L1Cache::version_of(LineAddr line) const {
  const auto* l = array_.find(line);
  return l != nullptr ? l->payload.version : 0;
}

void L1Cache::collect_stable_lines(std::uint64_t stripe_mask, std::uint64_t stripe,
                                   std::vector<StableLine>& out) const {
  array_.for_each_valid([&](const Array::Line& l) {
    const LineAddr line = array_.address_of(l);
    if ((line.value() & stripe_mask) == stripe) {
      out.push_back(StableLine{line, l.payload.state, id_});
    }
  });
}

void L1Cache::debug_force_state(LineAddr line, L1State st) {
  auto* l = array_.find(line);
  if (l == nullptr) {
    l = array_.victim(line);
    array_.fill(*l, line);
  }
  l->payload.state = st;
}

void L1Cache::warm_touch(LineAddr line) {
  auto* l = array_.find(line);
  TCMP_DCHECK(l != nullptr);
  array_.touch(*l);
}

void L1Cache::warm_set_state(LineAddr line, L1State st, std::uint32_t version) {
  auto* l = array_.find(line);
  TCMP_CHECK(l != nullptr);
  array_.touch(*l);
  l->payload.state = st;
  l->payload.version = version;
}

void L1Cache::warm_drop(LineAddr line) {
  if (auto* l = array_.find(line)) array_.invalidate(*l);
}

std::optional<L1Cache::WarmEvicted> L1Cache::warm_install(LineAddr line,
                                                          L1State st,
                                                          std::uint32_t version) {
  TCMP_DCHECK(array_.find(line) == nullptr);
  TCMP_DCHECK(quiescent());
  std::optional<WarmEvicted> evicted;
  Array::Line* v = array_.victim(line);
  if (v->valid) {
    evicted = WarmEvicted{array_.address_of(*v), v->payload.state,
                          v->payload.version};
    array_.invalidate(*v);
  }
  array_.fill(*v, line);
  v->payload.state = st;
  v->payload.version = version;
  return evicted;
}

AccessResult L1Cache::access(LineAddr line, bool is_write) {
  ++accesses_;
  auto* l = array_.find(line);
  if (l != nullptr && !mshrs_.contains(line)) {
    array_.touch(*l);
    switch (l->payload.state) {
      case L1State::kM:
        if (is_write) ++l->payload.version;
        return AccessResult::kHit;
      case L1State::kE:
        if (is_write) {
          l->payload.state = L1State::kM;  // silent E->M
          ++l->payload.version;
        }
        return AccessResult::kHit;
      case L1State::kS:
        if (!is_write) return AccessResult::kHit;
        // Write to Shared: upgrade miss. The line stays in the array (S)
        // while the upgrade is outstanding.
        ++upgrade_misses_;
        issue_miss(line, /*is_write=*/true, /*upgrade=*/true);
        return AccessResult::kMiss;
    }
  }
  if (auto it = mshrs_.find(line); it != mshrs_.end()) {
    // Open transaction (the core resumed early on a PartialReply and came
    // back to the line, or a write follows a pending upgrade): block and
    // re-execute after the fill so permissions are re-checked.
    it->second.core_notified = false;  // make install fire the callback
    ++retried_accesses_;
    return AccessResult::kRetry;
  }
  ++(is_write ? write_misses_ : read_misses_);
  if (evict_buf_.contains(line)) {
    // Writeback of this very line still in flight: defer the request until
    // the PutAck drains so the home never sees us as a racing owner.
    TCMP_CHECK_MSG(!deferred_.contains(line), "one outstanding access per line");
    deferred_.emplace(line, is_write);
    ++deferred_misses_;
    return AccessResult::kMiss;
  }
  issue_miss(line, is_write, /*upgrade=*/false);
  return AccessResult::kMiss;
}

void L1Cache::issue_miss(LineAddr line, bool is_write, bool upgrade) {
  TCMP_CHECK_MSG(!mshrs_.contains(line), "duplicate outstanding miss");
  Mshr m;
  m.is_write = is_write;
  m.upgrade = upgrade;
  mshrs_.emplace(line, m);
  if (hooks_ != nullptr) [[unlikely]] {
    hooks_->l1_miss_begin(id_, line, is_write);
  }

  CoherenceMsg req;
  req.type = upgrade ? MsgType::kUpgrade : (is_write ? MsgType::kGetX : MsgType::kGetS);
  req.dst = home_of(line);
  req.line = line;
  req.requester = id_;
  send(req);
}

void L1Cache::deliver(const CoherenceMsg& msg) {
  switch (msg.type) {
    case MsgType::kInv:
      on_inv(msg);
      break;
    case MsgType::kFwdGetS:
    case MsgType::kFwdGetX:
    case MsgType::kRecall:
      on_fwd(msg);
      break;
    case MsgType::kData:
    case MsgType::kDataExcl:
    case MsgType::kUpgradeAck:
    case MsgType::kInvAck:
    case MsgType::kPartialReply:
      on_reply(msg);
      break;
    case MsgType::kPutAck:
      on_put_ack(msg);
      break;
    default:
      TCMP_CHECK_MSG(false, "message type not handled by L1");
  }
}

void L1Cache::on_inv(const CoherenceMsg& msg) {
  const LineAddr line = msg.line;
  CoherenceMsg ack;
  ack.type = MsgType::kInvAck;
  ack.dst = msg.requester;
  ack.dst_unit = msg.ack_unit;
  ack.line = line;
  ack.requester = msg.requester;

  if (auto* l = array_.find(line)) {
    if (auto it = mshrs_.find(line); it != mshrs_.end()) {
      // Upgrade in flight and the line just got invalidated: the home will
      // answer our Upgrade with a full DataExcl (we are no longer a sharer).
      TCMP_CHECK(it->second.upgrade);
      TCMP_CHECK(l->payload.state == L1State::kS);
      it->second.upgrade = false;
      array_.invalidate(*l);
    } else {
      TCMP_CHECK_MSG(l->payload.state == L1State::kS,
                     "Inv must only reach shared copies");
      array_.invalidate(*l);
    }
    ++invalidations_;
  } else if (auto it = mshrs_.find(line); it != mshrs_.end()) {
    Mshr& m = it->second;
    if (!m.is_write) {
      // IS_D: an Inv overtook our Data reply — use the fill once, then drop.
      m.drop_after_fill = true;
    }
    // IM_AD/IM_A: stale Inv for a silently evicted S copy; ack and continue.
  } else {
    // Stale Inv: we silently evicted the shared copy. Still ack.
    ++stale_invs_;
  }
  send(ack);
}

void L1Cache::service_fwd_from_stable(const CoherenceMsg& msg, Array::Line& l) {
  const LineAddr line = msg.line;
  const bool dirty = l.payload.state == L1State::kM;
  const std::uint32_t version = l.payload.version;
  TCMP_CHECK(l.payload.state == L1State::kM || l.payload.state == L1State::kE);

  switch (msg.type) {
    case MsgType::kFwdGetS: {
      send_partial_reply(msg.requester, line);
      CoherenceMsg data;
      data.type = MsgType::kData;
      data.dst = msg.requester;
      data.dst_unit = Unit::kL1;
      data.line = line;
      data.requester = msg.requester;
      data.version = version;
      send(data);
      CoherenceMsg rev;
      rev.type = MsgType::kRevision;
      rev.dst = home_of(line);
      rev.line = line;
      rev.dirty_data = dirty;
      rev.version = version;
      send(rev);
      l.payload.state = L1State::kS;
      break;
    }
    case MsgType::kFwdGetX: {
      CoherenceMsg data;
      data.type = MsgType::kDataExcl;
      data.dst = msg.requester;
      data.dst_unit = Unit::kL1;
      data.line = line;
      data.requester = msg.requester;
      data.ack_count = 0;
      data.version = version;
      send(data);
      CoherenceMsg rev;
      rev.type = MsgType::kAckRevision;
      rev.dst = home_of(line);
      rev.line = line;
      send(rev);
      array_.invalidate(l);
      break;
    }
    case MsgType::kRecall: {
      CoherenceMsg rev;
      rev.type = MsgType::kRevision;
      rev.dst = home_of(line);
      rev.line = line;
      rev.dirty_data = dirty;
      rev.version = version;
      send(rev);
      array_.invalidate(l);
      break;
    }
    default:
      TCMP_CHECK(false);
  }
  ++forwards_serviced_;
}

void L1Cache::service_fwd_from_evict(const CoherenceMsg& msg, EvictEntry& entry) {
  // A forward crossed our writeback: we still hold the line logically; the
  // home will treat our Put as stale. Service the forward, then wait for the
  // stale PutAck.
  const LineAddr line = msg.line;
  TCMP_CHECK_MSG(entry.state != EvictState::kIIA,
                 "forward after ownership already yielded");
  const bool dirty = entry.state == EvictState::kMIA;
  const std::uint32_t version = entry.version;

  switch (msg.type) {
    case MsgType::kFwdGetS: {
      send_partial_reply(msg.requester, line);
      CoherenceMsg data;
      data.type = MsgType::kData;
      data.dst = msg.requester;
      data.dst_unit = Unit::kL1;
      data.line = line;
      data.requester = msg.requester;
      data.version = version;
      send(data);
      CoherenceMsg rev;
      rev.type = MsgType::kRevision;
      rev.dst = home_of(line);
      rev.line = line;
      rev.dirty_data = dirty;
      rev.version = version;
      send(rev);
      break;
    }
    case MsgType::kFwdGetX: {
      CoherenceMsg data;
      data.type = MsgType::kDataExcl;
      data.dst = msg.requester;
      data.dst_unit = Unit::kL1;
      data.line = line;
      data.requester = msg.requester;
      data.version = version;
      send(data);
      CoherenceMsg rev;
      rev.type = MsgType::kAckRevision;
      rev.dst = home_of(line);
      rev.line = line;
      send(rev);
      break;
    }
    case MsgType::kRecall: {
      CoherenceMsg rev;
      rev.type = MsgType::kRevision;
      rev.dst = home_of(line);
      rev.line = line;
      rev.dirty_data = dirty;
      rev.version = version;
      send(rev);
      break;
    }
    default:
      TCMP_CHECK(false);
  }
  entry.state = EvictState::kIIA;
  ++forwards_serviced_in_evict_;
}

void L1Cache::on_fwd(const CoherenceMsg& msg) {
  const LineAddr line = msg.line;
  if (auto* l = array_.find(line)) {
    if (auto it = mshrs_.find(line); it != mshrs_.end()) {
      // Upgrade outstanding on a shared line: park until install completes
      // (the home serialized us as the new owner before this forward).
      it->second.parked_fwd = msg;
      return;
    }
    service_fwd_from_stable(msg, *l);
    return;
  }
  if (auto it = evict_buf_.find(line); it != evict_buf_.end()) {
    service_fwd_from_evict(msg, it->second);
    return;
  }
  if (auto it = mshrs_.find(line); it != mshrs_.end()) {
    // Our GetX/Upgrade was granted at the home, and a later request was
    // forwarded to us before our fill completed. Service it right after.
    TCMP_CHECK_MSG(!it->second.parked_fwd.has_value(),
                   "home must not forward twice to a pending owner");
    it->second.parked_fwd = msg;
    return;
  }
  TCMP_CHECK_MSG(false, "forward to a non-owner");
}

void L1Cache::on_reply(const CoherenceMsg& msg) {
  const LineAddr line = msg.line;
  auto it = mshrs_.find(line);
  if (msg.type == MsgType::kPartialReply) {
    // Stale partials (full reply already completed the miss) are dropped.
    if (it == mshrs_.end()) return;
    Mshr& m = it->second;
    // Only read misses can consume the word early: a store must wait for
    // write permission (exclusivity + acks).
    if (!m.is_write && !m.core_notified) {
      m.core_notified = true;
      ++partial_resumes_;
      if (fill_cb_) fill_cb_(line);
    }
    return;
  }
  TCMP_CHECK_MSG(it != mshrs_.end(), "reply without an outstanding miss");
  Mshr& m = it->second;

  switch (msg.type) {
    case MsgType::kData:
      TCMP_CHECK(!m.is_write);
      m.data_received = true;
      m.grant_exclusive = false;
      m.version = msg.version;
      if (m.acks_expected < 0) m.acks_expected = 0;
      break;
    case MsgType::kDataExcl:
      m.data_received = true;
      m.grant_exclusive = true;
      m.version = msg.version;
      m.acks_expected = msg.ack_count;
      break;
    case MsgType::kUpgradeAck:
      TCMP_CHECK(m.is_write);
      m.data_received = true;  // permission counts as the "data"
      m.grant_exclusive = true;
      m.acks_expected = msg.ack_count;
      break;
    case MsgType::kInvAck:
      ++m.acks_received;
      break;
    default:
      TCMP_CHECK(false);
  }
  maybe_complete(line, m);
}

void L1Cache::maybe_complete(LineAddr line, Mshr& m) {
  if (!m.data_received) return;
  if (m.acks_expected < 0 || m.acks_received < m.acks_expected) return;
  TCMP_CHECK_MSG(m.acks_received == m.acks_expected, "excess invalidation acks");
  install_fill(line, m);
}

void L1Cache::install_fill(LineAddr line, Mshr& m) {
  const Mshr done = m;  // copy: install may evict and mutate the MSHR map
  mshrs_.erase(line);
  if (hooks_ != nullptr) [[unlikely]] {
    hooks_->l1_miss_end(id_, line);
  }

  // The use-once drop applies only to shared grants. An Inv can never target
  // the pending owner of an exclusive grant (the directory invalidates
  // sharers and *forwards* to owners), so a drop flag pending a
  // DataExcl/UpgradeAck was set by an older epoch — e.g. a recall this
  // request was queued behind — and must not discard the grant: the
  // directory has already made this tile the owner.
  const bool use_once = done.drop_after_fill && !done.grant_exclusive;
  if (!use_once) {
    Array::Line* slot = array_.find(line);
    if (slot == nullptr) {
      evict_for(line);
      slot = array_.victim(line);
      TCMP_CHECK(!slot->valid);
      array_.fill(*slot, line);
    } else {
      array_.touch(*slot);
    }
    if (done.is_write) {
      slot->payload.state = L1State::kM;
      // The write that caused the miss commits now. Upgrades keep the local
      // copy's version; fresh exclusivity adopts the transferred version.
      const std::uint32_t base_version =
          std::max(slot->payload.version, done.version);
      slot->payload.version = base_version + 1;
    } else {
      slot->payload.state = done.grant_exclusive ? L1State::kE : L1State::kS;
      TCMP_CHECK_MSG(done.version >= slot->payload.version,
                     "data transfer lost an update");
      slot->payload.version = done.version;
    }
  } else {
    ++use_once_fills_;
  }

  if (fill_cb_ && !done.core_notified) fill_cb_(line);

  if (done.parked_fwd.has_value()) {
    // Service the forward the home sent while we were completing.
    auto* slot = array_.find(line);
    TCMP_CHECK_MSG(slot != nullptr && !use_once,
                   "parked forward requires an installed line");
    service_fwd_from_stable(*done.parked_fwd, *slot);
  }
}

void L1Cache::send_partial_reply(NodeId requester, LineAddr line) {
  if (!reply_partitioning_) return;
  CoherenceMsg partial;
  partial.type = MsgType::kPartialReply;
  partial.dst = requester;
  partial.dst_unit = Unit::kL1;
  partial.line = line;
  partial.requester = requester;
  send(partial);
}

void L1Cache::evict_for(LineAddr incoming_line) {
  Array::Line* v = array_.victim(incoming_line);
  if (!v->valid) return;
  const LineAddr victim_line = array_.address_of(*v);
  TCMP_DCHECK(array_.set_of(victim_line) == array_.set_of(incoming_line));

  switch (v->payload.state) {
    case L1State::kS:
      // Silent: replacement hints are not sent for shared lines (Sec. 4.2).
      ++silent_s_evictions_;
      break;
    case L1State::kE: {
      CoherenceMsg put;
      put.type = MsgType::kPutE;
      put.dst = home_of(victim_line);
      put.line = victim_line;
      put.version = v->payload.version;
      send(put);
      TCMP_CHECK(!evict_buf_.contains(victim_line));
      evict_buf_.emplace(victim_line, EvictEntry{EvictState::kEIA, v->payload.version});
      break;
    }
    case L1State::kM: {
      CoherenceMsg put;
      put.type = MsgType::kPutM;
      put.dst = home_of(victim_line);
      put.line = victim_line;
      put.dirty_data = true;
      put.version = v->payload.version;
      send(put);
      TCMP_CHECK(!evict_buf_.contains(victim_line));
      evict_buf_.emplace(victim_line, EvictEntry{EvictState::kMIA, v->payload.version});
      break;
    }
  }
  array_.invalidate(*v);
}

void L1Cache::on_put_ack(const CoherenceMsg& msg) {
  const LineAddr line = msg.line;
  auto it = evict_buf_.find(line);
  TCMP_CHECK_MSG(it != evict_buf_.end(), "PutAck without an in-flight writeback");
  evict_buf_.erase(it);

  if (auto d = deferred_.find(line); d != deferred_.end()) {
    const bool is_write = d->second;
    deferred_.erase(d);
    issue_miss(line, is_write, /*upgrade=*/false);
  }
}

}  // namespace tcmp::protocol
