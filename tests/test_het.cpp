// Tests for the paper's core contribution: message classification (Fig. 4),
// the VL/B wire-mapping policy (Sec. 4.3) and the NIC's sequence-ordered
// decompression under channel reordering.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "het/nic.hpp"
#include "het/wire_policy.hpp"
#include "noc/channel.hpp"
#include "noc/network.hpp"
#include "wire/link_design.hpp"

namespace tcmp::het {
namespace {

using compression::SchemeConfig;
using protocol::CoherenceMsg;
using protocol::MsgType;

// --- Fig. 4 classification ---

TEST(Classification, CriticalityMatchesFig4) {
  using protocol::is_critical;
  // Critical: requests, responses, commands, inv-acks.
  for (MsgType t : {MsgType::kGetS, MsgType::kGetX, MsgType::kUpgrade, MsgType::kData,
                    MsgType::kDataExcl, MsgType::kUpgradeAck, MsgType::kInv,
                    MsgType::kFwdGetS, MsgType::kFwdGetX, MsgType::kInvAck}) {
    EXPECT_TRUE(is_critical(t)) << protocol::to_string(t);
  }
  // Non-critical: replacements and revision messages (the "3b" leg).
  for (MsgType t : {MsgType::kPutE, MsgType::kPutM, MsgType::kRevision,
                    MsgType::kAckRevision, MsgType::kPutAck}) {
    EXPECT_FALSE(is_critical(t)) << protocol::to_string(t);
  }
}

TEST(Classification, SizesMatchSection51) {
  using protocol::uncompressed_bytes;
  EXPECT_EQ(uncompressed_bytes(MsgType::kGetS), 11u);     // 3 ctrl + 8 addr
  EXPECT_EQ(uncompressed_bytes(MsgType::kInv), 11u);
  EXPECT_EQ(uncompressed_bytes(MsgType::kUpgradeAck), 11u);
  EXPECT_EQ(uncompressed_bytes(MsgType::kInvAck), 3u);    // control only
  EXPECT_EQ(uncompressed_bytes(MsgType::kPutE), 3u);      // hint without data
  EXPECT_EQ(uncompressed_bytes(MsgType::kData), 67u);     // 3 ctrl + 64 line
  EXPECT_EQ(uncompressed_bytes(MsgType::kPutM), 67u);
  EXPECT_EQ(uncompressed_bytes(MsgType::kRevision), 67u);
}

TEST(Classification, CompressionClassesSeparateRequestsFromCommands) {
  using protocol::compression_class;
  using compression::MsgClass;
  EXPECT_EQ(compression_class(MsgType::kGetS), MsgClass::kRequest);
  EXPECT_EQ(compression_class(MsgType::kGetX), MsgClass::kRequest);
  EXPECT_EQ(compression_class(MsgType::kUpgrade), MsgClass::kRequest);
  EXPECT_EQ(compression_class(MsgType::kInv), MsgClass::kCommand);
  EXPECT_EQ(compression_class(MsgType::kFwdGetS), MsgClass::kCommand);
  EXPECT_EQ(compression_class(MsgType::kUpgradeAck), MsgClass::kCommand);
}

// --- mapping policy ---

TEST(WirePolicy, BaselineMapsEverythingToBWires) {
  const SchemeConfig scheme = SchemeConfig::dbrc(4, 2);
  for (unsigned i = 0; i < protocol::kNumMsgTypes; ++i) {
    const auto t = static_cast<MsgType>(i);
    const MappingDecision d = map_message(t, true, scheme, wire::LinkStyle::kBaseline);
    EXPECT_EQ(d.channel, noc::kBChannel);
    EXPECT_EQ(d.wire_bytes, protocol::uncompressed_bytes(t));
  }
}

TEST(WirePolicy, Cheng3WayMapsByCriticalityAndSize) {
  const SchemeConfig scheme = SchemeConfig::none();
  const auto style = wire::LinkStyle::kCheng3Way;
  // Short critical -> L subnet, uncompressed.
  EXPECT_EQ(map_message(MsgType::kGetS, false, scheme, style).channel, noc::kLChannel);
  EXPECT_EQ(map_message(MsgType::kGetS, false, scheme, style).wire_bytes, 11u);
  EXPECT_EQ(map_message(MsgType::kInvAck, false, scheme, style).channel, noc::kLChannel);
  // Non-critical -> PW subnet.
  EXPECT_EQ(map_message(MsgType::kPutM, false, scheme, style).channel, noc::kPwChannel);
  EXPECT_EQ(map_message(MsgType::kRevision, false, scheme, style).channel,
            noc::kPwChannel);
  EXPECT_EQ(map_message(MsgType::kPutAck, false, scheme, style).channel,
            noc::kPwChannel);
  // Critical data -> B subnet.
  EXPECT_EQ(map_message(MsgType::kData, false, scheme, style).channel, noc::kBChannel);
  // Never compresses.
  EXPECT_FALSE(wants_compression(MsgType::kGetS, SchemeConfig::dbrc(4, 2), style));
}

TEST(WirePolicy, CompressedCriticalShortsRideVl) {
  const SchemeConfig scheme = SchemeConfig::dbrc(4, 2);  // 5-byte VL
  const MappingDecision d = map_message(MsgType::kGetS, true, scheme, wire::LinkStyle::kVlHet);
  EXPECT_EQ(d.channel, noc::kVlChannel);
  EXPECT_TRUE(d.compressed);
  EXPECT_EQ(d.wire_bytes, 5u);  // 3 ctrl + 2 compressed
}

TEST(WirePolicy, UncompressedCriticalShortsFallBackToB) {
  const SchemeConfig scheme = SchemeConfig::dbrc(4, 2);
  const MappingDecision d = map_message(MsgType::kGetS, false, scheme, wire::LinkStyle::kVlHet);
  EXPECT_EQ(d.channel, noc::kBChannel);
  EXPECT_EQ(d.wire_bytes, 11u);
}

TEST(WirePolicy, AddressFreeCoherenceRepliesRideVl) {
  const SchemeConfig scheme = SchemeConfig::dbrc(4, 2);
  const MappingDecision d = map_message(MsgType::kInvAck, false, scheme, wire::LinkStyle::kVlHet);
  EXPECT_EQ(d.channel, noc::kVlChannel);
  EXPECT_EQ(d.wire_bytes, 3u);
}

TEST(WirePolicy, DataAndNonCriticalStayOnB) {
  const SchemeConfig scheme = SchemeConfig::dbrc(4, 2);
  for (MsgType t : {MsgType::kData, MsgType::kDataExcl, MsgType::kPutM,
                    MsgType::kRevision, MsgType::kPutE, MsgType::kPutAck,
                    MsgType::kAckRevision}) {
    const MappingDecision d = map_message(t, true, scheme, wire::LinkStyle::kVlHet);
    EXPECT_EQ(d.channel, noc::kBChannel) << protocol::to_string(t);
    EXPECT_FALSE(d.compressed);
  }
}

TEST(WirePolicy, WantsCompressionOnlyForCriticalAddressCarriers) {
  const SchemeConfig scheme = SchemeConfig::dbrc(4, 2);
  const auto het = wire::LinkStyle::kVlHet;
  EXPECT_TRUE(wants_compression(MsgType::kGetS, scheme, het));
  EXPECT_TRUE(wants_compression(MsgType::kInv, scheme, het));
  EXPECT_FALSE(wants_compression(MsgType::kData, scheme, het));
  EXPECT_FALSE(wants_compression(MsgType::kPutE, scheme, het));  // non-critical
  EXPECT_FALSE(wants_compression(MsgType::kGetS, scheme, wire::LinkStyle::kBaseline));
  EXPECT_FALSE(wants_compression(MsgType::kGetS, SchemeConfig::none(), het));
}

// --- NIC over a real heterogeneous network ---

struct NicHarness {
  explicit NicHarness(const SchemeConfig& scheme) {
    cfg.channels = noc::make_channels(wire::paper_het_link(scheme.vl_width_bytes()));
    net = std::make_unique<noc::Network>(cfg, &stats);
    for (unsigned n = 0; n < 16; ++n) {
      nics.push_back(std::make_unique<TileNic>(static_cast<NodeId>(n), scheme,
                                               wire::LinkStyle::kVlHet, 16,
                                               net.get(), &stats));
    }
    net->set_deliver([this](NodeId node, const CoherenceMsg& msg) {
      nics[node]->receive(msg, now, [this](const CoherenceMsg& m) {
        delivered.push_back(m);
      });
    });
  }

  void run_until_quiescent() {
    while (!net->quiescent()) net->tick(++now);
  }

  noc::NocConfig cfg;
  StatRegistry stats;
  std::unique_ptr<noc::Network> net;
  std::vector<std::unique_ptr<TileNic>> nics;
  std::vector<CoherenceMsg> delivered;
  Cycle now{0};
};

CoherenceMsg request(unsigned src, unsigned dst, std::uint64_t line) {
  CoherenceMsg m;
  m.type = MsgType::kGetS;
  m.src = NodeId{src};
  m.dst = NodeId{dst};
  m.line = LineAddr{line};
  m.requester = NodeId{src};
  return m;
}

TEST(TileNic, CompressedTrafficUsesVlChannel) {
  NicHarness h(SchemeConfig::dbrc(4, 2));
  // Warm the region, then send compressible requests.
  for (int i = 0; i < 10; ++i) h.nics[0]->send(request(0, 5, 0x1000 + i), h.now);
  h.run_until_quiescent();
  EXPECT_EQ(h.delivered.size(), 10u);
  EXPECT_GE(h.stats.counter_value("het.vl_messages"), 9u);  // all but the install
  EXPECT_GE(h.stats.counter_value("compression.compressed"), 9u);
}

TEST(TileNic, ReorderingIsResolvedInSequenceOrder) {
  // Stride compression is order-sensitive: an uncompressed install followed
  // by compressed deltas must decode correctly even though the install rides
  // the slow B plane and the deltas ride the fast VL plane.
  NicHarness h(SchemeConfig::stride(2));
  h.nics[3]->send(request(3, 12, 0x555000), h.now);      // install: B plane
  h.nics[3]->send(request(3, 12, 0x555001), h.now);      // delta: VL plane
  h.nics[3]->send(request(3, 12, 0x555002), h.now);
  h.run_until_quiescent();
  ASSERT_EQ(h.delivered.size(), 3u);
  // Reordering happened (VL overtook B) but decode applied in seq order.
  EXPECT_GE(h.stats.counter_value("het.reordered_messages"), 1u);
  std::set<LineAddr> lines;
  for (const auto& m : h.delivered) lines.insert(m.line);
  EXPECT_EQ(lines, (std::set<LineAddr>{LineAddr{0x555000}, LineAddr{0x555001},
                                       LineAddr{0x555002}}));
}

TEST(TileNic, RandomizedStreamsDecodeExactly) {
  // The TCMP_CHECK inside the NIC aborts on any sender/receiver divergence,
  // so surviving this soak IS the assertion.
  NicHarness h(SchemeConfig::dbrc(16, 1));
  Rng rng(77);
  unsigned sent = 0;
  for (int round = 0; round < 400; ++round) {
    const auto src = static_cast<NodeId>(rng.next_below(16));
    auto dst = static_cast<NodeId>(rng.next_below(16));
    if (dst == src) dst = static_cast<NodeId>((dst + 1) % 16);
    h.nics[src]->send(request(src, dst, 0x2000 + rng.next_below(4096)), h.now);
    ++sent;
    h.net->tick(++h.now);
  }
  h.run_until_quiescent();
  EXPECT_EQ(h.delivered.size(), sent);
}

TEST(TileNic, CompressionAccessesAreCounted) {
  NicHarness h(SchemeConfig::dbrc(4, 2));
  for (int i = 0; i < 5; ++i) h.nics[1]->send(request(1, 9, 0x3000 + i), h.now);
  h.run_until_quiescent();
  EXPECT_GE(h.nics[1]->compression_accesses(), 5u);  // sender lookups
  EXPECT_GE(h.nics[9]->compression_accesses(), 5u);  // receiver reads
}

}  // namespace
}  // namespace tcmp::het
