// Unit tests for the common kernel: RNG determinism, stats, histograms,
// tables and unit helpers.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <type_traits>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace tcmp {
namespace {

// ===== Compile-time probe suite for the strong-type layer. ================
//
// Legal operations are pinned with static_assert; illegal operations are
// proved ill-formed via requires-expressions (the negative-compilation
// probes the acceptance criteria ask for: if someone adds the forbidden
// overload, the probe flips to true and the static_assert fails).

template <typename A, typename B>
concept Addable = requires(A a, B b) { a + b; };
template <typename A, typename B>
concept Subtractable = requires(A a, B b) { a - b; };
template <typename A, typename B>
concept Multipliable = requires(A a, B b) { a * b; };

// Cycle: additive clock arithmetic only.
static_assert(Addable<Cycle, Cycle>);
static_assert(Subtractable<Cycle, Cycle>);
static_assert(Addable<Cycle, std::uint64_t>);  // `now + 1` delta form
static_assert(!Multipliable<Cycle, Cycle>);    // time*time is meaningless
static_assert(Cycle{3} + Cycle{4} == Cycle{7});
static_assert(Cycle{10} % Cycle{4} == 2);
static_assert(Cycle{1} < kNeverCycle);

// Addresses admit no arithmetic at all, and the byte/line granularities are
// distinct types whose only bridges are line_of / byte_of_line.
static_assert(!Addable<LineAddr, LineAddr>);
static_assert(!Addable<ByteAddr, ByteAddr>);
static_assert(!Multipliable<LineAddr, std::uint64_t>);
static_assert(!std::is_convertible_v<ByteAddr, LineAddr>);
static_assert(!std::is_convertible_v<LineAddr, ByteAddr>);
static_assert(!std::is_constructible_v<LineAddr, ByteAddr>);

// A ByteAddr cannot be passed where a LineAddr is expected.
constexpr LineAddr takes_line(LineAddr l) { return l; }
template <typename T>
concept UsableAsLineAddr = requires(T t) { takes_line(t); };
static_assert(UsableAsLineAddr<LineAddr>);
static_assert(!UsableAsLineAddr<ByteAddr>);
static_assert(!UsableAsLineAddr<std::uint64_t>);  // no implicit raw-int entry
static_assert(takes_line(line_of(ByteAddr{0x12345678})) == LineAddr{0x48D159});

// Semi-strong index types: explicit in, implicit out.
static_assert(!std::is_convertible_v<int, NodeId>);
static_assert(std::is_convertible_v<NodeId, std::uint16_t>);
static_assert(NodeId{7} == 7u);
static_assert(Bytes{67} == 67u);

// Quantity dimensional algebra: same-dimension sums only; products and
// quotients recombine exponents at compile time.
static_assert(Addable<units::Joules, units::Joules>);
static_assert(!Addable<units::Joules, units::Watts>);   // J + W ill-formed
static_assert(!Addable<units::Seconds, units::Meters>);
static_assert(std::is_same_v<decltype(units::Joules{1.0} / units::Seconds{1.0}),
                             units::Watts>);
static_assert(std::is_same_v<decltype(units::Watts{1.0} * units::Seconds{1.0}),
                             units::Joules>);
static_assert(std::is_same_v<decltype(units::Meters{1.0} * units::Meters{1.0}),
                             units::SquareMeters>);
static_assert(std::is_same_v<decltype(units::Ohms{1.0} * units::Farads{1.0}),
                             units::Seconds>);  // RC time constant
static_assert(std::is_same_v<decltype(units::Seconds{1.0} / units::Meters{1.0}),
                             units::SecondsPerMeter>);
// A fully cancelled dimension collapses to plain double (ratios read naturally).
static_assert(std::is_same_v<decltype(units::Joules{2.0} / units::Joules{1.0}),
                             double>);
static_assert(units::Joules{6.0} / units::Seconds{2.0} == units::watts(3.0));

TEST(Types, LineAddressing) {
  EXPECT_EQ(line_of(ByteAddr{0}), LineAddr{0});
  EXPECT_EQ(line_of(ByteAddr{63}), LineAddr{0});
  EXPECT_EQ(line_of(ByteAddr{64}), LineAddr{1});
  EXPECT_EQ(byte_of_line(line_of(ByteAddr{0x12345678})), ByteAddr{0x12345640});
  EXPECT_EQ(byte_of_line(LineAddr{5}), ByteAddr{320});
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(units::ps(250.0).value(), 250e-12);
  EXPECT_DOUBLE_EQ(units::to_ps(units::ps(130.0)), 130.0);
  EXPECT_DOUBLE_EQ(units::mm(5.0).value(), 5e-3);
  EXPECT_DOUBLE_EQ(units::to_mm2(units::SquareMeters{1e-6}), 1.0);
  EXPECT_DOUBLE_EQ(units::to_pj(units::pj(3.5)), 3.5);
}

TEST(Units, RoundTrips) {
  // Suffix-constructor -> SI storage -> accessor must return the input
  // exactly for values representable without rounding.
  EXPECT_DOUBLE_EQ(units::to_ps(units::ps(512.0)), 512.0);
  EXPECT_DOUBLE_EQ(units::to_ns(units::ns(0.25)), 0.25);
  EXPECT_DOUBLE_EQ(units::to_pj(units::pj(0.375)), 0.375);
  EXPECT_DOUBLE_EQ(units::to_mm(units::mm(5.0)), 5.0);
  EXPECT_DOUBLE_EQ(units::to_um(units::um(128.0)), 128.0);
  EXPECT_DOUBLE_EQ(units::to_mw(units::mw(2.5)), 2.5);
  // Cross-scale consistency: 1 ns == 1000 ps, 1 mm == 1000 um.
  EXPECT_DOUBLE_EQ(units::to_ps(units::ns(1.0)), 1000.0);
  EXPECT_DOUBLE_EQ(units::to_um(units::mm(1.0)), 1000.0);
  EXPECT_EQ(units::ns(1.0), units::ps(1000.0));
  // Dimensional identities evaluated at runtime.
  EXPECT_EQ(units::ghz(4.0).value(), 4e9);
  EXPECT_DOUBLE_EQ((1.0 / units::ghz(4.0)).value(), 250e-12);  // period
  EXPECT_EQ(units::mm(2.0) * units::mm(3.0), units::mm2(6.0));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusiveBounds) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, GeometricMeanApproximatesInverseP) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) sum += rng.geometric(0.2);
  EXPECT_NEAR(sum / 5000.0, 5.0, 0.4);
}

TEST(ScalarStat, BasicMoments) {
  ScalarStat s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(ScalarStat, EmptyIsZero) {
  ScalarStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(4, 10);  // bins: [0,10) [10,20) [20,30) [30,inf)
  h.add(0);
  h.add(9);
  h.add(10);
  h.add(25);
  h.add(1000);
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[1], 1u);
  EXPECT_EQ(h.bins()[2], 1u);
  EXPECT_EQ(h.bins()[3], 1u);
  EXPECT_EQ(h.scalar().count(), 5u);
}

TEST(Histogram, QuantileMonotone) {
  Histogram h(64, 1);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) h.add(rng.next_below(50));
  const double q10 = h.quantile(0.10);
  const double q50 = h.quantile(0.50);
  const double q90 = h.quantile(0.90);
  EXPECT_LE(q10, q50);
  EXPECT_LE(q50, q90);
  EXPECT_NEAR(q50, 25.0, 3.0);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram h(4, 10);
  // Empty: every quantile is 0.
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);

  // Single sample: q=0 is the distribution's lower bound; every positive
  // quantile lands inside the sample's bin.
  h.add(15);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  for (double q : {0.5, 1.0}) {
    EXPECT_GE(h.quantile(q), 10.0);
    EXPECT_LE(h.quantile(q), 20.0);
  }

  // Samples past the last bin edge land in the overflow bin; quantiles are
  // clamped to the histogram's total span.
  Histogram ov(4, 10);
  for (int i = 0; i < 100; ++i) ov.add(1'000'000);
  EXPECT_EQ(ov.bins().back(), 100u);
  EXPECT_GE(ov.quantile(0.5), 30.0);
  EXPECT_LE(ov.quantile(1.0), 40.0);

  // q=0 is a lower bound of the distribution, q=1 an upper bound.
  Histogram u(8, 1);
  for (std::uint64_t v = 0; v < 8; ++v) u.add(v);
  EXPECT_LE(u.quantile(0.0), u.quantile(1.0));
  EXPECT_EQ(u.quantile(1.0), 8.0);
}

TEST(Histogram, ClearValuesKeepsGeometry) {
  Histogram h(4, 10);
  h.add(5);
  h.add(35);
  h.clear_values();
  EXPECT_EQ(h.scalar().count(), 0u);
  EXPECT_EQ(h.bins().size(), 4u);
  EXPECT_EQ(h.bin_width(), 10u);
  for (auto b : h.bins()) EXPECT_EQ(b, 0u);
  h.add(15);
  EXPECT_EQ(h.bins()[1], 1u);
}

TEST(StatRegistry, CountersAndPrefixSums) {
  StatRegistry reg;
  reg.counter("noc.vl.flits") += 10;
  reg.counter("noc.b.flits") += 5;
  reg.counter("protocol.gets") += 7;
  EXPECT_EQ(reg.counter_value("noc.vl.flits"), 10u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  EXPECT_EQ(reg.sum_prefix("noc."), 15u);
  EXPECT_EQ(reg.sum_prefix("protocol."), 7u);
  EXPECT_EQ(reg.sum_prefix(""), 22u);
  reg.reset();
  EXPECT_EQ(reg.sum_prefix(""), 0u);
}

TEST(StatRegistry, ZeroAllPreservesPointers) {
  StatRegistry reg;
  std::uint64_t* counter = &reg.counter("a.b");
  ScalarStat* scalar = &reg.scalar("c.d");
  *counter = 42;
  scalar->add(3.0);
  reg.zero_all();
  // Same storage, zeroed values: cached pointers stay valid across the
  // warmup/measurement boundary.
  EXPECT_EQ(counter, &reg.counter("a.b"));
  EXPECT_EQ(*counter, 0u);
  EXPECT_EQ(scalar->count(), 0u);
  *counter = 7;
  EXPECT_EQ(reg.counter_value("a.b"), 7u);
}

TEST(StatRegistry, HistogramsRegisterAndSurviveZeroAll) {
  StatRegistry reg;
  Histogram* h = &reg.histogram("noc.lat", 8, 4);
  // Re-registration with different geometry returns the existing histogram
  // unchanged: first registration wins.
  EXPECT_EQ(h, &reg.histogram("noc.lat", 64, 1));
  EXPECT_EQ(h->bins().size(), 8u);
  EXPECT_EQ(h->bin_width(), 4u);

  h->add(6);
  h->add(9);
  EXPECT_EQ(reg.find_histogram("noc.lat"), h);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);

  reg.zero_all();
  // Cached pointer still valid, counts zeroed, geometry preserved.
  EXPECT_EQ(h, &reg.histogram("noc.lat"));
  EXPECT_EQ(h->scalar().count(), 0u);
  EXPECT_EQ(h->bins().size(), 8u);
  EXPECT_EQ(h->bin_width(), 4u);
  h->add(5);
  EXPECT_EQ(h->bins()[1], 1u);
  EXPECT_EQ(reg.histograms().size(), 1u);
}

TEST(StatRegistry, SumPrefixStopsAtFirstNonMatch) {
  // sum_prefix walks [lower_bound(prefix), first non-prefix key) — keys that
  // sort before the prefix or after the prefix range must not contribute.
  StatRegistry reg;
  reg.counter("a.before") += 100;
  reg.counter("noc.a") += 1;
  reg.counter("noc.z") += 2;
  reg.counter("noc2.other") += 400;  // "noc2" sorts after every "noc." key
  reg.counter("zz.after") += 800;
  EXPECT_EQ(reg.sum_prefix("noc."), 3u);
  EXPECT_EQ(reg.sum_prefix("noc"), 403u);  // bare prefix also matches "noc2"
  EXPECT_EQ(reg.sum_prefix("zzz"), 0u);    // past the last key
  EXPECT_EQ(reg.sum_prefix(""), 1303u);    // empty prefix = everything
}

TEST(StatRegistry, HandlesSurviveZeroAll) {
  StatRegistry reg;
  CounterRef c = reg.counter_ref("dir.hits");
  ScalarRef s = reg.scalar_ref("noc.util");
  HistogramRef h = reg.histogram_ref("noc.lat", 8, 4);
  EXPECT_TRUE(c.valid() && s.valid() && h.valid());
  ++c;
  c += 4;
  s.add(0.5);
  h.add(6);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(reg.counter_value("dir.hits"), 5u);

  reg.zero_all();  // the warmup/measurement boundary

  // Handles still point at live storage: bumps after the boundary land in
  // the (zeroed) registry slots, not in dead memory.
  EXPECT_EQ(c.value(), 0u);
  ++c;
  s.add(2.0);
  h.add(9);
  EXPECT_EQ(reg.counter_value("dir.hits"), 1u);
  EXPECT_EQ(reg.scalars().at("noc.util").count(), 1u);
  EXPECT_EQ(reg.histograms().at("noc.lat").scalar().count(), 1u);
  // Histogram geometry (fixed at first registration) survived too.
  EXPECT_EQ(h.get().bin_width(), 4u);
}

TEST(StatRegistry, HandleAndStringBumpsProduceIdenticalCounterMaps) {
  // The interning sweep must be invisible in the report: drive one registry
  // through string lookups and another through construction-time handles
  // with the same bump sequence, and require byte-equal counter maps.
  const auto bump_strings = [](StatRegistry& reg) {
    for (int i = 0; i < 10; ++i) {
      ++reg.counter("l1.accesses");
      if (i % 3 == 0) ++reg.counter("l1.read_misses");
      reg.counter("noc.bytes") += 8;
    }
  };
  const auto bump_handles = [](StatRegistry& reg) {
    CounterRef acc = reg.counter_ref("l1.accesses");
    CounterRef miss = reg.counter_ref("l1.read_misses");
    CounterRef bytes = reg.counter_ref("noc.bytes");
    for (int i = 0; i < 10; ++i) {
      ++acc;
      if (i % 3 == 0) ++miss;
      bytes += 8;
    }
  };
  StatRegistry by_string, by_handle;
  bump_strings(by_string);
  bump_handles(by_handle);
  EXPECT_EQ(by_string.counters(), by_handle.counters());
}

TEST(TextTable, RendersAlignedRows) {
  TextTable t({"Scheme", "Coverage"});
  t.add_row({"DBRC-4", TextTable::pct(0.981)});
  t.add_row({"Stride", "80.0%"});
  const std::string out = t.str();
  EXPECT_NE(out.find("Scheme"), std::string::npos);
  EXPECT_NE(out.find("98.1%"), std::string::npos);
  EXPECT_NE(out.find("DBRC-4"), std::string::npos);
}

TEST(TextTable, FmtPrecision) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(10.0, 0), "10");
  EXPECT_EQ(TextTable::pct(0.5, 0), "50%");
}

TEST(Env, FallbacksWhenUnset) {
  EXPECT_DOUBLE_EQ(env_double("TCMP_SURELY_UNSET_VAR", 1.5), 1.5);
  EXPECT_EQ(env_long("TCMP_SURELY_UNSET_VAR", 42), 42);
  EXPECT_EQ(env_string("TCMP_SURELY_UNSET_VAR", "x"), "x");
}

}  // namespace
}  // namespace tcmp
