// CacheArray unit tests: geometry, lookup, LRU victimization, address
// reconstruction.
#include <gtest/gtest.h>

#include <set>

#include "protocol/cache_array.hpp"

namespace tcmp::protocol {
namespace {

struct Tag {
  int value = 0;
};
using Array = CacheArray<Tag>;

TEST(CacheArray, GeometryFromCapacity) {
  // 32 KB, 4-way, 64 B lines -> 128 sets.
  const auto a = Array::from_geometry(32 * 1024, 4);
  EXPECT_EQ(a.sets(), 128u);
  EXPECT_EQ(a.ways(), 4u);
}

TEST(CacheArrayDeathTest, RejectsNonPowerOfTwoSets) {
  EXPECT_DEATH(Array(3, 4), "power of two");
}

TEST(CacheArray, FindMissesOnEmpty) {
  Array a(16, 2);
  EXPECT_EQ(a.find(0x123), nullptr);
}

TEST(CacheArray, FillThenFind) {
  Array a(16, 2);
  auto* slot = a.victim(0x123);
  a.fill(*slot, 0x123);
  slot->payload.value = 42;
  auto* found = a.find(0x123);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->payload.value, 42);
  EXPECT_EQ(a.find(0x124), nullptr);  // different line, same... different set
}

TEST(CacheArray, AddressReconstruction) {
  Array a(16, 4);
  for (Addr line : {Addr{0x5}, Addr{0x15}, Addr{0x25}, Addr{0xFFF5}}) {
    auto* slot = a.victim(line);
    a.fill(*slot, line);
    EXPECT_EQ(a.address_of(*slot), line);
  }
}

TEST(CacheArray, LruVictimSelection) {
  Array a(1, 4);  // single set
  for (Addr line : {Addr{0}, Addr{1}, Addr{2}, Addr{3}}) {
    a.fill(*a.victim(line), line);
  }
  // Touch 0 so 1 becomes LRU.
  a.touch(*a.find(0));
  auto* v = a.victim(99);
  EXPECT_EQ(a.address_of(*v), 1u);
}

TEST(CacheArray, InvalidWaysPreferredOverLru) {
  Array a(1, 2);
  a.fill(*a.victim(0), 0);
  a.fill(*a.victim(1), 1);
  a.invalidate(*a.find(0));
  auto* v = a.victim(2);
  EXPECT_FALSE(v->valid);  // the invalidated way, not LRU line 1
  EXPECT_NE(a.find(1), nullptr);
}

TEST(CacheArray, SetLinesSpansExactlyTheWays) {
  Array a(8, 4);
  auto span = a.set_lines(0x10);  // set = 0x10 & 7 = 0
  EXPECT_EQ(span.size(), 4u);
  for (auto& l : span) EXPECT_FALSE(l.valid);
}

TEST(CacheArray, ConflictingTagsCoexistAcrossWays) {
  Array a(4, 2);
  // Lines 0x3, 0x7, 0xB map to set 3; only two fit.
  a.fill(*a.victim(0x3), 0x3);
  a.fill(*a.victim(0x7), 0x7);
  EXPECT_NE(a.find(0x3), nullptr);
  EXPECT_NE(a.find(0x7), nullptr);
  auto* v = a.victim(0xB);
  EXPECT_TRUE(v->valid);  // must evict one of them
}

TEST(CacheArray, ForEachValidVisitsAll) {
  Array a(8, 2);
  std::set<Addr> filled{0x1, 0x9, 0x12, 0x33};
  for (Addr l : filled) a.fill(*a.victim(l), l);
  std::set<Addr> seen;
  a.for_each_valid([&](Array::Line& l) { seen.insert(a.address_of(l)); });
  EXPECT_EQ(seen, filled);
}

}  // namespace
}  // namespace tcmp::protocol
