// CacheArray unit tests: geometry, lookup, LRU victimization, address
// reconstruction.
#include <gtest/gtest.h>

#include <set>

#include "protocol/cache_array.hpp"

namespace tcmp::protocol {
namespace {

struct Tag {
  int value = 0;
};
using Array = CacheArray<Tag>;

TEST(CacheArray, GeometryFromCapacity) {
  // 32 KB, 4-way, 64 B lines -> 128 sets.
  const auto a = Array::from_geometry(32 * 1024, 4);
  EXPECT_EQ(a.sets(), 128u);
  EXPECT_EQ(a.ways(), 4u);
}

TEST(CacheArrayDeathTest, RejectsNonPowerOfTwoSets) {
  EXPECT_DEATH(Array(3, 4), "power of two");
}

TEST(CacheArray, FindMissesOnEmpty) {
  Array a(16, 2);
  EXPECT_EQ(a.find(LineAddr{0x123}), nullptr);
}

TEST(CacheArray, FillThenFind) {
  Array a(16, 2);
  auto* slot = a.victim(LineAddr{0x123});
  a.fill(*slot, LineAddr{0x123});
  slot->payload.value = 42;
  auto* found = a.find(LineAddr{0x123});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->payload.value, 42);
  EXPECT_EQ(a.find(LineAddr{0x124}), nullptr);  // different line, different set
}

TEST(CacheArray, AddressReconstruction) {
  Array a(16, 4);
  for (LineAddr line : {LineAddr{0x5}, LineAddr{0x15}, LineAddr{0x25}, LineAddr{0xFFF5}}) {
    auto* slot = a.victim(line);
    a.fill(*slot, line);
    EXPECT_EQ(a.address_of(*slot), line);
  }
}

TEST(CacheArray, LruVictimSelection) {
  Array a(1, 4);  // single set
  for (LineAddr line : {LineAddr{0}, LineAddr{1}, LineAddr{2}, LineAddr{3}}) {
    a.fill(*a.victim(line), line);
  }
  // Touch 0 so 1 becomes LRU.
  a.touch(*a.find(LineAddr{0}));
  auto* v = a.victim(LineAddr{99});
  EXPECT_EQ(a.address_of(*v), LineAddr{1});
}

TEST(CacheArray, InvalidWaysPreferredOverLru) {
  Array a(1, 2);
  a.fill(*a.victim(LineAddr{0}), LineAddr{0});
  a.fill(*a.victim(LineAddr{1}), LineAddr{1});
  a.invalidate(*a.find(LineAddr{0}));
  auto* v = a.victim(LineAddr{2});
  EXPECT_FALSE(v->valid);  // the invalidated way, not LRU line 1
  EXPECT_NE(a.find(LineAddr{1}), nullptr);
}

TEST(CacheArray, SetLinesSpansExactlyTheWays) {
  Array a(8, 4);
  auto span = a.set_lines(LineAddr{0x10});  // set = 0x10 & 7 = 0
  EXPECT_EQ(span.size(), 4u);
  for (auto& l : span) EXPECT_FALSE(l.valid);
}

TEST(CacheArray, ConflictingTagsCoexistAcrossWays) {
  Array a(4, 2);
  // Lines 0x3, 0x7, 0xB map to set 3; only two fit.
  a.fill(*a.victim(LineAddr{0x3}), LineAddr{0x3});
  a.fill(*a.victim(LineAddr{0x7}), LineAddr{0x7});
  EXPECT_NE(a.find(LineAddr{0x3}), nullptr);
  EXPECT_NE(a.find(LineAddr{0x7}), nullptr);
  auto* v = a.victim(LineAddr{0xB});
  EXPECT_TRUE(v->valid);  // must evict one of them
}

TEST(CacheArray, ForEachValidVisitsAll) {
  Array a(8, 2);
  std::set<LineAddr> filled{LineAddr{0x1}, LineAddr{0x9}, LineAddr{0x12},
                            LineAddr{0x33}};
  for (LineAddr l : filled) a.fill(*a.victim(l), l);
  std::set<LineAddr> seen;
  a.for_each_valid([&](Array::Line& l) { seen.insert(a.address_of(l)); });
  EXPECT_EQ(seen, filled);
}

}  // namespace
}  // namespace tcmp::protocol
