// Core timing-model tests: issue width, miss blocking, barrier blocking,
// instruction accounting.
#include <gtest/gtest.h>

#include <deque>

#include "common/stats.hpp"
#include "core/core_model.hpp"
#include "protocol/l1_cache.hpp"

namespace tcmp::core {
namespace {

/// Scripted workload for driving a single core.
class ScriptWorkload final : public Workload {
 public:
  explicit ScriptWorkload(std::deque<Op> ops) : ops_(std::move(ops)) {}
  Op next(unsigned) override {
    if (ops_.empty()) return Op::done();
    Op op = ops_.front();
    ops_.pop_front();
    return op;
  }
  [[nodiscard]] std::string name() const override { return "script"; }

 private:
  std::deque<Op> ops_;
};

struct CoreHarness {
  explicit CoreHarness(std::deque<Op> ops)
      : workload(std::move(ops)),
        l1(NodeId{0}, protocol::L1Cache::Config{16, 2}, 16, &stats,
           [this](protocol::CoherenceMsg msg) { sent.push_back(msg); }),
        core(NodeId{0}, Core::Config{}, &workload, &l1, &stats) {
    l1.set_fill_callback([this](LineAddr line) { core.on_fill(line); });
    core.set_barrier_handler([this](unsigned, std::uint32_t id) { barrier_id = id; });
  }

  void run(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) core.tick(++now);
  }

  StatRegistry stats;
  ScriptWorkload workload;
  protocol::L1Cache l1;
  Core core;
  std::vector<protocol::CoherenceMsg> sent;
  std::uint32_t barrier_id = 0;
  Cycle now{0};
};

TEST(Core, RetiresTwoComputeInstructionsPerCycle) {
  CoreHarness h({Op::compute(10)});
  h.run(5);
  // Cycle 1 consumes the compute op itself plus one retire slot; 10
  // instructions need ~6 cycles at width 2.
  EXPECT_LT(h.core.instructions(), 10u);
  h.run(3);
  EXPECT_EQ(h.core.instructions(), 10u);
}

TEST(Core, FinishesAfterDone) {
  CoreHarness h({Op::compute(2)});
  h.run(10);
  EXPECT_TRUE(h.core.done());
  h.run(5);  // further ticks are no-ops
  EXPECT_EQ(h.core.instructions(), 2u);
}

TEST(Core, MissBlocksUntilFill) {
  CoreHarness h({Op::load(LineAddr{0x100}), Op::compute(4)});
  h.run(1);
  EXPECT_TRUE(h.core.blocked());
  ASSERT_EQ(h.sent.size(), 1u);  // GetS went out
  EXPECT_EQ(h.sent[0].type, protocol::MsgType::kGetS);
  h.run(10);
  EXPECT_TRUE(h.core.blocked());  // no reply: still stalled
  EXPECT_EQ(h.core.instructions(), 0u);

  // Deliver the fill.
  protocol::CoherenceMsg data;
  data.type = protocol::MsgType::kDataExcl;
  data.dst = NodeId{0};
  data.dst_unit = protocol::Unit::kL1;
  data.line = LineAddr{0x100};
  data.ack_count = 0;
  h.l1.deliver(data);
  EXPECT_FALSE(h.core.blocked());
  EXPECT_EQ(h.core.instructions(), 1u);  // the load retired on fill
  h.run(4);
  EXPECT_TRUE(h.core.done());
  EXPECT_EQ(h.core.instructions(), 5u);
}

TEST(Core, HitsDoNotBlock) {
  CoreHarness h({Op::load(LineAddr{0x40}), Op::load(LineAddr{0x40}),
                 Op::store(LineAddr{0x40}), Op::load(LineAddr{0x40})});
  // First load misses.
  h.run(1);
  protocol::CoherenceMsg data;
  data.type = protocol::MsgType::kDataExcl;
  data.dst = NodeId{0};
  data.dst_unit = protocol::Unit::kL1;
  data.line = LineAddr{0x40};
  h.l1.deliver(data);
  // Remaining 3 accesses are hits (E then silent E->M): 2 per cycle.
  h.run(3);
  EXPECT_TRUE(h.core.done());
  EXPECT_EQ(h.core.instructions(), 4u);
  EXPECT_EQ(h.sent.size(), 1u);  // only the initial GetS
}

TEST(Core, BarrierBlocksUntilRelease) {
  CoreHarness h({Op::compute(1), Op::barrier(7), Op::compute(1)});
  h.run(5);
  EXPECT_TRUE(h.core.blocked());
  EXPECT_EQ(h.barrier_id, 7u);
  h.core.barrier_release();
  h.run(3);
  EXPECT_TRUE(h.core.done());
  EXPECT_EQ(h.core.instructions(), 2u);
}

TEST(Core, InstructionFetchStallsTheFrontEnd) {
  CoreHarness h({Op::compute(64)});
  protocol::ICache icache(NodeId{0}, protocol::ICache::Config{16, 2}, 16, &h.stats,
                          [&](protocol::CoherenceMsg msg) { h.sent.push_back(msg); });
  icache.set_fill_callback([&] { h.core.on_ifill(); });
  h.core.set_icache(&icache, 64);

  h.run(1);
  // The very first fetch misses the cold I-cache and stalls the core.
  EXPECT_TRUE(h.core.blocked());
  ASSERT_GE(h.sent.size(), 1u);
  EXPECT_EQ(h.sent.back().type, protocol::MsgType::kGetInstr);
  EXPECT_EQ(h.core.instructions(), 0u);

  // Fill it; the core resumes and retires until the next I-line boundary.
  protocol::CoherenceMsg data;
  data.type = protocol::MsgType::kData;
  data.dst = NodeId{0};
  data.dst_unit = protocol::Unit::kL1I;
  data.line = h.sent.back().line;
  icache.deliver(data);
  EXPECT_FALSE(h.core.blocked());
  h.run(50);
  EXPECT_GE(h.core.instructions(), 16u);  // at least one full line consumed
}

TEST(Core, BlockedCyclesAreCounted) {
  CoreHarness h({Op::load(LineAddr{0x200})});
  h.run(20);
  EXPECT_GE(h.stats.counter_value("core.blocked_cycles"), 15u);
  EXPECT_EQ(h.stats.counter_value("core.miss_stalls"), 1u);
}

}  // namespace
}  // namespace tcmp::core
