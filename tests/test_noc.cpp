// NoC tests: XY routing, pipeline latency, serialization, credit
// backpressure, virtual-network isolation, heterogeneous channel planes and
// delivery guarantees under load.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>
#include <cstdint>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "noc/channel.hpp"
#include "noc/network.hpp"
#include "wire/link_design.hpp"

namespace tcmp::noc {
namespace {

using protocol::CoherenceMsg;
using protocol::MsgType;

CoherenceMsg make_msg(unsigned src, unsigned dst, MsgType type = MsgType::kGetS,
                      std::uint64_t line = 0x100) {
  CoherenceMsg m;
  m.type = type;
  m.src = NodeId{src};
  m.dst = NodeId{dst};
  m.line = LineAddr{line};
  m.requester = NodeId{src};
  return m;
}

struct Harness {
  explicit Harness(const wire::LinkPartition& part = wire::baseline_link(),
                   unsigned width = 4, unsigned height = 4) {
    cfg.width = width;
    cfg.height = height;
    cfg.channels = make_channels(part);
    net = std::make_unique<Network>(cfg, &stats);
    net->set_deliver([this](NodeId node, const CoherenceMsg& msg) {
      delivered.push_back({node, msg});
    });
  }

  void run(Cycle cycles) {
    for (Cycle i{0}; i < cycles; ++i) net->tick(++now);
  }

  Cycle run_until_quiescent(Cycle limit = Cycle{100000}) {
    const Cycle start = now;
    while (!net->quiescent()) {
      net->tick(++now);
      TCMP_CHECK(now - start < limit);
    }
    return now - start;
  }

  NocConfig cfg;
  StatRegistry stats;
  std::unique_ptr<Network> net;
  std::vector<std::pair<NodeId, CoherenceMsg>> delivered;
  Cycle now{0};
};

TEST(Channels, BaselineIsSingle75BytePlane) {
  const auto chans = make_channels(wire::baseline_link());
  ASSERT_EQ(chans.size(), 1u);
  EXPECT_EQ(chans[0].width_bytes, 75u);
  EXPECT_EQ(chans[0].link_cycles, 3u);  // 130 ps/mm * 5 mm at 4 GHz
}

TEST(Channels, HeterogeneousAddsFastNarrowPlane) {
  for (unsigned vl : {3u, 4u, 5u}) {
    const auto chans = make_channels(wire::paper_het_link(vl));
    ASSERT_EQ(chans.size(), 2u);
    EXPECT_EQ(chans[kBChannel].width_bytes, 34u);
    EXPECT_EQ(chans[kVlChannel].width_bytes, vl);
    EXPECT_EQ(chans[kVlChannel].link_cycles, 1u);
    EXPECT_LT(chans[kVlChannel].link_cycles, chans[kBChannel].link_cycles);
  }
}

TEST(Channels, FlitSerialization) {
  const auto chans = make_channels(wire::paper_het_link(5));
  EXPECT_EQ(chans[kBChannel].flits_for(Bytes{67}), 2u);  // data reply on 34B plane
  EXPECT_EQ(chans[kBChannel].flits_for(Bytes{11}), 1u);
  EXPECT_EQ(chans[kVlChannel].flits_for(Bytes{5}), 1u);
  EXPECT_EQ(make_channels(wire::baseline_link())[0].flits_for(Bytes{67}), 1u);
}

TEST(Channels, Cheng3WayHasThreeSubnets) {
  const auto chans = make_channels(wire::cheng3way_link());
  ASSERT_EQ(chans.size(), 3u);
  EXPECT_EQ(chans[kBChannel].width_bytes, 17u);
  EXPECT_EQ(chans[kLChannel].width_bytes, 11u);
  EXPECT_EQ(chans[kPwChannel].width_bytes, 28u);
  // L is faster, PW slower than B (Table 2 latencies at 5 mm / 4 GHz).
  EXPECT_LT(chans[kLChannel].link_cycles, chans[kBChannel].link_cycles);
  EXPECT_GT(chans[kPwChannel].link_cycles, chans[kBChannel].link_cycles);
  // A data reply serializes heavily on the narrow B subnet.
  EXPECT_EQ(chans[kBChannel].flits_for(Bytes{67}), 4u);
  EXPECT_EQ(chans[kLChannel].flits_for(Bytes{11}), 1u);
}

TEST(Channels, Cheng3WayFitsTrackBudget) {
  const auto part = wire::cheng3way_link();
  EXPECT_EQ(part.style, wire::LinkStyle::kCheng3Way);
  EXPECT_LE(part.total_tracks, 600.0);
  EXPECT_GE(part.total_tracks, 580.0);  // no large waste either
  EXPECT_FALSE(part.heterogeneous());   // not the paper's VL style
}

TEST(Network, DeliversSingleMessage) {
  Harness h;
  h.net->inject(make_msg(0, 15), kBChannel, Bytes{11}, h.now);
  h.run_until_quiescent();
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0].first, 15);
  EXPECT_EQ(h.delivered[0].second.type, MsgType::kGetS);
}

TEST(Network, LatencyScalesWithHops) {
  // 0 -> 1 (1 hop) vs 0 -> 15 (6 hops) on the baseline plane.
  Harness near_h;
  near_h.net->inject(make_msg(0, 1), kBChannel, Bytes{11}, near_h.now);
  const Cycle t_near = near_h.run_until_quiescent();

  Harness far_h;
  far_h.net->inject(make_msg(0, 15), kBChannel, Bytes{11}, far_h.now);
  const Cycle t_far = far_h.run_until_quiescent();

  EXPECT_GT(t_far, t_near);
  // Each extra hop costs ~3 (pipeline) + 3 (B link) cycles; 5 extra hops.
  EXPECT_NEAR(static_cast<double>((t_far - t_near).value()), 5 * 6.0, 12.0);
}

TEST(Network, VlPlaneIsFasterThanBPlane) {
  Harness h(wire::paper_het_link(5));
  h.net->inject(make_msg(0, 15), kBChannel, Bytes{11}, h.now);
  const Cycle t_b = h.run_until_quiescent();
  h.delivered.clear();
  h.net->inject(make_msg(0, 15), kVlChannel, Bytes{5}, h.now);
  const Cycle t_vl = h.run_until_quiescent();
  EXPECT_LT(t_vl, t_b);
  // 6 hops saving 2 cycles of link latency each.
  EXPECT_GE((t_b - t_vl).value(), 10u);
}

TEST(Network, MultiFlitPacketArrivesIntact) {
  Harness h(wire::paper_het_link(4));
  h.net->inject(make_msg(2, 9, MsgType::kData, 0xBEEF), kBChannel, Bytes{67}, h.now);
  h.run_until_quiescent();
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0].second.line.value(), 0xBEEFu);
  EXPECT_EQ(h.stats.counter_value("noc.B.flits_injected"), 2u);
}

TEST(Network, ActiveBitsMatchPayload) {
  Harness h;  // 75-byte plane
  h.net->inject(make_msg(0, 1, MsgType::kData), kBChannel, Bytes{67}, h.now);
  h.run_until_quiescent();
  // One flit, one hop: 67 bytes of toggled wires.
  EXPECT_EQ(h.stats.counter_value("noc.B.bit_hops"), 67u * 8u);
}

TEST(Network, XYRoutingTakesMinimalHops) {
  Harness h;
  // 5 -> 10: (1,1) -> (2,2): 2 hops. flit_hops counts link crossings.
  h.net->inject(make_msg(5, 10), kBChannel, Bytes{11}, h.now);
  h.run_until_quiescent();
  EXPECT_EQ(h.stats.counter_value("noc.B.flit_hops"), 2u);
  // Router traversals = hops + 1 (ejection router).
  EXPECT_EQ(h.stats.counter_value("noc.B.router_traversals"), 3u);
}

TEST(Network, AllPairsDelivery) {
  Harness h;
  unsigned sent = 0;
  for (unsigned s = 0; s < 16; ++s) {
    for (unsigned d = 0; d < 16; ++d) {
      if (s == d) continue;
      h.net->inject(make_msg(static_cast<NodeId>(s), static_cast<NodeId>(d),
                             MsgType::kGetS, s * 100 + d),
                    kBChannel, Bytes{11}, h.now);
      ++sent;
    }
  }
  h.run_until_quiescent();
  ASSERT_EQ(h.delivered.size(), sent);
  std::set<std::pair<NodeId, LineAddr>> seen;
  for (const auto& [node, msg] : h.delivered) seen.insert({node, msg.line});
  EXPECT_EQ(seen.size(), sent);  // no duplicates, all distinct
}

TEST(Network, PerSourceDestinationOrderPreservedWithinChannel) {
  Harness h;
  for (unsigned i = 0; i < 20; ++i) {
    h.net->inject(make_msg(3, 12, MsgType::kGetS, 1000 + i), kBChannel, Bytes{11}, h.now);
  }
  h.run_until_quiescent();
  ASSERT_EQ(h.delivered.size(), 20u);
  for (unsigned i = 0; i < 20; ++i) EXPECT_EQ(h.delivered[i].second.line.value(), 1000 + i);
}

TEST(Network, ChannelsCanReorderBetweenThemselves) {
  // A long message on the slow B plane injected first can be overtaken by a
  // short VL message — the reordering the NI sequence numbers must handle.
  Harness h(wire::paper_het_link(4));
  h.net->inject(make_msg(0, 15, MsgType::kData, 1), kBChannel, Bytes{67}, h.now);
  h.net->inject(make_msg(0, 15, MsgType::kGetS, 2), kVlChannel, Bytes{4}, h.now);
  h.run_until_quiescent();
  ASSERT_EQ(h.delivered.size(), 2u);
  EXPECT_EQ(h.delivered[0].second.line.value(), 2u);  // VL message wins
  EXPECT_EQ(h.delivered[1].second.line.value(), 1u);
}

TEST(Network, BackpressureDoesNotDropUnderBurst) {
  Harness h;
  // Everyone floods node 0 at once: far more flits than total buffering.
  unsigned sent = 0;
  for (unsigned s = 1; s < 16; ++s) {
    for (unsigned i = 0; i < 50; ++i) {
      h.net->inject(make_msg(static_cast<NodeId>(s), 0, MsgType::kData, s * 1000 + i),
                    kBChannel, Bytes{67}, h.now);
      ++sent;
    }
  }
  h.run_until_quiescent(Cycle{1000000});
  EXPECT_EQ(h.delivered.size(), sent);
}

TEST(Network, VnetsDoNotBlockEachOther) {
  Harness h;
  // Saturate vnet 0 toward node 0, then send one vnet-2 message along the
  // same path; it must not wait for the vnet-0 backlog to drain.
  for (unsigned i = 0; i < 200; ++i)
    h.net->inject(make_msg(3, 0, MsgType::kGetS, i), kBChannel, Bytes{11}, h.now);
  h.net->inject(make_msg(3, 0, MsgType::kInvAck, 9999), kBChannel, Bytes{3}, h.now);
  Cycle invack_at{0};
  h.net->set_deliver([&](NodeId, const CoherenceMsg& msg) {
    if (msg.type == MsgType::kInvAck) invack_at = h.now;
    h.delivered.push_back({NodeId{0}, msg});
  });
  h.run_until_quiescent();
  ASSERT_GT(invack_at.value(), 0u);
  // The InvAck (vnet 2) should arrive long before the 200-message backlog
  // drains (~200+ cycles at 1 flit/cycle ejection).
  EXPECT_LT(invack_at.value(), 80u);
}

TEST(Network, DeterministicAcrossRuns) {
  auto run_once = [] {
    Harness h;
    Rng rng(1234);
    for (unsigned i = 0; i < 300; ++i) {
      const auto s = static_cast<NodeId>(rng.next_below(16));
      auto d = static_cast<NodeId>(rng.next_below(16));
      if (d == s) d = static_cast<NodeId>((d + 1) % 16);
      h.net->inject(make_msg(s, d, MsgType::kGetS, i), kBChannel, Bytes{11}, h.now);
      h.net->tick(++h.now);
    }
    h.run_until_quiescent();
    std::vector<std::pair<NodeId, LineAddr>> order;
    order.reserve(h.delivered.size());
    for (const auto& [n, m] : h.delivered) order.emplace_back(n, m.line);
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

struct LoadPoint {
  double injection_rate;  ///< packets per node per cycle
  unsigned cycles;
};

class NetworkLoad : public ::testing::TestWithParam<LoadPoint> {};

TEST_P(NetworkLoad, UniformRandomTrafficAllDelivered) {
  const auto [rate, cycles] = GetParam();
  Harness h;
  Rng rng(99);
  unsigned sent = 0;
  for (unsigned t = 0; t < cycles; ++t) {
    for (unsigned n = 0; n < 16; ++n) {
      if (rng.chance(rate)) {
        auto d = static_cast<NodeId>(rng.next_below(16));
        if (d == n) continue;
        h.net->inject(make_msg(static_cast<NodeId>(n), d, MsgType::kGetS, sent),
                      kBChannel, Bytes{11}, h.now);
        ++sent;
      }
    }
    h.net->tick(++h.now);
  }
  h.run_until_quiescent(Cycle{2000000});
  EXPECT_EQ(h.delivered.size(), sent);
  EXPECT_GT(h.stats.histogram("noc.B.latency").scalar().mean(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, NetworkLoad,
                         ::testing::Values(LoadPoint{0.02, 2000},
                                           LoadPoint{0.10, 1500},
                                           LoadPoint{0.30, 800},
                                           LoadPoint{0.60, 400}));

// --- two-level tree topology ---

struct TreeHarness {
  TreeHarness() {
    cfg.topology = Topology::kTree2Level;
    cfg.channels = make_channels(wire::baseline_link());
    net = std::make_unique<Network>(cfg, &stats);
    net->set_deliver([this](NodeId node, const CoherenceMsg& msg) {
      delivered.push_back({node, msg});
    });
  }
  Cycle run_until_quiescent(Cycle limit = Cycle{200000}) {
    const Cycle start = now;
    while (!net->quiescent()) {
      net->tick(++now);
      TCMP_CHECK(now - start < limit);
    }
    return now - start;
  }
  NocConfig cfg;
  StatRegistry stats;
  std::unique_ptr<Network> net;
  std::vector<std::pair<NodeId, CoherenceMsg>> delivered;
  Cycle now{0};
};

TEST(TreeTopology, FiveRoutersAndFullWiring) {
  TreeHarness h;
  EXPECT_EQ(h.net->router_count(0), 5u);  // 4 clusters + root
  // 8 directed root links x 10 mm + 32 directed leaf stubs x 5 mm = 240 mm,
  // the same metal budget as the 4x4 mesh.
  EXPECT_DOUBLE_EQ(h.net->total_directed_link_mm(0), 240.0);
}

TEST(TreeTopology, IntraClusterStaysLocal) {
  TreeHarness h;
  h.net->inject(make_msg(0, 3), kBChannel, Bytes{11}, h.now);  // same cluster
  h.run_until_quiescent();
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0].first, 3);
  EXPECT_EQ(h.stats.counter_value("noc.B.flit_hops"), 0u);  // no link crossed
}

TEST(TreeTopology, CrossClusterGoesThroughRoot) {
  TreeHarness h;
  h.net->inject(make_msg(0, 15), kBChannel, Bytes{11}, h.now);  // cluster 0 -> 3
  h.run_until_quiescent();
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0].first, 15);
  EXPECT_EQ(h.stats.counter_value("noc.B.flit_hops"), 2u);  // up + down
}

TEST(TreeTopology, AllPairsDeliver) {
  TreeHarness h;
  unsigned sent = 0;
  for (unsigned s = 0; s < 16; ++s) {
    for (unsigned d = 0; d < 16; ++d) {
      if (s == d) continue;
      h.net->inject(make_msg(static_cast<NodeId>(s), static_cast<NodeId>(d),
                             MsgType::kGetS, s * 100 + d),
                    kBChannel, Bytes{11}, h.now);
      ++sent;
    }
  }
  h.run_until_quiescent();
  EXPECT_EQ(h.delivered.size(), sent);
}

TEST(TreeTopology, RootLinksAreLonger) {
  // Cross-cluster latency must exceed intra-cluster latency by the two long
  // root-link traversals.
  TreeHarness near_h;
  near_h.net->inject(make_msg(0, 1), kBChannel, Bytes{11}, near_h.now);
  const Cycle t_near = near_h.run_until_quiescent();
  TreeHarness far_h;
  far_h.net->inject(make_msg(0, 15), kBChannel, Bytes{11}, far_h.now);
  const Cycle t_far = far_h.run_until_quiescent();
  EXPECT_GE(t_far, t_near + 10);  // 2 x (1 + 6-cycle root link)
}

TEST(Network, LatencyGrowsWithLoad) {
  auto mean_latency = [](double rate) {
    Harness h;
    Rng rng(7);
    for (unsigned t = 0; t < 1500; ++t) {
      for (unsigned n = 0; n < 16; ++n) {
        if (rng.chance(rate)) {
          auto d = static_cast<NodeId>(rng.next_below(16));
          if (d == n) continue;
          h.net->inject(make_msg(static_cast<NodeId>(n), d), kBChannel, Bytes{11}, h.now);
        }
      }
      h.net->tick(++h.now);
    }
    h.run_until_quiescent(Cycle{2000000});
    return h.stats.histogram("noc.B.latency").scalar().mean();
  };
  const double low = mean_latency(0.01);
  const double high = mean_latency(0.4);
  EXPECT_GT(high, low * 1.3);
}

}  // namespace
}  // namespace tcmp::noc
