// Deterministic reproductions of every unordered-network race documented in
// docs/PROTOCOL.md, each constructed with exact per-message-type delays so
// the problematic interleaving happens on every run (the statistical stress
// suite in test_protocol.cpp covers the combinations).
#include <gtest/gtest.h>

#include "protocol_test_fabric.hpp"

namespace tcmp::protocol {
namespace {

/// Delay function: slow down the given message types, default for the rest.
TestFabric::DelayFn slow(std::initializer_list<MsgType> types, Cycle delay) {
  std::vector<MsgType> v(types);
  return [v, delay](const CoherenceMsg& msg) -> std::optional<Cycle> {
    for (MsgType t : v) {
      if (msg.type == t) return delay;
    }
    return std::nullopt;
  };
}

// Race 1: an Inv overtakes the Data reply of a re-fetch whose requester the
// home still lists as a sharer. The fill must be used once and dropped
// (IS_D_I), never installed as a stale S copy.
TEST(ProtocolRaces, InvOvertakesDataReply) {
  TestFabric::Options opt;
  opt.nodes = 4;
  opt.l1_sets = 1;
  opt.l1_ways = 1;  // single-line L1: trivial silent S eviction
  TestFabric f(opt);
  const LineAddr x{0x10}, y{0x14};  // same L1 set (set 0), same home? x%4=0,y%4=0
  ASSERT_EQ(f.home_of(x), f.home_of(y));

  f.access(0, x, false);
  f.access(1, x, false);  // both shared now
  f.run_until_quiescent();
  ASSERT_EQ(f.l1(0).state_of(x), L1State::kS);

  // Core 0 silently evicts x (reads y into the single-line set)...
  f.access(0, y, false);
  f.run_until_quiescent();
  ASSERT_EQ(f.l1(0).state_of(x), std::nullopt);

  // ...then re-fetches x with a slow Data reply, while core 2 writes x,
  // generating a fast Inv to core 0 (still a listed sharer).
  f.set_delay_fn(slow({MsgType::kData}, Cycle{60}));
  f.access_async(0, x, false);
  for (int i = 0; i < 12; ++i) f.step();  // GetS reaches home, Data in flight
  f.access_async(2, x, true);
  f.run_until_quiescent();
  f.set_delay_fn(nullptr);

  // The fill was consumed exactly once and dropped: core 0 does not hold x.
  EXPECT_GE(f.stats().counter_value("l1.use_once_fills"), 1u);
  EXPECT_EQ(f.l1(0).state_of(x), std::nullopt);
  EXPECT_EQ(f.l1(2).state_of(x), L1State::kM);
  f.check_invariants({x, y});
}

// Races 2+3: a forward crosses the owner's writeback. The home must hold the
// PutAck until the owner's revision resolves the forward (2), and a Put that
// arrives after resolution is a stale put (3).
TEST(ProtocolRaces, ForwardCrossesWriteback) {
  TestFabric::Options opt;
  opt.nodes = 4;
  opt.l1_sets = 1;
  opt.l1_ways = 1;
  TestFabric f(opt);
  const LineAddr x{0x10}, y{0x14};

  f.access(0, x, true);  // core 0 owns x in M
  f.run_until_quiescent();

  // Core 0 evicts x with a very slow PutM (the eviction happens when y's
  // fill installs, so run the y access to completion); core 1 then reads x,
  // so the home forwards to core 0 long before the PutM arrives.
  f.set_delay_fn(slow({MsgType::kPutM}, Cycle{80}));
  f.access(0, y, true);  // completes; x's PutM is now in flight
  f.access_async(1, x, false);
  f.run_until_quiescent();
  f.set_delay_fn(nullptr);

  // The forward was serviced from the eviction buffer; the ack was held.
  EXPECT_GE(f.stats().counter_value("l1.forwards_serviced_in_evict"), 1u);
  EXPECT_GE(f.stats().counter_value("dir.held_put_acks") +
                f.stats().counter_value("dir.stale_puts"),
            1u);
  EXPECT_EQ(f.l1(1).state_of(x), L1State::kS);  // got the forwarded data
  f.check_invariants({x, y});
}

// Race 4: a writeback crosses an L2-eviction Recall.
TEST(ProtocolRaces, WritebackCrossesRecall) {
  TestFabric::Options opt;
  opt.nodes = 2;
  opt.l1_sets = 1;
  opt.l1_ways = 1;
  opt.l2_sets = 1;
  opt.l2_ways = 1;  // one-line L2 slice: any new line recalls the old one
  TestFabric f(opt);
  const LineAddr a{0x10}, b{0x20}, c{0x31};  // a,b home 0; c home 1
  ASSERT_EQ(f.home_of(a), f.home_of(b));

  f.access(0, a, true);  // core 0 owns a (M); home 0's slice holds only a
  f.run_until_quiescent();

  // Core 0 starts fetching c (home 1, memory-latency fill) — its install
  // will evict a and emit a slow PutM. Core 1 fetches b (home 0) slightly
  // later, so home 0's fill-time recall of a reaches core 0 inside the
  // window where a sits in its eviction buffer with the PutM in flight.
  f.set_delay_fn(slow({MsgType::kPutM}, Cycle{80}));
  f.access_async(0, c, false);
  for (int i = 0; i < 20; ++i) f.step();
  f.access_async(1, b, false);
  f.run_until_quiescent();
  f.set_delay_fn(nullptr);

  EXPECT_GE(f.stats().counter_value("dir.recalls"), 1u);
  // The crossing resolved through one of the two legal paths.
  EXPECT_GE(f.stats().counter_value("dir.held_put_acks") +
                f.stats().counter_value("dir.stale_puts") +
                f.stats().counter_value("dir.dropped_revisions"),
            1u);
  EXPECT_EQ(f.l1(1).state_of(b), L1State::kE);
  f.check_invariants({a, b, c});
}

// Race 5: the home forwards to a requester whose own exclusive grant is
// still in flight; the forward parks in the MSHR and is serviced post-fill.
TEST(ProtocolRaces, ForwardToPendingOwner) {
  TestFabric::Options opt;
  opt.nodes = 4;
  TestFabric f(opt);
  const LineAddr x{0x10};

  // Slow the DataExcl grant so core 1's GetX is processed (and forwarded to
  // core 0) before core 0's fill completes.
  f.set_delay_fn(slow({MsgType::kDataExcl}, Cycle{50}));
  f.access_async(0, x, true);
  for (int i = 0; i < 12; ++i) f.step();  // GetX processed, grant in flight
  f.access_async(1, x, true);
  f.run_until_quiescent();
  f.set_delay_fn(nullptr);

  // Ownership chained: core 0 had it momentarily, core 1 holds it now.
  EXPECT_EQ(f.l1(0).state_of(x), std::nullopt);
  EXPECT_EQ(f.l1(1).state_of(x), L1State::kM);
  EXPECT_EQ(f.dir(f.home_of(x)).owner_of(x), 1);
  f.check_invariants({x});
}

// Race 6: an Upgrade crosses the Inv from a competing writer. The loser's
// upgrade converts to a full-data request and still completes.
TEST(ProtocolRaces, UpgradeLosesToCompetingWrite) {
  TestFabric::Options opt;
  opt.nodes = 4;
  TestFabric f(opt);
  const LineAddr x{0x10};
  f.access(0, x, false);
  f.access(1, x, false);  // both S
  f.run_until_quiescent();

  // Core 0's Upgrade crawls; core 1's GetX sprints: home processes the GetX
  // first and invalidates core 0 while its Upgrade is still in flight.
  f.set_delay_fn(slow({MsgType::kUpgrade}, Cycle{50}));
  f.access_async(0, x, true);
  f.access_async(1, x, true);
  f.run_until_quiescent();
  f.set_delay_fn(nullptr);

  // Both cores were sharers, so both sent (slow) Upgrades; the home
  // serializes them in arrival order: core 0's wins (UpgradeAck + Inv to
  // core 1, converting core 1's pending upgrade), then core 1's converted
  // request is forwarded to core 0 which yields. Both writes committed:
  // the final owner's version advanced twice.
  EXPECT_EQ(f.l1(0).state_of(x), std::nullopt);
  EXPECT_EQ(f.l1(1).state_of(x), L1State::kM);
  EXPECT_GE(f.l1(1).version_of(x), 2u);
  f.check_invariants({x});
}

// Race 7: Inv delivered to a silently-evicted sharer must still be acked.
TEST(ProtocolRaces, StaleSharerInvalidation) {
  TestFabric::Options opt;
  opt.nodes = 4;
  opt.l1_sets = 1;
  opt.l1_ways = 1;
  TestFabric f(opt);
  const LineAddr x{0x10}, y{0x14};
  f.access(0, x, false);
  f.access(1, x, false);
  f.run_until_quiescent();
  f.access(0, y, false);  // silently evicts core 0's S copy of x
  f.run_until_quiescent();

  f.access(2, x, true);  // Invs go to cores 0 (stale) and 1 (real)
  f.run_until_quiescent();
  EXPECT_GE(f.stats().counter_value("l1.stale_invs"), 1u);
  EXPECT_EQ(f.l1(2).state_of(x), L1State::kM);
  f.check_invariants({x, y});
}

// Deferred miss: re-requesting a line whose writeback is still in flight.
TEST(ProtocolRaces, MissDeferredBehindWritebackSlowAck) {
  TestFabric::Options opt;
  opt.nodes = 4;
  opt.l1_sets = 1;
  opt.l1_ways = 1;
  TestFabric f(opt);
  const LineAddr x{0x10}, y{0x14};
  f.access(0, x, true);
  f.run_until_quiescent();

  f.set_delay_fn(slow({MsgType::kPutAck}, Cycle{60}));
  f.access(0, y, false);        // installs y, emits x's PutM; slow ack keeps
                                // the eviction buffer alive
  f.access_async(0, x, false);  // must defer until the PutAck drains
  f.run_until_quiescent();
  f.set_delay_fn(nullptr);

  EXPECT_GE(f.stats().counter_value("l1.deferred_misses"), 1u);
  EXPECT_EQ(f.l1(0).state_of(x), L1State::kE);  // re-fetched cleanly
  f.check_invariants({x, y});
}

// Requests to a busy line queue FIFO at the home and drain in order.
TEST(ProtocolRaces, RequestsQueueOnBusyLine) {
  TestFabric::Options opt;
  opt.nodes = 4;
  TestFabric f(opt);
  const LineAddr x{0x10};
  f.access(0, x, true);  // core 0 owns x (M)
  f.run_until_quiescent();

  // Slow revisions keep the home busy while more requests pile up.
  f.set_delay_fn(slow({MsgType::kRevision, MsgType::kAckRevision}, Cycle{40}));
  f.access_async(1, x, false);  // FwdGetS -> busyShared (slow revision)
  for (int i = 0; i < 10; ++i) f.step();
  f.access_async(2, x, false);  // must queue at the home
  f.access_async(3, x, true);   // and this one behind it
  f.run_until_quiescent();
  f.set_delay_fn(nullptr);

  EXPECT_GE(f.stats().counter_value("dir.queued_on_busy"), 1u);
  // FIFO drain: core 3's write was last, so it owns the line at the end.
  EXPECT_EQ(f.l1(3).state_of(x), L1State::kM);
  EXPECT_EQ(f.dir(f.home_of(x)).owner_of(x), 3);
  f.check_invariants({x});
}

// A line's version survives a full migration chain: writes at three
// different owners accumulate monotonically through forwards.
TEST(ProtocolRaces, VersionAccumulatesAcrossMigration) {
  TestFabric f;
  const LineAddr x{0x40};
  f.access(0, x, true);  // v1
  f.access(0, x, true);  // v2 (hit)
  f.access(1, x, true);  // migrate: FwdGetX, then write -> v3
  f.access(2, x, true);  // migrate again -> v4
  f.run_until_quiescent();
  EXPECT_EQ(f.l1(2).version_of(x), 4u);
  // Home's copy lags (AckRevision carries no data) but never exceeds.
  EXPECT_LE(f.dir(f.home_of(x)).version_of(x), 4u);
  f.check_invariants({x});
}

// A dirty line's version reaches the home through the FwdGetS revision and
// survives an L2 recall + refetch through the memory-version map.
TEST(ProtocolRaces, VersionSurvivesRecallToMemory) {
  TestFabric::Options opt;
  opt.nodes = 2;
  opt.l2_sets = 1;
  opt.l2_ways = 1;
  opt.l1_sets = 64;
  TestFabric f(opt);
  const LineAddr a{0x10}, b{0x20};
  f.access(0, a, true);   // v1 at core 0
  f.access(1, a, false);  // FwdGetS: revision carries v1 to the home
  f.run_until_quiescent();
  EXPECT_EQ(f.dir(0).version_of(a), 1u);

  f.access(0, b, false);  // evicts a from the one-line L2 (writeback to mem)
  f.run_until_quiescent();
  EXPECT_EQ(f.dir(0).dir_state_of(a), std::nullopt);

  f.access(1, a, false);  // refetch from memory: version restored
  f.run_until_quiescent();
  EXPECT_EQ(f.dir(0).version_of(a), 1u);
  EXPECT_EQ(f.l1(1).version_of(a), 1u);
  f.check_invariants({a, b});
}

}  // namespace
}  // namespace tcmp::protocol
