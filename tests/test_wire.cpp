// Tests for the wire model: RC/repeater physics invariants, Table 2/3
// reproduction tolerances, and link partitioning.
#include <gtest/gtest.h>

#include "wire/link_design.hpp"
#include "wire/rc_model.hpp"
#include "wire/wire_spec.hpp"

namespace tcmp::wire {
namespace {

const TechParams& tech() { return TechParams::itrs65(); }

TEST(RcModel, WiderWireHasLowerResistance) {
  WireGeometry narrow{MetalPlane::k8X, 1.0, 1.0};
  WireGeometry wide{MetalPlane::k8X, 4.0, 1.0};
  EXPECT_GT(r_wire_per_m(tech(), narrow), r_wire_per_m(tech(), wide));
  EXPECT_NEAR(r_wire_per_m(tech(), narrow) / r_wire_per_m(tech(), wide), 4.0, 1e-9);
}

TEST(RcModel, FourXPlaneIsMoreResistive) {
  WireGeometry w8{MetalPlane::k8X, 1.0, 1.0};
  WireGeometry w4{MetalPlane::k4X, 1.0, 1.0};
  EXPECT_GT(r_wire_per_m(tech(), w4), 2.0 * r_wire_per_m(tech(), w8));
}

TEST(RcModel, SpacingReducesCoupling) {
  WireGeometry tight{MetalPlane::k8X, 1.0, 1.0};
  WireGeometry sparse{MetalPlane::k8X, 1.0, 8.0};
  EXPECT_GT(c_wire_per_m(tech(), tight), c_wire_per_m(tech(), sparse));
}

TEST(RcModel, DelayOptimalBeatsPerturbations) {
  const WireGeometry g{MetalPlane::k8X, 1.0, 1.0};
  const RepeaterDesign opt = delay_optimal_design(tech(), g);
  const double best = (segment_delay(tech(), g, opt) / opt.spacing).value();
  for (double fs : {0.5, 0.7, 1.5, 2.0}) {
    RepeaterDesign cand{opt.size * fs, opt.spacing};
    EXPECT_GE((segment_delay(tech(), g, cand) / cand.spacing).value(), best * 0.999);
  }
  for (double fl : {0.5, 0.7, 1.5, 2.0}) {
    RepeaterDesign cand{opt.size, opt.spacing * fl};
    EXPECT_GE((segment_delay(tech(), g, cand) / cand.spacing).value(), best * 0.999);
  }
}

TEST(RcModel, BaselineWireNearAnchorLatency) {
  const WireGeometry g{MetalPlane::k8X, 1.0, 1.0};
  const RepeaterDesign opt = delay_optimal_design(tech(), g);
  const double ps_per_mm = delay_per_m(tech(), g, opt).value() * 1e12 * 1e-3;
  // The technology calibration targets ~130 ps/mm for the 8X baseline.
  EXPECT_NEAR(ps_per_mm, kBWirePsPerMm, kBWirePsPerMm * 0.25);
}

TEST(RcModel, PowerOptimalRespectsDelayBudgetAndSavesPower) {
  const WireGeometry g{MetalPlane::k4X, 1.0, 1.0};
  const RepeaterDesign opt = delay_optimal_design(tech(), g);
  const RepeaterDesign pw = power_optimal_design(tech(), g, 2.0);
  const double d_opt = (segment_delay(tech(), g, opt) / opt.spacing).value();
  const double d_pw = (segment_delay(tech(), g, pw) / pw.spacing).value();
  EXPECT_LE(d_pw, 2.0 * d_opt * 1.0001);
  const units::WattsPerMeter p_opt =
      switching_power_per_m(tech(), g, opt) + leakage_power_per_m(tech(), opt);
  const units::WattsPerMeter p_pw =
      switching_power_per_m(tech(), g, pw) + leakage_power_per_m(tech(), pw);
  EXPECT_LT(p_pw.value(), 0.75 * p_opt.value());  // Banerjee: >~40% savings at 2x delay
}

TEST(RcModel, LeakageScalesWithRepeaterSize) {
  RepeaterDesign small{10.0, units::Meters{1e-3}};
  RepeaterDesign big{100.0, units::Meters{1e-3}};
  EXPECT_NEAR(leakage_power_per_m(tech(), big) / leakage_power_per_m(tech(), small),
              10.0, 1e-9);
}

// --- Table 2 reproduction: model vs published values ---

struct Table2Case {
  WireClass cls;
  double tolerance;  // relative tolerance on latency
};

class Table2Repro : public ::testing::TestWithParam<Table2Case> {};

TEST_P(Table2Repro, RelativeLatencyWithinTolerance) {
  const auto [cls, tol] = GetParam();
  const WireSpec paper = paper_spec(cls);
  const WireSpec model = model_spec(cls);
  EXPECT_NEAR(model.rel_latency, paper.rel_latency, paper.rel_latency * tol)
      << to_string(cls);
}

INSTANTIATE_TEST_SUITE_P(WireClasses, Table2Repro,
                         ::testing::Values(Table2Case{WireClass::kB8X, 0.01},
                                           Table2Case{WireClass::kB4X, 0.25},
                                           Table2Case{WireClass::kL8X, 0.25},
                                           Table2Case{WireClass::kPW4X, 0.25}));

TEST(WireSpec, PaperTable2Values) {
  const WireSpec b8 = paper_spec(WireClass::kB8X);
  EXPECT_DOUBLE_EQ(b8.rel_latency, 1.0);
  EXPECT_DOUBLE_EQ(b8.dyn_power.value(), 2.65);
  EXPECT_DOUBLE_EQ(b8.static_power.value(), 1.0246);
  const WireSpec l = paper_spec(WireClass::kL8X);
  EXPECT_DOUBLE_EQ(l.rel_latency, 0.5);
  EXPECT_DOUBLE_EQ(l.rel_area, 4.0);
  const WireSpec pw = paper_spec(WireClass::kPW4X);
  EXPECT_DOUBLE_EQ(pw.rel_latency, 3.2);
  EXPECT_DOUBLE_EQ(pw.dyn_power.value(), 0.87);
}

TEST(WireSpec, PaperTable3Values) {
  const WireSpec vl3 = paper_spec(WireClass::kVL, 3);
  const WireSpec vl4 = paper_spec(WireClass::kVL, 4);
  const WireSpec vl5 = paper_spec(WireClass::kVL, 5);
  EXPECT_DOUBLE_EQ(vl3.rel_latency, 0.27);
  EXPECT_DOUBLE_EQ(vl4.rel_latency, 0.31);
  EXPECT_DOUBLE_EQ(vl5.rel_latency, 0.35);
  EXPECT_DOUBLE_EQ(vl3.rel_area, 14.0);
  EXPECT_DOUBLE_EQ(vl4.rel_area, 10.0);
  EXPECT_DOUBLE_EQ(vl5.rel_area, 8.0);
  // Wider VL bundles are slower and burn more power per wire.
  EXPECT_LT(vl3.rel_latency, vl4.rel_latency);
  EXPECT_LT(vl4.rel_latency, vl5.rel_latency);
  EXPECT_LT(vl3.dyn_power.value(), vl5.dyn_power.value());
}

TEST(WireSpec, LinkCycleQuantization) {
  // 5 mm at 4 GHz: B-wire 130 ps/mm -> 650 ps -> 2.6 cycles -> 3.
  EXPECT_EQ(paper_spec(WireClass::kB8X).link_cycles(5.0, units::hertz(4e9)), 3u);
  // VL 3B: 35.1 ps/mm -> 175 ps -> 0.7 cycles -> 1.
  EXPECT_EQ(paper_spec(WireClass::kVL, 3).link_cycles(5.0, units::hertz(4e9)), 1u);
  EXPECT_EQ(paper_spec(WireClass::kVL, 5).link_cycles(5.0, units::hertz(4e9)), 1u);
  // L-wire: 65 ps/mm -> 325 ps -> 1.3 cycles -> 2.
  EXPECT_EQ(paper_spec(WireClass::kL8X).link_cycles(5.0, units::hertz(4e9)), 2u);
  // PW-wire: 416 ps/mm -> 2080 ps -> 8.3 -> 9.
  EXPECT_EQ(paper_spec(WireClass::kPW4X).link_cycles(5.0, units::hertz(4e9)), 9u);
}

class VlModelRepro : public ::testing::TestWithParam<unsigned> {};

TEST_P(VlModelRepro, LatencyWithinTolerance) {
  const unsigned bytes = GetParam();
  const WireSpec paper = paper_spec(WireClass::kVL, bytes);
  const WireSpec model = model_spec(WireClass::kVL, bytes);
  EXPECT_NEAR(model.rel_latency, paper.rel_latency, paper.rel_latency * 0.25);
  EXPECT_DOUBLE_EQ(model.rel_area, paper.rel_area);
}

INSTANTIATE_TEST_SUITE_P(Widths, VlModelRepro, ::testing::Values(3u, 4u, 5u));

TEST(WireSpec, ModelVlLatencyMonotoneInWidth) {
  // Narrower VL bundles get more area per wire and must be faster, matching
  // the Table 3 ordering.
  EXPECT_LT(model_spec(WireClass::kVL, 3).rel_latency,
            model_spec(WireClass::kVL, 4).rel_latency);
  EXPECT_LT(model_spec(WireClass::kVL, 4).rel_latency,
            model_spec(WireClass::kVL, 5).rel_latency);
}

// --- Link partitioning ---

TEST(LinkDesign, BaselineIs75ByteBWires) {
  const LinkPartition p = baseline_link();
  EXPECT_FALSE(p.heterogeneous());
  EXPECT_EQ(p.b_bytes, 75u);
  EXPECT_EQ(p.b_wires, 600u);
  EXPECT_DOUBLE_EQ(p.total_tracks, 600.0);
}

class PaperLink : public ::testing::TestWithParam<unsigned> {};

TEST_P(PaperLink, AreaMatchedWithinTwoPercent) {
  const LinkPartition p = paper_het_link(GetParam());
  EXPECT_TRUE(p.heterogeneous());
  EXPECT_EQ(p.b_bytes, 34u);
  EXPECT_EQ(p.b_wires, 272u);
  EXPECT_EQ(p.vl_wires, GetParam() * 8);
  EXPECT_LT(std::abs(p.area_overshoot()), 0.02);
}

INSTANTIATE_TEST_SUITE_P(VlWidths, PaperLink, ::testing::Values(3u, 4u, 5u));

TEST(LinkDesign, PaperTrackCounts) {
  EXPECT_DOUBLE_EQ(paper_het_link(3).vl_tracks, 24 * 14.0);  // 336
  EXPECT_DOUBLE_EQ(paper_het_link(4).vl_tracks, 32 * 10.0);  // 320
  EXPECT_DOUBLE_EQ(paper_het_link(5).vl_tracks, 40 * 8.0);   // 320
}

TEST(LinkDesign, ComputedPartitionStaysWithinBudget) {
  for (unsigned vl : {3u, 4u, 5u}) {
    const LinkPartition p = computed_het_link(vl);
    EXPECT_LE(p.total_tracks, 600.0 + 1e-9);
    EXPECT_GE(p.b_bytes, 30u);
    EXPECT_LE(p.b_bytes, 35u);
  }
}

// --- property sweeps over the geometry space ---

class GeometrySweep : public ::testing::TestWithParam<double> {};

TEST_P(GeometrySweep, WiderWiresAreNeverSlower) {
  // At fixed spacing, widening a wire can only reduce the delay-optimal
  // repeated delay (R falls linearly, C grows sub-linearly).
  const double spacing = GetParam();
  double prev = 1e9;
  for (double width : {1.0, 2.0, 4.0, 8.0, 14.0}) {
    const WireGeometry g{MetalPlane::k8X, width, spacing};
    const RepeaterDesign d = delay_optimal_design(tech(), g);
    const double delay = delay_per_m(tech(), g, d).value();
    EXPECT_LE(delay, prev * 1.0001) << "width " << width;
    prev = delay;
  }
}

TEST_P(GeometrySweep, SparserWiresAreNeverSlower) {
  const double width = GetParam();
  double prev = 1e9;
  for (double spacing : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const WireGeometry g{MetalPlane::k8X, width, spacing};
    const RepeaterDesign d = delay_optimal_design(tech(), g);
    const double delay = delay_per_m(tech(), g, d).value();
    EXPECT_LE(delay, prev * 1.0001) << "spacing " << spacing;
    prev = delay;
  }
}

TEST_P(GeometrySweep, PowerOptimalNeverBeatsDelayOptimalOnDelay) {
  const double width = GetParam();
  const WireGeometry g{MetalPlane::k8X, width, 2.0};
  const RepeaterDesign opt = delay_optimal_design(tech(), g);
  const RepeaterDesign pw = power_optimal_design(tech(), g, 1.5);
  EXPECT_GE((segment_delay(tech(), g, pw) / pw.spacing).value(),
            0.999 * (segment_delay(tech(), g, opt) / opt.spacing).value());
  // ...and never loses on power.
  const units::WattsPerMeter p_opt =
      switching_power_per_m(tech(), g, opt) + leakage_power_per_m(tech(), opt);
  const units::WattsPerMeter p_pw =
      switching_power_per_m(tech(), g, pw) + leakage_power_per_m(tech(), pw);
  EXPECT_LE(p_pw.value(), p_opt.value() * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(Factors, GeometrySweep,
                         ::testing::Values(1.0, 2.0, 3.0, 6.0));

TEST(RcModel, LcFloorBoundsAllDesigns) {
  for (double w : {1.0, 4.0, 14.0}) {
    for (double sp : {1.0, 8.0}) {
      const WireGeometry g{MetalPlane::k8X, w, sp};
      const RepeaterDesign d = delay_optimal_design(tech(), g);
      EXPECT_GE(delay_per_m(tech(), g, d).value(), tech().lc_floor.value() * 0.9999);
    }
  }
}

TEST(LinkDesign, ChengPartitionComposition) {
  const LinkPartition p = cheng3way_link();
  EXPECT_EQ(p.l_bytes, 11u);
  EXPECT_EQ(p.pw_bytes, 28u);
  EXPECT_EQ(p.b_bytes, 17u);
  // L at 4x tracks per wire, PW at 0.5x (4X plane), B at 1x.
  EXPECT_DOUBLE_EQ(p.l_tracks, 88 * 4.0);
  EXPECT_DOUBLE_EQ(p.pw_tracks, 224 * 0.5);
  EXPECT_DOUBLE_EQ(p.total_tracks, 352 + 112 + 136);
}

}  // namespace
}  // namespace tcmp::wire
