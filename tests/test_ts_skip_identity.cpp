// Dead-cycle skipping vs. the dense per-cycle loop: the event kernel jumps
// the clock over globally dead regions, and a time-series sample boundary can
// land inside such a region. The observer is a kernel wake source precisely
// so that boundary still fires at the right cycle — the emitted CSV must be
// byte-identical to the dense loop's, not merely statistically equal.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>

#include "cmp/system.hpp"
#include "obs/observer.hpp"
#include "workloads/synthetic_app.hpp"

using namespace tcmp;

namespace {

std::string timeseries_csv(const std::string& app, bool skipping,
                           Cycle sample_interval) {
  const auto cfg =
      cmp::CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2));
  obs::ObsConfig ocfg;
  ocfg.level = obs::Level::kTimeseries;
  ocfg.sample_interval = sample_interval;
  cmp::CmpSystem system(
      cfg, std::make_shared<workloads::SyntheticApp>(
               workloads::app(app).scaled(0.02), cfg.n_tiles));
  system.set_dead_cycle_skipping(skipping);
  obs::Observer observer(ocfg, &system.stats());
  system.attach_observer(&observer);
  EXPECT_TRUE(system.run(Cycle{50'000'000}));
  observer.finalize(system.total_cycles());
  std::ostringstream out;
  observer.write_timeseries(out);
  return out.str();
}

TEST(DeadCycleSkipTimeseries, CsvBitIdenticalAcrossSampleBoundaries) {
  // A short sample interval relative to the app's barrier/drain phases puts
  // many window boundaries inside otherwise-dead regions — exactly the case
  // where a skipping kernel that failed to honor the sampler as a wake
  // source would emit different windows.
  const Cycle interval{512};
  const std::string dense = timeseries_csv("MP3D", /*skipping=*/false, interval);
  const std::string skipped = timeseries_csv("MP3D", /*skipping=*/true, interval);

  ASSERT_FALSE(dense.empty());
  // Several windows actually sampled (header + rows).
  EXPECT_GT(std::count(dense.begin(), dense.end(), '\n'), 5);
  EXPECT_EQ(dense, skipped);
}

TEST(DeadCycleSkipTimeseries, CsvBitIdenticalOnSecondWorkload) {
  const Cycle interval{1024};
  const std::string dense = timeseries_csv("FFT", /*skipping=*/false, interval);
  const std::string skipped = timeseries_csv("FFT", /*skipping=*/true, interval);
  ASSERT_FALSE(dense.empty());
  EXPECT_EQ(dense, skipped);
}

}  // namespace
