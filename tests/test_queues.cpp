// Unit tests for the allocation-free hot-path queue primitives
// (common/queues.hpp): RingBuffer wrap-around and overflow policy, SmallQueue
// inline-to-heap spill and value semantics, SeqWindow growth/re-indexing and
// the duplicate-sequence check.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/queues.hpp"

namespace tcmp {
namespace {

TEST(RingBuffer, FifoWithWrapAround) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.capacity(), 3u);
  int next_in = 0, next_out = 0;
  // Push/pop far more elements than the capacity so head_ wraps repeatedly.
  for (int round = 0; round < 20; ++round) {
    while (!rb.full()) rb.push_back(next_in++);
    EXPECT_EQ(rb.size(), 3u);
    rb.pop_front();
    ++next_out;
    EXPECT_EQ(rb.front(), next_out);
    rb.push_back(next_in++);
    while (!rb.empty()) {
      EXPECT_EQ(rb.front(), next_out++);
      rb.pop_front();
    }
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(RingBuffer, ResetCapacityOnlyWhileEmpty) {
  RingBuffer<int> rb(2);
  rb.push_back(1);
  EXPECT_DEATH(rb.reset_capacity(8), "size_ == 0");
  rb.pop_front();
  rb.reset_capacity(8);
  EXPECT_EQ(rb.capacity(), 8u);
}

TEST(RingBuffer, PopClearsSlot) {
  RingBuffer<std::shared_ptr<int>> rb(2);
  auto p = std::make_shared<int>(42);
  rb.push_back(p);
  EXPECT_EQ(p.use_count(), 2);
  rb.pop_front();
  // The ring must not keep dropped payloads alive in its slot storage.
  EXPECT_EQ(p.use_count(), 1);
}

TEST(RingBuffer, MovedFromReadsEmpty) {
  RingBuffer<int> a(4);
  a.push_back(1);
  RingBuffer<int> b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.front(), 1);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): contract under test
  EXPECT_EQ(a.size(), 0u);
}

TEST(SmallQueue, StaysInlineBelowThreshold) {
  SmallQueue<int, 2> q;
  q.push_back(1);
  q.push_back(2);
  EXPECT_FALSE(q.spilled());
  EXPECT_EQ(q.front(), 1);
  EXPECT_EQ(q.back(), 2);
  q.pop_front();
  q.push_back(3);  // wraps within the inline ring, still no allocation
  EXPECT_FALSE(q.spilled());
  EXPECT_EQ(q.front(), 2);
  EXPECT_EQ(q.back(), 3);
}

TEST(SmallQueue, SpillsToHeapAndKeepsFifoOrder) {
  SmallQueue<int, 2> q;
  for (int i = 0; i < 50; ++i) q.push_back(i);
  EXPECT_TRUE(q.spilled());
  EXPECT_EQ(q.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(SmallQueue, GrowLinearizesWrappedContents) {
  SmallQueue<int, 2> q;
  // Rotate the inline ring so head_ != 0, then force a spill: grow() must
  // re-place the wrapped elements in FIFO order.
  q.push_back(0);
  q.push_back(1);
  q.pop_front();
  q.push_back(2);  // inline storage now holds [2, 1] with head_ = 1
  q.push_back(3);  // spill
  for (int want = 1; want <= 3; ++want) {
    EXPECT_EQ(q.front(), want);
    q.pop_front();
  }
}

TEST(SmallQueue, CopyIsIndependent) {
  SmallQueue<std::string, 2> q;
  for (int i = 0; i < 5; ++i) q.push_back(std::to_string(i));
  SmallQueue<std::string, 2> copy = q;
  q.pop_front();
  q.push_back("x");
  EXPECT_EQ(copy.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(copy.front(), std::to_string(i));
    copy.pop_front();
  }
}

TEST(SmallQueue, MovedFromReadsEmpty) {
  SmallQueue<int, 2> spilled;
  for (int i = 0; i < 6; ++i) spilled.push_back(i);
  SmallQueue<int, 2> dst = std::move(spilled);
  EXPECT_EQ(dst.size(), 6u);
  EXPECT_EQ(dst.front(), 0);
  // The directory moves a pending queue out of its entry and drains the
  // copy; the entry's queue must read as empty (and be safely reusable).
  EXPECT_TRUE(spilled.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_FALSE(spilled.spilled());
  spilled.push_back(99);
  EXPECT_EQ(spilled.front(), 99);
  EXPECT_EQ(spilled.size(), 1u);
}

TEST(SmallQueue, MoveOnlyPayload) {
  SmallQueue<std::unique_ptr<int>, 2> q;
  for (int i = 0; i < 4; ++i) q.push_back(std::make_unique<int>(i));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(*q.front(), i);
    q.pop_front();
  }
}

TEST(SeqWindow, InOrderArrivalNeverOccupiesSlots) {
  SeqWindow<int> w;
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.capacity(), 0u);  // storage is lazy: no heap until first park
  EXPECT_FALSE(w.take(1).has_value());
}

TEST(SeqWindow, ParkAndDrainOutOfOrder) {
  SeqWindow<int> w;
  std::uint32_t base = 0;  // next expected seq
  w.insert(base, 3, 30);
  w.insert(base, 1, 10);
  w.insert(base, 2, 20);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_FALSE(w.take(0).has_value());  // seq 0 was never parked
  for (std::uint32_t s = 1; s <= 3; ++s) {
    auto v = w.take(s);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, static_cast<int>(s * 10));
  }
  EXPECT_TRUE(w.empty());
}

TEST(SeqWindow, GrowsAndReindexesHeldItems) {
  SeqWindow<int> w;
  const std::uint32_t base = 100;
  // Fill a span wider than the initial 4 slots while items are parked:
  // grow() must re-place each held item at its seq under the new mask.
  for (std::uint32_t s : {101u, 103u, 106u, 115u, 130u}) {
    w.insert(base, s, static_cast<int>(s));
  }
  EXPECT_GE(w.capacity(), 31u);
  for (std::uint32_t s : {130u, 101u, 115u, 103u, 106u}) {
    auto v = w.take(s);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, static_cast<int>(s));
  }
  EXPECT_TRUE(w.empty());
}

TEST(SeqWindow, SlotReuseAcrossAdvancingBase) {
  // With 4 slots, seq and seq+4 share a slot index; once base advances past
  // the first, the second may park there. The occupancy flag plus stored seq
  // must keep the two from being confused.
  SeqWindow<int> w;
  w.insert(0, 1, 11);
  EXPECT_EQ(*w.take(1), 11);
  w.insert(4, 5, 55);  // same slot index as seq 1 under the 4-slot mask
  EXPECT_FALSE(w.take(1).has_value());
  EXPECT_EQ(*w.take(5), 55);
}

TEST(SeqWindowDeathTest, DuplicateSequenceAborts) {
  SeqWindow<int> w;
  w.insert(0, 2, 1);
  EXPECT_DEATH(w.insert(0, 2, 1), "duplicate sequence");
}

TEST(SeqWindow, MovedFromReadsEmpty) {
  SeqWindow<int> w;
  w.insert(0, 1, 10);
  SeqWindow<int> dst = std::move(w);
  EXPECT_EQ(*dst.take(1), 10);
  EXPECT_TRUE(w.empty());  // NOLINT(bugprone-use-after-move)
  w.insert(0, 1, 20);      // reusable after move-out
  EXPECT_EQ(*w.take(1), 20);
}

}  // namespace
}  // namespace tcmp
