// Protocol unit/integration tests: L1 + directory over an idealized message
// fabric. The fabric delivers messages with configurable (optionally
// randomized) per-message delays, which exercises exactly the reorderings the
// heterogeneous two-channel network can produce.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "protocol_test_fabric.hpp"

namespace tcmp::protocol {
namespace {

TEST(Protocol, ColdReadGrantsExclusive) {
  TestFabric f;
  const LineAddr line{0x40};
  f.access(0, line, false);
  f.run_until_quiescent();
  EXPECT_EQ(f.l1(0).state_of(line), L1State::kE);
  EXPECT_EQ(f.dir(f.home_of(line)).dir_state_of(line), DirState::kExclusive);
  EXPECT_EQ(f.dir(f.home_of(line)).owner_of(line), 0);
}

TEST(Protocol, SilentExclusiveToModifiedOnWrite) {
  TestFabric f;
  const LineAddr line{0x41};
  f.access(2, line, false);
  EXPECT_EQ(f.l1(2).state_of(line), L1State::kE);
  EXPECT_EQ(f.access(2, line, true), Cycle{0});  // hit: silent E->M
  EXPECT_EQ(f.l1(2).state_of(line), L1State::kM);
}

TEST(Protocol, SecondReaderTriggersForwardAndSharing) {
  TestFabric f;
  const LineAddr line{0x42};
  f.access(0, line, false);
  f.access(1, line, false);
  f.run_until_quiescent();
  EXPECT_EQ(f.l1(0).state_of(line), L1State::kS);
  EXPECT_EQ(f.l1(1).state_of(line), L1State::kS);
  EXPECT_EQ(f.dir(f.home_of(line)).dir_state_of(line), DirState::kShared);
  EXPECT_EQ(f.stats().counter_value("dir.cache_to_cache"), 1u);
}

TEST(Protocol, ReadAfterModifiedForwardsDirtyData) {
  TestFabric f;
  const LineAddr line{0x43};
  f.access(0, line, false);
  f.access(0, line, true);  // E -> M
  f.access(5, line, false);
  f.run_until_quiescent();
  EXPECT_EQ(f.l1(0).state_of(line), L1State::kS);
  EXPECT_EQ(f.l1(5).state_of(line), L1State::kS);
  // The revision carried dirty data; the paper's Fig. 4 example (legs 1, 2,
  // 3a, 3b) is exactly this flow.
  EXPECT_EQ(f.stats().counter_value("l1.forwards_serviced"), 1u);
}

TEST(Protocol, WriteInvalidatesSharers) {
  TestFabric f;
  const LineAddr line{0x44};
  f.access(0, line, false);
  f.access(1, line, false);
  f.access(2, line, false);
  f.run_until_quiescent();
  f.access(3, line, true);
  f.run_until_quiescent();
  EXPECT_EQ(f.l1(3).state_of(line), L1State::kM);
  EXPECT_EQ(f.l1(0).state_of(line), std::nullopt);
  EXPECT_EQ(f.l1(1).state_of(line), std::nullopt);
  EXPECT_EQ(f.l1(2).state_of(line), std::nullopt);
  EXPECT_EQ(f.dir(f.home_of(line)).owner_of(line), 3);
  EXPECT_EQ(f.stats().counter_value("dir.invalidations_sent"), 3u);
}

TEST(Protocol, UpgradeGrantedToSharer) {
  TestFabric f;
  const LineAddr line{0x45};
  f.access(0, line, false);
  f.access(1, line, false);  // both S now
  f.run_until_quiescent();
  f.access(1, line, true);   // S -> M via Upgrade
  f.run_until_quiescent();
  EXPECT_EQ(f.l1(1).state_of(line), L1State::kM);
  EXPECT_EQ(f.l1(0).state_of(line), std::nullopt);
  EXPECT_EQ(f.stats().counter_value("dir.upgrades_granted"), 1u);
}

TEST(Protocol, WriteWriteMigration) {
  TestFabric f;
  const LineAddr line{0x46};
  f.access(0, line, true);
  f.access(1, line, true);
  f.run_until_quiescent();
  EXPECT_EQ(f.l1(0).state_of(line), std::nullopt);
  EXPECT_EQ(f.l1(1).state_of(line), L1State::kM);
  EXPECT_EQ(f.dir(f.home_of(line)).owner_of(line), 1);
}

TEST(Protocol, L1EvictionWritesBackModified) {
  TestFabric::Options opt;
  opt.l1_sets = 2;
  opt.l1_ways = 1;  // tiny L1: conflict evictions guaranteed
  TestFabric f(opt);
  // Two lines in the same L1 set (set = line & 1).
  const LineAddr a{0x10}, b{0x30};  // both even set? set_of uses low bits
  ASSERT_EQ(a.value() % 2, b.value() % 2);
  f.access(0, a, true);
  f.access(0, b, true);  // evicts a (PutM)
  f.run_until_quiescent();
  EXPECT_EQ(f.l1(0).state_of(a), std::nullopt);
  EXPECT_EQ(f.l1(0).state_of(b), L1State::kM);
  EXPECT_EQ(f.dir(f.home_of(a)).dir_state_of(a), DirState::kInvalid);
  EXPECT_EQ(f.stats().counter_value("dir.puts_accepted"), 1u);
}

TEST(Protocol, CleanExclusiveEvictionSendsHint) {
  TestFabric::Options opt;
  opt.l1_sets = 2;
  opt.l1_ways = 1;
  TestFabric f(opt);
  const LineAddr a{0x10}, b{0x30};
  f.access(0, a, false);  // E, clean
  f.access(0, b, false);  // evicts a (PutE)
  f.run_until_quiescent();
  EXPECT_EQ(f.dir(f.home_of(a)).dir_state_of(a), DirState::kInvalid);
  EXPECT_EQ(f.stats().counter_value("dir.puts_accepted"), 1u);
}

TEST(Protocol, MissDeferredBehindOwnWriteback) {
  TestFabric::Options opt;
  opt.l1_sets = 2;
  opt.l1_ways = 1;
  TestFabric f(opt);
  const LineAddr a{0x10}, b{0x30};
  f.access(0, a, true);
  f.access(0, b, true);  // a's PutM now in flight
  // Immediately re-request a: must defer until the PutAck drains, then fill.
  f.access(0, a, false);
  f.run_until_quiescent();
  EXPECT_EQ(f.l1(0).state_of(a), L1State::kE);
  EXPECT_GE(f.stats().counter_value("l1.deferred_misses"), 1u);
}

TEST(Protocol, L2EvictionRecallsOwner) {
  TestFabric::Options opt;
  opt.nodes = 2;
  opt.l2_sets = 1;
  opt.l2_ways = 1;  // one-line L2 slice per home: every new line recalls
  opt.l1_sets = 64;
  TestFabric f(opt);
  // Two different lines with the same home 0 (line % 2 == 0).
  const LineAddr a{0x10}, b{0x20};
  ASSERT_EQ(f.home_of(a), f.home_of(b));
  f.access(0, a, true);                 // core 0 owns a (M)
  f.access(1, b, false);                // forces L2 eviction of a -> Recall
  f.run_until_quiescent();
  EXPECT_EQ(f.l1(0).state_of(a), std::nullopt);  // recalled
  EXPECT_EQ(f.l1(1).state_of(b), L1State::kE);
  EXPECT_GE(f.stats().counter_value("dir.recalls"), 1u);
  EXPECT_GE(f.stats().counter_value("mem.writebacks"), 1u);  // a was dirty
}

TEST(Protocol, L2EvictionInvalidatesSharers) {
  TestFabric::Options opt;
  opt.nodes = 4;
  opt.l2_sets = 1;
  opt.l2_ways = 1;
  opt.l1_sets = 64;
  TestFabric f(opt);
  const LineAddr a{0x10}, b{0x20};  // homes: 0x10 % 4 = 0 ... need same home
  ASSERT_EQ(f.home_of(a), f.home_of(b));
  f.access(0, a, false);
  f.access(1, a, false);
  f.access(2, a, false);
  f.run_until_quiescent();
  f.access(3, b, false);  // evicts a: Invs to 0,1,2 collected at home
  f.run_until_quiescent();
  EXPECT_EQ(f.l1(0).state_of(a), std::nullopt);
  EXPECT_EQ(f.l1(1).state_of(a), std::nullopt);
  EXPECT_EQ(f.l1(2).state_of(a), std::nullopt);
  EXPECT_EQ(f.dir(0).dir_state_of(a), std::nullopt);  // gone from L2
}

// --- randomized stress with reordering: the heavy validation ---

struct StressCase {
  unsigned nodes;
  unsigned lines;      ///< distinct lines in play
  unsigned ops;        ///< per core
  Cycle min_delay, max_delay;
  std::uint64_t seed;
};

class ProtocolStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(ProtocolStress, RandomSharingRemainsCoherent) {
  const StressCase& c = GetParam();
  TestFabric::Options opt;
  opt.nodes = c.nodes;
  opt.l1_sets = 8;
  opt.l1_ways = 2;
  opt.l2_sets = 16;
  opt.l2_ways = 4;
  opt.min_delay = c.min_delay;
  opt.max_delay = c.max_delay;
  opt.seed = c.seed;
  TestFabric f(opt);

  Rng rng(c.seed * 7919 + 1);
  std::set<LineAddr> touched;
  // Interleave: each "round", every core performs one blocking access.
  for (unsigned op = 0; op < c.ops; ++op) {
    for (unsigned core = 0; core < c.nodes; ++core) {
      const LineAddr line{1 + rng.next_below(c.lines)};
      const bool write = rng.chance(0.4);
      touched.insert(line);
      f.access(core, line, write);
    }
  }
  f.run_until_quiescent();
  f.check_invariants(touched);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolStress,
    ::testing::Values(
        StressCase{4, 8, 200, Cycle{1}, Cycle{1}, 1},     // in-order delivery
        StressCase{4, 8, 200, Cycle{1}, Cycle{30}, 2},    // heavy reordering
        StressCase{16, 32, 100, Cycle{1}, Cycle{25}, 3},  // full CMP, reordering
        StressCase{16, 6, 150, Cycle{1}, Cycle{40}, 4},   // hot contention on 6 lines
        StressCase{8, 64, 120, Cycle{2}, Cycle{20}, 5},   // capacity pressure (L2 recalls)
        StressCase{16, 128, 80, Cycle{1}, Cycle{15}, 6},  // many lines, L1+L2 evictions
        StressCase{2, 3, 500, Cycle{1}, Cycle{50}, 7},    // two cores fighting, max reorder
        StressCase{16, 200, 100, Cycle{1}, Cycle{60}, 9},   // L2 thrashing + extreme reorder
        StressCase{4, 100, 300, Cycle{1}, Cycle{45}, 10},   // few cores, heavy capacity
        StressCase{16, 32, 100, Cycle{1}, Cycle{25}, 42}));

// The rare race paths must actually fire under stress — otherwise the stress
// suite would pass vacuously.
TEST(ProtocolStress, RacePathsAreExercised) {
  TestFabric::Options opt;
  opt.nodes = 8;
  opt.l1_sets = 4;
  opt.l1_ways = 1;   // constant evictions
  opt.l2_sets = 8;
  opt.l2_ways = 2;   // constant recalls
  opt.min_delay = Cycle{1};
  opt.max_delay = Cycle{50};  // heavy reordering
  opt.seed = 1234;
  TestFabric f(opt);
  Rng rng(99);
  std::set<LineAddr> touched;
  for (unsigned op = 0; op < 400; ++op) {
    for (unsigned core = 0; core < opt.nodes; ++core) {
      // Hot contended lines (busy-queueing, forwards) plus a large cold pool
      // (L1 evictions and L2 recalls).
      const LineAddr line{rng.chance(0.4) ? 1 + rng.next_below(8)
                                            : 16 + rng.next_below(400)};
      touched.insert(line);
      f.access(core, line, rng.chance(0.5));
    }
  }
  f.run_until_quiescent();
  f.check_invariants(touched);
  // Every tricky path fired at least once.
  EXPECT_GT(f.stats().counter_value("dir.recalls"), 0u);
  // Put/forward and put/recall crossings: either the ack was held (put
  // arrived during the busy window) or the put arrived after resolution.
  EXPECT_GT(f.stats().counter_value("dir.stale_puts") +
                f.stats().counter_value("dir.held_put_acks"),
            0u);
  EXPECT_GT(f.stats().counter_value("l1.forwards_serviced_in_evict"), 0u);
  EXPECT_GT(f.stats().counter_value("l1.stale_invs"), 0u);
  EXPECT_GT(f.stats().counter_value("dir.queued_on_busy"), 0u);
}

// Serial access latency sanity: a warm remote access costs fabric + L2
// round trips, far below the 400-cycle memory latency.
TEST(Protocol, AccessLatencyIncludesFabricAndL2) {
  TestFabric f;  // 3-cycle fabric delay each way, 8-cycle L2
  const LineAddr line{0x40};  // home = 0
  f.access(0, line, false);  // cold fill from memory, core 0 gets E
  f.run_until_quiescent();
  // GetS -> home (3) -> L2 (8) -> FwdGetS -> owner (3) -> Data (3).
  const Cycle t = f.access(4, line, false);
  EXPECT_GE(t.value(), 14u);
  EXPECT_LE(t.value(), 40u);
}

TEST(Protocol, MemoryLatencyDominatesColdMiss) {
  TestFabric::Options opt;
  TestFabric f(opt);
  const Cycle t = f.access(0, LineAddr{0x1000}, false);
  EXPECT_GE(t.value(), 400u);  // Table 4 memory access time
  EXPECT_LE(t.value(), 430u);
}

}  // namespace
}  // namespace tcmp::protocol
