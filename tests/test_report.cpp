// Energy-accounting tests: the report layer's formulas checked against
// independently recomputed values from raw counters and network geometry.
#include <gtest/gtest.h>

#include <sstream>

#include "cmp/report.hpp"
#include "cmp/system.hpp"
#include "workloads/synthetic_app.hpp"

namespace tcmp::cmp {
namespace {

RunResult run_cfg(CmpConfig cfg, const char* app = "FFT", double scale = 0.1) {
  CmpSystem system(cfg, std::make_shared<workloads::SyntheticApp>(
                            workloads::app(app).scaled(scale), cfg.n_tiles));
  EXPECT_TRUE(system.run(Cycle{200'000'000}));
  return make_result(system);
}

TEST(Report, LinkStaticMatchesGeometryFormula) {
  const CmpConfig cfg = CmpConfig::baseline();
  CmpSystem system(cfg, std::make_shared<workloads::SyntheticApp>(
                            workloads::app("FFT").scaled(0.05), 16));
  ASSERT_TRUE(system.run(Cycle{200'000'000}));
  const RunResult r = make_result(system);

  // Recompute by hand: 600 B-wires x 1.0246 W/m x 240 mm of directed links.
  const double expected = 600.0 * 1.0246 * 0.240 * r.seconds.value();
  EXPECT_NEAR(r.energy.get(power::EnergyAccount::kLinkStatic).value(), expected,
              expected * 1e-9);
  EXPECT_DOUBLE_EQ(system.network().total_directed_link_mm(0), 240.0);
}

TEST(Report, LinkDynamicMatchesBitLengthCounter) {
  const CmpConfig cfg = CmpConfig::baseline();
  CmpSystem system(cfg, std::make_shared<workloads::SyntheticApp>(
                            workloads::app("FFT").scaled(0.05), 16));
  ASSERT_TRUE(system.run(Cycle{200'000'000}));
  const RunResult r = make_result(system);

  const double bit_dmm =
      static_cast<double>(system.stats().counter_value("noc.B.bit_dmm_hops"));
  const double expected = bit_dmm * 1e-4 * 2.65 / cfg.freq.value() * 0.5;
  EXPECT_NEAR(r.energy.get(power::EnergyAccount::kLinkDynamic).value(), expected,
              expected * 1e-9);
  // On the uniform-length mesh, bit_dmm is exactly bit_hops x 50 dmm.
  EXPECT_EQ(system.stats().counter_value("noc.B.bit_dmm_hops"),
            system.stats().counter_value("noc.B.bit_hops") * 50);
}

TEST(Report, TreeAndMeshHaveEqualMetalBudget) {
  // The two-level tree spends the same 240 mm of directed wire per plane as
  // the 4x4 mesh, so its static link power is identical by construction.
  CmpConfig mesh = CmpConfig::baseline();
  CmpConfig tree = CmpConfig::baseline();
  tree.topology = noc::Topology::kTree2Level;
  const RunResult rm = run_cfg(mesh);
  const RunResult rt = run_cfg(tree);
  const double pm =
      (rm.energy.get(power::EnergyAccount::kLinkStatic) / rm.seconds).value();
  const double pt =
      (rt.energy.get(power::EnergyAccount::kLinkStatic) / rt.seconds).value();
  EXPECT_NEAR(pm, pt, pm * 1e-9);
}

TEST(Report, TreeUsesFiveRoutersPerPlane) {
  CmpConfig tree = CmpConfig::baseline();
  tree.topology = noc::Topology::kTree2Level;
  CmpSystem system(tree, std::make_shared<workloads::SyntheticApp>(
                             workloads::app("FFT").scaled(0.05), 16));
  ASSERT_TRUE(system.run(Cycle{200'000'000}));
  EXPECT_EQ(system.network().router_count(0), 5u);
}

TEST(Report, HetLinkLeaksLessThanBaseline) {
  // 272 B-wires + 40 VL-wires (PW-like leakage) vs 600 B-wires.
  const RunResult base = run_cfg(CmpConfig::baseline());
  const RunResult het =
      run_cfg(CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2)));
  const double pb =
      (base.energy.get(power::EnergyAccount::kLinkStatic) / base.seconds).value();
  const double ph =
      (het.energy.get(power::EnergyAccount::kLinkStatic) / het.seconds).value();
  EXPECT_NEAR(ph / pb, (272.0 * 1.0246 + 40.0 * 0.4395) / (600.0 * 1.0246), 1e-6);
}

TEST(Report, CompressionHardwareChargedOnlyWhenPresent) {
  const RunResult base = run_cfg(CmpConfig::baseline());
  EXPECT_EQ(base.energy.get(power::EnergyAccount::kCompressionDynamic).value(), 0.0);
  EXPECT_EQ(base.energy.get(power::EnergyAccount::kCompressionStatic).value(), 0.0);
  const RunResult het =
      run_cfg(CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(16, 2)));
  EXPECT_GT(het.energy.get(power::EnergyAccount::kCompressionDynamic).value(), 0.0);
  EXPECT_GT(het.energy.get(power::EnergyAccount::kCompressionStatic).value(), 0.0);
  // 16-entry leaks more than 4-entry.
  const RunResult small =
      run_cfg(CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2)));
  EXPECT_GT(
      (het.energy.get(power::EnergyAccount::kCompressionStatic) / het.seconds).value(),
      (small.energy.get(power::EnergyAccount::kCompressionStatic) / small.seconds)
          .value());
}

TEST(Report, DumpStateIsInformative) {
  CmpConfig cfg = CmpConfig::baseline();
  CmpSystem system(cfg, std::make_shared<workloads::SyntheticApp>(
                            workloads::app("FFT").scaled(0.05), 16));
  ASSERT_TRUE(system.run(Cycle{200'000'000}));
  std::ostringstream out;
  system.dump_state(out);
  const std::string dump = out.str();
  EXPECT_NE(dump.find("CmpSystem @ cycle"), std::string::npos);
  EXPECT_NE(dump.find("tile 15"), std::string::npos);
  EXPECT_NE(dump.find("done"), std::string::npos);
}

TEST(Report, MemoryEnergyTracksMemoryEvents) {
  const CmpConfig cfg = CmpConfig::baseline();
  CmpSystem system(cfg, std::make_shared<workloads::SyntheticApp>(
                            workloads::app("Radix").scaled(0.05), 16));
  ASSERT_TRUE(system.run(Cycle{200'000'000}));
  const RunResult r = make_result(system);
  const double events =
      static_cast<double>(system.stats().counter_value("mem.reads") +
                          system.stats().counter_value("mem.writebacks"));
  EXPECT_NEAR(r.energy.get(power::EnergyAccount::kMemoryDynamic).value(),
              events * cfg.chip_power.mem_access.value(), 1e-15);
}

}  // namespace
}  // namespace tcmp::cmp
