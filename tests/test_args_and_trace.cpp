// Tests for the CLI argument parser and the trace-file workload (read and
// write round-trips).
#include <gtest/gtest.h>

#include <sstream>

#include "common/args.hpp"
#include "workloads/synthetic_app.hpp"
#include "workloads/trace_workload.hpp"

namespace tcmp {
namespace {

ArgParser parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  ArgParser p;
  EXPECT_TRUE(p.parse(static_cast<int>(v.size()), v.data()));
  return p;
}

TEST(ArgParser, KeyValueForms) {
  const auto p = parse({"--app", "MP3D", "--scale=0.5", "--tiles", "32"});
  EXPECT_EQ(p.get("app", ""), "MP3D");
  EXPECT_DOUBLE_EQ(p.get_double("scale", 0), 0.5);
  EXPECT_EQ(p.get_long("tiles", 0), 32);
  EXPECT_EQ(p.get("missing", "dflt"), "dflt");
}

TEST(ArgParser, Flags) {
  const auto p = parse({"--verbose", "--fast=false", "--app", "FFT"});
  EXPECT_TRUE(p.get_flag("verbose"));
  EXPECT_FALSE(p.get_flag("fast"));
  EXPECT_FALSE(p.get_flag("absent"));
  EXPECT_EQ(p.get("app", ""), "FFT");
}

TEST(ArgParser, PositionalArguments) {
  const auto p = parse({"first", "--k", "v", "second"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "first");
  EXPECT_EQ(p.positional()[1], "second");
}

TEST(ArgParser, UnknownKeyDetection) {
  const auto p = parse({"--app", "X", "--bogus", "1"});
  const auto unknown = p.unknown_keys({"app"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "bogus");
}

TEST(ArgParser, TypedFallbacksOnGarbage) {
  const auto p = parse({"--n=abc"});
  EXPECT_EQ(p.get_long("n", 7), 7);
  EXPECT_DOUBLE_EQ(p.get_double("n", 1.5), 1.5);
}

// --- trace workload ---

TEST(TraceWorkload, ParsesAllOpKinds) {
  std::istringstream in(
      "# comment\n"
      "0 L 0x10\n"
      "0 S 0x11\n"
      "0 C 5\n"
      "0 B 1  # trailing comment\n"
      "1 L 0x20\n");
  workloads::TraceWorkload w(in, 2);

  auto op = w.next(0);
  EXPECT_EQ(static_cast<int>(op.kind), static_cast<int>(core::OpKind::kLoad));
  EXPECT_EQ(op.line.value(), 0x10u);
  op = w.next(0);
  EXPECT_EQ(static_cast<int>(op.kind), static_cast<int>(core::OpKind::kStore));
  op = w.next(0);
  EXPECT_EQ(op.count, 5u);
  op = w.next(0);
  EXPECT_EQ(static_cast<int>(op.kind), static_cast<int>(core::OpKind::kBarrier));
  // Exhausted stream returns kDone forever.
  EXPECT_EQ(static_cast<int>(w.next(0).kind), static_cast<int>(core::OpKind::kDone));
  EXPECT_EQ(static_cast<int>(w.next(0).kind), static_cast<int>(core::OpKind::kDone));
  EXPECT_EQ(w.next(1).line.value(), 0x20u);
  // Streaming reader: 5 events consumed, and because the producer interleaves
  // per consumer demand, no more than one event was ever parked per core.
  EXPECT_EQ(w.events_consumed(), 5u);
  EXPECT_EQ(w.max_buffered(), 1u);
}

TEST(TraceWorkloadDeathTest, RejectsMalformedLines) {
  // Parsing is lazy (streaming): the abort fires on first consumption, not
  // at construction.
  EXPECT_DEATH(
      {
        std::istringstream bad_core("9 L 0x10\n");
        workloads::TraceWorkload w(bad_core, 2);
        w.next(0);
      },
      "core id");
  EXPECT_DEATH(
      {
        std::istringstream bad_op("0 Q 0x10\n");
        workloads::TraceWorkload w(bad_op, 2);
        w.next(0);
      },
      "unknown op");
}

TEST(TraceWorkload, RoundTripsThroughWriter) {
  workloads::AppParams params = workloads::app("FFT").scaled(0.02);
  params.warmup_frac = 0.0;
  workloads::SyntheticApp original(params, 4);
  std::stringstream buffer;
  workloads::write_trace(buffer, original, 4, 2000);

  workloads::TraceWorkload replay(buffer, 4);
  workloads::SyntheticApp reference(params, 4);
  for (unsigned core = 0; core < 4; ++core) {
    for (int i = 0; i < 1500; ++i) {
      const auto a = reference.next(core);
      const auto b = replay.next(core);
      if (a.kind == core::OpKind::kDone || b.kind == core::OpKind::kDone) break;
      ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
      ASSERT_EQ(a.line, b.line);
      ASSERT_EQ(a.count, b.count);
    }
  }
}

}  // namespace
}  // namespace tcmp
