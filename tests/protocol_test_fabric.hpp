// Shared test harness: L1s + directories over an idealized message fabric
// with configurable per-message delays. A custom delay function lets tests
// construct exact message orderings (deterministic race reproduction); the
// default uniform/randomized delays drive the statistical stress suites.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "protocol/coherence_msg.hpp"
#include "protocol/delay_queue.hpp"
#include "protocol/directory.hpp"
#include "protocol/l1_cache.hpp"

namespace tcmp::protocol {

class TestFabric {
 public:
  struct Options {
    unsigned nodes = 16;
    unsigned l1_sets = 16;
    unsigned l1_ways = 2;
    unsigned l2_sets = 64;
    unsigned l2_ways = 4;
    Cycle min_delay{3};
    Cycle max_delay{3};  ///< > min_delay enables randomized reordering
    std::uint64_t seed = 1;
  };

  /// Overrides the delay of individual messages (return nullopt for the
  /// default). Evaluated at send time.
  using DelayFn = std::function<std::optional<Cycle>(const CoherenceMsg&)>;

  TestFabric() : TestFabric(Options{}) {}
  explicit TestFabric(const Options& opt) : opt_(opt), rng_(opt.seed) {
    fills_.resize(opt_.nodes);
    auto sink = [this](CoherenceMsg msg) { enqueue(msg); };
    for (unsigned n = 0; n < opt_.nodes; ++n) {
      L1Cache::Config l1cfg;
      l1cfg.sets = opt_.l1_sets;
      l1cfg.ways = opt_.l1_ways;
      l1s_.push_back(std::make_unique<L1Cache>(static_cast<NodeId>(n), l1cfg,
                                               opt_.nodes, &stats_, sink));
      Directory::Config dcfg;
      dcfg.sets = opt_.l2_sets;
      dcfg.ways = opt_.l2_ways;
      dirs_.push_back(std::make_unique<Directory>(static_cast<NodeId>(n), dcfg,
                                                  opt_.nodes, &stats_, sink));
      const unsigned core = n;
      l1s_[n]->set_fill_callback(
          [this, core](LineAddr line) { fills_[core].insert(line); });
    }
  }

  void set_delay_fn(DelayFn fn) { delay_fn_ = std::move(fn); }

  L1Cache& l1(unsigned n) { return *l1s_[n]; }
  Directory& dir(unsigned n) { return *dirs_[n]; }
  StatRegistry& stats() { return stats_; }
  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] NodeId home_of(LineAddr line) const {
    return static_cast<NodeId>(line.value() % opt_.nodes);
  }

  void step() {
    ++now_;
    while (auto msg = wire_.pop_ready(now_)) {
      if (msg->dst_unit == Unit::kDir) {
        dirs_[msg->dst]->deliver(*msg, now_);
      } else {
        l1s_[msg->dst]->deliver(*msg);
      }
    }
    for (auto& d : dirs_) d->tick(now_);
  }

  /// Blocking access: issue and run until the fill callback fires (or the
  /// access hits). Returns the cycles the access took to complete.
  Cycle access(unsigned core, LineAddr line, bool write) {
    const Cycle start = now_;
    fills_[core].erase(line);
    if (l1s_[core]->access(line, write) == AccessResult::kHit) return Cycle{0};
    while (!fills_[core].contains(line)) {
      step();
      TCMP_CHECK_MSG(now_ - start < Cycle{1000000}, "access did not complete");
    }
    return now_ - start;
  }

  /// Issue without blocking (race construction); pair with run_until_quiescent.
  void access_async(unsigned core, LineAddr line, bool write) {
    fills_[core].erase(line);
    (void)l1s_[core]->access(line, write);
  }

  void run_until_quiescent(Cycle limit = Cycle{1000000}) {
    const Cycle start = now_;
    while (!quiescent()) {
      step();
      TCMP_CHECK_MSG(now_ - start < limit, "system did not quiesce");
    }
  }

  [[nodiscard]] bool quiescent() const {
    if (!wire_.empty()) return false;
    for (const auto& l : l1s_)
      if (!l->quiescent()) return false;
    for (const auto& d : dirs_)
      if (!d->quiescent()) return false;
    return true;
  }

  /// Coherence + data-version invariants over `lines` (call when quiescent).
  void check_invariants(const std::set<LineAddr>& lines) {
    for (LineAddr line : lines) {
      std::vector<unsigned> m_or_e, s_holders;
      for (unsigned n = 0; n < opt_.nodes; ++n) {
        const auto st = l1s_[n]->state_of(line);
        if (!st) continue;
        if (*st == L1State::kS) {
          s_holders.push_back(n);
        } else {
          m_or_e.push_back(n);
        }
      }
      ASSERT_LE(m_or_e.size(), 1u) << "multiple owners of line " << line.value();
      if (!m_or_e.empty()) {
        ASSERT_TRUE(s_holders.empty())
            << "owner plus sharers on line " << line.value();
      }
      const Directory& home = *dirs_[home_of(line)];
      const auto dstate = home.dir_state_of(line);
      if (!dstate.has_value()) {
        ASSERT_TRUE(m_or_e.empty() && s_holders.empty())
            << "L1 copy of line " << line.value() << " not backed by L2";
        continue;
      }
      switch (*dstate) {
        case DirState::kInvalid:
          ASSERT_TRUE(m_or_e.empty() && s_holders.empty());
          break;
        case DirState::kShared: {
          ASSERT_TRUE(m_or_e.empty());
          const SharerMask sharers = home.sharers_of(line);
          for (unsigned n : s_holders) ASSERT_TRUE(sharers.test(n));
          for (unsigned n : s_holders) {
            ASSERT_EQ(l1s_[n]->version_of(line), home.version_of(line))
                << "stale shared copy of line " << line.value() << " at L1 " << n;
          }
          break;
        }
        case DirState::kExclusive:
          ASSERT_EQ(m_or_e.size(), 1u);
          ASSERT_EQ(home.owner_of(line), m_or_e.front());
          ASSERT_TRUE(s_holders.empty());
          ASSERT_GE(l1s_[m_or_e.front()]->version_of(line), home.version_of(line));
          break;
        default:
          FAIL() << "busy directory state after quiescence";
      }
    }
  }

 private:
  void enqueue(const CoherenceMsg& msg) {
    Cycle delay = opt_.min_delay;
    if (opt_.max_delay > opt_.min_delay) {
      delay = opt_.min_delay +
              rng_.next_below((opt_.max_delay - opt_.min_delay).value() + 1);
    }
    if (delay_fn_) {
      if (const auto forced = delay_fn_(msg)) delay = *forced;
    }
    wire_.push(now_ + delay, msg);
  }

  Options opt_;
  Rng rng_;
  StatRegistry stats_;
  DelayFn delay_fn_;
  std::vector<std::unique_ptr<L1Cache>> l1s_;
  std::vector<std::unique_ptr<Directory>> dirs_;
  std::vector<std::set<LineAddr>> fills_;
  DelayQueue<CoherenceMsg> wire_;
  Cycle now_{0};
};

}  // namespace tcmp::protocol
