// Tests for tcmplint's cross-TU class/field model: the source-to-structure
// pass every determinism rule (nondet-iteration, uninit-member,
// reset-coverage) is built on. The parser is fed synthetic sources through
// build_model's (name, text) interface, so coverage is independent of the
// real tree's contents.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "../tools/tcmplint_model.hpp"

namespace {

using tcmplint::ClassInfo;
using tcmplint::Model;
using tcmplint::build_model;
using tcmplint::strip_code;

Model model_of(const std::string& text,
               const std::string& name = "src/common/synth.hpp") {
  return build_model({{name, text}});
}

TEST(StripCode, BlanksCommentsAndStringsButKeepsLines) {
  const std::string in =
      "int a; // trailing comment\n"
      "/* block\n   spanning */ int b;\n"
      "const char* s = \"braces {in} string\";\n";
  const std::string out = strip_code(in);
  // Line structure is preserved exactly.
  EXPECT_EQ(std::count(in.begin(), in.end(), '\n'),
            std::count(out.begin(), out.end(), '\n'));
  EXPECT_EQ(out.find("comment"), std::string::npos);
  EXPECT_EQ(out.find("spanning"), std::string::npos);
  EXPECT_EQ(out.find("{in}"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(StripCode, BlanksPreprocessorIncludingContinuations) {
  const std::string out = strip_code(
      "#define BAD_MACRO(x) { if (x) \\\n"
      "    { abort(); }\n"
      "int kept = 1;\n");
  EXPECT_EQ(out.find("BAD_MACRO"), std::string::npos);
  EXPECT_EQ(out.find("abort"), std::string::npos);
  EXPECT_NE(out.find("int kept = 1;"), std::string::npos);
}

TEST(Model, FieldsWithAndWithoutInitializers) {
  Model m = model_of(
      "struct S {\n"
      "  int plain;\n"
      "  int with_eq = 3;\n"
      "  double with_brace{1.5};\n"
      "  static int shared;\n"
      "  int& ref;\n"
      "};\n");
  const ClassInfo* s = m.find("S");
  ASSERT_NE(s, nullptr);
  ASSERT_NE(s->field("plain"), nullptr);
  EXPECT_FALSE(s->field("plain")->has_init);
  EXPECT_TRUE(s->field("with_eq")->has_init);
  EXPECT_TRUE(s->field("with_brace")->has_init);
  EXPECT_TRUE(s->field("shared")->is_static);
  EXPECT_TRUE(s->field("ref")->is_reference);
}

TEST(Model, NestedClassesGetQualifiedNames) {
  Model m = model_of(
      "class Outer {\n"
      " public:\n"
      "  struct Config {\n"
      "    unsigned sets = 128;\n"
      "  };\n"
      " private:\n"
      "  int id_ = 0;\n"
      "};\n");
  const ClassInfo* outer = m.find("Outer");
  const ClassInfo* cfg = m.find("Outer::Config");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(cfg, nullptr);
  EXPECT_EQ(cfg->name, "Config");
  ASSERT_NE(cfg->field("sets"), nullptr);
  EXPECT_TRUE(cfg->field("sets")->has_init);
  // The nested class's members must not leak into the outer class.
  EXPECT_EQ(outer->field("sets"), nullptr);
  ASSERT_NE(outer->field("id_"), nullptr);
}

TEST(Model, TemplatesAndMultiLineDeclarations) {
  Model m = model_of(
      "template <typename T>\n"
      "class Ring {\n"
      "  std::vector<std::pair<T,\n"
      "                        unsigned>>\n"
      "      slots_;\n"
      "  unsigned head_ = 0;\n"
      "};\n");
  const ClassInfo* ring = m.find("Ring");
  ASSERT_NE(ring, nullptr);
  const tcmplint::Field* slots = ring->field("slots_");
  ASSERT_NE(slots, nullptr);
  EXPECT_FALSE(slots->has_init);
  // The declaration line is the statement's first token, not the ';' line.
  EXPECT_EQ(slots->line, 3);
  EXPECT_EQ(ring->field("head_")->line, 6);
}

TEST(Model, InClassCtorInitListCoversMembers) {
  Model m = model_of(
      "struct H {\n"
      "  H(unsigned w) : width_(w), count_{0} {}\n"
      "  unsigned width_;\n"
      "  unsigned count_;\n"
      "  unsigned loose_;\n"
      "};\n");
  const ClassInfo* h = m.find("H");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->ctors.size(), 1u);
  const std::vector<std::string>& inits = h->ctors[0].inits;
  EXPECT_NE(std::find(inits.begin(), inits.end(), "width_"), inits.end());
  EXPECT_NE(std::find(inits.begin(), inits.end(), "count_"), inits.end());
  EXPECT_EQ(std::find(inits.begin(), inits.end(), "loose_"), inits.end());
}

TEST(Model, OutOfLineCtorResolvesRegardlessOfFileOrder) {
  const std::string hpp =
      "namespace n {\n"
      "class Core {\n"
      " public:\n"
      "  Core(int id);\n"
      " private:\n"
      "  int id_;\n"
      "};\n"
      "}\n";
  const std::string cpp =
      "#include \"core.hpp\"\n"
      "namespace n {\n"
      "Core::Core(int id) : id_(id) {}\n"
      "}\n";
  // .cpp first mirrors sorted directory order (".cpp" < ".hpp").
  for (bool cpp_first : {true, false}) {
    std::vector<std::pair<std::string, std::string>> sources;
    if (cpp_first) {
      sources = {{"src/core/core.cpp", cpp}, {"src/core/core.hpp", hpp}};
    } else {
      sources = {{"src/core/core.hpp", hpp}, {"src/core/core.cpp", cpp}};
    }
    Model m = build_model(sources);
    const ClassInfo* core = m.find("Core");
    ASSERT_NE(core, nullptr);
    ASSERT_EQ(core->ctors.size(), 1u) << "cpp_first=" << cpp_first;
    ASSERT_EQ(core->ctors[0].inits.size(), 1u);
    EXPECT_EQ(core->ctors[0].inits[0], "id_");
  }
}

TEST(Model, PlainCtorDeclarationDoesNotFakeCoverage) {
  // An in-class declaration `X(...);` carries no init list; recording it as
  // a ctor with empty inits would make uninit-member report every member as
  // uncovered even when the out-of-line definition initializes them all.
  Model m = model_of(
      "class X {\n"
      " public:\n"
      "  X(int v);\n"
      "  X() = default;\n"
      "  X(const X&) = delete;\n"
      " private:\n"
      "  int v_ = 0;\n"
      "};\n");
  const ClassInfo* x = m.find("X");
  ASSERT_NE(x, nullptr);
  // Only the defaulted and deleted ctors are recorded from declarations.
  ASSERT_EQ(x->ctors.size(), 2u);
  EXPECT_EQ(x->ctors[0].inits.size(), 0u);
  EXPECT_TRUE(x->ctors[1].deleted);
}

TEST(Model, OutOfLineMethodBodiesAttach) {
  Model m = build_model({
      {"src/sim/w.hpp",
       "namespace s {\n"
       "class W {\n"
       " public:\n"
       "  void reset();\n"
       " private:\n"
       "  int a_ = 0;\n"
       "  int b_ = 0;\n"
       "};\n"
       "}\n"},
      {"src/sim/w.cpp",
       "#include \"w.hpp\"\n"
       "namespace s {\n"
       "void W::reset() {\n"
       "  a_ = 0;\n"
       "}\n"
       "}\n"},
  });
  const ClassInfo* w = m.find("W");
  ASSERT_NE(w, nullptr);
  std::vector<const tcmplint::MethodBody*> bodies = w->bodies_of("reset");
  ASSERT_EQ(bodies.size(), 1u);
  EXPECT_NE(bodies[0]->body.find("a_"), std::string::npos);
  EXPECT_EQ(bodies[0]->body.find("b_"), std::string::npos);
  EXPECT_EQ(bodies[0]->file, "src/sim/w.cpp");
}

TEST(Model, EnumTypesAndDirAttribution) {
  Model m = build_model({{"src/protocol/p.hpp",
                          "enum class St : unsigned char { kA, kB };\n"
                          "struct P {\n"
                          "  St st_;\n"
                          "};\n"}});
  EXPECT_EQ(m.enum_types.count("St"), 1u);
  const ClassInfo* p = m.find("P");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->dir, "protocol");
  ASSERT_NE(p->field("st_"), nullptr);
  EXPECT_FALSE(p->field("st_")->has_init);
}

TEST(Model, MethodsAreNotFields) {
  Model m = model_of(
      "struct M {\n"
      "  int value() const { return v_; }\n"
      "  [[nodiscard]] bool empty() const;\n"
      "  int v_ = 0;\n"
      "};\n");
  const ClassInfo* cls = m.find("M");
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(cls->field("value"), nullptr);
  EXPECT_EQ(cls->field("empty"), nullptr);
  ASSERT_NE(cls->field("v_"), nullptr);
  std::vector<const tcmplint::MethodBody*> bodies = cls->bodies_of("value");
  ASSERT_EQ(bodies.size(), 1u);
  EXPECT_NE(bodies[0]->body.find("v_"), std::string::npos);
}

}  // namespace
