// Verification subsystem: state-hash canonicalization (tile-permutation
// symmetry), counterexample traces on seeded mutations (found, minimal,
// replayable), wire/DBRC conformance checks, and the runtime coherence lint
// catching injected mid-run corruption through the periodic-check hook.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cmp/system.hpp"
#include "verify/checker.hpp"
#include "verify/dbrc_check.hpp"
#include "verify/lint.hpp"
#include "verify/model.hpp"
#include "verify/mutation.hpp"
#include "verify/wire_check.hpp"
#include "workloads/synthetic_app.hpp"

namespace tcmp::verify {
namespace {

ProtocolModel::Config small_cfg(unsigned tiles = 3, unsigned lines = 1) {
  ProtocolModel::Config cfg;
  cfg.n_tiles = tiles;
  cfg.n_lines = lines;
  cfg.max_msgs = 6;
  cfg.max_outstanding = 3;
  return cfg;
}

// --- canonicalization ------------------------------------------------------

TEST(Canonicalization, PermutedStatesShareOneKey) {
  // Three tiles, one line homed at tile 0: tiles 1 and 2 are free
  // (non-home), so a state where tile 1 plays a role must canonicalize to
  // the same key as the state where tile 2 plays that role.
  const ProtocolModel model(small_cfg());
  ModelState a = model.initial();
  ModelState b = model.initial();

  auto stage = [&model](ModelState& s, std::uint8_t actor) {
    Action read;
    read.kind = ActionKind::kRead;
    read.tile = actor;
    read.line = 0;
    ASSERT_FALSE(model.apply(s, read).has_value());
  };
  stage(a, 1);
  stage(b, 2);

  EXPECT_NE(model.serialize(a), model.serialize(b));
  EXPECT_EQ(model.canonical_key(a), model.canonical_key(b));
}

TEST(Canonicalization, HomeTilesArePinned) {
  // The home tile is fixed by address interleaving, so a state where the
  // HOME tile acts is genuinely different from one where a free tile acts.
  const ProtocolModel model(small_cfg());
  ModelState a = model.initial();
  ModelState b = model.initial();

  Action read;
  read.kind = ActionKind::kRead;
  read.line = 0;
  read.tile = 0;  // home of line 0
  ASSERT_FALSE(model.apply(a, read).has_value());
  read.tile = 1;
  ASSERT_FALSE(model.apply(b, read).has_value());

  EXPECT_NE(model.canonical_key(a), model.canonical_key(b));
}

TEST(Canonicalization, CanonicalizeIsIdempotentAndKeyPreserving) {
  const ProtocolModel model(small_cfg());
  ModelState s = model.initial();
  Action read;
  read.kind = ActionKind::kRead;
  read.tile = 2;
  read.line = 0;
  ASSERT_FALSE(model.apply(s, read).has_value());

  const std::string key = model.canonical_key(s);
  ModelState c = s;
  model.canonicalize(c);
  EXPECT_EQ(model.serialize(c), key);
  ModelState cc = c;
  model.canonicalize(cc);
  EXPECT_EQ(model.serialize(cc), key);
}

// --- exhaustive check and counterexamples ----------------------------------

TEST(ModelCheck, TwoTilesOneLineExhaustsClean) {
  ProtocolModel::Config cfg;
  cfg.n_tiles = 2;
  cfg.n_lines = 1;
  const CheckResult r = run_model_check(cfg);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.truncated);
  EXPECT_FALSE(r.violation.has_value());
  EXPECT_GT(r.states, 1000u);
}

TEST(ModelCheck, SeededMutationYieldsMinimalReplayableTrace) {
  // kDirWrongAckCount under-reports the invalidation-ack count; the ack
  // accounting invariant must catch it, and the BFS counterexample must be
  // (a) as long as its reported depth, (b) replayable step by step from the
  // initial state, and (c) minimal in the BFS sense: every proper prefix of
  // the action sequence reaches a violation-free state.
  ProtocolModel::Config cfg;
  cfg.n_tiles = 2;
  cfg.n_lines = 1;
  cfg.max_msgs = 6;
  cfg.max_outstanding = 3;
  cfg.mutation = MutationId::kDirWrongAckCount;

  const CheckResult r = run_model_check(cfg);
  ASSERT_FALSE(r.ok);
  ASSERT_TRUE(r.violation.has_value());
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.size(), r.violation_depth);

  const ProtocolModel model(cfg);
  ModelState s = model.initial();
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    // Prefix states must be clean: the violation fires exactly at the end.
    EXPECT_FALSE(model.check_invariants(s).has_value())
        << "invariant violated before step " << i;
    const auto apply_violation = model.apply(s, r.trace[i].action);
    model.canonicalize(s);
    if (i + 1 < r.trace.size()) {
      ASSERT_FALSE(apply_violation.has_value()) << "replay died at step " << i;
    } else {
      // The final step either trips a protocol assertion in apply() or
      // lands in a state whose invariant check fails.
      const bool caught = apply_violation.has_value() ||
                          model.check_invariants(s).has_value();
      EXPECT_TRUE(caught);
    }
  }
  EXPECT_FALSE(format_trace(model, r).empty());
}

TEST(ModelCheck, EveryModelMutationIsCaught) {
  for (const auto& m : all_mutations()) {
    if (m.target != MutationTarget::kModel) continue;
    ProtocolModel::Config cfg;
    cfg.n_tiles = 2;
    cfg.n_lines = 1;
    cfg.max_msgs = 6;
    cfg.max_outstanding = 3;
    cfg.mutation = m.id;
    CheckResult r = run_model_check(cfg);
    if (r.ok) {
      // A few bugs need two sharers besides the requester: escalate.
      cfg.n_tiles = 3;
      r = run_model_check(cfg);
    }
    EXPECT_FALSE(r.ok) << "mutation not caught: " << m.name;
    EXPECT_TRUE(r.truncated || r.violation.has_value()) << m.name;
  }
}

// --- wire / DBRC conformance ----------------------------------------------

TEST(WireCheck, CleanTableMatchesSpec) {
  const WireCheckResult r = run_wire_check();
  EXPECT_TRUE(r.ok) << (r.findings.empty() ? "" : r.findings.front());
  EXPECT_GT(r.checks, 100u);
}

TEST(WireCheck, WrongSizeEntryIsCaught) {
  const WireCheckResult r = run_wire_check(MutationId::kWireSizeWrongEntry);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.findings.empty());
}

TEST(DbrcCheck, CleanDesignDecodesEverySequence) {
  const DbrcCheckResult r = run_dbrc_check();
  EXPECT_TRUE(r.ok) << (r.findings.empty() ? "" : r.findings.front());
  EXPECT_GT(r.sequences, 0u);
  EXPECT_GT(r.decodes, r.sequences);
}

TEST(DbrcCheck, MirrorMutationsAreCaughtWithCounterexample) {
  for (const auto id :
       {MutationId::kDbrcReceiverNoInstall, MutationId::kDbrcFalseHit}) {
    DbrcCheckConfig cfg;
    cfg.mutation = id;
    const DbrcCheckResult r = run_dbrc_check(cfg);
    EXPECT_FALSE(r.ok) << to_string(id);
    EXPECT_FALSE(r.counterexample.empty()) << to_string(id);
  }
}

// --- runtime coherence lint -------------------------------------------------

std::unique_ptr<cmp::CmpSystem> small_system() {
  const auto cfg =
      cmp::CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2));
  return std::make_unique<cmp::CmpSystem>(
      cfg, std::make_shared<workloads::SyntheticApp>(
               workloads::app("MP3D").scaled(0.05), cfg.n_tiles));
}

TEST(CoherenceLint, CleanRunStaysSilent) {
  auto system = small_system();
  CoherenceLinter linter(system.get());
  system->set_periodic_check(Cycle{500},
                             [&](Cycle now) { return linter.scan(now).empty(); });
  EXPECT_TRUE(system->run(Cycle{50'000'000}));
  EXPECT_FALSE(system->aborted());
  EXPECT_GT(linter.scans(), 0u);
  EXPECT_EQ(linter.violations(), 0u);
}

TEST(CoherenceLint, InjectedDoubleOwnerAbortsTheRun) {
  auto system = small_system();
  CoherenceLinter linter(system.get());
  // The production wiring (tcmpsim --verify-interval) uses the rotating
  // stripe mode; the corrupted line sits on a non-zero stripe, so catching
  // it proves the rotation reaches every stripe.
  system->set_periodic_check(
      Cycle{100}, [&](Cycle now) { return linter.scan_slice(now).empty(); });
  // Let the machine get going, then corrupt it: force the same line into M
  // in two different L1s, bypassing the protocol (debug hook).
  for (int i = 0; i < 150; ++i) system->step();
  const LineAddr line{0x45};  // stripe 5 of CoherenceLinter::kStripes
  system->l1(1).debug_force_state(line, protocol::L1State::kM);
  system->l1(2).debug_force_state(line, protocol::L1State::kM);

  EXPECT_FALSE(system->run(Cycle{10'000}));
  EXPECT_TRUE(system->aborted());
  EXPECT_GT(linter.violations(), 0u);
  EXPECT_GE(system->stats().counter("verify.violations"), 1u);
}

TEST(CoherenceLint, SliceRotationCoversEveryStripe) {
  auto system = small_system();
  CoherenceLinter linter(system.get());
  for (int i = 0; i < 150; ++i) system->step();
  system->l1(2).debug_force_state(LineAddr{0x83}, protocol::L1State::kM);
  // One full rotation must flag the corrupted line exactly once: in the
  // slice for stripe 0x83 % kStripes and no other.
  unsigned flagged = 0;
  for (unsigned s = 0; s < CoherenceLinter::kStripes; ++s) {
    if (!linter.scan_slice(system->total_cycles()).empty()) ++flagged;
  }
  EXPECT_EQ(flagged, 1u);
}

TEST(CoherenceLint, DirectoryDisagreementIsNamed) {
  auto system = small_system();
  CoherenceLinter linter(system.get());
  for (int i = 0; i < 150; ++i) system->step();
  // A single stable M copy the home directory knows nothing about: R2.
  system->l1(3).debug_force_state(LineAddr{0x80}, protocol::L1State::kM);
  const auto violations = linter.scan(system->total_cycles());
  ASSERT_FALSE(violations.empty());
  bool saw_r2 = false;
  for (const auto& v : violations) saw_r2 |= v.invariant == "R2-DIR-OWNER";
  EXPECT_TRUE(saw_r2);
}

}  // namespace
}  // namespace tcmp::verify
