// Stress tests for the deterministic parallel sweep driver
// (common/parallel.hpp): many short tasks across jobs ∈ {1, 2, 8} must give
// index-ordered results whose content is invariant in the job count. The
// same binary runs under the TSan CI job, where the "each task owns its
// result slot, nothing else is shared" contract is checked dynamically.
#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace tcmp {
namespace {

// A cheap deterministic per-task value that still takes a task-dependent
// amount of work, so workers finish out of order and the claim "results are
// indexed by task, not by completion" is actually exercised.
std::uint64_t mix(std::size_t i) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull ^ static_cast<std::uint64_t>(i);
  // Task i spins i%17 extra rounds: completion order != issue order.
  for (unsigned r = 0; r < 4 + i % 17; ++r) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
  }
  return x;
}

TEST(ParallelSweep, ManyShortTasksIndexOrdered) {
  constexpr std::size_t kTasks = 512;
  for (const unsigned jobs : {1u, 2u, 8u}) {
    const auto results =
        parallel_sweep(kTasks, jobs, [](std::size_t i) { return mix(i); });
    ASSERT_EQ(results.size(), kTasks) << "jobs=" << jobs;
    for (std::size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(results[i], mix(i)) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(ParallelSweep, ResultsInvariantAcrossJobCounts) {
  constexpr std::size_t kTasks = 256;
  auto task = [](std::size_t i) {
    // Non-trivial payload type: ensures the slot-per-task story holds for
    // results with heap state, not just scalars.
    return std::to_string(mix(i)) + ":" + std::to_string(i);
  };
  const auto serial = parallel_sweep(kTasks, 1, task);
  for (const unsigned jobs : {2u, 8u}) {
    const auto parallel = parallel_sweep(kTasks, jobs, task);
    EXPECT_EQ(parallel, serial) << "jobs=" << jobs;
  }
}

TEST(ParallelSweep, MoreJobsThanTasks) {
  const auto results =
      parallel_sweep(3, 8, [](std::size_t i) { return i * 7 + 1; });
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0], 1u);
  EXPECT_EQ(results[1], 8u);
  EXPECT_EQ(results[2], 15u);
}

TEST(ParallelSweep, EmptyAndSingle) {
  const auto none = parallel_sweep(0, 8, [](std::size_t) { return 1; });
  EXPECT_TRUE(none.empty());
  const auto one = parallel_sweep(1, 8, [](std::size_t i) { return i + 41; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 41u);
}

TEST(ParallelSweep, EveryTaskRunsExactlyOnce) {
  constexpr std::size_t kTasks = 300;
  for (const unsigned jobs : {2u, 8u}) {
    std::vector<int> run_count(kTasks, 0);
    // Tasks may run concurrently but each index is claimed by exactly one
    // worker via the atomic cursor, so per-slot counters need no lock.
    const auto results = parallel_sweep(kTasks, jobs, [&](std::size_t i) {
      ++run_count[i];
      return i;
    });
    EXPECT_EQ(std::accumulate(run_count.begin(), run_count.end(), 0),
              static_cast<int>(kTasks))
        << "jobs=" << jobs;
    for (std::size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(run_count[i], 1) << "jobs=" << jobs << " i=" << i;
      EXPECT_EQ(results[i], i);
    }
  }
}

}  // namespace
}  // namespace tcmp
