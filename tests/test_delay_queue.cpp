// DelayQueue unit tests: readiness ordering, FIFO tie-breaking (determinism),
// next_ready reporting.
#include <gtest/gtest.h>

#include "protocol/delay_queue.hpp"

namespace tcmp::protocol {
namespace {

TEST(DelayQueue, EmptyBehaviour) {
  DelayQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_ready(), kNeverCycle);
  EXPECT_FALSE(q.pop_ready(Cycle{100}).has_value());
}

TEST(DelayQueue, NotReadyUntilCycle) {
  DelayQueue<int> q;
  q.push(Cycle{10}, 1);
  EXPECT_FALSE(q.pop_ready(Cycle{9}).has_value());
  EXPECT_EQ(q.next_ready(), Cycle{10});
  auto v = q.pop_ready(Cycle{10});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_TRUE(q.empty());
}

TEST(DelayQueue, ReadyOrderByCycle) {
  DelayQueue<int> q;
  q.push(Cycle{30}, 3);
  q.push(Cycle{10}, 1);
  q.push(Cycle{20}, 2);
  EXPECT_EQ(*q.pop_ready(Cycle{100}), 1);
  EXPECT_EQ(*q.pop_ready(Cycle{100}), 2);
  EXPECT_EQ(*q.pop_ready(Cycle{100}), 3);
}

TEST(DelayQueue, FifoOnTies) {
  DelayQueue<int> q;
  for (int i = 0; i < 50; ++i) q.push(Cycle{5}, i);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(*q.pop_ready(Cycle{5}), i);
}

TEST(DelayQueue, InterleavedPushPop) {
  DelayQueue<int> q;
  q.push(Cycle{1}, 10);
  q.push(Cycle{3}, 30);
  EXPECT_EQ(*q.pop_ready(Cycle{2}), 10);
  q.push(Cycle{2}, 20);  // earlier than the remaining item
  EXPECT_EQ(*q.pop_ready(Cycle{5}), 20);
  EXPECT_EQ(*q.pop_ready(Cycle{5}), 30);
}

TEST(DelayQueue, MoveOnlyPayload) {
  DelayQueue<std::unique_ptr<int>> q;
  q.push(Cycle{1}, std::make_unique<int>(7));
  auto v = q.pop_ready(Cycle{1});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

}  // namespace
}  // namespace tcmp::protocol
