// DelayQueue / FifoDelayQueue unit tests: readiness ordering, FIFO
// tie-breaking (determinism), next_ready reporting, and the FIFO
// specialization's equivalence with the heap under monotone deadlines.
#include <gtest/gtest.h>

#include <memory>

#include "protocol/delay_queue.hpp"

namespace tcmp::protocol {
namespace {

TEST(DelayQueue, EmptyBehaviour) {
  DelayQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_ready(), kNeverCycle);
  EXPECT_FALSE(q.pop_ready(Cycle{100}).has_value());
}

TEST(DelayQueue, NotReadyUntilCycle) {
  DelayQueue<int> q;
  q.push(Cycle{10}, 1);
  EXPECT_FALSE(q.pop_ready(Cycle{9}).has_value());
  EXPECT_EQ(q.next_ready(), Cycle{10});
  auto v = q.pop_ready(Cycle{10});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_TRUE(q.empty());
}

TEST(DelayQueue, ReadyOrderByCycle) {
  DelayQueue<int> q;
  q.push(Cycle{30}, 3);
  q.push(Cycle{10}, 1);
  q.push(Cycle{20}, 2);
  EXPECT_EQ(*q.pop_ready(Cycle{100}), 1);
  EXPECT_EQ(*q.pop_ready(Cycle{100}), 2);
  EXPECT_EQ(*q.pop_ready(Cycle{100}), 3);
}

TEST(DelayQueue, FifoOnTies) {
  DelayQueue<int> q;
  for (int i = 0; i < 50; ++i) q.push(Cycle{5}, i);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(*q.pop_ready(Cycle{5}), i);
}

TEST(DelayQueue, InterleavedPushPop) {
  DelayQueue<int> q;
  q.push(Cycle{1}, 10);
  q.push(Cycle{3}, 30);
  EXPECT_EQ(*q.pop_ready(Cycle{2}), 10);
  q.push(Cycle{2}, 20);  // earlier than the remaining item
  EXPECT_EQ(*q.pop_ready(Cycle{5}), 20);
  EXPECT_EQ(*q.pop_ready(Cycle{5}), 30);
}

TEST(DelayQueue, MoveOnlyPayload) {
  DelayQueue<std::unique_ptr<int>> q;
  q.push(Cycle{1}, std::make_unique<int>(7));
  auto v = q.pop_ready(Cycle{1});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

TEST(FifoDelayQueue, EmptyBehaviour) {
  FifoDelayQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_ready(), kNeverCycle);
  EXPECT_FALSE(q.pop_ready(Cycle{100}).has_value());
}

TEST(FifoDelayQueue, NotReadyUntilCycle) {
  FifoDelayQueue<int> q;
  q.push(Cycle{10}, 1);
  EXPECT_FALSE(q.pop_ready(Cycle{9}).has_value());
  EXPECT_EQ(q.next_ready(), Cycle{10});
  auto v = q.pop_ready(Cycle{10});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_TRUE(q.empty());
}

TEST(FifoDelayQueue, FifoOnTies) {
  FifoDelayQueue<int> q;
  for (int i = 0; i < 50; ++i) q.push(Cycle{5}, i);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(*q.pop_ready(Cycle{5}), i);
}

TEST(FifoDelayQueue, MatchesHeapUnderMonotoneDeadlines) {
  // A fixed-latency pipe pushes with non-decreasing deadlines (now + const);
  // under that precondition the ring and the heap must pop identically at
  // every cycle. 200 pushes at "now" advancing by a pseudo-random stride.
  DelayQueue<int> heap;
  FifoDelayQueue<int> fifo;
  Cycle now{0};
  std::uint64_t s = 12345;
  for (int i = 0; i < 200; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    now = now + Cycle{(s >> 33) % 5};
    heap.push(now + Cycle{7}, i);
    fifo.push(now + Cycle{7}, i);
    // Drain everything ready at `now` from both and compare.
    for (;;) {
      auto a = heap.pop_ready(now);
      auto b = fifo.pop_ready(now);
      EXPECT_EQ(a.has_value(), b.has_value());
      if (!a.has_value() || !b.has_value()) break;
      EXPECT_EQ(*a, *b);
    }
    EXPECT_EQ(heap.next_ready(), fifo.next_ready());
  }
  EXPECT_EQ(heap.size(), fifo.size());
  for (;;) {
    auto a = heap.pop_ready(Cycle{1u << 30});
    auto b = fifo.pop_ready(Cycle{1u << 30});
    EXPECT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    EXPECT_EQ(*a, *b);
  }
}

TEST(FifoDelayQueue, InterleavedPushPopSpillsPastInlineStorage) {
  FifoDelayQueue<int> q;
  int pushed = 0, popped = 0;
  for (Cycle now{0}; now < Cycle{40}; now = now + Cycle{1}) {
    q.push(now + Cycle{3}, pushed++);
    q.push(now + Cycle{3}, pushed++);  // 2 in, 1 out: queue grows
    if (auto v = q.pop_ready(now)) {
      EXPECT_EQ(*v, popped++);
    }
  }
  while (auto v = q.pop_ready(Cycle{1000})) EXPECT_EQ(*v, popped++);
  EXPECT_EQ(pushed, popped);
  EXPECT_TRUE(q.empty());
}

TEST(FifoDelayQueue, MoveOnlyPayload) {
  FifoDelayQueue<std::unique_ptr<int>> q;
  q.push(Cycle{1}, std::make_unique<int>(7));
  auto v = q.pop_ready(Cycle{1});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

}  // namespace
}  // namespace tcmp::protocol
