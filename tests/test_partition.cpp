// Partitioned simulation core (docs/partitioning.md): the row-block plan,
// the 1-cycle synchronization-horizon floor on boundary channels, and the
// end-to-end determinism contract — equal counter maps whatever the thread
// count. Golden byte-identity at --threads 1 is covered by the
// tcmpsim_golden_identity ctest (tools/golden_test.sh passes --threads 1
// explicitly); these tests pin the K > 1 side.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cmp/config.hpp"
#include "cmp/system.hpp"
#include "common/stats.hpp"
#include "noc/channel.hpp"
#include "noc/network.hpp"
#include "sim/partition.hpp"
#include "wire/link_design.hpp"
#include "workloads/synthetic_app.hpp"

namespace tcmp {
namespace {

// ---- PartitionPlan -------------------------------------------------------

TEST(PartitionPlan, EvenSplitOwnsContiguousRowBlocks) {
  const sim::PartitionPlan plan(4, 4, 2);  // 4x4 mesh, K = 2
  ASSERT_EQ(plan.num_partitions(), 2u);
  EXPECT_EQ(plan.first(0), 0u);
  EXPECT_EQ(plan.first(1), 8u);   // two rows of four
  EXPECT_EQ(plan.first(2), 16u);  // one past the end
  EXPECT_EQ(plan.count(0), 8u);
  EXPECT_EQ(plan.part_of(7), 0u);
  EXPECT_EQ(plan.part_of(8), 1u);
}

TEST(PartitionPlan, RemainderRowsGoToTheFirstPartitions) {
  const sim::PartitionPlan plan(4, 7, 3);  // 7 rows over K = 3: 3 + 2 + 2
  ASSERT_EQ(plan.num_partitions(), 3u);
  EXPECT_EQ(plan.count(0), 12u);
  EXPECT_EQ(plan.count(1), 8u);
  EXPECT_EQ(plan.count(2), 8u);
  // Every node maps to the partition whose [first, first+count) contains it.
  for (unsigned n = 0; n < 28; ++n) {
    const unsigned p = plan.part_of(n);
    EXPECT_GE(n, plan.first(p));
    EXPECT_LT(n, plan.first(p + 1));
  }
}

TEST(PartitionPlan, ClampsToOnePartitionPerRow) {
  // A row is the finest grain that keeps every cross-partition link
  // vertical, so K clamps to the mesh height.
  const sim::PartitionPlan plan(8, 4, 16);
  EXPECT_EQ(plan.num_partitions(), 4u);
  const sim::PartitionPlan one(4, 1, 8);
  EXPECT_EQ(one.num_partitions(), 1u);
}

// ---- Horizon floor: a 1-cycle boundary link ------------------------------

noc::NocConfig one_cycle_mesh(unsigned width, unsigned height) {
  noc::NocConfig cfg;
  cfg.width = width;
  cfg.height = height;
  cfg.channels = noc::make_channels(wire::baseline_link());
  // Pin the boundary link exactly at the horizon floor: anything produced
  // in cycle t must still be unconsumable before t + 1.
  cfg.channels[0].link_cycles = 1;
  return cfg;
}

protocol::CoherenceMsg cross_partition_msg(unsigned src, unsigned dst) {
  protocol::CoherenceMsg m;
  m.type = protocol::MsgType::kGetS;
  m.src = NodeId{src};
  m.dst = NodeId{dst};
  m.line = LineAddr{0x40};
  m.requester = NodeId{src};
  return m;
}

TEST(PartitionHorizon, OneCycleLinkCrossesExactlyAtHorizon) {
  // 2x2 mesh split into two single-row partitions; node 0 -> node 2 is one
  // vertical hop across the partition boundary. Drive the partitioned
  // network through the same manual lockstep the driver uses and compare
  // against the single-partition network cycle by cycle.
  const noc::NocConfig cfg = one_cycle_mesh(2, 2);

  StatRegistry serial_stats;
  noc::Network serial(cfg, &serial_stats);
  std::vector<std::pair<unsigned, Cycle>> serial_deliveries;
  Cycle serial_now{0};
  serial.set_deliver([&](NodeId node, const protocol::CoherenceMsg&) {
    serial_deliveries.emplace_back(node.value(), serial_now);
  });

  const sim::PartitionPlan plan(2, 2, 2);
  ASSERT_EQ(plan.num_partitions(), 2u);
  StatRegistry shard0, shard1;
  noc::Network parted(cfg, plan, {&shard0, &shard1});
  std::vector<std::pair<unsigned, Cycle>> parted_deliveries;
  Cycle parted_now{0};
  parted.set_deliver([&](NodeId node, const protocol::CoherenceMsg&) {
    parted_deliveries.emplace_back(node.value(), parted_now);
  });

  const auto msg = cross_partition_msg(0, 2);
  serial.inject(msg, 0, Bytes{8}, serial_now);
  parted.inject(msg, 0, Bytes{8}, parted_now);

  for (unsigned c = 0; c < 64 && parted_deliveries.empty(); ++c) {
    ++serial_now;
    serial.tick(serial_now);

    ++parted_now;
    parted.begin_cycle(parted_now);
    for (unsigned p = 0; p < 2; ++p) {
      parted.drain_boundary(p);
      parted.tick_partition(p, parted_now);
    }
    const Cycle published = parted.exchange_boundaries();
    // The horizon rule itself: nothing published at the end of cycle t may
    // carry a deadline at or before t, even on a 1-cycle link.
    if (published != kNeverCycle) {
      EXPECT_GT(published, parted_now);
    }
  }

  ASSERT_EQ(parted_deliveries.size(), 1u);
  ASSERT_EQ(serial_deliveries.size(), 1u);
  // Same destination, same simulated cycle: the boundary channel added
  // zero model latency, it only deferred the hand-off to the epilogue.
  EXPECT_EQ(parted_deliveries[0], serial_deliveries[0]);
  // The flit crossed strictly after its injection cycle (>= t + 1).
  EXPECT_GT(parted_deliveries[0].second, Cycle{1});

  EXPECT_TRUE(parted.boundaries_empty());
  EXPECT_TRUE(parted.quiescent_partition(0));
  EXPECT_TRUE(parted.quiescent_partition(1));
  EXPECT_TRUE(serial.quiescent());
}

// ---- Counter-map identity across thread counts ---------------------------

struct RunResult {
  std::map<std::string, std::uint64_t> counters;
  Cycle cycles{};
  std::uint64_t instructions = 0;
};

RunResult run_cmp(unsigned threads) {
  // Deliberately a non-golden (app, config) pairing — the goldens cover
  // MP3D-het, Barnes-baseline, Water-cheng and FFT-het; this pins a fresh
  // point of the space so the identity isn't an artifact of tuning to the
  // golden set.
  auto cfg = cmp::CmpConfig::cheng3way();
  cfg.threads = threads;
  cmp::CmpSystem system(
      cfg, std::make_shared<workloads::SyntheticApp>(
               workloads::app("FFT").scaled(0.02), cfg.n_tiles));
  EXPECT_TRUE(system.run(Cycle{50'000'000}));
  RunResult r;
  r.counters = system.merged_stats().counters();
  r.cycles = system.total_cycles();
  r.instructions = system.total_instructions();
  return r;
}

TEST(PartitionIdentity, CounterMapsEqualAcrossThreadCounts) {
  const RunResult one = run_cmp(1);
  const RunResult four = run_cmp(4);

  EXPECT_EQ(one.cycles, four.cycles);
  EXPECT_EQ(one.instructions, four.instructions);
  ASSERT_FALSE(one.counters.empty());

  // Full map equality — same key set, same values — not just totals. Report
  // any divergent counter by name for debuggability.
  for (const auto& [name, value] : one.counters) {
    auto it = four.counters.find(name);
    ASSERT_NE(it, four.counters.end()) << "counter missing at K=4: " << name;
    EXPECT_EQ(it->second, value) << "counter diverges at K=4: " << name;
  }
  EXPECT_EQ(one.counters.size(), four.counters.size());
}

}  // namespace
}  // namespace tcmp
