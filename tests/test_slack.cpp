// Slack/criticality telemetry: the classification table and the
// destination-unstall predicate as pure functions, the park/resolve
// bookkeeping of SlackTelemetry in isolation, and end-to-end realized-slack
// distributions on live runs of two workloads (acceptance: at least two
// class x wire cells populated, and nothing registered when no observer is
// attached — golden runs stay byte-identical).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "cmp/system.hpp"
#include "obs/observer.hpp"
#include "obs/slack.hpp"
#include "workloads/synthetic_app.hpp"

using namespace tcmp;

namespace {

std::shared_ptr<core::Workload> small_app(const std::string& name,
                                          unsigned tiles, double scale) {
  return std::make_shared<workloads::SyntheticApp>(
      workloads::app(name).scaled(scale), tiles);
}

// --- classification table ---------------------------------------------------

TEST(SlackClassify, CriticalMessagesSplitOnCoreState) {
  using protocol::MsgType;
  EXPECT_EQ(obs::classify(MsgType::kGetS, true),
            obs::CritClass::kBlockingDemand);
  EXPECT_EQ(obs::classify(MsgType::kData, true),
            obs::CritClass::kBlockingDemand);
  EXPECT_EQ(obs::classify(MsgType::kGetS, false),
            obs::CritClass::kOverlapTolerant);
  EXPECT_EQ(obs::classify(MsgType::kInvAck, false),
            obs::CritClass::kOverlapTolerant);
}

TEST(SlackClassify, ReplacementTrafficIgnoresCoreState) {
  // Fig. 4 non-critical types are kAckWriteback even if the core happens to
  // be stalled (the stall is not on them).
  using protocol::MsgType;
  for (const auto t : {MsgType::kPutE, MsgType::kPutM, MsgType::kPutAck,
                       MsgType::kRevision, MsgType::kAckRevision}) {
    EXPECT_EQ(obs::classify(t, true), obs::CritClass::kAckWriteback);
    EXPECT_EQ(obs::classify(t, false), obs::CritClass::kAckWriteback);
  }
}

TEST(SlackClassify, UnstallPredicateMatchesDeliveryTargets) {
  using protocol::MsgType;
  using protocol::Unit;
  // Replies into an L1 can end a data stall.
  EXPECT_TRUE(obs::can_unstall_dst(MsgType::kData, Unit::kL1));
  EXPECT_TRUE(obs::can_unstall_dst(MsgType::kDataExcl, Unit::kL1));
  EXPECT_TRUE(obs::can_unstall_dst(MsgType::kUpgradeAck, Unit::kL1));
  EXPECT_TRUE(obs::can_unstall_dst(MsgType::kPartialReply, Unit::kL1));
  EXPECT_TRUE(obs::can_unstall_dst(MsgType::kInvAck, Unit::kL1));
  // The ifetch reply into an L1I can end an ifetch stall.
  EXPECT_TRUE(obs::can_unstall_dst(MsgType::kData, Unit::kL1I));
  // Directory-bound traffic and commands into an L1 never end a stall at
  // their destination.
  EXPECT_FALSE(obs::can_unstall_dst(MsgType::kGetS, Unit::kDir));
  EXPECT_FALSE(obs::can_unstall_dst(MsgType::kInvAck, Unit::kDir));
  EXPECT_FALSE(obs::can_unstall_dst(MsgType::kInv, Unit::kL1));
  EXPECT_FALSE(obs::can_unstall_dst(MsgType::kFwdGetS, Unit::kL1));
  EXPECT_FALSE(obs::can_unstall_dst(MsgType::kPutAck, Unit::kL1));
}

// --- SlackTelemetry bookkeeping in isolation --------------------------------

protocol::CoherenceMsg data_reply(LineAddr line, std::uint8_t cls,
                                  std::uint8_t wire) {
  protocol::CoherenceMsg msg;
  msg.type = protocol::MsgType::kData;
  msg.dst_unit = protocol::Unit::kL1;
  msg.line = line;
  msg.slack_class = cls;
  msg.wire_class = wire;
  return msg;
}

TEST(SlackTelemetry, ParkedDeliveryResolvesAtUnstall) {
  StatRegistry stats;
  obs::SlackTelemetry slack;
  slack.init(&stats, {"VL", "B", "local"});
  ASSERT_TRUE(slack.enabled());
  EXPECT_EQ(slack.num_wire_classes(), 3u);

  const auto msg = data_reply(LineAddr{0x40}, /*cls=*/0, /*wire=*/1);
  slack.on_delivered(NodeId{3}, msg, /*parked=*/true, Cycle{100});
  EXPECT_EQ(slack.resolved(obs::CritClass::kBlockingDemand, 1), 0u);

  slack.on_unstall(NodeId{3}, LineAddr{0x40}, Cycle{112});
  EXPECT_EQ(slack.resolved(obs::CritClass::kBlockingDemand, 1), 1u);
  EXPECT_EQ(slack.nonblocking(obs::CritClass::kBlockingDemand, 1), 0u);
}

TEST(SlackTelemetry, UnparkedDeliveryCountsNonblocking) {
  StatRegistry stats;
  obs::SlackTelemetry slack;
  slack.init(&stats, {"VL", "B"});
  const auto msg = data_reply(LineAddr{0x80}, /*cls=*/2, /*wire=*/0);
  slack.on_delivered(NodeId{0}, msg, /*parked=*/false, Cycle{5});
  EXPECT_EQ(slack.nonblocking(obs::CritClass::kAckWriteback, 0), 1u);
  EXPECT_EQ(slack.resolved(obs::CritClass::kAckWriteback, 0), 0u);
}

TEST(SlackTelemetry, FinalizeFlushesStillParkedDeliveries) {
  // A run that ends before the core unstalls must still account every
  // delivery exactly once: finalize() moves parked entries to nonblocking.
  StatRegistry stats;
  obs::SlackTelemetry slack;
  slack.init(&stats, {"VL", "B"});
  slack.on_delivered(NodeId{1}, data_reply(LineAddr{0xC0}, 1, 1),
                     /*parked=*/true, Cycle{50});
  EXPECT_EQ(slack.nonblocking(obs::CritClass::kOverlapTolerant, 1), 0u);
  slack.finalize();
  EXPECT_EQ(slack.nonblocking(obs::CritClass::kOverlapTolerant, 1), 1u);
  EXPECT_EQ(slack.resolved(obs::CritClass::kOverlapTolerant, 1), 0u);
}

TEST(SlackTelemetry, MultipleConstituentsOfOneMissAllResolve) {
  // A write miss can park several in-flight constituents under the same
  // (tile, line) key — DataExcl plus early InvAcks; one unstall resolves all.
  StatRegistry stats;
  obs::SlackTelemetry slack;
  slack.init(&stats, {"VL", "B"});
  slack.on_delivered(NodeId{2}, data_reply(LineAddr{0x100}, 0, 0),
                     /*parked=*/true, Cycle{10});
  auto ack = data_reply(LineAddr{0x100}, 1, 1);
  ack.type = protocol::MsgType::kInvAck;
  slack.on_delivered(NodeId{2}, ack, /*parked=*/true, Cycle{14});
  slack.on_unstall(NodeId{2}, LineAddr{0x100}, Cycle{20});
  EXPECT_EQ(slack.resolved(obs::CritClass::kBlockingDemand, 0), 1u);
  EXPECT_EQ(slack.resolved(obs::CritClass::kOverlapTolerant, 1), 1u);
}

// --- end-to-end on live runs ------------------------------------------------

void expect_slack_populated(const std::string& app) {
  const auto cfg =
      cmp::CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2));
  obs::ObsConfig ocfg;
  ocfg.level = obs::Level::kTimeseries;
  cmp::CmpSystem system(cfg, small_app(app, cfg.n_tiles, 0.05));
  obs::Observer observer(ocfg, &system.stats());
  system.attach_observer(&observer);
  ASSERT_TRUE(system.run(Cycle{50'000'000}));
  observer.finalize(system.total_cycles());

  const obs::SlackTelemetry& slack = observer.slack();
  ASSERT_TRUE(slack.enabled());
  // Heterogeneous mesh channels plus the "local" pseudo-wire.
  EXPECT_EQ(slack.num_wire_classes(), system.network().num_channels() + 1);

  unsigned populated = 0;
  std::uint64_t resolved = 0;
  std::uint64_t nonblocking = 0;
  for (unsigned c = 0; c < obs::kNumCritClasses; ++c) {
    for (unsigned w = 0; w < slack.num_wire_classes(); ++w) {
      const auto cls = static_cast<obs::CritClass>(c);
      resolved += slack.resolved(cls, w);
      nonblocking += slack.nonblocking(cls, w);
      if (slack.resolved(cls, w) + slack.nonblocking(cls, w) > 0) ++populated;
    }
  }
  // Distributions span multiple class x wire cells, with both realized-slack
  // samples and nonblocking deliveries present.
  EXPECT_GE(populated, 2u) << app;
  EXPECT_GT(resolved, 0u) << app;
  EXPECT_GT(nonblocking, 0u) << app;

  // The report table names every populated cell.
  std::ostringstream table;
  slack.write_table(table);
  EXPECT_NE(table.str().find("blocking"), std::string::npos);

  // The distributions landed in the StatRegistry under the "slack." prefix
  // (and are therefore exported by the canonical metrics plane).
  bool saw_stat = false;
  for (const auto& [name, hist] : system.stats().histograms()) {
    saw_stat |= name.rfind("slack.", 0) == 0 && hist.scalar().count() > 0;
  }
  EXPECT_TRUE(saw_stat) << app;
}

TEST(SlackEndToEnd, Mp3dDistributionsPopulated) {
  expect_slack_populated("MP3D");
}

TEST(SlackEndToEnd, BarnesDistributionsPopulated) {
  expect_slack_populated("Barnes");
}

TEST(SlackEndToEnd, NoObserverRegistersNoSlackStats) {
  // Golden byte-identity depends on unobserved runs never touching the
  // slack plane: no stats registered, telemetry never enabled.
  const auto cfg =
      cmp::CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2));
  cmp::CmpSystem system(cfg, small_app("MP3D", cfg.n_tiles, 0.02));
  ASSERT_TRUE(system.run(Cycle{50'000'000}));
  for (const auto& [name, hist] : system.stats().histograms()) {
    EXPECT_NE(name.rfind("slack.", 0), 0u) << name;
  }
}

}  // namespace
