// Event-scheduled kernel tests: wake-calendar ordering/coalescing and lazy
// stale drain, next_wake clamping and hot-component early exit, the
// ScheduledEvent adapter, and system-level guarantees — a sleepy core's next
// wake is exactly its fill deadline, and dead-cycle skipping is bit-identical
// to the per-cycle loop.
#include <gtest/gtest.h>

#include <memory>

#include "cmp/system.hpp"
#include "sim/kernel.hpp"
#include "sim/scheduled.hpp"
#include "workloads/synthetic_app.hpp"

namespace tcmp::sim {
namespace {

/// Mock component with a settable next event; counts next_event() calls so
/// tests can observe the kernel's scan early-exit.
class MockScheduled final : public Scheduled {
 public:
  explicit MockScheduled(Cycle next, bool quiet = true)
      : next_(next), quiet_(quiet) {}
  [[nodiscard]] Cycle next_event() const override {
    ++calls_;
    return next_;
  }
  [[nodiscard]] bool quiescent() const override { return quiet_; }
  void set_next(Cycle next) { next_ = next; }
  void set_quiescent(bool q) { quiet_ = q; }
  [[nodiscard]] unsigned calls() const { return calls_; }

 private:
  Cycle next_;
  bool quiet_;
  mutable unsigned calls_ = 0;
};

TEST(SimKernel, EmptyKernelIsDeadAndQuiescent) {
  SimKernel kernel;
  EXPECT_EQ(kernel.next_wake(Cycle{0}), kNeverCycle);
  EXPECT_TRUE(kernel.quiescent());
}

TEST(SimKernel, CalendarReturnsWakesInOrder) {
  SimKernel kernel;
  kernel.wake(Cycle{20});
  kernel.wake(Cycle{5});
  kernel.wake(Cycle{10});
  EXPECT_EQ(kernel.next_wake(Cycle{0}), Cycle{5});
  EXPECT_EQ(kernel.next_wake(Cycle{5}), Cycle{10});
  EXPECT_EQ(kernel.next_wake(Cycle{10}), Cycle{20});
  EXPECT_EQ(kernel.next_wake(Cycle{20}), kNeverCycle);
}

TEST(SimKernel, CalendarDrainsStaleEntriesLazily) {
  SimKernel kernel;
  kernel.wake(Cycle{3});
  kernel.wake(Cycle{4});
  kernel.wake(Cycle{50});
  EXPECT_EQ(kernel.calendar_size(), 3u);
  // Entries at or before `now` are already satisfied: dropped on query.
  EXPECT_EQ(kernel.next_wake(Cycle{10}), Cycle{50});
  EXPECT_EQ(kernel.calendar_size(), 1u);
}

TEST(SimKernel, CalendarCoalescesDuplicateTop) {
  SimKernel kernel;
  kernel.wake(Cycle{7});
  kernel.wake(Cycle{7});
  kernel.wake(Cycle{7});
  EXPECT_EQ(kernel.calendar_size(), 1u);
  // A different top defeats the cheap coalescing — both entries stay, and
  // both resolve correctly.
  kernel.wake(Cycle{5});
  kernel.wake(Cycle{7});
  EXPECT_EQ(kernel.calendar_size(), 3u);
  EXPECT_EQ(kernel.next_wake(Cycle{0}), Cycle{5});
  EXPECT_EQ(kernel.next_wake(Cycle{6}), Cycle{7});
}

TEST(SimKernel, ClampsPastComponentEventsToNextCycle) {
  SimKernel kernel;
  MockScheduled hot(kEveryCycle);
  kernel.add_component(&hot);
  EXPECT_EQ(kernel.next_wake(Cycle{100}), Cycle{101});
  hot.set_next(Cycle{50});  // stale (<= now): still means "act now"
  EXPECT_EQ(kernel.next_wake(Cycle{100}), Cycle{101});
  hot.set_next(Cycle{101});  // exactly next cycle
  EXPECT_EQ(kernel.next_wake(Cycle{100}), Cycle{101});
}

TEST(SimKernel, TakesMinOverComponentsAndCalendar) {
  SimKernel kernel;
  MockScheduled a(Cycle{40});
  MockScheduled b(Cycle{30});
  kernel.add_component(&a);
  kernel.add_component(&b);
  EXPECT_EQ(kernel.next_wake(Cycle{10}), Cycle{30});
  kernel.wake(Cycle{25});
  EXPECT_EQ(kernel.next_wake(Cycle{10}), Cycle{25});
  b.set_next(kNeverCycle);
  EXPECT_EQ(kernel.next_wake(Cycle{26}), Cycle{40});
}

TEST(SimKernel, HotComponentShortCircuitsTheScan) {
  SimKernel kernel;
  MockScheduled first(kEveryCycle);
  MockScheduled second(Cycle{500});
  kernel.add_component(&first);
  kernel.add_component(&second);
  EXPECT_EQ(kernel.next_wake(Cycle{0}), Cycle{1});
  EXPECT_EQ(first.calls(), 1u);
  EXPECT_EQ(second.calls(), 0u);  // registration order = scan priority
  // An imminent calendar wake short-circuits even the first component.
  kernel.wake(Cycle{2});
  EXPECT_EQ(kernel.next_wake(Cycle{1}), Cycle{2});
  EXPECT_EQ(first.calls(), 1u);
}

TEST(SimKernel, QuiescentNeedsAllComponentsQuietAndEmptyCalendar) {
  SimKernel kernel;
  MockScheduled quiet(kNeverCycle, /*quiet=*/true);
  MockScheduled busy(kNeverCycle, /*quiet=*/false);
  kernel.add_component(&quiet);
  EXPECT_TRUE(kernel.quiescent());
  kernel.wake(Cycle{5});
  EXPECT_FALSE(kernel.quiescent());  // outstanding wake = in-flight work
  EXPECT_EQ(kernel.next_wake(Cycle{5}), kNeverCycle);
  EXPECT_TRUE(kernel.quiescent());  // drained lazily by the query
  kernel.add_component(&busy);
  EXPECT_FALSE(kernel.quiescent());
}

TEST(SimKernel, ScheduledEventAdapterForwardsToFunction) {
  Cycle due{123};
  auto next = [&due] { return due; };
  ScheduledEvent<decltype(next)> event(next);
  SimKernel kernel;
  kernel.add_component(&event);
  EXPECT_EQ(kernel.next_wake(Cycle{0}), Cycle{123});
  due = Cycle{456};
  EXPECT_EQ(kernel.next_wake(Cycle{200}), Cycle{456});
  EXPECT_TRUE(event.quiescent());
}

/// Core 0 issues one remote load then finishes; every other core is done
/// from the start. The cleanest possible "sleepy core" machine: after the
/// miss goes out, nothing in the system has work until the fill deadline.
class SingleLoadWorkload final : public core::Workload {
 public:
  core::Op next(unsigned core) override {
    if (core != 0 || issued_) return core::Op::done();
    issued_ = true;
    return core::Op::load(LineAddr{1});  // home = tile 1: a remote miss
  }
  [[nodiscard]] std::string name() const override { return "single-load"; }

 private:
  bool issued_ = false;
};

TEST(EventKernelSystem, SleepyCoreWakesExactlyAtFillDeadline) {
  cmp::CmpSystem system(cmp::CmpConfig::baseline(),
                        std::make_shared<SingleLoadWorkload>());
  // Step until the machine goes deeply dead: core 0 blocked on a miss whose
  // home directory is waiting on the 400-cycle memory pipe. (Shorter dead
  // gaps — link flights, the L2 access pipe — come first; skip past those.)
  Cycle nxt{0};
  for (unsigned i = 0; i < 1000; ++i) {
    system.step();
    nxt = system.kernel().next_wake(system.total_cycles());
    if (nxt > system.total_cycles() + 100) break;
  }
  ASSERT_GT(nxt, system.total_cycles() + 100) << "machine never went dead";
  EXPECT_TRUE(system.core(0).blocked());
  // The next wake is exactly the earliest directory pipeline deadline — the
  // memory fill feeding the sleepy core — not a cycle earlier or later.
  Cycle fill_deadline = kNeverCycle;
  for (unsigned t = 0; t < 16; ++t) {
    fill_deadline = std::min(fill_deadline, system.directory(t).next_event());
  }
  EXPECT_EQ(nxt, fill_deadline);
  ASSERT_NE(fill_deadline, kNeverCycle);

  // Skipping across the dead span reaches the same completion cycle as the
  // per-cycle loop.
  cmp::CmpSystem percycle(cmp::CmpConfig::baseline(),
                          std::make_shared<SingleLoadWorkload>());
  for (unsigned i = 0; i < 100'000 && !percycle.finished(); ++i) percycle.step();
  ASSERT_TRUE(percycle.finished());
  ASSERT_TRUE(system.run(Cycle{100'000}));
  EXPECT_EQ(system.total_cycles(), percycle.total_cycles());
  EXPECT_EQ(system.total_instructions(), percycle.total_instructions());
}

TEST(EventKernelSystem, DeadCycleSkippingIsBitIdentical) {
  const auto params = workloads::app("MP3D").scaled(0.05);
  auto run_mode = [&](bool skipping) {
    cmp::CmpSystem system(
        cmp::CmpConfig::baseline(),
        std::make_shared<workloads::SyntheticApp>(params, 16));
    system.set_dead_cycle_skipping(skipping);
    EXPECT_TRUE(system.run(Cycle{200'000'000}));
    return std::make_tuple(system.total_cycles(), system.total_instructions(),
                           system.stats().counters());
  };
  const auto event = run_mode(true);
  const auto loop = run_mode(false);
  EXPECT_EQ(std::get<0>(event), std::get<0>(loop));
  EXPECT_EQ(std::get<1>(event), std::get<1>(loop));
  // Every counter in the registry matches exactly — including the blocked-
  // cycle accounting that advance_idle bulk-replicates.
  EXPECT_EQ(std::get<2>(event), std::get<2>(loop));
}

}  // namespace
}  // namespace tcmp::sim
