// SMARTS-style interval sampling (docs/checkpointing.md): spec parsing, the
// functional/detailed handoff's conservation laws — a sampled run consumes
// exactly the instruction stream the full-detail run retires — and the
// statistical outputs (per-window CPI confidence interval, extrapolated
// registry). Accuracy against the full run is asserted loosely here (the
// committed tolerance lives in the perf-smoke gate, bench/BENCH_sampling.json);
// what must hold tightly is determinism and instruction-count identity.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "cmp/config.hpp"
#include "cmp/report.hpp"
#include "cmp/sampling.hpp"
#include "cmp/system.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "workloads/synthetic_app.hpp"

namespace tcmp {
namespace {

// ---- spec parsing --------------------------------------------------------

TEST(SamplingConfig, ParsesFullSpec) {
  const auto cfg =
      cmp::SamplingConfig::parse("mode=interval,warmup=1000,detail=5000,period=100000");
  EXPECT_EQ(cfg.warmup, Cycle{1000});
  EXPECT_EQ(cfg.detail, 5000u);
  EXPECT_EQ(cfg.period, 100'000u);
}

TEST(SamplingConfig, DefaultsAndPartialSpecs) {
  const auto dflt = cmp::SamplingConfig::parse("mode=interval");
  EXPECT_EQ(dflt.warmup, Cycle{2000});
  EXPECT_EQ(dflt.detail, 10'000u);
  EXPECT_EQ(dflt.period, 200'000u);
  // mode= is optional; single-key overrides keep the other defaults.
  const auto p = cmp::SamplingConfig::parse("period=50000");
  EXPECT_EQ(p.period, 50'000u);
  EXPECT_EQ(p.detail, 10'000u);
}

TEST(SamplingConfigDeathTest, RejectsBadSpecs) {
  EXPECT_DEATH(cmp::SamplingConfig::parse("mode=reservoir"), "mode");
  EXPECT_DEATH(cmp::SamplingConfig::parse("interval=5"), "unknown");
  EXPECT_DEATH(cmp::SamplingConfig::parse("warmup=abc"), "");
  EXPECT_DEATH(cmp::SamplingConfig::parse("detail=0"), "");
}

// ---- sampled execution ---------------------------------------------------

std::shared_ptr<workloads::SyntheticApp> fft_small(unsigned n_tiles) {
  return std::make_shared<workloads::SyntheticApp>(
      workloads::app("FFT").scaled(0.02), n_tiles);
}

cmp::SamplingConfig test_sampling() {
  // Small windows and a short period so the tiny test workload still yields
  // a healthy number of windows (detail is instructions per core).
  cmp::SamplingConfig s;
  s.warmup = Cycle{200};
  s.detail = 300;
  s.period = 1'200;
  return s;
}

TEST(SampledRun, ConservesTheInstructionStream) {
  const auto cfg = cmp::CmpConfig::cheng3way();

  cmp::CmpSystem full(cfg, fft_small(cfg.n_tiles));
  ASSERT_TRUE(full.run(Cycle{50'000'000}));

  cmp::CmpSystem sys(cfg, fft_small(cfg.n_tiles));
  cmp::SampledRun run(sys, test_sampling());
  ASSERT_TRUE(run.run());
  const cmp::SamplingResult& r = run.result();

  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.windows, 0u);
  EXPECT_GT(r.functional_instructions, 0u);  // it actually fast-forwarded
  // Conservation: detailed + functional consumption == what the full-detail
  // run retires in its measured phase. Exact, not approximate — both sides
  // walk the same deterministic op stream.
  EXPECT_EQ(r.total_instructions, full.measured_instructions());
  // The measured windows saw only a fraction of it.
  EXPECT_LT(r.detailed_instructions, r.total_instructions);
  EXPECT_GE(r.extrapolation, 1.0);

  // Loose accuracy envelope: the extrapolated cycle estimate lands within
  // 50% of the true measured-phase cycle count (the CI bench pins the real
  // tolerance; this guards against order-of-magnitude breakage).
  const double truth = static_cast<double>(full.cycles().value());
  const double est = static_cast<double>(r.estimated_cycles.value());
  EXPECT_GT(est, truth * 0.5);
  EXPECT_LT(est, truth * 1.5);
  EXPECT_GT(r.cpi, 0.0);
  EXPECT_GE(r.cpi_ci95, 0.0);
}

TEST(SampledRun, IsDeterministic) {
  const auto cfg = cmp::CmpConfig::cheng3way();
  cmp::SamplingResult results[2];
  std::map<std::string, std::uint64_t> counters[2];
  for (int i = 0; i < 2; ++i) {
    cmp::CmpSystem sys(cfg, fft_small(cfg.n_tiles));
    cmp::SampledRun run(sys, test_sampling());
    ASSERT_TRUE(run.run());
    results[i] = run.result();
    counters[i] = run.scaled_stats().counters();
  }
  EXPECT_EQ(results[0].windows, results[1].windows);
  EXPECT_EQ(results[0].detailed_cycles, results[1].detailed_cycles);
  EXPECT_EQ(results[0].total_instructions, results[1].total_instructions);
  EXPECT_EQ(results[0].estimated_cycles, results[1].estimated_cycles);
  EXPECT_EQ(counters[0], counters[1]);
}

TEST(SampledRun, ScaledRegistryMultipliesCountersOnly) {
  const auto cfg = cmp::CmpConfig::cheng3way();
  cmp::CmpSystem sys(cfg, fft_small(cfg.n_tiles));
  cmp::SampledRun run(sys, test_sampling());
  ASSERT_TRUE(run.run());
  const double x = run.result().extrapolation;
  ASSERT_GE(x, 1.0);

  const auto& window = run.window_stats().counters();
  const auto scaled = run.scaled_stats().counters();
  ASSERT_FALSE(window.empty());
  ASSERT_EQ(window.size(), scaled.size());
  for (const auto& [name, v] : window) {
    const auto it = scaled.find(name);
    ASSERT_NE(it, scaled.end()) << name;
    EXPECT_EQ(it->second,
              static_cast<std::uint64_t>(
                  std::llround(static_cast<double>(v) * x)))
        << name;
  }
}

TEST(SampledRun, MakesAPaperResult) {
  const auto cfg = cmp::CmpConfig::cheng3way();
  cmp::CmpSystem sys(cfg, fft_small(cfg.n_tiles));
  cmp::SampledRun run(sys, test_sampling());
  ASSERT_TRUE(run.run());
  const cmp::RunResult r = cmp::make_sampled_result(sys, run);
  EXPECT_EQ(r.cycles, run.result().estimated_cycles);
  EXPECT_EQ(r.instructions, run.result().total_instructions);
  EXPECT_GT(r.total_energy().value(), 0.0);
}

TEST(SampledRunDeathTest, RequiresSingleThreadedSystem) {
  auto cfg = cmp::CmpConfig::cheng3way();
  cfg.threads = 4;
  cmp::CmpSystem sys(cfg, fft_small(cfg.n_tiles));
  EXPECT_DEATH(cmp::SampledRun(sys, test_sampling()), "");
}

}  // namespace
}  // namespace tcmp
