// Unit + property tests for the address compression schemes. The central
// invariant: for ANY interleaving of destinations and addresses, running the
// receiver in sender order reconstructs exactly the original address.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "compression/compressor.hpp"
#include "compression/dbrc.hpp"
#include "compression/hw_cost.hpp"
#include "compression/scheme.hpp"
#include "compression/stride.hpp"
#include "compression/trivial.hpp"

namespace tcmp::compression {
namespace {

constexpr unsigned kNodes = 16;

TEST(SchemeConfig, NamesMatchPaperSpelling) {
  EXPECT_EQ(SchemeConfig::dbrc(4, 2).name(), "4-entry DBRC (2B LO)");
  EXPECT_EQ(SchemeConfig::dbrc(16, 1).name(), "16-entry DBRC (1B LO)");
  EXPECT_EQ(SchemeConfig::stride(2).name(), "2-byte Stride");
  EXPECT_EQ(SchemeConfig::perfect(3).name(), "Perfect (3B VL)");
}

TEST(SchemeConfig, VlWidthMatchesPaperSection43) {
  // "from 11 bytes to 4-5 bytes depending on the size of the uncompressed
  // low order bits" — 1B LO -> 4B VL, 2B LO -> 5B VL, perfect -> 3B VL.
  EXPECT_EQ(SchemeConfig::dbrc(16, 1).vl_width_bytes(), 4u);
  EXPECT_EQ(SchemeConfig::dbrc(4, 2).vl_width_bytes(), 5u);
  EXPECT_EQ(SchemeConfig::stride(2).vl_width_bytes(), 5u);
  EXPECT_EQ(SchemeConfig::perfect(3).vl_width_bytes(), 3u);
  EXPECT_EQ(SchemeConfig::perfect(4).vl_width_bytes(), 4u);
  EXPECT_EQ(SchemeConfig::perfect(5).vl_width_bytes(), 5u);
}

// --- Stride ---

TEST(Stride, FirstMessageIsUncompressed) {
  StrideSender s(2, kNodes);
  const Encoding e = s.compress(NodeId{3}, LineAddr{0x1000});
  EXPECT_FALSE(e.compressed);
  EXPECT_TRUE(e.install);
}

TEST(Stride, SmallDeltaCompresses) {
  StrideSender s(2, kNodes);
  s.compress(NodeId{3}, LineAddr{0x1000});
  const Encoding e = s.compress(NodeId{3}, LineAddr{0x1010});
  EXPECT_TRUE(e.compressed);
  EXPECT_EQ(s.hits(), 1u);
}

TEST(Stride, NegativeDeltaCompresses) {
  StrideSender s(2, kNodes);
  StrideReceiver r(2, kNodes);
  r.decode(NodeId{0}, s.compress(NodeId{0}, LineAddr{0x1000}), LineAddr{0x1000});
  const Encoding e = s.compress(NodeId{0}, LineAddr{0x0FF0});
  ASSERT_TRUE(e.compressed);
  EXPECT_EQ(r.decode(NodeId{0}, e, LineAddr{}), LineAddr{0x0FF0});
}

TEST(Stride, LargeDeltaFallsBack) {
  StrideSender s(1, kNodes);
  s.compress(NodeId{0}, LineAddr{0x1000});
  // > 127: misses the 1-byte window
  const Encoding e = s.compress(NodeId{0}, LineAddr{0x1000 + 200});
  EXPECT_FALSE(e.compressed);
}

TEST(Stride, BaseIsPerDestination) {
  StrideSender s(2, kNodes);
  s.compress(NodeId{0}, LineAddr{0x1000});
  s.compress(NodeId{1}, LineAddr{0x900000});
  // Destination 0's base is still 0x1000.
  EXPECT_TRUE(s.compress(NodeId{0}, LineAddr{0x1001}).compressed);
}

TEST(Stride, FitsBoundaries) {
  EXPECT_TRUE(StrideSender::fits(127, 1));
  EXPECT_FALSE(StrideSender::fits(128, 1));
  EXPECT_TRUE(StrideSender::fits(-128, 1));
  EXPECT_FALSE(StrideSender::fits(-129, 1));
  EXPECT_TRUE(StrideSender::fits(32767, 2));
  EXPECT_FALSE(StrideSender::fits(32768, 2));
  EXPECT_TRUE(StrideSender::fits(-32768, 2));
  EXPECT_FALSE(StrideSender::fits(-32769, 2));
}

// --- DBRC ---

TEST(Dbrc, FirstAccessInstallsThenHits) {
  DbrcSender s(4, 2, kNodes);
  const Encoding first = s.compress(NodeId{5}, LineAddr{0xABCD1234});
  EXPECT_FALSE(first.compressed);
  EXPECT_TRUE(first.install);
  // Same high-order region:
  const Encoding second = s.compress(NodeId{5}, LineAddr{0xABCD1235});
  EXPECT_TRUE(second.compressed);
  EXPECT_EQ(second.index, first.index);
}

TEST(Dbrc, IdealizedMirrorsCompressAcrossDestinations) {
  DbrcSender s(4, 2, kNodes, /*idealized_mirrors=*/true);
  s.compress(NodeId{5}, LineAddr{0xABCD1234});
  // Same region, new destination: with synchronized mirrors the hit
  // compresses immediately.
  EXPECT_TRUE(s.compress(NodeId{6}, LineAddr{0xABCD1234}).compressed);
}

TEST(Dbrc, EntryIsSharedButDestValidIsNot) {
  DbrcSender s(4, 2, kNodes, /*idealized_mirrors=*/false);
  s.compress(NodeId{5}, LineAddr{0xABCD1234});
  // Same region, new destination: entry exists but dest 6 must be installed.
  const Encoding e = s.compress(NodeId{6}, LineAddr{0xABCD1234});
  EXPECT_FALSE(e.compressed);
  EXPECT_TRUE(e.install);
  // Now both destinations hit.
  EXPECT_TRUE(s.compress(NodeId{5}, LineAddr{0xABCD0001}).compressed);
  EXPECT_TRUE(s.compress(NodeId{6}, LineAddr{0xABCD0002}).compressed);
}

TEST(Dbrc, LruEviction) {
  DbrcSender s(2, 2, kNodes);
  s.compress(NodeId{0}, LineAddr{0x0A0000});  // region A -> entry 0
  s.compress(NodeId{0}, LineAddr{0x0B0000});  // region B -> entry 1
  s.compress(NodeId{0}, LineAddr{0x0A0001});  // touch A (B becomes LRU)
  s.compress(NodeId{0}, LineAddr{0x0C0000});  // region C evicts B
  // A still resident:
  EXPECT_TRUE(s.compress(NodeId{0}, LineAddr{0x0A0002}).compressed);
  // B was evicted:
  EXPECT_FALSE(s.compress(NodeId{0}, LineAddr{0x0B0001}).compressed);
}

TEST(Dbrc, ReceiverReconstructsCompressedAddress) {
  DbrcSender s(4, 1, kNodes);
  DbrcReceiver r(4, 1, kNodes);
  const LineAddr a1{0x123456};
  const LineAddr a2{0x123478};
  // Install (sender node 2 -> receiver 7):
  r.decode(NodeId{2}, s.compress(NodeId{7}, a1), a1);
  const Encoding e = s.compress(NodeId{7}, a2);
  ASSERT_TRUE(e.compressed);
  EXPECT_EQ(r.decode(NodeId{2}, e, LineAddr{}), a2);
}

TEST(Dbrc, CoverageIsHighForClusteredStream) {
  DbrcSender s(4, 2, kNodes);
  Rng rng(1);
  // Addresses clustered in 2 regions of 64K lines each: near-perfect coverage
  // after warmup with 4 entries.
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t base = rng.chance(0.5) ? 0x10000000 : 0x20000000;
    s.compress(static_cast<NodeId>(rng.next_below(kNodes)),
               LineAddr{base + rng.next_below(65536)});
  }
  const double coverage =
      static_cast<double>(s.hits()) / static_cast<double>(s.hits() + s.misses());
  EXPECT_GT(coverage, 0.95);
}

TEST(Dbrc, CoverageIsLowForScatteredStreamWithSmallCache) {
  DbrcSender s(4, 1, kNodes);
  Rng rng(2);
  // Addresses scattered over 1M lines: 4 entries x 256-line regions can't keep up.
  for (int i = 0; i < 10000; ++i) {
    s.compress(static_cast<NodeId>(rng.next_below(kNodes)),
               LineAddr{rng.next_below(1 << 20)});
  }
  const double coverage =
      static_cast<double>(s.hits()) / static_cast<double>(s.hits() + s.misses());
  EXPECT_LT(coverage, 0.30);
}

// --- Round-trip property over every scheme ---

struct RoundTripCase {
  SchemeConfig cfg;
  std::uint64_t seed;
};

class RoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(RoundTrip, ReceiverAlwaysReconstructsSenderAddress) {
  const auto& [cfg, seed] = GetParam();
  // One sender; one decompressor per destination tile, each observing only
  // the messages addressed to it — exactly the real network-interface setup.
  CompressorPair first = make_compressor(cfg, kNodes);
  auto& sender = *first.sender;
  std::vector<std::unique_ptr<ReceiverDecompressor>> receivers;
  receivers.push_back(std::move(first.receiver));
  for (unsigned i = 1; i < kNodes; ++i)
    receivers.push_back(make_compressor(cfg, kNodes).receiver);

  Rng rng(seed);
  const NodeId self{3};  // sender identity as seen by receivers
  for (int i = 0; i < 20000; ++i) {
    const auto dst = static_cast<NodeId>(rng.next_below(kNodes));
    // Mix clustered and scattered addresses, plus occasional extremes.
    LineAddr line;
    switch (rng.next_below(4)) {
      case 0: line = LineAddr{0x40000000 + rng.next_below(4096)}; break;
      case 1: line = LineAddr{rng.next_below(std::uint64_t{1} << 32)}; break;
      case 2: line = LineAddr{0x7FFFFFFFFFFFFFull - rng.next_below(128)}; break;
      default: line = LineAddr{rng.next_below(256)}; break;
    }
    const Encoding enc = sender.compress(dst, line);
    const LineAddr decoded = receivers[dst]->decode(self, enc, line);
    ASSERT_EQ(decoded, line) << cfg.name() << " iteration " << i;
  }
}

// Conservative (non-idealized) DBRC: the mode whose mirror state must truly
// round-trip point-to-point.
SchemeConfig conservative_dbrc(unsigned entries, unsigned low_bytes) {
  SchemeConfig cfg = SchemeConfig::dbrc(entries, low_bytes);
  cfg.idealized_mirrors = false;
  return cfg;
}

INSTANTIATE_TEST_SUITE_P(
    ConservativeDbrc, RoundTrip,
    ::testing::Values(RoundTripCase{conservative_dbrc(4, 1), 31},
                      RoundTripCase{conservative_dbrc(4, 2), 32},
                      RoundTripCase{conservative_dbrc(16, 1), 33},
                      RoundTripCase{conservative_dbrc(16, 2), 34},
                      RoundTripCase{conservative_dbrc(64, 1), 35},
                      RoundTripCase{conservative_dbrc(64, 2), 36}));

INSTANTIATE_TEST_SUITE_P(
    Schemes, RoundTrip,
    ::testing::Values(RoundTripCase{SchemeConfig::stride(1), 11},
                      RoundTripCase{SchemeConfig::stride(2), 12},
                      RoundTripCase{SchemeConfig::dbrc(4, 1), 13},
                      RoundTripCase{SchemeConfig::dbrc(4, 2), 14},
                      RoundTripCase{SchemeConfig::dbrc(16, 1), 15},
                      RoundTripCase{SchemeConfig::dbrc(16, 2), 16},
                      RoundTripCase{SchemeConfig::dbrc(64, 1), 17},
                      RoundTripCase{SchemeConfig::dbrc(64, 2), 18},
                      RoundTripCase{SchemeConfig::perfect(3), 19},
                      RoundTripCase{SchemeConfig::none(), 20}));

// A single receiver instance must track many senders independently.
TEST(RoundTrip, MultipleSendersThroughOneReceiver) {
  const SchemeConfig cfg = SchemeConfig::dbrc(4, 2);
  std::vector<std::unique_ptr<SenderCompressor>> senders;
  auto pair = make_compressor(cfg, kNodes);
  auto& receiver = *pair.receiver;
  senders.push_back(std::move(pair.sender));
  for (unsigned i = 1; i < kNodes; ++i)
    senders.push_back(make_compressor(cfg, kNodes).sender);

  Rng rng(99);
  for (int i = 0; i < 30000; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(kNodes));
    const LineAddr line{(std::uint64_t{src} << 24) + rng.next_below(1 << 18)};
    const Encoding enc = senders[src]->compress(/*dst=*/NodeId{0}, line);
    ASSERT_EQ(receiver.decode(src, enc, line), line);
  }
}

// --- hardware cost ---

TEST(HwCost, StorageMatchesTable1SizeColumn) {
  EXPECT_EQ(scheme_hw_cost(SchemeConfig::dbrc(4, 2), kNodes).storage_bytes_per_core,
            1088u);
  EXPECT_EQ(scheme_hw_cost(SchemeConfig::dbrc(16, 2), kNodes).storage_bytes_per_core,
            4352u);
  EXPECT_EQ(scheme_hw_cost(SchemeConfig::dbrc(64, 2), kNodes).storage_bytes_per_core,
            17408u);
  EXPECT_EQ(scheme_hw_cost(SchemeConfig::stride(2), kNodes).storage_bytes_per_core,
            272u);
}

TEST(HwCost, AreaMatchesTable1) {
  const auto dbrc4 = scheme_hw_cost(SchemeConfig::dbrc(4, 2), kNodes);
  EXPECT_NEAR(units::to_mm2(dbrc4.area_per_core), 0.0723, 0.0723 * 0.05);
  const auto stride = scheme_hw_cost(SchemeConfig::stride(2), kNodes);
  EXPECT_NEAR(units::to_mm2(stride.area_per_core), 0.0257, 0.0257 * 0.05);
}

TEST(HwCost, PerfectAndNoneAreFree) {
  EXPECT_EQ(scheme_hw_cost(SchemeConfig::perfect(3), kNodes).area_per_core.value(),
            0.0);
  EXPECT_EQ(scheme_hw_cost(SchemeConfig::none(), kNodes).area_per_core.value(), 0.0);
}

TEST(HwCost, AccessCountersAdvance) {
  auto pair = make_compressor(SchemeConfig::dbrc(4, 2), kNodes);
  pair.sender->compress(NodeId{0}, LineAddr{0x100});
  pair.sender->compress(NodeId{0}, LineAddr{0x101});
  EXPECT_EQ(pair.sender->accesses().lookups, 2u);
  EXPECT_GE(pair.sender->accesses().updates, 1u);
}

}  // namespace
}  // namespace tcmp::compression
