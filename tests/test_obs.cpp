// Observability subsystem: trace-writer invariants, end-to-end Chrome-trace
// structural validity, and the time-series accounting invariant (measured
// window deltas sum to the final counters).
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cmp/report.hpp"
#include "cmp/system.hpp"
#include "obs/observer.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "workloads/synthetic_app.hpp"

using namespace tcmp;

namespace {

// --- minimal line-oriented parser for the writer's one-event-per-line JSON ---

struct ParsedEvent {
  char ph = '?';
  std::string cat;
  std::string name;
  std::uint64_t id = 0;
  long long ts = -1;  ///< -1 when the event carries no timestamp
};

std::string field(const std::string& line, const std::string& key) {
  const std::string probe = "\"" + key + "\":";
  const auto pos = line.find(probe);
  if (pos == std::string::npos) return {};
  auto start = pos + probe.size();
  if (line[start] == '"') {
    ++start;
    return line.substr(start, line.find('"', start) - start);
  }
  auto end = start;
  while (end < line.size() && (std::isdigit(line[end]) || line[end] == '-')) ++end;
  return line.substr(start, end - start);
}

std::vector<ParsedEvent> parse_trace(const std::string& json,
                                     std::string* first_line) {
  std::istringstream in(json);
  std::string line;
  std::vector<ParsedEvent> events;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {
      *first_line = line;
      first = false;
      continue;
    }
    if (line.empty() || line[0] != '{') continue;
    ParsedEvent e;
    const std::string ph = field(line, "ph");
    e.ph = ph.empty() ? '?' : ph[0];
    e.cat = field(line, "cat");
    e.name = field(line, "name");
    const std::string id = field(line, "id");
    if (!id.empty()) e.id = std::stoull(id);
    const std::string ts = field(line, "ts");
    if (!ts.empty()) e.ts = std::stoll(ts);
    events.push_back(std::move(e));
  }
  return events;
}

std::shared_ptr<core::Workload> small_app(const std::string& name,
                                          unsigned tiles, double scale) {
  return std::make_shared<workloads::SyntheticApp>(
      workloads::app(name).scaled(scale), tiles);
}

}  // namespace

TEST(TraceWriter, CapCountsDropsButForceBypasses) {
  obs::TraceWriter w(/*max_events=*/2);
  obs::TraceEvent open;
  open.ph = 'b';
  open.cat = "c";
  open.id = 1;
  EXPECT_TRUE(w.add(open));
  EXPECT_TRUE(w.add(open));
  EXPECT_FALSE(w.add(open));  // cap hit
  EXPECT_EQ(w.dropped(), 1u);
  obs::TraceEvent close = open;
  close.ph = 'e';
  EXPECT_TRUE(w.add(close, /*force=*/true));  // close events always land
  EXPECT_EQ(w.size(), 3u);
}

TEST(TraceWriter, WritesWellFormedDocument) {
  obs::TraceWriter w;
  w.set_process_name(1, "chip");
  w.set_track_name(1, 3, "tile 3");
  obs::TraceEvent e;
  e.name = "GetS";
  e.cat = "net.req";
  e.ph = 'b';
  e.tid = 3;
  e.ts = Cycle{17};
  e.id = 42;
  e.args = "\"k\":1";
  w.add(e);
  e.ph = 'e';
  e.ts = Cycle{20};
  w.add(e);

  std::ostringstream out;
  w.write(out);
  const std::string doc = out.str();
  EXPECT_EQ(doc.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"tile 3\""), std::string::npos);
  EXPECT_NE(doc.find("\"id\":42"), std::string::npos);
  EXPECT_EQ(doc.substr(doc.size() - 3), "]}\n");
}

namespace {

/// One traced run shared by the structural checks below.
struct TracedRun {
  cmp::CmpConfig cfg;
  std::unique_ptr<cmp::CmpSystem> system;
  std::unique_ptr<obs::Observer> observer;

  TracedRun() {
    cfg = cmp::CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2));
    obs::ObsConfig ocfg;
    ocfg.level = obs::Level::kTrace;
    ocfg.sample_interval = Cycle{2000};
    system = std::make_unique<cmp::CmpSystem>(cfg, small_app("FFT", cfg.n_tiles, 0.05));
    observer = std::make_unique<obs::Observer>(ocfg, &system->stats());
    system->attach_observer(observer.get());
    EXPECT_TRUE(system->run(Cycle{5'000'000}));
    observer->finalize(system->total_cycles());
  }
};

}  // namespace

TEST(ObserverIntegration, TraceIsStructurallyValidChromeJson) {
  TracedRun run;
  std::ostringstream out;
  run.observer->write_trace(out);

  std::string first_line;
  const auto events = parse_trace(out.str(), &first_line);
  EXPECT_EQ(first_line, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  ASSERT_GT(events.size(), 100u);

  // Async spans balance: per (cat, id), begins == ends and no end-before-
  // begin in file order.
  std::map<std::pair<std::string, std::uint64_t>, int> open;
  long long last_ts = 0;
  std::uint64_t hops = 0, ejects = 0, dir_handles = 0, miss_spans = 0;
  for (const auto& e : events) {
    if (e.ph == 'M') continue;  // metadata carries no timestamp
    ASSERT_GE(e.ts, 0) << "event without a timestamp: " << e.name;
    EXPECT_GE(e.ts, last_ts) << "timestamps must be non-decreasing";
    last_ts = e.ts;
    if (e.ph == 'b') {
      ++open[{e.cat, e.id}];
      if (e.cat == "l1miss") ++miss_spans;
    } else if (e.ph == 'e') {
      auto it = open.find({e.cat, e.id});
      ASSERT_NE(it, open.end()) << "end without begin, id " << e.id;
      if (--it->second == 0) open.erase(it);
    } else if (e.ph == 'i') {
      hops += e.name == "hop";
      ejects += e.name == "eject";
      dir_handles += e.name == "dir.handle";
    }
  }
  EXPECT_TRUE(open.empty()) << open.size() << " spans never closed";
  // The lifecycle stages all show up: per-hop traversals, ejections,
  // directory handling and L1 miss spans.
  EXPECT_GT(hops, 0u);
  EXPECT_GT(ejects, 0u);
  EXPECT_GT(dir_handles, 0u);
  EXPECT_GT(miss_spans, 0u);
  EXPECT_EQ(run.observer->trace().dropped(), 0u);
}

TEST(ObserverIntegration, MeasuredWindowDeltasSumToFinalCounters) {
  TracedRun run;
  const obs::TimeSeries& ts = run.observer->timeseries();
  ASSERT_GE(ts.windows().size(), 3u);

  // The warmup boundary must have produced both phases.
  bool saw_warmup = false, saw_measured = false;
  for (const auto& w : ts.windows()) {
    saw_warmup |= w.phase == 'w';
    saw_measured |= w.phase == 'm';
    EXPECT_LT(w.start, w.end);
  }
  EXPECT_TRUE(saw_warmup);
  EXPECT_TRUE(saw_measured);

  // Column -> registry counter for the observer's default columns.
  const std::map<std::string, std::string> column_counter{
      {"vl_flits", "noc.VL.flits_injected"},
      {"b_flits", "noc.B.flits_injected"},
      {"vl_packets", "noc.VL.packets"},
      {"b_packets", "noc.B.packets"},
      {"compressed", "compression.compressed"},
      {"uncompressed", "compression.uncompressed"},
      {"remote_msgs", "msg_remote.count"},
      {"local_msgs", "msg_local.count"},
      {"l1_accesses", "l1.accesses"},
      {"l1_read_misses", "l1.read_misses"},
      {"l1_write_misses", "l1.write_misses"},
      {"mem_reads", "mem.reads"},
  };
  const auto& columns = ts.counter_columns();
  ASSERT_EQ(columns.size(), column_counter.size());
  const StatRegistry& stats = run.system->stats();
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::uint64_t sum = 0;
    for (const auto& w : ts.windows()) {
      if (w.phase == 'm') sum += w.counter_deltas[i];
    }
    const auto& counter = column_counter.at(columns[i]);
    EXPECT_EQ(sum, stats.counter_value(counter))
        << "window deltas for '" << columns[i]
        << "' must sum to the final value of " << counter;
  }

  // The CSV serialization round-trips the window count.
  std::ostringstream csv;
  run.observer->write_timeseries(csv);
  std::istringstream in(csv.str());
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, ts.windows().size() + 1);  // header + one row per window
}

TEST(ObserverIntegration, LatencyBreakdownHistogramsAreConsistent) {
  TracedRun run;
  const StatRegistry& stats = run.system->stats();
  std::uint64_t ejected = 0;
  for (const char* cls : {"req", "fwd", "resp"}) {
    const std::string base = std::string("noc.lat.") + cls;
    const Histogram* total = stats.find_histogram(base + ".total");
    const Histogram* queue = stats.find_histogram(base + ".queue");
    const Histogram* router = stats.find_histogram(base + ".router");
    const Histogram* wire = stats.find_histogram(base + ".wire");
    ASSERT_NE(total, nullptr);
    ASSERT_NE(queue, nullptr);
    ASSERT_NE(router, nullptr);
    ASSERT_NE(wire, nullptr);
    // Every ejected packet contributes one sample to each component.
    EXPECT_EQ(total->scalar().count(), queue->scalar().count());
    EXPECT_EQ(total->scalar().count(), router->scalar().count());
    EXPECT_EQ(total->scalar().count(), wire->scalar().count());
    ejected += total->scalar().count();
    if (total->scalar().count() == 0) continue;
    // The decomposition is exact per packet, so it is exact in the mean.
    EXPECT_NEAR(total->scalar().mean(),
                queue->scalar().mean() + router->scalar().mean() +
                    wire->scalar().mean(),
                1e-9);
    EXPECT_LE(total->quantile(0.50), total->quantile(0.95));
    EXPECT_LE(total->quantile(0.95), total->quantile(0.99));
  }
  EXPECT_GT(ejected, 0u);

  // The report harvests the same histograms into quantile tables.
  const cmp::RunResult r = cmp::make_result(*run.system);
  EXPECT_TRUE(r.latency.contains("lat.req.total"));
  EXPECT_TRUE(r.latency.contains("critical_latency"));
  EXPECT_GT(r.latency.at("lat.req.total").count, 0u);
  EXPECT_GT(r.avg_critical_latency, 0.0);
}

TEST(ObserverIntegration, DisabledLevelsEmitNothingExtra) {
  cmp::CmpConfig cfg =
      cmp::CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2));
  obs::ObsConfig ocfg;
  ocfg.level = obs::Level::kTimeseries;
  ocfg.sample_interval = Cycle{2000};
  cmp::CmpSystem system(cfg, small_app("FFT", cfg.n_tiles, 0.02));
  obs::Observer observer(ocfg, &system.stats());
  system.attach_observer(&observer);
  ASSERT_TRUE(system.run(Cycle{5'000'000}));
  observer.finalize(system.total_cycles());
  // Timeseries level: windows recorded, but no per-message trace events.
  EXPECT_FALSE(observer.tracing());
  EXPECT_GT(observer.timeseries().windows().size(), 0u);
  EXPECT_EQ(observer.trace().size(), 0u);
}
