// Workload generator tests: determinism, stream structure, per-application
// pattern properties (the behaviours Fig. 2/5/6 shapes rest on).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "workloads/app_params.hpp"
#include "workloads/synthetic_app.hpp"

namespace tcmp::workloads {
namespace {

using core::Op;
using core::OpKind;

/// Drain one core's stream (memory ops only) up to `limit` ops.
std::vector<Op> memory_stream(SyntheticApp& app, unsigned core, std::size_t limit) {
  std::vector<Op> ops;
  while (ops.size() < limit) {
    const Op op = app.next(core);
    if (op.kind == OpKind::kDone) break;
    if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore) ops.push_back(op);
  }
  return ops;
}

TEST(Apps, ThirteenApplicationsInPaperOrder) {
  const auto& apps = all_apps();
  ASSERT_EQ(apps.size(), 13u);
  EXPECT_EQ(apps.front().name, "Barnes");
  EXPECT_EQ(apps.back().name, "Water-spa");
  std::set<std::string> names;
  for (const auto& a : apps) names.insert(a.name);
  EXPECT_EQ(names.size(), 13u);
  EXPECT_TRUE(names.contains("MP3D"));
  EXPECT_TRUE(names.contains("Unstructured"));
}

TEST(Apps, LookupByNameAndScaling) {
  const AppParams& mp3d = app("MP3D");
  EXPECT_EQ(mp3d.name, "MP3D");
  const AppParams half = mp3d.scaled(0.5);
  EXPECT_EQ(half.ops_per_core, mp3d.ops_per_core / 2);
  EXPECT_GE(mp3d.scaled(0.0001).ops_per_core, 200u);  // floor
}

TEST(AppsDeathTest, UnknownNameAborts) { EXPECT_DEATH((void)app("NoSuchApp"), "unknown"); }

TEST(SyntheticApp, DeterministicStreams) {
  SyntheticApp a(app("FFT"), 16);
  SyntheticApp b(app("FFT"), 16);
  for (int i = 0; i < 5000; ++i) {
    const Op x = a.next(3), y = b.next(3);
    ASSERT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind));
    ASSERT_EQ(x.line, y.line);
    ASSERT_EQ(x.count, y.count);
  }
}

TEST(SyntheticApp, CoresProduceDistinctStreams) {
  SyntheticApp a(app("FFT"), 16);
  const auto s0 = memory_stream(a, 0, 200);
  const auto s1 = memory_stream(a, 1, 200);
  unsigned same = 0;
  for (std::size_t i = 0; i < 200; ++i) same += s0[i].line == s1[i].line;
  EXPECT_LT(same, 60u);  // some shared lines may coincide, most must not
}

TEST(SyntheticApp, StreamTerminatesWithDone) {
  AppParams p = app("Water-nsq").scaled(0.01);  // ~400 ops
  SyntheticApp a(p, 16);
  std::size_t ops = 0;
  while (a.next(2).kind != OpKind::kDone) {
    ASSERT_LT(++ops, 20000u);
  }
  // After done, it stays done.
  EXPECT_EQ(static_cast<int>(a.next(2).kind), static_cast<int>(OpKind::kDone));
}

TEST(SyntheticApp, WarmupBarrierEmittedOnce) {
  const AppParams p = app("LU-cont");
  SyntheticApp a(p, 16);
  ASSERT_TRUE(a.has_warmup());
  unsigned warmup_barriers = 0;
  std::size_t total = 0;
  while (true) {
    const Op op = a.next(5);
    if (op.kind == OpKind::kDone) break;
    if (op.kind == OpKind::kBarrier && op.count == core::kWarmupBarrierId)
      ++warmup_barriers;
    ASSERT_LT(++total, 500000u);
  }
  EXPECT_EQ(warmup_barriers, 1u);
}

TEST(SyntheticApp, BarriersAppearAtConfiguredInterval) {
  AppParams p = app("FFT");
  p.warmup_frac = 0.0;
  SyntheticApp a(p, 16);
  std::uint64_t mem_ops = 0;
  unsigned barriers = 0;
  while (true) {
    const Op op = a.next(0);
    if (op.kind == OpKind::kDone) break;
    if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore) ++mem_ops;
    if (op.kind == OpKind::kBarrier) ++barriers;
  }
  EXPECT_EQ(mem_ops, p.ops_per_core);
  EXPECT_EQ(barriers, p.ops_per_core / p.barrier_interval -
                          (p.ops_per_core % p.barrier_interval == 0 ? 1 : 0));
}

TEST(SyntheticApp, WriteFractionApproximatelyRespected) {
  AppParams p = app("Raytrace");  // write_frac 0.10
  p.warmup_frac = 0.0;
  SyntheticApp a(p, 16);
  const auto ops = memory_stream(a, 4, 20000);
  unsigned writes = 0;
  for (const auto& op : ops) writes += op.kind == OpKind::kStore;
  const double frac = static_cast<double>(writes) / static_cast<double>(ops.size());
  EXPECT_NEAR(frac, 0.10, 0.04);
}

TEST(SyntheticApp, MigratoryPatternIssuesReadModifyWrite) {
  AppParams p = app("MP3D");
  p.warmup_frac = 0.0;
  SyntheticApp a(p, 16);
  const auto ops = memory_stream(a, 7, 20000);
  // RMW pairs: a store immediately following a load of the same line.
  unsigned rmw = 0;
  for (std::size_t i = 1; i < ops.size(); ++i) {
    if (ops[i].kind == OpKind::kStore && ops[i - 1].kind == OpKind::kLoad &&
        ops[i].line == ops[i - 1].line) {
      ++rmw;
    }
  }
  EXPECT_GT(rmw, ops.size() / 20);
}

TEST(SyntheticApp, ScatteredLayoutSpreadsAddressRegions) {
  // Regions (64K-line windows, i.e. 2-byte-LO reach) touched by scattered vs
  // contiguous variants: the scattered one must touch many more.
  auto regions_of = [](const AppParams& params) {
    AppParams p = params;
    p.warmup_frac = 0.0;
    SyntheticApp a(p, 16);
    std::set<std::uint64_t> regions;
    for (const auto& op : memory_stream(a, 0, 10000)) regions.insert(op.line.value() >> 16);
    return regions.size();
  };
  EXPECT_GT(regions_of(app("Ocean-noncont")), 2 * regions_of(app("Ocean-cont")));
}

TEST(SyntheticApp, DwellRepeatsLines) {
  AppParams p = app("LU-cont");
  p.warmup_frac = 0.0;
  SyntheticApp a(p, 16);
  const auto ops = memory_stream(a, 2, 5000);
  unsigned repeats = 0;
  for (std::size_t i = 1; i < ops.size(); ++i) repeats += ops[i].line == ops[i - 1].line;
  // line_dwell 6 => most consecutive accesses stay on the same line.
  EXPECT_GT(static_cast<double>(repeats) / static_cast<double>(ops.size()), 0.5);
}

TEST(SyntheticApp, SharedFractionControlsCrossCoreOverlap) {
  auto overlap = [](const char* name) {
    AppParams p = app(name);
    p.warmup_frac = 0.0;
    SyntheticApp a(p, 16);
    std::set<LineAddr> c0, c1;
    for (const auto& op : memory_stream(a, 0, 8000)) c0.insert(op.line);
    for (const auto& op : memory_stream(a, 1, 8000)) c1.insert(op.line);
    std::size_t common = 0;
    for (LineAddr l : c0) common += c1.contains(l);
    return static_cast<double>(common) / static_cast<double>(c0.size());
  };
  EXPECT_GT(overlap("MP3D"), 2.5 * overlap("Water-nsq"));
}

class EveryApp : public ::testing::TestWithParam<int> {};

TEST_P(EveryApp, StreamIsWellFormed) {
  const AppParams& params = all_apps()[static_cast<std::size_t>(GetParam())];
  AppParams p = params.scaled(0.05);
  SyntheticApp a(p, 16);
  for (unsigned core : {0u, 15u}) {
    std::size_t n = 0;
    std::uint64_t mem = 0;
    while (true) {
      const Op op = a.next(core);
      if (op.kind == OpKind::kDone) break;
      if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore) {
        ++mem;
        ASSERT_GT(op.line.value(), 0u);
      }
      ASSERT_LT(++n, 1000000u);
    }
    EXPECT_EQ(mem, p.ops_per_core + p.warmup_ops());
  }
}

INSTANTIATE_TEST_SUITE_P(All, EveryApp, ::testing::Range(0, 13));

}  // namespace
}  // namespace tcmp::workloads
