// Checkpoint/restore (docs/checkpointing.md): the snapshot archive's
// round-trip guarantees, full-system checkpoint byte-determinism, and the
// headline contract — a run interrupted by save_checkpoint and resumed from
// the file in a fresh process state produces the *identical* final report
// (full counter-map equality, cycles, instructions) as the uninterrupted
// run, at --threads 1 and at --threads 4. Binary trace record -> replay
// identity rides along: a replayed .tct drives the machine through the same
// trajectory as the workload it captured.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cmp/config.hpp"
#include "cmp/system.hpp"
#include "common/snapshot.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "workloads/synthetic_app.hpp"
#include "workloads/trace_io.hpp"

namespace tcmp {
namespace {

// ---- archive round-trip --------------------------------------------------

struct ArchiveProbe {
  int plain = 0;
  bool flag = false;
  double ratio = 0.0;
  Cycle when{0};
  std::string label;
  std::vector<std::uint32_t> values;
  std::vector<bool> bits;
  std::optional<std::uint64_t> maybe;
  std::map<std::string, std::uint64_t> table;
  std::unordered_map<std::uint64_t, std::uint64_t> hashed;

  template <typename Ar>
  void snapshot_io(Ar& ar) {
    ar.section("probe");
    ar.field(plain);
    ar.field(flag);
    ar.field(ratio);
    ar.field(when);
    ar.field(label);
    ar.field(values);
    ar.field(bits);
    ar.field(maybe);
    ar.field(table);
    ar.field(hashed);
  }
};

TEST(SnapshotArchive, RoundTripsEveryFieldKind) {
  ArchiveProbe a;
  a.plain = -42;
  a.flag = true;
  a.ratio = 0.625;
  a.when = Cycle{123'456'789};
  a.label = "fft-0.02";
  a.values = {1, 2, 3, 0xFFFFFFFFu};
  a.bits = {true, false, true, true, false};
  a.maybe = 77;
  a.table = {{"remote", 10}, {"local", 20}};
  a.hashed = {{9, 90}, {4, 40}, {7, 70}};

  std::stringstream buf;
  SnapshotWriter w(buf);
  write_snapshot_header(w, "probe|v1");
  w.field(a);
  ASSERT_TRUE(w.good());

  ArchiveProbe b;
  SnapshotReader r(buf);
  read_snapshot_header(r, "probe|v1");
  r.field(b);
  EXPECT_EQ(b.plain, -42);
  EXPECT_TRUE(b.flag);
  EXPECT_DOUBLE_EQ(b.ratio, 0.625);
  EXPECT_EQ(b.when, Cycle{123'456'789});
  EXPECT_EQ(b.label, "fft-0.02");
  EXPECT_EQ(b.values, a.values);
  EXPECT_EQ(b.bits, a.bits);
  EXPECT_EQ(b.maybe, a.maybe);
  EXPECT_EQ(b.table, a.table);
  EXPECT_EQ(b.hashed, a.hashed);
}

TEST(SnapshotArchive, UnorderedMapBytesAreHashLayoutIndependent) {
  // Same key set inserted in opposite orders must serialize identically.
  std::unordered_map<std::uint64_t, std::uint64_t> fwd, rev;
  for (std::uint64_t k = 0; k < 64; ++k) fwd.emplace(k, k * 3);
  for (std::uint64_t k = 64; k-- > 0;) rev.emplace(k, k * 3);
  std::stringstream sf, sr;
  SnapshotWriter wf(sf), wr(sr);
  wf.field(fwd);
  wr.field(rev);
  EXPECT_EQ(sf.str(), sr.str());
}

TEST(SnapshotArchiveDeathTest, GuardsCatchDriftAndMismatch) {
  std::stringstream buf;
  SnapshotWriter w(buf);
  w.section("alpha");
  w.verify(16u);
  {
    SnapshotReader r(buf);
    EXPECT_DEATH(r.section("beta"), "section tag mismatch");
  }
  {
    std::stringstream b2(buf.str());
    SnapshotReader r(b2);
    r.section("alpha");
    EXPECT_DEATH(r.verify(32u), "config-shape mismatch");
  }
  {
    std::stringstream truncated("short");
    SnapshotReader r(truncated);
    EXPECT_DEATH(r.raw_u64(), "truncated");
  }
  {
    std::stringstream bogus("XXXXXXXXXXXXXXXXXXXXXXXX");
    SnapshotReader r(bogus);
    EXPECT_DEATH(read_snapshot_header(r, "x"), "bad magic");
  }
}

// ---- full-system checkpoint/restore --------------------------------------

struct FinalReport {
  std::map<std::string, std::uint64_t> counters;
  Cycle cycles{};
  std::uint64_t instructions = 0;
};

std::shared_ptr<workloads::SyntheticApp> fft_small(unsigned n_tiles) {
  return std::make_shared<workloads::SyntheticApp>(
      workloads::app("FFT").scaled(0.02), n_tiles);
}

FinalReport harvest(const cmp::CmpSystem& system) {
  FinalReport r;
  r.counters = system.merged_stats().counters();
  r.cycles = system.total_cycles();
  r.instructions = system.total_instructions();
  return r;
}

void expect_identical(const FinalReport& a, const FinalReport& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  ASSERT_FALSE(a.counters.empty());
  for (const auto& [name, value] : a.counters) {
    auto it = b.counters.find(name);
    ASSERT_NE(it, b.counters.end()) << "counter missing after restore: " << name;
    EXPECT_EQ(it->second, value) << "counter diverges after restore: " << name;
  }
  EXPECT_EQ(a.counters.size(), b.counters.size());
}

// Interrupted-vs-uninterrupted identity at thread count K: run A end to end;
// run B to a mid-run cycle, checkpoint, restore into a freshly constructed
// system C and finish there. A and C must agree on every reported number.
void check_restore_identity(unsigned threads) {
  auto cfg = cmp::CmpConfig::cheng3way();
  cfg.threads = threads;

  cmp::CmpSystem uninterrupted(cfg, fft_small(cfg.n_tiles));
  ASSERT_TRUE(uninterrupted.run(Cycle{50'000'000}));
  const FinalReport full = harvest(uninterrupted);

  cmp::CmpSystem saver(cfg, fft_small(cfg.n_tiles));
  ASSERT_FALSE(saver.run(Cycle{30'000}));  // mid-run: must not have finished
  std::stringstream checkpoint;
  saver.save_checkpoint(checkpoint);

  cmp::CmpSystem restored(cfg, fft_small(cfg.n_tiles));
  restored.load_checkpoint(checkpoint);
  EXPECT_EQ(restored.total_cycles(), Cycle{30'000});
  ASSERT_TRUE(restored.run(Cycle{50'000'000}));
  expect_identical(full, harvest(restored));
}

TEST(CheckpointRestore, FinalReportIdenticalSingleThread) {
  check_restore_identity(1);
}

TEST(CheckpointRestore, FinalReportIdenticalFourThreads) {
  check_restore_identity(4);
}

TEST(CheckpointRestore, SaveIsByteDeterministic) {
  // Two identical runs checkpointed at the same cycle produce byte-equal
  // snapshot streams (the property the golden byte-identity gate leans on).
  auto cfg = cmp::CmpConfig::cheng3way();
  std::string bytes[2];
  for (std::string& b : bytes) {
    cmp::CmpSystem system(cfg, fft_small(cfg.n_tiles));
    ASSERT_FALSE(system.run(Cycle{25'000}));
    std::stringstream out;
    system.save_checkpoint(out);
    b = out.str();
  }
  ASSERT_FALSE(bytes[0].empty());
  EXPECT_EQ(bytes[0], bytes[1]);
}

TEST(CheckpointRestoreDeathTest, RejectsMismatchedShape) {
  auto cfg = cmp::CmpConfig::cheng3way();
  cmp::CmpSystem system(cfg, fft_small(cfg.n_tiles));
  ASSERT_FALSE(system.run(Cycle{10'000}));
  std::stringstream out;
  system.save_checkpoint(out);

  // A run with a different thread count has a different fingerprint: the
  // per-shard registry layout differs, so restore must refuse.
  auto cfg4 = cmp::CmpConfig::cheng3way();
  cfg4.threads = 4;
  cmp::CmpSystem other(cfg4, fft_small(cfg4.n_tiles));
  EXPECT_DEATH(other.load_checkpoint(out), "fingerprint mismatch");
}

// ---- binary trace record -> replay ---------------------------------------

TEST(TraceRecordReplay, ReplayedRunMatchesOriginal) {
  const std::string path = testing::TempDir() + "tcmp_record_replay.tct";
  const auto cfg = cmp::CmpConfig::cheng3way();

  // Original: FFT captured through the recording tee while it drives the
  // detailed machine.
  auto recorder = std::make_shared<workloads::RecordingWorkload>(
      fft_small(cfg.n_tiles), path, cfg.n_tiles);
  cmp::CmpSystem original(cfg, recorder);
  ASSERT_TRUE(original.run(Cycle{50'000'000}));
  recorder->finish();
  ASSERT_GT(recorder->events_recorded(), 0u);
  const FinalReport a = harvest(original);

  // Replay: same machine, workload now streamed back from the .tct file.
  auto replay = std::make_shared<workloads::BinaryTraceWorkload>(path);
  EXPECT_EQ(replay->n_cores(), cfg.n_tiles);
  EXPECT_EQ(replay->total_events(), recorder->events_recorded());
  cmp::CmpSystem replayed(cfg, replay);
  ASSERT_TRUE(replayed.run(Cycle{50'000'000}));
  expect_identical(a, harvest(replayed));

  std::remove(path.c_str());
}

TEST(TraceRecordReplay, CompactEncodingBeatsTextByFourX) {
  // The .tct point of existing: delta-encoded binary events are a fraction
  // of the text form ("12 L 0x1a2b3c\n" ~ 15 bytes vs <= 2-3 binary).
  const std::string path = testing::TempDir() + "tcmp_density.tct";
  {
    workloads::TraceRecorder rec(path, 1, false, 512);
    for (std::uint64_t i = 0; i < 10'000; ++i) {
      // Read-modify-write walk: the load strides by one line, the store hits
      // the same line (delta 0) — the dominant pattern delta encoding wins on.
      rec.record(0, core::Op::load(LineAddr{0x100000 + i}));
      rec.record(0, core::Op::store(LineAddr{0x100000 + i}));
    }
    rec.close();
  }
  workloads::BinaryTraceWorkload back(path);
  EXPECT_EQ(back.total_events(), 20'000u);
  std::uint64_t text_bytes = 0, ops = 0;
  for (;; ++ops) {
    const core::Op op = back.next(0);
    if (op.kind == core::OpKind::kDone) break;
    char line[64];
    text_bytes += static_cast<std::uint64_t>(std::snprintf(
        line, sizeof line, "0 %c 0x%llx\n",
        op.kind == core::OpKind::kLoad ? 'L' : 'S',
        static_cast<unsigned long long>(op.line.value())));
  }
  EXPECT_EQ(ops, 20'000u);
  std::uint64_t file_bytes = 0;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    file_bytes = static_cast<std::uint64_t>(in.tellg());
  }
  EXPECT_LT(file_bytes * 4, text_bytes);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tcmp
