// Tooling-layer JSON reader (common/json.hpp): grammar coverage for what the
// canonical metrics writer emits, dotted-path lookup with longest-member
// matching (counter names contain dots), error reporting, and the shared
// string-escape helper.
#include <gtest/gtest.h>

#include <string>

#include "common/json.hpp"

namespace tcmp::json {
namespace {

TEST(Json, ParsesScalarsArraysAndObjects) {
  const auto r = parse(R"({
    "s": "hello",
    "n": -12.5e2,
    "t": true,
    "f": false,
    "z": null,
    "a": [1, 2, 3],
    "o": {"inner": 7}
  })");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(r.value.is_object());

  const Value* s = r.value.find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->is_string());
  EXPECT_EQ(s->str, "hello");

  const Value* n = r.value.find("n");
  ASSERT_NE(n, nullptr);
  EXPECT_TRUE(n->is_number());
  EXPECT_DOUBLE_EQ(n->number, -1250.0);

  EXPECT_TRUE(r.value.find("t")->boolean);
  EXPECT_FALSE(r.value.find("f")->boolean);
  EXPECT_EQ(r.value.find("z")->type, Value::Type::kNull);

  const Value* a = r.value.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_DOUBLE_EQ(a->items[2].number, 3.0);

  EXPECT_DOUBLE_EQ(r.value.find_path("o.inner")->number, 7.0);
}

TEST(Json, ObjectMemberOrderIsPreserved) {
  const auto r = parse(R"({"b": 1, "a": 2, "c": 3})");
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.value.members.size(), 3u);
  EXPECT_EQ(r.value.members[0].first, "b");
  EXPECT_EQ(r.value.members[1].first, "a");
  EXPECT_EQ(r.value.members[2].first, "c");
}

TEST(Json, FindPathMatchesLongestMemberFirst) {
  // Canonical-metrics counter names contain dots ("msg_remote.count"):
  // "counters.msg_remote.count" must resolve member "msg_remote.count" of
  // object "counters", not descend into a nonexistent "msg_remote" object.
  const auto r = parse(
      R"({"counters": {"msg_remote.count": 42, "msg_remote": {"count": 7}}})");
  ASSERT_TRUE(r.ok);
  const Value* v = r.value.find_path("counters.msg_remote.count");
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(v->number, 42.0);
  // The shorter member is still reachable when the longer one cannot consume
  // the remaining path.
  const Value* w = r.value.find_path("counters.msg_remote");
  ASSERT_NE(w, nullptr);
  EXPECT_TRUE(w->is_object());
}

TEST(Json, FindPathMissesReturnNull) {
  const auto r = parse(R"({"run": {"cycles": 100}})");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value.find_path("run.instructions"), nullptr);
  EXPECT_EQ(r.value.find_path("nope.cycles"), nullptr);
  EXPECT_EQ(r.value.find_path("run.cycles.deeper"), nullptr);
  EXPECT_EQ(r.value.find("run")->find("nope"), nullptr);
}

TEST(Json, StringEscapesRoundTrip) {
  const auto r = parse(R"({"k": "a\"b\\c\nd\te"})");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value.find("k")->str, "a\"b\\c\nd\te");
  EXPECT_EQ(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  // Control characters are emitted as \u escapes.
  EXPECT_EQ(escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad : {"{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated",
                          "{\"a\":1} garbage", "", "{\"a\":}"}) {
    const auto r = parse(bad);
    EXPECT_FALSE(r.ok) << bad;
    EXPECT_NE(r.error.find("offset"), std::string::npos) << bad;
  }
}

TEST(Json, ParsesMetricsShapedDocument) {
  // The shape tools/tcmpstat consumes: versioned header plus nested stat
  // sections.
  const auto r = parse(R"({
    "schema": "tcmp-metrics",
    "version": 1,
    "run": {"cycles": 123456, "coverage": 0.625},
    "counters": {"msg_remote.count": 100, "msg_local.count": 50},
    "histograms": {"noc.lat": {"count": 10, "mean": 3.5}}
  })");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.find("schema")->str, "tcmp-metrics");
  EXPECT_DOUBLE_EQ(r.value.find_path("version")->number, 1.0);
  EXPECT_DOUBLE_EQ(r.value.find_path("run.cycles")->number, 123456.0);
  EXPECT_DOUBLE_EQ(r.value.find_path("counters.msg_local.count")->number, 50.0);
  EXPECT_DOUBLE_EQ(r.value.find_path("histograms.noc.lat.mean")->number, 3.5);
}

}  // namespace
}  // namespace tcmp::json
