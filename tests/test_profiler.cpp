// Kernel self-profiling: lap attribution semantics in isolation, the
// acceptance bar (>= 95% of the run's wall clock attributed to named scopes)
// on a live profiled run, and bit-identity between the profiled and
// unprofiled loops.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "cmp/system.hpp"
#include "sim/profiler.hpp"
#include "workloads/synthetic_app.hpp"

using namespace tcmp;

namespace {

std::unique_ptr<cmp::CmpSystem> mp3d_system(double scale) {
  const auto cfg =
      cmp::CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2));
  return std::make_unique<cmp::CmpSystem>(
      cfg, std::make_shared<workloads::SyntheticApp>(
               workloads::app("MP3D").scaled(scale), cfg.n_tiles));
}

volatile std::uint64_t burn_sink = 0;
void burn() {
  for (std::uint64_t i = 0; i < 200'000; ++i) burn_sink = burn_sink + i;
}

TEST(SelfProfiler, LapsTileTheRunContiguously) {
  sim::SelfProfiler prof;
  const unsigned a = prof.register_scope("alpha");
  const unsigned b = prof.register_scope("beta");
  prof.start_run();
  burn();
  prof.lap(a);
  burn();
  prof.lap(b);
  burn();
  prof.lap(a);
  prof.stop_run();

  EXPECT_GT(prof.total_nanos(), 0u);
  // Laps cover start_run..last-lap contiguously; only the tail after the
  // final lap is unattributed.
  EXPECT_GE(prof.attribution_fraction(), 0.95);
  EXPECT_LE(prof.attributed_nanos(), prof.total_nanos());

  const auto rows = prof.rows();
  ASSERT_GE(rows.size(), 2u);
  // Rows are sorted by attributed time descending; alpha got two laps.
  EXPECT_GE(rows[0].nanos, rows[1].nanos);
  std::uint64_t alpha_laps = 0;
  for (const auto& r : rows) {
    if (r.name == "alpha") alpha_laps = r.laps;
  }
  EXPECT_EQ(alpha_laps, 2u);
}

TEST(SelfProfiler, TableNamesEveryScope) {
  sim::SelfProfiler prof;
  prof.register_scope("network");
  prof.register_scope("cores");
  prof.start_run();
  burn();
  prof.lap(0);
  burn();
  prof.lap(1);
  prof.stop_run();

  std::ostringstream out;
  prof.write_table(out);
  EXPECT_NE(out.str().find("network"), std::string::npos);
  EXPECT_NE(out.str().find("cores"), std::string::npos);
}

TEST(SelfProfiler, ProfiledSystemRunMeetsAttributionBar) {
  auto system = mp3d_system(0.05);
  sim::SelfProfiler prof;
  system->set_profiler(&prof);
  ASSERT_EQ(system->profiler(), &prof);
  ASSERT_TRUE(system->run(Cycle{50'000'000}));

  EXPECT_GT(prof.total_nanos(), 0u);
  EXPECT_GE(prof.attribution_fraction(), 0.95);

  // The "where the wall-clock went" table names the driver sections and the
  // kernel's pull-scan attribution.
  std::ostringstream out;
  system->write_self_profile(out);
  const std::string table = out.str();
  EXPECT_NE(table.find("network"), std::string::npos);
  EXPECT_NE(table.find("cores"), std::string::npos);
  EXPECT_NE(table.find("pull-scan"), std::string::npos);
}

TEST(SelfProfiler, ProfiledAndUnprofiledRunsAreBitIdentical) {
  auto plain = mp3d_system(0.02);
  auto profiled = mp3d_system(0.02);
  sim::SelfProfiler prof;
  profiled->set_profiler(&prof);

  ASSERT_TRUE(plain->run(Cycle{50'000'000}));
  ASSERT_TRUE(profiled->run(Cycle{50'000'000}));

  EXPECT_EQ(plain->total_cycles().value(), profiled->total_cycles().value());
  EXPECT_EQ(plain->total_instructions(), profiled->total_instructions());
  EXPECT_EQ(plain->stats().counters(), profiled->stats().counters());
}

}  // namespace
