// Instruction-cache and instruction-fetch model tests.
#include <gtest/gtest.h>

#include <memory>

#include "cmp/report.hpp"
#include "cmp/system.hpp"
#include "protocol/icache.hpp"
#include "workloads/synthetic_app.hpp"

namespace tcmp::protocol {
namespace {

struct IcHarness {
  IcHarness()
      : icache(NodeId{3}, ICache::Config{16, 2}, 16, &stats,
               [this](CoherenceMsg msg) { sent.push_back(msg); }) {
    icache.set_fill_callback([this] { ++fills; });
  }
  StatRegistry stats;
  std::vector<CoherenceMsg> sent;
  unsigned fills = 0;
  ICache icache;
};

TEST(ICache, MissSendsGetInstrToHome) {
  IcHarness h;
  EXPECT_FALSE(h.icache.fetch(LineAddr{0x8000005}));
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].type, MsgType::kGetInstr);
  EXPECT_EQ(h.sent[0].dst, 0x8000005 % 16);
  EXPECT_FALSE(h.icache.quiescent());
}

TEST(ICache, FillInstallsAndHits) {
  IcHarness h;
  h.icache.fetch(LineAddr{0x8000005});
  CoherenceMsg data;
  data.type = MsgType::kData;
  data.dst = NodeId{3};
  data.dst_unit = Unit::kL1I;
  data.line = LineAddr{0x8000005};
  h.icache.deliver(data);
  EXPECT_EQ(h.fills, 1u);
  EXPECT_TRUE(h.icache.quiescent());
  EXPECT_TRUE(h.icache.fetch(LineAddr{0x8000005}));  // now a hit
  EXPECT_EQ(h.sent.size(), 1u);            // no new request
}

TEST(ICache, GetInstrClassification) {
  // Instruction fetches are short critical address-carrying requests: they
  // compress and ride the VL plane like data requests.
  EXPECT_TRUE(is_critical(MsgType::kGetInstr));
  EXPECT_TRUE(carries_address(MsgType::kGetInstr));
  EXPECT_FALSE(carries_data(MsgType::kGetInstr));
  EXPECT_EQ(uncompressed_bytes(MsgType::kGetInstr).value(), 11u);
  EXPECT_EQ(compression_class(MsgType::kGetInstr), compression::MsgClass::kRequest);
  EXPECT_EQ(vnet_of(MsgType::kGetInstr), 0u);
}

TEST(ICache, FullSystemInstructionMissRateIsRealistic) {
  const auto params = workloads::app("Raytrace").scaled(0.1);  // largest text
  cmp::CmpSystem system(cmp::CmpConfig::baseline(),
                        std::make_shared<workloads::SyntheticApp>(params, 16));
  ASSERT_TRUE(system.run(Cycle{200'000'000}));
  const auto& st = system.stats();
  const auto fetches = st.counter_value("l1i.fetches");
  const auto misses = st.counter_value("l1i.misses");
  ASSERT_GT(fetches, 0u);
  ASSERT_GT(misses, 0u);  // cold text does generate fetch traffic...
  // ...but the hot loop dominates: miss rate below 3%.
  EXPECT_LT(static_cast<double>(misses) / static_cast<double>(fetches), 0.03);
  // Every I-miss was answered by a home slice.
  EXPECT_EQ(st.counter_value("dir.instr_fetches"), misses);
}

TEST(ICache, InstructionFetchesDoNotDisturbCoherence) {
  // Directory state must be untouched by GetInstr even under data sharing of
  // the same home slices.
  const auto params = workloads::app("MP3D").scaled(0.1);
  cmp::CmpSystem system(cmp::CmpConfig::heterogeneous(
                            compression::SchemeConfig::dbrc(4, 2)),
                        std::make_shared<workloads::SyntheticApp>(params, 16));
  ASSERT_TRUE(system.run(Cycle{200'000'000}));
  // No invalidations or forwards can ever target an I-cache; reaching
  // quiescence with all 230-test invariants intact is the check, plus:
  EXPECT_GT(system.stats().counter_value("dir.instr_fetches"), 0u);
}

}  // namespace
}  // namespace tcmp::protocol
