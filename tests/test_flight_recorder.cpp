// Flight recorder and crash post-mortems: bounded-ring retention semantics,
// dump formatting, and the end-to-end path — a seeded coherence violation
// aborts the run through the periodic lint and the armed post-mortem file
// contains the violating line's message-lifecycle tail.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "cmp/system.hpp"
#include "obs/flight_recorder.hpp"
#include "verify/lint.hpp"
#include "workloads/synthetic_app.hpp"

using namespace tcmp;

namespace {

protocol::CoherenceMsg mk_msg(LineAddr line, std::uint32_t seq) {
  protocol::CoherenceMsg msg;
  msg.type = protocol::MsgType::kGetS;
  msg.src = NodeId{0};
  msg.dst = NodeId{1};
  msg.dst_unit = protocol::Unit::kDir;
  msg.line = line;
  msg.seq = seq;
  return msg;
}

TEST(FlightRecorder, RetainsNewestAtFixedDepth) {
  obs::FlightRecorder rec(/*n_tiles=*/2, /*depth=*/4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    rec.record(obs::FlightEventKind::kSendRemote, NodeId{0},
               mk_msg(LineAddr{0x1000}, i), Cycle{i});
  }
  EXPECT_EQ(rec.events_retained(0), 4u);
  EXPECT_EQ(rec.events_retained(1), 0u);

  std::ostringstream out;
  rec.dump(out);
  const std::string dump = out.str();
  // Oldest history was overwritten; the newest four survive.
  EXPECT_EQ(dump.find("seq=5"), std::string::npos);
  for (std::uint32_t i = 6; i < 10; ++i) {
    EXPECT_NE(dump.find("seq=" + std::to_string(i)), std::string::npos);
  }
}

TEST(FlightRecorder, DumpCarriesHeaderPerTileSectionsAndMergedTail) {
  obs::FlightRecorder rec(/*n_tiles=*/3, /*depth=*/8);
  rec.record(obs::FlightEventKind::kSendLocal, NodeId{2},
             mk_msg(LineAddr{0xABC0}, 7), Cycle{42});
  rec.record(obs::FlightEventKind::kDeliver, NodeId{0},
             mk_msg(LineAddr{0xABC0}, 7), Cycle{50});

  std::ostringstream out;
  rec.dump(out);
  const std::string dump = out.str();
  EXPECT_NE(dump.find("flight recorder post-mortem"), std::string::npos);
  EXPECT_NE(dump.find("tiles=3 depth=8"), std::string::npos);
  EXPECT_NE(dump.find("--- tile 2 "), std::string::npos);
  EXPECT_NE(dump.find("--- merged tail"), std::string::npos);
  EXPECT_NE(dump.find("send.local"), std::string::npos);
  EXPECT_NE(dump.find("deliver"), std::string::npos);
  EXPECT_NE(dump.find("line=0xabc0"), std::string::npos);
  // Tile 1 recorded nothing: no empty section for it.
  EXPECT_EQ(dump.find("--- tile 1 "), std::string::npos);
}

TEST(FlightRecorder, DisarmedPostmortemDumpsNothing) {
  const auto cfg =
      cmp::CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2));
  cmp::CmpSystem system(
      cfg, std::make_shared<workloads::SyntheticApp>(
               workloads::app("MP3D").scaled(0.02), cfg.n_tiles));
  EXPECT_FALSE(system.dump_postmortem());
}

TEST(FlightRecorder, LintAbortProducesPostMortemWithViolatingTail) {
  const auto cfg =
      cmp::CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2));
  auto system = std::make_unique<cmp::CmpSystem>(
      cfg, std::make_shared<workloads::SyntheticApp>(
               workloads::app("MP3D").scaled(0.05), cfg.n_tiles));

  // Let the machine route real traffic, then pick the most recently recorded
  // line address out of the recorder itself — corrupting a line with live
  // lifecycle history guarantees the post-mortem shows the violating
  // message's tail.
  for (int i = 0; i < 3000; ++i) system->step();
  std::ostringstream pre;
  system->flight_recorder().dump(pre);
  const std::string history = pre.str();
  const auto pos = history.rfind("line=0x");
  ASSERT_NE(pos, std::string::npos);
  const auto end = history.find(' ', pos);
  const std::string token = history.substr(pos + 5, end - (pos + 5));
  const LineAddr victim{std::strtoull(token.c_str(), nullptr, 16)};

  const std::string path =
      ::testing::TempDir() + "tcmp_postmortem_test.txt";
  std::remove(path.c_str());
  system->set_postmortem_path(path);
  EXPECT_EQ(system->postmortem_path(), path);

  verify::CoherenceLinter linter(system.get());
  // The tcmpsim wiring: a failing lint scan dumps the post-mortem and
  // aborts the run.
  system->set_periodic_check(Cycle{100}, [&](Cycle now) {
    if (linter.scan(now).empty()) return true;
    system->dump_postmortem();
    return false;
  });

  // Seed the violation: the same line stable-M in two L1s (R1-SWMR).
  system->l1(1).debug_force_state(victim, protocol::L1State::kM);
  system->l1(2).debug_force_state(victim, protocol::L1State::kM);

  EXPECT_FALSE(system->run(Cycle{1'000'000}));
  EXPECT_TRUE(system->aborted());
  EXPECT_GT(linter.violations(), 0u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string dump = buf.str();
  EXPECT_NE(dump.find("flight recorder post-mortem"), std::string::npos);
  EXPECT_NE(dump.find("--- merged tail"), std::string::npos);
  // The violating line's lifecycle events survived into the post-mortem.
  EXPECT_NE(dump.find("line=" + token), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
