// Tests for the power models: ledger accounting, cacti_mini Table 1
// reproduction, Orion-mini scaling, ED2P metrics.
#include <gtest/gtest.h>

#include "power/cacti_mini.hpp"
#include "power/chip_power.hpp"
#include "power/energy_ledger.hpp"
#include "power/metrics.hpp"
#include "power/orion_mini.hpp"

namespace tcmp::power {
namespace {

TEST(EnergyLedger, AccumulatesPerAccount) {
  EnergyLedger ledger;
  ledger.add(EnergyAccount::kLinkDynamic, units::joules(1.5));
  ledger.add(EnergyAccount::kLinkDynamic, units::joules(0.5));
  ledger.add(EnergyAccount::kCoreDynamic, units::joules(3.0));
  EXPECT_DOUBLE_EQ(ledger.get(EnergyAccount::kLinkDynamic).value(), 2.0);
  EXPECT_DOUBLE_EQ(ledger.get(EnergyAccount::kCoreDynamic).value(), 3.0);
  EXPECT_DOUBLE_EQ(ledger.get(EnergyAccount::kL2Dynamic).value(), 0.0);
}

TEST(EnergyLedger, InterconnectExcludesCoreAndCaches) {
  EnergyLedger ledger;
  ledger.add(EnergyAccount::kLinkDynamic, units::joules(1.0));
  ledger.add(EnergyAccount::kRouterBuffer, units::joules(2.0));
  ledger.add(EnergyAccount::kCompressionStatic, units::joules(4.0));
  ledger.add(EnergyAccount::kCoreDynamic, units::joules(100.0));
  ledger.add(EnergyAccount::kL1Dynamic, units::joules(50.0));
  EXPECT_DOUBLE_EQ(ledger.interconnect_total().value(), 7.0);
  EXPECT_DOUBLE_EQ(ledger.total().value(), 157.0);
}

TEST(EnergyLedger, PlusEqualsMerges) {
  EnergyLedger a, b;
  a.add(EnergyAccount::kLinkStatic, units::joules(1.0));
  b.add(EnergyAccount::kLinkStatic, units::joules(2.0));
  b.add(EnergyAccount::kMemoryDynamic, units::joules(5.0));
  a += b;
  EXPECT_DOUBLE_EQ(a.get(EnergyAccount::kLinkStatic).value(), 3.0);
  EXPECT_DOUBLE_EQ(a.get(EnergyAccount::kMemoryDynamic).value(), 5.0);
}

TEST(EnergyLedger, ResetZeroes) {
  EnergyLedger ledger;
  ledger.add(EnergyAccount::kRouterStatic, units::joules(9.0));
  ledger.reset();
  EXPECT_DOUBLE_EQ(ledger.total().value(), 0.0);
}

TEST(EnergyLedger, AccountNamesAreUnique) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(EnergyAccount::kCount); ++i) {
    for (std::size_t j = i + 1; j < static_cast<std::size_t>(EnergyAccount::kCount);
         ++j) {
      EXPECT_STRNE(to_string(static_cast<EnergyAccount>(i)),
                   to_string(static_cast<EnergyAccount>(j)));
    }
  }
}

// --- cacti_mini: Table 1 anchor rows ---

TEST(CactiMini, DbrcFourEntryMatchesTable1) {
  // 34 structures of 4 x 8B per core: Table 1 row 1 = 0.0723 mm^2, 10.78 mW.
  const ArrayCosts c = array_costs({ArrayKind::kCam, 4, 64});
  EXPECT_NEAR(34 * units::to_mm2(c.area), 0.0723, 0.0723 * 0.05);
  EXPECT_NEAR(34 * units::to_mw(c.leakage), 10.78, 10.78 * 0.05);
  EXPECT_NEAR(34 * c.access_energy.value() * 4e9, 0.1065, 0.1065 * 0.05);
}

TEST(CactiMini, DbrcSixtyFourEntryMatchesTable1) {
  const ArrayCosts c = array_costs({ArrayKind::kCam, 64, 64});
  EXPECT_NEAR(34 * units::to_mm2(c.area), 0.8240, 0.8240 * 0.05);
  EXPECT_NEAR(34 * units::to_mw(c.leakage), 133.42, 133.42 * 0.05);
  EXPECT_NEAR(34 * c.access_energy.value() * 4e9, 0.7078, 0.7078 * 0.05);
}

TEST(CactiMini, DbrcSixteenEntryWithinModelTolerance) {
  // Mid-point of the fit: expected within ~±35% of Table 1.
  const ArrayCosts c = array_costs({ArrayKind::kCam, 16, 64});
  EXPECT_NEAR(34 * units::to_mm2(c.area), 0.2678, 0.2678 * 0.35);
  EXPECT_NEAR(34 * units::to_mw(c.leakage), 43.03, 43.03 * 0.35);
  EXPECT_NEAR(34 * c.access_energy.value() * 4e9, 0.3848, 0.3848 * 0.35);
}

TEST(CactiMini, StrideMatchesTable1) {
  const ArrayCosts c = array_costs({ArrayKind::kRegister, 1, 64});
  EXPECT_NEAR(34 * units::to_mm2(c.area), 0.0257, 0.0257 * 0.05);
  EXPECT_NEAR(34 * units::to_mw(c.leakage), 5.14, 5.14 * 0.05);
  EXPECT_NEAR(34 * c.access_energy.value() * 4e9, 0.0561, 0.0561 * 0.05);
}

TEST(CactiMini, CostsScaleMonotonically) {
  double prev_area = 0.0, prev_energy = 0.0, prev_leak = 0.0;
  for (unsigned entries : {4u, 8u, 16u, 32u, 64u, 128u}) {
    const ArrayCosts c = array_costs({ArrayKind::kCam, entries, 64});
    EXPECT_GT(c.area.value(), prev_area);
    EXPECT_GT(c.access_energy.value(), prev_energy);
    EXPECT_GT(c.leakage.value(), prev_leak);
    prev_area = c.area.value();
    prev_energy = c.access_energy.value();
    prev_leak = c.leakage.value();
  }
}

TEST(CactiMini, PercentagesOfCoreMatchTable1) {
  // Table 1's parenthesized columns: DBRC-4 area is 0.29% of a 25 mm^2 core.
  // Same-dimension division collapses to a plain double ratio.
  const ArrayCosts c = array_costs({ArrayKind::kCam, 4, 64});
  EXPECT_NEAR(34 * (c.area / kCoreArea), 0.0029, 0.0004);
  const ArrayCosts big = array_costs({ArrayKind::kCam, 64, 64});
  EXPECT_NEAR(34 * (big.area / kCoreArea), 0.0330, 0.003);
}

// --- Orion-mini ---

TEST(OrionMini, EventEnergiesScaleWithFlitWidth) {
  const RouterEnergyModel m;
  EXPECT_DOUBLE_EQ(m.buffer_write_energy(2 * 272).value(),
                   2 * m.buffer_write_energy(272).value());
  EXPECT_GT(m.traversal_energy(272).value(), m.traversal_energy(32).value());
  // Arbitration is per-flit, not per-bit.
  EXPECT_NEAR((m.traversal_energy(272) - m.crossbar_energy(272) -
               m.buffer_read_energy(272))
                  .value(),
              m.arbitration_per_flit.value(), 1e-18);
}

TEST(OrionMini, LeakageScalesWithStorage) {
  const RouterEnergyModel m;
  const units::Watts small = m.router_leakage(5, 3, 4, 32);
  const units::Watts big = m.router_leakage(5, 3, 4, 272);
  EXPECT_GT(big.value(), small.value());
  // Fixed per-port term dominates tiny-buffer routers.
  EXPECT_GT(m.router_leakage(5, 1, 1, 8).value(),
            5 * m.leakage_per_port.value() * 0.99);
}

TEST(ChipPower, TileLeakageIsSumOfParts) {
  const ChipPowerModel m;
  EXPECT_DOUBLE_EQ(m.tile_leakage().value(),
                   (m.core_leakage + m.cache_leakage).value());
  EXPECT_GT(m.l2_access.value(), m.l1_access.value());
  EXPECT_GT(m.mem_access.value(), m.l2_access.value());
}

// --- metrics ---

TEST(Metrics, Ed2pQuadraticInDelay) {
  EXPECT_DOUBLE_EQ(ed2p(2.0, 3.0), 18.0);
  EXPECT_DOUBLE_EQ(ed2p(2.0, 6.0), 4.0 * ed2p(2.0, 3.0));
  EXPECT_DOUBLE_EQ(edp(2.0, 3.0), 6.0);
}

TEST(Metrics, DimensionCheckedOverloadsMatchRawDoubles) {
  EXPECT_DOUBLE_EQ(ed2p(units::joules(2.0), units::seconds(3.0)), ed2p(2.0, 3.0));
  EXPECT_DOUBLE_EQ(edp(units::joules(2.0), units::seconds(3.0)), edp(2.0, 3.0));
}

TEST(Metrics, NormalizedRatio) {
  EXPECT_DOUBLE_EQ(normalized(0.9, 1.0), 0.9);
  EXPECT_DOUBLE_EQ(normalized(5.0, 2.0), 2.5);
}

TEST(MetricsDeathTest, NormalizedRejectsZeroBaseline) {
  EXPECT_DEATH((void)normalized(1.0, 0.0), "baseline");
}

}  // namespace
}  // namespace tcmp::power
