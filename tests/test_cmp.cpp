// Full-system integration tests: 16-tile CMP end to end, baseline vs
// heterogeneous configurations, warmup semantics, result extraction and the
// headline directional properties the paper's evaluation rests on.
#include <gtest/gtest.h>

#include "cmp/report.hpp"
#include "cmp/system.hpp"
#include "workloads/synthetic_app.hpp"

namespace tcmp::cmp {
namespace {

workloads::AppParams small_app(const char* name, double scale = 0.1) {
  return workloads::app(name).scaled(scale);
}

RunResult run_one(const CmpConfig& cfg, const workloads::AppParams& params) {
  CmpSystem system(cfg, std::make_shared<workloads::SyntheticApp>(params, cfg.n_tiles));
  const bool finished = system.run(Cycle{200'000'000});
  EXPECT_TRUE(finished);
  return make_result(system);
}

TEST(CmpConfig, NamedConfigurations) {
  EXPECT_FALSE(CmpConfig::baseline().heterogeneous());
  const auto het = CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2));
  EXPECT_TRUE(het.heterogeneous());
  EXPECT_EQ(het.link.vl_bytes, 5u);
  EXPECT_EQ(het.link.b_bytes, 34u);
  EXPECT_EQ(CmpConfig::baseline().link.b_bytes, 75u);
}

TEST(CmpSystem, BaselineRunsToCompletion) {
  CmpSystem system(CmpConfig::baseline(),
                   std::make_shared<workloads::SyntheticApp>(small_app("FFT"), 16));
  EXPECT_TRUE(system.run(Cycle{200'000'000}));
  EXPECT_TRUE(system.finished());
  EXPECT_GT(system.cycles().value(), 0u);
  EXPECT_GT(system.total_instructions(), 0u);
}

TEST(CmpSystem, WarmupBoundaryResetsMeasurement) {
  CmpSystem system(CmpConfig::baseline(),
                   std::make_shared<workloads::SyntheticApp>(small_app("LU-cont"), 16));
  EXPECT_FALSE(system.warmup_done());
  ASSERT_TRUE(system.run(Cycle{200'000'000}));
  EXPECT_TRUE(system.warmup_done());
  EXPECT_LT(system.cycles(), system.total_cycles());
  EXPECT_LT(system.measured_instructions(), system.total_instructions());
}

TEST(CmpSystem, DeterministicAcrossRuns) {
  auto once = [] {
    CmpSystem system(CmpConfig::heterogeneous(compression::SchemeConfig::stride(2)),
                     std::make_shared<workloads::SyntheticApp>(small_app("MP3D"), 16));
    EXPECT_TRUE(system.run(Cycle{200'000'000}));
    return system.cycles();
  };
  EXPECT_EQ(once(), once());
}

TEST(CmpSystem, LocalMessagesBypassTheMesh) {
  const auto r = run_one(CmpConfig::baseline(), small_app("Ocean-cont"));
  EXPECT_GT(r.local_messages, 0u);
  EXPECT_GT(r.remote_messages, 10 * r.local_messages / 16);  // 15/16 remote homes
}

TEST(RunResult, EnergyBreakdownIsPopulated) {
  const auto r = run_one(CmpConfig::baseline(), small_app("FFT"));
  EXPECT_GT(r.energy.get(power::EnergyAccount::kLinkDynamic).value(), 0.0);
  EXPECT_GT(r.energy.get(power::EnergyAccount::kLinkStatic).value(), 0.0);
  EXPECT_GT(r.energy.get(power::EnergyAccount::kRouterBuffer).value(), 0.0);
  EXPECT_GT(r.energy.get(power::EnergyAccount::kCoreDynamic).value(), 0.0);
  EXPECT_GT(r.total_energy().value(), r.interconnect_energy().value());
  EXPECT_GT(r.interconnect_energy().value(), r.link_energy().value() * 0.99);
  EXPECT_GT(r.seconds.value(), 0.0);
  // Baseline has no compression hardware.
  EXPECT_EQ(r.energy.get(power::EnergyAccount::kCompressionDynamic).value(), 0.0);
  EXPECT_EQ(r.compression_coverage, 0.0);
}

TEST(RunResult, InterconnectShareIsPlausible) {
  // Calibration target: interconnect ~= 30-50% of chip energy (Wang'02 /
  // Magen'04 as cited by the paper).
  const auto r = run_one(CmpConfig::baseline(), small_app("MP3D"));
  const double share = r.interconnect_energy() / r.total_energy();
  EXPECT_GT(share, 0.25);
  EXPECT_LT(share, 0.55);
}

TEST(RunResult, MessageCountsCoverProtocolTypes) {
  const auto r = run_one(CmpConfig::baseline(), small_app("MP3D"));
  EXPECT_GT(r.msg_counts.at("GetS"), 0u);
  EXPECT_GT(r.msg_counts.at("Data"), 0u);
  EXPECT_GT(r.msg_counts.at("Inv"), 0u);
  EXPECT_GT(r.msg_counts.at("PutM"), 0u);
}

// --- the paper's directional claims, end to end (scaled down) ---

struct HetCase {
  const char* app;
  compression::SchemeConfig scheme;
};

class HetEndToEnd : public ::testing::TestWithParam<HetCase> {};

TEST_P(HetEndToEnd, HetImprovesExecutionAndLinkEd2p) {
  const auto& [app_name, scheme] = GetParam();
  const auto params = workloads::app(app_name).scaled(0.25);
  const auto base = run_one(CmpConfig::baseline(), params);
  const auto het = run_one(CmpConfig::heterogeneous(scheme), params);
  // Execution must not regress (and generally improves).
  EXPECT_LE(het.cycles.value(), base.cycles.value() * 101 / 100);
  // Link ED2P improves substantially (the headline result).
  EXPECT_LT(het.link_ed2p(), 0.8 * base.link_ed2p());
  // Full-chip ED2P improves too.
  EXPECT_LT(het.full_cmp_ed2p(), base.full_cmp_ed2p());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HetEndToEnd,
    ::testing::Values(HetCase{"MP3D", compression::SchemeConfig::dbrc(4, 2)},
                      HetCase{"MP3D", compression::SchemeConfig::stride(2)},
                      HetCase{"Unstructured", compression::SchemeConfig::dbrc(16, 2)},
                      HetCase{"FFT", compression::SchemeConfig::dbrc(16, 1)},
                      HetCase{"Water-nsq", compression::SchemeConfig::dbrc(4, 2)},
                      HetCase{"Ocean-cont", compression::SchemeConfig::perfect(3)}));

TEST(HetEndToEnd, CoherenceBoundAppsGainMoreThanComputeBound) {
  const auto mp3d = workloads::app("MP3D").scaled(0.25);
  const auto water = workloads::app("Water-nsq").scaled(0.25);
  const auto scheme = compression::SchemeConfig::dbrc(4, 2);

  const double mp3d_gain =
      static_cast<double>(run_one(CmpConfig::baseline(), mp3d).cycles.value()) /
      static_cast<double>(run_one(CmpConfig::heterogeneous(scheme), mp3d).cycles.value());
  const double water_gain =
      static_cast<double>(run_one(CmpConfig::baseline(), water).cycles.value()) /
      static_cast<double>(run_one(CmpConfig::heterogeneous(scheme), water).cycles.value());
  EXPECT_GT(mp3d_gain, water_gain);
  EXPECT_GT(mp3d_gain, 1.08);  // the paper's high-variability end
}

TEST(HetEndToEnd, HighCoverageSchemesTrackPerfect) {
  const auto params = workloads::app("MP3D").scaled(0.25);
  const auto dbrc = run_one(
      CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2)), params);
  const auto perfect = run_one(
      CmpConfig::heterogeneous(compression::SchemeConfig::perfect(5)), params);
  EXPECT_GT(dbrc.compression_coverage, 0.9);
  // With >90% coverage the realized time is within ~3% of the oracle.
  EXPECT_LT(static_cast<double>(dbrc.cycles.value()),
            static_cast<double>(perfect.cycles.value()) * 1.03);
}

TEST(HetEndToEnd, LargerDbrcWorsensFullChipEd2p) {
  // The Fig. 7 observation: the 64-entry cache's extra power is not paid
  // back once coverage has saturated.
  const auto params = workloads::app("Ocean-cont").scaled(0.25);
  const auto base = run_one(CmpConfig::baseline(), params);
  const auto small = run_one(
      CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2)), params);
  const auto big = run_one(
      CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(64, 2)), params);
  const double small_ratio = small.full_cmp_ed2p() / base.full_cmp_ed2p();
  const double big_ratio = big.full_cmp_ed2p() / base.full_cmp_ed2p();
  EXPECT_GT(big_ratio, small_ratio);
}

TEST(HetEndToEnd, ReplyPartitioningImprovesReadBoundApps) {
  const auto params = workloads::app("Raytrace").scaled(0.25);  // read-heavy
  cmp::CmpConfig het_cfg =
      cmp::CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2));
  const auto het = run_one(het_cfg, params);
  het_cfg.reply_partitioning = true;
  const auto rp = run_one(het_cfg, params);
  // Partial replies must appear on the network and not regress performance.
  EXPECT_GT(rp.msg_counts.at("PartialReply"), 0u);
  EXPECT_EQ(het.msg_counts.count("PartialReply"), 0u);
  EXPECT_LE(rp.cycles.value(), het.cycles.value());
}

TEST(HetEndToEnd, ReplyPartitioningIsCoherent) {
  // The stress here is the retry path: cores resume early on partials and
  // immediately re-touch in-flight lines (dwell), exercising kRetry.
  const auto params = workloads::app("MP3D").scaled(0.2);
  cmp::CmpConfig cfg =
      cmp::CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2));
  cfg.reply_partitioning = true;
  cmp::CmpSystem system(cfg,
                        std::make_shared<workloads::SyntheticApp>(params, 16));
  ASSERT_TRUE(system.run(Cycle{200'000'000}));
  EXPECT_GT(system.stats().counter_value("l1.partial_resumes"), 0u);
  EXPECT_GT(system.stats().counter_value("l1.retried_accesses"), 0u);
}

TEST(HetEndToEnd, Cheng3WayRunsAndUsesAllThreeSubnets) {
  const auto params = workloads::app("MP3D").scaled(0.2);
  CmpSystem system(CmpConfig::cheng3way(),
                   std::make_shared<workloads::SyntheticApp>(params, 16));
  ASSERT_TRUE(system.run(Cycle{200'000'000}));
  const auto& st = system.stats();
  EXPECT_GT(st.counter_value("noc.L.packets"), 0u);   // short critical
  EXPECT_GT(st.counter_value("noc.B.packets"), 0u);   // data replies
  EXPECT_GT(st.counter_value("noc.PW.packets"), 0u);  // writebacks/acks
  // No compression hardware in [6]'s design.
  EXPECT_EQ(st.counter_value("compression.compressed"), 0u);
  EXPECT_EQ(system.compression_accesses(), 0u);
}

TEST(HetEndToEnd, ChengGainsLessThanProposalOnTheMesh) {
  // The paper's motivating comparison, end to end.
  const auto params = workloads::app("MP3D").scaled(0.2);
  const auto base = run_one(CmpConfig::baseline(), params);
  const auto cheng = run_one(CmpConfig::cheng3way(), params);
  const auto ours = run_one(
      CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2)), params);
  EXPECT_LT(ours.cycles.value(), cheng.cycles.value());
  // [6] on the mesh: within a few percent of baseline either way.
  EXPECT_NEAR(static_cast<double>(cheng.cycles.value()) / static_cast<double>(base.cycles.value()),
              1.0, 0.06);
}

TEST(HetEndToEnd, TreeTopologyRunsCoherently) {
  const auto params = workloads::app("FFT").scaled(0.15);
  CmpConfig cfg = CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2));
  cfg.topology = noc::Topology::kTree2Level;
  CmpSystem system(cfg, std::make_shared<workloads::SyntheticApp>(params, 16));
  ASSERT_TRUE(system.run(Cycle{200'000'000}));
  EXPECT_GT(system.cycles().value(), 0u);
  // Deterministic too.
  CmpSystem again(cfg, std::make_shared<workloads::SyntheticApp>(params, 16));
  ASSERT_TRUE(again.run(Cycle{200'000'000}));
  EXPECT_EQ(system.cycles(), again.cycles());
}

TEST(HetEndToEnd, ThirtyTwoTileSystemRuns) {
  const auto params = workloads::app("FFT").scaled(0.1);
  CmpConfig cfg = CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2));
  cfg.n_tiles = 32;
  cfg.mesh_width = 8;
  cfg.mesh_height = 4;
  CmpSystem system(cfg, std::make_shared<workloads::SyntheticApp>(params, 32));
  ASSERT_TRUE(system.run(Cycle{400'000'000}));
  EXPECT_GT(system.measured_instructions(), 0u);
}

TEST(HetEndToEnd, ConservativeMirrorsStillCorrectJustSlower) {
  auto scheme = compression::SchemeConfig::dbrc(4, 2);
  scheme.idealized_mirrors = false;
  const auto params = workloads::app("FFT").scaled(0.2);
  const auto r = run_one(CmpConfig::heterogeneous(scheme), params);
  EXPECT_GT(r.compression_coverage, 0.2);
  EXPECT_LT(r.compression_coverage, 1.0);
}

}  // namespace
}  // namespace tcmp::cmp
