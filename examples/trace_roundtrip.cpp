// Trace round-trip: dump a synthetic application's stream to the portable
// trace format, reload it as a TraceWorkload, and show both drive the
// simulator to the identical cycle count — the interchange path for running
// externally generated traces (see also: tcmpsim --trace).
//
//   ./example_trace_roundtrip [app] [scale]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>

#include "cmp/report.hpp"
#include "cmp/system.hpp"
#include "workloads/synthetic_app.hpp"
#include "workloads/trace_workload.hpp"

using namespace tcmp;

int main(int argc, char** argv) {
  const std::string app_name = argc > 1 ? argv[1] : "FFT";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.05;
  workloads::AppParams params = workloads::app(app_name).scaled(scale);
  params.warmup_frac = 0.0;  // traces carry no warmup marker

  // 1. Dump the synthetic stream.
  std::stringstream trace;
  {
    workloads::SyntheticApp source(params, 16);
    workloads::write_trace(trace, source, 16, 1u << 22);
  }
  const std::string text = trace.str();
  std::printf("Dumped %s to a %.1f KB trace (%zu lines).\n\n", params.name.c_str(),
              static_cast<double>(text.size()) / 1024.0,
              static_cast<size_t>(std::count(text.begin(), text.end(), '\n')));
  // Show a taste of the format.
  std::printf("%.*s...\n\n", 180, text.c_str());

  // 2. Run the original and the reloaded trace through identical systems.
  const cmp::CmpConfig cfg =
      cmp::CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2));
  cmp::CmpSystem original(cfg, std::make_shared<workloads::SyntheticApp>(params, 16));
  if (!original.run()) return 1;

  std::istringstream replay_in(text);
  cmp::CmpSystem replay(cfg, std::make_shared<workloads::TraceWorkload>(
                                 replay_in, 16, params.name + "-trace"));
  if (!replay.run()) return 1;

  std::printf("original (synthetic): %llu cycles\n",
              static_cast<unsigned long long>(original.cycles().value()));
  std::printf("replayed (trace):     %llu cycles\n",
              static_cast<unsigned long long>(replay.cycles().value()));
  std::printf("%s\n", original.cycles() == replay.cycles()
                          ? "Identical — the trace captures the stream exactly."
                          : "MISMATCH — trace round-trip lost information!");
  return original.cycles() == replay.cycles() ? 0 : 1;
}
