// Link designer: explore the wire model interactively — custom geometries
// through the RC/repeater equations, and area-matched heterogeneous link
// partitions for arbitrary track budgets.
//
//   ./example_link_designer [width_mult] [spacing_mult]
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "wire/link_design.hpp"
#include "wire/rc_model.hpp"
#include "wire/wire_spec.hpp"

using namespace tcmp;
using namespace tcmp::wire;

int main(int argc, char** argv) {
  const TechParams& tech = TechParams::itrs65();

  // 1. A custom wire through the model.
  const double w = argc > 1 ? std::atof(argv[1]) : 2.0;
  const double s = argc > 2 ? std::atof(argv[2]) : 6.0;
  const WireGeometry geo{MetalPlane::k8X, w, s};
  const RepeaterDesign opt = delay_optimal_design(tech, geo);
  const RepeaterDesign pw = power_optimal_design(tech, geo, 2.0);

  std::printf("Custom 8X wire: width %.1fx, spacing %.1fx (area %.1fx)\n\n", w, s,
              geo.area_mult());
  std::printf("  R = %.1f kOhm/m, C = %.1f pF/m\n",
              r_wire_per_m(tech, geo).value() / 1e3,
              c_wire_per_m(tech, geo).value() * 1e12);
  auto describe = [&](const char* name, const RepeaterDesign& d) {
    std::printf("  %-22s repeaters %4.0fx every %.2f mm -> %6.1f ps/mm, "
                "%.2f W/m dyn (a=1), %.3f W/m leak\n",
                name, d.size, units::to_mm(d.spacing),
                delay_per_m(tech, geo, d).value() * 1e12 * 1e-3,
                switching_power_per_m(tech, geo, d).value(),
                leakage_power_per_m(tech, d).value());
  };
  describe("delay-optimal:", opt);
  describe("power-optimal (2x):", pw);

  // 2. Compare against the catalog.
  std::printf("\nCatalog (paper Tables 2/3):\n");
  for (WireClass cls : {WireClass::kB8X, WireClass::kL8X, WireClass::kPW4X}) {
    const WireSpec spec = paper_spec(cls);
    std::printf("  %-18s %.2fx latency, %4.1fx area, %.2f/%.3f W/m dyn/static\n",
                spec.name.c_str(), spec.rel_latency, spec.rel_area,
                spec.dyn_power.value(), spec.static_power.value());
  }

  // 3. Heterogeneous partitions for a range of track budgets.
  std::printf("\nArea-matched VL+B partitions:\n\n");
  TextTable t({"budget (tracks)", "VL width", "VL wires", "B bytes", "total", "slack"});
  for (double budget : {400.0, 600.0, 800.0}) {
    for (unsigned vl : {3u, 4u, 5u}) {
      const LinkPartition p = computed_het_link(vl, budget);
      t.add_row({TextTable::fmt(budget, 0), std::to_string(vl) + " B",
                 std::to_string(p.vl_wires), std::to_string(p.b_bytes),
                 TextTable::fmt(p.total_tracks, 0),
                 TextTable::fmt(budget - p.total_tracks, 0)});
    }
  }
  std::printf("%s", t.str().c_str());
  std::printf("\nThe paper's configuration is the 600-track budget: 24-40 VL-Wires plus\n"
              "34 bytes of B-Wires replacing the original 75-byte homogeneous link.\n");
  return 0;
}
