// Compression explorer: drive the address compression schemes directly with
// synthetic access patterns and inspect their coverage — the standalone
// counterpart of Fig. 2 for experimenting with new patterns or scheme
// parameters without running the full CMP.
//
//   ./example_compression_explorer [pattern]
//
// Patterns: sequential, strided, clustered, random, pointer-chase (default:
// all of them).
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "compression/compressor.hpp"
#include "compression/scheme.hpp"

using namespace tcmp;

namespace {

using Generator = std::function<LineAddr(Rng&, LineAddr /*prev*/)>;

struct Pattern {
  std::string name;
  Generator next;
};

std::vector<Pattern> patterns() {
  return {
      {"sequential", [](Rng&, LineAddr prev) { return LineAddr{prev.value() + 1}; }},
      {"strided-17", [](Rng&, LineAddr prev) { return LineAddr{prev.value() + 17}; }},
      {"clustered",
       [](Rng& rng, LineAddr) {
         // 4 hot 4 MB regions.
         static constexpr std::uint64_t kBases[] = {0x1000000, 0x5000000, 0x9000000,
                                                    0xD000000};
         return LineAddr{kBases[rng.next_below(4)] + rng.next_below(1 << 16)};
       }},
      {"random",
       [](Rng& rng, LineAddr) {
         return LineAddr{rng.next_below(std::uint64_t{1} << 28)};
       }},
      {"pointer-chase",
       [](Rng&, LineAddr prev) {
         const std::uint64_t x = prev.value() * 0x9e3779b97f4a7c15ULL + 1;
         return LineAddr{(x >> 16) % (std::uint64_t{1} << 24)};
       }},
  };
}

double measure(const Pattern& pattern, const compression::SchemeConfig& scheme,
               unsigned messages) {
  auto pair = compression::make_compressor(scheme, 16);
  Rng rng(42);
  LineAddr addr{0x2000000};
  unsigned hits = 0;
  for (unsigned i = 0; i < messages; ++i) {
    addr = pattern.next(rng, addr);
    const auto dst = static_cast<NodeId>(addr.value() % 16);  // home interleaving
    if (pair.sender->compress(dst, addr).compressed) ++hits;
  }
  return static_cast<double>(hits) / messages;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned kMessages = 50000;
  std::vector<Pattern> selected;
  for (auto& p : patterns()) {
    if (argc < 2 || p.name == argv[1]) selected.push_back(p);
  }
  if (selected.empty()) {
    std::fprintf(stderr, "unknown pattern '%s'\n", argv[1]);
    return 1;
  }

  std::vector<compression::SchemeConfig> schemes = {
      compression::SchemeConfig::stride(1),  compression::SchemeConfig::stride(2),
      compression::SchemeConfig::dbrc(4, 1), compression::SchemeConfig::dbrc(4, 2),
      compression::SchemeConfig::dbrc(16, 2), compression::SchemeConfig::dbrc(64, 2)};

  std::vector<std::string> header{"Pattern"};
  for (const auto& s : schemes) header.push_back(s.name());
  TextTable t(std::move(header));
  for (const auto& p : selected) {
    std::vector<std::string> row{p.name};
    for (const auto& s : schemes) {
      row.push_back(TextTable::pct(measure(p, s, kMessages), 1));
    }
    t.add_row(std::move(row));
  }
  std::printf("Compression coverage by access pattern (%u line addresses each):\n\n%s",
              kMessages, t.str().c_str());
  std::printf(
      "\nReading the table: Stride thrives on arithmetic progressions; DBRC\n"
      "thrives on clustered working sets that fit its region reach\n"
      "(entries x 2^(8*low_bytes) lines); nothing helps pointer chasing.\n");
  return 0;
}
