// Coherence walkthrough: reproduces, message by message, the paper's Sec. 4.2
// example — "the coherence actions involved in an L1 read miss for a line in
// modified state in another tile":
//
//   (1)  a request is sent down to the home L2 slice;
//   (2)  an intervention (FwdGetS) is sent to the owner tile;
//   (3a) the owner sends the line to the requestor          [critical]
//   (3b) and a revision copy to the home                    [non-critical]
//
// Every message is printed with its Fig. 4 classification and the wire plane
// the heterogeneous policy would map it to.
#include <cstdio>
#include <memory>

#include "cmp/system.hpp"
#include "het/wire_policy.hpp"
#include "workloads/synthetic_app.hpp"

using namespace tcmp;

namespace {

/// Scripted two-core workload: core 0 writes line L, then core 1 reads it.
class TwoCoreScript final : public core::Workload {
 public:
  core::Op next(unsigned c) override {
    ++step_[c];
    if (c == 0) {
      if (step_[c] == 1) return core::Op::store(kLine);
      if (step_[c] < 1200) return core::Op::compute(4);  // keep the line in M
      return core::Op::done();
    }
    if (c == 1) {
      if (step_[c] < 600) return core::Op::compute(4);  // let core 0 win
      if (step_[c] == 600) return core::Op::load(kLine);
      return core::Op::done();
    }
    return core::Op::done();
  }
  [[nodiscard]] std::string name() const override { return "walkthrough"; }

  static constexpr LineAddr kLine{0x1002};  // home = 0x1002 % 16 = tile 2

 private:
  std::uint64_t step_[16] = {};
};

}  // namespace

int main() {
  const auto scheme = compression::SchemeConfig::dbrc(4, 2);
  cmp::CmpConfig cfg = cmp::CmpConfig::heterogeneous(scheme);
  cmp::CmpSystem system(cfg, std::make_shared<TwoCoreScript>());

  std::printf("Line 0x%llx, home tile %llu. Core 0 writes (M), core 1 then reads.\n\n",
              static_cast<unsigned long long>(TwoCoreScript::kLine.value()),
              static_cast<unsigned long long>(TwoCoreScript::kLine.value() % 16));
  std::printf("%-6s %-12s %-5s %-5s %-9s %-12s %-8s %s\n", "cycle", "message", "src",
              "dst", "size", "criticality", "plane", "leg");

  system.set_remote_msg_hook([&](const protocol::CoherenceMsg& msg) {
    const bool critical = protocol::is_critical(msg.type);
    // Assume the address compresses (steady state) for plane display.
    const het::MappingDecision d = het::map_message(
        msg.type, protocol::carries_address(msg.type), scheme, wire::LinkStyle::kVlHet);
    const char* leg = "";
    switch (msg.type) {
      case protocol::MsgType::kGetS: leg = "(1) request to home"; break;
      case protocol::MsgType::kFwdGetS: leg = "(2) intervention to owner"; break;
      case protocol::MsgType::kData: leg = "(3a) line to requestor"; break;
      case protocol::MsgType::kRevision: leg = "(3b) revision to home"; break;
      case protocol::MsgType::kGetX: leg = "core 0's initial write miss"; break;
      case protocol::MsgType::kDataExcl: leg = "exclusive grant to core 0"; break;
      default: break;
    }
    std::printf("%-6llu %-12s %-5u %-5u %2u B      %-12s %-8s %s\n",
                static_cast<unsigned long long>(system.cycles().value()),
                protocol::to_string(msg.type), static_cast<unsigned>(msg.src),
                static_cast<unsigned>(msg.dst), static_cast<unsigned>(d.wire_bytes),
                critical ? "critical" : "non-critical",
                d.channel == noc::kVlChannel ? "VL" : "B", leg);
  });

  const bool ok = system.run(Cycle{100000});
  std::printf("\n%s after %llu cycles.\n", ok ? "Quiesced" : "Did not finish",
              static_cast<unsigned long long>(system.total_cycles().value()));
  std::printf("\nNote how legs (1), (2) and (3a) are critical — (1) and (2) ride the\n"
              "VL plane once compressed — while leg (3b) is non-critical and long,\n"
              "so it stays on the B-Wires, exactly as Sec. 4.2 classifies them.\n");
  return 0;
}
