// Quickstart: simulate one SPLASH-2-style application on the 16-core tiled
// CMP, first with the homogeneous 75-byte B-Wire baseline and then with the
// paper's proposal (4-entry DBRC address compression + VL/B heterogeneous
// links), and compare execution time and interconnect ED^2P.
//
//   ./example_quickstart [app-name] [scale]
//
// app-name defaults to MP3D; scale (default 0.5) shrinks the workload.
#include <cstdio>
#include <memory>
#include <string>

#include "cmp/report.hpp"
#include "cmp/system.hpp"
#include "workloads/synthetic_app.hpp"

using namespace tcmp;

namespace {

cmp::RunResult simulate(const cmp::CmpConfig& cfg, const workloads::AppParams& app) {
  // A CmpSystem owns the 16 tiles (core + L1 + L2 slice + NIC), the mesh
  // network(s) and the barrier controller. run() advances the whole machine
  // cycle by cycle until the workload's parallel phase completes.
  cmp::CmpSystem system(cfg, std::make_shared<workloads::SyntheticApp>(app, cfg.n_tiles));
  if (!system.run()) {
    std::fprintf(stderr, "simulation did not finish\n");
    std::exit(1);
  }
  return cmp::make_result(system);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string app_name = argc > 1 ? argv[1] : "MP3D";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;
  const workloads::AppParams app = workloads::app(app_name).scaled(scale);

  std::printf("Application: %s (%llu memory ops/core + %llu warmup)\n\n",
              app.name.c_str(), static_cast<unsigned long long>(app.ops_per_core),
              static_cast<unsigned long long>(app.warmup_ops()));

  // The two configurations the paper compares.
  const cmp::CmpConfig baseline = cmp::CmpConfig::baseline();
  const cmp::CmpConfig proposal =
      cmp::CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2));

  const cmp::RunResult base = simulate(baseline, app);
  const cmp::RunResult het = simulate(proposal, app);

  auto show = [](const char* title, const cmp::RunResult& r) {
    std::printf("%s\n", title);
    std::printf("  cycles                %llu\n",
                static_cast<unsigned long long>(r.cycles.value()));
    std::printf("  instructions          %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("  remote messages       %llu\n",
                static_cast<unsigned long long>(r.remote_messages));
    std::printf("  avg critical latency  %.1f cycles\n", r.avg_critical_latency);
    std::printf("  compression coverage  %.1f%%\n", 100.0 * r.compression_coverage);
    std::printf("  link energy           %.3f mJ\n", 1e3 * r.link_energy().value());
    std::printf("  interconnect energy   %.3f mJ (%.0f%% of chip)\n",
                1e3 * r.interconnect_energy().value(),
                100.0 * (r.interconnect_energy() / r.total_energy()));
    std::printf("\n");
  };
  show("Baseline (75-byte B-Wire links):", base);
  show(("Proposal (" + proposal.name() + "):").c_str(), het);

  std::printf("Improvements over the baseline:\n");
  std::printf("  execution time  %5.1f%%\n",
              100.0 * (1.0 - static_cast<double>(het.cycles.value()) /
                                 static_cast<double>(base.cycles.value())));
  std::printf("  link ED^2P      %5.1f%%\n",
              100.0 * (1.0 - het.link_ed2p() / base.link_ed2p()));
  std::printf("  full-CMP ED^2P  %5.1f%%\n",
              100.0 * (1.0 - het.full_cmp_ed2p() / base.full_cmp_ed2p()));
  return 0;
}
