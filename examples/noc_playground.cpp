// NoC playground: exercise the mesh network standalone with uniform-random
// traffic and print latency/throughput versus offered load for the baseline
// 75-byte plane and the heterogeneous VL+B planes — the classic NoC
// load-latency curve.
//
//   ./example_noc_playground [max_rate]
#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "noc/network.hpp"
#include "wire/link_design.hpp"

using namespace tcmp;

namespace {

struct LoadPoint {
  double offered;   ///< packets / node / cycle
  double latency;   ///< mean packet latency (cycles)
  double p99;       ///< tail latency from the registry histogram
  double delivered; ///< packets
};

LoadPoint run_load(const wire::LinkPartition& part, unsigned channel, double rate,
                   unsigned wire_bytes, unsigned cycles) {
  noc::NocConfig cfg;
  cfg.channels = noc::make_channels(part);
  StatRegistry stats;
  noc::Network net(cfg, &stats);
  unsigned delivered = 0;
  net.set_deliver([&](NodeId, const protocol::CoherenceMsg&) { ++delivered; });

  Rng rng(7);
  Cycle now{0};
  for (unsigned t = 0; t < cycles; ++t) {
    for (unsigned n = 0; n < 16; ++n) {
      if (!rng.chance(rate)) continue;
      auto dst = static_cast<NodeId>(rng.next_below(16));
      if (dst == n) continue;
      protocol::CoherenceMsg msg;
      msg.type = protocol::MsgType::kGetS;
      msg.src = static_cast<NodeId>(n);
      msg.dst = dst;
      msg.line = LineAddr{t};
      net.inject(msg, channel, Bytes{wire_bytes}, now);
    }
    net.tick(++now);
  }
  // Drain.
  Cycle guard = now + 200000;
  while (!net.quiescent() && now < guard) net.tick(++now);

  const std::string name = cfg.channels[channel].name;
  LoadPoint p{};
  p.offered = rate;
  const Histogram& lat = stats.histogram("noc." + name + ".latency");
  p.latency = lat.scalar().mean();
  p.p99 = lat.quantile(0.99);
  p.delivered = delivered;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const double max_rate = argc > 1 ? std::atof(argv[1]) : 0.45;
  const unsigned kCycles = 3000;

  std::printf("Uniform-random traffic on the 4x4 mesh, %u injection cycles.\n\n", kCycles);

  TextTable t({"offered rate", "baseline B-75 lat", "het B-34 lat", "het VL lat"});
  for (double rate = 0.05; rate <= max_rate + 1e-9; rate += 0.05) {
    const LoadPoint base =
        run_load(wire::baseline_link(), noc::kBChannel, rate, 11, kCycles);
    const LoadPoint hb =
        run_load(wire::paper_het_link(4), noc::kBChannel, rate, 11, kCycles);
    const LoadPoint hvl =
        run_load(wire::paper_het_link(4), noc::kVlChannel, rate, 4, kCycles);
    t.add_row({TextTable::fmt(rate, 2), TextTable::fmt(base.latency, 1),
               TextTable::fmt(hb.latency, 1), TextTable::fmt(hvl.latency, 1)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("The VL plane's 1-cycle links beat the 3-cycle B planes at every load;\n"
              "all planes saturate as offered load approaches the mesh capacity.\n");
  return 0;
}
