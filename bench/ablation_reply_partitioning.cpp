// Extension bench: Reply Partitioning (Flores et al., HiPC'07 [9]) on top of
// the paper's proposal. The paper notes RP is "orthogonal to that, and could
// be used to accelerate even more the low-latency wires": data senders emit
// the critical word as a short critical PartialReply (which rides the VL
// plane) ahead of the 67-byte Ordinary Reply (B plane), letting read misses
// resume before the full line lands.
#include <cstdio>

#include "bench_util.hpp"

using namespace tcmp;

int main() {
  bench::print_header("Extension: Reply Partitioning [9] on top of the proposal");

  const auto scheme = compression::SchemeConfig::dbrc(4, 2);
  TextTable t({"Application", "het", "het + RP", "RP extra gain"});
  double sum_het = 0, sum_rp = 0;
  unsigned n = 0;
  for (const char* name :
       {"MP3D", "Unstructured", "FFT", "Raytrace", "Ocean-cont", "Water-nsq"}) {
    const auto app = workloads::app(name);
    const auto base = bench::run_app(app, cmp::CmpConfig::baseline());

    cmp::CmpConfig het_cfg = cmp::CmpConfig::heterogeneous(scheme);
    const auto het = bench::run_app(app, het_cfg);
    het_cfg.reply_partitioning = true;
    const auto rp = bench::run_app(app, het_cfg);

    const double nh = static_cast<double>(het.cycles.value()) / static_cast<double>(base.cycles.value());
    const double nr = static_cast<double>(rp.cycles.value()) / static_cast<double>(base.cycles.value());
    t.add_row({name, TextTable::fmt(nh, 3), TextTable::fmt(nr, 3),
               TextTable::pct(nh - nr)});
    sum_het += nh;
    sum_rp += nr;
    ++n;
    std::fprintf(stderr, "  %s done\n", name);
  }
  t.add_row({"AVERAGE", TextTable::fmt(sum_het / n, 3), TextTable::fmt(sum_rp / n, 3),
             TextTable::pct(sum_het / n - sum_rp / n)});
  std::printf("%s\n", t.str().c_str());
  std::printf("Read misses resume when the 11-byte PartialReply lands (2-3 VL flits)\n"
              "instead of waiting for the 67-byte line on the B plane; the full line\n"
              "still installs before the MSHR closes, so coherence is unchanged.\n");
  return 0;
}
