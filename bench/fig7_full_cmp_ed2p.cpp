// Reproduces Fig. 7: normalized full-CMP ED^2P. The interesting paper
// observation this must reproduce: growing the DBRC compression cache makes
// the FULL-chip metric worse (the extra hardware's static/dynamic power is
// not paid back by additional speedup), so 4-entry DBRC beats 64-entry DBRC
// chip-wide even though its coverage is lower.
#include <cstdio>

#include "bench_util.hpp"

using namespace tcmp;

int main(int argc, char** argv) {
  const unsigned jobs = bench::parse_jobs(argc, argv);
  bench::print_header("Fig. 7: normalized full-CMP ED^2P");

  const auto schemes = bench::fig6_schemes();
  const auto apps = workloads::all_apps();
  std::vector<std::string> header{"Application"};
  for (const auto& s : schemes) header.push_back(s.name());
  TextTable t(header);
  std::vector<double> sums(schemes.size(), 0.0);
  unsigned napps = 0;

  // Task grid: per application, baseline (column 0) then every scheme; the
  // ordered merge keeps output identical at any --jobs value.
  std::vector<cmp::CmpConfig> cfgs{cmp::CmpConfig::baseline()};
  for (const auto& s : schemes) cfgs.push_back(cmp::CmpConfig::heterogeneous(s));
  const std::size_t n_cfg = cfgs.size();
  const auto results = bench::parallel_sweep(
      apps.size() * n_cfg, jobs, [&](std::size_t i) {
        return bench::run_app(apps[i / n_cfg], cfgs[i % n_cfg]);
      });

  for (std::size_t a = 0; a < apps.size(); ++a) {
    const auto& base = results[a * n_cfg];
    std::vector<std::string> row{apps[a].name};
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      const auto& r = results[a * n_cfg + i + 1];
      const double ratio = r.full_cmp_ed2p() / base.full_cmp_ed2p();
      sums[i] += ratio;
      row.push_back(TextTable::fmt(ratio, 3));
    }
    t.add_row(std::move(row));
    ++napps;
  }
  std::vector<std::string> avg{"AVERAGE"};
  for (double s : sums) avg.push_back(TextTable::fmt(s / napps, 3));
  t.add_row(std::move(avg));

  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Paper shape: average full-CMP ED^2P improvements of 21%% (2-byte Stride)\n"
      "to 26%% (4-entry DBRC); larger DBRC caches do WORSE chip-wide because\n"
      "their extra area/power is not compensated by further speedup.\n");
  return 0;
}
